// Package graph implements the attributed, directed, labeled graph model of
// Section II of the paper: G = (V, E, L, T), where every node and edge
// carries a label and every node carries a tuple of attribute/value pairs.
//
// The store is optimized for the access paths the FGS algorithms need:
//
//   - label-indexed node scans (candidate generation for pattern focus nodes),
//   - in/out adjacency scans (backtracking subgraph isomorphism),
//   - undirected r-hop neighborhood expansion (N_v^r and E_v^r of Section II),
//   - incremental edge insertion (the dynamic setting of Section VII).
//
// Strings (labels, attribute keys, attribute values) are interned once so the
// hot paths compare int32 identifiers only.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense, assigned in insertion order
// starting at 0.
type NodeID int32

// LabelID is an interned node or edge label.
type LabelID int32

// NoLabel is returned for labels of nodes that do not exist.
const NoLabel LabelID = -1

// Attr is one attribute/value pair of a node tuple, with both the key and the
// value interned. Attribute slices are kept sorted by Key.
type Attr struct {
	Key int32
	Val int32
}

// Edge is one directed adjacency entry: an edge to (or from) a neighbor with
// an interned edge label.
type Edge struct {
	To    NodeID
	Label LabelID
}

// Graph is an in-memory attributed directed multigraph. The zero value is not
// usable; construct with New.
type Graph struct {
	nodeLabels *Interner // node label universe
	edgeLabels *Interner // edge label universe
	attrKeys   *Interner // attribute key universe
	attrVals   *Interner // attribute value universe

	labelOf []LabelID // node -> label
	attrsOf [][]Attr  // node -> sorted attribute tuple

	out [][]Edge // node -> outgoing edges
	in  [][]Edge // node -> incoming edges (Edge.To holds the source)

	byLabel map[LabelID][]NodeID // label -> nodes carrying it

	numEdges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodeLabels: NewInterner(),
		edgeLabels: NewInterner(),
		attrKeys:   NewInterner(),
		attrVals:   NewInterner(),
		byLabel:    make(map[LabelID][]NodeID),
	}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.labelOf) }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// AddNode inserts a node with the given label and attribute tuple and returns
// its ID. The attrs map may be nil.
func (g *Graph) AddNode(label string, attrs map[string]string) NodeID {
	id := NodeID(len(g.labelOf))
	lid := LabelID(g.nodeLabels.Intern(label))
	g.labelOf = append(g.labelOf, lid)

	var tuple []Attr
	if len(attrs) > 0 {
		tuple = make([]Attr, 0, len(attrs))
		for k, v := range attrs {
			tuple = append(tuple, Attr{Key: g.attrKeys.Intern(k), Val: g.attrVals.Intern(v)})
		}
		sort.Slice(tuple, func(i, j int) bool { return tuple[i].Key < tuple[j].Key })
	}
	g.attrsOf = append(g.attrsOf, tuple)

	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[lid] = append(g.byLabel[lid], id)
	return id
}

// AddEdge inserts a directed labeled edge from -> to. Parallel edges with the
// same label are rejected; parallel edges with distinct labels are allowed.
func (g *Graph) AddEdge(from, to NodeID, label string) error {
	if !g.HasNode(from) || !g.HasNode(to) {
		return fmt.Errorf("graph: edge (%d,%d) references missing node", from, to)
	}
	lid := LabelID(g.edgeLabels.Intern(label))
	for _, e := range g.out[from] {
		if e.To == to && e.Label == lid {
			return fmt.Errorf("graph: duplicate edge (%d,%d,%q)", from, to, label)
		}
	}
	g.out[from] = append(g.out[from], Edge{To: to, Label: lid})
	g.in[to] = append(g.in[to], Edge{To: from, Label: lid})
	g.numEdges++
	return nil
}

// HasNode reports whether id is a valid node.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.labelOf) }

// HasEdge reports whether a directed edge from -> to with the given
// interned edge label exists.
func (g *Graph) HasEdge(from, to NodeID, label LabelID) bool {
	if !g.HasNode(from) {
		return false
	}
	for _, e := range g.out[from] {
		if e.To == to && e.Label == label {
			return true
		}
	}
	return false
}

// LabelIDOf returns the interned label of a node, or NoLabel if the node does
// not exist.
func (g *Graph) LabelIDOf(id NodeID) LabelID {
	if !g.HasNode(id) {
		return NoLabel
	}
	return g.labelOf[id]
}

// LabelOf returns the string label of a node.
func (g *Graph) LabelOf(id NodeID) string {
	lid := g.LabelIDOf(id)
	if lid == NoLabel {
		return ""
	}
	return g.nodeLabels.Name(int32(lid))
}

// NodeLabelID resolves a node label string to its interned ID without
// creating it; ok is false if the label has never been seen.
func (g *Graph) NodeLabelID(label string) (LabelID, bool) {
	id, ok := g.nodeLabels.Lookup(label)
	return LabelID(id), ok
}

// EdgeLabelID resolves an edge label string to its interned ID without
// creating it.
func (g *Graph) EdgeLabelID(label string) (LabelID, bool) {
	id, ok := g.edgeLabels.Lookup(label)
	return LabelID(id), ok
}

// EdgeLabelName returns the string form of an interned edge label.
func (g *Graph) EdgeLabelName(id LabelID) string { return g.edgeLabels.Name(int32(id)) }

// AttrKeyID resolves an attribute key without creating it.
func (g *Graph) AttrKeyID(key string) (int32, bool) { return g.attrKeys.Lookup(key) }

// AttrValID resolves an attribute value without creating it.
func (g *Graph) AttrValID(val string) (int32, bool) { return g.attrVals.Lookup(val) }

// AttrKeyName returns the string form of an interned attribute key.
func (g *Graph) AttrKeyName(id int32) string { return g.attrKeys.Name(id) }

// AttrValName returns the string form of an interned attribute value.
func (g *Graph) AttrValName(id int32) string { return g.attrVals.Name(id) }

// Attrs returns the node's attribute tuple, sorted by key ID. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Attrs(id NodeID) []Attr {
	if !g.HasNode(id) {
		return nil
	}
	return g.attrsOf[id]
}

// AttrValue returns the value a node carries for an interned attribute key.
func (g *Graph) AttrValue(id NodeID, key int32) (int32, bool) {
	if !g.HasNode(id) {
		return 0, false
	}
	tuple := g.attrsOf[id]
	i := sort.Search(len(tuple), func(i int) bool { return tuple[i].Key >= key })
	if i < len(tuple) && tuple[i].Key == key {
		return tuple[i].Val, true
	}
	return 0, false
}

// AttrString returns the string value a node carries for an attribute key.
func (g *Graph) AttrString(id NodeID, key string) (string, bool) {
	kid, ok := g.attrKeys.Lookup(key)
	if !ok {
		return "", false
	}
	vid, ok := g.AttrValue(id, kid)
	if !ok {
		return "", false
	}
	return g.attrVals.Name(vid), true
}

// HasLiteral reports whether node id satisfies the equality literal
// key = val (both interned).
func (g *Graph) HasLiteral(id NodeID, key, val int32) bool {
	v, ok := g.AttrValue(id, key)
	return ok && v == val
}

// Out returns the outgoing edges of a node. The slice is owned by the graph.
func (g *Graph) Out(id NodeID) []Edge {
	if !g.HasNode(id) {
		return nil
	}
	return g.out[id]
}

// In returns the incoming edges of a node; Edge.To holds the source node.
// The slice is owned by the graph.
func (g *Graph) In(id NodeID) []Edge {
	if !g.HasNode(id) {
		return nil
	}
	return g.in[id]
}

// Degree reports the total (in + out) degree of a node.
func (g *Graph) Degree(id NodeID) int {
	if !g.HasNode(id) {
		return 0
	}
	return len(g.out[id]) + len(g.in[id])
}

// NodesWithLabel returns the nodes carrying the given label string. The slice
// is owned by the graph.
func (g *Graph) NodesWithLabel(label string) []NodeID {
	lid, ok := g.nodeLabels.Lookup(label)
	if !ok {
		return nil
	}
	return g.byLabel[LabelID(lid)]
}

// NodesWithLabelID returns the nodes carrying the given interned label.
func (g *Graph) NodesWithLabelID(lid LabelID) []NodeID { return g.byLabel[lid] }

// NumNodeLabels reports how many distinct node labels exist.
func (g *Graph) NumNodeLabels() int { return g.nodeLabels.Len() }

// NumEdgeLabels reports how many distinct edge labels exist.
func (g *Graph) NumEdgeLabels() int { return g.edgeLabels.Len() }

package fgs

import (
	"github.com/cwru-db/fgs/internal/server"
	"github.com/cwru-db/fgs/internal/store"
)

// Serving layer (see DESIGN.md §10). A Server wraps a graph, its groups, and
// an Inc-FGS maintainer behind a concurrent HTTP/JSON engine: writes are
// serialized and bump the graph epoch, reads run concurrently under snapshot
// isolation and are answered from an epoch-keyed result cache when possible.
// cmd/fgsd is the daemon around it.
type (
	// Server is the concurrent summarization engine with its HTTP surface.
	Server = server.Server
	// ServerConfig sizes the engine: defaults for r/k/n/utility, worker
	// slots, admission queue depth, cache capacity, and request deadline.
	ServerConfig = server.Config

	// ServerSummarizeRequest is the /v1/summarize(-k) request body.
	ServerSummarizeRequest = server.SummarizeRequest
	// ServerViewRequest is the /v1/view request body.
	ServerViewRequest = server.ViewRequest
	// ServerWorkloadRequest is the /v1/workload request body.
	ServerWorkloadRequest = server.WorkloadRequest
	// ServerUpdateRequest is the /v1/update request body.
	ServerUpdateRequest = server.UpdateRequest
	// ServerEdgeChange is one edge of a /v1/update batch.
	ServerEdgeChange = server.EdgeChange

	// ServerSummarizeResponse is the /v1/summarize(-k) response.
	ServerSummarizeResponse = server.SummarizeResponse
	// ServerViewResponse is the /v1/view response.
	ServerViewResponse = server.ViewResponse
	// ServerWorkloadResponse is the /v1/workload response.
	ServerWorkloadResponse = server.WorkloadResponse
	// ServerUpdateResponse is the /v1/update response.
	ServerUpdateResponse = server.UpdateResponse
	// ServerStatsResponse is the /v1/stats engine snapshot.
	ServerStatsResponse = server.StatsResponse
)

// NewServer builds the serving engine over g and groups: it constructs the
// configured utility, runs the initial summarization, and mounts the HTTP
// routes. The graph must not be mutated by the caller afterwards — all
// writes go through POST /v1/update.
func NewServer(g *Graph, groups *Groups, cfg ServerConfig) (*Server, error) {
	return server.New(g, groups, cfg)
}

// Durability layer (fgstore, DESIGN.md §15): a write-ahead log of applied
// update batches plus periodic snapshots, so a restarted daemon recovers to
// the byte-identical pre-crash state. Open a store, hand it (and what it
// recovered) to ServerConfig.Store/Resume, and close it after the final
// drain snapshot.
type (
	// Store is an open fgstore data directory.
	Store = store.Store
	// StoreOptions configures OpenStore: directory, fsync policy, segment
	// size.
	StoreOptions = store.Options
	// StoreRecovered reports what OpenStore found: the snapshot image and
	// the WAL tail to replay, or Fresh for an empty directory.
	StoreRecovered = store.Recovered
)

// WAL fsync policies for StoreOptions.Fsync.
const (
	FsyncBatch = store.FsyncBatch
	FsyncGroup = store.FsyncGroup
	FsyncOff   = store.FsyncOff
)

// OpenStore opens (creating if needed) an fgstore data directory and
// recovers its latest state.
func OpenStore(opts StoreOptions) (*Store, *StoreRecovered, error) {
	return store.Open(opts)
}

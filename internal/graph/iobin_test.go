package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func binOf(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTrip(t *testing.T) {
	g, _ := buildDiamond(t)
	g2, err := ReadBinary(bytes.NewReader(binOf(t, g)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertGraphsEqual(t, g, g2)
}

// TestBinaryMatchesTextCodec is the cross-codec property: loading a graph
// from its binary serialization must yield the exact store the text codec
// yields — same adjacency order, same EdgeID assignment — so the two load
// paths are interchangeable for the determinism contract.
func TestBinaryMatchesTextCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 10; round++ {
		g := randomGraph(rng, 30+rng.Intn(50), 150+rng.Intn(200))
		// Churn to exercise sentinel edgeDefs on the write side.
		for i := 0; i < 25; i++ {
			from := NodeID(rng.Intn(g.NumNodes()))
			if out := g.Out(from); len(out) > 0 {
				e := out[rng.Intn(len(out))]
				_ = g.RemoveEdge(from, e.To, g.EdgeLabelName(e.Label))
			}
		}

		fromText, err := Read(bytes.NewReader(textOf(t, g)))
		if err != nil {
			t.Fatalf("round %d: text Read: %v", round, err)
		}
		fromBin, err := ReadBinary(bytes.NewReader(binOf(t, g)))
		if err != nil {
			t.Fatalf("round %d: ReadBinary: %v", round, err)
		}
		assertGraphsEqual(t, fromText, fromBin)
		if !bytes.Equal(textOf(t, fromText), textOf(t, fromBin)) {
			t.Fatalf("round %d: text and binary load paths diverge", round)
		}
		if fromText.EdgeIDBound() != fromBin.EdgeIDBound() {
			t.Fatalf("round %d: EdgeIDBound %d vs %d", round, fromText.EdgeIDBound(), fromBin.EdgeIDBound())
		}
		// EdgeID assignment must match edge-for-edge. Interned label IDs may
		// legitimately differ (text re-interns in encounter order; binary
		// preserves the source tables), so compare labels by name.
		for id := EdgeID(0); int(id) < fromText.EdgeIDBound(); id++ {
			rt, rb := fromText.EdgeRefOf(id), fromBin.EdgeRefOf(id)
			if rt.From != rb.From || rt.To != rb.To ||
				fromText.EdgeLabelName(rt.Label) != fromBin.EdgeLabelName(rb.Label) {
				t.Fatalf("round %d: EdgeRefOf(%d) differs across codecs", round, id)
			}
		}
	}
}

func TestBinaryRoundTripPreservesInternerIDs(t *testing.T) {
	g, _ := buildDiamond(t)
	g2, err := ReadBinary(bytes.NewReader(binOf(t, g)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if g.UniverseSizes() != g2.UniverseSizes() {
		t.Fatalf("universe sizes differ: %v vs %v", g.UniverseSizes(), g2.UniverseSizes())
	}
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		if g.LabelIDOf(id) != g2.LabelIDOf(id) {
			t.Fatalf("node %d interned label ID differs", id)
		}
	}
}

func TestReadAutoDispatches(t *testing.T) {
	g, _ := buildDiamond(t)
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"binary", binOf(t, g)},
		{"text", textOf(t, g)},
	} {
		t.Run(enc.name, func(t *testing.T) {
			g2, err := ReadAuto(bytes.NewReader(enc.data))
			if err != nil {
				t.Fatalf("ReadAuto: %v", err)
			}
			assertGraphsEqual(t, g, g2)
		})
	}
}

func TestReadBinaryRejectsCorruptInput(t *testing.T) {
	g, _ := buildDiamond(t)
	valid := binOf(t, g)

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOPE!"), valid[5:]...)
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("text file", func(t *testing.T) {
		if _, err := ReadBinary(strings.NewReader("n 0 user\n")); err == nil {
			t.Fatal("text input accepted as binary")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		// Every proper prefix must error, never panic or hang.
		for cut := 0; cut < len(valid); cut += 3 {
			if _, err := ReadBinary(bytes.NewReader(valid[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("trailing garbage is ignored", func(t *testing.T) {
		// The codec is a stream section, not a framed file: it reads exactly
		// the declared sections (callers own anything after).
		if _, err := ReadBinary(bytes.NewReader(append(append([]byte{}, valid...), 0xff))); err != nil {
			t.Fatalf("trailing byte broke decode: %v", err)
		}
	})
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := New()
	g2, err := ReadBinary(bytes.NewReader(binOf(t, g)))
	if err != nil {
		t.Fatalf("ReadBinary empty: %v", err)
	}
	if g2.NumNodes() != 0 || g2.NumEdges() != 0 {
		t.Fatalf("empty graph round trip: %d nodes %d edges", g2.NumNodes(), g2.NumEdges())
	}
}

package core

import (
	"strings"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestVerifyAcceptsCorrectSummary(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	s, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(g, groups, util.Clone(), cfg, s, s.CL, 0)
	if !rep.OK() {
		t.Fatalf("correct summary rejected: %s", rep)
	}
	if rep.CoveredCount != len(s.Covered) {
		t.Errorf("CoveredCount = %d", rep.CoveredCount)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	base, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("utility threshold", func(t *testing.T) {
		rep := Verify(g, groups, util.Clone(), cfg, base, 1<<30, base.Utility+1)
		if rep.UtilityOK || rep.OK() {
			t.Fatal("unreachable utility threshold passed")
		}
	})
	t.Run("cost threshold", func(t *testing.T) {
		rep := Verify(g, groups, util.Clone(), cfg, base, base.CL-1, 0)
		if base.CL > 0 && (rep.CostOK || rep.OK()) {
			t.Fatal("cost above threshold passed")
		}
	})
	t.Run("pattern budget", func(t *testing.T) {
		tight := cfg
		tight.K = 1
		if len(base.Patterns) > 1 {
			rep := Verify(g, groups, util.Clone(), tight, base, 1<<30, 0)
			if rep.PatternBudgetOK {
				t.Fatal("budget violation passed")
			}
		}
	})
	t.Run("size cap", func(t *testing.T) {
		tiny := cfg
		tiny.N = len(base.Covered) - 1
		rep := Verify(g, groups, util.Clone(), tiny, base, 1<<30, 0)
		if rep.SizeOK {
			t.Fatal("n violation passed")
		}
	})
	t.Run("missing correction breaks losslessness", func(t *testing.T) {
		mutated := *base
		mutated.Corrections = graph.NewEdgeSet(0)
		for e := range base.Corrections {
			mutated.Corrections.Add(e)
		}
		// Remove one correction edge if any exist; otherwise add a bogus one.
		removed := false
		for e := range mutated.Corrections {
			delete(mutated.Corrections, e)
			removed = true
			break
		}
		if !removed {
			mutated.Corrections.Add(graph.EdgeRef{From: 0, To: 12, Label: 99})
		}
		rep := Verify(g, groups, util.Clone(), cfg, &mutated, 1<<30, 0)
		if rep.Lossless {
			t.Fatal("tampered corrections still verified lossless")
		}
	})
	t.Run("inflated cover breaks consistency", func(t *testing.T) {
		mutated := *base
		mutated.Patterns = append([]PatternInfo(nil), base.Patterns...)
		pi := mutated.Patterns[0]
		extra := append([]graph.NodeID(nil), pi.Covered...)
		// Claim the pattern covers a group node it does not.
		for _, v := range groups.All() {
			found := false
			for _, c := range pi.Covered {
				if c == v {
					found = true
					break
				}
			}
			if !found {
				extra = append(extra, v)
				break
			}
		}
		if len(extra) == len(pi.Covered) {
			t.Skip("pattern covers all group nodes; nothing to inflate")
		}
		pi.Covered = extra
		mutated.Patterns[0] = pi
		rep := Verify(g, groups, util.Clone(), cfg, &mutated, 1<<30, 0)
		if rep.CoverageConsistent {
			t.Fatal("inflated coverage passed consistency check")
		}
	})
}

func TestVerifyBoundsViolation(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	s, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Remove all female nodes from the covered list: lower bound broken.
	mutated := *s
	var males []graph.NodeID
	for _, v := range s.Covered {
		if gi, _ := groups.IndexOf(v); gi == 0 {
			males = append(males, v)
		}
	}
	mutated.Covered = males
	rep := Verify(g, groups, util.Clone(), cfg, &mutated, 1<<30, 0)
	if rep.BoundsOK {
		t.Fatal("bounds violation passed")
	}
}

func TestReportString(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	s, _ := APXFGS(g, groups, util, cfg)
	rep := Verify(g, groups, util.Clone(), cfg, s, 1<<30, 0)
	str := rep.String()
	if !strings.Contains(str, "feasible=true") {
		t.Errorf("Report.String = %q", str)
	}
}

package mining

import (
	"strconv"
	"sync"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// erShards is the stripe count of ErCache. A modest power of two keeps the
// per-shard maps small while making lock collisions between scoring workers
// unlikely (workers touch disjoint covered-node sets most of the time).
const erShards = 32

// ErCache memoizes per-node r-hop edge sets E_v^r, which SumGen and the FGS
// algorithms query repeatedly for the same nodes.
//
// The cache is safe for concurrent use: entries live in erShards stripes,
// each behind its own mutex, so the parallel scoring pipeline can share one
// cache across workers. Entries are EdgeBits — the dense-EdgeID bitsets of
// the hot paths — returned by reference and immutable by contract (every
// caller in this repository only reads them or unions them into fresh sets).
// A freed EdgeID can be reused by a later insertion, but any cached set
// containing it lies within r hops of the deleted edge's endpoints and is
// invalidated by the maintenance paths before the ID can be observed stale.
type ErCache struct {
	g      *graph.Graph
	r      int
	shards [erShards]erShard
}

type erShard struct {
	mu sync.Mutex
	m  map[graph.NodeID]*graph.EdgeBits
	// Always-on counters, read/written under mu the Get/Invalidate paths
	// already hold — no extra synchronization, no allocation.
	hits      int64
	misses    int64
	evictions int64
}

// NewErCache returns a cache for radius r over g.
func NewErCache(g *graph.Graph, r int) *ErCache {
	c := &ErCache{g: g, r: r}
	for i := range c.shards {
		c.shards[i].m = make(map[graph.NodeID]*graph.EdgeBits)
	}
	return c
}

// Radius returns the cache's r.
func (c *ErCache) Radius() int { return c.r }

// Graph returns the graph the cache computes neighborhoods over.
func (c *ErCache) Graph() *graph.Graph { return c.g }

func (c *ErCache) shardOf(v graph.NodeID) *erShard {
	return &c.shards[uint64(v)%erShards]
}

// Get returns E_v^r, computing and memoizing it on first use. The BFS runs
// under the shard lock: the graph is read-only during mining, and holding the
// lock means concurrent requests for the same hot node compute it once
// instead of racing on duplicate work.
func (c *ErCache) Get(v graph.NodeID) *graph.EdgeBits {
	s := c.shardOf(v)
	s.mu.Lock()
	defer s.mu.Unlock()
	if es, ok := s.m[v]; ok {
		s.hits++
		return es
	}
	s.misses++
	es := c.g.RHopEdgeBits(v, c.r)
	s.m[v] = es
	return es
}

// UnionOf returns the union E_X^r over a node set as a fresh bitset sized to
// the graph's EdgeID space, so folding members in is pure word-OR work.
func (c *ErCache) UnionOf(nodes []graph.NodeID) *graph.EdgeBits {
	u := graph.NewEdgeBits(c.g.EdgeIDBound())
	for _, v := range nodes {
		u.Union(c.Get(v))
	}
	return u
}

// Invalidate drops cached entries for the given nodes (used by Inc-FGS when
// edge insertions change neighborhoods).
func (c *ErCache) Invalidate(nodes []graph.NodeID) {
	for _, v := range nodes {
		s := c.shardOf(v)
		s.mu.Lock()
		if _, ok := s.m[v]; ok {
			s.evictions++
			delete(s.m, v)
		}
		s.mu.Unlock()
	}
}

// ObsMetrics snapshots the per-shard hit/miss/eviction counters and the
// entry count as labeled series, implementing obs.Source. Runs registering
// fresh caches into one registry merge by summation at Gather time.
func (c *ErCache) ObsMetrics() []obs.Metric {
	out := make([]obs.Metric, 0, 3*erShards+1)
	entries := int64(0)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits, misses, evictions, n := s.hits, s.misses, s.evictions, len(s.m)
		s.mu.Unlock()
		entries += int64(n)
		labels := []obs.Label{{Key: "shard", Val: strconv.Itoa(i)}}
		out = append(out,
			obs.Metric{Name: "fgs_ercache_hits_total", Help: "E_v^r cache hits per shard.", Kind: obs.KindCounter, Labels: labels, Value: float64(hits)},
			obs.Metric{Name: "fgs_ercache_misses_total", Help: "E_v^r cache misses (BFS computations) per shard.", Kind: obs.KindCounter, Labels: labels, Value: float64(misses)},
			obs.Metric{Name: "fgs_ercache_evictions_total", Help: "E_v^r cache invalidations per shard.", Kind: obs.KindCounter, Labels: labels, Value: float64(evictions)},
		)
	}
	out = append(out, obs.Metric{Name: "fgs_ercache_entries", Help: "Cached E_v^r entries across all shards.", Kind: obs.KindGauge, Value: float64(entries)})
	return out
}

// Warm precomputes E_v^r for the given nodes across workers goroutines,
// so subsequent Get calls from scoring workers hit the cache instead of
// serializing BFS work behind shard locks. workers <= 1 warms sequentially.
// Duplicate nodes are computed once; Warm returns after every node is cached.
func (c *ErCache) Warm(nodes []graph.NodeID, workers int) {
	if len(nodes) == 0 {
		return
	}
	if workers <= 1 || len(nodes) == 1 {
		for _, v := range nodes {
			c.Get(v)
		}
		return
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	var next int64
	var mu sync.Mutex
	take := func() (graph.NodeID, bool) {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= len(nodes) {
			return 0, false
		}
		v := nodes[next]
		next++
		return v, true
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := take()
				if !ok {
					return
				}
				c.Get(v)
			}
		}()
	}
	wg.Wait()
}

package graph

import "fmt"

// RemoveEdge deletes the directed edge from -> to with the given label
// string. It is the substrate for summary maintenance under edge deletions —
// an extension beyond the paper's insertion-only Section VII.
func (g *Graph) RemoveEdge(from, to NodeID, label string) error {
	lid, ok := g.edgeLabels.Lookup(label)
	if !ok {
		return fmt.Errorf("graph: edge (%d,%d,%q) does not exist", from, to, label)
	}
	if !g.HasNode(from) || !g.HasNode(to) {
		return fmt.Errorf("graph: edge (%d,%d) references missing node", from, to)
	}
	ref := EdgeRef{From: from, To: to, Label: LabelID(lid)}
	id, ok := g.edgeIndex[ref]
	if !ok {
		return fmt.Errorf("graph: edge (%d,%d,%q) does not exist", from, to, label)
	}
	if !removeAdj(&g.out[from], to, LabelID(lid)) {
		// The index and the adjacency lists are maintained together;
		// disagreement is a corrupted store.
		//lint:allow nopanic vetted invariant check — corruption must not be survivable
		panic("graph: edge index and adjacency lists out of sync")
	}
	if !removeAdj(&g.in[to], from, LabelID(lid)) {
		// The two adjacency lists are maintained together; disagreement is a
		// corrupted store, not a user error. Exercised by
		// TestRemoveEdgeAdjacencyInvariant.
		//lint:allow nopanic vetted invariant check — corruption must not be survivable
		panic("graph: adjacency lists out of sync")
	}
	// Retire the dense ID: the slot goes on the free list (LIFO, so reuse is
	// deterministic for a deterministic operation sequence) and the def is
	// cleared to the sentinel so stale EdgeRefOf calls cannot resolve it.
	delete(g.edgeIndex, ref)
	g.edgeDefs[id] = EdgeRef{From: -1, To: -1, Label: -1}
	g.freeIDs = append(g.freeIDs, id)
	g.numEdges--
	return nil
}

// removeAdj removes the first entry matching (to, label); reports success.
func removeAdj(edges *[]Edge, to NodeID, label LabelID) bool {
	for i, e := range *edges {
		if e.To == to && e.Label == label {
			*edges = append((*edges)[:i], (*edges)[i+1:]...)
			return true
		}
	}
	return false
}

package server

// The request-tracing shell (DESIGN.md §13). Every route is wrapped in
// instrument, which (with tracing enabled) gives the request a trace ID —
// propagated from an incoming W3C `traceparent` header or minted — and
// threads a *obs.ReqTrace through the request context. Handlers time their
// pipeline stages against it; when the request completes, the shell feeds
// the per-stage histograms, the flight recorder, the slow-request log, and
// the automatic dump triggers. The trace never influences the response
// body: determinism tests pin that tracing on/off is byte-identical.

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/cwru-db/fgs/internal/obs"
)

// flightDumpCooldown rate-limits automatic dumps: a 5xx storm writes one
// dump per window, not one per failure.
const flightDumpCooldown = 10 * time.Second

// statusWriter records the status code for the latency/error series and
// injects the Server-Timing stage breakdown just before headers commit —
// the last moment every stage that can still influence them has ended.
type statusWriter struct {
	http.ResponseWriter
	status int
	rt     *obs.ReqTrace
}

func (w *statusWriter) WriteHeader(code int) {
	if st := w.rt.ServerTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the observability shell: the request
// trace (ID propagation, stage timings, flight recorder), the process-level
// span (only when the observer carries a trace — an always-on span log
// would grow without bound over a server's lifetime), the per-endpoint
// latency histogram, and a recover barrier that turns an escaped panic into
// a 500 so one poisoned request cannot take the process down.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var rt *obs.ReqTrace
		if s.tgen != nil {
			tid, parent, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
			if !ok {
				tid, parent = s.tgen.Next(), obs.SpanID{}
			}
			rt = obs.NewReqTrace(s.clock, tid, parent)
			rt.SetEndpoint(endpoint)
			w.Header().Set("X-Fgs-Trace", tid.String())
			r = r.WithContext(obs.WithReqTrace(r.Context(), rt))
		}
		sp := s.tr.Start("http." + endpoint)
		start := s.clock.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK, rt: rt}
		defer func() {
			if rec := recover(); rec != nil {
				sw.status = http.StatusInternalServerError
				writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
			total := s.clock.Now().Sub(start)
			s.http.Observe(endpoint, total, sw.status >= 500)
			sp.SetArg("status", int64(sw.status))
			sp.End()
			s.finishTrace(rt, endpoint, sw.status, total)
		}()
		h(sw, r)
	}
}

// finishTrace fans a completed request's trace out to its sinks: stage
// histograms (with trace-ID exemplars), the flight recorder, the
// slow-request log, and the automatic dump triggers (5xx, slow). Browsing
// the flight recorder is excluded from the recorder so inspecting it does
// not overwrite the history being inspected.
func (s *Server) finishTrace(rt *obs.ReqTrace, endpoint string, status int, total time.Duration) {
	if rt == nil {
		return
	}
	s.stages.ObserveTrace(rt)
	if endpoint != "debug-flightrecorder" {
		s.flight.Record(rt.Event(status, total))
	}
	slow := s.cfg.SlowRequest > 0 && total >= s.cfg.SlowRequest
	if status >= 500 {
		s.log.Error("request failed",
			"endpoint", endpoint, "status", status,
			"duration", total, "trace", rt.IDString())
		s.autoDumpFlight("5xx", rt.IDString())
		return
	}
	if slow {
		s.log.Warn("slow request",
			"endpoint", endpoint, "status", status,
			"duration", total, "threshold", s.cfg.SlowRequest,
			"stages", rt.ServerTiming(), "trace", rt.IDString())
		s.autoDumpFlight("slow", rt.IDString())
	}
}

// autoDumpFlight writes the flight recorder to the configured dump writer,
// at most once per cooldown window.
func (s *Server) autoDumpFlight(reason, trace string) {
	if s.flight == nil || s.cfg.FlightDump == nil {
		return
	}
	s.dumpMu.Lock()
	now := s.clock.Now()
	if !s.lastDump.IsZero() && now.Sub(s.lastDump) < flightDumpCooldown {
		s.dumpMu.Unlock()
		return
	}
	s.lastDump = now
	s.dumpMu.Unlock()
	if err := s.writeFlightDump(s.cfg.FlightDump, reason, trace); err != nil {
		s.log.Error("flight dump failed", "reason", reason, "error", err)
	}
}

// DumpFlightRecorder writes the current ring to w as a text table —
// the hook for SIGQUIT and drain dumps (cmd/fgsd). Unlike the automatic
// 5xx/slow dumps it is not rate-limited. Returns an error when tracing or
// the recorder is disabled.
func (s *Server) DumpFlightRecorder(w io.Writer, reason string) error {
	if s.flight == nil {
		return fmt.Errorf("server: flight recorder disabled")
	}
	return s.writeFlightDump(w, reason, "")
}

func (s *Server) writeFlightDump(w io.Writer, reason, trace string) error {
	evs := s.flight.Snapshot()
	s.log.Info("flight recorder dump", "reason", reason, "events", len(evs), "trace", trace)
	if _, err := fmt.Fprintf(w, "fgs flight recorder: reason=%s trace=%s events=%d recorded=%d\n",
		reason, trace, len(evs), s.flight.Recorded()); err != nil {
		return err
	}
	return obs.WriteFlightText(w, evs)
}

package lint

// Differential test: the CFG-based pairdiscipline must agree with the
// legacy same-function lock-pairing heuristic (checkLockPairing, formerly
// part of lockdiscipline) on the historical lockdiscipline fixtures. The
// legacy oracle is wrapped in an Analyzer that reuses the pairdiscipline
// name, so //lint:allow pairdiscipline annotations suppress both sides
// identically; agreement is compared as (file, line) sets restricted to
// sync-lock pairing findings.

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestPairDisciplineMatchesLegacyPairing(t *testing.T) {
	legacy := &Analyzer{
		Name: "pairdiscipline", // so fixture allows apply to both sides
		Doc:  "legacy same-function lock pairing (differential oracle)",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok {
						checkLockPairing(pass, fd.Body)
					}
				}
			}
			return nil
		},
	}

	root := filepath.Join("testdata", "src")
	loader, err := NewTreeLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, "lockdiscipline"))
	if err != nil {
		t.Fatal(err)
	}

	sites := func(a *Analyzer) map[string]bool {
		diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]bool)
		for _, d := range diags {
			// Lock-pairing findings only: both analyzers phrase them as
			// "X.Lock() without a matching"; pairdiscipline's other pair
			// specs (pools, spans) are outside the legacy oracle's scope.
			if strings.Contains(d.Message, "without a matching") {
				out[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)] = true
			}
		}
		return out
	}

	got, want := sites(PairDiscipline), sites(legacy)
	for site := range want {
		if !got[site] {
			t.Errorf("legacy pairing flags %s but pairdiscipline does not", site)
		}
	}
	for site := range got {
		if !want[site] {
			t.Errorf("pairdiscipline flags %s but legacy pairing does not", site)
		}
	}
	if len(want) == 0 {
		t.Fatal("legacy oracle produced no findings — fixture lost its teeth")
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t.Logf("agreed on %d pairing sites: %s", len(keys), strings.Join(keys, ", "))
}

package core

import (
	"fmt"
	"time"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// EdgeUpdate is one inserted edge of a batch ΔE. Both endpoints must already
// exist in the graph.
type EdgeUpdate struct {
	From  graph.NodeID
	To    graph.NodeID
	Label string
}

// Maintainer implements Inc-FGS (Section VII, Fig. 7): it keeps an
// r-summary consistent under batches of edge insertions without recomputing
// from scratch. Each batch is processed by
//
//  1. locating the affected group nodes — those whose r-hop neighborhood
//     the new edges touch — and invalidating their cached E_v^r;
//  2. incrementally refreshing the selection V_p by streaming the affected
//     (and not yet selected) group nodes through the ¼-competitive streaming
//     selector (procedure IncFairSel);
//  3. dropping patterns that no longer cover selected nodes, re-scoring
//     patterns whose covered neighborhoods changed, and re-mining only from
//     the E_v^r of newly selected or newly uncovered nodes (the paper's
//     data-locality argument for subgraph isomorphism);
//  4. greedily re-covering as in APXFGS and rebuilding corrections.
type Maintainer struct {
	g      *graph.Graph
	groups *submod.Groups
	cfg    Config
	er     *mining.ErCache
	sel    *submod.Streamer
	util   submod.Utility

	patterns []PatternInfo
	matcher  *pattern.Matcher

	run *runObs
	// clock is the sanctioned timing source for TimeBatch.
	clock obs.Clock
	// candidates and windows (applied batches) accumulate across ApplyDelta
	// calls; timings live in the span tree.
	candidates int
	windows    int
}

// NewMaintainer builds the maintainer and computes the initial summary by
// streaming all current group nodes (so subsequent batches are handled
// uniformly). The utility's state is owned by the maintainer.
func NewMaintainer(g *graph.Graph, groups *submod.Groups, util submod.Utility, cfg Config) (*Maintainer, *Summary) {
	cfg = cfg.withDefaults()
	run := startRun(cfg.Obs, "incfgs")
	m := &Maintainer{
		g:       g,
		groups:  groups,
		cfg:     cfg,
		er:      mining.NewErCache(g, cfg.R),
		sel:     submod.NewStreamer(groups, util, cfg.N),
		util:    util,
		matcher: pattern.NewMatcher(g, cfg.Mining.EmbedCap),
		run:     run,
		clock:   cfg.Obs.GetClock(),
	}
	run.register(m.er)
	run.register(m.sel)
	sp := run.phase(PhaseSelect)
	for _, v := range groups.All() {
		m.sel.Process(v)
	}
	m.sel.PostSelect()
	sp.End()
	m.recover(m.sel.Selected())
	return m, m.Summary()
}

// Delta is a batch of graph updates: edge insertions and deletions. The
// paper's Section VII covers insertions; deletion maintenance is this
// implementation's extension (same machinery: locate the affected region,
// rescore touched patterns, re-mine locally).
type Delta struct {
	Insert []EdgeUpdate
	Delete []EdgeUpdate
}

// ApplyBatch inserts the edges of ΔE and updates the summary. Edges whose
// insertion fails (missing endpoints, duplicates) are reported and the rest
// still applied.
func (m *Maintainer) ApplyBatch(batch []EdgeUpdate) (*Summary, error) {
	return m.ApplyDelta(Delta{Insert: batch})
}

// ApplyDelta applies a batch of insertions and deletions and updates the
// summary. Failed updates are reported via the error while the rest are
// still applied.
func (m *Maintainer) ApplyDelta(delta Delta) (*Summary, error) {
	s, _, err := m.Apply(delta)
	return s, err
}

// Apply is ApplyDelta reporting additionally how many updates of the batch
// actually changed the graph. The serving layer keys its result cache on a
// graph epoch and uses the count to decide whether a batch must advance it:
// a fully rejected batch (duplicate inserts, missing endpoints) leaves the
// graph — and therefore every cached response — valid.
func (m *Maintainer) Apply(delta Delta) (*Summary, int, error) {
	var firstErr error
	endpoints := make([]graph.NodeID, 0, (len(delta.Insert)+len(delta.Delete))*2)
	applied := 0
	for _, e := range delta.Insert {
		if err := m.g.AddEdge(e.From, e.To, e.Label); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch insert: %w", err)
			}
			continue
		}
		applied++
		endpoints = append(endpoints, e.From, e.To)
	}
	for _, e := range delta.Delete {
		if err := m.g.RemoveEdge(e.From, e.To, e.Label); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch delete: %w", err)
			}
			continue
		}
		applied++
		endpoints = append(endpoints, e.From, e.To)
	}
	if applied == 0 {
		return m.Summary(), 0, firstErr
	}
	m.windows++

	// Affected region: every node within r of an inserted endpoint has a
	// changed E_v^r.
	affected := m.g.RHopNodesOf(endpoints, m.cfg.R)
	m.er.Invalidate(affected)

	// Group nodes in the affected region: candidates for (re)selection.
	var affectedGroup []graph.NodeID
	for _, v := range affected {
		if _, ok := m.groups.IndexOf(v); ok {
			affectedGroup = append(affectedGroup, v)
		}
	}
	if len(affectedGroup) == 0 {
		return m.Summary(), applied, firstErr // Fig. 7 line 2: summary unchanged
	}

	// Incremental selection: stream affected group nodes; their marginal
	// gains may have improved with the new edges.
	sp := m.run.phase(PhaseSelect)
	selectedBefore := graph.NodeSetOf(m.sel.Selected())
	for _, v := range affectedGroup {
		if !selectedBefore.Has(v) {
			m.sel.Process(v)
		}
	}
	m.sel.PostSelect()
	sp.End()
	selected := m.sel.Selected()
	selectedSet := graph.NodeSetOf(selected)

	// Refresh patterns: drop those covering no selected node (Fig. 7 lines
	// 5-6); re-verify coverage and re-score those touching the affected
	// region, since new edges can both create matches and change C_P.
	affectedSet := graph.NodeSetOf(affected)
	sp = m.run.phase(PhaseSummarize)
	kept := m.patterns[:0]
	for _, pi := range m.patterns {
		touches := false
		for _, v := range pi.Covered {
			if affectedSet.Has(v) {
				touches = true
				break
			}
		}
		if touches {
			pi = m.rescore(pi.P)
		}
		if countIn(pi.Covered, selectedSet) > 0 {
			kept = append(kept, pi)
		}
	}
	m.patterns = kept
	sp.End()

	m.recover(selected)
	return m.Summary(), applied, firstErr
}

// rescore re-evaluates a pattern's cover, covered edges, and C_P against the
// current graph and selection.
func (m *Maintainer) rescore(p *pattern.Pattern) PatternInfo {
	covered := sortNodes(m.matcher.CoverAmong(p, m.sel.Selected()))
	edges := graph.NewEdgeBits(m.g.EdgeIDBound())
	for _, v := range covered {
		if es, ok := m.matcher.CoveredEdgeBitsAt(p, v); ok {
			edges.Union(es)
		}
	}
	cp := m.er.UnionOf(covered).AndNotCount(edges)
	return PatternInfo{P: p, Covered: covered, CoveredEdges: m.g.EdgeSetOf(edges), CP: cp}
}

// recover restores the invariant V_p ⊆ P_V by mining locally around the
// uncovered selected nodes and greedily extending the pattern set.
func (m *Maintainer) recover(selected []graph.NodeID) {
	coveredSet := graph.NewNodeSet(0)
	for _, pi := range m.patterns {
		for _, v := range pi.Covered {
			coveredSet.Add(v)
		}
	}
	var uncovered []graph.NodeID
	for _, v := range selected {
		if !coveredSet.Has(v) {
			uncovered = append(uncovered, v)
		}
	}
	if len(uncovered) == 0 {
		return
	}
	sp := m.run.phase(PhaseMine)
	mcfg := m.cfg.Mining
	mcfg.MaxPatterns = m.cfg.PerNodePatterns * len(uncovered)
	cands := mining.SumGen(m.g, uncovered, selected, mcfg, m.er)
	m.candidates += len(cands)
	sp.End()

	sp = m.run.phase(PhaseSummarize)
	defer sp.End()

	// Seed the greedy with the existing patterns' coverage so feasibility is
	// judged against the whole summary.
	cs := newCoverState(m.cfg.N)
	for _, pi := range m.patterns {
		cs.add(&mining.Candidate{Covered: pi.Covered})
	}
	remaining := graph.NodeSetOf(uncovered)
	used := make([]bool, len(cands))
	for remaining.Len() > 0 {
		if m.cfg.K > 0 && len(m.patterns) >= m.cfg.K {
			break
		}
		best := -1
		bestNew, bestCP := 0, 0
		for i, cand := range cands {
			if used[i] {
				continue
			}
			newAnchors := 0
			for _, v := range cand.Covered {
				if remaining.Has(v) {
					newAnchors++
				}
			}
			if newAnchors == 0 || !cs.extendable(cand) {
				continue
			}
			if best < 0 || betterGain(newAnchors, cand.CP, bestNew, bestCP) {
				best, bestNew, bestCP = i, newAnchors, cand.CP
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		cand := cands[best]
		cs.add(cand)
		for _, v := range cand.Covered {
			remaining.Remove(v)
		}
		m.patterns = append(m.patterns, infoOf(m.g, cand))
	}
}

// Summary materializes the current r-summary.
func (m *Maintainer) Summary() *Summary {
	selected := m.sel.Selected()
	coveredSet := graph.NewNodeSet(0)
	for _, pi := range m.patterns {
		for _, v := range pi.Covered {
			coveredSet.Add(v)
		}
	}
	var uncovered []graph.NodeID
	for _, v := range selected {
		if !coveredSet.Has(v) {
			uncovered = append(uncovered, v)
		}
	}
	return buildSummary(m.cfg, append([]PatternInfo(nil), m.patterns...), m.er, m.util, uncovered, m.run.stats(m.candidates, m.windows))
}

// Selected exposes the current selection V_p.
func (m *Maintainer) Selected() []graph.NodeID { return m.sel.Selected() }

// TimeBatch is a helper for benchmarks: apply a batch and report elapsed
// time via the maintainer's sanctioned clock.
func (m *Maintainer) TimeBatch(batch []EdgeUpdate) (*Summary, time.Duration, error) {
	start := m.clock.Now()
	s, err := m.ApplyBatch(batch)
	return s, m.clock.Now().Sub(start), err
}

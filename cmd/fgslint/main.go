// Command fgslint is the repository's determinism & safety linter: a go
// vet-style multichecker that enforces the contract behind the promise that
// summaries and figures are byte-identical across runs and worker counts.
//
// Usage:
//
//	fgslint ./...                    # whole module (what CI runs)
//	fgslint ./internal/experiments   # one package
//	fgslint -checks maporder,detrand ./internal/...
//
// Analyzers (see DESIGN.md "Determinism contract & lint"):
//
//	maporder        map iteration order reaching an append/write path unsorted
//	detrand         global math/rand, unseeded rand.New, time.Now in deterministic packages
//	nopanic         panic/log.Fatal/os.Exit in library packages
//	lockdiscipline  copied mutex-bearing structs; Lock without same-function Unlock
//
// A finding is suppressed by "//lint:allow <analyzer> <why>" on the flagged
// line or the line above it. fgslint exits 1 if any finding remains, 2 on
// usage or load errors. It is built entirely on the standard library's
// go/ast and go/types, so it runs offline with no module downloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/cwru-db/fgs/internal/lint"
)

func main() {
	checks := flag.String("checks", "all", "comma-separated analyzer names, or 'all'")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fgslint [-checks list] [./... | ./pkg/... | ./pkg]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}

	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fgslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

package pattern

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

// Micro-benchmarks for the matcher — T_I in the paper's cost analysis.

func benchSocialGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	for i := 0; i < n; i++ {
		attrs := map[string]string{"exp": []string{"3", "4", "5"}[rng.Intn(3)]}
		g.AddNode("user", attrs)
	}
	for i := 0; i < n*3; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "recommend")
	}
	return g
}

func BenchmarkMatchAtStar(b *testing.B) {
	g := benchSocialGraph(b, 2000)
	m := NewMatcher(g, 0)
	p := star(Literal{Key: "exp", Val: "5"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchAt(p, graph.NodeID(i%2000))
	}
}

func BenchmarkMatchAtChain3(b *testing.B) {
	g := benchSocialGraph(b, 2000)
	m := NewMatcher(g, 0)
	p := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "user"}, {Label: "user"}, {Label: "user"}, {Label: "user"}},
		Edges: []Edge{{1, 0, "recommend"}, {2, 1, "recommend"}, {3, 2, "recommend"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchAt(p, graph.NodeID(i%2000))
	}
}

func BenchmarkCoveredEdgesAt(b *testing.B) {
	g := benchSocialGraph(b, 2000)
	m := NewMatcher(g, 64)
	p := star()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CoveredEdgesAt(p, graph.NodeID(i%2000))
	}
}

func BenchmarkDualSim(b *testing.B) {
	g := benchSocialGraph(b, 2000)
	m := NewMatcher(g, 0)
	p := star(Literal{Key: "exp", Val: "4"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DualSim(p)
	}
}

func BenchmarkCanonicalCode(b *testing.B) {
	p := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "a"}, {Label: "b"}, {Label: "c"}, {Label: "b"}, {Label: "a"}},
		Edges: []Edge{{0, 1, "e"}, {1, 2, "e"}, {0, 3, "f"}, {3, 2, "e"}, {4, 0, "e"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CanonicalCode(p)
	}
}

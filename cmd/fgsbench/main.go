// Command fgsbench regenerates the figures of the paper's evaluation
// section on the synthetic datasets and prints them as tables.
//
// Usage:
//
//	fgsbench -exp fig8a,fig8b          # specific figures
//	fgsbench -exp all -scale 1         # the full evaluation
//	fgsbench -load http://localhost:8471 -load-requests 1024 -load-concurrency 16
//	                                   # drive mixed traffic at a running fgsd
//	fgsbench -scale-bench -scale-nodes 1000000 -scale-duration 20s
//	                                   # in-process MVCC-vs-locked scale tier
//
// Experiments: fig8a fig8b fig8c fig8d fig8e fig8f fig9a fig9b fig9c fig9d
// fig10a fig10b case-talent case-pandemic. See DESIGN.md for the mapping
// to the paper's figures and EXPERIMENTS.md for expected shapes.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // mounted on the -fgs.metrics-addr listener
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/cwru-db/fgs/internal/experiments"
	"github.com/cwru-db/fgs/internal/obs"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Int("scale", 1, "dataset scale (1 = test-sized)")
		seed    = flag.Int64("seed", 42, "generator seed")
		format  = flag.String("format", "table", "output format: table or csv")
		workers = flag.Int("workers", 0, "mining/scoring worker goroutines (0 = sequential, the paper-comparable default; metric values are identical at any setting)")

		traceOut    = flag.String("fgs.trace", "", "write a Chrome trace of the run's phase spans to this file")
		metricsOut  = flag.String("fgs.metrics-out", "", "write runtime counters in Prometheus text format to this file")
		metricsAddr = flag.String("fgs.metrics-addr", "", "serve /metrics (Prometheus) and /debug/pprof on this address while the run lasts")
		obsSummary  = flag.Bool("fgs.obs-summary", false, "print the runtime-counter summary table to stderr")

		loadURL  = flag.String("load", "", "run as a load driver against an fgsd base URL (e.g. http://localhost:8471) instead of the experiment suite")
		loadReqs = flag.Int("load-requests", 256, "load mode: total requests to send")
		loadConc = flag.Int("load-concurrency", 8, "load mode: concurrent client goroutines")
		loadSeed = flag.Int64("load-seed", 1, "load mode: request-mix seed")

		scaleBench      = flag.Bool("scale-bench", false, "run the scale tier: in-process locked-vs-mvcc mixed workload over a large graph")
		scaleGraph      = flag.String("scale-graph", "", "scale mode: graph file to load (text or binary, sniffed; empty = generate)")
		scaleDataset    = flag.String("scale-dataset", "lki", "scale mode: sized generator when no -scale-graph (lki or dbp)")
		scaleNodes      = flag.Int("scale-nodes", 1_000_000, "scale mode: generated graph node count")
		scaleGroups     = flag.String("scale-groups", "user:city:c0,c1:1:4", "scale mode: group spec label:attr:val1,val2:lower:upper")
		scaleDuration   = flag.Duration("scale-duration", 20*time.Second, "scale mode: measured duration per read mode")
		scaleReaders    = flag.Int("scale-readers", 8, "scale mode: concurrent reader goroutines")
		scaleWriters    = flag.Int("scale-writers", 2, "scale mode: concurrent writer goroutines")
		scaleWriteEvery = flag.Duration("scale-write-interval", 100*time.Millisecond, "scale mode: pause between a writer's update batches (0 = back-to-back bulk ingest)")
		scaleWriteBatch = flag.Int("scale-write-batch", 256, "scale mode: edges per update batch (bulk batches hold the locked-mode write lock for the whole apply)")
		scaleMaxViews   = flag.Int("scale-max-views", 0, "scale mode: MVCC replica pool cap (0 = server default)")
		scaleCache      = flag.Int("scale-cache-entries", 0, "scale mode: result-cache capacity (0 = server default, -1 = disabled for a pure-compute comparison)")
		scaleDistinct   = flag.Int("scale-distinct-views", 64, "scale mode: distinct attribute-literal view patterns in the read mix (all invalidated on every epoch bump)")
		scaleRounds     = flag.Int("scale-rounds", 1, "scale mode: interleaved locked/mvcc round pairs; the median round per mode is reported (medians filter scheduler/GC noise on shared hosts)")
		scaleShards     = flag.Int("scale-shards", 0, "scale mode: focus-region shards for the summarize-throughput comparison (0 or 1 = skip it)")
		scaleMemCeiling = flag.Int("scale-mem-ceiling-mb", 0, "scale mode: fail if peak heap exceeds this many MB (0 = no ceiling)")
		scaleOut        = flag.String("scale-out", "", "scale mode: also write the JSON result to this file")
	)
	flag.Parse()

	suite := experiments.New(*scale, *seed)
	suite.Workers = *workers

	// Observability is opt-in: any obs flag installs a collector on the suite.
	// Collection never changes figure values (DESIGN.md §8).
	var observer *obs.Observer
	if *traceOut != "" || *metricsOut != "" || *metricsAddr != "" || *obsSummary {
		observer = obs.NewObserver(nil)
		suite.Obs = observer
	}
	stopMetrics := func() {}
	if *metricsAddr != "" {
		stopMetrics = serveMetrics(*metricsAddr, observer)
	}

	if *scaleBench {
		err := runScale(os.Stdout, scaleConfig{
			GraphPath:     *scaleGraph,
			Dataset:       *scaleDataset,
			Nodes:         *scaleNodes,
			Seed:          *seed,
			GroupSpec:     *scaleGroups,
			Duration:      *scaleDuration,
			Readers:       *scaleReaders,
			Writers:       *scaleWriters,
			WriteInterval: *scaleWriteEvery,
			WriteBatch:    *scaleWriteBatch,
			MaxViews:      *scaleMaxViews,
			CacheEntries:  *scaleCache,
			DistinctViews: *scaleDistinct,
			Rounds:        *scaleRounds,
			Shards:        *scaleShards,
			MemCeilingMB:  *scaleMemCeiling,
			OutPath:       *scaleOut,
		})
		stopMetrics()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *loadURL != "" {
		err := runLoad(os.Stdout, loadConfig{
			BaseURL:     strings.TrimRight(*loadURL, "/"),
			Requests:    *loadReqs,
			Concurrency: *loadConc,
			Seed:        *loadSeed,
		})
		stopMetrics()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgsbench:", err)
			os.Exit(1)
		}
		return
	}
	runners := map[string]func() ([]experiments.Row, error){
		"fig8a":         suite.Fig8a,
		"fig8b":         suite.Fig8b,
		"fig8c":         suite.Fig8c,
		"fig8d":         suite.Fig8d,
		"fig8e":         suite.Fig8e,
		"fig8f":         suite.Fig8f,
		"fig9a":         suite.Fig9a,
		"fig9b":         suite.Fig9b,
		"fig9c":         suite.Fig9c,
		"fig9d":         suite.Fig9d,
		"fig10a":        suite.Fig10a,
		"fig10b":        suite.Fig10b,
		"case-talent":   suite.CaseTalent,
		"case-pandemic": suite.CasePandemic,
	}
	order := []string{
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig10a", "fig10b",
		"case-talent", "case-pandemic",
	}

	var selected []string
	if *exps == "all" {
		selected = order
	} else {
		for _, e := range strings.Split(*exps, ",") {
			e = strings.TrimSpace(e)
			if _, ok := runners[e]; !ok {
				fmt.Fprintf(os.Stderr, "fgsbench: unknown experiment %q\n", e)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var all []experiments.Row
	for _, e := range selected {
		// A per-figure span wraps every run of the figure's algorithms; the
		// algorithm spans nest inside it in the exported trace.
		sp := observer.GetTrace().Start(e)
		start := time.Now()
		rows, err := runners[e]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fgsbench: %s: %v\n", e, err)
			os.Exit(1)
		}
		sp.SetArg("rows", int64(len(rows)))
		sp.End()
		fmt.Fprintf(os.Stderr, "fgsbench: %s done in %v (%d rows)\n", e, time.Since(start).Round(time.Millisecond), len(rows))
		all = append(all, rows...)
	}
	switch *format {
	case "table":
		fmt.Print(experiments.FormatRows(all))
	case "csv":
		if err := writeCSV(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "fgsbench:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "fgsbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	stopMetrics()
	if observer != nil {
		if err := exportObs(observer, *traceOut, *metricsOut, *obsSummary); err != nil {
			fmt.Fprintln(os.Stderr, "fgsbench:", err)
			os.Exit(1)
		}
	}
}

// gatherAll merges the component counters with the per-phase span metrics.
func gatherAll(o *obs.Observer) []obs.Metric {
	return append(o.Reg.Gather(), obs.PhaseMetrics(o.Trace)...)
}

// serveMetrics exposes /metrics in the Prometheus text format plus the
// net/http/pprof handlers (imported for effect onto the default mux) on addr
// for the duration of the run. It returns a stop function that shuts the
// listener down gracefully — finishing any in-flight scrape — instead of
// leaking the server until process exit.
func serveMetrics(addr string, o *obs.Observer) func() {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := obs.WritePrometheus(w, gatherAll(o)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Addr: addr} // nil handler = DefaultServeMux, where pprof registered
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "fgsbench: metrics listener: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "fgsbench: serving /metrics and /debug/pprof on %s\n", addr)
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fgsbench: metrics shutdown: %v\n", err)
		}
	}
}

// exportObs writes whatever the observer collected: the Chrome trace, the
// Prometheus text file, and/or a summary table on stderr.
func exportObs(o *obs.Observer, tracePath, metricsPath string, table bool) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, o.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fgsbench: trace written to %s\n", tracePath)
	}
	if metricsPath != "" || table {
		ms := gatherAll(o)
		if metricsPath != "" {
			f, err := os.Create(metricsPath)
			if err != nil {
				return err
			}
			if err := obs.WritePrometheus(f, ms); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "fgsbench: metrics written to %s\n", metricsPath)
		}
		if table {
			fmt.Fprint(os.Stderr, obs.FormatTable(ms))
		}
	}
	return nil
}

// writeCSV emits one row per data point for plotting tools.
func writeCSV(w *os.File, rows []experiments.Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exp", "dataset", "algo", "x_label", "x", "metric", "value"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Exp, r.Dataset, r.Algo, r.XLabel,
			strconv.FormatFloat(r.X, 'g', -1, 64),
			r.Metric,
			strconv.FormatFloat(r.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

module github.com/cwru-db/fgs

go 1.22

package server

import (
	"github.com/cwru-db/fgs/internal/leakcheck"

	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/cwru-db/fgs/internal/store"
)

// newDurableServer boots a server over the data directory, resuming from
// whatever the store recovered — the same dance cmd/fgsd does. FsyncBatch
// keeps the WAL flusher goroutine out of the picture (leakcheck) and makes
// every acknowledged batch durable immediately, so "crash" in these tests
// is simply: close without a final snapshot.
func newDurableServer(t testing.TB, dir string, snapEvery int, cfg Config) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, rec, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	g, groups := testGraph(t)
	if !rec.Fresh {
		g = rec.Graph
	}
	cfg.Store, cfg.Resume, cfg.SnapshotEvery = st, rec, snapEvery
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s, err := New(g, groups, cfg)
	if err != nil {
		st.Close() //lint:allow errdrop (boot is failing; the close error is secondary)
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, st
}

// durableUpdates returns n distinct epoch-advancing update bodies: inserts
// of edges that do not exist in the test graph, each applying cleanly.
func durableUpdates(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`{"insert":[{"from":%d,"to":%d,"label":"wal"}]}`, i%24, (i+9)%24)
	}
	return out
}

// durableStats is the subset of /v1/stats that survives a crash: engine
// state, not session counters (cache hits and admission tallies restart at
// zero with the process).
type durableStats struct {
	Epoch   uint64
	Nodes   int
	Edges   int
	Groups  int
	Summary SummaryStats
}

func fetchState(t testing.TB, ts *httptest.Server) (durableStats, map[string][]byte) {
	t.Helper()
	resp, body := get(t, ts, "/v1/stats")
	wantStatus(t, resp, body, 200)
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	reads := map[string][]byte{}
	for name, req := range map[string][2]string{
		"summarize4": {"/v1/summarize", `{"n":4}`},
		"summarize6": {"/v1/summarize", `{"n":6}`},
		"topk":       {"/v1/summarize-k", `{"k":2,"n":5}`},
		"view":       {"/v1/view", "{\"pattern\":\"n 0 user\\nf 0\"}"},
	} {
		resp, body := post(t, ts, req[0], req[1])
		wantStatus(t, resp, body, 200)
		reads[name] = body
	}
	return durableStats{Epoch: st.Epoch, Nodes: st.Nodes, Edges: st.Edges, Groups: st.Groups, Summary: st.Summary}, reads
}

// TestStoreCrashRecoveryByteIdentical is the acceptance test of fgstore
// (ISSUE: durability): apply a stream of updates, kill the daemon without a
// drain snapshot, boot a new one over the same directory, and require the
// recovered epoch, durable stats, and every canonical read body to be
// byte-identical — then keep applying updates and require the recovered
// engine to stay in lockstep with a never-crashed reference.
func TestStoreCrashRecoveryByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("durability e2e skipped in -short")
	}
	dir := t.TempDir()
	updates := durableUpdates(7)

	_, ts1, st1 := newDurableServer(t, dir, 100, Config{})
	for i, u := range updates {
		resp, body := post(t, ts1, "/v1/update", u)
		wantStatus(t, resp, body, 200)
		if i == 3 { // interleave a read so the cache sees traffic pre-crash
			post(t, ts1, "/v1/summarize", `{"n":4}`)
		}
	}
	before, readsBefore := fetchState(t, ts1)
	if before.Epoch != uint64(len(updates)) {
		t.Fatalf("pre-crash epoch %d, want %d", before.Epoch, len(updates))
	}
	// Crash: no drain, no FinalSnapshot. Every acked batch is on disk
	// (FsyncBatch); the only snapshot is the boot-time epoch-0 image, so
	// recovery must replay the entire tail.
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2, st2 := newDurableServer(t, dir, 100, Config{})
	if s2.Epoch() != before.Epoch {
		t.Fatalf("recovered epoch %d, want %d", s2.Epoch(), before.Epoch)
	}
	after, readsAfter := fetchState(t, ts2)
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("durable stats diverge:\n got %+v\nwant %+v", after, before)
	}
	for name := range readsBefore {
		if !bytes.Equal(readsAfter[name], readsBefore[name]) {
			t.Errorf("%s body diverges after recovery:\n got %s\nwant %s", name, readsAfter[name], readsBefore[name])
		}
	}

	// Lockstep continuation: a reference engine that saw all updates in one
	// uninterrupted life must agree with the recovered one byte for byte.
	more := []string{
		`{"insert":[{"from":2,"to":17,"label":"wal2"}]}`,
		`{"delete":[{"from":0,"to":9,"label":"wal"}]}`,
		`{"insert":[{"from":5,"to":20,"label":"wal2"},{"from":20,"to":5,"label":"wal2"}]}`,
	}
	_, tsRef := newTestServer(t, Config{Workers: 4})
	for _, u := range append(append([]string{}, updates...), more...) {
		resp, body := post(t, tsRef, "/v1/update", u)
		wantStatus(t, resp, body, 200)
	}
	for _, u := range more {
		resp, body := post(t, ts2, "/v1/update", u)
		wantStatus(t, resp, body, 200)
	}
	gotStats, gotReads := fetchState(t, ts2)
	wantStats, wantReads := fetchState(t, tsRef)
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("post-recovery stats diverge from reference:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	for name := range wantReads {
		if !bytes.Equal(gotReads[name], wantReads[name]) {
			t.Errorf("%s body diverges from never-crashed reference:\n got %s\nwant %s", name, gotReads[name], wantReads[name])
		}
	}
	ts2.Close()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreTornWriteRecovery staples a partial record to the WAL — the disk
// image of a crash mid-append, before the ack — and requires recovery to
// truncate it away and come back at the last acknowledged epoch with
// byte-identical reads.
func TestStoreTornWriteRecovery(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	_, ts1, st1 := newDurableServer(t, dir, 100, Config{})
	for _, u := range durableUpdates(4) {
		resp, body := post(t, ts1, "/v1/update", u)
		wantStatus(t, resp, body, 200)
	}
	before, readsBefore := fetchState(t, ts1)
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible length prefix followed by too few payload bytes.
	if _, err := f.Write([]byte{0x40, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, rec, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatal("torn record not reported")
	}
	if rec.Epoch != before.Epoch {
		t.Fatalf("recovered epoch %d, want %d", rec.Epoch, before.Epoch)
	}
	_, groups := testGraph(t)
	s2, err := New(rec.Graph, groups, Config{Workers: 4, Store: st, Resume: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	after, readsAfter := fetchState(t, ts2)
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("durable stats diverge after torn-write recovery:\n got %+v\nwant %+v", after, before)
	}
	for name := range readsBefore {
		if !bytes.Equal(readsAfter[name], readsBefore[name]) {
			t.Errorf("%s body diverges after torn-write recovery", name)
		}
	}
	ts2.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRecoverTwiceDeterministic boots two servers from the same data
// directory in sequence and fires the identical request script at both:
// the full response transcripts — session counters included — must match
// byte for byte, the recovery-flavored version of the e2e determinism
// guarantee.
func TestStoreRecoverTwiceDeterministic(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("durability e2e skipped in -short")
	}
	dir := t.TempDir()
	_, ts0, st0 := newDurableServer(t, dir, 100, Config{})
	for _, u := range durableUpdates(5) {
		resp, body := post(t, ts0, "/v1/update", u)
		wantStatus(t, resp, body, 200)
	}
	ts0.Close()
	if err := st0.Close(); err != nil {
		t.Fatal(err)
	}

	script := []struct{ path, body string }{
		{"/v1/summarize", `{"n":4}`},
		{"/v1/stats", ``},
		{"/v1/summarize", `{"n":4}`}, // cache hit the second time — in both lives
		{"/v1/view", "{\"pattern\":\"n 0 user\\nf 0\"}"},
		{"/v1/update", `{"insert":[{"from":3,"to":15,"label":"wal2"}]}`},
		{"/v1/stats", ``},
		{"/v1/summarize-k", `{"k":2,"n":5}`},
	}
	run := func() [][]byte {
		// Each life replays from the same snapshot + tail, then serves the
		// same script; the update leaves the directory ahead by one epoch,
		// so reset it by removing the trailing segment growth — instead,
		// copy: run against a scratch copy of the directory.
		scratch := t.TempDir()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(scratch, ent.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		_, ts, st := newDurableServer(t, scratch, 100, Config{})
		defer st.Close() //lint:allow errdrop (test teardown)
		defer ts.Close()
		out := make([][]byte, len(script))
		for i, req := range script {
			var status int
			var body []byte
			if req.path == "/v1/stats" {
				r, b := get(t, ts, req.path)
				status, body = r.StatusCode, b
			} else {
				r, b := post(t, ts, req.path, req.body)
				status, body = r.StatusCode, b
			}
			if status != 200 {
				t.Fatalf("script %d %s: status %d (%s)", i, req.path, status, body)
			}
			out[i] = body
		}
		return out
	}
	run1 := run()
	run2 := run()
	for i := range run1 {
		if !bytes.Equal(run1[i], run2[i]) {
			t.Errorf("script %d (%s %s): recovered lives diverge:\n  %s\n  %s",
				i, script[i].path, script[i].body, run1[i], run2[i])
		}
	}
}

// TestStoreSnapshotCadenceAndDrain: with SnapshotEvery=2 the engine
// snapshots as it goes (mvcc mode: off the write path), FinalSnapshot seals
// the current epoch at drain, and the next boot replays an empty tail.
func TestStoreSnapshotCadenceAndDrain(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	s1, ts1, st1 := newDurableServer(t, dir, 2, Config{})
	for _, u := range durableUpdates(5) {
		resp, body := post(t, ts1, "/v1/update", u)
		wantStatus(t, resp, body, 200)
	}
	before, readsBefore := fetchState(t, ts1)
	// Drain order per cmd/fgsd: stop traffic, snapshot, close.
	s1.StartDrain()
	ts1.Close()
	if err := s1.FinalSnapshot(); err != nil {
		t.Fatal(err)
	}
	if got := st1.SnapshotEpoch(); got != before.Epoch {
		t.Fatalf("drain snapshot at epoch %d, want %d", got, before.Epoch)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 0 || rec.SnapshotEpoch != before.Epoch {
		t.Fatalf("post-drain recovery: snapshot=%d tail=%d, want snapshot=%d tail=0",
			rec.SnapshotEpoch, len(rec.Tail), before.Epoch)
	}
	_, groups := testGraph(t)
	s2, err := New(rec.Graph, groups, Config{Workers: 4, Store: st2, Resume: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	after, readsAfter := fetchState(t, ts2)
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("durable stats diverge across drain/restart:\n got %+v\nwant %+v", after, before)
	}
	for name := range readsBefore {
		if !bytes.Equal(readsAfter[name], readsBefore[name]) {
			t.Errorf("%s body diverges across drain/restart", name)
		}
	}
	ts2.Close()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

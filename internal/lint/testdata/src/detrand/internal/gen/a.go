// Fixture for the detrand analyzer outside the deterministic packages:
// internal/gen is the seeded generator package and is exempt, so nothing in
// this file is flagged.
package gen

import (
	"math/rand"
	"time"
)

func Noise() int { return rand.Intn(10) }

func Stamp() time.Time { return time.Now() }

package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
)

// The JSON interchange form of an r-summary: patterns (with focus, nodes,
// literals, edges), the covered node list, and the correction edges with
// string labels. It is self-contained — a consumer can reconstruct the
// covered nodes' r-hop neighborhoods from the patterns' embeddings plus the
// corrections without access to this library's internals.

type summaryJSON struct {
	R           int           `json:"r"`
	Patterns    []patternJSON `json:"patterns"`
	Covered     []int64       `json:"covered"`
	Corrections []edgeJSON    `json:"corrections"`
	CL          int           `json:"accumulated_loss"`
	Utility     float64       `json:"utility"`
}

type patternJSON struct {
	Focus   int             `json:"focus"`
	Nodes   []patternNodeJS `json:"nodes"`
	Edges   []patternEdgeJS `json:"edges"`
	Covered []int64         `json:"covered"`
	CP      int             `json:"correction_loss"`
}

type patternNodeJS struct {
	Label    string            `json:"label"`
	Literals map[string]string `json:"literals,omitempty"`
}

type patternEdgeJS struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
}

type edgeJSON struct {
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	Label string `json:"label"`
}

// WriteJSON serializes the summary. Edge labels are resolved against g (the
// graph the summary was computed on).
func (s *Summary) WriteJSON(w io.Writer, g *graph.Graph) error {
	out := summaryJSON{R: s.R, CL: s.CL, Utility: s.Utility}
	for _, v := range s.Covered {
		out.Covered = append(out.Covered, int64(v))
	}
	for _, pi := range s.Patterns {
		pj := patternJSON{Focus: pi.P.Focus, CP: pi.CP}
		for _, n := range pi.P.Nodes {
			nj := patternNodeJS{Label: n.Label}
			if len(n.Literals) > 0 {
				nj.Literals = make(map[string]string, len(n.Literals))
				for _, l := range n.Literals {
					nj.Literals[l.Key] = l.Val
				}
			}
			pj.Nodes = append(pj.Nodes, nj)
		}
		for _, e := range pi.P.Edges {
			pj.Edges = append(pj.Edges, patternEdgeJS{From: e.From, To: e.To, Label: e.Label})
		}
		for _, v := range pi.Covered {
			pj.Covered = append(pj.Covered, int64(v))
		}
		out.Patterns = append(out.Patterns, pj)
	}
	corrections := make([]edgeJSON, 0, s.Corrections.Len())
	for e := range s.Corrections {
		corrections = append(corrections, edgeJSON{From: int64(e.From), To: int64(e.To), Label: g.EdgeLabelName(e.Label)})
	}
	sort.Slice(corrections, func(i, j int) bool {
		if corrections[i].From != corrections[j].From {
			return corrections[i].From < corrections[j].From
		}
		if corrections[i].To != corrections[j].To {
			return corrections[i].To < corrections[j].To
		}
		return corrections[i].Label < corrections[j].Label
	})
	out.Corrections = corrections

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSummaryJSON parses a summary previously written with WriteJSON,
// re-binding correction edge labels against g. Per-pattern covered edge
// sets are re-derived from the patterns' embeddings at the covered nodes,
// so the loaded summary supports DescribedEdges and Reconstruct.
func ReadSummaryJSON(r io.Reader, g *graph.Graph, embedCap int) (*Summary, error) {
	var in summaryJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: parse summary: %w", err)
	}
	s := &Summary{R: in.R, CL: in.CL, Utility: in.Utility, Corrections: graph.NewEdgeSet(len(in.Corrections))}
	for _, v := range in.Covered {
		s.Covered = append(s.Covered, graph.NodeID(v))
	}
	sortNodes(s.Covered)
	m := pattern.NewMatcher(g, embedCap)
	for _, pj := range in.Patterns {
		p := &pattern.Pattern{Focus: pj.Focus}
		for _, nj := range pj.Nodes {
			n := pattern.Node{Label: nj.Label}
			for k, v := range nj.Literals {
				n.Literals = append(n.Literals, pattern.Literal{Key: k, Val: v})
			}
			sort.Slice(n.Literals, func(i, j int) bool { return n.Literals[i].Key < n.Literals[j].Key })
			p.Nodes = append(p.Nodes, n)
		}
		for _, ej := range pj.Edges {
			p.Edges = append(p.Edges, pattern.Edge{From: ej.From, To: ej.To, Label: ej.Label})
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: parse summary: %w", err)
		}
		pi := PatternInfo{P: p, CP: pj.CP, CoveredEdges: graph.NewEdgeSet(0)}
		for _, v := range pj.Covered {
			pi.Covered = append(pi.Covered, graph.NodeID(v))
		}
		for _, v := range pi.Covered {
			if es, ok := m.CoveredEdgesAt(p, v); ok {
				pi.CoveredEdges.AddAll(es)
			}
		}
		s.Patterns = append(s.Patterns, pi)
	}
	for _, ej := range in.Corrections {
		lid, ok := g.EdgeLabelID(ej.Label)
		if !ok {
			return nil, fmt.Errorf("core: parse summary: unknown edge label %q", ej.Label)
		}
		s.Corrections.Add(graph.EdgeRef{From: graph.NodeID(ej.From), To: graph.NodeID(ej.To), Label: lid})
	}
	return s, nil
}

// QueryView answers a pattern query over the summary treated as a
// materialized view (property (3) of the problem statement): only the
// covered nodes are tested as focus anchors, which is how the paper's
// Fig. 11 case study accelerates query P8. The result is the subset of
// covered nodes the pattern matches, sorted.
func QueryView(g *graph.Graph, s *Summary, p *pattern.Pattern, embedCap int) []graph.NodeID {
	m := pattern.NewMatcher(g, embedCap)
	return sortNodes(m.CoverAmong(p, s.Covered))
}

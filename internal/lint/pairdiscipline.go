package lint

// PairDiscipline is the control-flow-aware acquire/release analyzer
// (DESIGN.md §12): every resource named in the declarative pair table must
// be released on every path from its acquisition to the function's return
// — not merely somewhere in the same function, which is all the pre-CFG
// lockdiscipline heuristic could check. It runs the generic must-pair
// dataflow (dataflow.go) over the function's CFG (cfg.go) and reports the
// concrete leaking path.
//
// The pair table covers the repository's resource disciplines:
//
//	sync Lock/Unlock, RLock/RUnlock   locks, keyed by receiver expression
//	viewSet.pin / unpin               MVCC epoch-view pins (server)
//	Server.acquireRead / release      read contexts (server)
//	admission.acquire / call          worker-slot release closures (server)
//	Trace.Start, Span.Child,
//	runObs.phase / End, finish        obs spans (core, obs)
//	Graph.acquireScratch / release    BFS scratch buffers (graph)
//	partitionSlot.beginBuild / call   partition-build singleflight (server)
//	sync.Pool Get / Put               pooled scratch generally
//
// Results that are handed off — returned, stored in a struct, captured by a
// closure, passed to another function — leave the function's responsibility
// and stop being tracked; a release method referenced as a method value
// (release: s.mu.RUnlock) likewise counts as a handoff. Error-conditioned
// acquires (release, err := acquire(...)) are understood: on the branch
// where err != nil (or errors.Is(err, ...)) holds, the resource is dead and
// needs no release.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var PairDiscipline = &Analyzer{
	Name: "pairdiscipline",
	Doc:  "flag acquire calls (locks, pins, spans, scratch, slots) not released on every path",
	Run:  runPairDiscipline,
}

type pairMode int

const (
	pairRecv   pairMode = iota // release is a method on the same receiver expression
	pairResult                 // the resource is a result of the acquire call
)

// pairSpec is one row of the declarative pair table.
type pairSpec struct {
	id   string   // short label for messages
	mode pairMode // receiver-keyed or result-keyed

	acquirePkg   string // required defining package path ("" = any)
	acquireRecv  string // required receiver type name ("" = any, incl. plain funcs)
	acquireNames map[string]bool

	releaseNames  map[string]bool // method/field names that release the resource
	releaseByCall bool            // calling the resource value itself releases it

	resultIdx int // index of the resource among the acquire's results
	errIdx    int // index of an error co-result (-1 = none)

	hint string // remediation phrasing
}

var pairTable = []*pairSpec{
	{
		id: "Lock/Unlock", mode: pairRecv,
		acquirePkg: "sync", acquireNames: names("Lock"),
		releaseNames: names("Unlock"),
		hint:         "release on every path (prefer defer)",
	},
	{
		id: "RLock/RUnlock", mode: pairRecv,
		acquirePkg: "sync", acquireNames: names("RLock"),
		releaseNames: names("RUnlock"),
		hint:         "release on every path (prefer defer)",
	},
	{
		id: "pin/unpin", mode: pairResult,
		acquireRecv: "viewSet", acquireNames: names("pin"),
		releaseNames: names("unpin"), resultIdx: 0, errIdx: -1,
		hint: "unpin the view on every path",
	},
	{
		id: "acquireRead/release", mode: pairResult,
		acquireNames: names("acquireRead"),
		releaseNames: names("release"), resultIdx: 0, errIdx: -1,
		hint: "call the read context's release on every path (prefer defer)",
	},
	{
		id: "admission acquire/release", mode: pairResult,
		acquireRecv: "admission", acquireNames: names("acquire"),
		releaseByCall: true, resultIdx: 0, errIdx: 1,
		hint: "call the returned release func on every path (prefer defer)",
	},
	{
		id: "partition beginBuild/release", mode: pairResult,
		acquireRecv: "partitionSlot", acquireNames: names("beginBuild"),
		releaseByCall: true, resultIdx: 0, errIdx: 1,
		hint: "call the returned release func on every path (prefer defer) so the singleflight slot frees",
	},
	{
		id: "span Start/End", mode: pairResult,
		acquireRecv: "Trace", acquireNames: names("Start"),
		releaseNames: names("End"), resultIdx: 0, errIdx: -1,
		hint: "End the span on every path",
	},
	{
		id: "reqspan Start/End", mode: pairResult,
		acquireRecv: "ReqTrace", acquireNames: names("Start"),
		releaseNames: names("End"), resultIdx: 0, errIdx: -1,
		hint: "End the request stage span on every path",
	},
	{
		id: "span Child/End", mode: pairResult,
		acquireRecv: "Span", acquireNames: names("Child"),
		releaseNames: names("End"), resultIdx: 0, errIdx: -1,
		hint: "End the span on every path",
	},
	{
		id: "phase span/End", mode: pairResult,
		acquireRecv: "runObs", acquireNames: names("phase"),
		releaseNames: names("End"), resultIdx: 0, errIdx: -1,
		hint: "End the phase span on every path",
	},
	{
		id: "startRun/finish", mode: pairResult,
		acquireNames: names("startRun"),
		releaseNames: names("finish", "abort"), resultIdx: 0, errIdx: -1,
		hint: "finish (or abort) the run on every path so the root span closes",
	},
	{
		id: "acquireScratch/releaseScratch", mode: pairResult,
		acquireRecv: "Graph", acquireNames: names("acquireScratch"),
		releaseNames: names("releaseScratch"), resultIdx: 0, errIdx: -1,
		hint: "return the scratch to the pool on every path (prefer defer)",
	},
	{
		id: "Pool Get/Put", mode: pairResult,
		acquirePkg: "sync", acquireRecv: "Pool", acquireNames: names("Get"),
		releaseNames: names("Put"), resultIdx: 0, errIdx: -1,
		hint: "Put the pooled value back on every path",
	},
	{
		id: "store Open/Close", mode: pairResult,
		acquirePkg: "github.com/cwru-db/fgs/internal/store", acquireNames: names("Open"),
		releaseNames: names("Close"), resultIdx: 0, errIdx: 2,
		hint: "Close the store on every path (prefer defer) so the WAL seals with a final sync",
	},
	{
		id: "snapshot BeginSnapshot/Commit|Abort", mode: pairResult,
		acquireRecv: "Store", acquireNames: names("BeginSnapshot"),
		releaseNames: names("Commit", "Abort"), resultIdx: 0, errIdx: 1,
		hint: "finish the snapshot with exactly one of Commit or Abort on every path",
	},
}

func names(ns ...string) map[string]bool {
	m := make(map[string]bool, len(ns))
	for _, n := range ns {
		m[n] = true
	}
	return m
}

// pairResource is one tracked acquisition site.
type pairResource struct {
	id   int
	spec *pairSpec
	pos  token.Pos
	call *ast.CallExpr

	// recv mode: the receiver expression, textually.
	key string
	// result mode: the variable bound to the result, and the error co-result.
	bindObj types.Object
	errObj  types.Object

	// display strings for messages
	acquireText string // e.g. "c.mu.Lock" or "run.phase"
}

func runPairDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		// Top-level function bodies.
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFuncPair(pass, fd.Body)
			}
		}
		// Every function literal is its own analysis scope: a resource
		// acquired in a closure must be released in that closure (or hand
		// off), regardless of where the closure runs.
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				analyzeFuncPair(pass, fl.Body)
			}
			return true
		})
	}
	return nil
}

// --- matching helpers ----------------------------------------------------

// calleeFunc resolves a call's callee to a *types.Func when it is a named
// function or method (through method-set selection).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvTypeName returns the name of fn's receiver's named type ("" for plain
// functions or unnamed receivers).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// matchAcquire reports the pair spec an acquire call matches, if any.
func matchAcquire(pass *Pass, call *ast.CallExpr) *pairSpec {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	for _, spec := range pairTable {
		if !spec.acquireNames[fn.Name()] {
			continue
		}
		if spec.acquirePkg != "" && (fn.Pkg() == nil || fn.Pkg().Path() != spec.acquirePkg) {
			continue
		}
		if spec.acquireRecv != "" && recvTypeName(fn) != spec.acquireRecv {
			continue
		}
		if spec.mode == pairRecv {
			if _, ok := unparen(call.Fun).(*ast.SelectorExpr); !ok {
				continue
			}
		}
		return spec
	}
	return nil
}

// exprObj resolves an identifier expression to its object.
func exprObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// --- per-function analysis -----------------------------------------------

// parentedVisit walks root keeping the parent chain. funcLitDepth counts
// enclosing function literals that are NOT immediately-deferred closures
// (a `defer func() { ... }()` body runs at this function's exits, so it is
// treated as part of this function for release purposes).
type parentedVisit func(n ast.Node, parents []ast.Node, funcLitDepth int)

func walkParents(root ast.Node, visit parentedVisit) {
	var parents []ast.Node
	var walk func(n ast.Node, funcLitDepth int)
	walk = func(n ast.Node, funcLitDepth int) {
		if n == nil {
			return
		}
		visit(n, parents, funcLitDepth)
		parents = append(parents, n)
		depth := funcLitDepth
		if fl, ok := n.(*ast.FuncLit); ok && !isDeferredClosure(fl, parents) {
			depth++
		}
		for _, child := range childNodes(n) {
			walk(child, depth)
		}
		parents = parents[:len(parents)-1]
	}
	walk(root, 0)
}

// isDeferredClosure reports whether fl is the callee of a call that is the
// immediate argument of a defer statement: defer func(){...}().
func isDeferredClosure(fl *ast.FuncLit, parents []ast.Node) bool {
	n := len(parents)
	if n < 2 {
		return false
	}
	call, ok := parents[n-1].(*ast.CallExpr)
	if !ok || unparen(call.Fun) != ast.Node(fl) {
		return false
	}
	_, ok = parents[n-2].(*ast.DeferStmt)
	return ok
}

// childNodes enumerates n's direct children via ast.Inspect's first level.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

func analyzeFuncPair(pass *Pass, body *ast.BlockStmt) {
	resources := collectResources(pass, body)
	if len(resources) == 0 {
		return
	}

	cfg := buildCFG(body, func(call *ast.CallExpr) bool { return isTerminalCall(pass, call) })

	events := make(map[ast.Node][]pairEvent)
	eventsFor := func(n ast.Node) []pairEvent {
		if ev, ok := events[n]; ok {
			return ev
		}
		ev := stmtPairEvents(pass, n, resources)
		events[n] = ev
		return ev
	}

	problem := &flowProblem{
		numFacts: len(resources),
		transferStmt: func(n ast.Node, state factSet) {
			for _, ev := range eventsFor(n) {
				if ev.gen {
					state.add(ev.resource)
				} else {
					state.del(ev.resource)
				}
			}
		},
		refineEdge: func(from *cfgBlock, succIdx int, state factSet) {
			if from.branchCond == nil {
				return
			}
			refinePairEdge(pass, from.branchCond, succIdx == 0, resources, state)
		},
	}
	res := solveForward(cfg, problem)

	for _, id := range res.leaksAtExit() {
		r := resources[id]
		genBlock := blockContaining(cfg, eventsFor, id)
		if genBlock == nil {
			continue
		}
		lines, exitPos, ok := res.witnessPath(pass.Fset, id, genBlock)
		path := formatPath(lines)
		exit := "the end of the function"
		if ok && exitPos != token.NoPos {
			exit = fmt.Sprintf("the return at line %d", pass.Fset.Position(exitPos).Line)
		}
		switch r.spec.mode {
		case pairRecv:
			rel := releaseNameFor(r.spec, r.acquireText)
			pass.Report(r.pos, "%s() without a matching %s() on the path to %s%s: %s",
				r.acquireText, rel, exit, path, r.spec.hint)
		default:
			pass.Report(r.pos, "%s(): %s acquired here is not released on the path to %s%s: %s",
				r.acquireText, r.spec.id, exit, path, r.spec.hint)
		}
	}
}

// releaseNameFor renders the expected release spelling for a recv-mode
// finding: "c.mu.Lock" -> "c.mu.Unlock".
func releaseNameFor(spec *pairSpec, acquireText string) string {
	recv := acquireText
	if i := strings.LastIndex(acquireText, "."); i >= 0 {
		recv = acquireText[:i]
	}
	for rel := range spec.releaseNames {
		return recv + "." + rel
	}
	return recv
}

func formatPath(lines []int) string {
	if len(lines) <= 1 {
		return ""
	}
	const maxShown = 6
	parts := make([]string, 0, maxShown)
	for i, l := range lines {
		if i == maxShown {
			parts = append(parts, "…")
			break
		}
		parts = append(parts, fmt.Sprint(l))
	}
	return " (path: line " + strings.Join(parts, " → ") + ")"
}

// blockContaining finds the block whose events generate resource id.
func blockContaining(cfg *funcCFG, eventsFor func(ast.Node) []pairEvent, id int) *cfgBlock {
	for _, blk := range cfg.blocks {
		for _, n := range blk.stmts {
			for _, ev := range eventsFor(n) {
				if ev.gen && ev.resource == id {
					return blk
				}
			}
		}
	}
	return nil
}

type pairEvent struct {
	gen      bool // true = acquire, false = release/escape/handoff
	resource int
}

// collectResources finds every tracked acquisition in the function's own
// statements (excluding nested function literals, which analyze
// separately). Acquire results that are immediately discarded are reported
// right away; results that escape at the binding site are skipped.
func collectResources(pass *Pass, body *ast.BlockStmt) []*pairResource {
	var resources []*pairResource
	walkParents(body, func(n ast.Node, parents []ast.Node, funcLitDepth int) {
		if funcLitDepth > 0 {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		// Acquires inside any function literal — deferred or not — belong to
		// that literal's own analysis scope.
		for _, p := range parents {
			if _, ok := p.(*ast.FuncLit); ok {
				return
			}
		}
		spec := matchAcquire(pass, call)
		if spec == nil {
			return
		}
		r := &pairResource{spec: spec, pos: call.Pos(), call: call}
		sel, _ := unparen(call.Fun).(*ast.SelectorExpr)
		if sel != nil {
			r.acquireText = types.ExprString(sel.X) + "." + sel.Sel.Name
		} else {
			r.acquireText = types.ExprString(call.Fun)
		}

		if spec.mode == pairRecv {
			r.key = types.ExprString(sel.X)
			r.id = len(resources)
			resources = append(resources, r)
			return
		}

		// Result mode: classify the binding from the call's context.
		bind, errBind, status := classifyBinding(pass, call, spec, parents)
		switch status {
		case bindDiscarded:
			pass.Report(call.Pos(), "%s(): result of %s is discarded, so it can never be released: bind it and %s",
				r.acquireText, spec.id, spec.hint)
			return
		case bindEscaped, bindPaired:
			return
		}
		r.bindObj = bind
		r.errObj = errBind
		r.id = len(resources)
		resources = append(resources, r)
	})
	return resources
}

type bindStatus int

const (
	bindTracked bindStatus = iota
	bindDiscarded
	bindEscaped
	bindPaired
)

// classifyBinding determines what happens to a result-mode acquire's
// resource at the acquisition site.
func classifyBinding(pass *Pass, call *ast.CallExpr, spec *pairSpec, parents []ast.Node) (bind, errBind types.Object, status bindStatus) {
	// Walk outward through parens and type assertions.
	child := ast.Node(call)
	i := len(parents) - 1
	for i >= 0 {
		if p, ok := parents[i].(*ast.ParenExpr); ok && ast.Node(p) != nil {
			child = parents[i]
			i--
			continue
		}
		if ta, ok := parents[i].(*ast.TypeAssertExpr); ok && unparen(ta.X) == exprOf(child) {
			child = parents[i]
			i--
			continue
		}
		break
	}
	if i < 0 {
		return nil, nil, bindEscaped
	}
	switch p := parents[i].(type) {
	case *ast.AssignStmt:
		return classifyAssign(pass, p, exprOf(child), spec)
	case *ast.ValueSpec:
		for vi, v := range p.Values {
			if unparen(v) == exprOf(child) && len(p.Names) == len(p.Values) {
				return identObj(pass, p.Names[vi]), nil, bindTracked
			}
		}
		// var a, b = f() multi-result form
		if len(p.Values) == 1 && len(p.Names) > spec.resultIdx {
			var errObj types.Object
			if spec.errIdx >= 0 && spec.errIdx < len(p.Names) {
				errObj = identObj(pass, p.Names[spec.errIdx])
			}
			return identObj(pass, p.Names[spec.resultIdx]), errObj, bindTracked
		}
		return nil, nil, bindEscaped
	case *ast.ExprStmt, *ast.GoStmt, *ast.DeferStmt:
		return nil, nil, bindDiscarded
	case *ast.SelectorExpr:
		// Chained release: tr.Start("x").End() — acquired and released in
		// one expression.
		if p.X == exprOf(child) && spec.releaseNames[p.Sel.Name] {
			if i-1 >= 0 {
				if pc, ok := parents[i-1].(*ast.CallExpr); ok && unparen(pc.Fun) == ast.Node(p) {
					return nil, nil, bindPaired
				}
			}
		}
		return nil, nil, bindEscaped
	default:
		// Return value, call argument, composite literal, channel send, ...:
		// the resource is handed off at birth.
		return nil, nil, bindEscaped
	}
}

func exprOf(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}

func classifyAssign(pass *Pass, as *ast.AssignStmt, rhs ast.Expr, spec *pairSpec) (bind, errBind types.Object, status bindStatus) {
	// Find which RHS slot holds the acquire.
	slot := -1
	for i, r := range as.Rhs {
		if unparen(r) == rhs || containsAssertOf(r, rhs) {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, nil, bindEscaped
	}
	var bindExpr ast.Expr
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// release, err := acquire(ctx)  /  s, ok := pool.Get().(*T)
		idx := spec.resultIdx
		if idx >= len(as.Lhs) {
			idx = 0
		}
		bindExpr = as.Lhs[idx]
		if spec.errIdx >= 0 && spec.errIdx < len(as.Lhs) {
			errBind = identObj(pass, identOf(as.Lhs[spec.errIdx]))
		}
	} else if slot < len(as.Lhs) {
		bindExpr = as.Lhs[slot]
	} else {
		return nil, nil, bindEscaped
	}
	id := identOf(bindExpr)
	if id == nil {
		return nil, nil, bindEscaped // stored into a field/index: handed off
	}
	if id.Name == "_" {
		return nil, nil, bindDiscarded
	}
	obj := identObj(pass, id)
	if obj == nil {
		return nil, nil, bindEscaped
	}
	return obj, errBind, bindTracked
}

// containsAssertOf reports whether e is a type assertion (possibly
// parenthesized) over rhs.
func containsAssertOf(e, rhs ast.Expr) bool {
	if ta, ok := unparen(e).(*ast.TypeAssertExpr); ok {
		return unparen(ta.X) == rhs
	}
	return false
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := unparen(e).(*ast.Ident)
	return id
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// stmtPairEvents computes the gen/kill events one CFG statement produces,
// kills ordered before gens (a reassignment releases the old binding before
// acquiring the new one).
func stmtPairEvents(pass *Pass, stmt ast.Node, resources []*pairResource) []pairEvent {
	var gens, kills []pairEvent
	seenKill := make(map[int]bool)
	kill := func(id int) {
		if !seenKill[id] {
			seenKill[id] = true
			kills = append(kills, pairEvent{gen: false, resource: id})
		}
	}

	// A range head block carries the whole RangeStmt as its statement; only
	// the header expressions execute there — the body has its own blocks.
	roots := []ast.Node{stmt}
	if rs, ok := stmt.(*ast.RangeStmt); ok {
		roots = roots[:0]
		for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if e != nil {
				roots = append(roots, e)
			}
		}
	}

	visit := func(n ast.Node, parents []ast.Node, funcLitDepth int) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if funcLitDepth == 0 {
				for _, r := range resources {
					if r.call == n {
						gens = append(gens, pairEvent{gen: true, resource: r.id})
					} else if releasesResource(pass, n, r) {
						kill(r.id)
					}
				}
			}
		case *ast.SelectorExpr:
			// Method-value handoff: taking s.mu.RUnlock (or rc.release) as a
			// value transfers release responsibility.
			if isMethodValue(n, parents) {
				for _, r := range resources {
					if selectsRelease(pass, n, r) {
						kill(r.id)
					}
				}
			}
		case *ast.Ident:
			for _, r := range resources {
				if r.bindObj == nil || identObj(pass, n) != r.bindObj {
					continue
				}
				if escapingUse(pass, n, parents, r, funcLitDepth) {
					kill(r.id)
				}
			}
		}
	}
	for _, root := range roots {
		walkParents(root, visit)
	}
	return append(kills, gens...)
}

// releasesResource reports whether call releases r: for recv mode a release
// method on the textually same receiver; for result mode a release call
// that references the bound variable as receiver, callee, or first argument.
func releasesResource(pass *Pass, call *ast.CallExpr, r *pairResource) bool {
	fun := unparen(call.Fun)
	switch r.spec.mode {
	case pairRecv:
		sel, ok := fun.(*ast.SelectorExpr)
		if !ok || !r.spec.releaseNames[sel.Sel.Name] {
			return false
		}
		return types.ExprString(sel.X) == r.key
	default:
		// release()
		if id, ok := fun.(*ast.Ident); ok {
			return identObj(pass, id) == r.bindObj
		}
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			// rc.release() / sp.End()
			if r.spec.releaseNames[sel.Sel.Name] && exprObj(pass, sel.X) == r.bindObj {
				return true
			}
			// vs.unpin(v) / g.releaseScratch(s) / pool.Put(s)
			if r.spec.releaseNames[sel.Sel.Name] && len(call.Args) > 0 && exprObj(pass, call.Args[0]) == r.bindObj {
				return true
			}
		}
		return false
	}
}

// selectsRelease reports whether sel is a reference to r's release member
// (method value / func field) — a handoff.
func selectsRelease(pass *Pass, sel *ast.SelectorExpr, r *pairResource) bool {
	if !r.spec.releaseNames[sel.Sel.Name] {
		return false
	}
	switch r.spec.mode {
	case pairRecv:
		return types.ExprString(sel.X) == r.key
	default:
		return exprObj(pass, sel.X) == r.bindObj
	}
}

// isMethodValue reports whether sel appears as a value, not as a call's
// callee.
func isMethodValue(sel *ast.SelectorExpr, parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return unparen(p.Fun) != ast.Expr(sel)
		default:
			return true
		}
	}
	return true
}

// escapingUse classifies a use of the resource's bound variable. Reads
// through a selector (rc.g, sp.SetArg(...)) and release calls are fine;
// anything that lets the value outlive or leave the function — return,
// call argument, composite literal, store into a field/slice/map/channel,
// address-of, capture by a non-deferred closure, reassignment — kills
// tracking (handed off) or, for reassignment, releases the old binding.
func escapingUse(pass *Pass, id *ast.Ident, parents []ast.Node, r *pairResource, funcLitDepth int) bool {
	if funcLitDepth > 0 {
		return true // captured by a closure that may run anywhere
	}
	if len(parents) == 0 {
		return false
	}
	p := parents[len(parents)-1]
	switch p := p.(type) {
	case *ast.SelectorExpr:
		// Reading a field or calling a method: not an escape (release and
		// handoff selectors are recognized separately).
		return false
	case *ast.CallExpr:
		if unparen(p.Fun) == ast.Expr(id) {
			// Calling the value: the admission-style release, or at worst a
			// use that consumes it.
			return !r.spec.releaseByCall
		}
		// Argument position: release forms (vs.unpin(v)) are recognized by
		// releasesResource; anything else hands the value off.
		return !releasesResource(pass, p, r)
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if unparen(l) == ast.Expr(id) {
				return true // reassignment: old binding is gone
			}
		}
		return true // RHS of an assignment: aliased/stored
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.UnaryExpr,
		*ast.SendStmt, *ast.IndexExpr, *ast.RangeStmt, *ast.GoStmt:
		return true
	case *ast.ParenExpr:
		return false // the paren's own parent will be visited for the paren
	default:
		return false
	}
}

// refinePairEdge kills resources proven dead by a branch condition:
// err != nil (acquire failed) or resource == nil.
func refinePairEdge(pass *Pass, cond ast.Expr, trueEdge bool, resources []*pairResource, state factSet) {
	cond = unparen(cond)
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		var obj types.Object
		var isNilCmp, eq bool
		if isNilIdent(pass, c.Y) {
			obj, isNilCmp = exprObj(pass, c.X), true
		} else if isNilIdent(pass, c.X) {
			obj, isNilCmp = exprObj(pass, c.Y), true
		}
		if !isNilCmp || obj == nil {
			return
		}
		eq = c.Op == token.EQL
		for _, r := range resources {
			if r.bindObj == nil {
				continue
			}
			dead := false
			if obj == r.errObj {
				// err != nil true ⇒ acquire failed; err == nil false ⇒ same.
				dead = (trueEdge && !eq) || (!trueEdge && eq)
			} else if obj == r.bindObj {
				// res == nil true ⇒ nothing to release.
				dead = (trueEdge && eq) || (!trueEdge && !eq)
			}
			if dead {
				state.del(r.id)
			}
		}
	case *ast.CallExpr:
		// errors.Is(err, target) on the true edge ⇒ err non-nil ⇒ failed.
		if !trueEdge {
			return
		}
		sel, ok := unparen(c.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Is" || len(c.Args) < 1 {
			return
		}
		if pkg, ok := pass.TypesInfo.Uses[identOf(sel.X)].(*types.PkgName); !ok || pkg.Imported().Path() != "errors" {
			return
		}
		obj := exprObj(pass, c.Args[0])
		if obj == nil {
			return
		}
		for _, r := range resources {
			if r.errObj != nil && r.errObj == obj {
				state.del(r.id)
			}
		}
	}
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// isTerminalCall reports whether a call never returns: builtin panic,
// os.Exit, runtime.Goexit, or log.Fatal*/log.Panic*.
func isTerminalCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		pkgID, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		switch pkgName.Imported().Path() {
		case "os":
			return name == "Exit"
		case "runtime":
			return name == "Goexit"
		case "log":
			return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
		}
	}
	return false
}

package submod

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func ratingsGraph(t *testing.T, ratings []float64) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, r := range ratings {
		g.AddNode("user", map[string]string{"rating": floatStr(r)})
	}
	return g
}

func floatStr(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

func TestFairSelectRespectsBoundsAndGreed(t *testing.T) {
	// Males (0..3) have the top ratings; without fairness the greedy would
	// pick males only. Bounds force 2 females in.
	g := ratingsGraph(t, []float64{9, 8, 7, 6, 5, 4, 3})
	groups, err := NewGroups(
		Group{Name: "m", Members: []graph.NodeID{0, 1, 2, 3}, Lower: 1, Upper: 2},
		Group{Name: "f", Members: []graph.NodeID{4, 5, 6}, Lower: 2, Upper: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := FairSelect(groups, NewRatingSum(g, "rating"), 4)
	if err != nil {
		t.Fatalf("FairSelect: %v", err)
	}
	if len(sel) != 4 {
		t.Fatalf("selected %d, want 4", len(sel))
	}
	counts := groups.Counts(sel)
	if !groups.SatisfiesBounds(counts) {
		t.Fatalf("bounds violated: %v", counts)
	}
	// Greedy picks best males 0,1 and best females 4,5.
	want := graph.NodeSetOf([]graph.NodeID{0, 1, 4, 5})
	for _, v := range sel {
		if !want.Has(v) {
			t.Fatalf("unexpected selection %v", sel)
		}
	}
}

func TestFairSelectFillsLowerBoundsDespiteZeroGain(t *testing.T) {
	// Female ratings are all 0: greedy must still pick 2 of them.
	g := ratingsGraph(t, []float64{9, 8, 7, 6, 0, 0, 0})
	groups, _ := NewGroups(
		Group{Name: "m", Members: []graph.NodeID{0, 1, 2, 3}, Lower: 0, Upper: 4},
		Group{Name: "f", Members: []graph.NodeID{4, 5, 6}, Lower: 2, Upper: 3},
	)
	sel, err := FairSelect(groups, NewRatingSum(g, "rating"), 4)
	if err != nil {
		t.Fatalf("FairSelect: %v", err)
	}
	counts := groups.Counts(sel)
	if counts[1] < 2 {
		t.Fatalf("female lower bound unmet: %v", counts)
	}
	if counts[0] != 2 {
		t.Fatalf("expected exactly 2 males (budget 4 - reserve 2): %v", counts)
	}
}

func TestFairSelectInfeasible(t *testing.T) {
	g := ratingsGraph(t, []float64{1, 2, 3})
	groups, _ := NewGroups(
		Group{Name: "a", Members: []graph.NodeID{0, 1}, Lower: 2, Upper: 2},
		Group{Name: "b", Members: []graph.NodeID{2}, Lower: 1, Upper: 1},
	)
	if _, err := FairSelect(groups, NewRatingSum(g, "rating"), 2); err == nil {
		t.Fatal("expected infeasibility (sum of lowers 3 > n=2)")
	}
}

func TestFairSelectStopsAtUpperBounds(t *testing.T) {
	g := ratingsGraph(t, []float64{9, 8, 7})
	groups, _ := NewGroups(Group{Name: "only", Members: []graph.NodeID{0, 1, 2}, Lower: 0, Upper: 2})
	sel, err := FairSelect(groups, NewRatingSum(g, "rating"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d, upper bound is 2", len(sel))
	}
}

// FairSelect (lazy) and FairSelectPlain must produce equally good selections;
// with distinct gains they are identical.
func TestLazyMatchesPlainGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 20
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode("user", map[string]string{"rating": floatStr(float64(rng.Intn(90)) + float64(i)/100.0)})
		}
		var m1, m2 []graph.NodeID
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				m1 = append(m1, graph.NodeID(i))
			} else {
				m2 = append(m2, graph.NodeID(i))
			}
		}
		groups, err := NewGroups(
			Group{Name: "a", Members: m1, Lower: 2, Upper: 5},
			Group{Name: "b", Members: m2, Lower: 2, Upper: 5},
		)
		if err != nil {
			t.Fatal(err)
		}
		lazySel, err1 := FairSelect(groups, NewRatingSum(g, "rating"), 6)
		plainSel, err2 := FairSelectPlain(groups, NewRatingSum(g, "rating"), 6)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		u := NewRatingSum(g, "rating")
		lazyVal := Eval(u, lazySel)
		plainVal := Eval(u, plainSel)
		if !approxEq(lazyVal, plainVal) {
			t.Fatalf("trial %d: lazy value %v != plain value %v", trial, lazyVal, plainVal)
		}
	}
}

// Greedy achieves at least half the optimum (Theorem 3 invariant (1)): check
// against brute force on small random instances with a genuinely submodular
// (coverage) utility.
func TestFairSelectHalfApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := randomSocialGraph(rng, 12, 30)
		groups, err := NewGroups(
			Group{Name: "a", Members: []graph.NodeID{0, 1, 2, 3, 4, 5}, Lower: 1, Upper: 3},
			Group{Name: "b", Members: []graph.NodeID{6, 7, 8, 9, 10, 11}, Lower: 1, Upper: 3},
		)
		if err != nil {
			t.Fatal(err)
		}
		n := 4
		sel, err := FairSelect(groups, NewNeighborCoverage(g, NeighborsIn, ""), n)
		if err != nil {
			t.Fatal(err)
		}
		u := NewNeighborCoverage(g, NeighborsIn, "")
		got := Eval(u, sel)
		opt := bruteForceOpt(groups, u, n)
		if got < opt/2-1e-9 {
			t.Fatalf("trial %d: greedy %v < half of optimum %v", trial, got, opt)
		}
	}
}

// bruteForceOpt enumerates all feasible subsets up to size n.
func bruteForceOpt(groups *Groups, u Utility, n int) float64 {
	all := groups.All()
	best := 0.0
	var rec func(start int, cur []graph.NodeID)
	rec = func(start int, cur []graph.NodeID) {
		counts := groups.Counts(cur)
		if len(cur) <= n && groups.SatisfiesBounds(counts) {
			if v := Eval(u, cur); v > best {
				best = v
			}
		}
		if len(cur) == n {
			return
		}
		for i := start; i < len(all); i++ {
			rec(i+1, append(cur, all[i]))
		}
	}
	rec(0, nil)
	return best
}

func TestFairSelectUtilityValueMatchesSelection(t *testing.T) {
	g := ratingsGraph(t, []float64{5, 4, 3, 2})
	groups, _ := NewGroups(Group{Name: "g", Members: []graph.NodeID{0, 1, 2, 3}, Lower: 1, Upper: 4})
	u := NewRatingSum(g, "rating")
	sel, err := FairSelect(groups, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The utility is left holding the selected set.
	if math.Abs(u.Value()-9) > 1e-9 {
		t.Fatalf("utility value %v, want 9 (5+4); selection %v", u.Value(), sel)
	}
}

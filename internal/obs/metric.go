package obs

import (
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is an atomic, allocation-free, monotonically increasing count.
// The zero value is ready to use; embed it by value in the component it
// instruments.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistNumBuckets is the number of finite histogram buckets; bucket i counts
// observations <= 2^i, and one extra overflow bucket catches the rest.
const HistNumBuckets = 16

// Histogram is an allocation-free histogram over int64 observations with
// fixed power-of-two bucket bounds 1, 2, 4, ..., 2^15, +Inf. The zero value
// is ready to use and safe for concurrent Observe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistNumBuckets + 1]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[HistBucketOf(v)].Add(1)
}

// HistBucketOf returns the bucket index an observation lands in: the
// smallest i with v <= 2^i, saturating at the overflow bucket.
func HistBucketOf(v int64) int {
	idx := 0
	if v > 1 {
		idx = bits.Len64(uint64(v - 1)) // smallest i with v <= 2^i
	}
	if idx > HistNumBuckets {
		idx = HistNumBuckets
	}
	return idx
}

// Snapshot returns the histogram's current cumulative state.
func (h *Histogram) Snapshot() HistValue {
	var out HistValue
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	out.Buckets = make([]int64, HistNumBuckets+1)
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out.Buckets[i] = cum
	}
	return out
}

// HistValue is an exported histogram snapshot: cumulative counts per upper
// bound (the last entry is the +Inf bucket and equals Count).
type HistValue struct {
	Count   int64
	Sum     int64
	Buckets []int64
}

// HistBound returns the upper bound of finite bucket i (2^i).
func HistBound(i int) int64 { return 1 << i }

// Kind classifies a metric series for the exporters.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Label is one key=value dimension on a metric series.
type Label struct {
	Key string
	Val string
}

// Exemplar is one concrete observation attached to a histogram bucket —
// typically a trace ID plus the observed value, so an outlier bucket in the
// export links back to one inspectable request (OpenMetrics exemplars).
type Exemplar struct {
	Labels []Label
	Value  float64
}

// Metric is one exported series: a snapshot, not a live instrument.
type Metric struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	// Value carries counter and gauge readings.
	Value float64
	// Hist carries histogram readings (Kind == KindHistogram).
	Hist *HistValue
	// Exemplars, when non-nil, carries one optional exemplar per histogram
	// bucket (parallel to Hist.Buckets; nil entries = no exemplar).
	Exemplars []*Exemplar
}

// seriesKey renders the identity of a metric series (name plus sorted
// labels) for merging and ordering.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Val)
		b.WriteByte('}')
	}
	return b.String()
}

// Source is anything that can snapshot its instruments into metric series.
// Instrumented components (the E_v^r cache, the matcher, the mining engine)
// implement it and are registered once at creation.
type Source interface {
	ObsMetrics() []Metric
}

// Registry collects metric sources plus ad-hoc counters and gathers them
// into one deterministic snapshot. Duplicate series — e.g. per-run caches
// registered by successive pipeline runs — are merged: counters and
// histograms sum, gauges keep the last registered source's reading.
//
// All methods are safe for concurrent use and nil-safe, so instrumentation
// sites never branch on whether observability is enabled.
type Registry struct {
	mu      sync.Mutex
	sources []Source
	adhoc   map[string]*Metric
	order   []string // adhoc insertion order, for reproducible gathers
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{adhoc: make(map[string]*Metric)} }

// Register adds a metrics source. Nil-safe on both sides.
func (r *Registry) Register(s Source) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.sources = append(r.sources, s)
	r.mu.Unlock()
}

// Add accumulates n into the ad-hoc counter series (name, labels) — the
// reporting path for transient counters that live in local variables (the
// greedy cover loop, the fair selector). Nil-safe.
func (r *Registry) Add(name, help string, labels []Label, n int64) {
	if r == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	m, ok := r.adhoc[key]
	if !ok {
		m = &Metric{Name: name, Help: help, Kind: KindCounter, Labels: append([]Label(nil), labels...)}
		r.adhoc[key] = m
		r.order = append(r.order, key)
	}
	m.Value += float64(n)
	r.mu.Unlock()
}

// Gather snapshots every source and ad-hoc series, merges duplicates, and
// returns the result sorted by series identity. Nil-safe (returns nil).
func (r *Registry) Gather() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	sources := append([]Source(nil), r.sources...)
	adhoc := make([]Metric, 0, len(r.order))
	for _, key := range r.order {
		adhoc = append(adhoc, *r.adhoc[key])
	}
	r.mu.Unlock()

	var raw []Metric
	for _, s := range sources {
		raw = append(raw, s.ObsMetrics()...)
	}
	raw = append(raw, adhoc...)
	return MergeMetrics(raw)
}

// MergeMetrics combines duplicate series (counters and histograms sum,
// gauges last-wins) and sorts the result by series identity.
func MergeMetrics(raw []Metric) []Metric {
	byKey := make(map[string]int, len(raw))
	var out []Metric
	for _, m := range raw {
		key := seriesKey(m.Name, m.Labels)
		i, ok := byKey[key]
		if !ok {
			byKey[key] = len(out)
			cp := m
			cp.Labels = append([]Label(nil), m.Labels...)
			if m.Hist != nil {
				h := *m.Hist
				h.Buckets = append([]int64(nil), m.Hist.Buckets...)
				cp.Hist = &h
			}
			if m.Exemplars != nil {
				cp.Exemplars = append([]*Exemplar(nil), m.Exemplars...)
			}
			out = append(out, cp)
			continue
		}
		switch m.Kind {
		case KindCounter:
			out[i].Value += m.Value
		case KindGauge:
			out[i].Value = m.Value
		case KindHistogram:
			if m.Hist != nil && out[i].Hist != nil {
				out[i].Hist.Count += m.Hist.Count
				out[i].Hist.Sum += m.Hist.Sum
				for b := range out[i].Hist.Buckets {
					if b < len(m.Hist.Buckets) {
						out[i].Hist.Buckets[b] += m.Hist.Buckets[b]
					}
				}
			}
			// Exemplars: the later source wins per bucket (it is the more
			// recent observation).
			for b, ex := range m.Exemplars {
				if ex == nil {
					continue
				}
				if out[i].Exemplars == nil {
					out[i].Exemplars = make([]*Exemplar, len(m.Exemplars))
				}
				if b < len(out[i].Exemplars) {
					out[i].Exemplars[b] = ex
				}
			}
		}
		if out[i].Help == "" {
			out[i].Help = m.Help
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return seriesKey(out[a].Name, out[a].Labels) < seriesKey(out[b].Name, out[b].Labels)
	})
	return out
}

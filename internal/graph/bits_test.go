package graph

import (
	"math/rand"
	"testing"
)

// Differential property tests: drive EdgeBits/NodeBits through randomized
// operation sequences mirrored against plain map sets, and check that every
// observable (membership, count, iteration order) agrees. The bitsets back
// every hot path, so this is the safety net for the word-level arithmetic.

// refSet is the map-based reference model.
type refSet map[int]struct{}

func (r refSet) clone() refSet {
	c := make(refSet, len(r))
	for k := range r {
		c[k] = struct{}{}
	}
	return c
}

func (r refSet) union(o refSet) {
	for k := range o {
		r[k] = struct{}{}
	}
}

func (r refSet) minus(o refSet) refSet {
	d := refSet{}
	for k := range r {
		if _, ok := o[k]; !ok {
			d[k] = struct{}{}
		}
	}
	return d
}

func (r refSet) andNotCount(o refSet) int { return len(r.minus(o)) }

func (r refSet) andCount(o refSet) int {
	n := 0
	for k := range r {
		if _, ok := o[k]; ok {
			n++
		}
	}
	return n
}

// checkEdgeBits asserts an EdgeBits agrees with its reference on every
// observable, including strictly-ascending iteration.
func checkEdgeBits(t *testing.T, tag string, s *EdgeBits, ref refSet, idBound int) {
	t.Helper()
	if s.Count() != len(ref) {
		t.Fatalf("%s: Count = %d, want %d", tag, s.Count(), len(ref))
	}
	for i := 0; i < idBound; i++ {
		_, want := ref[i]
		if got := s.Has(EdgeID(i)); got != want {
			t.Fatalf("%s: Has(%d) = %v, want %v", tag, i, got, want)
		}
	}
	prev := -1
	seen := 0
	s.Iterate(func(id EdgeID) {
		if int(id) <= prev {
			t.Fatalf("%s: Iterate not strictly ascending: %d after %d", tag, id, prev)
		}
		if _, ok := ref[int(id)]; !ok {
			t.Fatalf("%s: Iterate yielded %d, not in reference", tag, id)
		}
		prev = int(id)
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("%s: Iterate yielded %d IDs, want %d", tag, seen, len(ref))
	}
}

func checkNodeBits(t *testing.T, tag string, s *NodeBits, ref refSet, idBound int) {
	t.Helper()
	if s.Count() != len(ref) {
		t.Fatalf("%s: Count = %d, want %d", tag, s.Count(), len(ref))
	}
	for i := 0; i < idBound; i++ {
		_, want := ref[i]
		if got := s.Has(NodeID(i)); got != want {
			t.Fatalf("%s: Has(%d) = %v, want %v", tag, i, got, want)
		}
	}
	prev := -1
	seen := 0
	s.Iterate(func(id NodeID) {
		if int(id) <= prev {
			t.Fatalf("%s: Iterate not strictly ascending: %d after %d", tag, id, prev)
		}
		prev = int(id)
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("%s: Iterate yielded %d IDs, want %d", tag, seen, len(ref))
	}
}

// TestEdgeBitsDifferential runs randomized Add/Union/Minus/counting ops on a
// pool of EdgeBits and reference sets in lockstep. IDs straddle several word
// boundaries (0..~300) and capacities are deliberately mismatched so growth
// paths get exercised.
func TestEdgeBitsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const idBound = 300
	const pool = 6
	sets := make([]*EdgeBits, pool)
	refs := make([]refSet, pool)
	for i := range sets {
		sets[i] = NewEdgeBits(rng.Intn(idBound)) // varied initial capacity
		refs[i] = refSet{}
	}
	for step := 0; step < 4000; step++ {
		i := rng.Intn(pool)
		j := rng.Intn(pool)
		switch op := rng.Intn(6); op {
		case 0, 1: // Add dominates: sets should fill up
			id := rng.Intn(idBound)
			sets[i].Add(EdgeID(id))
			refs[i][id] = struct{}{}
		case 2: // Union
			sets[i].Union(sets[j])
			refs[i].union(refs[j])
		case 3: // Minus replaces the destination set
			sets[i] = sets[i].Minus(sets[j])
			refs[i] = refs[i].minus(refs[j])
		case 4: // counting queries
			if got, want := sets[i].AndNotCount(sets[j]), refs[i].andNotCount(refs[j]); got != want {
				t.Fatalf("step %d: AndNotCount = %d, want %d", step, got, want)
			}
			if got, want := sets[i].AndCount(sets[j]), refs[i].andCount(refs[j]); got != want {
				t.Fatalf("step %d: AndCount = %d, want %d", step, got, want)
			}
			k := rng.Intn(pool)
			got := sets[i].IntersectAndNotCount(sets[j], sets[k])
			want := 0
			for id := range refs[i] {
				if _, in := refs[j][id]; !in {
					continue
				}
				if _, out := refs[k][id]; out {
					continue
				}
				want++
			}
			if got != want {
				t.Fatalf("step %d: IntersectAndNotCount = %d, want %d", step, got, want)
			}
		case 5: // Clone detaches: mutating the copy must not touch the source
			c := sets[j].Clone()
			c.Add(EdgeID(rng.Intn(idBound)))
			checkEdgeBits(t, "clone-source", sets[j], refs[j], idBound)
			sets[i] = sets[j].Clone()
			refs[i] = refs[j].clone()
		}
		if step%97 == 0 {
			checkEdgeBits(t, "periodic", sets[i], refs[i], idBound)
		}
	}
	for i := range sets {
		checkEdgeBits(t, "final", sets[i], refs[i], idBound)
	}
}

// TestNodeBitsDifferential mirrors the edge test and additionally exercises
// Remove, which NodeBits supports for the greedy-cover remaining set.
func TestNodeBitsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const idBound = 300
	const pool = 6
	sets := make([]*NodeBits, pool)
	refs := make([]refSet, pool)
	for i := range sets {
		sets[i] = NewNodeBits(rng.Intn(idBound))
		refs[i] = refSet{}
	}
	for step := 0; step < 4000; step++ {
		i := rng.Intn(pool)
		j := rng.Intn(pool)
		switch op := rng.Intn(6); op {
		case 0, 1:
			id := rng.Intn(idBound)
			sets[i].Add(NodeID(id))
			refs[i][id] = struct{}{}
		case 2: // Remove, including IDs beyond capacity and absent IDs
			id := rng.Intn(idBound * 2)
			sets[i].Remove(NodeID(id))
			delete(refs[i], id)
		case 3:
			sets[i].Union(sets[j])
			refs[i].union(refs[j])
		case 4:
			sets[i] = sets[i].Minus(sets[j])
			refs[i] = refs[i].minus(refs[j])
		case 5:
			if got, want := sets[i].AndNotCount(sets[j]), refs[i].andNotCount(refs[j]); got != want {
				t.Fatalf("step %d: AndNotCount = %d, want %d", step, got, want)
			}
			if got, want := sets[i].AndCount(sets[j]), refs[i].andCount(refs[j]); got != want {
				t.Fatalf("step %d: AndCount = %d, want %d", step, got, want)
			}
		}
		if step%97 == 0 {
			checkNodeBits(t, "periodic", sets[i], refs[i], idBound)
		}
	}
	for i := range sets {
		checkNodeBits(t, "final", sets[i], refs[i], idBound)
	}
}

// TestNodeBitsOfAndZeroValue covers the slice constructor and the documented
// zero-value-is-empty contract.
func TestNodeBitsOfAndZeroValue(t *testing.T) {
	s := NodeBitsOf([]NodeID{5, 1, 5, 130})
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3 (duplicate collapsed)", s.Count())
	}
	var got []NodeID
	s.Iterate(func(v NodeID) { got = append(got, v) })
	want := []NodeID{1, 5, 130}
	if len(got) != len(want) {
		t.Fatalf("Iterate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Iterate = %v, want %v", got, want)
		}
	}

	var zero EdgeBits
	if zero.Count() != 0 || zero.Has(0) {
		t.Fatal("zero EdgeBits is not empty")
	}
	zero.Add(77)
	if !zero.Has(77) || zero.Count() != 1 {
		t.Fatal("zero EdgeBits did not grow on Add")
	}
}

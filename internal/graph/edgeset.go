package graph

// EdgeRef identifies one directed labeled edge by endpoints and interned
// label. It is the unit of the correction sets C and C_P of Section II/III.
type EdgeRef struct {
	From  NodeID
	To    NodeID
	Label LabelID
}

// EdgeSet is a set of directed labeled edges.
type EdgeSet map[EdgeRef]struct{}

// NewEdgeSet returns an empty edge set with room for n edges.
func NewEdgeSet(n int) EdgeSet { return make(EdgeSet, n) }

// Add inserts an edge.
func (s EdgeSet) Add(e EdgeRef) { s[e] = struct{}{} }

// Has reports membership.
func (s EdgeSet) Has(e EdgeRef) bool { _, ok := s[e]; return ok }

// Len reports the number of edges.
func (s EdgeSet) Len() int { return len(s) }

// AddAll inserts every edge of other.
func (s EdgeSet) AddAll(other EdgeSet) {
	for e := range other {
		s[e] = struct{}{}
	}
}

// Clone returns an independent copy.
func (s EdgeSet) Clone() EdgeSet {
	c := make(EdgeSet, len(s))
	c.AddAll(s)
	return c
}

// Minus returns s \ other as a new set.
func (s EdgeSet) Minus(other EdgeSet) EdgeSet {
	d := make(EdgeSet)
	for e := range s {
		if !other.Has(e) {
			d.Add(e)
		}
	}
	return d
}

// CountMissing reports |s \ other| without materializing the difference.
func (s EdgeSet) CountMissing(other EdgeSet) int {
	n := 0
	for e := range s {
		if !other.Has(e) {
			n++
		}
	}
	return n
}

// NodeSet is a set of nodes.
type NodeSet map[NodeID]struct{}

// NewNodeSet returns an empty node set with room for n nodes.
func NewNodeSet(n int) NodeSet { return make(NodeSet, n) }

// NodeSetOf builds a set from a slice.
func NodeSetOf(ids []NodeID) NodeSet {
	s := make(NodeSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts a node.
func (s NodeSet) Add(id NodeID) { s[id] = struct{}{} }

// Has reports membership.
func (s NodeSet) Has(id NodeID) bool { _, ok := s[id]; return ok }

// Len reports the number of nodes.
func (s NodeSet) Len() int { return len(s) }

// Remove deletes a node.
func (s NodeSet) Remove(id NodeID) { delete(s, id) }

// Clone returns an independent copy.
func (s NodeSet) Clone() NodeSet {
	c := make(NodeSet, len(s))
	for id := range s {
		c[id] = struct{}{}
	}
	return c
}

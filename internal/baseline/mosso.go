package baseline

import (
	"math/rand"
	"sort"
	"time"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/submod"
)

// Mosso is an incremental lossless graph summarizer after MoSSo [21]: nodes
// are grouped into supernodes; each supernode pair is encoded either sparsely
// (its edges listed individually as corrections) or densely (one superedge
// plus corrections for the missing pairs), whichever is cheaper:
//
//	cost(A,B) = min( E(A,B), 1 + potential(A,B) − E(A,B) )
//
// with potential(A,B) = |A|·|B| (or |A|(|A|−1)/2 for A = B). On every edge
// insertion the endpoints each consider a few candidate moves — joining a
// (sampled) neighbor's supernode or separating into a fresh singleton — and
// take the move with the biggest cost reduction, mirroring MoSSo's
// corrective move operations. The total cost Σ cost(A,B) is the summary's
// description length (superedges and corrections folded together).
//
// Mosso treats the graph as undirected and unlabeled, as in [21]; direction
// and labels do not change the comparison the paper runs it in.
type Mosso struct {
	rng     *rand.Rand
	sn      map[graph.NodeID]int
	members map[int][]graph.NodeID
	adj     map[graph.NodeID]graph.NodeSet
	cnt     map[[2]int]int // normalized supernode pair -> edge count
	snAdj   map[int]map[int]bool
	nextSN  int
	edges   int
	// SampleMoves caps how many distinct neighbor supernodes each endpoint
	// considers per insertion. Default 4.
	SampleMoves int
}

// NewMosso returns a summarizer with a seeded move sampler.
func NewMosso(seed int64) *Mosso {
	return &Mosso{
		rng:         rand.New(rand.NewSource(seed)),
		sn:          make(map[graph.NodeID]int),
		members:     make(map[int][]graph.NodeID),
		adj:         make(map[graph.NodeID]graph.NodeSet),
		cnt:         make(map[[2]int]int),
		snAdj:       make(map[int]map[int]bool),
		SampleMoves: 4,
	}
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (m *Mosso) ensureNode(v graph.NodeID) {
	if _, ok := m.sn[v]; ok {
		return
	}
	id := m.nextSN
	m.nextSN++
	m.sn[v] = id
	m.members[id] = []graph.NodeID{v}
	m.adj[v] = graph.NewNodeSet(2)
	m.snAdj[id] = make(map[int]bool)
}

func (m *Mosso) bump(a, b int, delta int) {
	k := pairKey(a, b)
	m.cnt[k] += delta
	if m.cnt[k] == 0 {
		delete(m.cnt, k)
		delete(m.snAdj[a], b)
		delete(m.snAdj[b], a)
	} else {
		m.snAdj[a][b] = true
		m.snAdj[b][a] = true
	}
}

// AddEdge inserts an undirected edge and lets both endpoints attempt a
// corrective move. Duplicate edges are ignored.
func (m *Mosso) AddEdge(u, v graph.NodeID) {
	if u == v {
		return
	}
	m.ensureNode(u)
	m.ensureNode(v)
	if m.adj[u].Has(v) {
		return
	}
	m.adj[u].Add(v)
	m.adj[v].Add(u)
	m.edges++
	m.bump(m.sn[u], m.sn[v], 1)
	m.tryMove(u)
	m.tryMove(v)
}

// NumEdges reports distinct undirected edges processed.
func (m *Mosso) NumEdges() int { return m.edges }

// RemoveEdge deletes an undirected edge and lets both endpoints attempt a
// corrective move (MoSSo handles deletion streams with the same move
// machinery as insertions). Unknown edges are ignored.
func (m *Mosso) RemoveEdge(u, v graph.NodeID) {
	if u == v {
		return
	}
	if m.adj[u] == nil || !m.adj[u].Has(v) {
		return
	}
	m.adj[u].Remove(v)
	m.adj[v].Remove(u)
	m.edges--
	m.bump(m.sn[u], m.sn[v], -1)
	m.tryMove(u)
	m.tryMove(v)
}

// tryMove evaluates moving x into sampled candidate supernodes or a fresh
// singleton and applies the best strictly-improving move. Candidates follow
// MoSSo's sampling: supernodes of neighbors and, crucially, of co-neighbors
// (two-hop nodes) — nodes that share a neighbor with x are the ones whose
// supernode x should join to form dense blocks (e.g. the leaves of a hub).
func (m *Mosso) tryMove(x graph.NodeID) {
	from := m.sn[x]
	// Candidates are deduped with a set but *evaluated* in discovery order:
	// ranging over the set itself would let map iteration order break ties in
	// the best-move scan below, making summaries differ run to run.
	cands := make(map[int]bool)
	var candOrder []int
	addCand := func(s int) {
		if s != from && !cands[s] {
			cands[s] = true
			candOrder = append(candOrder, s)
		}
	}
	neighbors := make([]graph.NodeID, 0, m.adj[x].Len())
	for y := range m.adj[x] {
		neighbors = append(neighbors, y)
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	m.rng.Shuffle(len(neighbors), func(i, j int) { neighbors[i], neighbors[j] = neighbors[j], neighbors[i] })
	for _, y := range neighbors {
		addCand(m.sn[y])
		// Co-neighbor sampling through y: one deterministic pick per
		// neighbor keeps moves O(deg) and runs reproducible.
		z := graph.NodeID(-1)
		for c := range m.adj[y] {
			if c != x && (z < 0 || c < z) {
				z = c
			}
		}
		if z >= 0 {
			addCand(m.sn[z])
		}
		if len(cands) >= m.SampleMoves {
			break
		}
	}
	bestTo := -1
	bestDelta := 0
	for _, to := range candOrder {
		if d := m.moveDelta(x, to); d < bestDelta {
			bestDelta = d
			bestTo = to
		}
	}
	// Separation into a fresh singleton.
	if len(m.members[from]) > 1 {
		fresh := m.nextSN
		if d := m.moveDeltaFresh(x, fresh); d < bestDelta {
			bestDelta = d
			bestTo = fresh
		}
	}
	if bestTo >= 0 {
		m.applyMove(x, bestTo)
	}
}

// neighborSNCounts groups x's neighbors by their supernode.
func (m *Mosso) neighborSNCounts(x graph.NodeID) map[int]int {
	nbc := make(map[int]int)
	for y := range m.adj[x] {
		nbc[m.sn[y]]++
	}
	return nbc
}

// pairCost computes the encoding cost of one supernode pair given sizes and
// edge count.
func pairCost(szA, szB int, self bool, e int) int {
	if e == 0 {
		return 0
	}
	var potential int
	if self {
		potential = szA * (szA - 1) / 2
	} else {
		potential = szA * szB
	}
	dense := 1 + potential - e
	if e < dense {
		return e
	}
	return dense
}

// moveDelta computes the cost change of moving x from its supernode to an
// existing supernode `to`.
func (m *Mosso) moveDelta(x graph.NodeID, to int) int {
	return m.deltaFor(x, to, len(m.members[to]))
}

// moveDeltaFresh computes the cost change of moving x into a fresh singleton.
func (m *Mosso) moveDeltaFresh(x graph.NodeID, fresh int) int {
	return m.deltaFor(x, fresh, 0)
}

// deltaFor computes the cost delta of moving x from sn(x) to target, where
// target currently has szTo members (0 for a fresh supernode).
func (m *Mosso) deltaFor(x graph.NodeID, to int, szTo int) int {
	from := m.sn[x]
	if to == from {
		return 0
	}
	nbc := m.neighborSNCounts(x)
	szFrom := len(m.members[from])

	// Affected pairs: anything involving from or to (their sizes change),
	// plus pairs whose counts shift because x's edges re-home.
	affected := make(map[[2]int]bool)
	for s := range m.snAdj[from] {
		affected[pairKey(from, s)] = true
	}
	if sa, ok := m.snAdj[to]; ok {
		for s := range sa {
			affected[pairKey(to, s)] = true
		}
	}
	for s := range nbc {
		affected[pairKey(from, s)] = true
		affected[pairKey(to, s)] = true
	}
	affected[pairKey(from, from)] = true
	affected[pairKey(to, to)] = true
	affected[pairKey(from, to)] = true

	size := func(s int, after bool) int {
		switch s {
		case from:
			if after {
				return szFrom - 1
			}
			return szFrom
		case to:
			if after {
				return szTo + 1
			}
			return szTo
		default:
			return len(m.members[s])
		}
	}
	// Count shift: each edge (x,y) with y in supernode S moves from pair
	// (from,S) to pair (to,S).
	shift := make(map[[2]int]int)
	for s, c := range nbc {
		shift[pairKey(from, s)] -= c
		shift[pairKey(to, s)] += c
	}

	delta := 0
	for k := range affected {
		a, b := k[0], k[1]
		e := m.cnt[k]
		before := pairCost(size(a, false), size(b, false), a == b, e)
		after := pairCost(size(a, true), size(b, true), a == b, e+shift[k])
		delta += after - before
	}
	return delta
}

// applyMove relocates x to supernode `to` (creating it if fresh) and updates
// pair counts.
func (m *Mosso) applyMove(x graph.NodeID, to int) {
	from := m.sn[x]
	if to == from {
		return
	}
	if _, ok := m.members[to]; !ok {
		if to >= m.nextSN {
			m.nextSN = to + 1
		}
		m.members[to] = nil
		m.snAdj[to] = make(map[int]bool)
	}
	nbc := m.neighborSNCounts(x)
	for s, c := range nbc {
		m.bump(from, s, -c)
		m.bump(to, s, c)
	}
	// Remove x from its old supernode.
	old := m.members[from]
	for i, y := range old {
		if y == x {
			m.members[from] = append(old[:i], old[i+1:]...)
			break
		}
	}
	if len(m.members[from]) == 0 {
		delete(m.members, from)
		delete(m.snAdj, from)
	}
	m.members[to] = append(m.members[to], x)
	m.sn[x] = to
}

// Compact sweeps every node `rounds` times, attempting corrective moves —
// MoSSo's batch-mode refinement, used when summarizing a static graph where
// there is no insertion stream to piggyback moves on.
func (m *Mosso) Compact(rounds int) {
	nodes := make([]graph.NodeID, 0, len(m.sn))
	for v := range m.sn {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for round := 0; round < rounds; round++ {
		for _, v := range nodes {
			m.tryMove(v)
		}
	}
}

// Cost returns the total description length: Σ over supernode pairs of the
// cheaper of sparse and dense encodings.
func (m *Mosso) Cost() int {
	total := 0
	for k, e := range m.cnt {
		a, b := k[0], k[1]
		total += pairCost(len(m.members[a]), len(m.members[b]), a == b, e)
	}
	return total
}

// NumSupernodes reports the number of non-empty supernodes.
func (m *Mosso) NumSupernodes() int { return len(m.members) }

// Result adapts the summary for the FGS comparison: covered group nodes are
// collected from supernodes in decreasing size order until the budget n, and
// the structure size is the encoding cost.
func (m *Mosso) Result(groups *submod.Groups, n int, elapsed time.Duration) Result {
	type sized struct {
		id int
		sz int
	}
	var order []sized
	for id, mem := range m.members {
		order = append(order, sized{id: id, sz: len(mem)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].sz != order[j].sz {
			return order[i].sz > order[j].sz
		}
		return order[i].id < order[j].id
	})
	var covered []graph.NodeID
	seen := graph.NewNodeSet(n)
	for _, s := range order {
		mem := append([]graph.NodeID(nil), m.members[s.id]...)
		sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
		for _, v := range mem {
			if _, ok := groups.IndexOf(v); ok {
				covered = dedupAppend(covered, []graph.NodeID{v}, seen)
			}
		}
		if len(covered) >= n {
			break
		}
	}
	covered = truncate(covered, n)
	ratio := 1.0
	if denom := len(m.sn) + m.edges; denom > 0 {
		ratio = float64(m.Cost()+len(m.members)) / float64(denom)
		if ratio > 1 {
			ratio = 1
		}
	}
	return Result{
		Covered:       covered,
		StructureSize: m.Cost(),
		Corrections:   0, // corrections are folded into the pair encoding cost
		GlobalRatio:   ratio,
		Elapsed:       elapsed,
	}
}

// SummarizeStatic feeds every edge of g (in a deterministic order) through
// the incremental summarizer — the static-comparison mode of Exp-1.
func SummarizeStatic(g *graph.Graph, groups *submod.Groups, n int, seed int64) Result {
	clock := obs.System()
	start := clock.Now()
	m := NewMosso(seed)
	for from := graph.NodeID(0); int(from) < g.NumNodes(); from++ {
		for _, e := range g.Out(from) {
			m.AddEdge(from, e.To)
		}
	}
	m.Compact(2)
	return m.Result(groups, n, clock.Now().Sub(start))
}

package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionSlotsAndQueue(t *testing.T) {
	a := newAdmission(2, 0)
	rel1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Both slots busy, no queue: immediate rejection.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errSaturated) {
		t.Fatalf("err = %v, want errSaturated", err)
	}
	rel1()
	rel3, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()
	rel3()
	st := a.stats()
	if st.Accepted != 3 || st.Rejected != 1 || st.Expired != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Slots != 2 || st.Queue != 0 {
		t.Fatalf("sizes %+v", st)
	}
}

func TestAdmissionQueueWaitsForSlot(t *testing.T) {
	a := newAdmission(1, 1)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := a.acquire(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter enter the queue
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
}

func TestAdmissionQueuedDeadline(t *testing.T) {
	a := newAdmission(1, 1)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st := a.stats(); st.Expired != 1 {
		t.Fatalf("expired = %d", st.Expired)
	}
	// The queue token was returned: the next overflow still gets queued, not
	// rejected outright.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if _, err := a.acquire(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second queued acquire = %v", err)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1)
	rel, _ := a.acquire(context.Background())
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan struct{})
	go func() {
		close(waiting)
		_, _ = a.acquire(ctx) // occupies the single queue token until cancel
	}()
	<-waiting
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) == 0 { // wait until the goroutine holds the queue token
		if time.Now().After(deadline) {
			t.Fatal("waiter never entered the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.acquire(context.Background()); !errors.Is(err, errSaturated) {
		t.Fatalf("err = %v, want errSaturated", err)
	}
}

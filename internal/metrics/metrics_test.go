package metrics

import (
	"math"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

func groupsFixture(t *testing.T) *submod.Groups {
	t.Helper()
	gs, err := submod.NewGroups(
		submod.Group{Name: "a", Members: []graph.NodeID{0, 1, 2, 3}, Lower: 2, Upper: 3},
		submod.Group{Name: "b", Members: []graph.NodeID{4, 5, 6, 7}, Lower: 1, Upper: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func TestCoverageErrorZeroWhenFeasible(t *testing.T) {
	gs := groupsFixture(t)
	for _, covered := range [][]graph.NodeID{
		{0, 1, 4},
		{0, 1, 2, 4, 5},
	} {
		if got := CoverageError(gs, covered); got != 0 {
			t.Errorf("CoverageError(%v) = %v, want 0", covered, got)
		}
	}
}

func TestCoverageErrorUnderCoverage(t *testing.T) {
	gs := groupsFixture(t)
	// Group a: 0 of required 2 -> 1.0; group b: 1 of [1,2] -> 0. Mean 0.5.
	got := CoverageError(gs, []graph.NodeID{4})
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CoverageError = %v, want 0.5", got)
	}
	// Half the lower bound met: (2-1)/2 = 0.5 for a -> mean 0.25.
	got = CoverageError(gs, []graph.NodeID{0, 4})
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("CoverageError = %v, want 0.25", got)
	}
}

func TestCoverageErrorOverCoverage(t *testing.T) {
	gs := groupsFixture(t)
	// Group a: 4 covered, upper 3 -> (4-3)/3; group b fine with 1.
	got := CoverageError(gs, []graph.NodeID{0, 1, 2, 3, 4})
	want := (1.0 / 3.0) / 2.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("CoverageError = %v, want %v", got, want)
	}
}

func TestCoverageErrorIgnoresNonGroupNodes(t *testing.T) {
	gs := groupsFixture(t)
	a := CoverageError(gs, []graph.NodeID{0, 1, 4})
	b := CoverageError(gs, []graph.NodeID{0, 1, 4, 99, 100})
	if a != b {
		t.Fatal("non-group nodes changed the error")
	}
}

func TestCompressionRatio(t *testing.T) {
	g := graph.New()
	v0 := g.AddNode("user", nil)
	v1 := g.AddNode("user", nil)
	v2 := g.AddNode("user", nil)
	if err := g.AddEdge(v1, v0, "e"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(v2, v0, "e"); err != nil {
		t.Fatal(err)
	}
	// 1-hop of v0: 3 nodes + 2 edges = 5. Structure 1, corrections 0,
	// covered 1 -> (1+0+1)/5.
	got := CompressionRatio(g, 1, []graph.NodeID{v0}, 1, 0)
	if math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("CompressionRatio = %v, want 0.4", got)
	}
}

func TestCompressionRatioClamped(t *testing.T) {
	g := graph.New()
	v0 := g.AddNode("user", nil)
	if got := CompressionRatio(g, 1, []graph.NodeID{v0}, 100, 100); got != 1 {
		t.Fatalf("oversized summary ratio = %v, want clamp to 1", got)
	}
}

func TestCompressionRatioEmptyCover(t *testing.T) {
	g := graph.New()
	if got := CompressionRatio(g, 1, nil, 0, 0); got != 1 {
		t.Fatalf("empty cover ratio = %v, want 1", got)
	}
}

func TestCompressionRatioMoreCorrectionsWorse(t *testing.T) {
	g := graph.New()
	ids := make([]graph.NodeID, 0, 10)
	for i := 0; i < 10; i++ {
		ids = append(ids, g.AddNode("user", nil))
	}
	for i := 1; i < 10; i++ {
		if err := g.AddEdge(ids[i], ids[0], "e"); err != nil {
			t.Fatal(err)
		}
	}
	lo := CompressionRatio(g, 1, ids[:1], 3, 0)
	hi := CompressionRatio(g, 1, ids[:1], 3, 6)
	if hi <= lo {
		t.Fatalf("corrections should worsen the ratio: %v vs %v", lo, hi)
	}
}

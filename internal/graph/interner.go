package graph

// Interner maps strings to dense int32 identifiers and back. It is not safe
// for concurrent mutation; the FGS pipelines build graphs single-threaded and
// only read afterwards.
type Interner struct {
	ids   map[string]int32
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the identifier for s, creating one if needed.
func (in *Interner) Intern(s string) int32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := int32(len(in.names))
	in.ids[s] = id
	in.names = append(in.names, s)
	return id
}

// Clone returns an independent copy with the identical ID assignment, so
// identifiers interned before the clone resolve the same on both sides.
func (in *Interner) Clone() *Interner {
	c := &Interner{
		ids:   make(map[string]int32, len(in.ids)),
		names: append([]string(nil), in.names...),
	}
	for s, id := range in.ids {
		c.ids[s] = id
	}
	return c
}

// Lookup returns the identifier for s if it has been interned.
func (in *Interner) Lookup(s string) (int32, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Name returns the string for an identifier; it panics on out-of-range IDs,
// which always indicates mixing identifiers across interners.
func (in *Interner) Name(id int32) string { return in.names[id] }

// Len reports how many strings have been interned.
func (in *Interner) Len() int { return len(in.names) }

package core

import (
	"github.com/cwru-db/fgs/internal/obs"
)

// Span taxonomy (DESIGN.md §8): each algorithm run is a root span named
// after the algorithm, with one child span per pipeline phase.
const (
	PhaseSelect    = "select"
	PhaseMine      = "mine"
	PhaseSummarize = "summarize"
)

// runObs carries one algorithm run's observability state. Every run has one,
// even with no caller-supplied Observer: a private trace is cheap (a handful
// of spans) and keeps Stats an honest view of the spans actually recorded,
// rather than a parallel bookkeeping path that could drift.
type runObs struct {
	tr   *obs.Trace
	reg  *obs.Registry // nil when no collector is installed
	root obs.Span
}

// startRun opens the root span for one algorithm run. When the observer
// carries a trace, spans land there (and show up in -fgs.trace exports);
// otherwise a private trace backs the Stats view alone.
func startRun(o *obs.Observer, name string) *runObs {
	tr := o.GetTrace()
	if tr == nil {
		tr = obs.NewTrace(o.GetClock())
	}
	return &runObs{tr: tr, reg: o.GetReg(), root: tr.Start(name)}
}

// phase opens a child span for one pipeline phase.
func (r *runObs) phase(name string) obs.Span { return r.root.Child(name) }

// register adds a metrics source to the run's registry (no-op when none).
func (r *runObs) register(s obs.Source) { r.reg.Register(s) }

// finish closes the root span and derives the run's Stats from the span
// tree.
func (r *runObs) finish(candidates, windows int) Stats {
	r.root.End()
	return r.stats(candidates, windows)
}

// abort closes the root span without deriving Stats — for error returns
// that bail out before the run completes, so the root span is never left
// open in the trace (and in any caller-supplied Observer's export).
func (r *runObs) abort() { r.root.End() }

// stats derives a Stats view from the run's direct child spans without
// closing the root — streaming algorithms expose progress mid-run.
func (r *runObs) stats(candidates, windows int) Stats {
	return statsView(r.tr, r.root.ID(), candidates, windows)
}

// statsView merges the completed direct children of the given root span by
// name, in first-execution order. Filtering on the parent id keeps runs
// sharing one trace (successive figures in fgsbench) from leaking into each
// other's Stats.
func statsView(tr *obs.Trace, rootID int32, candidates, windows int) Stats {
	st := Stats{Candidates: candidates, Windows: windows}
	for _, rec := range tr.Records() {
		if rec.Parent != rootID || !rec.Done {
			continue
		}
		found := false
		for i := range st.Phases {
			if st.Phases[i].Name == rec.Name {
				st.Phases[i].Time += rec.Dur
				st.Phases[i].Count++
				found = true
				break
			}
		}
		if !found {
			st.Phases = append(st.Phases, PhaseStat{Name: rec.Name, Time: rec.Dur, Count: 1})
		}
	}
	return st
}

// Fixture for errdrop: discarded error returns in a library package.
package errdrop

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

type closer struct{}

func (c *closer) Close() error { return nil }
func (c *closer) Flush() error { return nil }

func work() (int, error) { return 0, nil }
func note()              {}

func dropsExprStmt(c *closer) {
	c.Close() // want `result 0 \(error\) of c\.Close is discarded`
}

func dropsBlank(c *closer) {
	_ = c.Flush() // want `result 0 \(error\) of c\.Flush is assigned to _`
}

func dropsMulti() {
	_, _ = work() // want `result 1 \(error\) of work is assigned to _`
}

func keepsValue() {
	n, _ := work() // ok: deliberate selection, the error is visibly dropped by choice of binding
	_ = n
}

func handles(c *closer) error {
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}

func propagates(c *closer) error {
	return c.Close() // ok: returned
}

func allowedDrop(c *closer) {
	//lint:allow errdrop best-effort close on the shutdown path; primary error already captured
	c.Close()
}

func infallibleWriters() {
	var b bytes.Buffer
	b.WriteString("x") // ok: bytes.Buffer writes cannot fail
	var sb strings.Builder
	sb.WriteString("y") // ok: strings.Builder writes cannot fail
}

func fprintToBuilder() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d\n", 1) // ok: Fprintf to a strings.Builder cannot fail
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "x") // ok: Fprintln to a bytes.Buffer cannot fail
	return b.String()
}

func fprintToUnknownWriter(w io.Writer) {
	fmt.Fprintf(w, "x") // want `result 1 \(error\) of fmt\.Fprintf is discarded`
}

func bufioLatches(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("head\n")     // ok: bufio latches the error until Flush
	_, _ = bw.Write([]byte("b")) // ok: same, via blank assignment
	fmt.Fprintf(bw, "n=%d\n", 1) // ok: Fprintf to a bufio.Writer is latched too
	return bw.Flush()            // the latched error surfaces here
}

func bufioFlushDropped(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.WriteString("head\n") // ok: latched
	bw.Flush()               // want `result 0 \(error\) of bw\.Flush is discarded`
}

func noErrorResult() {
	note() // ok: nothing to drop
}

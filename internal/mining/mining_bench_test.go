package mining

import (
	"math/rand"
	"strconv"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func benchNetwork(b *testing.B, n int) (*graph.Graph, []graph.NodeID) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("user", map[string]string{
			"exp":  strconv.Itoa(1 + rng.Intn(8)),
			"city": "c" + strconv.Itoa(rng.Intn(20)),
		})
	}
	for i := 0; i < n*3; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "corev")
	}
	anchors := make([]graph.NodeID, 40)
	for i := range anchors {
		anchors[i] = graph.NodeID(rng.Intn(n))
	}
	return g, anchors
}

func BenchmarkSumGen(b *testing.B) {
	g, anchors := benchNetwork(b, 2000)
	cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		er := NewErCache(g, 2)
		SumGen(g, anchors, anchors, cfg, er)
	}
}

func BenchmarkFrequent(b *testing.B) {
	g, _ := benchNetwork(b, 2000)
	universe := g.NodesWithLabel("user")[:500]
	cfg := Config{Radius: 2, MaxNodes: 3, MaxLiterals: 1, MaxPatterns: 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Frequent(g, universe, cfg, 20, 2)
	}
}

func BenchmarkErCacheGet(b *testing.B) {
	g, anchors := benchNetwork(b, 2000)
	er := NewErCache(g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		er.Get(anchors[i%len(anchors)])
	}
}

package main

// Temporary profiling harness — not for commit.

import (
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func TestProfileSummarize(t *testing.T) {
	path := os.Getenv("FGS_PROFILE_GRAPH")
	if path == "" {
		t.Skip("set FGS_PROFILE_GRAPH to run")
	}
	shards := 0
	if s := os.Getenv("FGS_PROFILE_SHARDS"); s != "" {
		shards = int(s[0] - '0')
	}
	cfg := scaleConfig{GraphPath: path}
	g, _, err := buildScaleGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := datasets.GroupsByAttr(g, "user", "city", []string{"c0", "c1"}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fgs.NewServer(g, groups, fgs.ServerConfig{
		Workers:      runtime.GOMAXPROCS(0),
		CacheEntries: -1,
		Deadline:     10 * time.Minute,
		ReadMode:     "mvcc",
		MaxViews:     3,
		Shards:       shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		start := time.Now()
		resp, err := ts.Client().Post(ts.URL+"/v1/summarize", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		t.Logf("shards=%d request %d: %v status=%d", shards, i, time.Since(start), resp.StatusCode)
	}
}

package server

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// determinismScript is a fixed request sequence covering every compute
// endpoint, including a graph-changing write in the middle.
var determinismScript = []struct{ path, body string }{
	{"/v1/summarize", `{"n":4}`},
	{"/v1/summarize", `{"n":5}`},
	{"/v1/summarize", `{"n":4}`}, // cache hit on a warm server; body identical either way
	{"/v1/summarize-k", `{"k":2,"n":4}`},
	{"/v1/view", `{"pattern":"n 0 user\nf 0"}`},
	{"/v1/workload", ``},
	{"/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`},
	{"/v1/summarize", `{"n":4}`}, // epoch 1: recomputed, not served stale
	{"/v1/view", `{"pattern":"n 0 user\nn 1 user\ne 1 0 corev\nf 0"}`},
	{"/v1/update", `{"delete":[{"from":0,"to":12,"label":"corev"}]}`},
	{"/v1/summarize-k", `{"k":2,"n":4}`},
	{"/v1/workload", ``},
}

func runScript(t *testing.T, ts *httptest.Server) [][]byte {
	t.Helper()
	out := make([][]byte, len(determinismScript))
	for i, req := range determinismScript {
		resp, body := post(t, ts, req.path, req.body)
		if resp.StatusCode != 200 {
			t.Fatalf("step %d %s %s: status %d (%s)", i, req.path, req.body, resp.StatusCode, body)
		}
		out[i] = body
	}
	return out
}

// TestDeterminismAcrossWorkerCounts runs the identical request sequence
// against a sequential server and an 8-worker server: every response body
// must be byte-identical. The serving layer inherits the library's
// determinism contract — parallelism changes wall-clock time, never bytes.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	_, seq := newTestServer(t, Config{Workers: 0})
	_, par := newTestServer(t, Config{Workers: 8})
	a := runScript(t, seq)
	b := runScript(t, par)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("step %d (%s %s): workers 0 vs 8 differ:\n  %s\n  %s",
				i, determinismScript[i].path, determinismScript[i].body, a[i], b[i])
		}
	}
}

// TestDeterminismCacheOnOff runs the sequence with and without the result
// cache: hits must reproduce computed bodies exactly.
func TestDeterminismCacheOnOff(t *testing.T) {
	_, cached := newTestServer(t, Config{})
	_, uncached := newTestServer(t, Config{CacheEntries: -1})
	a := runScript(t, cached)
	b := runScript(t, uncached)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("step %d (%s %s): cached vs uncached differ:\n  %s\n  %s",
				i, determinismScript[i].path, determinismScript[i].body, a[i], b[i])
		}
	}
}

// A non-server package: ctxpoll does not apply outside internal/server.
package other

import "context"

func loop(ctx context.Context, ch chan int) {
	for range ch { // ok: not a server package
	}
	for { // ok: not a server package
		select {
		case <-ch:
		}
	}
}

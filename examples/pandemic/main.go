// Pandemic analysis with configurable age coverage (the paper's Fig. 12
// case study and Example 3).
//
// On a 10k-citizen contact network (58% under 50), ten high-degree citizens
// seed an infection. A budget of 100 vaccines is allocated across the age
// groups in two configurations — [80 young, 20 senior] and [20, 80] — and
// the resulting spreads are compared. The contact patterns of the summary
// describe how the infection propagates.
package main

import (
	"fmt"
	"log"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
	"github.com/cwru-db/fgs/spread"
)

func main() {
	g := datasets.Pandemic(11, 10000)
	groups, err := datasets.GroupsByAttr(g, "citizen", "agegroup", []string{"young", "senior"}, 0, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contact network: %d citizens, %d contacts\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("groups: %d young, %d senior\n", len(groups.At(0).Members), len(groups.At(1).Members))

	seeds := spread.TopDegreeSeeds(g, 10)
	model := spread.Model{P: 0.13, Trials: 20, Seed: 13}

	fmt.Println("\nvaccine allocation  -> mean infections")
	for _, alloc := range [][]int{{0, 0}, {80, 20}, {50, 50}, {20, 80}} {
		res := spread.SimulateImmunization(g, groups, seeds, alloc, model)
		fmt.Printf("  young=%-3d senior=%-3d -> %8.1f\n", alloc[0], alloc[1], res.Infected)
	}

	// Summarize the contact structure around the most-connected citizens of
	// each age group (the paper's P10/P11 patterns).
	sumGroups, err := datasets.GroupsByAttr(g, "citizen", "agegroup", []string{"young", "senior"}, 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	util := fgs.NewNeighborCoverage(g, fgs.NeighborsBoth, "contact")
	summary, err := fgs.Summarize(g, sumGroups, util, fgs.Config{R: 1, N: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfrequent contact patterns of the selected spreaders:")
	for i, pi := range summary.Patterns {
		if i == 4 {
			break
		}
		fmt.Printf("  P%d %s\n", 10+i, pi.P)
	}
}

package main

// The scale-bench mode: fgsbench -scale-bench boots the serving engine
// in-process over a large (optionally multi-million-node) graph and measures
// the MVCC read path against the locked baseline under identical mixed
// read/write load: read throughput and tail latency while writers churn,
// update latency, snapshot-publish cost, and peak resident memory against a
// ceiling. It drives the engine's http.Handler directly (no TCP) so the
// numbers are engine numbers, not socket numbers.
//
// The read mix runs with the production result cache by default: cache hits
// bypass the engine lock in both modes, so what the modes differ on is the
// misses — every epoch bump invalidates the whole per-epoch key space, and
// in locked mode those recomputes convoy behind the pending writer while in
// mvcc they proceed against the pinned snapshot. -scale-cache-entries -1
// turns the cache off for a pure-compute comparison.
//
//	fgsbench -scale-bench -scale-nodes 1000000 -scale-duration 20s
//	fgsbench -scale-bench -scale-graph lki-1m.fgsb -scale-out scale.json

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
	"github.com/cwru-db/fgs/internal/obs"
)

type scaleConfig struct {
	GraphPath string // load this file (binary or text); empty = generate
	Dataset   string // lki or dbp (sized generators), when generating
	Nodes     int    // target node count, when generating
	Seed      int64
	GroupSpec string // label:attr:val1,val2:lower:upper
	Duration  time.Duration
	Readers   int
	Writers   int
	// WriteInterval paces each writer between update batches. Zero means
	// back-to-back updates — that measures Maintainer.Apply saturation (the
	// same CPU-bound work in both modes), not the read path; a sustained
	// churn rate is what the locked-vs-mvcc comparison is about.
	WriteInterval time.Duration
	// WriteBatch is the number of edges per update batch. Bulk batches are
	// the streaming-ingest scenario: Maintainer.Apply holds the exclusive
	// lock for the whole batch in locked mode, so batch size directly sets
	// how long locked-mode reads freeze per epoch; the MVCC path publishes
	// the same batch in O(delta) and reads never stop.
	WriteBatch int
	MaxViews   int
	// CacheEntries sizes the epoch-keyed result cache: 0 keeps the server
	// default (the production configuration), -1 disables it so every read
	// is a fresh compute. Both modes share the cache implementation and a
	// hit never touches the engine lock, so the comparison isolates what
	// happens on the misses each epoch bump forces.
	CacheEntries int
	// DistinctViews widens the read mix with this many attribute-literal
	// view patterns (one per value of the group attribute) on top of the
	// shared viewPatterns. Every epoch bump invalidates all of them at
	// once, so churn forces DistinctViews fresh computes per epoch — the
	// cache-warm steady state the production mix actually sees.
	DistinctViews int
	// Rounds interleaves that many locked/mvcc mode pairs and reports the
	// median round per mode (by read throughput). On shared or single-core
	// hosts a GC cycle or a noisy neighbour can land inside one mode's
	// window; interleaving plus the median filters that out.
	Rounds int
	// Shards, when ≥ 2, adds the summarize-throughput comparison: after the
	// mixed-workload rounds, single summarize requests are issued
	// sequentially (cache disabled, no concurrent load) against a sharded
	// mvcc engine and an unpartitioned one, and the median latencies are
	// compared. 0 or 1 skips the section.
	Shards       int
	MemCeilingMB int
	OutPath      string // write the JSON result here ("" = stdout table only)
}

// scaleModeResult is one read-mode's measurement.
type scaleModeResult struct {
	Mode        string  `json:"mode"`
	ReadOps     int64   `json:"read_ops"`
	ReadRPS     float64 `json:"read_rps"`
	ReadP50Ms   float64 `json:"read_p50_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`
	ReadP999Ms  float64 `json:"read_p999_ms"`
	UpdateOps   int64   `json:"update_ops"`
	UpdateP50Ms float64 `json:"update_p50_ms"`
	UpdateMaxMs float64 `json:"update_max_ms"`
	Epochs      uint64  `json:"epochs"`
	CacheHits   int64   `json:"cache_hits"`
	CacheHitPct float64 `json:"cache_hit_pct"`
	// MVCC-only publication stats (zero in locked mode).
	Publishes     int64   `json:"publishes,omitempty"`
	Clones        int64   `json:"clones,omitempty"`
	WriterWaits   int64   `json:"writer_waits,omitempty"`
	PublishMeanUs float64 `json:"publish_mean_us,omitempty"`
	PublishP99Us  float64 `json:"publish_p99_us,omitempty"`
}

// scaleSummarize is the partition-parallel summarize comparison: median
// single-request latency against a sharded engine vs an unpartitioned one,
// measured sequentially with the result cache disabled so every request is a
// fresh APXFGS compute.
type scaleSummarize struct {
	Shards           int     `json:"shards"`
	BaselineOps      int     `json:"baseline_ops"`
	BaselineP50Ms    float64 `json:"baseline_p50_ms"`
	ShardedOps       int     `json:"sharded_ops"`
	ShardedP50Ms     float64 `json:"sharded_p50_ms"`
	SummarizeSpeedup float64 `json:"speedup"`
}

// scaleResult is the full run, serialized as JSON for CI consumption. With
// Rounds > 1, Modes holds each mode's median round and RoundSpeedups the
// per-round ratios for transparency.
type scaleResult struct {
	Dataset       string            `json:"dataset"`
	Nodes         int               `json:"nodes"`
	Edges         int               `json:"edges"`
	LoadSeconds   float64           `json:"load_seconds"`
	Rounds        int               `json:"rounds"`
	Shards        int               `json:"shards"`
	Modes         []scaleModeResult `json:"modes"`
	RoundSpeedups []float64         `json:"round_speedups,omitempty"`
	ReadSpeedup   float64           `json:"read_speedup"`
	Summarize     *scaleSummarize   `json:"summarize,omitempty"`
	PeakHeapMB    float64           `json:"peak_heap_mb"`
	MemCeilingMB  int               `json:"mem_ceiling_mb"`
	WithinCeiling bool              `json:"within_ceiling"`
}

// buildScaleGraph loads or generates the benchmark graph. Generation and
// file loads are both deterministic, so each mode gets an identical fresh
// graph by calling this again.
func buildScaleGraph(cfg scaleConfig) (*fgs.Graph, string, error) {
	if cfg.GraphPath != "" {
		f, err := os.Open(cfg.GraphPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := fgs.ReadGraphAuto(f)
		return g, cfg.GraphPath, err
	}
	switch cfg.Dataset {
	case "lki":
		return datasets.LKISized(cfg.Seed, cfg.Nodes), fmt.Sprintf("lki-sized-%d", cfg.Nodes), nil
	case "dbp":
		return datasets.DBPSized(cfg.Seed, cfg.Nodes), fmt.Sprintf("dbp-sized-%d", cfg.Nodes), nil
	default:
		return nil, "", fmt.Errorf("scale-bench: unknown dataset %q (want lki or dbp)", cfg.Dataset)
	}
}

// runScale executes the scale benchmark: per mode, boot a fresh engine over
// an identical graph and drive it with Readers read goroutines (view/stats
// mix) and Writers update goroutines (insert/delete cycles that always
// apply) for Duration. Returns an error when the memory ceiling is blown,
// so CI smoke jobs fail loudly.
func runScale(w io.Writer, cfg scaleConfig) error {
	if cfg.Readers <= 0 || cfg.Writers <= 0 {
		return fmt.Errorf("scale-bench: readers and writers must be positive")
	}
	label, attr, values, lower, upper, err := parseScaleGroups(cfg.GroupSpec)
	if err != nil {
		return err
	}

	peak := &peakTracker{}
	stopSampling := peak.start()
	defer stopSampling()

	rounds := cfg.Rounds
	if rounds < 1 {
		rounds = 1
	}
	res := scaleResult{MemCeilingMB: cfg.MemCeilingMB, Rounds: rounds, Shards: cfg.Shards}
	perMode := map[string][]scaleModeResult{}
	for round := 0; round < rounds; round++ {
		for _, mode := range []string{"locked", "mvcc"} {
			loadStart := time.Now()
			g, name, err := buildScaleGraph(cfg)
			if err != nil {
				return err
			}
			loadTime := time.Since(loadStart)
			if res.Dataset == "" {
				res.Dataset = name
				res.Nodes = g.NumNodes()
				res.Edges = g.NumEdges()
				res.LoadSeconds = loadTime.Seconds()
				fmt.Fprintf(os.Stderr, "fgsbench: scale graph %s ready in %v: %d nodes, %d edges\n",
					name, loadTime.Round(time.Millisecond), g.NumNodes(), g.NumEdges())
			}
			groups, err := datasets.GroupsByAttr(g, label, attr, values, lower, upper)
			if err != nil {
				return fmt.Errorf("scale-bench: groups: %w", err)
			}
			mr, err := runScaleMode(g, groups, mode, cfg, scalePatterns(cfg, label, attr, values))
			if err != nil {
				return err
			}
			perMode[mode] = append(perMode[mode], mr)
			fmt.Fprintf(os.Stderr, "fgsbench: scale %s round %d/%d: %.0f reads/s, read p99 %.2fms, update max %.2fms\n",
				mode, round+1, rounds, mr.ReadRPS, mr.ReadP99Ms, mr.UpdateMaxMs)
			// Drop the engine and its replicas before the next mode boots.
			runtime.GC()
		}
	}
	if cfg.Shards > 1 {
		sm, err := runScaleSummarize(cfg, label, attr, values, lower, upper)
		if err != nil {
			return err
		}
		res.Summarize = sm
	}
	stopSampling()

	for _, mode := range []string{"locked", "mvcc"} {
		res.Modes = append(res.Modes, medianByRPS(perMode[mode]))
	}
	for round := 0; round < rounds; round++ {
		if l := perMode["locked"][round].ReadRPS; l > 0 {
			res.RoundSpeedups = append(res.RoundSpeedups, perMode["mvcc"][round].ReadRPS/l)
		}
	}
	if res.Modes[0].ReadRPS > 0 {
		res.ReadSpeedup = res.Modes[1].ReadRPS / res.Modes[0].ReadRPS
	}
	res.PeakHeapMB = float64(peak.peak.Load()) / (1 << 20)
	res.WithinCeiling = cfg.MemCeilingMB <= 0 || res.PeakHeapMB <= float64(cfg.MemCeilingMB)

	printScale(w, res)
	if cfg.OutPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fgsbench: scale results written to %s\n", cfg.OutPath)
	}
	if !res.WithinCeiling {
		return fmt.Errorf("scale-bench: peak heap %.0f MB exceeds ceiling %d MB", res.PeakHeapMB, cfg.MemCeilingMB)
	}
	return nil
}

// scalePatterns builds the read mix's view-pattern universe: the shared
// viewPatterns plus DistinctViews single-node patterns over the group
// attribute's value space (value names are "<prefix><i>" in the sized
// generators, e.g. city=c17). Distinct patterns are distinct cache keys, so
// every epoch bump forces that many fresh computes before hits resume.
func scalePatterns(cfg scaleConfig, label, attr string, values []string) []string {
	patterns := append([]string(nil), viewPatterns...)
	prefix := strings.TrimRight(values[0], "0123456789")
	for k := 0; k < cfg.DistinctViews; k++ {
		patterns = append(patterns, fmt.Sprintf("n 0 %s %s=%s%d\nf 0", label, attr, prefix, k))
	}
	return patterns
}

// runScaleMode boots one engine and drives the mixed workload against its
// handler. Readers count only 2xx responses; writers cycle insert/delete of
// per-writer edges so every batch applies and advances the epoch.
func runScaleMode(g *fgs.Graph, groups *fgs.Groups, mode string, cfg scaleConfig, patterns []string) (scaleModeResult, error) {
	observer := fgs.NewObserver(nil)
	srv, err := fgs.NewServer(g, groups, fgs.ServerConfig{
		Workers:      cfg.Readers + cfg.Writers + 2,
		QueueDepth:   4 * (cfg.Readers + cfg.Writers),
		CacheEntries: cfg.CacheEntries,
		Deadline:     10 * time.Minute,
		ReadMode:     mode,
		MaxViews:     cfg.MaxViews,
		Obs:          observer,
	})
	if err != nil {
		return scaleModeResult{}, err
	}
	h := srv.Handler()

	var stop atomic.Bool
	var wg sync.WaitGroup
	var cacheHits atomic.Int64
	readLats := make([][]time.Duration, cfg.Readers)
	writeLats := make([][]time.Duration, cfg.Writers)
	start := time.Now()
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for !stop.Load() {
				var req *http.Request
				if i%4 == 3 {
					req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
				} else {
					// Stagger readers through the pattern universe so they
					// don't march over the same cache key in lockstep.
					body := fmt.Sprintf(`{"pattern":%q}`, patterns[(i+r*7)%len(patterns)])
					req = httptest.NewRequest(http.MethodPost, "/v1/view", strings.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
				}
				rec := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, req)
				if rec.Code == http.StatusOK {
					readLats[r] = append(readLats[r], time.Since(t0))
					if rec.Header().Get("X-Fgs-Cache") == "hit" {
						cacheHits.Add(1)
					}
				}
				i++
			}
		}(r)
	}
	for wr := 0; wr < cfg.Writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			// Each writer cycles insert/delete of the same per-writer edge
			// batch (label disambiguates writers), so every batch applies
			// fully and advances the epoch without growing the graph.
			insertBody, deleteBody := writerBatchBodies(wr, cfg.WriteBatch, g.NumNodes())
			i := 0
			for !stop.Load() {
				body := insertBody
				if i%2 == 1 {
					body = deleteBody
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/update", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, req)
				if rec.Code == http.StatusOK {
					writeLats[wr] = append(writeLats[wr], time.Since(t0))
				}
				i++
				if cfg.WriteInterval > 0 {
					time.Sleep(cfg.WriteInterval)
				}
			}
		}(wr)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var reads, writes []time.Duration
	for _, l := range readLats {
		reads = append(reads, l...)
	}
	for _, l := range writeLats {
		writes = append(writes, l...)
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
	sort.Slice(writes, func(i, j int) bool { return writes[i] < writes[j] })

	mr := scaleModeResult{
		Mode:        mode,
		ReadOps:     int64(len(reads)),
		ReadRPS:     float64(len(reads)) / elapsed.Seconds(),
		ReadP50Ms:   ms(permille(reads, 500)),
		ReadP99Ms:   ms(permille(reads, 990)),
		ReadP999Ms:  ms(permille(reads, 999)),
		UpdateOps:   int64(len(writes)),
		UpdateP50Ms: ms(permille(writes, 500)),
		UpdateMaxMs: ms(permille(writes, 1000)),
		Epochs:      srv.Epoch(),
		CacheHits:   cacheHits.Load(),
	}
	if mr.ReadOps > 0 {
		mr.CacheHitPct = 100 * float64(mr.CacheHits) / float64(mr.ReadOps)
	}
	if mode == "mvcc" {
		fillPublishStats(&mr, observer.Reg.Gather())
	}
	return mr, nil
}

// runScaleSummarize measures the partition-parallel win directly: median
// single-request summarize latency on an otherwise idle engine,
// unpartitioned vs sharded, over identical fresh graphs. Requests run
// sequentially with the result cache disabled, so each sample is one full
// APXFGS compute; the loop is time-boxed by the scale duration with a
// minimum of three samples per engine.
func runScaleSummarize(cfg scaleConfig, label, attr string, values []string, lower, upper int) (*scaleSummarize, error) {
	const maxSamples = 64
	out := &scaleSummarize{Shards: cfg.Shards}
	for _, shards := range []int{0, cfg.Shards} {
		g, _, err := buildScaleGraph(cfg)
		if err != nil {
			return nil, err
		}
		groups, err := datasets.GroupsByAttr(g, label, attr, values, lower, upper)
		if err != nil {
			return nil, fmt.Errorf("scale-bench: groups: %w", err)
		}
		srv, err := fgs.NewServer(g, groups, fgs.ServerConfig{
			Workers:      runtime.GOMAXPROCS(0),
			CacheEntries: -1,
			Deadline:     10 * time.Minute,
			ReadMode:     "mvcc",
			MaxViews:     cfg.MaxViews,
			Shards:       shards,
		})
		if err != nil {
			return nil, err
		}
		h := srv.Handler()
		var lats []time.Duration
		deadline := time.Now().Add(cfg.Duration)
		for len(lats) < 3 || (time.Now().Before(deadline) && len(lats) < maxSamples) {
			req := httptest.NewRequest(http.MethodPost, "/v1/summarize", strings.NewReader(`{}`))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			t0 := time.Now()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return nil, fmt.Errorf("scale-bench: summarize (shards=%d) returned %d: %s", shards, rec.Code, rec.Body.String())
			}
			lats = append(lats, time.Since(t0))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		med := ms(permille(lats, 500))
		if shards == 0 {
			out.BaselineOps = len(lats)
			out.BaselineP50Ms = med
		} else {
			out.ShardedOps = len(lats)
			out.ShardedP50Ms = med
		}
		fmt.Fprintf(os.Stderr, "fgsbench: scale summarize shards=%d: %d requests, p50 %.2fms\n", shards, len(lats), med)
		runtime.GC()
	}
	if out.ShardedP50Ms > 0 {
		out.SummarizeSpeedup = out.BaselineP50Ms / out.ShardedP50Ms
	}
	return out, nil
}

// medianByRPS picks the round with the median read throughput (lower-middle
// for even counts) — the representative round on noisy hosts.
func medianByRPS(rounds []scaleModeResult) scaleModeResult {
	sorted := append([]scaleModeResult(nil), rounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ReadRPS < sorted[j].ReadRPS })
	return sorted[(len(sorted)-1)/2]
}

// writerBatchBodies prebuilds one writer's insert and delete update bodies:
// batch distinct edges under a per-writer label, endpoints folded into the
// node-id space so the batch applies on any graph size.
func writerBatchBodies(wr, batch, numNodes int) (insert, delete string) {
	if batch < 1 {
		batch = 1
	}
	var edges strings.Builder
	for j := 0; j < batch; j++ {
		if j > 0 {
			edges.WriteByte(',')
		}
		fmt.Fprintf(&edges, `{"from":%d,"to":%d,"label":"bench%d"}`,
			j%numNodes, (1000+j)%numNodes, wr)
	}
	return `{"insert":[` + edges.String() + `]}`, `{"delete":[` + edges.String() + `]}`
}

// fillPublishStats extracts the MVCC publication series from a metrics
// snapshot: counters by name, and mean / approximate p99 (bucket upper
// bound) from the publish-latency histogram.
func fillPublishStats(mr *scaleModeResult, metrics []obs.Metric) {
	for _, m := range metrics {
		switch m.Name {
		case "fgs_server_mvcc_publishes_total":
			mr.Publishes = int64(m.Value)
		case "fgs_server_mvcc_clones_total":
			mr.Clones = int64(m.Value)
		case "fgs_server_mvcc_writer_waits_total":
			mr.WriterWaits = int64(m.Value)
		case "fgs_server_mvcc_publish_us":
			if m.Hist == nil || m.Hist.Count == 0 {
				continue
			}
			mr.PublishMeanUs = float64(m.Hist.Sum) / float64(m.Hist.Count)
			want := (m.Hist.Count*99 + 99) / 100
			for i, cum := range m.Hist.Buckets {
				if cum >= want {
					if i < len(m.Hist.Buckets)-1 {
						mr.PublishP99Us = float64(obs.HistBound(i))
					} else {
						// The p99 landed in the +Inf overflow bucket; -1
						// signals "beyond the histogram's finite range".
						mr.PublishP99Us = -1
					}
					break
				}
			}
		}
	}
}

// peakTracker samples the heap high-water mark in the background.
type peakTracker struct {
	peak atomic.Uint64
	stop chan struct{}
	once sync.Once
}

func (p *peakTracker) start() func() {
	p.stop = make(chan struct{})
	sample := func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		for {
			old := p.peak.Load()
			if m.HeapAlloc <= old || p.peak.CompareAndSwap(old, m.HeapAlloc) {
				return
			}
		}
	}
	sample()
	go func() {
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-p.stop:
				return
			}
		}
	}()
	return func() { p.once.Do(func() { sample(); close(p.stop) }) }
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// parseScaleGroups splits "label:attr:val1,val2:lower:upper" (the fgsd
// group-spec syntax).
func parseScaleGroups(spec string) (label, attr string, values []string, lower, upper int, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 5 {
		return "", "", nil, 0, 0, fmt.Errorf("bad -scale-groups %q: want label:attr:val1,val2:lower:upper", spec)
	}
	if _, err := fmt.Sscanf(parts[3]+" "+parts[4], "%d %d", &lower, &upper); err != nil {
		return "", "", nil, 0, 0, fmt.Errorf("bad -scale-groups bounds in %q", spec)
	}
	return parts[0], parts[1], strings.Split(parts[2], ","), lower, upper, nil
}

// printScale renders the human-readable summary table.
func printScale(w io.Writer, res scaleResult) {
	fmt.Fprintf(w, "scale-bench: %s — %d nodes, %d edges, loaded in %.2fs\n\n",
		res.Dataset, res.Nodes, res.Edges, res.LoadSeconds)
	fmt.Fprintf(w, "%-8s %10s %10s %9s %9s %9s %9s %9s %7s %6s   (latencies in ms)\n",
		"mode", "reads", "reads/s", "r_p50", "r_p99", "r_p99.9", "upd_p50", "upd_max", "epochs", "hit%")
	fmt.Fprintln(w, strings.Repeat("-", 95))
	for _, m := range res.Modes {
		fmt.Fprintf(w, "%-8s %10d %10.0f %9.2f %9.2f %9.2f %9.2f %9.2f %7d %6.1f\n",
			m.Mode, m.ReadOps, m.ReadRPS, m.ReadP50Ms, m.ReadP99Ms, m.ReadP999Ms,
			m.UpdateP50Ms, m.UpdateMaxMs, m.Epochs, m.CacheHitPct)
	}
	for _, m := range res.Modes {
		if m.Mode == "mvcc" && m.Publishes > 0 {
			p99 := fmt.Sprintf("≤ %.0fµs", m.PublishP99Us)
			if m.PublishP99Us < 0 {
				p99 = fmt.Sprintf("> %dµs", obs.HistBound(obs.HistNumBuckets-1))
			}
			fmt.Fprintf(w, "\nmvcc: %d publishes (%d boot clones, %d writer waits), publish mean %.0fµs, p99 %s\n",
				m.Publishes, m.Clones, m.WriterWaits, m.PublishMeanUs, p99)
		}
	}
	fmt.Fprintf(w, "\nread speedup (mvcc/locked): %.2fx", res.ReadSpeedup)
	if res.Rounds > 1 {
		fmt.Fprintf(w, " — median of %d interleaved rounds (per-round:", res.Rounds)
		for _, s := range res.RoundSpeedups {
			fmt.Fprintf(w, " %.2fx", s)
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintln(w)
	if sm := res.Summarize; sm != nil {
		fmt.Fprintf(w, "summarize (sequential, cache off): baseline p50 %.2fms (%d reqs), %d shards p50 %.2fms (%d reqs) — %.2fx\n",
			sm.BaselineP50Ms, sm.BaselineOps, sm.Shards, sm.ShardedP50Ms, sm.ShardedOps, sm.SummarizeSpeedup)
	}
	fmt.Fprintf(w, "peak heap: %.0f MB (ceiling %d MB, within: %v)\n",
		res.PeakHeapMB, res.MemCeilingMB, res.WithinCeiling)
}

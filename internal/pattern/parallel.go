package pattern

import (
	"runtime"
	"sync"

	"github.com/cwru-db/fgs/internal/graph"
)

// Workers controls CoverAmong's parallelism: 0 or 1 evaluates sequentially;
// higher values split large candidate lists across that many goroutines.
// The matcher itself is stateless during a search (the graph is read-only),
// so results are identical and in the same order either way.
//
// The requested count is clamped to runtime.GOMAXPROCS(0) *at call time* —
// more goroutines than schedulable threads only add overhead. The clamped
// value is what m.workers stores, so coverAmongParallel always fans out to
// exactly the clamped count; callers reading back the effective parallelism
// should account for the clamp rather than assume their requested n.
//
// Parallelism is opt-in (default sequential) so the efficiency experiments
// remain comparable with the paper's single-threaded measurements.
func (m *Matcher) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	max := runtime.GOMAXPROCS(0)
	if n > max {
		n = max
	}
	m.workers = n
}

// parallelThreshold is the candidate count below which parallel evaluation
// is not worth the goroutine overhead.
const parallelThreshold = 256

// coverAmongParallel evaluates candidates across m.workers goroutines,
// preserving input order in the result.
func (m *Matcher) coverAmongParallel(c *compiled, candidates []graph.NodeID) []graph.NodeID {
	matched := make([]bool, len(candidates))
	var wg sync.WaitGroup
	chunk := (len(candidates) + m.workers - 1) / m.workers
	for w := 0; w < m.workers; w++ {
		lo := w * chunk
		if lo >= len(candidates) {
			break
		}
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				v := candidates[i]
				if !c.nodeOK(m.g, c.focus, v) {
					continue
				}
				found := false
				m.search(c, v, func(*searchScratch) bool { found = true; return false })
				matched[i] = found
			}
		}(lo, hi)
	}
	wg.Wait()
	// Size the result exactly from the matched count: the len/4 guess this
	// replaces forced append-regrowth on selective patterns and wasted
	// capacity on broad ones.
	count := 0
	for _, ok := range matched {
		if ok {
			count++
		}
	}
	out := make([]graph.NodeID, 0, count)
	for i, ok := range matched {
		if ok {
			out = append(out, candidates[i])
		}
	}
	return out
}

// Package experiments regenerates every figure of the paper's evaluation
// (Section VIII) on the synthetic stand-in datasets. Each FigXX function
// returns typed rows; cmd/fgsbench prints them and bench_test.go drives them
// under testing.B. The per-experiment settings follow the paper exactly
// (scaled by Suite.Scale); DESIGN.md maps every figure to its function.
package experiments

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"github.com/cwru-db/fgs/internal/baseline"
	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/metrics"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/submod"
)

// Row is one data point of a figure: (experiment, dataset, algorithm, x) ->
// metric value.
type Row struct {
	Exp     string
	Dataset string
	Algo    string
	XLabel  string
	X       float64
	Metric  string
	Value   float64
}

// Suite runs the experiments at a given dataset scale with a fixed seed.
// Scale 1 is test-sized; the paper's graphs correspond to roughly scale
// 100+ (runtimes grow accordingly).
type Suite struct {
	Scale int
	Seed  int64
	// Workers opts the pattern-based algorithms into the parallel
	// mine→score pipeline (core.Config.Workers). The default 0 keeps every
	// figure single-threaded, preserving comparability with the paper's
	// measurements; any setting produces identical metric values, only the
	// reported wall times change.
	Workers int
	// Obs, when set, threads the observability collector through every run:
	// phase spans land in Obs.Trace, component counters in Obs.Reg, and all
	// figure timings use Obs' clock. Nil keeps collection off (the runs then
	// time themselves against the system clock, as before).
	Obs *obs.Observer

	graphs map[string]*graph.Graph
}

// clock returns the suite's timing source: Obs' clock when set, the system
// clock otherwise (GetClock is nil-safe).
func (s *Suite) clock() obs.Clock { return s.Obs.GetClock() }

// New returns a suite at the given scale.
func New(scale int, seed int64) *Suite {
	if scale < 1 {
		scale = 1
	}
	return &Suite{Scale: scale, Seed: seed, graphs: make(map[string]*graph.Graph)}
}

// Dataset returns (and caches) one of the three evaluation graphs by name:
// "DBP", "LKI", or "Cite".
func (s *Suite) Dataset(name string) *graph.Graph {
	if g, ok := s.graphs[name]; ok {
		return g
	}
	var g *graph.Graph
	switch name {
	case "DBP":
		g = gen.DBP(s.Seed, s.Scale)
	case "LKI":
		g = gen.LKI(s.Seed+1, s.Scale)
	case "Cite":
		g = gen.Cite(s.Seed+2, s.Scale)
	default:
		// Callers pass only the three literal names above; an unknown name is
		// a programming error inside this package, not runtime input.
		//lint:allow nopanic internal invariant — dataset names are compile-time literals
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
	s.graphs[name] = g
	return g
}

// setting bundles one dataset's group/utility construction for the shared
// Exp-1/Exp-2 configuration (card(V)=2, bounds [40,60]).
type setting struct {
	name    string
	g       *graph.Graph
	groups  *submod.Groups
	util    func() submod.Utility
	workers int
	obs     *obs.Observer
}

// standardSettings builds the three per-dataset configurations of
// Figs. 8(a)/8(b)/9(a): two groups each with the paper's [40,60] bounds.
// Group-construction failures (e.g. bounds infeasible at a given scale)
// propagate as errors so fgsbench can exit nonzero with a message instead of
// panicking mid-evaluation.
func (s *Suite) standardSettings(lower, upper int) ([]setting, error) {
	dbp := s.Dataset("DBP")
	lki := s.Dataset("LKI")
	cite := s.Dataset("Cite")
	dbpGroups, err := gen.GroupsByAttr(dbp, "movie", "genre", []string{"Action", "Romance"}, lower, upper)
	if err != nil {
		return nil, fmt.Errorf("DBP groups: %w", err)
	}
	lkiGroups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, lower, upper)
	if err != nil {
		return nil, fmt.Errorf("LKI groups: %w", err)
	}
	citeGroups, err := gen.GroupsByAttr(cite, "paper", "topic", []string{"ML", "Networking"}, lower, upper)
	if err != nil {
		return nil, fmt.Errorf("Cite groups: %w", err)
	}
	return []setting{
		{name: "DBP", g: dbp, groups: dbpGroups, util: func() submod.Utility { return submod.NewRatingSum(dbp, "rating") }, workers: s.Workers, obs: s.Obs},
		{name: "LKI", g: lki, groups: lkiGroups, util: func() submod.Utility { return submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev") }, workers: s.Workers, obs: s.Obs},
		{name: "Cite", g: cite, groups: citeGroups, util: func() submod.Utility { return submod.NewNeighborCoverage(cite, submod.NeighborsIn, "cite") }, workers: s.Workers, obs: s.Obs},
	}, nil
}

// miningCfg is the shared pattern-search budget. Small pattern sizes keep
// subgraph-isomorphism costs polynomial in practice, as the paper's T_I
// argument assumes. workers > 1 opts into the parallel scoring pipeline
// (identical output, lower wall time).
func miningCfg(workers int) mining.Config {
	return mining.Config{MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 150, Workers: workers}
}

// algoOutcome normalizes one algorithm's run for scoring.
type algoOutcome struct {
	covered     []graph.NodeID
	structure   int
	corrections int
	globalRatio float64 // used instead of the regional ratio when > 0
	elapsed     time.Duration
}

// runAPXFGS executes APXFGS and normalizes its output. Timings come from the
// setting's obs clock (system clock when no observer is installed).
func runAPXFGS(st setting, r, n int) (algoOutcome, error) {
	cfg := core.Config{R: r, N: n, Mining: miningCfg(st.workers), Obs: st.obs}
	clock := st.obs.GetClock()
	start := clock.Now()
	sum, err := core.APXFGS(st.g, st.groups, st.util(), cfg)
	if err != nil {
		return algoOutcome{}, err
	}
	structure := 0
	for _, pi := range sum.Patterns {
		structure += pi.P.Size()
	}
	return algoOutcome{covered: sum.Covered, structure: structure, corrections: sum.Corrections.Len(), elapsed: clock.Now().Sub(start)}, nil
}

// runKAPXFGS executes the k-bounded variant.
func runKAPXFGS(st setting, r, k, n int) (algoOutcome, error) {
	cfg := core.Config{R: r, K: k, N: n, Mining: miningCfg(st.workers), Obs: st.obs}
	clock := st.obs.GetClock()
	start := clock.Now()
	sum, err := core.KAPXFGS(st.g, st.groups, st.util(), cfg)
	if err != nil {
		return algoOutcome{}, err
	}
	structure := 0
	for _, pi := range sum.Patterns {
		structure += pi.P.Size()
	}
	return algoOutcome{covered: sum.Covered, structure: structure, corrections: sum.Corrections.Len(), elapsed: clock.Now().Sub(start)}, nil
}

// runOnline executes Online-APXFGS over the group nodes as a stream.
func runOnline(st setting, r, k, n int) (algoOutcome, error) {
	cfg := core.Config{R: r, K: k, N: n, Mining: miningCfg(st.workers), Obs: st.obs}
	clock := st.obs.GetClock()
	start := clock.Now()
	o := core.NewOnline(st.g, st.groups, st.util(), cfg)
	o.ProcessAll(st.groups.All())
	sum, err := o.Finish()
	if err != nil {
		return algoOutcome{}, err
	}
	structure := 0
	for _, pi := range sum.Patterns {
		structure += pi.P.Size()
	}
	return algoOutcome{covered: sum.Covered, structure: structure, corrections: sum.Corrections.Len(), elapsed: clock.Now().Sub(start)}, nil
}

// fromBaseline adapts a baseline.Result.
func fromBaseline(res baseline.Result) algoOutcome {
	return algoOutcome{covered: res.Covered, structure: res.StructureSize, corrections: res.Corrections, globalRatio: res.GlobalRatio, elapsed: res.Elapsed}
}

// runAll runs the full algorithm lineup of Exp-1 on one setting.
// algoOrder is the canonical emission order for runAll's outcomes: map
// iteration is randomized per process, and figure rows must come out in the
// same order every run (the CSV writer, unlike FormatRows, does not sort).
var algoOrder = []string{"APXFGS", "Online-APXFGS", "Grami", "d-sum", "MMPG", "Mosso"}

// orderedAlgos returns the outcome keys present in outcomes, in canonical
// order (any key outside algoOrder follows, sorted).
func orderedAlgos(outcomes map[string]algoOutcome) []string {
	algos := make([]string, 0, len(outcomes))
	for _, a := range algoOrder {
		if _, ok := outcomes[a]; ok {
			algos = append(algos, a)
		}
	}
	if len(algos) < len(outcomes) {
		rest := make([]string, 0, len(outcomes)-len(algos))
		for a := range outcomes {
			if !slices.Contains(algoOrder, a) {
				rest = append(rest, a)
			}
		}
		sort.Strings(rest)
		algos = append(algos, rest...)
	}
	return algos
}

func (s *Suite) runAll(st setting, r, k, n int) (map[string]algoOutcome, error) {
	out := make(map[string]algoOutcome, 6)
	apx, err := runKAPXFGS(st, r, k, n)
	if err != nil {
		return nil, fmt.Errorf("%s: APXFGS: %w", st.name, err)
	}
	out["APXFGS"] = apx
	onl, err := runOnline(st, r, k, n)
	if err != nil {
		return nil, fmt.Errorf("%s: Online: %w", st.name, err)
	}
	out["Online-APXFGS"] = onl
	out["Grami"] = fromBaseline(baseline.Grami(st.g, st.groups, baseline.GramiConfig{R: r, K: k, N: n, Mining: miningCfg(st.workers)}))
	out["d-sum"] = fromBaseline(baseline.DSum(st.g, st.groups, baseline.DSumConfig{D: r, K: k, N: n, Mining: miningCfg(st.workers)}))
	out["MMPG"] = fromBaseline(baseline.MMPG(st.g, st.groups, baseline.MMPGConfig{R: r, K: k, N: n, Mining: miningCfg(st.workers)}))
	out["Mosso"] = fromBaseline(baseline.SummarizeStatic(st.g, st.groups, n, s.Seed))
	return out, nil
}

// score converts an outcome into the two Exp-1 metrics.
func score(g *graph.Graph, groups *submod.Groups, r int, o algoOutcome) (covErr, compRatio float64) {
	covErr = metrics.CoverageError(groups, o.covered)
	if o.globalRatio > 0 {
		return covErr, o.globalRatio
	}
	return covErr, metrics.CompressionRatio(g, r, o.covered, o.structure, o.corrections)
}

// FormatRows renders rows as an aligned table, grouped by experiment.
func FormatRows(rows []Row) string {
	sorted := append([]Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Exp != sorted[j].Exp {
			return sorted[i].Exp < sorted[j].Exp
		}
		if sorted[i].Dataset != sorted[j].Dataset {
			return sorted[i].Dataset < sorted[j].Dataset
		}
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Algo < sorted[j].Algo
	})
	var b strings.Builder
	lastExp := ""
	for _, r := range sorted {
		if r.Exp != lastExp {
			fmt.Fprintf(&b, "\n== %s ==\n", r.Exp)
			lastExp = r.Exp
		}
		x := ""
		if r.XLabel != "" {
			x = fmt.Sprintf(" %s=%g", r.XLabel, r.X)
		}
		fmt.Fprintf(&b, "%-6s %-14s%-8s %-18s %10.4f\n", r.Dataset, r.Algo, x, r.Metric, r.Value)
	}
	return b.String()
}

// Package server implements fgsd's serving engine: a summarization service
// over one live graph, designed for heavy concurrent read traffic with a
// serialized write path (DESIGN.md §10, §11).
//
// Concurrency model — single writer, many readers, MVCC by default:
//
//   - Read endpoints (summarize, summarize-k, view, workload, stats) pin the
//     current epoch view — an immutable (epoch, graph replica, summary)
//     bundle — for the request lifetime and compute against it without ever
//     touching the engine's write lock. A slow summarize holds its epoch
//     open; it cannot delay writes, and writes cannot tear its view.
//   - Write requests (edge insert/delete batches) are serialized through the
//     Inc-FGS Maintainer under the write lock, advance the graph epoch when —
//     and only when — the batch changed the graph, and publish a fresh view
//     by O(delta) replay onto a pooled replica (view.go).
//   - Config.ReadMode "locked" restores the pre-MVCC behavior — readers
//     under an RWMutex read lock against the live graph — and exists as the
//     comparison baseline for benchmarks and the cross-mode determinism
//     tests; responses are byte-identical across modes.
//
// Around the engine sit admission control (a bounded worker semaphore with
// a bounded wait queue; saturation answers 503 + Retry-After), per-request
// deadlines, and an epoch-keyed LRU result cache: cache keys embed the epoch
// at which the response was computed, so every write invalidates the whole
// cache by construction — stale entries can never be served and simply age
// out of the LRU.
//
// Responses are canonically encoded (fixed field order, normalized request
// hashing), so an identical request sequence yields byte-identical response
// bodies at any worker count — the serving layer inherits the library's
// determinism contract (DESIGN.md §7).
package server

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/store"
	"github.com/cwru-db/fgs/internal/submod"
)

// Config tunes the serving engine. The zero value serves sequentially with
// sensible defaults; see withDefaults for the concrete numbers.
type Config struct {
	// R, K, N are the summarization defaults a request inherits when it
	// leaves the corresponding field unset (R 2, K 0 = unbounded, N 20).
	R, K, N int
	// Utility is the maintained summary's utility spec, in the CLI syntax:
	// "coverage[:edgelabel]", "rating[:attr]", "diversity:attr", or
	// "cardinality". Requests may override it per call. Default "coverage".
	Utility string
	// Workers sizes the admission semaphore — the number of concurrently
	// computing requests — and flows into core.Config.Workers for each run's
	// mining pipeline. 0 serves sequentially (one slot); summaries are
	// byte-identical at any setting.
	Workers int
	// QueueDepth bounds requests waiting for a free worker slot beyond the
	// in-flight cap; arrivals beyond slots+queue get 503 + Retry-After.
	// 0 picks the default (4× slots); negative disables queueing entirely.
	QueueDepth int
	// CacheEntries caps the epoch-keyed result cache. 0 picks the default
	// (256); negative disables caching.
	CacheEntries int
	// Deadline bounds each compute request, covering the queue wait; an
	// admitted request runs to completion (the algorithms are not
	// preemptible), so the deadline's job is shedding work that would start
	// too late. 0 picks the default (30s).
	Deadline time.Duration
	// EmbedCap bounds embedding enumeration for view and workload queries
	// when the request does not set its own (0 = matcher default).
	EmbedCap int
	// ReadMode selects the read path: "mvcc" (default) serves reads from
	// pinned epoch views so they never contend with the writer; "locked"
	// serves them under the engine RWMutex against the live graph (the
	// pre-MVCC baseline, kept for benchmarking and cross-mode tests).
	ReadMode string
	// Shards enables focus-region partitioned summarization (DESIGN.md
	// §14): values ≥ 2 split the focus universe into that many BFS-grown
	// regions per epoch view and run mining shard-locally with a
	// deterministic merge — responses stay byte-identical to the
	// unpartitioned path. 0 or 1 disables partitioning. Only effective in
	// mvcc read mode; locked mode always serves unpartitioned (the live
	// graph mutates under readers, so per-epoch slices cannot be cached).
	Shards int
	// MaxViews caps the MVCC replica pool — the current view plus views
	// still pinned by readers plus free replicas. Each replica is a full
	// graph copy, so this bounds the engine's graph memory to MaxViews×|G|;
	// when the pool is exhausted the writer waits for a reader to release a
	// view. 0 picks the default (3). Ignored in locked mode.
	MaxViews int
	// Obs receives request spans (when it carries a trace), per-endpoint
	// latency histograms, and cache/admission counters. Nil installs a
	// private registry so /metrics works regardless.
	Obs *obs.Observer
	// DisableTracing turns off request-scoped tracing: no trace IDs, no
	// X-Fgs-Trace/Server-Timing headers, no stage histograms, no flight
	// recorder. Exists for the tracing-inertness determinism test and as an
	// operator escape hatch; responses are byte-identical either way.
	DisableTracing bool
	// FlightEvents sizes the flight recorder ring (rounded up to a power of
	// two). 0 picks the default (1024); negative disables the recorder
	// while keeping per-request tracing.
	FlightEvents int
	// SlowRequest is the latency threshold above which a completed request
	// is logged (with its trace ID and stage breakdown) and triggers a
	// flight-recorder dump. 0 disables the slow-request path.
	SlowRequest time.Duration
	// Log receives the engine's structured events: epoch publishes,
	// slow-request reports, flight-recorder dumps. Nil discards them.
	Log *slog.Logger
	// FlightDump receives automatic flight-recorder dumps on 5xx and
	// slow requests (rate-limited to one per cooldown window). Nil disables
	// automatic dumps; explicit DumpFlightRecorder calls and the
	// /debug/fgs/flightrecorder endpoint work regardless.
	FlightDump io.Writer
	// Store, when non-nil, is the open fgstore (internal/store) the engine
	// makes itself durable in: every applied update batch is appended to its
	// WAL before the response is acknowledged, and the engine snapshots into
	// it periodically and on drain (FinalSnapshot).
	Store *store.Store
	// Resume carries what Store recovered at open. Nil (or Fresh) boots the
	// engine from the given graph and seals the initial state with a
	// snapshot at epoch 0. Otherwise New resumes the maintainer from the
	// snapshot checkpoint and replays Resume.Tail through the same
	// Maintainer.Apply path that produced it, so the booted engine is
	// byte-identical to the pre-crash one. The graph passed to New must then
	// be Resume.Graph.
	Resume *store.Recovered
	// SnapshotEvery triggers an automatic snapshot each time that many
	// graph-changing batches have landed since the last one (0 disables the
	// automatic trigger; FinalSnapshot still snapshots on drain). Ignored
	// without Store.
	SnapshotEvery int
}

func (c Config) withDefaults() Config {
	if c.R <= 0 {
		c.R = 2
	}
	if c.N <= 0 {
		c.N = 20
	}
	if c.Utility == "" {
		c.Utility = "coverage"
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * maxInt(1, c.Workers)
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
	if c.ReadMode == "" {
		c.ReadMode = ReadModeMVCC
	}
	if c.FlightEvents == 0 {
		c.FlightEvents = 1024
	}
	if c.FlightEvents < 0 {
		c.FlightEvents = 0
	}
	if c.Shards < 0 {
		c.Shards = 0
	}
	if c.MaxViews <= 0 {
		c.MaxViews = 3
	} else if c.MaxViews == 1 {
		// Publication needs a replica besides the current view (the current
		// view cannot retire until its successor is published), so one view
		// could never publish: 2 is the floor.
		c.MaxViews = 2
	}
	return c
}

// Read path modes for Config.ReadMode.
const (
	ReadModeMVCC   = "mvcc"
	ReadModeLocked = "locked"
)

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Server is the engine plus its HTTP surface. Create one with New, mount
// Handler on an http.Server, and call StartDrain before Shutdown.
type Server struct {
	cfg Config

	// mu serializes writers in both read modes. In locked mode it is also
	// the many-reader gate over g, maint, and summary; in mvcc mode readers
	// never acquire it — they pin views instead.
	mu      sync.RWMutex
	g       *graph.Graph
	groups  *submod.Groups
	maint   *core.Maintainer
	summary *core.Summary

	// views is the MVCC publication state; nil in locked mode.
	views *viewSet

	// epoch counts graph-changing write batches. It is written only under
	// mu's write lock; reads under the read lock (or lock-free for cache
	// probes) see a consistent value.
	epoch atomic.Uint64

	cache    *resultCache
	adm      *admission
	clock    obs.Clock
	tr       *obs.Trace // nil unless the observer carries one
	reg      *obs.Registry
	http     *obs.EndpointStats
	draining atomic.Bool
	mux      *http.ServeMux

	// Request tracing (DESIGN.md §13). All nil when Config.DisableTracing:
	// the middleware degrades to the pre-tracing shell.
	tgen   *obs.TraceIDGen
	stages *obs.StageStats
	flight *obs.FlightRecorder // may also be nil with tracing on (FlightEvents < 0)
	log    *slog.Logger        // never nil; discards when Config.Log is nil

	// Automatic flight-dump state (5xx / slow requests), rate-limited so a
	// 5xx storm does not turn the dump writer into the bottleneck.
	dumpMu   sync.Mutex
	lastDump time.Time

	// Durability (DESIGN.md §15). store is nil when the engine is purely
	// in-memory. sinceSnap counts graph-changing batches since the last
	// snapshot trigger (guarded by mu's write lock); snapWG tracks
	// background snapshot writers so drain can wait them out.
	store     *store.Store
	sinceSnap int
	snapWG    sync.WaitGroup

	// testHook, when set, runs at the start of every admitted compute with
	// the endpoint name — tests use it to hold requests in flight.
	testHook func(endpoint string)
}

// New builds the engine: it computes the initial maintained summary with
// Inc-FGS (so write batches are handled incrementally from the first
// request) and wires the cache, admission control, and HTTP routes.
func New(g *graph.Graph, groups *submod.Groups, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.ReadMode != ReadModeMVCC && cfg.ReadMode != ReadModeLocked {
		return nil, fmt.Errorf("server: unknown read mode %q (have %q, %q)", cfg.ReadMode, ReadModeMVCC, ReadModeLocked)
	}
	util, err := buildUtility(g, cfg.Utility)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	reg := cfg.Obs.GetReg()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:    cfg,
		g:      g,
		groups: groups,
		cache:  newResultCache(cfg.CacheEntries),
		adm:    newAdmission(maxInt(1, cfg.Workers), cfg.QueueDepth),
		clock:  cfg.Obs.GetClock(),
		tr:     cfg.Obs.GetTrace(),
		reg:    reg,
		http:   obs.NewEndpointStats(),
		log:    cfg.Log,
		store:  cfg.Store,
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if !cfg.DisableTracing {
		s.tgen = obs.NewTraceIDGen(s.clock.Now().UnixNano())
		s.stages = obs.NewStageStats()
		s.flight = obs.NewFlightRecorder(cfg.FlightEvents)
		reg.Register(s.stages)
		if s.flight != nil {
			reg.Register(s.flight)
		}
	}
	reg.Register(s.http)
	if s.cache != nil {
		reg.Register(s.cache)
	}
	reg.Register(s.adm)
	// The maintainer is the one long-lived algorithm run, so it may report
	// into the shared observer; per-request runs must not (each would
	// register another E_v^r cache source and grow the registry without
	// bound over the server's lifetime).
	mcfg := s.coreConfig(cfg.R, cfg.K, cfg.N)
	mcfg.Obs = cfg.Obs
	if cfg.Resume != nil && !cfg.Resume.Fresh {
		// Recovery boot: resume the maintainer from the snapshot checkpoint,
		// then replay the WAL tail through the same Apply path that produced
		// it. Determinism makes the replay exact — each logged batch changed
		// the graph when it was first applied, so it must again; a batch that
		// suddenly applies nothing means the snapshot and log disagree.
		m, sum, err := core.ResumeMaintainer(g, groups, util, mcfg, cfg.Resume.State)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		for _, rec := range cfg.Resume.Tail {
			s2, applied, _ := m.Apply(rec.Delta)
			if applied == 0 {
				return nil, fmt.Errorf("server: recovery replay diverged at epoch %d: logged batch applied no change", rec.Epoch)
			}
			sum = s2
		}
		s.maint, s.summary = m, sum
		s.epoch.Store(cfg.Resume.Epoch)
		s.log.Info("recovery",
			"snapshot_epoch", cfg.Resume.SnapshotEpoch,
			"epoch", cfg.Resume.Epoch,
			"replayed", len(cfg.Resume.Tail),
			"replay_bytes", cfg.Resume.TailBytes,
			"truncated", cfg.Resume.Truncated,
			"covered", len(sum.Covered))
	} else {
		s.maint, s.summary = core.NewMaintainer(g, groups, util, mcfg)
		if s.store != nil {
			// Seal the initial state so a crash before the first snapshot
			// trigger still recovers: epoch 0 = this graph + this checkpoint.
			st, err := s.maint.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			if err := s.store.WriteSnapshot(0, g, st); err != nil {
				return nil, fmt.Errorf("server: initial snapshot: %w", err)
			}
		}
	}
	if s.store != nil {
		reg.Register(s.store)
	}
	if cfg.ReadMode == ReadModeMVCC {
		s.views = newViewSet(g, s.summary, cfg.MaxViews, s.clock, s.epoch.Load())
		reg.Register(s.views)
		if cfg.Shards > 1 {
			// Build the boot view's partition before serving traffic, so the
			// very first summarize already runs sharded. Boot is the one place
			// synchronous construction is free — it sits next to the replica
			// clones and the initial Inc-FGS run.
			v := s.views.pin()
			s.buildPartitionFor(v)
			s.views.unpin(v)
		}
	}
	reg.Register(s) // epoch gauge, authoritative in both read modes
	s.routes()
	return s, nil
}

// ObsMetrics exports the server-level gauges (obs.Source): the epoch and
// the live fairness state — per-group coverage of the currently published
// summary, so fairness drift under an update stream is visible on /metrics
// without touching the introspection endpoints.
func (s *Server) ObsMetrics() []obs.Metric {
	rc := s.acquireRead(nil)
	counts := s.groups.Counts(rc.summary.Covered)
	rc.release()
	out := []obs.Metric{
		{Name: "fgs_server_epoch", Help: "Current graph epoch", Kind: obs.KindGauge, Value: float64(s.epoch.Load())},
	}
	for i := 0; i < s.groups.Len(); i++ {
		grp := s.groups.At(i)
		labels := []obs.Label{{Key: "group", Val: grp.Name}}
		out = append(out,
			obs.Metric{Name: "fgs_fairness_covered", Help: "Group nodes covered by the published summary, by group", Kind: obs.KindGauge, Labels: labels, Value: float64(counts[i])},
			obs.Metric{Name: "fgs_fairness_lower_bound", Help: "Group coverage lower bound, by group", Kind: obs.KindGauge, Labels: labels, Value: float64(grp.Lower)},
			obs.Metric{Name: "fgs_fairness_upper_bound", Help: "Group coverage upper bound, by group", Kind: obs.KindGauge, Labels: labels, Value: float64(grp.Upper)},
		)
	}
	return out
}

// coreConfig assembles a core.Config for one run from request parameters
// plus the server-wide knobs.
func (s *Server) coreConfig(r, k, n int) core.Config {
	return core.Config{
		R:       r,
		K:       k,
		N:       n,
		Workers: s.cfg.Workers,
		Mining:  mining.Config{EmbedCap: s.cfg.EmbedCap},
	}
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Epoch returns the current graph epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// StartDrain flips the server into draining mode: /healthz answers 503 so
// load balancers stop routing here, and new compute requests are refused
// with 503 + Retry-After, while requests already admitted run to
// completion. Pair it with http.Server.Shutdown, which waits for in-flight
// handlers (see cmd/fgsd for the full sequence).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// --- compute paths -------------------------------------------------------
//
// Every compute method works against one consistent read context: a pinned
// epoch view (mvcc) or the live graph under the read lock (locked). Either
// way the (epoch, graph, summary) triple cannot change for the duration of
// the computation, so the response is cached under exactly the epoch it was
// computed at.

// readCtx is one consistent read of the engine: the graph and maintained
// summary frozen at epoch. release must be called exactly once when the
// computation is done with them.
type readCtx struct {
	epoch   uint64
	g       *graph.Graph
	summary *core.Summary
	view    *epochView // the pinned view in mvcc mode; nil in locked mode
	release func()
}

// acquireRead opens a read context on the current engine state. In mvcc
// mode this pins the current view — an O(1) refcount bump, no engine lock;
// in locked mode it takes the RWMutex read lock for the context's lifetime.
// The pin stage span measures how long acquisition took: in mvcc mode it is
// nanoseconds, in locked mode it surfaces writer contention.
func (s *Server) acquireRead(rt *obs.ReqTrace) readCtx {
	sp := rt.Start(obs.StagePin)
	if s.views != nil {
		v := s.views.pin()
		sp.End()
		return readCtx{
			epoch:   v.epoch,
			g:       v.g,
			summary: v.summary,
			view:    v,
			release: func() { s.views.unpin(v) },
		}
	}
	s.mu.RLock() // ok (pairdiscipline): the RUnlock is handed off as the readCtx's release func
	sp.End()
	return readCtx{
		epoch:   s.epoch.Load(),
		g:       s.g,
		summary: s.summary,
		release: s.mu.RUnlock,
	}
}

// computeSummarize runs APXFGS (or k-APXFGS when k > 0) at the pinned epoch.
func (s *Server) computeSummarize(rt *obs.ReqTrace, req *SummarizeRequest, k bool) (*SummarizeResponse, uint64, error) {
	rc := s.acquireRead(rt)
	defer rc.release()
	util, err := buildUtility(rc.g, req.Utility)
	if err != nil {
		return nil, 0, &requestError{err}
	}
	cfg := s.coreConfig(req.R, req.K, req.N)
	// Partition resolution is nil-tolerant end to end: a nil return (shards
	// off, locked mode, radius mismatch, build in flight) simply runs the
	// unpartitioned path, and core re-validates coverage before trusting it.
	cfg.Mining.Regions = s.regionsFor(rt, rc.view, req.R)
	var sum *core.Summary
	if k {
		sum, err = core.KAPXFGS(rc.g, s.groups, util, cfg)
	} else {
		sum, err = core.APXFGS(rc.g, s.groups, util, cfg)
	}
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf, rc.g); err != nil {
		return nil, 0, err
	}
	return &SummarizeResponse{Epoch: rc.epoch, Summary: buf.Bytes()}, rc.epoch, nil
}

// computeView answers a pattern query over the maintained summary as a
// materialized view.
func (s *Server) computeView(rt *obs.ReqTrace, req *ViewRequest) (*ViewResponse, uint64, error) {
	p, err := pattern.ParseString(req.Pattern)
	if err != nil {
		return nil, 0, &requestError{err}
	}
	rc := s.acquireRead(rt)
	defer rc.release()
	nodes := core.QueryView(rc.g, rc.summary, p, req.EmbedCap)
	ids := make([]int64, len(nodes))
	for i, v := range nodes {
		ids[i] = int64(v)
	}
	return &ViewResponse{Epoch: rc.epoch, Count: len(ids), Nodes: ids}, rc.epoch, nil
}

// computeWorkload evaluates the maintained summary's patterns as annotated
// benchmark queries.
func (s *Server) computeWorkload(rt *obs.ReqTrace, req *WorkloadRequest) (*WorkloadResponse, uint64, error) {
	rc := s.acquireRead(rt)
	defer rc.release()
	entries := core.Workload(rc.g, rc.summary, req.EmbedCap)
	out := make([]WorkloadQuery, 0, len(entries))
	for _, e := range entries {
		var b strings.Builder
		if err := pattern.Format(&b, e.P); err != nil {
			return nil, 0, err
		}
		out = append(out, WorkloadQuery{
			Pattern:        b.String(),
			Cardinality:    e.Cardinality,
			CoveredMatches: e.CoveredMatches,
			Selectivity:    e.Selectivity,
		})
	}
	return &WorkloadResponse{Epoch: rc.epoch, Queries: out}, rc.epoch, nil
}

// computeUpdate applies one write batch through the maintainer under the
// write lock and advances the epoch iff the graph changed. In mvcc mode a
// graph-changing batch additionally publishes the new epoch's view: replay
// of the same delta onto a pooled replica plus a pointer swap, after which
// newly arriving readers see the new epoch while readers already pinned
// keep their old one.
func (s *Server) computeUpdate(rt *obs.ReqTrace, req *UpdateRequest) (*UpdateResponse, error) {
	delta := core.Delta{}
	for _, e := range req.Insert {
		delta.Insert = append(delta.Insert, core.EdgeUpdate{From: graph.NodeID(e.From), To: graph.NodeID(e.To), Label: e.Label})
	}
	for _, e := range req.Delete {
		delta.Delete = append(delta.Delete, core.EdgeUpdate{From: graph.NodeID(e.From), To: graph.NodeID(e.To), Label: e.Label})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, applied, err := s.maint.Apply(delta)
	s.summary = sum
	if applied > 0 {
		epoch := s.epoch.Add(1)
		if s.views != nil {
			v := s.views.publish(delta, epoch, sum)
			// Kick the new epoch's partition build off the write path so the
			// first summarize at this epoch usually finds it ready. The pin
			// keeps the replica alive for the builder; pinIf refuses if a
			// publish burst already retired and recycled the view.
			if s.cfg.Shards > 1 && s.views.pinIf(v) {
				go func() {
					defer s.views.unpin(v)
					s.buildPartitionFor(v)
				}()
			}
		}
		if s.store != nil {
			// Log the batch exactly as requested — replay re-applies it
			// through the same Apply path, where per-edge failures repeat
			// deterministically. The response is not acknowledged until the
			// record is durable per the fsync policy; an append failure is
			// fatal for the write path (the WAL error is sticky), so report
			// 500 rather than acknowledging a batch that will not survive a
			// restart.
			if werr := s.store.Append(store.Record{Epoch: epoch, Delta: delta}); werr != nil {
				s.log.Error("wal append failed", "epoch", epoch, "err", werr)
				return nil, werr
			}
			s.maybeSnapshotLocked(epoch)
		}
		s.log.Info("publish",
			"epoch", epoch,
			"applied", applied,
			"insert", len(delta.Insert),
			"delete", len(delta.Delete),
			"covered", len(sum.Covered),
			"trace", rt.IDString())
	}
	resp := &UpdateResponse{
		Epoch:   s.epoch.Load(),
		Applied: applied,
		Summary: summaryStatsOf(sum),
	}
	if err != nil {
		resp.Error = err.Error()
		if applied == 0 {
			return resp, &requestError{err}
		}
	}
	return resp, nil
}

// maybeSnapshotLocked counts a graph-changing batch and, every
// SnapshotEvery of them, snapshots the engine at the just-published epoch.
// Caller holds the write lock, where the maintainer checkpoint is cheap and
// consistent with the epoch. In mvcc mode the expensive part — streaming
// the graph image — runs off the write path against the pinned epoch view
// (its replica is frozen at exactly this epoch); locked mode has no frozen
// replica to lean on and writes synchronously from the live graph, the
// documented cost of that baseline. A snapshot already in flight skips the
// trigger — the counter keeps accumulating, so the next batch retries.
func (s *Server) maybeSnapshotLocked(epoch uint64) {
	s.sinceSnap++
	if s.cfg.SnapshotEvery <= 0 || s.sinceSnap < s.cfg.SnapshotEvery {
		return
	}
	st, err := s.maint.Checkpoint()
	if err != nil {
		s.log.Error("snapshot checkpoint failed", "epoch", epoch, "err", err)
		return
	}
	if s.views != nil {
		v := s.views.pin() // the current view: just published at this epoch
		sn, err := s.store.BeginSnapshot(epoch)
		if err != nil {
			s.views.unpin(v)
			s.log.Info("snapshot skipped", "epoch", epoch, "reason", err)
			return
		}
		s.sinceSnap = 0
		s.snapWG.Add(1)
		go func() {
			defer s.snapWG.Done()
			defer s.views.unpin(v)
			sn.WriteGraph(v.g)
			sn.WriteState(st)
			if err := sn.Commit(); err != nil {
				s.log.Error("snapshot failed", "epoch", epoch, "err", err)
				return
			}
			s.log.Info("snapshot", "epoch", epoch)
		}()
		return
	}
	s.sinceSnap = 0
	if err := s.store.WriteSnapshot(epoch, s.g, st); err != nil {
		s.log.Error("snapshot failed", "epoch", epoch, "err", err)
		return
	}
	s.log.Info("snapshot", "epoch", epoch)
}

// FinalSnapshot writes a synchronous snapshot of the current state unless
// the live snapshot already is the current epoch. Call it during shutdown,
// after the HTTP server has drained (no in-flight writes), before closing
// the store: restart then recovers from the snapshot alone, with an empty
// WAL tail to replay.
func (s *Server) FinalSnapshot() error {
	if s.store == nil {
		return nil
	}
	s.snapWG.Wait() // background writers do not take mu; settle them first
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.epoch.Load()
	if epoch == s.store.SnapshotEpoch() {
		return nil
	}
	st, err := s.maint.Checkpoint()
	if err != nil {
		return fmt.Errorf("server: final snapshot: %w", err)
	}
	if err := s.store.WriteSnapshot(epoch, s.g, st); err != nil {
		return fmt.Errorf("server: final snapshot: %w", err)
	}
	s.log.Info("snapshot", "epoch", epoch, "final", true)
	return nil
}

// computeStats snapshots the engine. Everything in the response is
// deterministic for a fixed request sequence: epoch, sizes, and the cache
// and admission counters; wall-clock readings are exported on /metrics
// only.
func (s *Server) computeStats(rt *obs.ReqTrace) (*StatsResponse, uint64, error) {
	rc := s.acquireRead(rt)
	defer rc.release()
	resp := &StatsResponse{
		Epoch:     rc.epoch,
		Nodes:     rc.g.NumNodes(),
		Edges:     rc.g.NumEdges(),
		Groups:    s.groups.Len(),
		Summary:   summaryStatsOf(rc.summary),
		Cache:     s.cache.stats(),
		Admission: s.adm.stats(),
	}
	if s.views != nil {
		st := s.views.stats()
		resp.Mvcc = &st
	} else {
		resp.Mvcc = &MvccStats{Mode: ReadModeLocked}
	}
	return resp, rc.epoch, nil
}

func summaryStatsOf(sum *core.Summary) SummaryStats {
	return SummaryStats{
		Patterns:    sum.NumPatterns(),
		Covered:     len(sum.Covered),
		Corrections: sum.Corrections.Len(),
		CL:          sum.CL,
		Utility:     sum.Utility,
	}
}

// buildUtility constructs a utility from its CLI spec against g.
func buildUtility(g *graph.Graph, spec string) (submod.Utility, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "", "coverage":
		return submod.NewNeighborCoverage(g, submod.NeighborsIn, arg), nil
	case "rating":
		if arg == "" {
			arg = "rating"
		}
		return submod.NewRatingSum(g, arg), nil
	case "diversity":
		if arg == "" {
			return nil, fmt.Errorf("utility %q needs an attribute: diversity:<attr>", spec)
		}
		return submod.NewAttributeDiversity(g, arg), nil
	case "cardinality":
		return submod.NewCardinality(), nil
	default:
		return nil, fmt.Errorf("unknown utility %q (have coverage[:edgelabel], rating[:attr], diversity:attr, cardinality)", spec)
	}
}

package gen

import (
	"bytes"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestLKISizedHitsTarget(t *testing.T) {
	const target = 30_000
	g := LKISized(1, target)
	if n := g.NumNodes(); n != target {
		t.Fatalf("nodes = %d, want %d", n, target)
	}
	if g.NumEdges() < target {
		t.Fatalf("edges = %d; expected at least one per node", g.NumEdges())
	}
}

// TestLKISizedCohortsStayBounded is the scale-free-groups property: at any
// size, one city's user cohort stays near targetCohort, so group-inducing
// over cities costs the same at 30k nodes and at 10M.
func TestLKISizedCohortsStayBounded(t *testing.T) {
	g := LKISized(1, 60_000)
	kid, ok := g.AttrKeyID("city")
	if !ok {
		t.Fatal("no city attribute")
	}
	counts := make(map[int32]int)
	for _, v := range g.NodesWithLabel("user") {
		if vid, ok := g.AttrValue(v, kid); ok {
			counts[vid]++
		}
	}
	// Cities scale on the user count (total nodes minus the 1-in-26 orgs).
	nUsers := len(g.NodesWithLabel("user"))
	if len(counts) < nUsers/targetCohort {
		t.Fatalf("only %d cities for %d users; cardinality did not scale", len(counts), nUsers)
	}
	for vid, c := range counts {
		if c > 4*targetCohort {
			t.Fatalf("city %s has %d users — cohort bound blown", g.AttrValName(vid), c)
		}
	}
	// And the induced groups must actually build.
	if _, err := GroupsByAttr(g, "user", "city", []string{"c0", "c1"}, 1, 4); err != nil {
		t.Fatalf("city groups: %v", err)
	}
}

func TestDBPSizedHitsTarget(t *testing.T) {
	const target = 30_000
	g := DBPSized(1, target)
	if n := g.NumNodes(); n != target {
		t.Fatalf("nodes = %d, want %d", n, target)
	}
	kid, ok := g.AttrKeyID("franchise")
	if !ok {
		t.Fatal("no franchise attribute")
	}
	counts := make(map[int32]int)
	for _, v := range g.NodesWithLabel("movie") {
		if vid, ok := g.AttrValue(v, kid); ok {
			counts[vid]++
		}
	}
	for vid, c := range counts {
		if c > 4*targetCohort {
			t.Fatalf("franchise %s has %d movies — cohort bound blown", g.AttrValName(vid), c)
		}
	}
}

func TestSizedDeterministic(t *testing.T) {
	for name, build := range map[string]func() *graph.Graph{
		"lki": func() *graph.Graph { return LKISized(7, 5_000) },
		"dbp": func() *graph.Graph { return DBPSized(7, 5_000) },
	} {
		var a, b bytes.Buffer
		if err := graph.Write(&a, build()); err != nil {
			t.Fatal(err)
		}
		if err := graph.Write(&b, build()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: same seed, different graphs", name)
		}
	}
}

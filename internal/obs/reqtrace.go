package obs

// Request-scoped tracing (DESIGN.md §13): every request through a serving
// layer gets a W3C-compatible trace ID (propagated from an incoming
// `traceparent` header or generated), a fixed set of pipeline stage timings
// (admission-wait, cache-lookup, view-pin, partition, compute, encode), and an
// annotation record (endpoint, epoch, cache hit). The per-request state is a
// single *ReqTrace carried in the request context; when the request
// completes the trace feeds three sinks:
//
//   - the per-stage latency histograms (StageStats), with the trace ID
//     attached to the hit bucket as an exemplar so a slow outlier in the
//     Prometheus export can be chased back to one concrete request;
//   - the flight recorder (flightrec.go), as one fixed-size event;
//   - the response headers: X-Fgs-Trace (the trace ID) and Server-Timing
//     (the stage breakdown, readable by browsers and load drivers).
//
// Like the rest of the package, everything is nil-safe and reporting-only:
// a nil *ReqTrace yields inert spans, and nothing here feeds request
// handling decisions — the determinism tests prove response bytes are
// identical with tracing on and off.

import (
	"context"
	"encoding/hex"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Stage indexes one segment of the request pipeline. The set is fixed so
// stage timings live in flat arrays — no per-request maps, and flight
// recorder events stay allocation-free.
type Stage uint8

// Request pipeline stages, in pipeline order.
const (
	// StageCache is the result-cache probe (key hashing + lookup).
	StageCache Stage = iota
	// StageAdmission is the wait for a worker slot (queue time included).
	StageAdmission
	// StagePin is acquiring the read context: pinning the MVCC view or
	// taking the engine read lock.
	StagePin
	// StagePartition is resolving the focus-region partition for the pinned
	// view: an atomic load when the epoch's regions are already built, the
	// singleflight build when this request is the one constructing them.
	StagePartition
	// StageCompute is the algorithm run (select/mine/summarize or the
	// maintainer's write path).
	StageCompute
	// StageEncode is canonical response encoding.
	StageEncode
	// NumStages bounds the stage arrays.
	NumStages
)

var stageNames = [NumStages]string{"cache", "admission", "pin", "partition", "compute", "encode"}

// String returns the stage's label ("cache", "admission", ...).
func (st Stage) String() string {
	if st < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// TraceID is a 16-byte W3C trace-context trace ID. The zero value is
// invalid per the spec and doubles as "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is an 8-byte W3C parent/span ID.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceparent parses a W3C trace-context `traceparent` header:
// version "00", "-", 32 hex trace-id, "-", 16 hex parent-id, "-", 2 hex
// flags. It accepts future versions (higher version octets with trailing
// fields) per the spec's forward-compatibility rule, and rejects the
// all-zero trace and parent IDs.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, sampled bool, ok bool) {
	h = strings.TrimSpace(h)
	// version-format: 2 hex "-" 32 hex "-" 16 hex "-" 2 hex [-...]
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil || ver[0] == 0xff {
		return TraceID{}, SpanID{}, false, false
	}
	if ver[0] == 0 && len(h) != 55 {
		return TraceID{}, SpanID{}, false, false
	}
	if len(h) > 55 && h[55] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if n, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil || n != 16 {
		return TraceID{}, SpanID{}, false, false
	}
	if n, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil || n != 8 {
		return TraceID{}, SpanID{}, false, false
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil || tid.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, parent, flags[0]&1 == 1, true
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(tid TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + span.String() + "-" + flags
}

// TraceIDGen mints process-unique trace IDs from boot entropy plus an
// atomic counter. IDs are unique per process and across restarts (the seed
// mixes the boot instant) without consuming randomness on the request path;
// they make no cryptographic claims.
type TraceIDGen struct {
	seed uint64
	ctr  atomic.Uint64
}

// NewTraceIDGen returns a generator; seed with something boot-unique (the
// boot time in nanoseconds is the conventional choice).
func NewTraceIDGen(seed int64) *TraceIDGen {
	return &TraceIDGen{seed: splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15)}
}

// Next returns a fresh non-zero trace ID.
func (g *TraceIDGen) Next() TraceID {
	n := g.ctr.Add(1)
	hi := splitmix64(g.seed ^ n)
	lo := splitmix64(hi ^ n<<1 ^ 0xbf58476d1ce4e5b9)
	var id TraceID
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (56 - 8*i))
		id[8+i] = byte(lo >> (56 - 8*i))
	}
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ReqTrace is one request's trace: identity, stage timings, and the
// annotations the flight recorder event is built from. It is owned by the
// request's handler goroutine — methods are not safe for concurrent use —
// and every method is nil-safe, so disabled tracing costs a nil check.
type ReqTrace struct {
	id      TraceID
	parent  SpanID
	clock   Clock
	start   time.Time
	stages  [NumStages]time.Duration
	touched [NumStages]bool

	endpoint string
	epoch    uint64
	cacheHit bool
}

// NewReqTrace opens a request trace at clock.Now() under the given identity
// (parent may be zero when the request arrived without a traceparent).
func NewReqTrace(clock Clock, id TraceID, parent SpanID) *ReqTrace {
	if clock == nil {
		clock = System()
	}
	return &ReqTrace{id: id, parent: parent, clock: clock, start: clock.Now()}
}

// ID returns the trace ID (zero for a nil trace).
func (rt *ReqTrace) ID() TraceID {
	if rt == nil {
		return TraceID{}
	}
	return rt.id
}

// IDString returns the hex trace ID, or "" for a nil trace — the form log
// records want.
func (rt *ReqTrace) IDString() string {
	if rt == nil {
		return ""
	}
	return rt.id.String()
}

// SetEndpoint annotates the trace with its endpoint name.
func (rt *ReqTrace) SetEndpoint(name string) {
	if rt != nil {
		rt.endpoint = name
	}
}

// SetEpoch annotates the trace with the graph epoch the response was
// computed at.
func (rt *ReqTrace) SetEpoch(epoch uint64) {
	if rt != nil {
		rt.epoch = epoch
	}
}

// SetCacheHit marks the request as served from the result cache.
func (rt *ReqTrace) SetCacheHit(hit bool) {
	if rt != nil {
		rt.cacheHit = hit
	}
}

// ReqSpan times one stage of the request. Start/End must pair on every
// path — fgslint's pairdiscipline enforces it like any other resource.
type ReqSpan struct {
	rt    *ReqTrace
	stage Stage
	t0    time.Time
}

// Start opens a stage span. On a nil trace it returns an inert span without
// reading the clock.
func (rt *ReqTrace) Start(stage Stage) ReqSpan {
	if rt == nil {
		return ReqSpan{}
	}
	return ReqSpan{rt: rt, stage: stage, t0: rt.clock.Now()}
}

// End closes the span, accumulating into its stage (a stage entered twice —
// e.g. a cache probe retried — sums).
func (sp ReqSpan) End() {
	if sp.rt == nil {
		return
	}
	sp.rt.stages[sp.stage] += sp.rt.clock.Now().Sub(sp.t0)
	sp.rt.touched[sp.stage] = true
}

// StageDur returns the accumulated duration of one stage and whether the
// stage ran.
func (rt *ReqTrace) StageDur(stage Stage) (time.Duration, bool) {
	if rt == nil || !rt.touched[stage] {
		return 0, false
	}
	return rt.stages[stage], true
}

// Elapsed returns the time since the trace opened.
func (rt *ReqTrace) Elapsed() time.Duration {
	if rt == nil {
		return 0
	}
	return rt.clock.Now().Sub(rt.start)
}

// ServerTiming renders the touched stages as a Server-Timing header value:
// `cache;dur=0.012, compute;dur=123.456` (dur in milliseconds, per the
// spec). Returns "" when no stage ran.
func (rt *ReqTrace) ServerTiming() string {
	if rt == nil {
		return ""
	}
	var b strings.Builder
	for st := Stage(0); st < NumStages; st++ {
		if !rt.touched[st] {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(stageNames[st])
		b.WriteString(";dur=")
		ms := float64(rt.stages[st]) / float64(time.Millisecond)
		b.WriteString(strconv.FormatFloat(ms, 'f', 3, 64))
	}
	return b.String()
}

// ParseServerTiming parses a Server-Timing header produced by ServerTiming
// (the metric;dur=ms subset of the spec) into per-stage durations. Unknown
// metrics are kept under their own names; entries without dur are skipped.
func ParseServerTiming(h string) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) == 0 || parts[0] == "" {
			continue
		}
		name := parts[0]
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if rest, ok := strings.CutPrefix(p, "dur="); ok {
				if ms, err := strconv.ParseFloat(rest, 64); err == nil {
					out[name] = time.Duration(ms * float64(time.Millisecond))
				}
			}
		}
	}
	return out
}

// Event assembles the trace into one flight-recorder record. status is the
// HTTP status; total the full request duration as measured by the caller's
// instrumentation shell.
func (rt *ReqTrace) Event(status int, total time.Duration) FlightEvent {
	if rt == nil {
		return FlightEvent{}
	}
	ev := FlightEvent{
		Trace:    rt.id,
		Unix:     rt.start.UnixNano(),
		Endpoint: rt.endpoint,
		Status:   int32(status),
		Epoch:    rt.epoch,
		CacheHit: rt.cacheHit,
		Total:    int64(total),
	}
	for st := Stage(0); st < NumStages; st++ {
		if rt.touched[st] {
			ev.Stages[st] = int64(rt.stages[st])
		}
	}
	return ev
}

// --- context plumbing ----------------------------------------------------

type reqTraceKey struct{}

// WithReqTrace attaches the trace to a request context.
func WithReqTrace(ctx context.Context, rt *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, rt)
}

// ReqTraceFrom returns the context's trace, or nil — and every ReqTrace
// method is nil-safe, so callers never branch.
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return rt
}

// --- per-stage aggregation ------------------------------------------------

// StageStats aggregates request stage latencies into per-stage histograms
// (microsecond observations) and keeps, per bucket, the most recent trace
// ID as an exemplar — the Prometheus export's bridge from "the p99 moved"
// to one inspectable request. Safe for concurrent use.
type StageStats struct {
	hists     [NumStages]Histogram
	exemplars [NumStages][HistNumBuckets + 1]atomic.Pointer[Exemplar]
}

// NewStageStats returns an empty per-stage collector.
func NewStageStats() *StageStats { return &StageStats{} }

// ObserveTrace records every touched stage of a completed request. Nil-safe
// on both sides.
func (ss *StageStats) ObserveTrace(rt *ReqTrace) {
	if ss == nil || rt == nil {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		if !rt.touched[st] {
			continue
		}
		us := rt.stages[st].Microseconds()
		ss.hists[st].Observe(us)
		ex := &Exemplar{Labels: []Label{{Key: "trace_id", Val: rt.id.String()}}, Value: float64(us)}
		ss.exemplars[st][HistBucketOf(us)].Store(ex)
	}
}

// ObsMetrics exports one fgs_req_stage_us histogram per stage, each bucket
// carrying its latest trace-ID exemplar.
func (ss *StageStats) ObsMetrics() []Metric {
	if ss == nil {
		return nil
	}
	out := make([]Metric, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		hist := ss.hists[st].Snapshot()
		if hist.Count == 0 {
			continue
		}
		ex := make([]*Exemplar, HistNumBuckets+1)
		for b := range ex {
			ex[b] = ss.exemplars[st][b].Load()
		}
		out = append(out, Metric{
			Name:      "fgs_req_stage_us",
			Help:      "Request stage latency in microseconds, by pipeline stage; buckets carry trace-ID exemplars",
			Kind:      KindHistogram,
			Labels:    []Label{{Key: "stage", Val: stageNames[st]}},
			Hist:      &hist,
			Exemplars: ex,
		})
	}
	return out
}

package mining

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// talentFixture mirrors the paper's Fig. 2 flavor: candidates recommended by
// other users, with exp/industry attributes and a gender split.
//
//	males:   v0 (exp=5, Internet), v5 (exp=4, Internet)
//	females: v8 (exp=4, Internet), v10 (exp=4, Internet)
//	each candidate is recommended by two users; v0's recommenders are each
//	recommended by one more user (depth 2).
func talentFixture(t *testing.T) (*graph.Graph, *submod.Groups, []graph.NodeID) {
	t.Helper()
	g := graph.New()
	v0 := g.AddNode("user", map[string]string{"exp": "5", "industry": "Internet", "gender": "m"})
	v1 := g.AddNode("user", nil)
	v2 := g.AddNode("user", nil)
	v3 := g.AddNode("user", nil)
	v4 := g.AddNode("user", nil)
	v5 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "m"})
	v6 := g.AddNode("user", nil)
	v7 := g.AddNode("user", nil)
	v8 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "f"})
	v9 := g.AddNode("user", nil)
	v10 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "f"})
	v11 := g.AddNode("user", nil)
	v12 := g.AddNode("user", nil)
	edges := [][2]graph.NodeID{
		{v1, v0}, {v2, v0}, {v3, v1}, {v4, v2},
		{v6, v5}, {v7, v5},
		{v9, v8}, {v7, v8},
		{v11, v10}, {v12, v10},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], "recommend"); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := submod.NewGroups(
		submod.Group{Name: "male", Members: []graph.NodeID{v0, v5}, Lower: 1, Upper: 2},
		submod.Group{Name: "female", Members: []graph.NodeID{v8, v10}, Lower: 1, Upper: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	anchors := []graph.NodeID{v0, v5, v8, v10}
	return g, groups, anchors
}

func defaultCfg() Config {
	return Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 150, MinCover: 1}
}

func TestSumGenEmitsFallbacksCoveringEveryAnchor(t *testing.T) {
	g, _, anchors := talentFixture(t)
	cands := SumGen(g, anchors, anchors, defaultCfg(), nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, a := range anchors {
		covered := false
		for _, c := range cands {
			if c.Fallback {
				for _, v := range c.Covered {
					if v == a {
						covered = true
					}
				}
			}
		}
		if !covered {
			t.Errorf("anchor %d not covered by any fallback", a)
		}
	}
}

func TestSumGenGrowsStarPattern(t *testing.T) {
	g, _, anchors := talentFixture(t)
	cands := SumGen(g, anchors, anchors, defaultCfg(), nil)
	// Some grown candidate must be the "recommended by two users" star
	// covering all four anchors: two pattern edges into the focus.
	found := false
	for _, c := range cands {
		if c.Fallback || len(c.P.Edges) != 2 {
			continue
		}
		into := 0
		for _, e := range c.P.Edges {
			if e.To == c.P.Focus {
				into++
			}
		}
		if into == 2 && len(c.Covered) == 4 {
			found = true
			break
		}
	}
	if !found {
		t.Error("two-recommender star covering all anchors not mined")
	}
}

func TestSumGenRespectsRadiusAndSize(t *testing.T) {
	g, _, anchors := talentFixture(t)
	cfg := defaultCfg()
	cands := SumGen(g, anchors, anchors, cfg, nil)
	for _, c := range cands {
		if r := c.P.Radius(); r > cfg.Radius {
			t.Errorf("pattern %s radius %d exceeds %d", c.P, r, cfg.Radius)
		}
		if len(c.P.Nodes) > cfg.MaxNodes {
			t.Errorf("pattern %s exceeds MaxNodes", c.P)
		}
		if err := c.P.Validate(); err != nil {
			t.Errorf("invalid mined pattern %s: %v", c.P, err)
		}
	}
}

func TestSumGenCPConsistency(t *testing.T) {
	g, _, anchors := talentFixture(t)
	cfg := defaultCfg()
	er := NewErCache(g, cfg.Radius)
	cands := SumGen(g, anchors, anchors, cfg, er)
	for _, c := range cands {
		union := er.UnionOf(c.Covered)
		want := union.AndNotCount(c.CoveredEdges)
		if c.CP != want {
			t.Errorf("pattern %s: CP=%d, recomputed %d", c.P, c.CP, want)
		}
	}
}

func TestSumGenCoverageSortedAndWithinGroups(t *testing.T) {
	g, groups, anchors := talentFixture(t)
	cands := SumGen(g, anchors, anchors, defaultCfg(), nil)
	for _, c := range cands {
		for i := 1; i < len(c.Covered); i++ {
			if c.Covered[i-1] >= c.Covered[i] {
				t.Fatalf("Covered not sorted: %v", c.Covered)
			}
		}
		for _, v := range c.Covered {
			if _, ok := groups.IndexOf(v); !ok {
				t.Fatalf("pattern %s covers non-group node %d", c.P, v)
			}
		}
	}
}

func TestSumGenCoverageRestrictedToUniverse(t *testing.T) {
	// Coverage is anchored to the evaluation universe: label-only patterns
	// match every user in the graph, but Covered must only list universe
	// nodes (the fixed selection of the bilevel formulation).
	g := graph.New()
	var members []graph.NodeID
	for i := 0; i < 5; i++ {
		members = append(members, g.AddNode("user", nil))
	}
	if err := g.AddEdge(members[1], members[0], "rec"); err != nil {
		t.Fatal(err)
	}
	universe := members[:2]
	cands := SumGen(g, members[:1], universe, defaultCfg(), nil)
	uset := graph.NodeSetOf(universe)
	for _, c := range cands {
		for _, v := range c.Covered {
			if !uset.Has(v) {
				t.Fatalf("pattern %s covers node %d outside the universe", c.P, v)
			}
		}
	}
}

func TestSumGenMinCoverPrunes(t *testing.T) {
	g, _, anchors := talentFixture(t)
	cfg := defaultCfg()
	cfg.MinCover = 4 // only patterns covering all four anchors survive
	cands := SumGen(g, anchors, anchors, cfg, nil)
	for _, c := range cands {
		if c.Fallback {
			continue
		}
		if len(c.Covered) < 4 {
			t.Errorf("pattern %s covers %d anchors, below MinCover", c.P, len(c.Covered))
		}
	}
}

func TestSumGenDeterministic(t *testing.T) {
	g, _, anchors := talentFixture(t)
	a := SumGen(g, anchors, anchors, defaultCfg(), nil)
	b := SumGen(g, anchors, anchors, defaultCfg(), nil)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if pattern.CanonicalCode(a[i].P) != pattern.CanonicalCode(b[i].P) {
			t.Fatalf("candidate %d differs between runs: %s vs %s", i, a[i].P, b[i].P)
		}
		if a[i].CP != b[i].CP {
			t.Fatalf("candidate %d CP differs", i)
		}
	}
}

func TestSumGenMaxPatternsBudget(t *testing.T) {
	g, _, anchors := talentFixture(t)
	cfg := defaultCfg()
	cfg.MaxPatterns = 3
	cands := SumGen(g, anchors, anchors, cfg, nil)
	grown := 0
	fallbacks := 0
	for _, c := range cands {
		if c.Fallback {
			fallbacks++
		} else {
			grown++
		}
	}
	if grown > 3 {
		t.Fatalf("grown=%d exceeds MaxPatterns=3", grown)
	}
	if fallbacks == 0 {
		t.Fatal("fallbacks must survive the budget")
	}
}

func TestErCache(t *testing.T) {
	g, _, anchors := talentFixture(t)
	c := NewErCache(g, 2)
	if c.Radius() != 2 {
		t.Fatal("Radius wrong")
	}
	a := c.Get(anchors[0])
	b := c.Get(anchors[0])
	if a.Count() != b.Count() {
		t.Fatal("memoized result differs")
	}
	want := g.RHopEdges(anchors[0], 2)
	if a.Count() != want.Len() {
		t.Fatalf("cache len %d, direct %d", a.Count(), want.Len())
	}
	union := c.UnionOf(anchors)
	direct := g.RHopEdgesOf(anchors, 2)
	if union.Count() != direct.Len() {
		t.Fatalf("UnionOf len %d, direct %d", union.Count(), direct.Len())
	}
	c.Invalidate(anchors[:1])
	if c.Get(anchors[0]).Count() != want.Len() {
		t.Fatal("post-invalidate recompute wrong")
	}
}

func TestCoversAnyOf(t *testing.T) {
	c := &Candidate{Covered: []graph.NodeID{1, 3, 5}}
	if !c.CoversAnyOf(graph.NodeSetOf([]graph.NodeID{5, 9})) {
		t.Fatal("should cover 5")
	}
	if c.CoversAnyOf(graph.NodeSetOf([]graph.NodeID{2, 4})) {
		t.Fatal("should not cover")
	}
}

func TestFrequentRankingAndPruning(t *testing.T) {
	g, _, _ := talentFixture(t)
	universe := g.NodesWithLabel("user")
	cfg := defaultCfg()
	freq := Frequent(g, universe, cfg, 5, 2)
	if len(freq) == 0 {
		t.Fatal("no frequent patterns")
	}
	if len(freq) > 5 {
		t.Fatalf("topK not enforced: %d", len(freq))
	}
	for i, f := range freq {
		if f.Support < 2 {
			t.Errorf("pattern %s support %d below minSup", f.P, f.Support)
		}
		if f.Support != len(f.Covered) {
			t.Errorf("support %d != |covered| %d", f.Support, len(f.Covered))
		}
		if i > 0 && freq[i-1].Support < f.Support {
			t.Error("not sorted by support desc")
		}
	}
	// The label-only singleton covers all 13 users: must be ranked first.
	if freq[0].Support != 13 {
		t.Errorf("top support = %d, want 13", freq[0].Support)
	}
}

func TestFrequentMinSupPrunesSubtrees(t *testing.T) {
	g, _, _ := talentFixture(t)
	universe := g.NodesWithLabel("user")
	all := Frequent(g, universe, defaultCfg(), 1000, 1)
	strict := Frequent(g, universe, defaultCfg(), 1000, 5)
	if len(strict) >= len(all) {
		t.Fatalf("minSup=5 should prune: %d vs %d", len(strict), len(all))
	}
	for _, f := range strict {
		if f.Support < 5 {
			t.Errorf("support %d below 5", f.Support)
		}
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
)

// benchCoverInstance builds a cover instance shaped like real SumGen output:
// many candidates with Zipf-ish overlapping coverage over a universe sized so
// the greedy runs for a few hundred rounds.
func benchCoverInstance(nCands, universe int) (cands []*mining.Candidate, vp []graph.NodeID) {
	rng := rand.New(rand.NewSource(3))
	cands = make([]*mining.Candidate, 0, nCands)
	for i := 0; i < nCands; i++ {
		size := 1 + rng.Intn(12)
		set := graph.NewNodeSet(size)
		for len(set) < size {
			// Bias toward low IDs so candidates overlap heavily, as broad
			// patterns over real anchors do.
			v := rng.Intn(universe)
			if rng.Intn(3) > 0 {
				v = rng.Intn(1 + universe/4)
			}
			set.Add(graph.NodeID(v))
		}
		covered := make([]graph.NodeID, 0, size)
		for v := range set {
			covered = append(covered, v)
		}
		sortNodes(covered)
		cands = append(cands, &mining.Candidate{
			Covered:      covered,
			CoveredEdges: graph.NewEdgeBits(0),
			CP:           rng.Intn(30),
		})
	}
	vp = make([]graph.NodeID, universe)
	for i := range vp {
		vp[i] = graph.NodeID(i)
	}
	return cands, vp
}

// BenchmarkGreedyCover compares the incremental lazy-heap implementation
// against the per-round rescan it replaced, across candidate-set sizes.
func BenchmarkGreedyCover(b *testing.B) {
	impls := []struct {
		name string
		fn   func([]*mining.Candidate, []graph.NodeID, int, int) ([]PatternInfo, []graph.NodeID)
	}{
		{"incremental", func(cands []*mining.Candidate, vp []graph.NodeID, n, maxPatterns int) ([]PatternInfo, []graph.NodeID) {
			return greedyCover(nil, cands, vp, n, maxPatterns, nil)
		}},
		{"scan", func(cands []*mining.Candidate, vp []graph.NodeID, n, maxPatterns int) ([]PatternInfo, []graph.NodeID) {
			return greedyCoverScan(nil, cands, vp, n, maxPatterns)
		}},
	}
	for _, size := range []struct{ cands, universe int }{
		{200, 300}, {1000, 800}, {4000, 2000},
	} {
		cands, vp := benchCoverInstance(size.cands, size.universe)
		for _, impl := range impls {
			b.Run(fmt.Sprintf("impl=%s/cands=%d", impl.name, size.cands), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					impl.fn(cands, vp, size.universe, 0)
				}
			})
		}
	}
}

package gen

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestDBPShape(t *testing.T) {
	g := DBP(1, 1)
	if g.NumNodes() < 1000 || g.NumEdges() < 1500 {
		t.Fatalf("DBP too small: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	movies := g.NodesWithLabel("movie")
	if len(movies) != 600 {
		t.Fatalf("movies = %d", len(movies))
	}
	if len(g.NodesWithLabel("director")) == 0 || len(g.NodesWithLabel("actor")) == 0 {
		t.Fatal("missing labels")
	}
	// Every movie has a genre, year, country, rating.
	for _, m := range movies[:20] {
		for _, key := range []string{"genre", "year", "country", "rating"} {
			if _, ok := g.AttrString(m, key); !ok {
				t.Fatalf("movie %d missing %q", m, key)
			}
		}
	}
}

func TestLKIGenderSkew(t *testing.T) {
	g := LKI(2, 1)
	users := g.NodesWithLabel("user")
	if len(users) != 2000 {
		t.Fatalf("users = %d", len(users))
	}
	female := 0
	for _, u := range users {
		if v, _ := g.AttrString(u, "gender"); v == "female" {
			female++
		}
	}
	ratio := float64(female) / float64(len(users))
	if ratio < 0.18 || ratio > 0.28 {
		t.Fatalf("female ratio = %.2f, want ≈ 0.23", ratio)
	}
}

func TestLKIHeavyTail(t *testing.T) {
	g := LKI(3, 1)
	max, sum := 0, 0
	users := g.NodesWithLabel("user")
	for _, u := range users {
		d := g.Degree(u)
		sum += d
		if d > max {
			max = d
		}
	}
	mean := float64(sum) / float64(len(users))
	if float64(max) < 5*mean {
		t.Fatalf("no heavy tail: max degree %d vs mean %.1f", max, mean)
	}
}

func TestCiteShape(t *testing.T) {
	g := Cite(4, 1)
	papers := g.NodesWithLabel("paper")
	if len(papers) != 1500 {
		t.Fatalf("papers = %d", len(papers))
	}
	if _, ok := g.EdgeLabelID("cite"); !ok {
		t.Fatal("no cite edges")
	}
	if _, ok := g.EdgeLabelID("authored"); !ok {
		t.Fatal("no authored edges")
	}
}

func TestPandemicAgeSplit(t *testing.T) {
	g := Pandemic(5, 10000)
	citizens := g.NodesWithLabel("citizen")
	if len(citizens) != 10000 {
		t.Fatalf("citizens = %d", len(citizens))
	}
	young := 0
	for _, c := range citizens {
		if v, _ := g.AttrString(c, "agegroup"); v == "young" {
			young++
		}
	}
	ratio := float64(young) / float64(len(citizens))
	if ratio < 0.54 || ratio > 0.62 {
		t.Fatalf("young ratio = %.2f, want ≈ 0.58", ratio)
	}
	// Connectivity: the ring construction guarantees a connected backbone.
	reach := g.RHopNodesOf(citizens[:1], 10000)
	if len(reach) != len(citizens) {
		t.Fatalf("contact network disconnected: reached %d of %d", len(reach), len(citizens))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := LKI(9, 1)
	b := LKI(9, 1)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("LKI not deterministic")
	}
	for v := graph.NodeID(0); int(v) < 100; v++ {
		av, _ := a.AttrString(v, "gender")
		bv, _ := b.AttrString(v, "gender")
		if av != bv {
			t.Fatalf("node %d gender differs", v)
		}
	}
	c := DBP(9, 1)
	d := DBP(9, 1)
	if c.NumEdges() != d.NumEdges() {
		t.Fatal("DBP not deterministic")
	}
}

func TestScaleMultiplies(t *testing.T) {
	small := LKI(1, 1)
	big := LKI(1, 2)
	if big.NumNodes() < 2*small.NumNodes()-100 {
		t.Fatalf("scale 2 not bigger: %d vs %d", big.NumNodes(), small.NumNodes())
	}
	if tiny := DBP(1, 0); tiny.NumNodes() == 0 {
		t.Fatal("scale 0 should clamp to 1")
	}
}

func TestGroupsByAttr(t *testing.T) {
	g := LKI(6, 1)
	groups, err := GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 40, 60)
	if err != nil {
		t.Fatalf("GroupsByAttr: %v", err)
	}
	if groups.Len() != 2 {
		t.Fatalf("groups = %d", groups.Len())
	}
	if groups.At(0).Name != "gender=male" || groups.At(1).Name != "gender=female" {
		t.Fatalf("names: %q %q", groups.At(0).Name, groups.At(1).Name)
	}
	if groups.At(0).Lower != 40 || groups.At(1).Upper != 60 {
		t.Fatal("bounds not applied")
	}
	// Errors: unknown key, oversized bound.
	if _, err := GroupsByAttr(g, "user", "nokey", []string{"x"}, 0, 1); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := GroupsByAttr(g, "user", "gender", []string{"male"}, 0, 1<<20); err == nil {
		t.Fatal("oversized upper bound accepted")
	}
}

func TestGroupsByAttrPairs(t *testing.T) {
	g := LKI(7, 1)
	groups, err := GroupsByAttrPairs(g, "user", "gender", []string{"male", "female"}, "degree", []string{"BS", "MS", "PhD"}, 5, 20)
	if err != nil {
		t.Fatalf("GroupsByAttrPairs: %v", err)
	}
	if groups.Len() != 6 {
		t.Fatalf("groups = %d, want 6 (2 genders x 3 degrees)", groups.Len())
	}
	// Disjointness is enforced by NewGroups; spot check one membership.
	grp := groups.At(0)
	for _, v := range grp.Members[:5] {
		gender, _ := g.AttrString(v, "gender")
		deg, _ := g.AttrString(v, "degree")
		if "gender="+gender+",degree="+deg != grp.Name {
			t.Fatalf("member %d does not match group %q", v, grp.Name)
		}
	}
}

package core

import (
	"strings"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/submod"
)

func TestAPXFGSOnTalentFixture(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	s, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatalf("APXFGS: %v", err)
	}
	assertFeasibleLossless(t, g, groups, util, cfg, s)
	if len(s.Covered) != 4 {
		t.Fatalf("covered %d nodes, want 4 (n=4, both groups coverable)", len(s.Covered))
	}
	counts := groups.Counts(s.Covered)
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("gender counts %v, want [2 2]", counts)
	}
	if s.Utility <= 0 {
		t.Fatal("utility should be positive")
	}
}

func TestAPXFGSPrefersZeroLossPatterns(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	s, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The first chosen pattern must have the best ratio; with the fixture's
	// structure a C_P = 0 pattern for the depth-1 candidates exists (the two
	// -recommender star covers v5/v8/v10's full 2-hop neighborhoods... v5's
	// 2-hop includes v7->v8 edge; so zero-loss is not guaranteed. Assert the
	// weaker, always-true invariant: chosen patterns are sorted by greedy
	// gain, i.e. the first has the minimum C_P among patterns with maximal
	// new-anchor coverage in its round. Here: just assert C_l equals the sum
	// of per-pattern losses and corrections are bounded by C_l.
	sum := 0
	for _, pi := range s.Patterns {
		sum += pi.CP
	}
	if s.CL != sum {
		t.Fatalf("CL=%d, sum of C_P=%d", s.CL, sum)
	}
	if s.Corrections.Len() > s.CL {
		t.Fatalf("|C|=%d exceeds C_l=%d", s.Corrections.Len(), s.CL)
	}
}

func TestAPXFGSRespectsN(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.N = 2 // only one node per group fits
	s, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Covered) > 2 {
		t.Fatalf("covered %d > n=2", len(s.Covered))
	}
	counts := groups.Counts(s.Covered)
	if counts[0] < 1 || counts[1] < 1 {
		t.Fatalf("lower bounds unmet: %v", counts)
	}
	assertFeasibleLossless(t, g, groups, util, cfg, s)
}

func TestAPXFGSInfeasibleSelection(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.N = 1 // sum of lower bounds is 2 > 1
	if _, err := APXFGS(g, groups, util, cfg); err == nil {
		t.Fatal("expected infeasibility error")
	} else if !strings.Contains(err.Error(), "selection phase") {
		t.Fatalf("error should identify the phase: %v", err)
	}
}

func TestAPXFGSDeterministic(t *testing.T) {
	g, groups, _ := talentFixture(t)
	cfg := defaultCfg()
	u1 := submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
	u2 := submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
	s1, err1 := APXFGS(g, groups, u1, cfg)
	s2, err2 := APXFGS(g, groups, u2, cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(s1.Patterns) != len(s2.Patterns) || s1.CL != s2.CL || s1.Corrections.Len() != s2.Corrections.Len() {
		t.Fatalf("nondeterministic: %s vs %s", s1, s2)
	}
}

func TestAPXFGSRandomGraphsFeasibleAndLossless(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g, groups, util := randomFixture(t, seed, 60, 150, 8)
		cfg := defaultCfg()
		cfg.N = 6
		s, err := APXFGS(g, groups, util, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertFeasibleLossless(t, g, groups, util, cfg, s)
	}
}

func TestAPXFGSStatsPopulated(t *testing.T) {
	g, groups, util := talentFixture(t)
	s, err := APXFGS(g, groups, util, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Candidates == 0 {
		t.Error("candidate count not recorded")
	}
	if s.Stats.Total() <= 0 {
		t.Error("phase timings not recorded")
	}
}

func TestBetterGain(t *testing.T) {
	cases := []struct {
		nA, cpA, nB, cpB int
		want             bool
	}{
		{2, 0, 5, 0, false}, // both zero-loss: more anchors wins
		{5, 0, 2, 0, true},
		{1, 0, 9, 1, true},  // zero-loss dominates
		{9, 1, 1, 0, false}, // zero-loss dominates
		{3, 2, 2, 2, true},  // 1.5 > 1.0
		{2, 4, 1, 3, true},  // 0.5 > 0.33
		{1, 3, 2, 6, false}, // equal ratio: more anchors wins -> B has 2
		{2, 6, 1, 3, true},  // equal ratio: A has more anchors
	}
	for i, c := range cases {
		if got := betterGain(c.nA, c.cpA, c.nB, c.cpB); got != c.want {
			t.Errorf("case %d: betterGain(%d,%d,%d,%d) = %v, want %v", i, c.nA, c.cpA, c.nB, c.cpB, got, c.want)
		}
	}
}

func TestCoverStateExtendable(t *testing.T) {
	_, groups, _ := talentFixture(t)
	cs := newCoverState(3)
	male0 := groups.At(0).Members[0]
	male1 := groups.At(0).Members[1]
	fem0 := groups.At(1).Members[0]
	fem1 := groups.At(1).Members[1]

	c1 := &mining.Candidate{Covered: []graph.NodeID{male0, male1}}
	if !cs.extendable(c1) {
		t.Fatal("two new nodes within n should extend")
	}
	cs.add(c1)
	// No new nodes: not extendable.
	if cs.extendable(c1) {
		t.Fatal("candidate with no new nodes should not extend")
	}
	// n-cap: adding both females would cover 4 > n=3.
	c2 := &mining.Candidate{Covered: []graph.NodeID{fem0, fem1}}
	if cs.extendable(c2) {
		t.Fatal("n=3 cap should block covering 4 nodes")
	}
	c3 := &mining.Candidate{Covered: []graph.NodeID{fem0}}
	if !cs.extendable(c3) {
		t.Fatal("single new node should extend")
	}
	cs.add(c3)
	if cs.covered.Len() != 3 {
		t.Fatalf("covered = %d, want 3", cs.covered.Len())
	}
}

func TestSummaryAccessors(t *testing.T) {
	g, groups, util := talentFixture(t)
	s, err := APXFGS(g, groups, util, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPatterns() != len(s.Patterns) {
		t.Error("NumPatterns mismatch")
	}
	wantSize := s.Corrections.Len() + len(s.Covered)
	for _, pi := range s.Patterns {
		wantSize += pi.P.Size()
	}
	if s.Size() != wantSize {
		t.Errorf("Size = %d, want %d", s.Size(), wantSize)
	}
	str := s.String()
	if !strings.Contains(str, "2-summary") || !strings.Contains(str, "P1") {
		t.Errorf("String() = %q", str)
	}
	// DescribedEdges = E^r_{P_V}.
	want := g.RHopEdgesOf(s.Covered, s.R)
	got := s.DescribedEdges()
	if got.Len() != want.Len() {
		t.Errorf("DescribedEdges = %d, want %d", got.Len(), want.Len())
	}
}

func TestEdgeCoverageRatio(t *testing.T) {
	g, groups, util := talentFixture(t)
	s, err := APXFGS(g, groups, util, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	ratio := s.EdgeCoverageRatio(g)
	if ratio < 0 || ratio > 1 {
		t.Fatalf("ratio %v out of [0,1]", ratio)
	}
	want := 1 - float64(s.Corrections.Len())/float64(g.RHopEdgesOf(s.Covered, s.R).Len())
	if ratio != want {
		t.Fatalf("ratio %v, want %v", ratio, want)
	}
	empty := &Summary{R: 2}
	if empty.EdgeCoverageRatio(g) != 1 {
		t.Fatal("empty summary should report full coverage")
	}
}

package graph

// Focus-region partitioning (DESIGN.md §14). A Partition carves the focus
// universe (in FGS, the group members FairSelect draws vp from) into k
// shards by seeded multi-source BFS growth, then materializes one compacted
// slice graph per shard covering the union of r-hop balls around the
// shard's owned focus nodes. Mining and scoring for a focus node run
// entirely on its owner's slice: every complete embedding anchored at v
// lies inside ball(v, r) (pattern nodes sit within pattern-distance ≤ r of
// the focus), the slice is the induced subgraph of a superset of that ball,
// and induced subgraphs preserve distances ≤ r from owned nodes — so
// shard-local N_v^r, E_v^r, and embedding enumeration are exactly the
// global ones, translated through the local↔global ID maps.
//
// Shards overlap at boundaries by construction (two owned nodes ≤ 2r apart
// share ball nodes); overlap costs memory, not correctness, because each
// focus node is scored only on the one shard that owns it.
//
// Everything here is deterministic: center choice is a splitmix64 stream
// over the sorted focus list, growth is round-robin first-claim BFS in
// adjacency order, and no map is ever iterated into an ordered structure.

import "slices"

// PartitionConfig parameterizes BuildPartition.
type PartitionConfig struct {
	// Shards is the requested shard count; the effective count is capped by
	// the number of focus nodes and floored at 1.
	Shards int
	// R is the ball radius — must equal the radius mining will run with.
	R int
	// Seed drives center selection. The same (graph, focus, config) triple
	// always yields the identical partition.
	Seed uint64
}

// Partition is an immutable set of focus-region shards over a parent graph.
type Partition struct {
	parent *Graph
	cfg    PartitionConfig
	shards []*Shard
	owner  map[NodeID]ownerRef // focus node -> owning shard + local ID
}

type ownerRef struct {
	shard int32
	local NodeID
}

// Shard is one compacted slice: the subgraph induced by the union of
// r-hop balls around the shard's owned focus nodes, with dense local node
// and edge IDs and maps back to the parent's.
type Shard struct {
	g          *Graph
	owned      []NodeID // owned focus nodes, global IDs, ascending
	ownedLocal []NodeID // same nodes as local IDs, ascending
	globalNode []NodeID // local node ID -> global node ID (ascending)
	globalEdge []EdgeID // local edge ID -> global edge ID
}

// splitmix64 is the SplitMix64 output function — a tiny, well-distributed
// deterministic stream for center selection (no math/rand, no global state).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BuildPartition partitions the focus set over g. The focus slice is not
// modified; invalid and duplicate IDs are dropped. An empty focus set
// yields a partition with zero shards (Owner reports false for everything).
func BuildPartition(g *Graph, focus []NodeID, cfg PartitionConfig) *Partition {
	f := sortedUniqueValid(g, focus)
	p := &Partition{parent: g, cfg: cfg, owner: make(map[NodeID]ownerRef, len(f))}
	if len(f) == 0 {
		return p
	}
	k := cfg.Shards
	if k < 1 {
		k = 1
	}
	if k > len(f) {
		k = len(f)
	}

	ownedPer := p.assign(f, k)
	p.shards = make([]*Shard, k)
	for s := 0; s < k; s++ {
		p.shards[s] = buildShard(g, ownedPer[s], cfg.R)
		for li, v := range p.shards[s].owned {
			p.owner[v] = ownerRef{shard: int32(s), local: p.shards[s].ownedLocal[li]}
		}
	}
	return p
}

// assign distributes the sorted focus list f over k shards: k centers are
// drawn from a seeded partial shuffle of f, then shards grow undirected BFS
// frontiers round-robin, claiming unvisited focus nodes first-come up to a
// balance capacity. Focus nodes no frontier reached (or reached by a full
// shard) are swept, in ascending order, onto whichever shard is currently
// smallest. Returns per-shard owned lists, each sorted ascending.
func (p *Partition) assign(f []NodeID, k int) [][]NodeID {
	g := p.parent
	// Centers: first k of a Fisher-Yates shuffle driven by the splitmix64
	// stream. Deterministic in (seed, f).
	idxs := make([]int32, len(f))
	for i := range idxs {
		idxs[i] = int32(i)
	}
	x := p.cfg.Seed
	for i := 0; i < k; i++ {
		x = splitmix64(x)
		j := i + int(x%uint64(len(f)-i))
		idxs[i], idxs[j] = idxs[j], idxs[i]
	}

	focusSet := make(map[NodeID]bool, len(f))
	for _, v := range f {
		focusSet[v] = true
	}
	capacity := (len(f)+k-1)/k + 1
	capacity += capacity / 8

	visited := make(map[NodeID]struct{}, len(f)*2)
	frontiers := make([][]NodeID, k)
	owned := make([][]NodeID, k)
	for s := 0; s < k; s++ {
		c := f[idxs[s]]
		visited[c] = struct{}{}
		frontiers[s] = []NodeID{c}
		owned[s] = append(owned[s], c)
	}

	// Growth depth 2r suffices: a focus node farther than 2r (undirected)
	// from every center shares no ball edges with any center's shard
	// anyway, so sweeping it to the smallest shard costs no locality.
	maxDepth := 2 * p.cfg.R
	if maxDepth < 1 {
		maxDepth = 1
	}
	for depth := 0; depth < maxDepth; depth++ {
		progress := false
		for s := 0; s < k; s++ {
			if len(frontiers[s]) == 0 {
				continue
			}
			var next []NodeID
			for _, v := range frontiers[s] {
				for _, e := range g.out[v] {
					if _, seen := visited[e.To]; !seen {
						visited[e.To] = struct{}{}
						if focusSet[e.To] && len(owned[s]) < capacity {
							owned[s] = append(owned[s], e.To)
						}
						next = append(next, e.To)
					}
				}
				for _, e := range g.in[v] {
					if _, seen := visited[e.To]; !seen {
						visited[e.To] = struct{}{}
						if focusSet[e.To] && len(owned[s]) < capacity {
							owned[s] = append(owned[s], e.To)
						}
						next = append(next, e.To)
					}
				}
			}
			frontiers[s] = next
			progress = progress || len(next) > 0
		}
		if !progress {
			break
		}
	}

	// Sweep leftovers ascending onto the smallest shard (ties: lowest index).
	claimed := make(map[NodeID]bool, len(f))
	for s := 0; s < k; s++ {
		for _, v := range owned[s] {
			claimed[v] = true
		}
	}
	for _, v := range f {
		if claimed[v] {
			continue
		}
		best := 0
		for s := 1; s < k; s++ {
			if len(owned[s]) < len(owned[best]) {
				best = s
			}
		}
		owned[best] = append(owned[best], v)
	}
	for s := 0; s < k; s++ {
		sortNodeIDs(owned[s])
	}
	return owned
}

// buildShard materializes the compacted slice for one owned set: nodes are
// the union of r-hop balls (ascending global order → ascending local IDs),
// edges are every parent edge with both endpoints in the slice, stored in
// contiguous arenas that preserve the parent's per-node adjacency order —
// the property that keeps EmbedCap-capped embedding enumeration
// byte-identical to the global path. Local EdgeIDs are assigned in the
// out-adjacency sweep, so they are dense and deterministic.
func buildShard(g *Graph, owned []NodeID, r int) *Shard {
	members := g.RHopNodesOf(owned, r)
	sortNodeIDs(members)
	localOf := make(map[NodeID]NodeID, len(members))
	for li, gv := range members {
		localOf[gv] = NodeID(li)
	}

	lg := &Graph{
		nodeLabels: g.nodeLabels,
		edgeLabels: g.edgeLabels,
		attrKeys:   g.attrKeys,
		attrVals:   g.attrVals,
		labelOf:    make([]LabelID, len(members)),
		attrsOf:    make([][]Attr, len(members)),
		out:        make([][]Edge, len(members)),
		in:         make([][]Edge, len(members)),
		byLabel:    make(map[LabelID][]NodeID),
	}
	for li, gv := range members {
		lid := g.labelOf[gv]
		lg.labelOf[li] = lid
		lg.attrsOf[li] = g.attrsOf[gv] // shared: attribute tuples are immutable
		lg.byLabel[lid] = append(lg.byLabel[lid], NodeID(li))
	}

	total := 0
	for _, gv := range members {
		for _, e := range g.out[gv] {
			if _, ok := localOf[e.To]; ok {
				total++
			}
		}
	}
	outArena := make([]Edge, 0, total)
	inArena := make([]Edge, 0, total)
	lg.edgeDefs = make([]EdgeRef, 0, total)
	lg.edgeIndex = make(map[EdgeRef]EdgeID, total)
	globalEdge := make([]EdgeID, 0, total)

	for li, gv := range members {
		start := len(outArena)
		for _, e := range g.out[gv] {
			lt, ok := localOf[e.To]
			if !ok {
				continue
			}
			id := EdgeID(len(lg.edgeDefs))
			ref := EdgeRef{From: NodeID(li), To: lt, Label: e.Label}
			lg.edgeDefs = append(lg.edgeDefs, ref)
			lg.edgeIndex[ref] = id
			globalEdge = append(globalEdge, e.ID)
			outArena = append(outArena, Edge{To: lt, Label: e.Label, ID: id})
		}
		lg.out[li] = outArena[start:len(outArena):len(outArena)]
	}
	lg.numEdges = len(lg.edgeDefs)
	for li, gv := range members {
		start := len(inArena)
		for _, e := range g.in[gv] {
			lf, ok := localOf[e.To]
			if !ok {
				continue
			}
			id := lg.edgeIndex[EdgeRef{From: lf, To: NodeID(li), Label: e.Label}]
			inArena = append(inArena, Edge{To: lf, Label: e.Label, ID: id})
		}
		lg.in[li] = inArena[start:len(inArena):len(inArena)]
	}

	sh := &Shard{
		g:          lg,
		owned:      owned,
		ownedLocal: make([]NodeID, len(owned)),
		globalNode: members,
		globalEdge: globalEdge,
	}
	for i, gv := range owned {
		sh.ownedLocal[i] = localOf[gv]
	}
	return sh
}

// sortedUniqueValid returns a fresh ascending slice of the distinct focus
// IDs that exist in g.
func sortedUniqueValid(g *Graph, focus []NodeID) []NodeID {
	f := make([]NodeID, 0, len(focus))
	for _, v := range focus {
		if g.HasNode(v) {
			f = append(f, v)
		}
	}
	sortNodeIDs(f)
	out := f[:0]
	for i, v := range f {
		if i == 0 || v != f[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func sortNodeIDs(s []NodeID) { slices.Sort(s) }

// Parent returns the graph the partition was built over.
func (p *Partition) Parent() *Graph { return p.parent }

// Config returns the parameters the partition was built with.
func (p *Partition) Config() PartitionConfig { return p.cfg }

// NumShards reports the effective shard count (≤ the requested count).
func (p *Partition) NumShards() int { return len(p.shards) }

// Shard returns shard i. Shards are immutable after BuildPartition returns.
func (p *Partition) Shard(i int) *Shard { return p.shards[i] }

// Owner resolves a focus node to (shard index, local ID). ok is false for
// nodes outside the partitioned focus set.
func (p *Partition) Owner(v NodeID) (shard int, local NodeID, ok bool) {
	ref, ok := p.owner[v]
	return int(ref.shard), ref.local, ok
}

// NumFocus reports how many focus nodes the partition owns in total.
func (p *Partition) NumFocus() int { return len(p.owner) }

// Graph returns the shard's compacted slice. It shares the parent's
// interners (so interned IDs and matcher universe sizes agree) but owns its
// topology; it is immutable after BuildPartition returns.
func (s *Shard) Graph() *Graph { return s.g }

// Owned returns the shard's owned focus nodes as global IDs, ascending.
// The slice is owned by the shard.
func (s *Shard) Owned() []NodeID { return s.owned }

// OwnedLocal returns the owned focus nodes as local IDs, ascending,
// parallel to Owned.
func (s *Shard) OwnedLocal() []NodeID { return s.ownedLocal }

// GlobalNode translates a local node ID to the parent's.
func (s *Shard) GlobalNode(local NodeID) NodeID { return s.globalNode[int(local)] }

// GlobalEdge translates a local edge ID to the parent's.
func (s *Shard) GlobalEdge(local EdgeID) EdgeID { return s.globalEdge[int(local)] }

// NumNodes reports the slice's node count.
func (s *Shard) NumNodes() int { return len(s.globalNode) }

// NumEdges reports the slice's edge count.
func (s *Shard) NumEdges() int { return len(s.globalEdge) }

package experiments

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/submod"
)

// Ablations probe the design choices DESIGN.md calls out, beyond the
// paper's own figures.

// AblationGainRule compares APXFGS's ratio gain |P ∩ V_p| / C_P against a
// coverage-only greedy (max |P ∩ V_p|, ignoring correction cost) on the LKI
// setting, reporting the accumulated loss C_l of each. The ratio rule's C_l
// should never be worse.
func (s *Suite) AblationGainRule() ([]Row, error) {
	lki := s.Dataset("LKI")
	groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 20, 40)
	if err != nil {
		return nil, err
	}
	n := 50
	vp, err := submod.FairSelect(groups, submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev"), n)
	if err != nil {
		return nil, err
	}
	er := mining.NewErCache(lki, 2)
	mcfg := miningCfg(s.Workers)
	mcfg.Radius = 2
	cands := mining.SumGen(lki, vp, vp, mcfg, er)

	clOf := func(useRatio bool) int {
		remaining := graph.NodeSetOf(vp)
		used := make([]bool, len(cands))
		cl := 0
		for remaining.Len() > 0 {
			best, bestNew, bestCP := -1, 0, 0
			for i, c := range cands {
				if used[i] {
					continue
				}
				newA := 0
				for _, v := range c.Covered {
					if remaining.Has(v) {
						newA++
					}
				}
				if newA == 0 {
					continue
				}
				better := false
				if best < 0 {
					better = true
				} else if useRatio {
					better = newA*bestCP > bestNew*c.CP || (newA*bestCP == bestNew*c.CP && newA > bestNew) ||
						(c.CP == 0 && bestCP != 0)
				} else {
					better = newA > bestNew
				}
				if better {
					best, bestNew, bestCP = i, newA, c.CP
				}
			}
			if best < 0 {
				break
			}
			used[best] = true
			cl += cands[best].CP
			for _, v := range cands[best].Covered {
				remaining.Remove(v)
			}
		}
		return cl
	}

	return []Row{
		{Exp: "ablation-gain", Dataset: "LKI", Algo: "ratio-gain", Metric: "C_l", Value: float64(clOf(true))},
		{Exp: "ablation-gain", Dataset: "LKI", Algo: "coverage-only", Metric: "C_l", Value: float64(clOf(false))},
	}, nil
}

// AblationSeedPatterns measures what the full-literal fallback seeds buy:
// they are the most selective candidates in the pool, so the greedy can
// cover stragglers individually instead of reaching for broad patterns with
// large C_P. The ablation compares the greedy cover's accumulated loss C_l
// with and without them (coverage itself is guaranteed either way by the
// label-only seeds, which the rows also confirm via the uncoverable count).
func (s *Suite) AblationSeedPatterns() ([]Row, error) {
	lki := s.Dataset("LKI")
	groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 20, 40)
	if err != nil {
		return nil, err
	}
	n := 50
	vp, err := submod.FairSelect(groups, submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev"), n)
	if err != nil {
		return nil, err
	}
	er := mining.NewErCache(lki, 2)
	mcfg := miningCfg(s.Workers)
	mcfg.Radius = 2
	cands := mining.SumGen(lki, vp, vp, mcfg, er)

	run := func(includeFallbacks bool) (cl, uncoverable int) {
		remaining := graph.NodeSetOf(vp)
		used := make([]bool, len(cands))
		for remaining.Len() > 0 {
			best, bestNew, bestCP := -1, 0, 0
			for i, c := range cands {
				if used[i] || (c.Fallback && !includeFallbacks) {
					continue
				}
				newA := 0
				for _, v := range c.Covered {
					if remaining.Has(v) {
						newA++
					}
				}
				if newA == 0 {
					continue
				}
				better := best < 0 ||
					(c.CP == 0 && bestCP != 0) ||
					(c.CP != 0 && bestCP != 0 && newA*bestCP > bestNew*c.CP) ||
					(c.CP == 0 && bestCP == 0 && newA > bestNew)
				if better {
					best, bestNew, bestCP = i, newA, c.CP
				}
			}
			if best < 0 {
				break
			}
			used[best] = true
			cl += cands[best].CP
			for _, v := range cands[best].Covered {
				remaining.Remove(v)
			}
		}
		return cl, remaining.Len()
	}
	withCL, withUnc := run(true)
	withoutCL, withoutUnc := run(false)
	return []Row{
		{Exp: "ablation-seeds", Dataset: "LKI", Algo: "with-fallbacks", Metric: "C_l", Value: float64(withCL)},
		{Exp: "ablation-seeds", Dataset: "LKI", Algo: "without-fallbacks", Metric: "C_l", Value: float64(withoutCL)},
		{Exp: "ablation-seeds", Dataset: "LKI", Algo: "with-fallbacks", Metric: "uncoverable", Value: float64(withUnc)},
		{Exp: "ablation-seeds", Dataset: "LKI", Algo: "without-fallbacks", Metric: "uncoverable", Value: float64(withoutUnc)},
	}, nil
}

// AblationLazyGreedy times FairSelect's lazy greedy against the plain
// quadratic greedy and checks they reach the same utility.
func (s *Suite) AblationLazyGreedy() ([]Row, error) {
	lki := s.Dataset("LKI")
	groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 40, 60)
	if err != nil {
		return nil, err
	}
	n := 100

	clock := s.clock()
	start := clock.Now()
	lazySel, err := submod.FairSelect(groups, submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev"), n)
	if err != nil {
		return nil, err
	}
	lazyDur := clock.Now().Sub(start)

	start = clock.Now()
	plainSel, err := submod.FairSelectPlain(groups, submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev"), n)
	if err != nil {
		return nil, err
	}
	plainDur := clock.Now().Sub(start)

	u := submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev")
	lazyVal := submod.Eval(u, lazySel)
	plainVal := submod.Eval(u, plainSel)
	if lazyVal < plainVal-1e-9 {
		return nil, fmt.Errorf("ablation-lazy: lazy utility %.1f below plain %.1f", lazyVal, plainVal)
	}
	return []Row{
		{Exp: "ablation-lazy", Dataset: "LKI", Algo: "lazy-greedy", Metric: "time_ms", Value: float64(lazyDur.Milliseconds())},
		{Exp: "ablation-lazy", Dataset: "LKI", Algo: "plain-greedy", Metric: "time_ms", Value: float64(plainDur.Milliseconds())},
		{Exp: "ablation-lazy", Dataset: "LKI", Algo: "lazy-greedy", Metric: "utility", Value: lazyVal},
		{Exp: "ablation-lazy", Dataset: "LKI", Algo: "plain-greedy", Metric: "utility", Value: plainVal},
	}, nil
}

package graph

import "fmt"

// RemoveEdge deletes the directed edge from -> to with the given label
// string. It is the substrate for summary maintenance under edge deletions —
// an extension beyond the paper's insertion-only Section VII.
func (g *Graph) RemoveEdge(from, to NodeID, label string) error {
	lid, ok := g.edgeLabels.Lookup(label)
	if !ok {
		return fmt.Errorf("graph: edge (%d,%d,%q) does not exist", from, to, label)
	}
	if !g.HasNode(from) || !g.HasNode(to) {
		return fmt.Errorf("graph: edge (%d,%d) references missing node", from, to)
	}
	if !removeAdj(&g.out[from], to, LabelID(lid)) {
		return fmt.Errorf("graph: edge (%d,%d,%q) does not exist", from, to, label)
	}
	if !removeAdj(&g.in[to], from, LabelID(lid)) {
		// The two adjacency lists are maintained together; disagreement is a
		// corrupted store, not a user error. Exercised by
		// TestRemoveEdgeAdjacencyInvariant.
		//lint:allow nopanic vetted invariant check — corruption must not be survivable
		panic("graph: adjacency lists out of sync")
	}
	g.numEdges--
	return nil
}

// removeAdj removes the first entry matching (to, label); reports success.
func removeAdj(edges *[]Edge, to NodeID, label LabelID) bool {
	for i, e := range *edges {
		if e.To == to && e.Label == label {
			*edges = append((*edges)[:i], (*edges)[i+1:]...)
			return true
		}
	}
	return false
}

package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
)

// Snapshots: a compact, checksummed image of the engine at one epoch —
// the graph in the FGSB binary format plus the maintainer checkpoint — so
// recovery replays only the WAL tail past it:
//
//	snapshot = magic "FGSS\x01" body crc32c(body)·4 LE
//	body     = uvarint(epoch) fgsb-graph maintainer-checkpoint
//
// Files are named snap-%016x.fgss by epoch and land via the classic
// tmp → fsync → rename → fsync(dir) dance, so a crash mid-write leaves at
// worst a stale *.tmp that the next Open sweeps up. The manifest (store.go)
// decides which snapshot is live; everything older is garbage.

// snapMagic heads every snapshot file.
var snapMagic = []byte{'F', 'G', 'S', 'S', 0x01}

// snapshotName renders the file name of the snapshot at epoch e.
func snapshotName(e uint64) string { return fmt.Sprintf("snap-%016x.fgss", e) }

// parseSnapshotName extracts the epoch from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".fgss") {
		return 0, false
	}
	e, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".fgss"), 16, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// crcWriter tees writes into a running CRC32C, so the snapshot checksum
// accumulates while the body streams out — no second pass over the bytes.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// Snapshot is an in-flight snapshot write. Acquire one with
// Store.BeginSnapshot, stream the body with WriteGraph then WriteState, and
// finish with exactly one of Commit or Abort (enforced by fgslint's
// pairdiscipline). Until Commit returns, the previous snapshot remains the
// live one; Abort (or a crash) leaves it untouched.
type Snapshot struct {
	st    *Store
	epoch uint64
	f     *os.File
	path  string // the .tmp path
	bw    *bufio.Writer
	cw    *crcWriter
	start time.Time
	done  bool
	err   error // sticky: first body-write failure, reported by Commit
}

func newSnapshot(st *Store, epoch uint64, f *os.File, path string) *Snapshot {
	bw := bufio.NewWriterSize(f, 1<<20)
	return &Snapshot{st: st, epoch: epoch, f: f, path: path, bw: bw, cw: &crcWriter{w: bw}, start: st.clock.Now()}
}

// WriteGraph streams the graph section of the body.
func (sn *Snapshot) WriteGraph(g *graph.Graph) {
	if sn.err != nil {
		return
	}
	sn.err = graph.WriteBinary(sn.cw, g)
}

// WriteState streams the maintainer-checkpoint section of the body.
func (sn *Snapshot) WriteState(ms *core.MaintainerState) {
	if sn.err != nil {
		return
	}
	sn.err = ms.WriteBinary(sn.cw)
}

// Commit seals the snapshot — checksum trailer, fsync, atomic rename,
// directory fsync — then publishes it in the manifest and garbage-collects
// superseded snapshots and fully-covered WAL segments. On error the tmp
// file is removed and the previous snapshot remains live.
func (sn *Snapshot) Commit() error {
	if sn.done {
		return errors.New("store: snapshot already finished")
	}
	sn.done = true
	defer sn.st.snapInFlight.Store(false)
	err := sn.finalize()
	if err != nil {
		os.Remove(sn.path) //lint:allow errdrop (best-effort cleanup of the tmp file)
		return err
	}
	if err := sn.st.publishSnapshot(sn.epoch); err != nil {
		return err
	}
	sn.st.snapshotUs.Observe(sn.st.clock.Now().Sub(sn.start).Microseconds())
	return nil
}

func (sn *Snapshot) finalize() error {
	defer sn.f.Close() //lint:allow errdrop (double close after the explicit one below is harmless)
	if sn.err != nil {
		return fmt.Errorf("store: snapshot body: %w", sn.err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sn.cw.crc)
	if _, err := sn.bw.Write(tail[:]); err != nil {
		return fmt.Errorf("store: snapshot trailer: %w", err)
	}
	if err := sn.bw.Flush(); err != nil {
		return fmt.Errorf("store: snapshot flush: %w", err)
	}
	if err := sn.f.Sync(); err != nil {
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := sn.f.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	final := filepath.Join(sn.st.dir, snapshotName(sn.epoch))
	if err := os.Rename(sn.path, final); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	return syncDir(sn.st.dir)
}

// Abort discards the in-flight snapshot. Safe to call after Commit (no-op),
// so `defer sn.Abort()` pairs cleanly with a conditional Commit.
func (sn *Snapshot) Abort() {
	if sn.done {
		return
	}
	sn.done = true
	sn.f.Close()       //lint:allow errdrop (the file is being discarded)
	os.Remove(sn.path) //lint:allow errdrop (best-effort cleanup of the tmp file)
	sn.st.snapInFlight.Store(false)
}

// readSnapshot loads and verifies a snapshot file: whole-file read, magic
// and checksum checked before any parsing touches the bytes.
func readSnapshot(path string) (epoch uint64, g *graph.Graph, ms *core.MaintainerState, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(data) < len(snapMagic)+4 || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return 0, nil, nil, fmt.Errorf("store: %s: not a snapshot file", filepath.Base(path))
	}
	body := data[len(snapMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return 0, nil, nil, fmt.Errorf("store: %s: checksum mismatch (got %08x want %08x)", filepath.Base(path), got, want)
	}
	// One buffered reader for the whole body: ReadBinary and
	// ReadMaintainerState both consume it in place, so the graph parse ends
	// exactly where the checkpoint parse begins.
	br := bufio.NewReader(bytes.NewReader(body))
	epoch, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("store: %s: epoch: %w", filepath.Base(path), err)
	}
	if g, err = graph.ReadBinary(br); err != nil {
		return 0, nil, nil, fmt.Errorf("store: %s: graph: %w", filepath.Base(path), err)
	}
	if ms, err = core.ReadMaintainerState(br); err != nil {
		return 0, nil, nil, fmt.Errorf("store: %s: checkpoint: %w", filepath.Base(path), err)
	}
	return epoch, g, ms, nil
}

// listSnapshots returns the snapshot file names in dir in epoch order.
func listSnapshots(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, ent := range ents {
		if _, ok := parseSnapshotName(ent.Name()); ok && !ent.IsDir() {
			out = append(out, ent.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //lint:allow errdrop (read-only directory handle)
	return d.Sync()
}

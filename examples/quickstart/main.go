// Quickstart: build a small talent network by hand, compute a fair
// 2-summary with one male and one female candidate per the coverage
// constraints, and verify that the summary losslessly describes the
// selected candidates' 2-hop neighborhoods.
package main

import (
	"fmt"
	"log"

	fgs "github.com/cwru-db/fgs"
)

func main() {
	g := fgs.NewGraph()

	// Four candidates with profile attributes; recommenders around them.
	v0 := g.AddNode("user", map[string]string{"exp": "5", "industry": "Internet", "gender": "m"})
	v5 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "m"})
	v8 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "f"})
	v10 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "f"})
	recommenders := make([]fgs.NodeID, 8)
	for i := range recommenders {
		recommenders[i] = g.AddNode("user", nil)
	}
	// Two recommenders per candidate.
	mustEdge(g, recommenders[0], v0)
	mustEdge(g, recommenders[1], v0)
	mustEdge(g, recommenders[2], v5)
	mustEdge(g, recommenders[3], v5)
	mustEdge(g, recommenders[4], v8)
	mustEdge(g, recommenders[5], v8)
	mustEdge(g, recommenders[6], v10)
	mustEdge(g, recommenders[7], v10)
	// Depth-2 structure behind v0's recommenders.
	d1 := g.AddNode("user", nil)
	d2 := g.AddNode("user", nil)
	mustEdge(g, d1, recommenders[0])
	mustEdge(g, d2, recommenders[1])

	// Gender groups with equal-opportunity bounds.
	groups, err := fgs.NewGroups(
		fgs.Group{Name: "male", Members: []fgs.NodeID{v0, v5}, Lower: 1, Upper: 2},
		fgs.Group{Name: "female", Members: []fgs.NodeID{v8, v10}, Lower: 1, Upper: 2},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Utility: how many distinct recommenders the selected candidates reach.
	util := fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "recommend")

	summary, err := fgs.Summarize(g, groups, util, fgs.Config{R: 2, N: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)

	report := fgs.Verify(g, groups, fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "recommend"),
		fgs.Config{R: 2, N: 4}, summary, summary.CL, 0)
	fmt.Println("verification:", report)

	missing, spurious := summary.Reconstruct(g)
	fmt.Printf("lossless reconstruction: missing=%d spurious=%d\n", missing.Len(), spurious.Len())
}

func mustEdge(g *fgs.Graph, from, to fgs.NodeID) {
	if err := g.AddEdge(from, to, "recommend"); err != nil {
		log.Fatal(err)
	}
}

package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// Maintainer checkpoint/resume for fgstore snapshots (DESIGN.md §15). A
// snapshot is the FGSB graph plus a MaintainerState; recovery rebuilds a
// Maintainer whose every observable output — and every future Apply
// decision — is identical to the checkpointed one's. The graph alone is not
// enough: the streaming selector's swap rule compares against weights
// recorded at acceptance time, PostSelect draws from arrival-ordered
// buckets, and NeighborCoverage's refcounts depend on the graph as it was
// when each member was added. All of that history rides in the checkpoint.
//
// Caches (E_v^r, compiled matchers) and observability counters are rebuilt
// empty: they affect timing, never results.

// PatternState is one selected pattern in checkpoint form. The pattern
// itself travels as its canonical text (pattern.Format / ParseString round-
// trip); CoveredEdges as EdgeRef triples sorted by (From, To, Label). Label
// IDs are stable across a snapshot round-trip because FGSB preserves
// interner tables verbatim and labels are never deleted.
type PatternState struct {
	Pattern      string
	Covered      []graph.NodeID
	CoveredEdges []graph.EdgeRef
	CP           int
}

// MaintainerState is a Maintainer checkpoint.
type MaintainerState struct {
	Selector *submod.StreamerState
	Patterns []PatternState
	// Candidates and Windows restore the lifetime counters feeding
	// Stats/metrics, so exported totals survive a restart.
	Candidates int
	Windows    int
}

// Checkpoint captures the maintainer's full decision state. The caller must
// hold whatever lock serializes Apply; the maintainer is not touched beyond
// reads.
func (m *Maintainer) Checkpoint() (*MaintainerState, error) {
	sel, err := m.sel.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	st := &MaintainerState{
		Selector:   sel,
		Patterns:   make([]PatternState, len(m.patterns)),
		Candidates: m.candidates,
		Windows:    m.windows,
	}
	for i, pi := range m.patterns {
		var b strings.Builder
		if err := pattern.Format(&b, pi.P); err != nil {
			return nil, fmt.Errorf("core: checkpoint pattern %d: %w", i, err)
		}
		st.Patterns[i] = PatternState{
			Pattern:      b.String(),
			Covered:      append([]graph.NodeID(nil), pi.Covered...),
			CoveredEdges: sortedEdgeRefs(pi.CoveredEdges),
			CP:           pi.CP,
		}
	}
	return st, nil
}

// sortedEdgeRefs materializes an EdgeSet as a slice sorted by (From, To,
// Label), the canonical order every serialization of edge sets uses.
func sortedEdgeRefs(es graph.EdgeSet) []graph.EdgeRef {
	out := make([]graph.EdgeRef, 0, len(es))
	for e := range es {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return out
}

// ResumeMaintainer rebuilds a maintainer from a checkpoint against the
// recovered graph. g, groups, util, and cfg must be constructed exactly as
// they were for the checkpointed maintainer (same graph bytes, same specs);
// the returned summary is then byte-identical to the one the checkpointed
// maintainer would materialize.
func ResumeMaintainer(g *graph.Graph, groups *submod.Groups, util submod.Utility, cfg Config, st *MaintainerState) (*Maintainer, *Summary, error) {
	cfg = cfg.withDefaults()
	sel, err := submod.ResumeStreamer(groups, util, cfg.N, st.Selector)
	if err != nil {
		return nil, nil, fmt.Errorf("core: resume: %w", err)
	}
	run := startRun(cfg.Obs, "incfgs")
	m := &Maintainer{
		g:          g,
		groups:     groups,
		cfg:        cfg,
		er:         mining.NewErCache(g, cfg.R),
		sel:        sel,
		util:       util,
		matcher:    pattern.NewMatcher(g, cfg.Mining.EmbedCap),
		run:        run,
		clock:      cfg.Obs.GetClock(),
		candidates: st.Candidates,
		windows:    st.Windows,
	}
	run.register(m.er)
	run.register(m.sel)
	m.patterns = make([]PatternInfo, len(st.Patterns))
	for i, ps := range st.Patterns {
		p, err := pattern.ParseString(ps.Pattern)
		if err != nil {
			return nil, nil, fmt.Errorf("core: resume pattern %d: %w", i, err)
		}
		edges := graph.NewEdgeSet(len(ps.CoveredEdges))
		for _, e := range ps.CoveredEdges {
			edges.Add(e)
		}
		m.patterns[i] = PatternInfo{
			P:            p,
			Covered:      append([]graph.NodeID(nil), ps.Covered...),
			CoveredEdges: edges,
			CP:           ps.CP,
		}
	}
	return m, m.Summary(), nil
}

// --- binary codec --------------------------------------------------------
//
// The checkpoint section of a snapshot file. Framing follows the FGSB
// conventions: uvarints for counts and IDs, length-prefixed strings,
// float64s as fixed 8-byte little-endian bits (varint-encoding float bit
// patterns would bloat them). The section is self-delimiting so the
// snapshot codec can append a trailing checksum.

// WriteBinary serializes the checkpoint.
func (st *MaintainerState) WriteBinary(w io.Writer) error {
	var scratch [binary.MaxVarintLen64]byte
	var werr error
	putUv := func(v uint64) {
		if werr != nil {
			return
		}
		n := binary.PutUvarint(scratch[:], v)
		_, werr = w.Write(scratch[:n])
	}
	putF64 := func(f float64) {
		if werr != nil {
			return
		}
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(f))
		_, werr = w.Write(scratch[:8])
	}
	putStr := func(s string) {
		putUv(uint64(len(s)))
		if werr == nil {
			_, werr = io.WriteString(w, s)
		}
	}

	sel := st.Selector
	putUv(uint64(len(sel.Selected)))
	for i, v := range sel.Selected {
		putUv(uint64(v))
		putF64(sel.Weights[i])
	}
	putUv(uint64(len(sel.Buckets)))
	for _, b := range sel.Buckets {
		putUv(uint64(len(b)))
		for _, v := range b {
			putUv(uint64(v))
		}
	}
	putUv(uint64(len(sel.Utility)))
	if werr == nil && len(sel.Utility) > 0 {
		_, werr = w.Write(sel.Utility)
	}

	putUv(uint64(len(st.Patterns)))
	for _, ps := range st.Patterns {
		putStr(ps.Pattern)
		putUv(uint64(len(ps.Covered)))
		for _, v := range ps.Covered {
			putUv(uint64(v))
		}
		putUv(uint64(len(ps.CoveredEdges)))
		for _, e := range ps.CoveredEdges {
			putUv(uint64(e.From))
			putUv(uint64(e.To))
			putUv(uint64(e.Label))
		}
		putUv(uint64(ps.CP))
	}
	putUv(uint64(st.Candidates))
	putUv(uint64(st.Windows))
	return werr
}

// maxCheckpointElems bounds any single count read from a checkpoint before
// allocation, so a corrupt length cannot ask for gigabytes. Checksums catch
// corruption; this catches it before the allocator does.
const maxCheckpointElems = 1 << 28

// ReadMaintainerState deserializes a checkpoint written by WriteBinary. r
// must be buffered (io.ByteReader) — the snapshot codec's readers are.
func ReadMaintainerState(r io.Reader) (*MaintainerState, error) {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if !ok {
		return nil, fmt.Errorf("core: checkpoint reader must be buffered")
	}
	var rerr error
	getUv := func(what string) uint64 {
		if rerr != nil {
			return 0
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			rerr = fmt.Errorf("core: read checkpoint %s: %w", what, err)
		}
		return v
	}
	getCount := func(what string) int {
		v := getUv(what)
		if rerr == nil && v > maxCheckpointElems {
			rerr = fmt.Errorf("core: read checkpoint %s: count %d exceeds limit", what, v)
		}
		return int(v)
	}
	getF64 := func(what string) float64 {
		if rerr != nil {
			return 0
		}
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			rerr = fmt.Errorf("core: read checkpoint %s: %w", what, err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	getStr := func(what string) string {
		n := getCount(what)
		if rerr != nil || n == 0 {
			return ""
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			rerr = fmt.Errorf("core: read checkpoint %s: %w", what, err)
			return ""
		}
		return string(buf)
	}

	st := &MaintainerState{Selector: &submod.StreamerState{}}
	sel := st.Selector
	nSel := getCount("selection size")
	for i := 0; i < nSel && rerr == nil; i++ {
		sel.Selected = append(sel.Selected, graph.NodeID(getUv("selected node")))
		sel.Weights = append(sel.Weights, getF64("weight"))
	}
	nBuckets := getCount("bucket count")
	for i := 0; i < nBuckets && rerr == nil; i++ {
		n := getCount("bucket size")
		// nil when empty, matching what Checkpoint emits, so a round-trip is
		// DeepEqual-identical.
		var b []graph.NodeID
		if n > 0 && rerr == nil {
			b = make([]graph.NodeID, 0, n)
		}
		for j := 0; j < n && rerr == nil; j++ {
			b = append(b, graph.NodeID(getUv("bucket node")))
		}
		sel.Buckets = append(sel.Buckets, b)
	}
	if n := getCount("utility state size"); rerr == nil && n > 0 {
		sel.Utility = make([]byte, n)
		if _, err := io.ReadFull(br, sel.Utility); err != nil {
			rerr = fmt.Errorf("core: read checkpoint utility state: %w", err)
		}
	}

	nPat := getCount("pattern count")
	for i := 0; i < nPat && rerr == nil; i++ {
		ps := PatternState{Pattern: getStr("pattern text")}
		nCov := getCount("covered size")
		for j := 0; j < nCov && rerr == nil; j++ {
			ps.Covered = append(ps.Covered, graph.NodeID(getUv("covered node")))
		}
		nEdges := getCount("covered-edge count")
		for j := 0; j < nEdges && rerr == nil; j++ {
			ps.CoveredEdges = append(ps.CoveredEdges, graph.EdgeRef{
				From:  graph.NodeID(getUv("edge from")),
				To:    graph.NodeID(getUv("edge to")),
				Label: graph.LabelID(getUv("edge label")),
			})
		}
		ps.CP = int(getUv("pattern loss"))
		st.Patterns = append(st.Patterns, ps)
	}
	st.Candidates = int(getUv("candidate counter"))
	st.Windows = int(getUv("window counter"))
	if rerr != nil {
		return nil, rerr
	}
	return st, nil
}

package core

import (
	"fmt"
	"sort"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/submod"
)

// KAPXFGS computes an r-summary with at most k patterns, minimizing the
// correction size |C| rather than the accumulated loss C_l — the Section V
// variant with the (½, 1+1/(e·γ)) guarantee of Theorem 5.
//
// After the usual selection phase, the summarization phase solves a maximum
// coverage instance over the edge universe E^r_{V_p}: it greedily picks the
// pattern with the largest marginal covered-edge gain, k times, then repairs
// node coverage of V_p (if needed) with the greedy swapping strategy the
// paper outlines: trade the chosen pattern with the smallest marginal edge
// contribution for a candidate that covers missing nodes, while all
// previously covered selected nodes stay covered.
func KAPXFGS(g *graph.Graph, groups *submod.Groups, util submod.Utility, cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("core: KAPXFGS requires K > 0 (got %d); use APXFGS for unbounded patterns", cfg.K)
	}
	run := startRun(cfg.Obs, "kapxfgs")

	sp := run.phase(PhaseSelect)
	vp, err := submod.FairSelectObs(groups, util, cfg.N, run.reg)
	sp.End()
	if err != nil {
		run.abort()
		return nil, fmt.Errorf("core: selection phase: %w", err)
	}

	sp = run.phase(PhaseMine)
	src, cands := mineCandidates(g, vp, &cfg, run)
	sp.SetArg("candidates", int64(len(cands)))
	sp.End()

	sp = run.phase(PhaseSummarize)
	chosen, uncovered := maxCoverSelect(cands, vp, cfg, src, run.reg)
	sp.SetArg("patterns", int64(len(chosen)))
	sp.End()

	return buildSummary(cfg, chosen, src, util, uncovered, run.finish(len(cands), 0)), nil
}

// maxCoverSelect picks up to k candidates maximizing edge coverage of
// E^r_{V_p}, then repairs V_p node coverage by swapping. Iteration counters
// (rounds, candidate scans, repair swaps) are reported to reg at the end —
// zero overhead inside the loops, nothing when reg is nil.
func maxCoverSelect(cands []*mining.Candidate, vp []graph.NodeID, cfg Config, er erSource, reg *obs.Registry) ([]PatternInfo, []graph.NodeID) {
	var rounds, scans, swaps int64
	defer func() {
		reg.Add("fgs_cover_rounds_total", "Greedy cover rounds (patterns chosen).", nil, rounds)
		reg.Add("fgs_cover_candidate_scans_total", "Candidate evaluations across greedy cover rounds.", nil, scans)
		reg.Add("fgs_cover_swaps_total", "Repair-phase pattern swaps in KAPXFGS.", nil, swaps)
	}()

	universe := er.UnionOf(vp)
	chosenIdx := make([]int, 0, cfg.K)
	used := make([]bool, len(cands))

	// The marginal-gain loops below intersect every candidate's P_E bitset
	// per round; candidates scored on a partition carry the compact ID form
	// instead, so materialize their bitsets once up front.
	bound := er.Graph().EdgeIDBound()
	for _, cand := range cands {
		cand.EdgeBits(bound)
	}

	// Greedy max coverage over edges; all three operand sets are dense
	// bitsets, so each marginal gain is one word sweep.
	coveredEdges := graph.NewEdgeBits(er.Graph().EdgeIDBound())
	for len(chosenIdx) < cfg.K {
		best := -1
		bestGain := -1
		for i, cand := range cands {
			if used[i] {
				continue
			}
			scans++
			if !feasibleTogether(cands, append(chosenIdx, i), cfg.N) {
				continue
			}
			gain := edgeMarginal(cand, universe, coveredEdges)
			if gain > bestGain {
				bestGain = gain
				best = i
			}
		}
		if best < 0 || bestGain <= 0 {
			// No candidate improves edge coverage; stop early (remaining
			// budget is better spent by the repair phase below).
			break
		}
		used[best] = true
		chosenIdx = append(chosenIdx, best)
		rounds++
		cands[best].CoveredEdges.Iterate(func(e graph.EdgeID) {
			if universe.Has(e) {
				coveredEdges.Add(e)
			}
		})
	}

	// Repair node coverage of V_p: first fill any spare budget, then swap.
	uncoveredOf := func(idx []int) []graph.NodeID {
		cov := graph.NewNodeSet(0)
		for _, i := range idx {
			for _, v := range cands[i].Covered {
				cov.Add(v)
			}
		}
		var out []graph.NodeID
		for _, v := range vp {
			if !cov.Has(v) {
				out = append(out, v)
			}
		}
		return out
	}

	for rounds := 0; rounds < cfg.K+len(vp); rounds++ {
		missing := uncoveredOf(chosenIdx)
		if len(missing) == 0 {
			break
		}
		missingSet := graph.NodeSetOf(missing)
		// Incoming candidates ranked by missing-node coverage (ties toward
		// smaller C_P), tried in order until one admits a feasible swap.
		type inCand struct {
			idx  int
			gain int
		}
		var ins []inCand
		for i, cand := range cands {
			if used[i] {
				continue
			}
			gain := 0
			for _, v := range cand.Covered {
				if missingSet.Has(v) {
					gain++
				}
			}
			if gain > 0 {
				ins = append(ins, inCand{idx: i, gain: gain})
			}
		}
		sort.SliceStable(ins, func(a, b int) bool {
			if ins[a].gain != ins[b].gain {
				return ins[a].gain > ins[b].gain
			}
			return cands[ins[a].idx].CP < cands[ins[b].idx].CP
		})
		progressed := false
		for _, ic := range ins {
			in := ic.idx
			if len(chosenIdx) < cfg.K {
				if feasibleTogether(cands, append(chosenIdx, in), cfg.N) {
					used[in] = true
					chosenIdx = append(chosenIdx, in)
					progressed = true
					break
				}
				continue
			}
			// Swap: evict the chosen pattern whose removal loses the fewest
			// unique edges while keeping progress on the missing nodes.
			out := -1
			outLoss := 0
			for pos := range chosenIdx {
				trial := make([]int, 0, len(chosenIdx))
				trial = append(trial, chosenIdx[:pos]...)
				trial = append(trial, chosenIdx[pos+1:]...)
				trial = append(trial, in)
				if !feasibleTogether(cands, trial, cfg.N) {
					continue
				}
				if len(uncoveredOf(trial)) >= len(missing) {
					continue // the swap does not make progress
				}
				loss := uniqueEdgeContribution(cands, chosenIdx, pos, universe)
				if out < 0 || loss < outLoss {
					out = pos
					outLoss = loss
				}
			}
			if out < 0 {
				continue
			}
			used[in] = true
			chosenIdx = append(chosenIdx[:out], chosenIdx[out+1:]...)
			chosenIdx = append(chosenIdx, in)
			swaps++
			progressed = true
			break
		}
		if !progressed {
			break
		}
	}

	chosen := make([]PatternInfo, 0, len(chosenIdx))
	for _, i := range chosenIdx {
		chosen = append(chosen, infoOf(er.Graph(), cands[i]))
	}
	return chosen, uncoveredOf(chosenIdx)
}

// edgeMarginal counts cand's covered edges inside the universe not yet
// covered.
func edgeMarginal(cand *mining.Candidate, universe, covered *graph.EdgeBits) int {
	return cand.CoveredEdges.IntersectAndNotCount(universe, covered)
}

// uniqueEdgeContribution counts universe edges only the pattern at position
// pos covers among the chosen set.
func uniqueEdgeContribution(cands []*mining.Candidate, chosenIdx []int, pos int, universe *graph.EdgeBits) int {
	others := graph.NewEdgeBits(0)
	for p, i := range chosenIdx {
		if p == pos {
			continue
		}
		others.Union(cands[i].CoveredEdges)
	}
	return cands[chosenIdx[pos]].CoveredEdges.IntersectAndNotCount(universe, others)
}

// feasibleTogether checks the n cap for the union coverage of a candidate
// index set. Coverage is anchored to V_p (which already satisfies the group
// bounds), so the cap is the only remaining structural constraint.
func feasibleTogether(cands []*mining.Candidate, idx []int, n int) bool {
	cov := graph.NewNodeSet(0)
	for _, i := range idx {
		for _, v := range cands[i].Covered {
			cov.Add(v)
		}
	}
	return cov.Len() <= n
}

package pattern

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The pattern text format mirrors the graph exchange format, so users can
// hand-write query patterns for cmd/fgs:
//
//	# focus user in the Internet industry, co-reviewed by two peers
//	n 0 user industry=Internet
//	n 1 user
//	n 2 user
//	e 1 0 corev
//	e 2 0 corev
//	f 0
//
// Records: `n <idx> <label> [key=val ...]` declares a pattern node (indices
// dense, ascending); `e <from> <to> <label>` a directed pattern edge;
// `f <idx>` the focus (defaults to node 0). `#` starts a comment.

// Parse reads a pattern in the text format and validates it.
func Parse(r io.Reader) (*Pattern, error) {
	p := &Pattern{}
	focusSet := false
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if len(fields) < 3 {
				return nil, fmt.Errorf("pattern: line %d: node needs index and label", lineno)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx != len(p.Nodes) {
				return nil, fmt.Errorf("pattern: line %d: node indices must be dense and ascending", lineno)
			}
			node := Node{Label: fields[2]}
			for _, f := range fields[3:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok || k == "" {
					return nil, fmt.Errorf("pattern: line %d: bad literal %q", lineno, f)
				}
				node.Literals = append(node.Literals, Literal{Key: k, Val: v})
			}
			sortLiterals(node.Literals)
			p.Nodes = append(p.Nodes, node)
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("pattern: line %d: edge needs from, to, label", lineno)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("pattern: line %d: bad edge endpoints", lineno)
			}
			p.Edges = append(p.Edges, Edge{From: from, To: to, Label: fields[3]})
		case "f":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pattern: line %d: focus needs one index", lineno)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: bad focus index", lineno)
			}
			p.Focus = idx
			focusSet = true
		default:
			return nil, fmt.Errorf("pattern: line %d: unknown record %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !focusSet {
		p.Focus = 0
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseString parses a pattern from a string.
func ParseString(s string) (*Pattern, error) { return Parse(strings.NewReader(s)) }

// Format renders the pattern in the parseable text format; Parse(Format(p))
// reproduces p.
func Format(w io.Writer, p *Pattern) error {
	bw := bufio.NewWriter(w)
	for i, n := range p.Nodes {
		fmt.Fprintf(bw, "n %d %s", i, n.Label)
		lits := append([]Literal(nil), n.Literals...)
		sort.Slice(lits, func(a, b int) bool { return lits[a].Key < lits[b].Key })
		for _, l := range lits {
			fmt.Fprintf(bw, " %s=%s", l.Key, l.Val)
		}
		fmt.Fprintln(bw)
	}
	for _, e := range p.Edges {
		fmt.Fprintf(bw, "e %d %d %s\n", e.From, e.To, e.Label)
	}
	fmt.Fprintf(bw, "f %d\n", p.Focus)
	return bw.Flush()
}

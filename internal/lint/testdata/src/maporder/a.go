// Fixture for the maporder analyzer: map iterations whose order reaches an
// ordered sink must be flagged; sorted or order-independent ones must not.
package maporder

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

func emitsUnsorted(m map[string]int) []string {
	var rows []string
	for k := range m { // want `map iteration order reaches append to rows`
		rows = append(rows, k)
	}
	return rows
}

func printsDirectly(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func writesToBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order reaches b\.WriteString`
		b.WriteString(k)
	}
	return b.String()
}

func sortedAfterLoop(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // ok: keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type pair struct {
	k string
	n int
}

func sortedStructsAfterLoop(m map[string]int) []pair {
	var ps []pair
	for k, n := range m { // ok: ps is sorted below
		ps = append(ps, pair{k, n})
	}
	slices.SortFunc(ps, func(a, b pair) int { return strings.Compare(a.k, b.k) })
	return ps
}

func loopLocalAccumulator(m map[string][]int) int {
	total := 0
	for _, vs := range m { // ok: commutative reduction, no ordered sink
		sum := 0
		for _, v := range vs {
			sum += v
		}
		total += sum
	}
	return total
}

func localSliceInsideLoop(m map[string][]int) int {
	n := 0
	for _, vs := range m { // ok: parts never outlives one iteration
		var parts []int
		parts = append(parts, vs...)
		n += len(parts)
	}
	return n
}

func buildsAnotherMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // ok: a map is an unordered sink
		out[v] = k
	}
	return out
}

func blankLoop(m map[string]int) int {
	n := 0
	for range m { // ok: neither key nor value is bound
		n++
	}
	return n
}

func allowed(m map[string]int) []string {
	var rows []string
	//lint:allow maporder rows is order-insensitive: the caller treats it as a set
	for k := range m {
		rows = append(rows, k)
	}
	return rows
}

func sortedBeforeLoopOnly(m map[string]int) []string {
	var rows []string
	sort.Strings(rows)
	for k := range m { // want `map iteration order reaches append to rows`
		rows = append(rows, k)
	}
	return rows
}

package mining

import (
	"sync"

	"github.com/cwru-db/fgs/internal/pattern"
)

// The parallel scoring pipeline.
//
// SumGen's cost is dominated by score(): for every grown pattern it evaluates
// CoverAmong over the whole universe, enumerates embeddings per covered node
// (CoveredEdgesAt), and walks r-hop edge sets to compute C_P. The BFS growth
// loop itself — pop, prune on anchor coverage, extend — is cheap, and crucially
// does NOT depend on score results: extensions derive from coveredAnchors
// only, and score() never mutates engine state shared with generation.
//
// runParallel therefore keeps generation sequential on the calling goroutine
// (preserving the exact pop/extend order of run) and farms score() out to
// cfg.Workers goroutines. Each submitted pattern carries a sequence number;
// results are committed to e.out strictly in submission order, so the output
// slice is byte-identical to the sequential run.
//
// The only coupling from scoring back into generation is the MaxPatterns
// budget: sequentially, the loop stops popping once `grown` (committed
// non-nil scored patterns) reaches the budget, and the budget-hitting pattern
// is not extended. Extensions, however, only mutate the queues and the seen
// set — never e.out — and nothing is popped after the budget hits. So the
// producer may safely speculate a bounded window of extra patterns past the
// (not yet known) stopping point: their extensions are discarded with the
// queues, and the in-order committer drops their scores once the budget is
// reached. Speculation is bounded by the in-flight window (2 × workers).

// scoreJob is one pattern awaiting scoring, tagged with its submission index.
type scoreJob struct {
	seq      int
	p        *pattern.Pattern
	fallback bool
}

// scoreResult is one finished scoring, possibly nil (pattern covers no
// universe node).
type scoreResult struct {
	seq      int
	cand     *Candidate
	fallback bool
}

// committer reassembles out-of-order worker results into submission order and
// applies the sequential loop's emission rules.
type committer struct {
	e       *engine
	pending map[int]scoreResult
	next    int // lowest uncommitted sequence number
	grown   int // committed non-fallback candidates
}

// add registers a result and commits every consecutively-available one.
func (c *committer) add(r scoreResult) {
	c.pending[r.seq] = r
	for {
		r, ok := c.pending[c.next]
		if !ok {
			return
		}
		delete(c.pending, c.next)
		c.next++
		if r.cand == nil {
			continue
		}
		if r.fallback {
			c.e.out = append(c.e.out, r.cand)
			if c.e.mm != nil {
				c.e.mm.emitted.Inc()
			}
			continue
		}
		if c.grown >= c.e.cfg.MaxPatterns {
			if c.e.mm != nil {
				c.e.mm.specDiscards.Inc()
			}
			continue // speculative overshoot past the budget; discard
		}
		c.e.out = append(c.e.out, r.cand)
		if c.e.mm != nil {
			c.e.mm.emitted.Inc()
		}
		c.grown++
	}
}

// runParallel is the worker-pool variant of run. Its output is byte-identical
// to run's for any worker count (see the package comment above).
func (e *engine) runParallel() {
	workers := e.cfg.Workers
	window := 2 * workers
	jobs := make(chan scoreJob, window)
	results := make(chan scoreResult, window)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- scoreResult{seq: j.seq, cand: e.score(j.p, j.fallback), fallback: j.fallback}
			}
		}()
	}

	com := &committer{e: e, pending: make(map[int]scoreResult, window)}
	submitted := 0
	received := 0

	// drainOne blocks for one result; submit keeps in-flight jobs within the
	// window so results cannot back up and deadlock the producer.
	drainOne := func() {
		com.add(<-results)
		received++
	}
	submit := func(p *pattern.Pattern, fallback bool) {
		for submitted-received >= window {
			drainOne()
		}
		if e.mm != nil {
			e.mm.queueDepth.Observe(int64(submitted - received))
		}
		jobs <- scoreJob{seq: submitted, p: p, fallback: fallback}
		submitted++
	}

	// Fallback seeds first, exactly as in run; they never count toward the
	// grown budget and are always committed.
	for _, p := range e.fallbackSeeds() {
		submit(p, true)
	}
	e.pushLabelSeeds()

	for len(e.queue) > 0 || len(e.queueLit) > 0 {
		// Fold in any finished results without blocking, so the budget check
		// below sees the freshest committed count.
		for {
			select {
			case r := <-results:
				com.add(r)
				received++
				continue
			default:
			}
			break
		}
		if com.grown >= e.cfg.MaxPatterns {
			break
		}
		var p *pattern.Pattern
		if len(e.queue) > 0 {
			p = e.queue[0]
			e.queue = e.queue[1:]
		} else {
			p = e.queueLit[0]
			e.queueLit = e.queueLit[1:]
		}
		// Anti-monotone pruning stays eager on the producer: CoverAmong over
		// the anchors is cheap (and itself parallelized by the matcher for
		// large anchor sets), and extensions need coveredAnchors anyway.
		coveredAnchors := e.coverAnchors(p)
		if len(coveredAnchors) < e.cfg.MinCover {
			if e.mm != nil {
				e.mm.pruned.Inc()
			}
			continue
		}
		submit(p, false)
		e.extend(p, coveredAnchors)
	}

	for received < submitted {
		drainOne()
	}
	close(jobs)
	wg.Wait()
}

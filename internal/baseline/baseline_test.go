package baseline

import (
	"math/rand"
	"strconv"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/submod"
)

// skewedFixture builds a network with a 3:1 majority/minority split where
// majority nodes share a frequent structure — the setting in which frequent
// mining over-represents the majority (Example 2 of the paper).
func skewedFixture(t testing.TB) (*graph.Graph, *submod.Groups) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	g := graph.New()
	var majority, minority []graph.NodeID
	// 12 majority members, each recommended by two dedicated users.
	for i := 0; i < 12; i++ {
		v := g.AddNode("user", map[string]string{"gender": "m", "exp": strconv.Itoa(1 + rng.Intn(3))})
		majority = append(majority, v)
		for j := 0; j < 2; j++ {
			r := g.AddNode("user", nil)
			if err := g.AddEdge(r, v, "recommend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 4 minority members with a single recommender each.
	for i := 0; i < 4; i++ {
		v := g.AddNode("user", map[string]string{"gender": "f", "exp": strconv.Itoa(1 + rng.Intn(3))})
		minority = append(minority, v)
		r := g.AddNode("user", nil)
		if err := g.AddEdge(r, v, "recommend"); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := submod.NewGroups(
		submod.Group{Name: "m", Members: majority, Lower: 3, Upper: 5},
		submod.Group{Name: "f", Members: minority, Lower: 3, Upper: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g, groups
}

func miningCfg() mining.Config {
	return mining.Config{MaxNodes: 3, MaxLiterals: 1, MaxPatterns: 80}
}

func TestGramiSkewsTowardMajority(t *testing.T) {
	g, groups := skewedFixture(t)
	res := Grami(g, groups, GramiConfig{R: 2, K: 5, N: 8, MinSup: 2, Mining: miningCfg()})
	if len(res.Patterns) == 0 || len(res.Patterns) > 5 {
		t.Fatalf("pattern count = %d", len(res.Patterns))
	}
	if len(res.Covered) == 0 || len(res.Covered) > 8 {
		t.Fatalf("covered = %d", len(res.Covered))
	}
	counts := groups.Counts(res.Covered)
	if counts[0] <= counts[1] {
		t.Fatalf("frequent mining should over-represent the majority: %v", counts)
	}
	if res.StructureSize <= 0 || res.Elapsed <= 0 {
		t.Fatal("bookkeeping missing")
	}
}

func TestGramiCorrectionsCharged(t *testing.T) {
	g, groups := skewedFixture(t)
	// Restrict mining to singleton patterns: they describe no edges, so
	// every r-hop edge of the covered nodes must be charged as a correction.
	cfg := miningCfg()
	cfg.MaxNodes = 1
	res := Grami(g, groups, GramiConfig{R: 2, K: 3, N: 8, MinSup: 2, Mining: cfg})
	if res.Corrections == 0 {
		t.Fatal("expected positive corrections for lossless Grami adaptation")
	}
	want := g.RHopEdgesOf(res.Covered, 2).Len()
	if res.Corrections != want {
		t.Fatalf("singleton summary should miss all %d edges, got %d", want, res.Corrections)
	}
}

func TestDSumLossyNoCorrections(t *testing.T) {
	g, groups := skewedFixture(t)
	res := DSum(g, groups, DSumConfig{D: 2, K: 4, N: 8, Mining: miningCfg()})
	if res.Corrections != 0 {
		t.Fatal("d-sum is lossy; must not charge corrections")
	}
	if len(res.Patterns) == 0 || len(res.Patterns) > 4 {
		t.Fatalf("pattern count = %d", len(res.Patterns))
	}
	if len(res.Covered) == 0 {
		t.Fatal("no coverage")
	}
}

func TestDSumFavorsLargerPatterns(t *testing.T) {
	g, groups := skewedFixture(t)
	res := DSum(g, groups, DSumConfig{D: 2, K: 3, N: 8, Mining: miningCfg()})
	// The top-scored pattern must be larger than a bare singleton: score
	// multiplies support by size.
	if res.Patterns[0].Size() <= 1 {
		t.Fatalf("top d-sum pattern is a singleton: %s", res.Patterns[0])
	}
}

func TestMMPGDiversifiesCoverage(t *testing.T) {
	g, groups := skewedFixture(t)
	res := MMPG(g, groups, MMPGConfig{R: 2, K: 4, N: 10, Mining: miningCfg()})
	if len(res.Patterns) == 0 || len(res.Patterns) > 4 {
		t.Fatalf("pattern count = %d", len(res.Patterns))
	}
	// Reformulations are non-trivial patterns.
	for _, p := range res.Patterns {
		if len(p.Edges) == 0 && len(p.Nodes[p.Focus].Literals) == 0 {
			t.Fatalf("bare seed selected as reformulation: %s", p)
		}
	}
	// Diversity pressure should cover both groups.
	counts := groups.Counts(res.Covered)
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("diversified selection covers only one group: %v", counts)
	}
}

func TestMMPGLargerSummariesThanGrami(t *testing.T) {
	g, groups := skewedFixture(t)
	grami := Grami(g, groups, GramiConfig{R: 2, K: 4, N: 8, MinSup: 2, Mining: miningCfg()})
	mmpg := MMPG(g, groups, MMPGConfig{R: 2, K: 4, N: 8, Mining: miningCfg()})
	gramiAvg := float64(grami.StructureSize) / float64(len(grami.Patterns))
	mmpgAvg := float64(mmpg.StructureSize) / float64(len(mmpg.Patterns))
	if mmpgAvg < gramiAvg {
		t.Fatalf("MMPG average pattern size %.1f should be >= Grami's %.1f", mmpgAvg, gramiAvg)
	}
}

func TestJaccard(t *testing.T) {
	a := graph.NodeSetOf([]graph.NodeID{1, 2, 3})
	b := graph.NodeSetOf([]graph.NodeID{2, 3, 4})
	if got := jaccard(a, b); got != 0.5 {
		t.Fatalf("jaccard = %v, want 0.5", got)
	}
	if got := jaccard(graph.NodeSet{}, graph.NodeSet{}); got != 0 {
		t.Fatalf("empty jaccard = %v", got)
	}
	if got := jaccard(a, a); got != 1 {
		t.Fatalf("self jaccard = %v", got)
	}
}

func TestTruncateAndDedup(t *testing.T) {
	nodes := []graph.NodeID{1, 2, 3, 4}
	if got := truncate(nodes, 2); len(got) != 2 || got[0] != 1 {
		t.Fatalf("truncate = %v", got)
	}
	if got := truncate(nodes, 10); len(got) != 4 {
		t.Fatalf("truncate no-op failed: %v", got)
	}
	seen := graph.NewNodeSet(0)
	out := dedupAppend(nil, []graph.NodeID{1, 2}, seen)
	out = dedupAppend(out, []graph.NodeID{2, 3}, seen)
	if len(out) != 3 {
		t.Fatalf("dedupAppend = %v", out)
	}
}

package graph

// Clone returns an independent deep copy of the graph with byte-identical
// structure: the same dense node and edge IDs, the same interner ID
// assignment, the same adjacency order, and the same free-list state. A
// deterministic operation sequence applied to the clone therefore produces
// exactly the state it would have produced on the original — the property
// the MVCC serving layer's replica replay relies on (DESIGN.md §11).
//
// Immutable interior state is shared: attribute tuples are never modified
// after AddNode, so the clone aliases them. Everything the mutating API can
// touch (adjacency lists, interners, the edge index, label buckets) is
// copied. Adjacency lists are re-laid out into two contiguous arenas, so a
// clone is also a compaction: per-node slices carry no spare capacity and an
// AddEdge on the clone reallocates that node's list instead of growing the
// arena.
//
// Cost is O(V + E); the serving layer pays it once per replica at boot, not
// per write batch.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodeLabels: g.nodeLabels.Clone(),
		edgeLabels: g.edgeLabels.Clone(),
		attrKeys:   g.attrKeys.Clone(),
		attrVals:   g.attrVals.Clone(),
		labelOf:    append([]LabelID(nil), g.labelOf...),
		attrsOf:    append([][]Attr(nil), g.attrsOf...),
		out:        cloneAdj(g.out),
		in:         cloneAdj(g.in),
		byLabel:    make(map[LabelID][]NodeID, len(g.byLabel)),
		edgeDefs:   append([]EdgeRef(nil), g.edgeDefs...),
		edgeIndex:  make(map[EdgeRef]EdgeID, len(g.edgeIndex)),
		freeIDs:    append([]EdgeID(nil), g.freeIDs...),
		numEdges:   g.numEdges,
	}
	// Rebuild byLabel from labelOf in node order instead of copying the map:
	// nodes are never removed, so every bucket is ascending NodeIDs and this
	// reproduces the source buckets exactly — without map-iteration order.
	for v, lid := range g.labelOf {
		c.byLabel[lid] = append(c.byLabel[lid], NodeID(v))
	}
	for ref, id := range g.edgeIndex {
		c.edgeIndex[ref] = id
	}
	// labelBits and scratch start empty: both are caches rebuilt on demand,
	// and sharing them would couple the clone's readers to the original.
	return c
}

// cloneAdj copies an adjacency table into one contiguous arena. Each node's
// slice is full-sliced (len == cap), so a later append on one node
// reallocates instead of clobbering its arena neighbor.
func cloneAdj(adj [][]Edge) [][]Edge {
	total := 0
	for _, l := range adj {
		total += len(l)
	}
	arena := make([]Edge, 0, total)
	out := make([][]Edge, len(adj))
	for v, l := range adj {
		start := len(arena)
		arena = append(arena, l...)
		out[v] = arena[start:len(arena):len(arena)]
	}
	return out
}

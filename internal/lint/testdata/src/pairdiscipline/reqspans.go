// Fixture for pairdiscipline's request-stage span shape: ReqTrace.Start
// returns a value-typed ReqSpan whose End must run on every path. The
// middle-of-pipeline early returns in the server's serveCompute are exactly
// the shape that leaks a stage span when End is forgotten.
package pairdiscipline

type ReqSpan struct {
	rt    *ReqTrace
	stage int
}

func (sp ReqSpan) End() {}

type ReqTrace struct{ endpoint string }

func (rt *ReqTrace) Start(stage int) ReqSpan { return ReqSpan{rt: rt, stage: stage} }

func okReqSpanBothPaths(rt *ReqTrace, hit bool) bool {
	sp := rt.Start(0)
	if hit {
		sp.End()
		return true
	}
	sp.End()
	return false
}

func okReqSpanChained(rt *ReqTrace) {
	rt.Start(1).End() // ok: acquired and released in one expression
}

func discardedReqSpan(rt *ReqTrace) {
	rt.Start(2) // want `rt\.Start\(\): result of reqspan Start/End is discarded`
}

func leakReqSpanOnErrorPath(rt *ReqTrace, fail bool) error {
	sp := rt.Start(3) // want `rt\.Start\(\): reqspan Start/End acquired here is not released`
	if fail {
		return errSaturated
	}
	sp.End()
	return nil
}

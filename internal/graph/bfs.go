package graph

// The r-hop neighborhood operators of Section II. Per the paper, "the r-hop
// neighbors (resp. edges) of v refer to the nodes (resp. edges) that can be
// reached from or reach v in r hops", i.e. traversal ignores edge direction
// while the collected edges keep theirs.
//
// Visited marks live in epoch-stamped dense scratch ([]uint32 indexed by
// NodeID) drawn from a per-graph sync.Pool: a node is visited iff its stamp
// equals the scratch's current epoch, so "clearing" between traversals is a
// single epoch increment instead of an O(n) wipe or a fresh map. The pool
// hands each concurrent traversal (ErCache.Warm, the parallel scoring
// pipeline) its own scratch, making the operators safe under -fgs.workers.

// visitScratch is one reusable visited-mark array. Invariants: epoch >= 1,
// stamp[v] <= epoch for all v, and stamp[v] == epoch means "visited in the
// current traversal". On the (practically unreachable) uint32 wraparound the
// marks are wiped and the epoch restarts at 1, keeping the invariant.
type visitScratch struct {
	stamp    []uint32
	epoch    uint32
	frontier []NodeID
	next     []NodeID
}

// acquireScratch returns a scratch sized for the graph with a fresh epoch.
func (g *Graph) acquireScratch() *visitScratch {
	s, _ := g.scratch.Get().(*visitScratch)
	if s == nil {
		s = &visitScratch{}
	}
	if n := g.NumNodes(); len(s.stamp) < n {
		grown := make([]uint32, n)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	s.frontier = s.frontier[:0]
	s.next = s.next[:0]
	return s
}

func (g *Graph) releaseScratch(s *visitScratch) { g.scratch.Put(s) }

// visit marks v and reports whether this is its first visit this traversal.
func (s *visitScratch) visit(v NodeID) bool {
	if s.stamp[v] == s.epoch {
		return false
	}
	s.stamp[v] = s.epoch
	return true
}

// RHopNodes returns N_v^r: every node within undirected distance r of v,
// including v itself.
func (g *Graph) RHopNodes(v NodeID, r int) []NodeID {
	return g.RHopNodesOf([]NodeID{v}, r)
}

// RHopNodesOf returns N_X^r for a node set X: the union of r-hop
// neighborhoods, including the members of X themselves.
func (g *Graph) RHopNodesOf(roots []NodeID, r int) []NodeID {
	s := g.acquireScratch()
	defer g.releaseScratch(s)
	frontier := s.frontier
	for _, v := range roots {
		if g.HasNode(v) && s.visit(v) {
			frontier = append(frontier, v)
		}
	}
	result := append([]NodeID(nil), frontier...)
	next := s.next
	for hop := 0; hop < r && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range g.out[v] {
				if s.visit(e.To) {
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[v] {
				if s.visit(e.To) {
					next = append(next, e.To)
				}
			}
		}
		result = append(result, next...)
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next
	return result
}

// RHopEdgeBits returns E_v^r as a bitset: every directed edge on a path of at
// most r undirected hops from v. Concretely, it is the set of edges traversed
// while expanding up to depth r, i.e. edges (a,b) with
// min(depth(a), depth(b)) < r. This is the hot-path form ErCache memoizes.
func (g *Graph) RHopEdgeBits(v NodeID, r int) *EdgeBits {
	return g.RHopEdgeBitsOf([]NodeID{v}, r)
}

// RHopEdgeBitsOf returns E_X^r as a bitset: the union of r-hop edge sets of
// the roots.
func (g *Graph) RHopEdgeBitsOf(roots []NodeID, r int) *EdgeBits {
	edges := &EdgeBits{}
	s := g.acquireScratch()
	defer g.releaseScratch(s)
	frontier := s.frontier
	for _, v := range roots {
		if g.HasNode(v) && s.visit(v) {
			frontier = append(frontier, v)
		}
	}
	next := s.next
	for hop := 0; hop < r && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range g.out[v] {
				edges.Add(e.ID)
				if s.visit(e.To) {
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[v] {
				edges.Add(e.ID)
				if s.visit(e.To) {
					next = append(next, e.To)
				}
			}
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next
	return edges
}

// RHopEdges returns E_v^r in the map representation — an adapter over
// RHopEdgeBits for the cold paths (verification, metrics, tests) that want
// EdgeRefs.
func (g *Graph) RHopEdges(v NodeID, r int) EdgeSet {
	return g.EdgeSetOf(g.RHopEdgeBits(v, r))
}

// RHopEdgesOf returns E_X^r: the union of r-hop edge sets of the roots.
func (g *Graph) RHopEdgesOf(roots []NodeID, r int) EdgeSet {
	return g.EdgeSetOf(g.RHopEdgeBitsOf(roots, r))
}

// Dist returns the undirected hop distance from src to dst, or -1 if dst is
// unreachable within limit hops. A limit < 0 means unbounded.
func (g *Graph) Dist(src, dst NodeID, limit int) int {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return -1
	}
	if src == dst {
		return 0
	}
	s := g.acquireScratch()
	defer g.releaseScratch(s)
	s.visit(src)
	frontier := append(s.frontier, src)
	next := s.next
	for d := 1; limit < 0 || d <= limit; d++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range g.out[v] {
				if e.To == dst {
					s.frontier, s.next = frontier, next
					return d
				}
				if s.visit(e.To) {
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[v] {
				if e.To == dst {
					s.frontier, s.next = frontier, next
					return d
				}
				if s.visit(e.To) {
					next = append(next, e.To)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next
	return -1
}

package store

import (
	"fmt"
	"testing"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
)

// benchRecord is a realistic update batch: 8 edges, short labels.
func benchRecord(epoch uint64) Record {
	ins := make([]core.EdgeUpdate, 8)
	for i := range ins {
		ins[i] = core.EdgeUpdate{
			From:  graph.NodeID(epoch*8+uint64(i)) % 100000,
			To:    graph.NodeID(epoch*8+uint64(i)+37) % 100000,
			Label: "corev",
		}
	}
	return Record{Epoch: epoch, Delta: core.Delta{Insert: ins}}
}

// BenchmarkWALAppend measures the durable-append path per fsync policy: the
// full cost of logging one applied batch, including the policy's sync wait.
// The group/batch numbers are dominated by fsync latency of the benchmark
// machine's filesystem, which is the point.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []string{FsyncOff, FsyncGroup, FsyncBatch} {
		b.Run(policy, func(b *testing.B) {
			g, ms := testImage(b)
			st, _ := openStore(b, Options{Dir: b.TempDir(), Fsync: policy})
			defer st.Close() //lint:allow errdrop (benchmark teardown)
			if err := st.WriteSnapshot(0, g, ms); err != nil {
				b.Fatal(err)
			}
			enc := appendRecord(nil, benchRecord(1))
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Append(benchRecord(uint64(i + 1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryReplay measures a full Open — manifest, snapshot load,
// and WAL tail decode — against a directory with a 1k-record tail.
func BenchmarkRecoveryReplay(b *testing.B) {
	for _, tail := range []int{100, 1000} {
		b.Run(fmt.Sprintf("tail%d", tail), func(b *testing.B) {
			dir, _, _, _ := seedStore(b, Options{Fsync: FsyncOff}, tail)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, rec, err := Open(Options{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				if len(rec.Tail) != tail {
					b.Fatalf("tail %d, want %d", len(rec.Tail), tail)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package graph

import (
	"math/rand"
	"testing"
)

func TestRemoveEdge(t *testing.T) {
	g, ids := buildDiamond(t)
	before := g.NumEdges()
	if err := g.RemoveEdge(ids[0], ids[1], "recommend"); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.NumEdges() != before-1 {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), before-1)
	}
	rec, _ := g.EdgeLabelID("recommend")
	if g.HasEdge(ids[0], ids[1], rec) {
		t.Fatal("edge still present")
	}
	// The in-list of the target no longer mentions the source.
	for _, e := range g.In(ids[1]) {
		if e.To == ids[0] && e.Label == rec {
			t.Fatal("in-adjacency still holds removed edge")
		}
	}
	// Re-adding is allowed.
	if err := g.AddEdge(ids[0], ids[1], "recommend"); err != nil {
		t.Fatalf("re-add after remove: %v", err)
	}
}

func TestRemoveEdgeErrors(t *testing.T) {
	g, ids := buildDiamond(t)
	cases := []struct {
		name     string
		from, to NodeID
		label    string
	}{
		{"unknown label", ids[0], ids[1], "nosuch"},
		{"wrong direction", ids[1], ids[0], "recommend"},
		{"missing node", 99, ids[0], "recommend"},
		{"wrong label on real endpoints", ids[0], ids[1], "member"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := g.RemoveEdge(c.from, c.to, c.label); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if g.NumEdges() != 5 {
		t.Fatalf("failed removals changed edge count: %d", g.NumEdges())
	}
}

// Property: a random interleaving of adds and removes keeps the two
// adjacency directions consistent and the edge count correct.
func TestAddRemoveInterleavingConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := New()
	const n = 20
	for i := 0; i < n; i++ {
		g.AddNode("x", nil)
	}
	type key struct {
		from, to NodeID
	}
	present := map[key]bool{}
	for step := 0; step < 2000; step++ {
		k := key{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
		if present[k] {
			if rng.Intn(2) == 0 {
				if err := g.RemoveEdge(k.from, k.to, "e"); err != nil {
					t.Fatalf("step %d: remove existing: %v", step, err)
				}
				present[k] = false
			}
		} else {
			if err := g.AddEdge(k.from, k.to, "e"); err != nil {
				t.Fatalf("step %d: add missing: %v", step, err)
			}
			present[k] = true
		}
	}
	want := 0
	lid, _ := g.EdgeLabelID("e")
	for k, ok := range present {
		if !ok {
			continue
		}
		want++
		if !g.HasEdge(k.from, k.to, lid) {
			t.Fatalf("edge %v missing", k)
		}
		foundIn := false
		for _, e := range g.In(k.to) {
			if e.To == k.from && e.Label == lid {
				foundIn = true
			}
		}
		if !foundIn {
			t.Fatalf("edge %v missing from in-adjacency", k)
		}
	}
	if g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
}

// TestRemoveEdgeAdjacencyInvariant exercises the vetted panic branch of
// RemoveEdge (the //lint:allow nopanic site in delete.go): when the
// in-adjacency list disagrees with the out-list, the store is corrupted and
// RemoveEdge must panic instead of limping on — the two lists are maintained
// together, so disagreement can only mean memory corruption or a concurrent
// writer, and a summary built on such a graph would silently be wrong.
func TestRemoveEdgeAdjacencyInvariant(t *testing.T) {
	g := New()
	a := g.AddNode("user", nil)
	b := g.AddNode("user", nil)
	if err := g.AddEdge(a, b, "follows"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the store: drop the mirror entry from the in-list only.
	g.in[b] = nil
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RemoveEdge on a corrupted store returned instead of panicking")
		}
		if msg, ok := r.(string); !ok || msg != "graph: adjacency lists out of sync" {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	_ = g.RemoveEdge(a, b, "follows")
	t.Fatal("unreachable: RemoveEdge must panic on a desynced store")
}

package lint

// CtxPoll guards request-path responsiveness in internal/server: an
// unbounded loop in a handler that never consults its context keeps a
// worker slot pinned past the client's deadline, defeating admission
// control and drain. Inside internal/server, any function that takes a
// context.Context (or a FuncLit nested in one) must, in each potentially
// unbounded loop — `for { ... }` with no condition, or `for range ch` over
// a channel — reference ctx.Done() or ctx.Err() somewhere in the loop body.
//
// Loops over slices, maps, strings, or integers are bounded by their
// operand and are not flagged; neither are loops in functions that have no
// context to poll (those are background machinery with their own shutdown
// protocol, e.g. viewSet.publish).

import (
	"go/ast"
	"go/types"
	"strings"
)

var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "flag unbounded loops in internal/server request paths that never check ctx.Done()",
	Run:  runCtxPoll,
}

// serverPackages are the import-path segments under the request-path
// responsiveness contract.
var serverPackages = []string{"internal/server"}

// matchPkgSegment matches pkgPath against seg on path-segment boundaries
// (same convention as isDeterministicPkg, shared so fixture trees like
// "ctxpoll/internal/server" match).
func matchPkgSegment(pkgPath, seg string) bool {
	return pkgPath == seg ||
		strings.HasSuffix(pkgPath, "/"+seg) ||
		strings.Contains(pkgPath, "/"+seg+"/") ||
		strings.HasPrefix(pkgPath, seg+"/")
}

func isServerPkg(pkgPath string) bool {
	for _, seg := range serverPackages {
		if matchPkgSegment(pkgPath, seg) {
			return true
		}
	}
	return false
}

func runCtxPoll(pass *Pass) error {
	if !isServerPkg(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLoops(pass, fd.Body, contextParam(pass, fd.Type))
		}
	}
	return nil
}

// contextParam returns the object of ft's context.Context parameter, or nil.
func contextParam(pass *Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkLoops walks body flagging unbounded loops when a context is in
// scope. Function literals inherit the enclosing context (they close over
// it) unless they declare their own.
func checkLoops(pass *Pass, body *ast.BlockStmt, ctxObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := contextParam(pass, n.Type)
			if inner == nil {
				inner = ctxObj
			}
			checkLoops(pass, n.Body, inner)
			return false
		case *ast.ForStmt:
			if ctxObj != nil && n.Cond == nil && !bodyPollsContext(pass, n.Body, ctxObj) {
				pass.Report(n.Pos(), "unbounded for-loop in request path never checks %s.Done(): poll the context so admission deadlines and drain hold", ctxObj.Name())
			}
		case *ast.RangeStmt:
			if ctxObj != nil && isChannelRange(pass, n) && !bodyPollsContext(pass, n.Body, ctxObj) {
				pass.Report(n.Pos(), "range over channel in request path never checks %s.Done(): select on the context so admission deadlines and drain hold", ctxObj.Name())
			}
		}
		return true
	})
}

// isChannelRange reports whether rs ranges over a channel — the only range
// form whose iteration count is unbounded.
func isChannelRange(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// bodyPollsContext reports whether the loop body references ctx.Done() or
// ctx.Err() (directly or in a select case).
func bodyPollsContext(pass *Pass, body *ast.BlockStmt, ctxObj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		id, ok := unparen(sel.X).(*ast.Ident)
		if ok && pass.TypesInfo.Uses[id] == ctxObj {
			found = true
			return false
		}
		return true
	})
	return found
}

GO ?= go

.PHONY: all build test race serve lint fgslint vet staticcheck govulncheck bench bench-ci bench-compare

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages again under the race detector (mirrors CI).
race:
	$(GO) test -race ./internal/mining/ ./internal/pattern/ ./internal/core/ ./internal/graph/ ./internal/obs/ ./internal/server/

# Run the summarization daemon on the demo LKI graph (see README "Serving").
# Override flags via ARGS: make serve ARGS='-addr :9000 -workers 4'
serve:
	$(GO) run ./cmd/fgsd $(ARGS)

# lint is the offline gate: go vet plus the repo's own determinism & safety
# multichecker (see DESIGN.md "Determinism contract & lint"). staticcheck and
# govulncheck are run by CI's lint job and locally only if installed.
lint: vet fgslint

vet:
	$(GO) vet ./...

fgslint:
	$(GO) run ./cmd/fgslint ./...

staticcheck:
	staticcheck ./...

govulncheck:
	govulncheck ./...

bench:
	$(GO) test -bench=. -benchmem -timeout 120m

# bench-ci mirrors CI's bench job: the performance-sensitive paths only,
# with the raw -json stream archived under a dated name for benchstat /
# bench-compare diffs. The pinned set covers selection (GreedyCover), the
# mining pipeline (SumGen*), the E_v^r cache, the matcher hot paths, and the
# graph substrate.
BENCH_CI_RE := BenchmarkGreedyCover|BenchmarkSumGen$$|BenchmarkSumGenParallel|BenchmarkErCacheHit|BenchmarkSumGenObs|BenchmarkMatchAtStar|BenchmarkMatchAtChain3|BenchmarkCoveredEdgesAt|BenchmarkErCacheGet|BenchmarkRHopEdges2|BenchmarkAddEdge|BenchmarkAddEdgeHighDegree|BenchmarkHasEdge

bench-ci:
	$(GO) test -json -run '^$$' -p 1 \
		-bench '$(BENCH_CI_RE)' \
		-benchmem ./internal/core/ ./internal/mining/ ./internal/pattern/ ./internal/graph/ \
		| tee "BENCH_$$(date -u +%F).json"

# bench-compare diffs two bench-ci JSON streams and fails on >15% time or
# alloc regressions: make bench-compare OLD=BENCH_2026-08-05.json NEW=BENCH_<date>.json
bench-compare:
	$(GO) run ./cmd/fgsbenchcmp -old $(OLD) -new $(NEW)

// Package leakcheck is a dependency-free goroutine-leak detector for tests.
// It snapshots the set of live goroutines when a test starts and, at test
// cleanup, fails the test if goroutines created since are still alive after
// a grace period.
//
// Usage, first thing in the test body:
//
//	func TestServerDrain(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
//
// Matching is by goroutine ID against the baseline snapshot, so goroutines
// that predate the test (the test runner's own, a sibling parallel test's)
// are never reported. Goroutines legitimately winding down at test end —
// HTTP keep-alive conns closing, worker pools draining after Shutdown — are
// absorbed by the retry loop: the check re-snapshots with exponential
// backoff and only fails if stragglers survive the full grace period.
// Everything is built on runtime.Stack; there is no dependency outside the
// standard library.
package leakcheck

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// grace is how long the cleanup check keeps retrying before declaring the
// surviving goroutines leaked. Long enough for connection teardown and
// drained workers to exit under -race on a loaded CI machine, short enough
// not to mask a genuine leak behind a timeout. A variable so the package's
// own tests can shrink it.
var grace = 5 * time.Second

// Check snapshots the live goroutines and registers a cleanup that fails t
// if goroutines created during the test outlive the grace period. Call it
// before the code under test starts anything.
func Check(t testing.TB) {
	t.Helper()
	baseline := ids(stacks())
	t.Cleanup(func() {
		var leaked []goroutineStack
		deadline := time.Now().Add(grace)
		for backoff := time.Millisecond; ; backoff *= 2 {
			leaked = leaked[:0]
			for _, g := range stacks() {
				if !baseline[g.id] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			if backoff > 100*time.Millisecond {
				backoff = 100 * time.Millisecond
			}
			time.Sleep(backoff)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine %d [%s]:\n%s", g.id, g.state, g.trace)
		}
		t.Errorf("leakcheck: %d goroutine(s) created by this test still running after %v", len(leaked), grace)
	})
}

// goroutineStack is one parsed block of runtime.Stack output.
type goroutineStack struct {
	id    int64
	state string // "running", "chan receive", ...
	trace string // the frames, without the goroutine header line
}

// stacks parses a full runtime.Stack dump into per-goroutine records,
// excluding the calling goroutine (always alive, never a leak).
func stacks() []goroutineStack {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutineStack
	self := currentID()
	for _, block := range strings.Split(string(buf), "\n\n") {
		g, ok := parseBlock(block)
		if !ok || g.id == self {
			continue
		}
		out = append(out, g)
	}
	return out
}

// parseBlock parses one "goroutine N [state]:\n frames..." block.
func parseBlock(block string) (goroutineStack, bool) {
	header, rest, found := strings.Cut(block, "\n")
	header = strings.TrimSpace(header)
	if !found || !strings.HasPrefix(header, "goroutine ") {
		return goroutineStack{}, false
	}
	fields := strings.SplitN(strings.TrimPrefix(header, "goroutine "), " ", 2)
	id, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return goroutineStack{}, false
	}
	state := ""
	if len(fields) == 2 {
		state = strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(fields[1]), "["), "]:")
	}
	return goroutineStack{id: id, state: state, trace: rest}, true
}

// currentID extracts the calling goroutine's ID from a single-goroutine
// stack dump (the only portable way to get it from the standard library).
// On an unparseable header it returns -1, which matches no goroutine; the
// caller then appears in the baseline and final snapshots alike and still
// cancels out of the diff.
func currentID() int64 {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	g, ok := parseBlock(string(buf))
	if !ok {
		return -1
	}
	return g.id
}

// ids reduces a snapshot to the set of goroutine IDs.
func ids(gs []goroutineStack) map[int64]bool {
	set := make(map[int64]bool, len(gs))
	for _, g := range gs {
		set[g.id] = true
	}
	return set
}

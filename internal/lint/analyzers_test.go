package lint

import "testing"

func TestMapOrder(t *testing.T) {
	runFixture(t, MapOrder, "maporder")
}

func TestDetRand(t *testing.T) {
	// One deterministic package (flagged), the exempt generator package
	// (clean), and the obs package (rand flagged, time.Now sanctioned) in the
	// same run.
	runFixture(t, DetRand, "detrand/internal/core", "detrand/internal/gen", "detrand/internal/obs")
}

func TestNoPanic(t *testing.T) {
	// A library package (flagged) and a main package (exempt) in the same run.
	runFixture(t, NoPanic, "nopanic", "nopanic/cmdfixture", "nopanic/httphandler")
}

func TestLockDiscipline(t *testing.T) {
	// The historical fixture mixes copy-check wants (lockdiscipline) with
	// pairing wants (now owned by pairdiscipline), so run both jointly.
	runFixtures(t, []*Analyzer{LockDiscipline, PairDiscipline}, "lockdiscipline")
}

func TestPairDiscipline(t *testing.T) {
	runFixture(t, PairDiscipline, "pairdiscipline")
}

func TestFrozenView(t *testing.T) {
	runFixture(t, FrozenView, "frozenview")
}

func TestErrDrop(t *testing.T) {
	// A library package (flagged) and a main package (exempt) in the same run.
	runFixture(t, ErrDrop, "errdrop", "errdrop/cmdfixture")
}

func TestCtxPoll(t *testing.T) {
	// The server package (in scope) and a library package (out of scope).
	runFixture(t, CtxPoll, "ctxpoll/internal/server", "ctxpoll/internal/other")
}

func TestAllowDirective(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow maporder keys feed a set", []string{"maporder"}},
		{"// lint:allow detrand timing only", []string{"detrand"}},
		{"//lint:allow nopanic,detrand shared reason", []string{"nopanic", "detrand"}},
		{"//lint:allow", nil},
		{"// just a comment", nil},
		{"//lint:disable maporder", nil},
	}
	for _, c := range cases {
		got := allowDirective(c.text)
		if len(got) != len(c.want) {
			t.Errorf("allowDirective(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("allowDirective(%q) = %v, want %v", c.text, got, c.want)
			}
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != 8 {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want 8, nil", len(all), err)
	}
	two, err := ByName("maporder, detrand")
	if err != nil || len(two) != 2 || two[0] != MapOrder || two[1] != DetRand {
		t.Fatalf("ByName(maporder, detrand) = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded, want error")
	}
}

func TestIsDeterministicPkg(t *testing.T) {
	cases := map[string]bool{
		"github.com/cwru-db/fgs/internal/core":      true,
		"github.com/cwru-db/fgs/internal/mining":    true,
		"detrand/internal/experiments":              true,
		"internal/pattern":                          true,
		"github.com/cwru-db/fgs/internal/obs":       true,
		"github.com/cwru-db/fgs/internal/gen":       false,
		"github.com/cwru-db/fgs/internal/corestuff": false,
		"github.com/cwru-db/fgs/internal/graph":     false,
	}
	if !isObsPkg("github.com/cwru-db/fgs/internal/obs") || isObsPkg("github.com/cwru-db/fgs/internal/core") {
		t.Error("isObsPkg misclassifies the sanctioned clock package")
	}
	for path, want := range cases {
		if got := isDeterministicPkg(path); got != want {
			t.Errorf("isDeterministicPkg(%q) = %v, want %v", path, got, want)
		}
	}
}

// Bitset iteration vs map iteration under maporder: a dense bitset yields IDs
// in ascending order by construction, so feeding an ordered sink straight
// from Iterate is deterministic and needs no neutralizing sort — the analyzer
// must stay quiet. The same accumulation driven by a map range is still
// flagged: the fix is to switch the set representation, not to sprinkle
// sorts.
package maporder

import "math/bits"

type edgeBits struct {
	words []uint64
}

func (b *edgeBits) iterate(f func(int)) {
	for w, bw := range b.words {
		base := w << 6
		for bw != 0 {
			f(base + bits.TrailingZeros64(bw))
			bw &= bw - 1
		}
	}
}

func uncoveredFromBits(remaining *edgeBits) []int {
	var out []int
	remaining.iterate(func(id int) { // ok: ascending-ID order, deterministic
		out = append(out, id)
	})
	return out
}

func uncoveredFromMap(remaining map[int]struct{}) []int {
	var out []int
	for id := range remaining { // want `map iteration order reaches append to out`
		out = append(out, id)
	}
	return out
}

package graph

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the substrate's hot paths: adjacency scans, the
// r-hop operators, and edge-set arithmetic.

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("user", map[string]string{"exp": "5"})
	}
	for i := 0; i < m; i++ {
		_ = g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), "e")
	}
	return g
}

func BenchmarkAddEdge(b *testing.B) {
	g := New()
	n := 1000
	for i := 0; i < n; i++ {
		g.AddNode("user", nil)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), "e")
	}
}

// BenchmarkAddEdgeHighDegree inserts onto one hub node whose out-list already
// holds tens of thousands of edges. The duplicate probe is an edgeIndex map
// lookup, so cost must stay flat in the hub's degree (it used to scan the
// adjacency list — O(deg) per insert, quadratic for this loop).
func BenchmarkAddEdgeHighDegree(b *testing.B) {
	g := New()
	hub := g.AddNode("hub", nil)
	const fanout = 50000
	for i := 0; i < fanout; i++ {
		g.AddNode("user", nil)
	}
	for i := 0; i < fanout; i++ {
		_ = g.AddEdge(hub, NodeID(i+1), "e")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate duplicate probes (hit) and fresh inserts followed by
		// removal (miss) so both paths stay high-degree.
		_ = g.AddEdge(hub, NodeID(i%fanout+1), "e")
		if err := g.AddEdge(NodeID(i%fanout+1), hub, "back"); err == nil && i%2 == 0 {
			_ = g.RemoveEdge(NodeID(i%fanout+1), hub, "back")
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 2000, 8000)
	lid, _ := g.EdgeLabelID("e")
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(rng.Intn(2000)), NodeID(rng.Intn(2000)), lid)
	}
}

func BenchmarkRHopNodes2(b *testing.B) {
	g := benchGraph(b, 5000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RHopNodes(NodeID(i%5000), 2)
	}
}

func BenchmarkRHopEdges2(b *testing.B) {
	g := benchGraph(b, 5000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RHopEdges(NodeID(i%5000), 2)
	}
}

// BenchmarkBuildPartition measures the per-epoch cost of the focus-region
// partitioner: seeded center selection, multi-source BFS assignment, and the
// compacted per-shard slice builds (DESIGN.md §14). This is the price paid
// once per published epoch, amortized over every request served at it.
func BenchmarkBuildPartition(b *testing.B) {
	g := benchGraph(b, 5000, 20000)
	focus := make([]NodeID, 0, 500)
	for v := 0; v < 5000; v += 10 {
		focus = append(focus, NodeID(v))
	}
	cfg := PartitionConfig{Shards: 8, R: 2, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildPartition(g, focus, cfg)
	}
}

func BenchmarkEdgeSetMinus(b *testing.B) {
	g := benchGraph(b, 2000, 8000)
	a := g.RHopEdges(0, 3)
	c := g.RHopEdges(1, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Minus(c)
	}
}

// Fixture for pairdiscipline's partition-build singleflight: the
// partitionSlot.beginBuild shape from internal/server, whose result is a
// release func that must run on every path so the slot frees for the next
// builder. errIdx 1 is understood: on the err != nil branch the slot was
// never taken.
package pairdiscipline

import "errors"

type regionsT struct{ shards int }

type partitionSlot struct {
	busy bool
}

var errBusy = errors.New("partition build already in flight")

func (ps *partitionSlot) beginBuild() (func(), error) {
	if ps.busy {
		return nil, errBusy
	}
	ps.busy = true
	return func() { ps.busy = false }, nil
}

func okBuild(ps *partitionSlot) *regionsT {
	release, err := ps.beginBuild()
	if err != nil {
		return nil
	}
	defer release()
	return &regionsT{shards: 8}
}

func okBuildBusy(ps *partitionSlot) error {
	release, err := ps.beginBuild()
	if errors.Is(err, errBusy) {
		return err
	}
	if err != nil {
		return err
	}
	release()
	return nil
}

func leakBuild(ps *partitionSlot, cond bool) {
	release, err := ps.beginBuild() // want `ps\.beginBuild\(\): partition beginBuild/release acquired here is not released`
	if err != nil {
		return
	}
	if cond {
		return
	}
	release()
}

func discardBuild(ps *partitionSlot) {
	ps.beginBuild() // want `ps\.beginBuild\(\): result of partition beginBuild/release is discarded`
}

func okBuildHandoff(ps *partitionSlot) (func(), error) {
	return ps.beginBuild() // ok: caller owns the release now
}

package server

import (
	"github.com/cwru-db/fgs/internal/leakcheck"

	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// e2eRequests is the concurrent phase's request set: 64 mixed requests —
// reads plus no-op writes (inserts between nonexistent nodes fail with a
// deterministic 400 and never advance the epoch), so every request's
// response is independent of interleaving and the whole phase is
// reproducible byte-for-byte.
func e2eRequests() []struct{ path, body string } {
	reqs := make([]struct{ path, body string }, 0, 64)
	add := func(path, body string) {
		reqs = append(reqs, struct{ path, body string }{path, body})
	}
	for i := 0; i < 16; i++ {
		switch i % 4 {
		case 0:
			add("/v1/summarize", `{"n":4}`)
			add("/v1/summarize", `{"n":5}`)
			add("/v1/view", `{"pattern":"n 0 user\nf 0"}`)
			add("/v1/update", `{"insert":[{"from":100000,"to":100001,"label":"corev"}]}`)
		case 1:
			add("/v1/summarize-k", `{"k":2,"n":4}`)
			add("/v1/workload", ``)
			add("/v1/view", `{"pattern":"n 0 user\nn 1 user\ne 1 0 corev\nf 0"}`)
			add("/v1/summarize", `{"n":4}`)
		case 2:
			add("/v1/summarize", `{"n":6}`)
			add("/v1/view", `{"pattern":"n 0 user\nf 0"}`)
			add("/v1/update", `{"delete":[{"from":100000,"to":100001,"label":"corev"}]}`)
			add("/v1/workload", ``)
		default:
			add("/v1/summarize", `{"n":5}`)
			add("/v1/summarize-k", `{"k":3,"n":6}`)
			add("/v1/view", `{"pattern":"n 0 user\nn 1 user\ne 0 1 corev\nf 0"}`)
			add("/v1/summarize", `{"n":4}`)
		}
	}
	return reqs
}

// fireConcurrent sends all requests from 16 client goroutines and returns
// the response bodies indexed by request position.
func fireConcurrent(t *testing.T, ts *httptest.Server) [][]byte {
	t.Helper()
	reqs := e2eRequests()
	bodies := make([][]byte, len(reqs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(reqs) {
					return
				}
				resp, body := post(t, ts, reqs[i].path, reqs[i].body)
				if resp.StatusCode != 200 && resp.StatusCode != 400 {
					t.Errorf("req %d %s: status %d (%s)", i, reqs[i].path, resp.StatusCode, body)
				}
				bodies[i] = body
			}
		}()
	}
	wg.Wait()
	return bodies
}

// TestE2EConcurrentDeterministicService is the acceptance test of the
// serving layer (ISSUE: fgsd): boot on an httptest listener, fire 64
// concurrent mixed read/write requests, and require the full response
// transcript to be byte-identical across two runs against identically
// initialized servers. Then, sequentially: repeated identical requests hit
// the cache; a graph-changing write bumps the epoch and makes every cached
// entry unreachable; a saturated semaphore yields 503 + Retry-After; and
// draining completes in-flight work while refusing new work.
func TestE2EConcurrentDeterministicService(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("e2e test skipped in -short")
	}
	cfg := Config{Workers: 8, QueueDepth: 128}

	_, ts1 := newTestServer(t, cfg)
	run1 := fireConcurrent(t, ts1)
	s2, ts2 := newTestServer(t, cfg)
	run2 := fireConcurrent(t, ts2)
	reqs := e2eRequests()
	for i := range run1 {
		if !bytes.Equal(run1[i], run2[i]) {
			t.Errorf("req %d (%s %s): runs differ:\n  %s\n  %s",
				i, reqs[i].path, reqs[i].body, run1[i], run2[i])
		}
	}

	// The concurrent phase issued {"n":4} summarize five times: at least one
	// must have been served from the cache, and no write bumped the epoch.
	if s2.Epoch() != 0 {
		t.Fatalf("no-op writes advanced the epoch to %d", s2.Epoch())
	}
	resp, body := get(t, ts2, "/v1/stats")
	wantStatus(t, resp, body, 200)
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 {
		t.Fatal("repeated identical requests produced no cache hit")
	}

	// A real write invalidates: epoch moves, the same read recomputes.
	resp, body = post(t, ts2, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, 200)
	if resp.Header.Get("X-Fgs-Cache") != "hit" {
		t.Fatal("warm entry missed before the write")
	}
	resp, body = post(t, ts2, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, 200)
	if s2.Epoch() != 1 {
		t.Fatalf("epoch = %d after a real insert", s2.Epoch())
	}
	resp, body = post(t, ts2, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, 200)
	if resp.Header.Get("X-Fgs-Cache") == "hit" {
		t.Fatal("stale entry served after the write")
	}
	var sr SummarizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Epoch != 1 {
		t.Fatalf("post-write summarize reported epoch %d", sr.Epoch)
	}
}

// TestE2ESaturationBackpressure: with one worker slot and no queue, a held
// slot makes the next arrival fail fast with 503 + Retry-After.
func TestE2ESaturationBackpressure(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	s.adm.slots <- struct{}{}
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, 503)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 lacks Retry-After")
	}
	<-s.adm.slots
	resp, body = post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, 200)
}

// TestE2EDrainCompletesInFlight holds a request inside the compute section
// via the test hook, starts the drain, and checks the three drain
// guarantees: health flips to 503, new compute is refused, and the in-flight
// request still completes with 200.
func TestE2EDrainCompletesInFlight(t *testing.T) {
	leakcheck.Check(t)
	g, groups := testGraph(t)
	s, err := New(g, groups, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHook = func(string) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
		done <- result{resp.StatusCode, body}
	}()
	<-entered
	s.StartDrain()
	assertDrainingServer(t, ts)
	close(release)
	r := <-done
	if r.status != 200 {
		t.Fatalf("in-flight request during drain: status %d (%s)", r.status, r.body)
	}
	var sr SummarizeResponse
	if err := json.Unmarshal(r.body, &sr); err != nil || len(sr.Summary) == 0 {
		t.Fatalf("in-flight response body %q (%v)", r.body, err)
	}
}

package graph_test

import (
	"testing"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
)

// focusOf returns a deterministic focus set: every node carrying the label.
func focusOf(g *graph.Graph, label string) []graph.NodeID {
	return append([]graph.NodeID(nil), g.NodesWithLabel(label)...)
}

// requireSamePartition asserts two partitions over the same graph are
// identical: shard count, per-shard owned sets, member lists, and edge maps.
func requireSamePartition(t *testing.T, a, b *graph.Partition) {
	t.Helper()
	if a.NumShards() != b.NumShards() {
		t.Fatalf("shard counts differ: %d vs %d", a.NumShards(), b.NumShards())
	}
	for s := 0; s < a.NumShards(); s++ {
		sa, sb := a.Shard(s), b.Shard(s)
		if len(sa.Owned()) != len(sb.Owned()) {
			t.Fatalf("shard %d owned counts differ: %d vs %d", s, len(sa.Owned()), len(sb.Owned()))
		}
		for i := range sa.Owned() {
			if sa.Owned()[i] != sb.Owned()[i] {
				t.Fatalf("shard %d owned[%d] differs: %d vs %d", s, i, sa.Owned()[i], sb.Owned()[i])
			}
		}
		if sa.NumNodes() != sb.NumNodes() || sa.NumEdges() != sb.NumEdges() {
			t.Fatalf("shard %d sizes differ: (%d,%d) vs (%d,%d)", s, sa.NumNodes(), sa.NumEdges(), sb.NumNodes(), sb.NumEdges())
		}
		for lv := 0; lv < sa.NumNodes(); lv++ {
			if sa.GlobalNode(graph.NodeID(lv)) != sb.GlobalNode(graph.NodeID(lv)) {
				t.Fatalf("shard %d node map differs at local %d", s, lv)
			}
		}
		for le := 0; le < sa.NumEdges(); le++ {
			if sa.GlobalEdge(graph.EdgeID(le)) != sb.GlobalEdge(graph.EdgeID(le)) {
				t.Fatalf("shard %d edge map differs at local %d", s, le)
			}
		}
	}
}

// TestPartitionDeterminism is the fuzz half of the determinism contract:
// for a spread of seeds, graphs, and shard counts, building the partition
// twice yields the identical shard assignment, member lists, and ID maps.
func TestPartitionDeterminism(t *testing.T) {
	for _, gseed := range []int64{3, 11, 29} {
		g := gen.LKI(gseed, 1)
		focus := focusOf(g, "user")
		for _, shards := range []int{1, 2, 4, 8} {
			for _, pseed := range []uint64{0, 1, 0xfeedface} {
				cfg := graph.PartitionConfig{Shards: shards, R: 2, Seed: pseed}
				requireSamePartition(t, graph.BuildPartition(g, focus, cfg), graph.BuildPartition(g, focus, cfg))
			}
		}
	}
}

// TestPartitionOwnership: every focus node is owned by exactly one shard,
// the per-shard owned lists are disjoint and ascending, and their union is
// the deduplicated focus set.
func TestPartitionOwnership(t *testing.T) {
	g := gen.LKI(5, 1)
	focus := focusOf(g, "user")
	p := graph.BuildPartition(g, focus, graph.PartitionConfig{Shards: 4, R: 2, Seed: 7})
	seen := make(map[graph.NodeID]int)
	total := 0
	for s := 0; s < p.NumShards(); s++ {
		owned := p.Shard(s).Owned()
		for i, v := range owned {
			if i > 0 && owned[i-1] >= v {
				t.Fatalf("shard %d owned list not strictly ascending at %d", s, i)
			}
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d owned by shards %d and %d", v, prev, s)
			}
			seen[v] = s
			os, lv, ok := p.Owner(v)
			if !ok || os != s || p.Shard(s).GlobalNode(lv) != v {
				t.Fatalf("Owner(%d) = (%d,%d,%v), want shard %d", v, os, lv, ok, s)
			}
			total++
		}
	}
	if total != len(focus) {
		t.Fatalf("owned %d focus nodes, want %d", total, len(focus))
	}
	if _, _, ok := p.Owner(graph.NodeID(g.NumNodes())); ok {
		t.Fatal("Owner claimed a node outside the graph")
	}
}

// TestShardSliceStructure verifies each compacted slice is the induced
// subgraph of its member set with the parent's per-node adjacency order
// preserved, labels and attributes intact, and edge maps that round-trip to
// the parent's edge identities.
func TestShardSliceStructure(t *testing.T) {
	g := gen.LKI(17, 1)
	p := graph.BuildPartition(g, focusOf(g, "user"), graph.PartitionConfig{Shards: 4, R: 2, Seed: 3})
	for s := 0; s < p.NumShards(); s++ {
		sh := p.Shard(s)
		sg := sh.Graph()
		inSlice := make(map[graph.NodeID]graph.NodeID, sh.NumNodes())
		for lv := 0; lv < sh.NumNodes(); lv++ {
			inSlice[sh.GlobalNode(graph.NodeID(lv))] = graph.NodeID(lv)
		}
		for lv := 0; lv < sh.NumNodes(); lv++ {
			gv := sh.GlobalNode(graph.NodeID(lv))
			if sg.LabelOf(graph.NodeID(lv)) != g.LabelOf(gv) {
				t.Fatalf("shard %d node %d: label %q vs %q", s, lv, sg.LabelOf(graph.NodeID(lv)), g.LabelOf(gv))
			}
			la, ga := sg.Attrs(graph.NodeID(lv)), g.Attrs(gv)
			if len(la) != len(ga) {
				t.Fatalf("shard %d node %d: attr counts differ", s, lv)
			}
			// Out-adjacency must be the parent's, filtered to members, in the
			// parent's order — the invariant EmbedCap determinism rides on.
			want := make([]graph.Edge, 0)
			for _, e := range g.Out(gv) {
				if lt, ok := inSlice[e.To]; ok {
					want = append(want, graph.Edge{To: lt, Label: e.Label})
				}
			}
			got := sg.Out(graph.NodeID(lv))
			if len(got) != len(want) {
				t.Fatalf("shard %d node %d: out degree %d vs %d", s, lv, len(got), len(want))
			}
			for i := range got {
				if got[i].To != want[i].To || got[i].Label != want[i].Label {
					t.Fatalf("shard %d node %d: out[%d] order mismatch", s, lv, i)
				}
				// Local edge ID must map to the parent edge with the same
				// endpoints and label.
				ref := g.EdgeRefOf(sh.GlobalEdge(got[i].ID))
				if ref.From != gv || inSlice[ref.To] != got[i].To || ref.Label != got[i].Label {
					t.Fatalf("shard %d node %d: edge map broken for local edge %d", s, lv, got[i].ID)
				}
			}
		}
	}
}

// TestShardPreservesNeighborhoods is the distance-preservation invariant
// behind the byte-identity argument: for every owned focus node, the
// shard-local E_v^r translated to global edge IDs equals the parent's E_v^r
// — including across shard boundaries where balls overlap.
func TestShardPreservesNeighborhoods(t *testing.T) {
	g := gen.LKI(23, 1)
	const r = 2
	p := graph.BuildPartition(g, focusOf(g, "user"), graph.PartitionConfig{Shards: 8, R: r, Seed: 5})
	checked := 0
	for s := 0; s < p.NumShards(); s++ {
		sh := p.Shard(s)
		for i, gv := range sh.Owned() {
			want := g.RHopEdgeBits(gv, r)
			local := sh.Graph().RHopEdgeBits(sh.OwnedLocal()[i], r)
			if local.Count() != want.Count() {
				t.Fatalf("shard %d node %d: |E_v^r| local %d vs global %d", s, gv, local.Count(), want.Count())
			}
			local.Iterate(func(id graph.EdgeID) {
				if !want.Has(sh.GlobalEdge(id)) {
					t.Fatalf("shard %d node %d: local E_v^r has edge absent globally", s, gv)
				}
			})
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no owned focus nodes checked")
	}
}

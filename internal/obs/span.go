package obs

import (
	"sync"
	"time"
)

// Trace is an append-only log of hierarchical spans sharing one clock and
// one epoch. It is safe for concurrent use: the parallel engine's workers
// and several pipeline runs may record into the same trace.
type Trace struct {
	clock Clock
	epoch time.Time

	mu   sync.Mutex
	recs []SpanRecord
}

// SpanRecord is one completed (or still-open) span, positioned relative to
// the trace epoch.
type SpanRecord struct {
	// Name identifies the operation ("apxfgs", "select", "mine", ...).
	Name string
	// Parent is the index of the parent record in the trace, -1 for roots.
	Parent int32
	// Start is the offset from the trace epoch.
	Start time.Duration
	// Dur is the measured duration; valid only once Done.
	Dur time.Duration
	// Done reports whether End has run.
	Done bool
	// Args are optional integer annotations (candidate counts, sizes, ...).
	Args []SpanArg
}

// SpanArg is one integer annotation on a span.
type SpanArg struct {
	Key string
	Val int64
}

// NewTrace returns an empty trace whose epoch is clock.Now() (nil clock =
// the system clock).
func NewTrace(clock Clock) *Trace {
	if clock == nil {
		clock = System()
	}
	return &Trace{clock: clock, epoch: clock.Now()}
}

// Clock returns the trace's clock.
func (t *Trace) Clock() Clock {
	if t == nil {
		return System()
	}
	return t.clock
}

// Span is a lightweight handle on one trace record. The zero value (and any
// span started on a nil trace) is inert: Child returns another inert span,
// End returns 0, SetArg does nothing — all without allocating.
type Span struct {
	t  *Trace
	id int32
}

// Start opens a root span. Nil-safe: on a nil trace it returns an inert
// span without reading the clock.
func (t *Trace) Start(name string) Span { return t.startSpan(name, -1) }

func (t *Trace) startSpan(name string, parent int32) Span {
	if t == nil {
		return Span{id: -1}
	}
	now := t.clock.Now()
	t.mu.Lock()
	id := int32(len(t.recs))
	t.recs = append(t.recs, SpanRecord{Name: name, Parent: parent, Start: now.Sub(t.epoch)})
	t.mu.Unlock()
	return Span{t: t, id: id}
}

// Child opens a span nested under s.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{id: -1}
	}
	return s.t.startSpan(name, s.id)
}

// End closes the span and returns its measured duration.
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	now := s.t.clock.Now()
	s.t.mu.Lock()
	rec := &s.t.recs[s.id]
	rec.Dur = now.Sub(s.t.epoch) - rec.Start
	rec.Done = true
	d := rec.Dur
	s.t.mu.Unlock()
	return d
}

// SetArg attaches an integer annotation to the span.
func (s Span) SetArg(key string, val int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.recs[s.id]
	rec.Args = append(rec.Args, SpanArg{Key: key, Val: val})
	s.t.mu.Unlock()
}

// ID returns the span's record index in its trace, or -1 for inert spans.
func (s Span) ID() int32 { return s.id }

// Records returns a copy of every span recorded so far.
func (t *Trace) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.recs))
	copy(out, t.recs)
	for i := range out {
		if len(out[i].Args) > 0 {
			out[i].Args = append([]SpanArg(nil), out[i].Args...)
		}
	}
	return out
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

package submod

import (
	"fmt"
	"math"

	"github.com/cwru-db/fgs/internal/graph"
)

// The paper expresses fairness as per-group coverage ranges [l_i, u_i] and
// names two policies from the literature: equal opportunity [16] and
// disparate-impact style proportionality [13]. Its conclusion lists "more
// types of fairness constraints" as future work; the constructors below
// implement the standard ones so users do not hand-compute bounds.

// EqualOpportunity returns a copy of the groups with bounds that force a
// (near-)equal share of the budget n per group: every group gets
// [floor(n/card) - slack, ceil(n/card) + slack], clamped to the group size.
// This is the [40,60]-style constraint of the paper's experiments.
func EqualOpportunity(groups []Group, n, slack int) ([]Group, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("submod: no groups")
	}
	share := n / len(groups)
	lo := share - slack
	hi := (n+len(groups)-1)/len(groups) + slack
	if lo < 0 {
		lo = 0
	}
	out := make([]Group, len(groups))
	for i, g := range groups {
		g.Lower = lo
		g.Upper = hi
		if g.Upper > len(g.Members) {
			g.Upper = len(g.Members)
		}
		if g.Lower > g.Upper {
			return nil, fmt.Errorf("submod: group %q too small for equal share %d", g.Name, lo)
		}
		out[i] = g
	}
	return out, nil
}

// Proportional returns a copy of the groups with bounds proportional to the
// groups' population shares, within a tolerance alpha ∈ [0,1):
//
//	l_i = floor((1-alpha) · p_i · n),  u_i = ceil((1+alpha) · p_i · n)
//
// with p_i the group's fraction of all group members. alpha = 0.2 yields the
// classic 80%-rule (disparate impact [13]) flavor of proportionality.
func Proportional(groups []Group, n int, alpha float64) ([]Group, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("submod: alpha %v out of [0,1)", alpha)
	}
	total := 0
	for _, g := range groups {
		total += len(g.Members)
	}
	if total == 0 {
		return nil, fmt.Errorf("submod: empty groups")
	}
	out := make([]Group, len(groups))
	sumLower := 0
	for i, g := range groups {
		p := float64(len(g.Members)) / float64(total)
		g.Lower = int(math.Floor((1 - alpha) * p * float64(n)))
		g.Upper = int(math.Ceil((1 + alpha) * p * float64(n)))
		if g.Upper > len(g.Members) {
			g.Upper = len(g.Members)
		}
		if g.Lower > g.Upper {
			g.Lower = g.Upper
		}
		sumLower += g.Lower
		out[i] = g
	}
	if sumLower > n {
		return nil, fmt.Errorf("submod: proportional lower bounds sum to %d > n=%d", sumLower, n)
	}
	return out, nil
}

// AttributeDiversity is a monotone submodular utility that counts the
// distinct values of an attribute among the selected nodes — selecting for
// breadth (e.g. distinct cities, industries, venues) rather than influence.
type AttributeDiversity struct {
	g    *graph.Graph
	key  int32
	ok   bool
	cur  graph.NodeSet
	refs map[int32]int
}

// NewAttributeDiversity builds the utility over the given attribute key.
// Nodes without the attribute contribute nothing.
func NewAttributeDiversity(g *graph.Graph, attrKey string) *AttributeDiversity {
	ad := &AttributeDiversity{g: g, cur: graph.NewNodeSet(0), refs: make(map[int32]int)}
	ad.key, ad.ok = g.AttrKeyID(attrKey)
	return ad
}

func (ad *AttributeDiversity) valueOf(v graph.NodeID) (int32, bool) {
	if !ad.ok {
		return 0, false
	}
	return ad.g.AttrValue(v, ad.key)
}

// Marginal implements Utility.
func (ad *AttributeDiversity) Marginal(v graph.NodeID) float64 {
	if ad.cur.Has(v) {
		return 0
	}
	if val, ok := ad.valueOf(v); ok && ad.refs[val] == 0 {
		return 1
	}
	return 0
}

// Add implements Utility.
func (ad *AttributeDiversity) Add(v graph.NodeID) {
	if ad.cur.Has(v) {
		return
	}
	ad.cur.Add(v)
	if val, ok := ad.valueOf(v); ok {
		ad.refs[val]++
	}
}

// Remove implements Utility.
func (ad *AttributeDiversity) Remove(v graph.NodeID) {
	if !ad.cur.Has(v) {
		return
	}
	ad.cur.Remove(v)
	if val, ok := ad.valueOf(v); ok {
		if ad.refs[val]--; ad.refs[val] == 0 {
			delete(ad.refs, val)
		}
	}
}

// Value implements Utility.
func (ad *AttributeDiversity) Value() float64 { return float64(len(ad.refs)) }

// Reset implements Utility.
func (ad *AttributeDiversity) Reset() {
	ad.cur = graph.NewNodeSet(0)
	ad.refs = make(map[int32]int)
}

// Clone implements Utility.
func (ad *AttributeDiversity) Clone() Utility {
	return &AttributeDiversity{g: ad.g, key: ad.key, ok: ad.ok, cur: graph.NewNodeSet(0), refs: make(map[int32]int)}
}

package server

import (
	"bytes"
	"net/http"
	"testing"

	"github.com/cwru-db/fgs/internal/obs"
)

// TestDeterminismAcrossShardCounts runs the canonical request script —
// including graph-changing writes, so partitions are rebuilt across epochs —
// against unpartitioned, 2-shard, and 8-shard-with-workers servers. Every
// response body must be byte-identical: partitioning is a throughput lever,
// never a semantic one.
func TestDeterminismAcrossShardCounts(t *testing.T) {
	_, plain := newTestServer(t, Config{})
	_, sharded2 := newTestServer(t, Config{Shards: 2})
	_, sharded8 := newTestServer(t, Config{Shards: 8, Workers: 8})
	a := runScript(t, plain)
	b := runScript(t, sharded2)
	c := runScript(t, sharded8)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("step %d (%s %s): shards 0 vs 2 differ:\n  %s\n  %s",
				i, determinismScript[i].path, determinismScript[i].body, a[i], b[i])
		}
		if !bytes.Equal(a[i], c[i]) {
			t.Errorf("step %d (%s %s): shards 0 vs 8 differ:\n  %s\n  %s",
				i, determinismScript[i].path, determinismScript[i].body, a[i], c[i])
		}
	}
}

// TestDeterminismShardsAcrossReadModes: locked mode never partitions (the
// live graph mutates under readers), yet with Shards set both modes must
// keep producing identical bytes — the sharded mvcc path against the
// unpartitioned locked path.
func TestDeterminismShardsAcrossReadModes(t *testing.T) {
	_, mvcc := newTestServer(t, Config{Shards: 4, ReadMode: ReadModeMVCC})
	_, locked := newTestServer(t, Config{Shards: 4, ReadMode: ReadModeLocked})
	a := runScript(t, mvcc)
	b := runScript(t, locked)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("step %d (%s %s): sharded mvcc vs locked differ:\n  %s\n  %s",
				i, determinismScript[i].path, determinismScript[i].body, a[i], b[i])
		}
	}
}

// TestPartitionStage asserts the partition stage surfaces in Server-Timing
// exactly when sharding is active: present on a sharded mvcc summarize
// (epoch 0's partition is built at boot, so the stage is a cache hit),
// present again after a write publishes a new epoch, and absent when shards
// are off or the read mode is locked.
func TestPartitionStage(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4, CacheEntries: -1})

	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	st := obs.ParseServerTiming(resp.Header.Get("Server-Timing"))
	if _, ok := st["partition"]; !ok {
		t.Errorf("sharded summarize Server-Timing %q missing partition stage", resp.Header.Get("Server-Timing"))
	}

	// Cross an epoch: the new view's partition is rebuilt (async at publish
	// or inline by this request) and the stage still reports.
	resp, body = post(t, ts, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, http.StatusOK)
	resp, body = post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	st = obs.ParseServerTiming(resp.Header.Get("Server-Timing"))
	if _, ok := st["partition"]; !ok {
		t.Errorf("post-update Server-Timing %q missing partition stage", resp.Header.Get("Server-Timing"))
	}

	for name, cfg := range map[string]Config{
		"shards off":  {CacheEntries: -1},
		"locked mode": {Shards: 4, ReadMode: ReadModeLocked, CacheEntries: -1},
	} {
		_, off := newTestServer(t, cfg)
		resp, body := post(t, off, "/v1/summarize", `{"n":4}`)
		wantStatus(t, resp, body, http.StatusOK)
		if _, ok := obs.ParseServerTiming(resp.Header.Get("Server-Timing"))["partition"]; ok {
			t.Errorf("%s: Server-Timing %q reports a partition stage", name, resp.Header.Get("Server-Timing"))
		}
	}
}

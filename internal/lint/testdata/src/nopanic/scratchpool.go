// Scratch-pool shapes under nopanic: the acquire/release cycle grows buffers
// and handles epoch wrap with clear() — no panics needed anywhere, so the
// whole file must be diagnostic-free. The comma-ok type assertion on
// pool.Get() is the sanctioned form; a bare assertion would crash on a
// poisoned pool instead of recovering with a fresh buffer.
package nopanic

import "sync"

type scratch struct {
	stamp []uint32
	epoch uint32
}

type engine struct {
	nodes int
	pool  sync.Pool
}

func (e *engine) acquire() *scratch {
	s, _ := e.pool.Get().(*scratch)
	if s == nil {
		s = &scratch{}
	}
	if len(s.stamp) < e.nodes {
		grown := make([]uint32, e.nodes)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	return s
}

func (e *engine) release(s *scratch) { e.pool.Put(s) }

func (e *engine) reachable(adj [][]int, root int) int {
	s := e.acquire()
	defer e.release(s)
	s.stamp[root] = s.epoch
	frontier := []int{root}
	n := 1
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, u := range adj[v] {
				if s.stamp[u] == s.epoch {
					continue
				}
				s.stamp[u] = s.epoch
				n++
				next = append(next, u)
			}
		}
		frontier = next
	}
	return n
}

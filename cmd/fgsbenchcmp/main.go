// Command fgsbenchcmp diffs two `go test -json -bench` streams (the
// BENCH_<date>.json artifacts of `make bench-ci`) and flags regressions on
// the pinned benchmarks: any benchmark present in both files whose time/op
// or allocs/op grew by more than -threshold (default 15%) fails the run.
//
// Usage:
//
//	fgsbenchcmp -old BENCH_2026-08-05.json -new BENCH_2026-09-01.json
//	fgsbenchcmp -summarize BENCH_2026-09-01.json > bench-summary.json
//
// Improvements are reported too (speedup factor), so the same output doubles
// as the evidence trail for performance PRs. Exit status is 1 when at least
// one regression exceeds the threshold, 0 otherwise.
//
// -summarize condenses one raw test2json stream (megabytes of events) into a
// compact sorted JSON array of {name, ns_per_op, bytes_per_op, allocs_per_op}
// — the machine-readable artifact bench-ci publishes for dashboards and for
// cheap cross-run storage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's output events we consume.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one parsed benchmark line.
type result struct {
	name     string  // package-qualified, CPU suffix stripped
	nsPerOp  float64 // ns/op
	allocsOp float64 // allocs/op; -1 when the line carried none
	bytesOp  float64 // B/op; -1 when absent
}

// benchLine matches e.g.
//
//	BenchmarkMatchAtStar-8   42813   27405 ns/op   7284 B/op   14 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// parse reads a go test -json stream and returns results keyed by
// package-qualified benchmark name. test2json emits a benchmark result as
// *two* output events — the name when the benchmark starts ("BenchmarkX-8
// \t") and the measurements when it finishes — so the stream is first
// reassembled into complete text lines per package, then matched. Repeated
// runs of one benchmark keep the last measurement (bench-ci runs each
// exactly once).
func parse(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	text := make(map[string]*strings.Builder) // package -> concatenated output
	var pkgs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil || ev.Action != "output" {
			continue
		}
		b, ok := text[ev.Package]
		if !ok {
			b = &strings.Builder{}
			text[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for _, pkg := range pkgs {
		for _, line := range strings.Split(text[pkg].String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := result{name: pkg + "." + m[1], nsPerOp: ns, allocsOp: -1, bytesOp: -1}
			rest := strings.Fields(m[3])
			for i := 0; i+1 < len(rest); i += 2 {
				v, err := strconv.ParseFloat(rest[i], 64)
				if err != nil {
					continue
				}
				switch rest[i+1] {
				case "allocs/op":
					r.allocsOp = v
				case "B/op":
					r.bytesOp = v
				}
			}
			out[r.name] = r
		}
	}
	return out, nil
}

// delta returns the relative change new/old - 1 in percent; old == 0 maps to
// 0 so absent/zero counters never divide by zero.
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV/oldV - 1) * 100
}

// summarize condenses one raw stream into the compact JSON artifact on
// stdout: a sorted array of per-benchmark measurements.
func summarize(path string) error {
	res, err := parse(path)
	if err != nil {
		return err
	}
	// Pointer fields distinguish "measured 0" from "line carried no -benchmem
	// counters" — omitempty on a plain float64 would drop a real zero.
	type entry struct {
		Name        string   `json:"name"`
		NsPerOp     float64  `json:"ns_per_op"`
		BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
		AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	}
	names := make([]string, 0, len(res))
	for name := range res {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		r := res[name]
		e := entry{Name: name, NsPerOp: r.nsPerOp}
		if b := r.bytesOp; b >= 0 {
			e.BytesPerOp = &b
		}
		if a := r.allocsOp; a >= 0 {
			e.AllocsPerOp = &a
		}
		entries = append(entries, e)
	}
	out := struct {
		Source     string  `json:"source"`
		Count      int     `json:"count"`
		Benchmarks []entry `json:"benchmarks"`
	}{Source: path, Count: len(entries), Benchmarks: entries}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_<date>.json (required)")
	newPath := flag.String("new", "", "candidate BENCH_<date>.json (required)")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent on time/op and allocs/op")
	sumPath := flag.String("summarize", "", "emit a compact JSON summary of one BENCH_<date>.json to stdout instead of diffing")
	flag.Parse()
	if *sumPath != "" {
		if err := summarize(*sumPath); err != nil {
			fmt.Fprintf(os.Stderr, "fgsbenchcmp: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: fgsbenchcmp -old OLD.json -new NEW.json [-threshold 15] | fgsbenchcmp -summarize BENCH.json")
		os.Exit(2)
	}
	oldRes, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgsbenchcmp: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgsbenchcmp: %v\n", err)
		os.Exit(2)
	}

	var names []string
	for name := range oldRes {
		if _, ok := newRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "fgsbenchcmp: no common benchmarks between the two files")
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-78s %12s %12s %9s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "time Δ", "old allocs", "new allocs", "alloc Δ")
	regressions := 0
	for _, name := range names {
		o, n := oldRes[name], newRes[name]
		td := delta(o.nsPerOp, n.nsPerOp)
		mark := ""
		if td > *threshold {
			mark = "  REGRESSION(time)"
			regressions++
		} else if o.nsPerOp > 0 && n.nsPerOp > 0 && o.nsPerOp/n.nsPerOp >= 2 {
			mark = fmt.Sprintf("  %.1fx faster", o.nsPerOp/n.nsPerOp)
		}
		allocStr := func(v float64) string {
			if v < 0 {
				return "-"
			}
			return strconv.FormatFloat(v, 'f', -1, 64)
		}
		ad := 0.0
		if o.allocsOp >= 0 && n.allocsOp >= 0 {
			ad = delta(o.allocsOp, n.allocsOp)
			if ad > *threshold && n.allocsOp-o.allocsOp >= 1 {
				mark += "  REGRESSION(allocs)"
				regressions++
			}
		}
		fmt.Fprintf(w, "%-78s %12.1f %12.1f %8.1f%% %10s %10s %7.1f%%%s\n",
			name, o.nsPerOp, n.nsPerOp, td, allocStr(o.allocsOp), allocStr(n.allocsOp), ad, mark)
	}
	fmt.Fprintf(w, "\n%d common benchmarks, %d regression(s) over %.0f%%\n", len(names), regressions, *threshold)
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "fgsbenchcmp: writing report:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}

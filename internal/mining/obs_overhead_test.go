package mining

import (
	"fmt"
	"testing"

	"github.com/cwru-db/fgs/internal/obs"
)

// TestErCacheHitZeroAlloc pins the instrumentation cost contract: the
// always-on hit/miss counters are plain int64s under the shard mutex the Get
// already takes, so a cache hit must not allocate.
func TestErCacheHitZeroAlloc(t *testing.T) {
	g, anchors := benchNetwork(t, 500)
	er := NewErCache(g, 2)
	v := anchors[0]
	er.Get(v) // populate: subsequent Gets are hits
	if allocs := testing.AllocsPerRun(1000, func() { er.Get(v) }); allocs != 0 {
		t.Fatalf("ErCache hit path allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkErCacheHit measures the hit path (counters always on); run with
// -benchmem to confirm 0 allocs/op.
func BenchmarkErCacheHit(b *testing.B) {
	g, anchors := benchNetwork(b, 2000)
	er := NewErCache(g, 2)
	for _, v := range anchors {
		er.Get(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		er.Get(anchors[i%len(anchors)])
	}
}

// BenchmarkSumGenObs compares the full mining pipeline with collection off
// (cfg.Obs nil — the default every production path starts from) and on. The
// "off" case is the overhead budget the observability layer must honor:
// engine metrics are not even allocated without an observer.
func BenchmarkSumGenObs(b *testing.B) {
	g, anchors := benchNetwork(b, 2000)
	for _, mode := range []string{"off", "on"} {
		b.Run(fmt.Sprintf("obs=%s", mode), func(b *testing.B) {
			cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 100}
			if mode == "on" {
				cfg.Obs = obs.NewObserver(nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				er := NewErCache(g, 2)
				SumGen(g, anchors, anchors, cfg, er)
			}
		})
	}
}

// Package submod implements the selection half of the FGS pipeline: monotone
// submodular utility functions, the fair greedy selection FairSelect of
// Section IV (a ½-approximation to submodular maximization under group
// cardinality constraints, following [17]), and the streaming variant with a
// swap rule (¼-approximation) that Online-APXFGS (Section VI) and Inc-FGS
// (Section VII) are built on.
package submod

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/graph"
)

// Group is one node group V_i with its coverage constraint [Lower, Upper]
// (Section II). Members must be disjoint across groups.
type Group struct {
	Name    string
	Members []graph.NodeID
	Lower   int
	Upper   int
}

// Groups is a validated group set V with a node-to-group index.
type Groups struct {
	groups []Group
	byNode map[graph.NodeID]int
	all    []graph.NodeID
}

// NewGroups validates and indexes a group set: bounds must satisfy
// 0 <= l_i <= u_i <= |V_i| and members must be disjoint.
func NewGroups(gs ...Group) (*Groups, error) {
	if len(gs) == 0 {
		return nil, fmt.Errorf("submod: empty group set")
	}
	out := &Groups{groups: gs, byNode: make(map[graph.NodeID]int)}
	for i, g := range gs {
		if g.Lower < 0 || g.Lower > g.Upper {
			return nil, fmt.Errorf("submod: group %q has invalid bounds [%d,%d]", g.Name, g.Lower, g.Upper)
		}
		if g.Upper > len(g.Members) {
			return nil, fmt.Errorf("submod: group %q upper bound %d exceeds size %d", g.Name, g.Upper, len(g.Members))
		}
		for _, v := range g.Members {
			if prev, ok := out.byNode[v]; ok {
				return nil, fmt.Errorf("submod: node %d in both group %q and %q", v, gs[prev].Name, g.Name)
			}
			out.byNode[v] = i
			out.all = append(out.all, v)
		}
	}
	return out, nil
}

// Len reports the number of groups (card(V) in the paper).
func (gs *Groups) Len() int { return len(gs.groups) }

// At returns the i-th group.
func (gs *Groups) At(i int) Group { return gs.groups[i] }

// IndexOf returns the group index of a node, if it belongs to any group.
func (gs *Groups) IndexOf(v graph.NodeID) (int, bool) {
	i, ok := gs.byNode[v]
	return i, ok
}

// All returns the union of all group members (the set ∪V). The slice is
// owned by the Groups value.
func (gs *Groups) All() []graph.NodeID { return gs.all }

// Size reports |∪V|.
func (gs *Groups) Size() int { return len(gs.all) }

// SumLower returns Σ l_i, the minimum feasible selection size.
func (gs *Groups) SumLower() int {
	s := 0
	for _, g := range gs.groups {
		s += g.Lower
	}
	return s
}

// Counts returns the per-group membership counts of a node set.
func (gs *Groups) Counts(nodes []graph.NodeID) []int {
	counts := make([]int, len(gs.groups))
	for _, v := range nodes {
		if i, ok := gs.byNode[v]; ok {
			counts[i]++
		}
	}
	return counts
}

// CountsOfSet returns per-group counts of a NodeSet.
func (gs *Groups) CountsOfSet(nodes graph.NodeSet) []int {
	counts := make([]int, len(gs.groups))
	for v := range nodes {
		if i, ok := gs.byNode[v]; ok {
			counts[i]++
		}
	}
	return counts
}

// SatisfiesBounds reports whether per-group counts lie in all [l_i, u_i].
func (gs *Groups) SatisfiesBounds(counts []int) bool {
	for i, g := range gs.groups {
		if counts[i] < g.Lower || counts[i] > g.Upper {
			return false
		}
	}
	return true
}

// ExtendableM implements the paper's procedure of the same name (Section IV):
// the partial selection described by counts can be extended with a node of
// group gi without losing feasibility for budget n iff
//
//  1. counts[gi]+1 <= u_gi, and
//  2. Σ_j max(counts'_j, l_j) <= n, where counts' includes the new node —
//     i.e. enough of the budget remains reserved for unmet lower bounds.
func (gs *Groups) ExtendableM(counts []int, gi int, n int) bool {
	if counts[gi]+1 > gs.groups[gi].Upper {
		return false
	}
	total := 0
	for j, g := range gs.groups {
		c := counts[j]
		if j == gi {
			c++
		}
		if c < g.Lower {
			c = g.Lower
		}
		total += c
	}
	return total <= n
}

// SwapFeasible reports whether replacing a node of group out with a node of
// group in keeps the reserve condition for budget n (upper bounds are
// checked directly on the adjusted counts).
func (gs *Groups) SwapFeasible(counts []int, out, in int, n int) bool {
	if counts[out] == 0 {
		return false
	}
	adj := func(j int) int {
		c := counts[j]
		if j == out {
			c--
		}
		if j == in {
			c++
		}
		return c
	}
	if adj(in) > gs.groups[in].Upper {
		return false
	}
	total := 0
	for j, g := range gs.groups {
		c := adj(j)
		if c < g.Lower {
			c = g.Lower
		}
		total += c
	}
	return total <= n
}

package graph

import (
	"sort"
	"testing"
)

// buildDiamond creates the small fixture used across the package tests:
//
//	a(user,exp=5) -> b(user,exp=3) -> d(org)
//	a             -> c(user,exp=3) -> d
//	c             -> a  (cycle back)
func buildDiamond(t *testing.T) (*Graph, [4]NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("user", map[string]string{"exp": "5", "industry": "Internet"})
	b := g.AddNode("user", map[string]string{"exp": "3"})
	c := g.AddNode("user", map[string]string{"exp": "3"})
	d := g.AddNode("org", nil)
	mustEdge(t, g, a, b, "recommend")
	mustEdge(t, g, a, c, "recommend")
	mustEdge(t, g, b, d, "member")
	mustEdge(t, g, c, d, "member")
	mustEdge(t, g, c, a, "recommend")
	return g, [4]NodeID{a, b, c, d}
}

func mustEdge(t *testing.T, g *Graph, from, to NodeID, label string) {
	t.Helper()
	if err := g.AddEdge(from, to, label); err != nil {
		t.Fatalf("AddEdge(%d,%d,%q): %v", from, to, label, err)
	}
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		if id := g.AddNode("x", nil); id != NodeID(i) {
			t.Fatalf("node %d got id %d", i, id)
		}
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestAddEdgeRejectsMissingNodes(t *testing.T) {
	g := New()
	a := g.AddNode("x", nil)
	if err := g.AddEdge(a, 99, "e"); err == nil {
		t.Fatal("edge to missing node accepted")
	}
	if err := g.AddEdge(99, a, "e"); err == nil {
		t.Fatal("edge from missing node accepted")
	}
}

func TestAddEdgeRejectsDuplicates(t *testing.T) {
	g := New()
	a := g.AddNode("x", nil)
	b := g.AddNode("y", nil)
	mustEdge(t, g, a, b, "e")
	if err := g.AddEdge(a, b, "e"); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	// Distinct label on the same endpoints is a different edge.
	if err := g.AddEdge(a, b, "f"); err != nil {
		t.Fatalf("parallel edge with new label rejected: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestHasEdgeRespectsDirectionAndLabel(t *testing.T) {
	g, ids := buildDiamond(t)
	rec, ok := g.EdgeLabelID("recommend")
	if !ok {
		t.Fatal("edge label missing")
	}
	mem, _ := g.EdgeLabelID("member")
	if !g.HasEdge(ids[0], ids[1], rec) {
		t.Error("a->b recommend should exist")
	}
	if g.HasEdge(ids[1], ids[0], rec) {
		t.Error("b->a recommend should not exist")
	}
	if g.HasEdge(ids[0], ids[1], mem) {
		t.Error("a->b member should not exist")
	}
}

func TestLabelsAndAttrs(t *testing.T) {
	g, ids := buildDiamond(t)
	if got := g.LabelOf(ids[3]); got != "org" {
		t.Fatalf("LabelOf(d) = %q, want org", got)
	}
	if v, ok := g.AttrString(ids[0], "exp"); !ok || v != "5" {
		t.Fatalf("AttrString(a,exp) = %q,%v", v, ok)
	}
	if _, ok := g.AttrString(ids[3], "exp"); ok {
		t.Fatal("org node should have no exp attribute")
	}
	if _, ok := g.AttrString(ids[0], "missingkey"); ok {
		t.Fatal("missing key should not resolve")
	}
}

func TestHasLiteral(t *testing.T) {
	g, ids := buildDiamond(t)
	k, _ := g.AttrKeyID("exp")
	v5, _ := g.AttrValID("5")
	v3, _ := g.AttrValID("3")
	if !g.HasLiteral(ids[0], k, v5) {
		t.Error("a.exp=5 should hold")
	}
	if g.HasLiteral(ids[0], k, v3) {
		t.Error("a.exp=3 should not hold")
	}
}

func TestNodesWithLabel(t *testing.T) {
	g, _ := buildDiamond(t)
	users := g.NodesWithLabel("user")
	if len(users) != 3 {
		t.Fatalf("got %d users, want 3", len(users))
	}
	if got := g.NodesWithLabel("nonexistent"); got != nil {
		t.Fatalf("unknown label returned %v", got)
	}
}

func TestDegreeAndAdjacency(t *testing.T) {
	g, ids := buildDiamond(t)
	if d := g.Degree(ids[0]); d != 3 { // out: b,c; in: c
		t.Fatalf("Degree(a) = %d, want 3", d)
	}
	if len(g.Out(ids[3])) != 0 || len(g.In(ids[3])) != 2 {
		t.Fatalf("d adjacency wrong: out=%d in=%d", len(g.Out(ids[3])), len(g.In(ids[3])))
	}
	// In-edges carry the source in .To.
	srcs := map[NodeID]bool{}
	for _, e := range g.In(ids[3]) {
		srcs[e.To] = true
	}
	if !srcs[ids[1]] || !srcs[ids[2]] {
		t.Fatalf("In(d) sources = %v, want {b,c}", srcs)
	}
}

func TestRHopNodes(t *testing.T) {
	g, ids := buildDiamond(t)
	// From d: 1 hop reaches b and c (undirected), 2 hops adds a.
	one := NodeSetOf(g.RHopNodes(ids[3], 1))
	if one.Len() != 3 || !one.Has(ids[1]) || !one.Has(ids[2]) || !one.Has(ids[3]) {
		t.Fatalf("1-hop of d = %v", one)
	}
	two := NodeSetOf(g.RHopNodes(ids[3], 2))
	if two.Len() != 4 {
		t.Fatalf("2-hop of d has %d nodes, want 4", two.Len())
	}
	zero := g.RHopNodes(ids[3], 0)
	if len(zero) != 1 || zero[0] != ids[3] {
		t.Fatalf("0-hop of d = %v", zero)
	}
}

func TestRHopEdges(t *testing.T) {
	g, ids := buildDiamond(t)
	// 1-hop edges of a: a->b, a->c, c->a (all incident to a).
	e1 := g.RHopEdges(ids[0], 1)
	if e1.Len() != 3 {
		t.Fatalf("1-hop edges of a: %d, want 3", e1.Len())
	}
	// 2-hop covers the whole fixture (5 edges).
	e2 := g.RHopEdges(ids[0], 2)
	if e2.Len() != 5 {
		t.Fatalf("2-hop edges of a: %d, want 5", e2.Len())
	}
	if g.RHopEdges(ids[0], 0).Len() != 0 {
		t.Fatal("0-hop edge set should be empty")
	}
}

func TestRHopEdgesOfUnion(t *testing.T) {
	g, ids := buildDiamond(t)
	union := g.RHopEdgesOf([]NodeID{ids[1], ids[2]}, 1)
	// b touches a->b, b->d; c touches a->c, c->d, c->a. Union: all 5.
	if union.Len() != 5 {
		t.Fatalf("union 1-hop edges = %d, want 5", union.Len())
	}
}

func TestDist(t *testing.T) {
	g, ids := buildDiamond(t)
	cases := []struct {
		src, dst NodeID
		limit    int
		want     int
	}{
		{ids[0], ids[0], -1, 0},
		{ids[0], ids[3], -1, 2},
		{ids[0], ids[3], 1, -1},
		{ids[3], ids[0], -1, 2}, // undirected
		{ids[0], ids[1], -1, 1},
	}
	for _, c := range cases {
		if got := g.Dist(c.src, c.dst, c.limit); got != c.want {
			t.Errorf("Dist(%d,%d,limit=%d) = %d, want %d", c.src, c.dst, c.limit, got, c.want)
		}
	}
	isolated := New()
	x := isolated.AddNode("x", nil)
	y := isolated.AddNode("y", nil)
	if got := isolated.Dist(x, y, -1); got != -1 {
		t.Errorf("disconnected Dist = %d, want -1", got)
	}
}

func TestEdgeSetOps(t *testing.T) {
	a := EdgeRef{0, 1, 0}
	b := EdgeRef{1, 2, 0}
	c := EdgeRef{2, 3, 1}
	s := NewEdgeSet(0)
	s.Add(a)
	s.Add(b)
	other := NewEdgeSet(0)
	other.Add(b)
	other.Add(c)
	diff := s.Minus(other)
	if diff.Len() != 1 || !diff.Has(a) {
		t.Fatalf("Minus = %v", diff)
	}
	if got := s.CountMissing(other); got != 1 {
		t.Fatalf("CountMissing = %d, want 1", got)
	}
	cl := s.Clone()
	cl.Add(c)
	if s.Has(c) {
		t.Fatal("Clone aliases original")
	}
	u := NewEdgeSet(0)
	u.AddAll(s)
	u.AddAll(other)
	if u.Len() != 3 {
		t.Fatalf("union len = %d, want 3", u.Len())
	}
}

func TestNodeSetOps(t *testing.T) {
	s := NodeSetOf([]NodeID{1, 2, 2, 3})
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	s.Remove(2)
	if s.Has(2) || s.Len() != 2 {
		t.Fatal("Remove failed")
	}
	c := s.Clone()
	c.Add(9)
	if s.Has(9) {
		t.Fatal("Clone aliases original")
	}
}

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	ids := map[string]int32{}
	for _, s := range []string{"a", "b", "a", "c", "b"} {
		id := in.Intern(s)
		if prev, ok := ids[s]; ok && prev != id {
			t.Fatalf("re-interning %q changed id %d -> %d", s, prev, id)
		}
		ids[s] = id
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	for s, id := range ids {
		if in.Name(id) != s {
			t.Fatalf("Name(%d) = %q, want %q", id, in.Name(id), s)
		}
		if got, ok := in.Lookup(s); !ok || got != id {
			t.Fatalf("Lookup(%q) = %d,%v", s, got, ok)
		}
	}
	if _, ok := in.Lookup("zzz"); ok {
		t.Fatal("Lookup of unseen string succeeded")
	}
}

func TestAttrsSortedByKey(t *testing.T) {
	g := New()
	id := g.AddNode("x", map[string]string{"z": "1", "a": "2", "m": "3"})
	attrs := g.Attrs(id)
	if !sort.SliceIsSorted(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key }) {
		t.Fatalf("attribute tuple not sorted: %v", attrs)
	}
	if len(attrs) != 3 {
		t.Fatalf("len(attrs) = %d, want 3", len(attrs))
	}
}

func TestMissingNodeAccessors(t *testing.T) {
	g := New()
	if g.LabelIDOf(5) != NoLabel || g.LabelOf(5) != "" {
		t.Error("missing node label should be empty")
	}
	if g.Attrs(5) != nil || g.Out(5) != nil || g.In(5) != nil {
		t.Error("missing node adjacency should be nil")
	}
	if g.Degree(5) != 0 {
		t.Error("missing node degree should be 0")
	}
	if _, ok := g.AttrValue(5, 0); ok {
		t.Error("missing node attr lookup should fail")
	}
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cwru-db/fgs/internal/pattern"
)

func TestSummaryJSONRoundTrip(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	s, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, g); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	loaded, err := ReadSummaryJSON(&buf, g, 0)
	if err != nil {
		t.Fatalf("ReadSummaryJSON: %v", err)
	}
	if loaded.R != s.R || loaded.CL != s.CL || len(loaded.Patterns) != len(s.Patterns) {
		t.Fatalf("metadata changed: %+v vs %+v", loaded, s)
	}
	if len(loaded.Covered) != len(s.Covered) {
		t.Fatal("covered set changed")
	}
	for i := range s.Covered {
		if loaded.Covered[i] != s.Covered[i] {
			t.Fatal("covered nodes differ")
		}
	}
	if loaded.Corrections.Len() != s.Corrections.Len() {
		t.Fatalf("corrections changed: %d vs %d", loaded.Corrections.Len(), s.Corrections.Len())
	}
	// The loaded summary must still reconstruct losslessly.
	missing, spurious := loaded.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatalf("loaded summary not lossless: %d/%d", missing.Len(), spurious.Len())
	}
	// And verify cleanly.
	rep := Verify(g, groups, util.Clone(), cfg, loaded, s.CL, 0)
	if !rep.Feasible() {
		t.Fatalf("loaded summary not feasible: %s", rep)
	}
}

func TestReadSummaryJSONErrors(t *testing.T) {
	g, _, _ := talentFixture(t)
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "{nope"},
		{"invalid pattern", `{"r":2,"patterns":[{"focus":5,"nodes":[{"label":"user"}],"edges":[]}]}`},
		{"unknown edge label", `{"r":2,"corrections":[{"from":0,"to":1,"label":"nosuch"}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadSummaryJSON(strings.NewReader(c.in), g, 0); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestQueryView(t *testing.T) {
	g, groups, util := talentFixture(t)
	s, err := APXFGS(g, groups, util, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Query: female candidates among the covered representatives.
	q := pattern.NewNodePattern("user", pattern.Literal{Key: "gender", Val: "f"})
	got := QueryView(g, s, q, 0)
	if len(got) == 0 {
		t.Fatal("view query found no females among covered nodes")
	}
	for _, v := range got {
		val, _ := g.AttrString(v, "gender")
		if val != "f" {
			t.Fatalf("node %d is not female", v)
		}
		found := false
		for _, c := range s.Covered {
			if c == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("view query returned uncovered node %d", v)
		}
	}
	// A pattern matching nothing yields an empty answer.
	if got := QueryView(g, s, pattern.NewNodePattern("alien"), 0); len(got) != 0 {
		t.Fatalf("alien query returned %v", got)
	}
}

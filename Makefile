GO ?= go

.PHONY: all build test race serve lint fgslint lint-budget vet staticcheck govulncheck bench bench-ci bench-compare bench-scale bench-scale-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages again under the race detector (mirrors CI).
race:
	$(GO) test -race ./internal/mining/ ./internal/pattern/ ./internal/core/ ./internal/graph/ ./internal/obs/ ./internal/server/ ./internal/store/

# Run the summarization daemon on the demo LKI graph (see README "Serving").
# Override flags via ARGS: make serve ARGS='-addr :9000 -workers 4'
serve:
	$(GO) run ./cmd/fgsd $(ARGS)

# lint is the offline gate: go vet plus the repo's own determinism & safety
# multichecker (see DESIGN.md "Determinism contract & lint"). staticcheck and
# govulncheck are run by CI's lint job and locally only if installed.
lint: vet fgslint

vet:
	$(GO) vet ./...

fgslint:
	$(GO) run ./cmd/fgslint -budget lint-budget.json ./...

# Rewrite lint-budget.json to the current //lint:allow counts — the ratchet
# file fgslint -budget and CI enforce (DESIGN.md §12). Run after consciously
# adding or removing an allow.
lint-budget:
	$(GO) run ./cmd/fgslint -write-budget lint-budget.json ./...

staticcheck:
	staticcheck ./...

govulncheck:
	govulncheck ./...

bench:
	$(GO) test -bench=. -benchmem -timeout 120m

# bench-ci mirrors CI's bench job: the performance-sensitive paths only,
# with the raw -json stream archived under a dated name for benchstat /
# bench-compare diffs. The pinned set covers selection (GreedyCover), the
# mining pipeline (SumGen*), the E_v^r cache, the matcher hot paths, the
# graph substrate, and the fgstore write/recovery paths.
BENCH_CI_RE := BenchmarkGreedyCover|BenchmarkSumGen$$|BenchmarkSumGenParallel|BenchmarkSumGenPartitioned|BenchmarkErCacheHit|BenchmarkSumGenObs|BenchmarkMatchAtStar|BenchmarkMatchAtChain3|BenchmarkCoveredEdgesAt|BenchmarkErCacheGet|BenchmarkRHopEdges2|BenchmarkAddEdge|BenchmarkAddEdgeHighDegree|BenchmarkHasEdge|BenchmarkBuildPartition|BenchmarkWALAppend|BenchmarkRecoveryReplay

# The raw stream is also condensed into BENCH_<date>-summary.json — a compact
# sorted {name, ns_per_op, bytes_per_op, allocs_per_op} array for dashboards
# and cheap cross-run storage (cmd/fgsbenchcmp -summarize).
bench-ci:
	$(GO) test -json -run '^$$' -p 1 \
		-bench '$(BENCH_CI_RE)' \
		-benchmem ./internal/core/ ./internal/mining/ ./internal/pattern/ ./internal/graph/ ./internal/store/ \
		| tee "BENCH_$$(date -u +%F).json"
	$(GO) run ./cmd/fgsbenchcmp -summarize "BENCH_$$(date -u +%F).json" \
		> "BENCH_$$(date -u +%F)-summary.json"

# bench-compare diffs two bench-ci JSON streams and fails on >15% time or
# alloc regressions: make bench-compare OLD=BENCH_2026-08-05.json NEW=BENCH_<date>.json
bench-compare:
	$(GO) run ./cmd/fgsbenchcmp -old $(OLD) -new $(NEW)

# bench-scale is the serving scale tier (DESIGN.md §11): generate a
# multi-million-node LKI graph, persist it through the binary codec, and
# measure the MVCC read path against the locked baseline under saturating
# bulk ingest (back-to-back SCALE_BATCH-edge update batches) — load time,
# read throughput/tails, update latency, snapshot-publish cost, peak heap
# vs the memory ceiling. Results land in scale-results.json. Override via
# SCALE_NODES / SCALE_DURATION / SCALE_BATCH / SCALE_MEM_MB.
SCALE_NODES ?= 1000000
SCALE_DURATION ?= 20s
SCALE_BATCH ?= 4096
SCALE_ROUNDS ?= 3
SCALE_SHARDS ?= 8
SCALE_MEM_MB ?= 8192

bench-scale:
	$(GO) run ./cmd/fgsgen -dataset lki -nodes $(SCALE_NODES) -format binary \
		-o "lki-$(SCALE_NODES).fgsb"
	$(GO) run ./cmd/fgsbench -scale-bench \
		-scale-graph "lki-$(SCALE_NODES).fgsb" -scale-duration $(SCALE_DURATION) \
		-scale-write-interval 0 -scale-write-batch $(SCALE_BATCH) \
		-scale-max-views 3 -scale-rounds $(SCALE_ROUNDS) \
		-scale-shards $(SCALE_SHARDS) \
		-scale-mem-ceiling-mb $(SCALE_MEM_MB) -scale-out scale-results.json

# bench-scale-smoke is the CI-sized variant: small graph, short windows,
# tight memory ceiling — it exists to fail loudly if the MVCC read path,
# the sized generators, or the partitioned summarize path regress, not to
# produce publishable numbers. -scale-shards 4 exercises the focus-region
# partition build and the sharded compute inside the same heap ceiling.
bench-scale-smoke:
	$(GO) run ./cmd/fgsbench -scale-bench \
		-scale-nodes 150000 -scale-duration 5s \
		-scale-readers 4 -scale-writers 1 \
		-scale-write-interval 0 -scale-write-batch 256 -scale-max-views 3 \
		-scale-shards 4 \
		-scale-mem-ceiling-mb 2048 -scale-out scale-smoke.json

package gen

import (
	"math/rand"
	"strconv"

	"github.com/cwru-db/fgs/internal/graph"
)

// Sized generators for the scale tier: LKI and DBP variants that take a
// target node count directly (millions, not the ×2k scale steps of LKI/DBP)
// and keep every attribute's per-value cohort bounded as the graph grows.
// That last property is what makes summarization tractable at scale: groups
// are induced over attribute values (city, genre), so if value cardinality
// stayed fixed while nodes grew, group sizes — and with them Inc-FGS boot
// and per-request work — would grow linearly with the graph. Instead the
// value universe grows with n (targetCohort members per value on average)
// and group definitions pick out value cohorts of roughly constant size at
// any graph size.

// targetCohort is the average number of same-label nodes sharing one scaled
// attribute value (cities in LKI, franchises in DBP).
const targetCohort = 256

// scaledCardinality returns how many distinct values a scaled attribute
// needs so cohorts average targetCohort members, with a floor matching the
// base generators' universes.
func scaledCardinality(n, floor int) int {
	c := n / targetCohort
	if c < floor {
		return floor
	}
	return c
}

// LKISized generates the LKI social network with approximately n nodes
// (users plus organizations at the base generator's 25:1 ratio). Schema and
// edge structure match LKI — gender with the 77/23 skew, degree, industry,
// experience, city; employment and preferential-attachment co-review edges —
// but the city universe scales with n, so any one city's user cohort stays
// around targetCohort members and city-induced groups are scale-free.
func LKISized(seed int64, n int) *graph.Graph {
	if n < 26 {
		n = 26
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	industries := []string{"Internet", "Finance", "Health", "Education", "Retail"}
	degrees := []string{"BS", "MS", "PhD"}

	nOrgs := n / 26
	if nOrgs < 1 {
		nOrgs = 1
	}
	nUsers := n - nOrgs
	nCities := scaledCardinality(nUsers, 60)

	orgs := make([]graph.NodeID, nOrgs)
	for i := range orgs {
		orgs[i] = g.AddNode("org", map[string]string{
			"industry": industries[rng.Intn(len(industries))],
		})
	}
	pa := newPrefAttach(rng)
	for i := 0; i < nUsers; i++ {
		gender := "male"
		if rng.Float64() < 0.23 {
			gender = "female"
		}
		u := g.AddNode("user", map[string]string{
			"gender":   gender,
			"degree":   degrees[rng.Intn(len(degrees))],
			"industry": industries[rng.Intn(len(industries))],
			"exp":      strconv.Itoa(1 + rng.Intn(20)),
			"city":     "c" + strconv.Itoa(rng.Intn(nCities)),
		})
		mustEdge(g, u, orgs[rng.Intn(nOrgs)], "employed")
		if i > 0 {
			for c := 0; c < 1+rng.Intn(3); c++ {
				t := pa.pick()
				if t != u {
					mustEdge(g, u, t, "corev")
				}
			}
		}
		pa.seed(u)
	}
	return g
}

// DBPSized generates the DBP movie knowledge graph with approximately n
// nodes (movies, actors, and directors at the base generator's ratios).
// Schema matches DBP — skewed genres, year, country, rating; directed,
// acted_in, and degree-biased similar edges — plus a scaled "franchise"
// attribute on movies whose cohorts stay around targetCohort members, the
// group key for scale-tier experiments (genre cohorts grow with the graph).
func DBPSized(seed int64, n int) *graph.Graph {
	if n < 22 {
		n = 22
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	genres := []string{"Action", "Romance", "Drama", "Comedy", "Thriller"}
	genreWeights := []float64{0.35, 0.15, 0.25, 0.15, 0.10}
	countries := []string{"US", "UK", "FR", "IN", "KR"}
	pickGenre := func() string {
		x := rng.Float64()
		for i, w := range genreWeights {
			if x < w {
				return genres[i]
			}
			x -= w
		}
		return genres[len(genres)-1]
	}

	// Base DBP ratios: 600 movies : 600 actors : 120 directors per scale.
	nMovies := n * 600 / 1320
	nDirectors := n * 120 / 1320
	if nDirectors < 1 {
		nDirectors = 1
	}
	nActors := n - nMovies - nDirectors
	nFranchises := scaledCardinality(nMovies, 50)

	directors := make([]graph.NodeID, nDirectors)
	for i := range directors {
		directors[i] = g.AddNode("director", map[string]string{
			"country": countries[rng.Intn(len(countries))],
		})
	}
	actors := make([]graph.NodeID, nActors)
	for i := range actors {
		actors[i] = g.AddNode("actor", map[string]string{
			"country": countries[rng.Intn(len(countries))],
		})
	}
	pa := newPrefAttach(rng)
	for i := 0; i < nMovies; i++ {
		m := g.AddNode("movie", map[string]string{
			"genre":     pickGenre(),
			"franchise": "f" + strconv.Itoa(rng.Intn(nFranchises)),
			"year":      strconv.Itoa(1980 + rng.Intn(45)),
			"country":   countries[rng.Intn(len(countries))],
			"rating":    strconv.FormatFloat(1+9*rng.Float64(), 'f', 1, 64),
		})
		mustEdge(g, directors[rng.Intn(nDirectors)], m, "directed")
		cast := 2 + rng.Intn(4)
		for c := 0; c < cast; c++ {
			mustEdge(g, actors[rng.Intn(nActors)], m, "acted_in")
		}
		if i > 0 {
			for s := 0; s < 1+rng.Intn(2); s++ {
				mustEdge(g, m, pa.pick(), "similar")
			}
		}
		pa.seed(m)
	}
	return g
}

// Fixture for the nopanic analyzer in a main package: CLIs own their exit
// codes, so nothing here is flagged.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("usage: cmdfixture")
	}
	defer os.Exit(0)
	panic("mains may panic")
}

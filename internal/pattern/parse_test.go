package pattern

import (
	"bytes"
	"testing"
)

func TestParseBasic(t *testing.T) {
	src := `
# Internet candidates with two co-reviewers
n 0 user industry=Internet
n 1 user
n 2 user
e 1 0 corev
e 2 0 corev
f 0
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Nodes) != 3 || len(p.Edges) != 2 || p.Focus != 0 {
		t.Fatalf("parsed shape wrong: %s", p)
	}
	if p.Nodes[0].Literals[0] != (Literal{Key: "industry", Val: "Internet"}) {
		t.Fatalf("literal wrong: %+v", p.Nodes[0].Literals)
	}
}

func TestParseDefaultFocus(t *testing.T) {
	p, err := ParseString("n 0 user\nn 1 user\ne 0 1 e\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Focus != 0 {
		t.Fatalf("default focus = %d", p.Focus)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown record", "x 0 user\n"},
		{"node missing label", "n 0\n"},
		{"non-dense index", "n 1 user\n"},
		{"bad literal", "n 0 user nokey\n"},
		{"empty literal key", "n 0 user =v\n"},
		{"edge fields", "n 0 user\ne 0 1\n"},
		{"edge bad index", "n 0 user\ne a 0 l\n"},
		{"focus fields", "n 0 user\nf\n"},
		{"focus bad index", "n 0 user\nf x\n"},
		{"focus out of range", "n 0 user\nf 3\n"},
		{"edge out of range", "n 0 user\ne 0 5 l\n"},
		{"disconnected", "n 0 user\nn 1 user\n"},
		{"empty", "# nothing\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.src); err == nil {
				t.Fatalf("Parse(%q) succeeded", c.src)
			}
		})
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	patterns := []*Pattern{
		star(Literal{Key: "exp", Val: "5"}),
		NewNodePattern("movie", Literal{Key: "genre", Val: "Action"}, Literal{Key: "year", Val: "1999"}),
		{
			Focus: 1,
			Nodes: []Node{{Label: "a"}, {Label: "b"}, {Label: "c"}},
			Edges: []Edge{{0, 1, "e"}, {1, 2, "f"}, {2, 0, "g"}},
		},
	}
	for _, p := range patterns {
		var buf bytes.Buffer
		if err := Format(&buf, p); err != nil {
			t.Fatalf("Format: %v", err)
		}
		q, err := Parse(&buf)
		if err != nil {
			t.Fatalf("Parse(Format(%s)): %v", p, err)
		}
		if CanonicalCode(p) != CanonicalCode(q) {
			t.Fatalf("round trip changed the pattern:\n %s\n %s", p, q)
		}
		if q.Focus != p.Focus {
			t.Fatalf("focus changed: %d vs %d", q.Focus, p.Focus)
		}
	}
}

func TestParsedPatternMatches(t *testing.T) {
	g, ids := fixture(t)
	p, err := ParseString(`
n 0 user exp=4
n 1 user
n 2 user
e 1 0 recommend
e 2 0 recommend
`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g, 0)
	got := m.Matches(p)
	if len(got) != 2 || got[0] != ids[5] || got[1] != ids[8] {
		t.Fatalf("Matches = %v, want [v5 v8]", got)
	}
}

package server

import (
	"github.com/cwru-db/fgs/internal/leakcheck"

	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

// testGraph builds a deterministic 24-user recommendation network with two
// gender groups. Edges follow fixed arithmetic progressions, so every test
// run sees the same graph without a RNG.
func testGraph(t testing.TB) (*graph.Graph, *submod.Groups) {
	t.Helper()
	g := graph.New()
	const n = 24
	var males, females []graph.NodeID
	for i := 0; i < n; i++ {
		attrs := map[string]string{"exp": fmt.Sprintf("%d", 1+i%5)}
		if i%3 == 0 {
			attrs["industry"] = "Internet"
		}
		if i%2 == 0 {
			attrs["gender"] = "m"
		} else {
			attrs["gender"] = "f"
		}
		id := g.AddNode("user", attrs)
		if i < 8 {
			if i%2 == 0 {
				males = append(males, id)
			} else {
				females = append(females, id)
			}
		}
	}
	for i := 0; i < n; i++ {
		from := graph.NodeID(i)
		for _, to := range []graph.NodeID{graph.NodeID((i + 1) % n), graph.NodeID((i*7 + 3) % n), graph.NodeID((i*5 + 11) % n)} {
			if from != to {
				_ = g.AddEdge(from, to, "corev")
			}
		}
	}
	groups, err := submod.NewGroups(
		submod.Group{Name: "male", Members: males, Lower: 1, Upper: 3},
		submod.Group{Name: "female", Members: females, Lower: 1, Upper: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g, groups
}

// newTestServer boots a server over the test graph on an httptest listener.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g, groups := testGraph(t)
	s, err := New(g, groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { dumpFlightOnFailure(t, s) })
	return s, ts
}

// dumpFlightOnFailure writes the server's flight recorder into
// $FGS_FLIGHT_DUMP_DIR when the test failed. CI points that directory at an
// artifact upload, so a red server job ships the last requests it saw
// alongside the log output.
func dumpFlightOnFailure(t testing.TB, s *Server) {
	dir := os.Getenv("FGS_FLIGHT_DUMP_DIR")
	if dir == "" || !t.Failed() {
		return
	}
	name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()) + ".flight"
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("flight dump: %v", err)
		return
	}
	if err := s.DumpFlightRecorder(f, "test-failure"); err != nil {
		t.Logf("flight dump: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Logf("flight dump close: %v", err)
	}
}

// post sends body to path and returns the response with its drained body.
func post(t testing.TB, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t testing.TB, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func wantStatus(t testing.TB, resp *http.Response, body []byte, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, want, body)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/healthz")
	wantStatus(t, resp, body, http.StatusOK)
	if string(body) != `{"status":"ok"}`+"\n" {
		t.Fatalf("healthz body = %q", body)
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
	resp, body = get(t, ts, "/healthz")
	wantStatus(t, resp, body, http.StatusServiceUnavailable)
	if !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("draining healthz body = %q", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz lacks Retry-After")
	}

	// New compute work is refused while draining.
	resp, body = post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusServiceUnavailable)
}

func TestSummarizeAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{N: 4})
	resp, body1 := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body1, http.StatusOK)
	if resp.Header.Get("X-Fgs-Cache") == "hit" {
		t.Fatal("first request cannot be a cache hit")
	}
	var sr struct {
		Epoch   uint64          `json:"epoch"`
		Summary json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal(body1, &sr); err != nil {
		t.Fatalf("bad summarize body: %v", err)
	}
	if sr.Epoch != 0 || len(sr.Summary) == 0 {
		t.Fatalf("epoch = %d, summary %d bytes", sr.Epoch, len(sr.Summary))
	}

	resp, body2 := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body2, http.StatusOK)
	if resp.Header.Get("X-Fgs-Cache") != "hit" {
		t.Fatal("identical repeat request missed the cache")
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit body differs from computed body")
	}

	// Equivalent requests (field order, explicit defaults) share the entry.
	for _, req := range []string{`{"r":2,"n":4}`, `{"n":4,"r":2}`, `{"n":4,"utility":"coverage"}`} {
		resp, body := post(t, ts, "/v1/summarize", req)
		wantStatus(t, resp, body, http.StatusOK)
		if resp.Header.Get("X-Fgs-Cache") != "hit" {
			t.Fatalf("request %s missed the cache", req)
		}
		if !bytes.Equal(body1, body) {
			t.Fatalf("request %s body differs", req)
		}
	}
}

func TestSummarizeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct{ path, body string }{
		{"/v1/summarize", `{"r":-1}`},
		{"/v1/summarize", `{"bogus":1}`},
		{"/v1/summarize", `{"n":4} trailing`},
		{"/v1/summarize-k", `{}`}, // no k in request or config
		{"/v1/view", `{}`},        // pattern required
		{"/v1/view", `{"pattern":"not a pattern"}`},
		{"/v1/update", `{}`}, // empty batch
	} {
		resp, body := post(t, ts, tc.path, tc.body)
		wantStatus(t, resp, body, http.StatusBadRequest)
		var er struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Fatalf("%s %s: error body %q", tc.path, tc.body, body)
		}
	}
}

func TestSummarizeK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/summarize-k", `{"k":2,"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)

	// The k default from the config kicks in when the request omits it.
	_, ts2 := newTestServer(t, Config{K: 2})
	resp, body = post(t, ts2, "/v1/summarize-k", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
}

func TestView(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/view", `{"pattern":"n 0 user\nf 0"}`)
	wantStatus(t, resp, body, http.StatusOK)
	var vr ViewResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Count != len(vr.Nodes) {
		t.Fatalf("count %d != len(nodes) %d", vr.Count, len(vr.Nodes))
	}
	if vr.Count == 0 {
		t.Fatal("single-node user pattern matched no covered nodes")
	}
}

func TestWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/workload", ``)
	wantStatus(t, resp, body, http.StatusOK)
	var wr WorkloadResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Queries) == 0 {
		t.Fatal("workload has no queries")
	}
	for _, q := range wr.Queries {
		if q.Pattern == "" || q.Cardinality < q.CoveredMatches {
			t.Fatalf("bad workload query %+v", q)
		}
	}
}

func TestUpdateEpochAndInvalidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Warm the cache at epoch 0.
	resp, body0 := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body0, http.StatusOK)
	resp, _ = post(t, ts, "/v1/summarize", `{"n":4}`)
	if resp.Header.Get("X-Fgs-Cache") != "hit" {
		t.Fatal("warming request missed")
	}

	// A real insert advances the epoch. Node 0 -> 12 does not exist yet
	// (edges go to 1, 3, and 11).
	resp, body := post(t, ts, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, http.StatusOK)
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 || ur.Applied != 1 || ur.Error != "" {
		t.Fatalf("update response %+v", ur)
	}
	if s.Epoch() != 1 {
		t.Fatalf("server epoch = %d, want 1", s.Epoch())
	}

	// The cached epoch-0 entry is unreachable now: same request recomputes.
	resp, body1 := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body1, http.StatusOK)
	if resp.Header.Get("X-Fgs-Cache") == "hit" {
		t.Fatal("stale epoch-0 entry served after a write")
	}
	var sr SummarizeResponse
	if err := json.Unmarshal(body1, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Epoch != 1 {
		t.Fatalf("post-write summarize epoch = %d, want 1", sr.Epoch)
	}

	// A duplicate insert is a no-op: 400, applied 0, epoch unchanged.
	resp, body = post(t, ts, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, http.StatusBadRequest)
	if s.Epoch() != 1 {
		t.Fatalf("no-op write moved the epoch to %d", s.Epoch())
	}

	// Deleting the edge changes the graph again.
	resp, body = post(t, ts, "/v1/update", `{"delete":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, http.StatusOK)
	if s.Epoch() != 2 {
		t.Fatalf("epoch after delete = %d, want 2", s.Epoch())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/summarize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/summarize = %d, want 405", resp.StatusCode)
	}
}

func TestSaturationRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	// Occupy the only slot directly; with no queue the next arrival must be
	// rejected immediately and deterministically.
	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()

	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusServiceUnavailable)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 lacks Retry-After")
	}
	if st := s.adm.stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}

	// Stats must stay reachable exactly when the slots are saturated.
	resp, body = get(t, ts, "/v1/stats")
	wantStatus(t, resp, body, http.StatusOK)
}

func TestQueuedDeadlineExpires(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Deadline: 50 * time.Millisecond})
	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()

	start := time.Now()
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusGatewayTimeout)
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("expired after %v, before the deadline", waited)
	}
	if st := s.adm.stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
}

func TestStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/summarize", `{"n":4}`)
	post(t, ts, "/v1/summarize", `{"n":4}`)
	resp, body := get(t, ts, "/v1/stats")
	wantStatus(t, resp, body, http.StatusOK)
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 24 || st.Groups != 2 {
		t.Fatalf("stats sizes %+v", st)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters %+v", st.Cache)
	}
	if st.Admission.Accepted != 1 { // the cache hit never reached admission
		t.Fatalf("admission counters %+v", st.Admission)
	}
	if st.Summary.Patterns == 0 || st.Summary.Covered == 0 {
		t.Fatalf("summary stats %+v", st.Summary)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/summarize", `{"n":4}`)
	resp, body := get(t, ts, "/metrics")
	wantStatus(t, resp, body, http.StatusOK)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"fgs_http_requests_total{endpoint=\"summarize\"} 1",
		"fgs_server_cache_misses_total",
		"fgs_server_admitted_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	post(t, ts, "/v1/summarize", `{"n":4}`)
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	if resp.Header.Get("X-Fgs-Cache") == "hit" {
		t.Fatal("disabled cache produced a hit")
	}
}

func TestRequestUtilityOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/summarize", `{"n":4,"utility":"cardinality"}`)
	wantStatus(t, resp, body, http.StatusOK)
	resp, body = post(t, ts, "/v1/summarize", `{"n":4,"utility":"no-such"}`)
	wantStatus(t, resp, body, http.StatusBadRequest)
}

package core

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/submod"
)

// APXFGS computes an r-summary with the select-and-summarize strategy of
// Section IV (Fig. 3), achieving the (½, ln n)-approximation of Theorem 3:
//
//  1. Selection phase: FairSelect greedily picks V_p, a ½-approximation to
//     the utility-optimal feasible selection.
//  2. Summarization phase: SumGen mines candidate patterns from E^r_{V_p};
//     a greedy loop then repeatedly adds the extendable pattern maximizing
//     |P(u_o,G) ∩ V_p| / C_P until V_p is covered, yielding accumulated loss
//     C_l within ln(n) of optimal for the fixed V_p.
//
// The utility's state is consumed. On return the summary is feasible: group
// coverage within bounds and |P_V| <= n; nodes the greedy could not cover
// without breaking feasibility (possible only in degenerate inputs) are
// reported in Summary.Uncovered.
func APXFGS(g *graph.Graph, groups *submod.Groups, util submod.Utility, cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	run := startRun(cfg.Obs, "apxfgs")

	sp := run.phase(PhaseSelect)
	vp, err := submod.FairSelectObs(groups, util, cfg.N, run.reg)
	sp.End()
	if err != nil {
		run.abort()
		return nil, fmt.Errorf("core: selection phase: %w", err)
	}

	sp = run.phase(PhaseMine)
	src, cands := mineCandidates(g, vp, &cfg, run)
	sp.SetArg("candidates", int64(len(cands)))
	sp.End()

	sp = run.phase(PhaseSummarize)
	chosen, uncovered := greedyCover(g, cands, vp, cfg.N, 0, run.reg)
	sp.SetArg("patterns", int64(len(chosen)))
	sp.End()

	return buildSummary(cfg, chosen, src, util, uncovered, run.finish(len(cands), 0)), nil
}

// mineCandidates runs SumGen for the batch algorithms, routing through the
// focus-region partition when cfg.Mining.Regions covers the selection (the
// server attaches per-epoch regions there; library callers usually leave it
// nil). The returned erSource is where summary assembly must read E_X^r
// from: the shard caches when partitioned — so no global-graph BFS runs at
// all — or a fresh flat cache otherwise. Candidate sets and the final
// summary are byte-identical on both routes.
func mineCandidates(g *graph.Graph, vp []graph.NodeID, cfg *Config, run *runObs) (erSource, []*mining.Candidate) {
	if regions := cfg.Mining.Regions; regions.Covers(g, vp, cfg.R) {
		run.register(regions)
		return regions, mining.SumGen(g, vp, vp, cfg.Mining, nil)
	}
	cfg.Mining.Regions = nil
	er := mining.NewErCache(g, cfg.R)
	run.register(er)
	return er, mining.SumGen(g, vp, vp, cfg.Mining, er)
}

// coverState tracks the partial summary during the greedy loops. Candidate
// coverage is anchored to the fixed selection V_p (which FairSelect already
// validated against the group bounds), so procedure Extendable of Fig. 4
// reduces to its remaining conditions: the pattern must cover at least one
// new node and the total cover must stay within n.
type coverState struct {
	n       int
	covered graph.NodeSet // selected nodes covered so far
}

func newCoverState(n int) *coverState {
	return &coverState{n: n, covered: graph.NewNodeSet(0)}
}

// extendable reports whether adding cand keeps the partial summary feasible.
func (cs *coverState) extendable(cand *mining.Candidate) bool {
	newNodes := 0
	for _, v := range cand.Covered {
		if !cs.covered.Has(v) {
			newNodes++
		}
	}
	return newNodes > 0 && cs.covered.Len()+newNodes <= cs.n
}

// add commits a candidate's coverage.
func (cs *coverState) add(cand *mining.Candidate) {
	for _, v := range cand.Covered {
		cs.covered.Add(v)
	}
}

// betterGain compares two candidates by the Fig. 3 line 11 ratio
// |P ∩ V_p| / C_P, with C_P = 0 treated as infinite gain.
func betterGain(newA, cpA, newB, cpB int) bool {
	if cpA == 0 && cpB == 0 {
		return newA > newB
	}
	if cpA == 0 {
		return true
	}
	if cpB == 0 {
		return false
	}
	// Cross-multiplied ratio comparison avoids float drift.
	lhs := newA * cpB
	rhs := newB * cpA
	if lhs != rhs {
		return lhs > rhs
	}
	return newA > newB
}

package graph

// Snapshot is a read-only compressed-sparse-row (CSR) view of a Graph's
// topology, frozen at the moment Snapshot() was called. Both adjacency
// directions are laid out as one contiguous []Edge per direction with a
// per-node offset table, so scans touch sequential memory with no per-node
// slice headers to chase, and the whole view is safe to share across
// goroutines without synchronization — later mutations of the source Graph
// are not reflected (see DESIGN.md §9).
//
// Edge order within each node matches the Graph's insertion order, so
// algorithms that are deterministic over Graph adjacency stay deterministic
// over a Snapshot.
type Snapshot struct {
	outOff   []int32 // len NumNodes+1; out-edges of v are outEdges[outOff[v]:outOff[v+1]]
	inOff    []int32
	outEdges []Edge
	inEdges  []Edge
	labelOf  []LabelID
	numEdges int
}

// Snapshot freezes the current topology into CSR layout. Cost is O(V + E);
// call it once per analysis phase, not per query.
func (g *Graph) Snapshot() *Snapshot {
	n := g.NumNodes()
	s := &Snapshot{
		outOff:   make([]int32, n+1),
		inOff:    make([]int32, n+1),
		labelOf:  append([]LabelID(nil), g.labelOf...),
		numEdges: g.numEdges,
	}
	var outTotal, inTotal int32
	for v := 0; v < n; v++ {
		s.outOff[v] = outTotal
		s.inOff[v] = inTotal
		outTotal += int32(len(g.out[v]))
		inTotal += int32(len(g.in[v]))
	}
	s.outOff[n] = outTotal
	s.inOff[n] = inTotal
	s.outEdges = make([]Edge, outTotal)
	s.inEdges = make([]Edge, inTotal)
	for v := 0; v < n; v++ {
		copy(s.outEdges[s.outOff[v]:], g.out[v])
		copy(s.inEdges[s.inOff[v]:], g.in[v])
	}
	return s
}

// snapshotEdgeBytes is the in-memory size of one Edge entry (NodeID +
// LabelID + EdgeID, 4 bytes each); snapshotOffBytes of one offset entry.
const (
	snapshotEdgeBytes = 12
	snapshotOffBytes  = 4
)

// Bytes reports the approximate resident footprint of the snapshot's arenas
// in bytes: both CSR edge arenas, both offset tables, and the label array.
// The bench-scale report uses it to publish per-epoch snapshot cost.
func (s *Snapshot) Bytes() int {
	return snapshotEdgeBytes*(len(s.outEdges)+len(s.inEdges)) +
		snapshotOffBytes*(len(s.outOff)+len(s.inOff)) +
		snapshotOffBytes*len(s.labelOf)
}

// NumNodes reports the number of nodes at snapshot time.
func (s *Snapshot) NumNodes() int { return len(s.labelOf) }

// NumEdges reports the number of directed edges at snapshot time.
func (s *Snapshot) NumEdges() int { return s.numEdges }

// LabelIDOf returns the interned label of a node, or NoLabel if out of range.
func (s *Snapshot) LabelIDOf(id NodeID) LabelID {
	if id < 0 || int(id) >= len(s.labelOf) {
		return NoLabel
	}
	return s.labelOf[id]
}

// Out returns the outgoing edges of a node in insertion order. The slice
// aliases the snapshot's arena and must not be modified.
func (s *Snapshot) Out(id NodeID) []Edge {
	if id < 0 || int(id) >= len(s.labelOf) {
		return nil
	}
	return s.outEdges[s.outOff[id]:s.outOff[id+1]]
}

// In returns the incoming edges of a node (Edge.To holds the source), in
// insertion order. The slice aliases the snapshot's arena.
func (s *Snapshot) In(id NodeID) []Edge {
	if id < 0 || int(id) >= len(s.labelOf) {
		return nil
	}
	return s.inEdges[s.inOff[id]:s.inOff[id+1]]
}

// Degree reports the total (in + out) degree of a node at snapshot time.
func (s *Snapshot) Degree(id NodeID) int {
	if id < 0 || int(id) >= len(s.labelOf) {
		return 0
	}
	return int(s.outOff[id+1]-s.outOff[id]) + int(s.inOff[id+1]-s.inOff[id])
}

package mining

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func benchNetwork(tb testing.TB, n int) (*graph.Graph, []graph.NodeID) {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("user", map[string]string{
			"exp":  strconv.Itoa(1 + rng.Intn(8)),
			"city": "c" + strconv.Itoa(rng.Intn(20)),
		})
	}
	for i := 0; i < n*3; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "corev")
	}
	anchors := make([]graph.NodeID, 40)
	for i := range anchors {
		anchors[i] = graph.NodeID(rng.Intn(n))
	}
	return g, anchors
}

func BenchmarkSumGen(b *testing.B) {
	g, anchors := benchNetwork(b, 2000)
	cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		er := NewErCache(g, 2)
		SumGen(g, anchors, anchors, cfg, er)
	}
}

// BenchmarkSumGenParallel sweeps the worker count over the same workload as
// BenchmarkSumGen (workers=1 is the sequential engine). The speedup scales
// with available cores — on a single-core machine the sweep only measures
// pipeline overhead, so run it on multicore hardware to reproduce the
// speedup numbers; output is byte-identical at every setting either way.
func BenchmarkSumGenParallel(b *testing.B) {
	g, anchors := benchNetwork(b, 4000)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 100, Workers: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				er := NewErCache(g, 2)
				SumGen(g, anchors, anchors, cfg, er)
			}
		})
	}
}

// BenchmarkSumGenPartitioned runs the BenchmarkSumGen workload through
// focus-region shards. The partition is built once outside the loop — the
// serving pattern, where one epoch's regions are shared by every request —
// so the delta against BenchmarkSumGen isolates shard-local mining plus the
// scatter-gather merge. Output is byte-identical at every shard count.
func BenchmarkSumGenPartitioned(b *testing.B) {
	g, anchors := benchNetwork(b, 2000)
	focus := g.NodesWithLabel("user")
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 100}
			cfg.Regions = BuildRegions(g, focus, RegionConfig{Shards: shards, R: 2, Seed: 42})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SumGen(g, anchors, anchors, cfg, nil)
			}
		})
	}
}

// BenchmarkErCacheWarm measures parallel pre-warming of E_v^r across worker
// counts (workers=1 is a plain sequential fill).
func BenchmarkErCacheWarm(b *testing.B) {
	g, _ := benchNetwork(b, 4000)
	nodes := g.NodesWithLabel("user")[:1000]
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NewErCache(g, 2).Warm(nodes, w)
			}
		})
	}
}

func BenchmarkFrequent(b *testing.B) {
	g, _ := benchNetwork(b, 2000)
	universe := g.NodesWithLabel("user")[:500]
	cfg := Config{Radius: 2, MaxNodes: 3, MaxLiterals: 1, MaxPatterns: 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Frequent(g, universe, cfg, 20, 2)
	}
}

func BenchmarkErCacheGet(b *testing.B) {
	g, anchors := benchNetwork(b, 2000)
	er := NewErCache(g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		er.Get(anchors[i%len(anchors)])
	}
}

GO ?= go

.PHONY: all build test race lint fgslint vet staticcheck govulncheck bench bench-ci

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages again under the race detector (mirrors CI).
race:
	$(GO) test -race ./internal/mining/ ./internal/pattern/ ./internal/core/ ./internal/graph/ ./internal/obs/

# lint is the offline gate: go vet plus the repo's own determinism & safety
# multichecker (see DESIGN.md "Determinism contract & lint"). staticcheck and
# govulncheck are run by CI's lint job and locally only if installed.
lint: vet fgslint

vet:
	$(GO) vet ./...

fgslint:
	$(GO) run ./cmd/fgslint ./...

staticcheck:
	staticcheck ./...

govulncheck:
	govulncheck ./...

bench:
	$(GO) test -bench=. -benchmem -timeout 120m

# bench-ci mirrors CI's bench job: the performance-sensitive paths only,
# with the raw -json stream archived under a dated name for benchstat diffs.
bench-ci:
	$(GO) test -json -run '^$$' \
		-bench 'BenchmarkGreedyCover|BenchmarkSumGenParallel|BenchmarkErCacheHit|BenchmarkSumGenObs' \
		-benchmem ./internal/core/ ./internal/mining/ \
		| tee "BENCH_$$(date -u +%F).json"

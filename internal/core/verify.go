package core

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// Report is the outcome of Verify (procedure rverify, Section III-B): one
// boolean per checked condition plus the measured quantities.
type Report struct {
	// PatternBudgetOK: |P| <= k (always true when k = 0, i.e. unbounded).
	PatternBudgetOK bool
	// SizeOK: |P_V| <= n.
	SizeOK bool
	// BoundsOK: |P_V ∩ V_i| ∈ [l_i, u_i] for every group.
	BoundsOK bool
	// CoverageConsistent: the summary's recorded per-pattern covers match a
	// recomputation against the graph.
	CoverageConsistent bool
	// Lossless: P_E ∪ C = E^r_{P_V} exactly.
	Lossless bool
	// UtilityOK: F(P_V) >= bf.
	UtilityOK bool
	// CostOK: C_l <= bc.
	CostOK bool

	CoveredCount int
	GroupCounts  []int
	Utility      float64
	CL           int
}

// Feasible reports whether all structural conditions hold (budget, size,
// bounds, consistency, losslessness).
func (r Report) Feasible() bool {
	return r.PatternBudgetOK && r.SizeOK && r.BoundsOK && r.CoverageConsistent && r.Lossless
}

// OK reports full verification success including the utility and cost
// thresholds.
func (r Report) OK() bool { return r.Feasible() && r.UtilityOK && r.CostOK }

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf("feasible=%v (budget=%v size=%v bounds=%v consistent=%v lossless=%v) utility=%.1f>=bf:%v cl=%d<=bc:%v",
		r.Feasible(), r.PatternBudgetOK, r.SizeOK, r.BoundsOK, r.CoverageConsistent, r.Lossless, r.Utility, r.UtilityOK, r.CL, r.CostOK)
}

// Verify implements rverify: it checks that s is a feasible r-summary of the
// groups under cfg, that its recorded coverage matches the graph, that the
// reconstruction is lossless, and that utility and accumulated cost meet the
// thresholds bf and bc. As in the paper, coverage verification tests each
// group node against each pattern (no full match enumeration is required).
func Verify(g *graph.Graph, groups *submod.Groups, util submod.Utility, cfg Config, s *Summary, bc int, bf float64) Report {
	cfg = cfg.withDefaults()
	var r Report
	r.PatternBudgetOK = cfg.K == 0 || len(s.Patterns) <= cfg.K
	r.CoveredCount = len(s.Covered)
	r.SizeOK = len(s.Covered) <= cfg.N

	r.GroupCounts = groups.Counts(s.Covered)
	r.BoundsOK = groups.SatisfiesBounds(r.GroupCounts)

	// Consistency of the recorded coverage: every node a pattern claims to
	// cover must be a group node it actually matches at the focus, and the
	// union of the per-pattern covers must be exactly P_V.
	m := pattern.NewMatcher(g, cfg.Mining.EmbedCap)
	r.CoverageConsistent = true
	union := graph.NewNodeSet(len(s.Covered))
	for _, pi := range s.Patterns {
		for _, v := range pi.Covered {
			if _, ok := groups.IndexOf(v); !ok {
				r.CoverageConsistent = false
				break
			}
			if !m.MatchAt(pi.P, v) {
				r.CoverageConsistent = false
				break
			}
			union.Add(v)
		}
	}
	if union.Len() != len(s.Covered) {
		r.CoverageConsistent = false
	} else {
		for _, v := range s.Covered {
			if !union.Has(v) {
				r.CoverageConsistent = false
				break
			}
		}
	}

	missing, spurious := s.Reconstruct(g)
	r.Lossless = missing.Len() == 0 && spurious.Len() == 0

	r.Utility = submod.Eval(util, s.Covered)
	r.UtilityOK = r.Utility >= bf
	r.CL = s.CL
	r.CostOK = s.CL <= bc
	return r
}

package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full fgslint suite over the whole module and
// requires zero findings — the same gate CI applies via `go run
// ./cmd/fgslint ./...`. Having it as a plain test means a plain `go test
// ./...` also enforces the determinism contract, and a newly introduced
// violation fails with the analyzer's message and position.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; loader is missing the module", len(pkgs), root)
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or add a //lint:allow <analyzer> <why> escape hatch", len(diags))
	}
}

// Package store is fgstore, fgsd's durability subsystem (DESIGN.md §15): a
// segmented write-ahead log of applied update batches, periodic checksummed
// snapshots of the engine (FGSB graph + maintainer checkpoint), and a
// manifest tying the two together so recovery is "load latest snapshot,
// replay the WAL tail".
//
// The contract is determinism end to end: every logged record is a batch
// the Maintainer actually applied, replay goes through the same
// Maintainer.Apply path, and the snapshot checkpoints the maintainer's full
// decision state — so a recovered daemon's epoch counter, stats, and
// canonical summary bytes are identical to the pre-crash ones. The store
// itself is mechanism only; the serving engine decides what to log and when
// to snapshot.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// Fsync policies for Options.Fsync.
const (
	// FsyncBatch syncs inside every Append: a positive reply means the batch
	// is on disk. Strongest, slowest.
	FsyncBatch = "batch"
	// FsyncGroup (the default) batches syncs in a small flush window:
	// Append waits until a background fsync covers its record, amortizing
	// the sync across concurrent batches. Same durability guarantee as
	// "batch" — no Append returns before its record is on disk — at a
	// fraction of the per-batch cost under load.
	FsyncGroup = "group"
	// FsyncOff never syncs on the append path (the OS flushes eventually;
	// Close and segment rolls still sync). A crash can lose the most recent
	// acknowledged batches. Fastest; for bulk loads and benchmarks.
	FsyncOff = "off"
)

// manifestName is the manifest file inside the data directory.
const manifestName = "MANIFEST"

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if missing.
	Dir string
	// Fsync is the WAL durability policy: FsyncBatch, FsyncGroup (default),
	// or FsyncOff.
	Fsync string
	// GroupWindow is the group-commit flush interval (default 2ms).
	GroupWindow time.Duration
	// SegmentBytes caps a WAL segment before it rolls (default 64 MiB).
	SegmentBytes int64
	// Log receives boot/recovery lines; nil discards.
	Log *slog.Logger
	// Clock is the sanctioned timing source for fsync/snapshot metrics;
	// nil uses the system clock.
	Clock obs.Clock
}

func (o Options) withDefaults() (Options, error) {
	switch o.Fsync {
	case "":
		o.Fsync = FsyncGroup
	case FsyncBatch, FsyncGroup, FsyncOff:
	default:
		return o, fmt.Errorf("store: unknown fsync policy %q (have %q, %q, %q)", o.Fsync, FsyncBatch, FsyncGroup, FsyncOff)
	}
	if o.GroupWindow <= 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Log == nil {
		o.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Clock == nil {
		o.Clock = obs.System()
	}
	return o, nil
}

// Recovered is what Open found in the data directory. A fresh directory has
// Fresh true and a nil Graph: the caller builds its initial state from its
// own inputs and seals it with WriteSnapshot before the first Append.
// Otherwise Graph/State are the snapshot image and Tail the WAL records
// past it, in epoch order; the caller replays Tail through the same apply
// path that produced it.
type Recovered struct {
	// Fresh reports an empty data directory (no manifest).
	Fresh bool
	// SnapshotEpoch is the epoch of the loaded snapshot.
	SnapshotEpoch uint64
	// Epoch is the final epoch after the tail: SnapshotEpoch + len(Tail).
	Epoch uint64
	// Graph is the snapshot's graph image (nil when Fresh).
	Graph *graph.Graph
	// State is the snapshot's maintainer checkpoint (nil when Fresh).
	State *core.MaintainerState
	// Tail holds the WAL records with epochs past the snapshot.
	Tail []Record
	// TailBytes is the encoded size of Tail.
	TailBytes int64
	// Truncated reports that the final record was torn (crash mid-append)
	// and the last segment was cut back to the preceding record boundary.
	Truncated bool
	// Segments is the number of WAL segment files on disk.
	Segments int
}

// Store is an open fgstore data directory. Append and BeginSnapshot are
// safe for concurrent use (one snapshot in flight at a time); Close is
// final. Open → Close is a checked lifecycle pair (fgslint pairdiscipline).
type Store struct {
	dir   string
	opts  Options
	wal   *wal
	log   *slog.Logger
	clock obs.Clock

	// snapEpoch is the live snapshot's epoch (the manifest's watermark).
	snapEpoch atomic.Uint64
	// snapInFlight serializes snapshots: writing two concurrently would
	// race on the manifest.
	snapInFlight atomic.Bool

	snapshots   obs.Counter
	snapshotUs  obs.Histogram
	replayRecs  obs.Gauge
	replayBytes obs.Gauge
	truncations obs.Counter
}

// Open opens (creating if needed) a data directory, verifies and loads the
// latest snapshot, and scans the WAL tail. It returns the store ready for
// appends plus what it recovered; the caller replays Recovered.Tail before
// serving. A torn final record — the signature of a crash mid-append — is
// truncated away and reported, never replayed; torn or corrupt data
// anywhere else fails Open.
func Open(opts Options) (*Store, *Recovered, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if opts.Dir == "" {
		return nil, nil, errors.New("store: no data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	sweepTmp(opts.Dir)

	s := &Store{dir: opts.Dir, opts: opts, log: opts.Log, clock: opts.Clock}
	rec, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	s.wal = newWAL(opts.Dir, opts.Fsync, opts.GroupWindow, opts.SegmentBytes, opts.Clock)
	s.wal.segments.Set(int64(rec.Segments))
	s.replayRecs.Set(int64(len(rec.Tail)))
	s.replayBytes.Set(rec.TailBytes)
	if rec.Truncated {
		s.truncations.Inc()
	}

	if err := s.resumeTail(); err != nil {
		s.wal.close() //lint:allow errdrop (open is failing; the close error is secondary)
		return nil, nil, err
	}
	return s, rec, nil
}

// resumeTail resumes appending into the last segment so restarts do not
// shed tiny segments; a torn tail was already cut back to a record boundary.
func (s *Store) resumeTail() error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(segs) == 0 {
		return nil
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(filepath.Join(s.dir, last))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if fi.Size() < s.opts.SegmentBytes {
		if err := s.wal.reopen(last, fi.Size()); err != nil {
			return fmt.Errorf("store: reopen WAL segment: %w", err)
		}
	}
	return nil
}

// recover reads the manifest, snapshot, and WAL tail.
func (s *Store) recover() (*Recovered, error) {
	manifest, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		// Fresh directory — but only if it really is: state without a
		// manifest means a lost manifest, and silently starting empty would
		// discard the data.
		snaps, serr := listSnapshots(s.dir)
		segs, gerr := listSegments(s.dir)
		if serr != nil || gerr != nil {
			return nil, fmt.Errorf("store: scan %s: %w", s.dir, errors.Join(serr, gerr))
		}
		if len(snaps) > 0 || len(segs) > 0 {
			return nil, fmt.Errorf("store: %s has %d snapshots and %d WAL segments but no manifest", s.dir, len(snaps), len(segs))
		}
		return &Recovered{Fresh: true}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	snapFile, err := parseManifest(manifest)
	if err != nil {
		return nil, err
	}
	epoch, g, ms, err := readSnapshot(filepath.Join(s.dir, snapFile))
	if err != nil {
		return nil, err
	}
	if nameEpoch, _ := parseSnapshotName(snapFile); nameEpoch != epoch {
		return nil, fmt.Errorf("store: snapshot %s carries epoch %d", snapFile, epoch)
	}
	s.snapEpoch.Store(epoch)

	rec := &Recovered{SnapshotEpoch: epoch, Epoch: epoch, Graph: g, State: ms}
	if err := s.replayTail(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// replayTail scans every WAL segment, collecting the records past the
// snapshot into rec.Tail. Applied batches advance the epoch by exactly one,
// so the tail must be gapless from SnapshotEpoch+1; any discontinuity means
// a lost or reordered segment and fails recovery loudly rather than
// recovering to a silently different state.
func (s *Store) replayTail(rec *Recovered) error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	rec.Segments = len(segs)
	for i, name := range segs {
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if len(data) < len(walMagic) || !bytes.Equal(data[:len(walMagic)], walMagic) {
			return fmt.Errorf("store: %s: not a WAL segment", name)
		}
		body := data[len(walMagic):]
		good, err := decodeRecords(body, func(r Record) error {
			if r.Epoch <= rec.SnapshotEpoch {
				return nil // already in the snapshot; truncation just hasn't caught up
			}
			if want := rec.Epoch + 1; r.Epoch != want {
				return fmt.Errorf("store: %s: epoch %d, want %d (gap in the log)", name, r.Epoch, want)
			}
			rec.Epoch = r.Epoch
			rec.Tail = append(rec.Tail, r)
			return nil
		})
		if err == nil {
			rec.TailBytes += good
			continue
		}
		if !errors.Is(err, errTornRecord) {
			return err // discontinuity or reader error: corrupt, not torn
		}
		if i != len(segs)-1 {
			return fmt.Errorf("store: %s: %w (not the final segment)", name, err)
		}
		// Torn final record: the crash signature. Cut the segment back to
		// the last intact record and carry on.
		rec.TailBytes += good
		rec.Truncated = true
		keep := int64(len(walMagic)) + good
		s.log.Warn("wal torn record truncated", "segment", name, "keep_bytes", keep, "drop_bytes", int64(len(data))-keep)
		if err := os.Truncate(path, keep); err != nil {
			return fmt.Errorf("store: truncate %s: %w", name, err)
		}
		if err := fsyncFile(path); err != nil {
			return fmt.Errorf("store: sync truncated %s: %w", name, err)
		}
	}
	return nil
}

// Append logs one applied batch. It returns once the record is durable per
// the configured fsync policy. An error means the log can no longer accept
// writes (sticky); the caller must stop acknowledging batches.
func (s *Store) Append(rec Record) error {
	return s.wal.append(appendRecord(nil, rec), rec.Epoch)
}

// BeginSnapshot starts writing the snapshot at the given epoch. The caller
// streams the body (WriteGraph, WriteState) and must finish with exactly
// one of Commit or Abort. One snapshot may be in flight at a time.
func (s *Store) BeginSnapshot(epoch uint64) (*Snapshot, error) {
	if !s.snapInFlight.CompareAndSwap(false, true) {
		return nil, errors.New("store: snapshot already in flight")
	}
	path := filepath.Join(s.dir, snapshotName(epoch)+".tmp")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		s.snapInFlight.Store(false)
		return nil, fmt.Errorf("store: begin snapshot: %w", err)
	}
	sn := newSnapshot(s, epoch, f, path)
	// The magic stays outside the checksum; the epoch opens the body.
	if _, err := sn.bw.Write(snapMagic); err != nil {
		sn.Abort()
		return nil, fmt.Errorf("store: begin snapshot: %w", err)
	}
	if _, err := sn.cw.Write(binary.AppendUvarint(nil, epoch)); err != nil {
		sn.Abort()
		return nil, fmt.Errorf("store: begin snapshot: %w", err)
	}
	return sn, nil
}

// WriteSnapshot writes and commits a full snapshot in one call.
func (s *Store) WriteSnapshot(epoch uint64, g *graph.Graph, ms *core.MaintainerState) error {
	sn, err := s.BeginSnapshot(epoch)
	if err != nil {
		return err
	}
	sn.WriteGraph(g)
	sn.WriteState(ms)
	return sn.Commit()
}

// publishSnapshot (called by Snapshot.Commit) makes the freshly renamed
// snapshot the live one: manifest swap, then garbage collection of
// superseded snapshots and fully covered WAL segments.
func (s *Store) publishSnapshot(epoch uint64) error {
	if err := s.writeManifest(snapshotName(epoch)); err != nil {
		return err
	}
	s.snapEpoch.Store(epoch)
	s.snapshots.Inc()
	// Roll on the next append so the log's active segment starts after the
	// snapshot watermark and the pre-snapshot segments become collectable
	// at the next commit.
	s.wal.mu.Lock()
	s.wal.rollNext = true
	s.wal.mu.Unlock()
	s.collectGarbage(epoch)
	return nil
}

// collectGarbage removes snapshots older than the live one and WAL segments
// every record of which is at or below the live snapshot's epoch. A segment
// is provably covered when a successor segment exists whose first record is
// at most epoch+1: segment names are first-record epochs, so everything in
// the predecessor is ≤ epoch. Deletion failures are logged, not fatal —
// the files are garbage, not state.
func (s *Store) collectGarbage(epoch uint64) {
	snaps, err := listSnapshots(s.dir)
	if err != nil {
		s.log.Warn("snapshot gc scan failed", "err", err)
		return
	}
	removed := false
	for _, name := range snaps {
		if e, _ := parseSnapshotName(name); e < epoch {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				s.log.Warn("snapshot gc failed", "file", name, "err", err)
			} else {
				removed = true
			}
		}
	}
	segs, err := listSegments(s.dir)
	if err != nil {
		s.log.Warn("wal gc scan failed", "err", err)
		return
	}
	for i := 0; i+1 < len(segs); i++ {
		next, _ := parseSegmentName(segs[i+1])
		if next > epoch+1 {
			break
		}
		if err := os.Remove(filepath.Join(s.dir, segs[i])); err != nil {
			s.log.Warn("wal gc failed", "file", segs[i], "err", err)
		} else {
			removed = true
			s.wal.segments.Set(s.wal.segments.Load() - 1)
		}
	}
	if removed {
		if err := syncDir(s.dir); err != nil {
			s.log.Warn("wal gc dir sync failed", "err", err)
		}
	}
}

// writeManifest atomically replaces the manifest.
func (s *Store) writeManifest(snapFile string) error {
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	body := fmt.Sprintf("fgstore 1\nsnapshot %s\n", snapFile)
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := fsyncFile(tmp); err != nil {
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("store: rename manifest: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("store: sync manifest dir: %w", err)
	}
	return nil
}

// parseManifest extracts the live snapshot file name.
func parseManifest(data []byte) (string, error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 || lines[0] != "fgstore 1" {
		return "", fmt.Errorf("store: malformed manifest (header %q)", firstLine(data))
	}
	name, ok := strings.CutPrefix(lines[1], "snapshot ")
	if !ok {
		return "", fmt.Errorf("store: malformed manifest (line %q)", lines[1])
	}
	if _, ok := parseSnapshotName(name); !ok {
		return "", fmt.Errorf("store: manifest names invalid snapshot %q", name)
	}
	return name, nil
}

func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return string(data[:i])
	}
	return string(data)
}

// SnapshotEpoch returns the live snapshot's epoch (the manifest watermark).
func (s *Store) SnapshotEpoch() uint64 { return s.snapEpoch.Load() }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Close seals the WAL (final sync) and releases the store. It does not
// snapshot; callers wanting a snapshot-on-drain take one first.
func (s *Store) Close() error { return s.wal.close() }

// ObsMetrics exports the store's instruments (obs.Source).
func (s *Store) ObsMetrics() []obs.Metric {
	fsync := s.wal.fsyncUs.Snapshot()
	snap := s.snapshotUs.Snapshot()
	return []obs.Metric{
		{Name: "fgs_store_wal_appends_total", Help: "WAL records appended.", Kind: obs.KindCounter, Value: float64(s.wal.appends.Load())},
		{Name: "fgs_store_wal_bytes_total", Help: "WAL bytes appended.", Kind: obs.KindCounter, Value: float64(s.wal.bytes.Load())},
		{Name: "fgs_store_wal_fsyncs_total", Help: "WAL fsync calls.", Kind: obs.KindCounter, Value: float64(s.wal.fsyncs.Load())},
		{Name: "fgs_store_wal_fsync_us", Help: "WAL fsync latency (µs).", Kind: obs.KindHistogram, Hist: &fsync},
		{Name: "fgs_store_wal_segments", Help: "WAL segment files on disk.", Kind: obs.KindGauge, Value: float64(s.wal.segments.Load())},
		{Name: "fgs_store_snapshots_total", Help: "Snapshots committed since open.", Kind: obs.KindCounter, Value: float64(s.snapshots.Load())},
		{Name: "fgs_store_snapshot_us", Help: "Snapshot write+commit latency (µs).", Kind: obs.KindHistogram, Hist: &snap},
		{Name: "fgs_store_snapshot_epoch", Help: "Epoch of the live snapshot.", Kind: obs.KindGauge, Value: float64(s.snapEpoch.Load())},
		{Name: "fgs_store_recovery_replayed_records", Help: "WAL records replayed at the last open.", Kind: obs.KindGauge, Value: float64(s.replayRecs.Load())},
		{Name: "fgs_store_recovery_replayed_bytes", Help: "WAL bytes replayed at the last open.", Kind: obs.KindGauge, Value: float64(s.replayBytes.Load())},
		{Name: "fgs_store_recovery_truncations_total", Help: "Torn WAL records truncated at open.", Kind: obs.KindCounter, Value: float64(s.truncations.Load())},
	}
}

// sweepTmp removes leftover *.tmp files from a crash mid-snapshot or
// mid-manifest-swap; the rename never happened, so they are garbage.
func sweepTmp(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".tmp") && !ent.IsDir() {
			os.Remove(filepath.Join(dir, ent.Name())) //lint:allow errdrop (best-effort sweep)
		}
	}
}

// fsyncFile opens and syncs one file by path.
func fsyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errdrop (sync result is what matters)
	return f.Sync()
}

package main

// The load-driver mode: fgsbench -load <url> drives a seeded mix of
// summarize / view / workload / stats / update traffic at a running fgsd and
// reports per-endpoint latency percentiles, status splits, cache hits, and
// the server-side stage breakdown (parsed from Server-Timing response
// headers). Each request carries a W3C traceparent generated from the same
// seeded rand as the mix, so a request in the report can be matched to the
// server's logs and flight recorder by trace ID. The mix is deterministic
// per (seed, concurrency): each client goroutine owns a rand seeded from the
// base seed and its index, so two runs against the same server issue the
// same request multiset.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cwru-db/fgs/internal/obs"
)

type loadConfig struct {
	BaseURL     string
	Requests    int
	Concurrency int
	Seed        int64
}

// loadSample is one completed request as seen by a client goroutine.
type loadSample struct {
	endpoint string
	status   int
	cacheHit bool
	latency  time.Duration
	err      error
	// stages is the server-side per-stage breakdown from the Server-Timing
	// response header (nil when the server has tracing disabled).
	stages map[string]time.Duration
	// readsInFlight is the number of read requests in flight when this
	// request started — recorded for updates, to surface writer starvation:
	// an update that is slow only while readers saturate the engine is the
	// signature of reads blocking the write path.
	readsInFlight int64
}

// inflightReads counts read requests currently in flight across all client
// goroutines (updates excluded).
var inflightReads atomic.Int64

// viewPatterns are the pattern texts the view traffic cycles through; they
// match the demo LKI schema but are harmless 0-count queries elsewhere.
var viewPatterns = []string{
	"n 0 user\nf 0",
	"n 0 user\nn 1 user\ne 1 0 corev\nf 0",
	"n 0 user\nn 1 org\ne 0 1 employed\nf 0",
}

// nextRequest picks one weighted request from the mix: 35% summarize,
// 10% summarize-k, 20% view, 5% workload, 20% stats, 10% update.
func nextRequest(r *rand.Rand) (endpoint, method, path string, body any) {
	switch p := r.Intn(100); {
	case p < 35:
		return "summarize", http.MethodPost, "/v1/summarize",
			map[string]int{"n": 5 + 5*r.Intn(4)}
	case p < 45:
		return "summarize-k", http.MethodPost, "/v1/summarize-k",
			map[string]int{"k": 1 + r.Intn(3), "n": 10}
	case p < 65:
		return "view", http.MethodPost, "/v1/view",
			map[string]string{"pattern": viewPatterns[r.Intn(len(viewPatterns))]}
	case p < 70:
		return "workload", http.MethodPost, "/v1/workload", nil
	case p < 90:
		return "stats", http.MethodGet, "/v1/stats", nil
	default:
		// Writes between low-id nodes: inserts may be duplicates and deletes
		// may miss (both answered 400 with applied=0) — that is part of the
		// mix, exercising the no-op-write path without growing the graph
		// without bound.
		change := map[string]any{"from": r.Intn(64), "to": r.Intn(64), "label": "corev"}
		if r.Intn(2) == 0 {
			return "update", http.MethodPost, "/v1/update", map[string]any{"insert": []any{change}}
		}
		return "update", http.MethodPost, "/v1/update", map[string]any{"delete": []any{change}}
	}
}

// runLoad sends cfg.Requests requests from cfg.Concurrency goroutines and
// writes the per-endpoint report to w.
func runLoad(w io.Writer, cfg loadConfig) error {
	if cfg.Requests <= 0 || cfg.Concurrency <= 0 {
		return fmt.Errorf("load: requests and concurrency must be positive")
	}
	client := &http.Client{Timeout: 60 * time.Second}
	if _, err := client.Get(cfg.BaseURL + "/healthz"); err != nil {
		return fmt.Errorf("load: target not reachable: %w", err)
	}

	samples := make([]loadSample, cfg.Requests)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= cfg.Requests {
					return
				}
				samples[i] = doRequest(client, cfg.BaseURL, rng)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(w, samples, elapsed)
	return nil
}

func doRequest(client *http.Client, base string, rng *rand.Rand) loadSample {
	endpoint, method, path, body := nextRequest(rng)
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return loadSample{endpoint: endpoint, err: err}
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return loadSample{endpoint: endpoint, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("traceparent", nextTraceparent(rng))
	isWrite := endpoint == "update"
	var overlapped int64
	if isWrite {
		overlapped = inflightReads.Load()
	} else {
		inflightReads.Add(1)
		defer inflightReads.Add(-1)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		return loadSample{endpoint: endpoint, latency: lat, err: err, readsInFlight: overlapped}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return loadSample{
		endpoint:      endpoint,
		status:        resp.StatusCode,
		cacheHit:      resp.Header.Get("X-Fgs-Cache") == "hit",
		latency:       lat,
		readsInFlight: overlapped,
		stages:        obs.ParseServerTiming(resp.Header.Get("Server-Timing")),
	}
}

// nextTraceparent mints a W3C traceparent from the client goroutine's seeded
// rand, so the trace IDs a run sends — and therefore what lands in the
// server's logs, exemplars, and flight recorder — are reproducible per
// (seed, concurrency). Zero IDs are invalid per the spec; nudge them.
func nextTraceparent(rng *rand.Rand) string {
	hi, lo, span := rng.Uint64(), rng.Uint64(), rng.Uint64()
	if hi|lo == 0 {
		lo = 1
	}
	if span == 0 {
		span = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-01", hi, lo, span)
}

// report aggregates samples by endpoint and prints the load table.
func report(w io.Writer, samples []loadSample, elapsed time.Duration) {
	type agg struct {
		reqs, ok, clientErr, serverErr, netErr, cacheHits int
		lats                                              []time.Duration
	}
	byEndpoint := map[string]*agg{}
	var order []string
	for _, s := range samples {
		a := byEndpoint[s.endpoint]
		if a == nil {
			a = &agg{}
			byEndpoint[s.endpoint] = a
			order = append(order, s.endpoint)
		}
		a.reqs++
		switch {
		case s.err != nil:
			a.netErr++
		case s.status >= 500:
			a.serverErr++
		case s.status >= 400:
			a.clientErr++
		default:
			a.ok++
		}
		if s.cacheHit {
			a.cacheHits++
		}
		a.lats = append(a.lats, s.latency)
	}
	sort.Strings(order)

	fmt.Fprintf(w, "load: %d requests in %v (%.1f req/s)\n\n",
		len(samples), elapsed.Round(time.Millisecond),
		float64(len(samples))/elapsed.Seconds())
	fmt.Fprintf(w, "%-12s %6s %6s %5s %5s %5s %6s %9s %9s %9s %9s %9s\n",
		"endpoint", "reqs", "2xx", "4xx", "5xx", "net", "cache", "p50", "p95", "p99", "p99.9", "max")
	fmt.Fprintln(w, strings.Repeat("-", 104))
	for _, e := range order {
		a := byEndpoint[e]
		sort.Slice(a.lats, func(i, j int) bool { return a.lats[i] < a.lats[j] })
		fmt.Fprintf(w, "%-12s %6d %6d %5d %5d %5d %6d %9v %9v %9v %9v %9v\n",
			e, a.reqs, a.ok, a.clientErr, a.serverErr, a.netErr, a.cacheHits,
			permille(a.lats, 500), permille(a.lats, 950), permille(a.lats, 990),
			permille(a.lats, 999), permille(a.lats, 1000))
	}
	reportStages(w, samples)
	reportStarvation(w, samples)
}

// loadStageNames is the column order of the server-side breakdown — the
// pipeline order of fgsd's request stages.
var loadStageNames = []string{"cache", "admission", "pin", "partition", "compute", "encode"}

// reportStages prints the server-side stage breakdown: the mean time each
// endpoint spent per pipeline stage, as reported by the server itself via
// Server-Timing. Client latency minus the stage sum is network + queueing
// outside the traced stages. Silent when the server sent no stage timings
// (tracing disabled).
func reportStages(w io.Writer, samples []loadSample) {
	type agg struct {
		n      int
		stages map[string]time.Duration
	}
	byEndpoint := map[string]*agg{}
	var order []string
	for _, s := range samples {
		if len(s.stages) == 0 {
			continue
		}
		a := byEndpoint[s.endpoint]
		if a == nil {
			a = &agg{stages: map[string]time.Duration{}}
			byEndpoint[s.endpoint] = a
			order = append(order, s.endpoint)
		}
		a.n++
		for name, d := range s.stages {
			a.stages[name] += d
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Strings(order)

	fmt.Fprintf(w, "\nserver-side stage breakdown (mean per request, from Server-Timing):\n")
	fmt.Fprintf(w, "%-12s %6s", "endpoint", "reqs")
	for _, st := range loadStageNames {
		fmt.Fprintf(w, " %10s", st)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 19+11*len(loadStageNames)))
	for _, e := range order {
		a := byEndpoint[e]
		fmt.Fprintf(w, "%-12s %6d", e, a.n)
		for _, st := range loadStageNames {
			mean := time.Duration(0)
			if a.n > 0 {
				mean = a.stages[st] / time.Duration(a.n)
			}
			fmt.Fprintf(w, " %10v", mean.Round(10*time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}

// reportStarvation summarizes write latency as a function of concurrent
// read pressure: the worst update latency observed while at least one read
// was in flight, against the worst with no reads in flight. A large gap is
// the signature of the locked read path (readers holding the lock starve
// the writer); the MVCC path keeps the two close.
func reportStarvation(w io.Writer, samples []loadSample) {
	var contended, uncontended []loadSample
	for _, s := range samples {
		if s.endpoint != "update" || s.err != nil {
			continue
		}
		if s.readsInFlight > 0 {
			contended = append(contended, s)
		} else {
			uncontended = append(uncontended, s)
		}
	}
	if len(contended) == 0 {
		return
	}
	maxOf := func(ss []loadSample) time.Duration {
		var m time.Duration
		for _, s := range ss {
			if s.latency > m {
				m = s.latency
			}
		}
		return m.Round(10 * time.Microsecond)
	}
	fmt.Fprintf(w, "\nwriter starvation: %d/%d updates overlapped in-flight reads; max update latency %v under read load",
		len(contended), len(contended)+len(uncontended), maxOf(contended))
	if len(uncontended) > 0 {
		fmt.Fprintf(w, " vs %v unloaded", maxOf(uncontended))
	}
	fmt.Fprintln(w)
}

// permille returns the p-th permille (p50 = 500, p99.9 = 999) of sorted
// latencies, rounded for display.
func permille(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)-1)*p/1000 + 1
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1].Round(10 * time.Microsecond)
}

package pattern

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

// bruteMatchAt is a reference implementation of anchored subgraph
// isomorphism: enumerate every injective assignment of pattern nodes to
// graph nodes with the focus pinned, and check all constraints. Exponential,
// only usable on tiny inputs — which is exactly what makes it a trustworthy
// oracle for the optimized matcher.
func bruteMatchAt(g *graph.Graph, p *Pattern, anchor graph.NodeID) bool {
	n := len(p.Nodes)
	assign := make([]graph.NodeID, n)
	used := make(map[graph.NodeID]bool)

	nodeOK := func(u int, v graph.NodeID) bool {
		if g.LabelOf(v) != p.Nodes[u].Label {
			return false
		}
		for _, lit := range p.Nodes[u].Literals {
			got, ok := g.AttrString(v, lit.Key)
			if !ok || got != lit.Val {
				return false
			}
		}
		return true
	}
	edgesOK := func() bool {
		for _, e := range p.Edges {
			lid, ok := g.EdgeLabelID(e.Label)
			if !ok || !g.HasEdge(assign[e.From], assign[e.To], lid) {
				return false
			}
		}
		return true
	}

	var rec func(u int) bool
	rec = func(u int) bool {
		if u == n {
			return edgesOK()
		}
		if u == p.Focus {
			return rec(u + 1)
		}
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if used[v] || !nodeOK(u, v) {
				continue
			}
			assign[u] = v
			used[v] = true
			if rec(u + 1) {
				delete(used, v)
				return true
			}
			delete(used, v)
		}
		return false
	}

	if !nodeOK(p.Focus, anchor) {
		return false
	}
	assign[p.Focus] = anchor
	used[anchor] = true
	return rec(0)
}

// randomPattern grows a small random connected pattern.
func randomPattern(rng *rand.Rand, labels, elabels []string, maxNodes int) *Pattern {
	p := NewNodePattern(labels[rng.Intn(len(labels))])
	if rng.Intn(2) == 0 {
		p.Nodes[0].Literals = []Literal{{Key: "a", Val: []string{"1", "2"}[rng.Intn(2)]}}
	}
	size := 1 + rng.Intn(maxNodes)
	for len(p.Nodes) < size {
		at := rng.Intn(len(p.Nodes))
		p = p.AddLeaf(at, Node{Label: labels[rng.Intn(len(labels))]}, elabels[rng.Intn(len(elabels))], rng.Intn(2) == 0)
	}
	// Occasionally close a cycle.
	if len(p.Nodes) >= 3 && rng.Intn(2) == 0 {
		from := rng.Intn(len(p.Nodes))
		to := rng.Intn(len(p.Nodes))
		if from != to {
			if q := p.AddClosingEdge(from, to, elabels[rng.Intn(len(elabels))]); q != nil {
				p = q
			}
		}
	}
	return p
}

// randomDenseGraph builds a small random labeled attributed graph.
func randomDenseGraph(rng *rand.Rand, n int, labels, elabels []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		var attrs map[string]string
		if rng.Intn(2) == 0 {
			attrs = map[string]string{"a": []string{"1", "2"}[rng.Intn(2)]}
		}
		g.AddNode(labels[rng.Intn(len(labels))], attrs)
	}
	m := n * 2
	for i := 0; i < m; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), elabels[rng.Intn(len(elabels))])
	}
	return g
}

// TestMatchAtAgainstBruteForce cross-checks the backtracking matcher against
// the exhaustive oracle on hundreds of random (graph, pattern, anchor)
// triples.
func TestMatchAtAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	labels := []string{"x", "y"}
	elabels := []string{"e", "f"}
	for trial := 0; trial < 150; trial++ {
		g := randomDenseGraph(rng, 8, labels, elabels)
		m := NewMatcher(g, 0)
		p := randomPattern(rng, labels, elabels, 4)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid pattern: %v", trial, err)
		}
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			want := bruteMatchAt(g, p, v)
			got := m.MatchAt(p, v)
			if got != want {
				t.Fatalf("trial %d: MatchAt(%s, %d) = %v, oracle says %v", trial, p, v, got, want)
			}
		}
	}
}

// TestCoveredEdgesAreRealMatches: every edge reported by CoveredEdgesAt must
// exist in the graph and carry a label some pattern edge requires.
func TestCoveredEdgesAreRealMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	labels := []string{"x", "y"}
	elabels := []string{"e", "f"}
	for trial := 0; trial < 60; trial++ {
		g := randomDenseGraph(rng, 8, labels, elabels)
		m := NewMatcher(g, 0)
		p := randomPattern(rng, labels, elabels, 4)
		wantLabels := map[string]bool{}
		for _, e := range p.Edges {
			wantLabels[e.Label] = true
		}
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			edges, ok := m.CoveredEdgesAt(p, v)
			if !ok {
				continue
			}
			if len(p.Edges) > 0 && edges.Len() == 0 {
				t.Fatalf("trial %d: embedding exists but no covered edges", trial)
			}
			for e := range edges {
				if !g.HasEdge(e.From, e.To, e.Label) {
					t.Fatalf("trial %d: covered edge %v not in graph", trial, e)
				}
				if !wantLabels[g.EdgeLabelName(e.Label)] {
					t.Fatalf("trial %d: covered edge label %q not in pattern", trial, g.EdgeLabelName(e.Label))
				}
			}
		}
	}
}

// Dual simulation must be complete w.r.t. isomorphism on random inputs: any
// node the backtracking matcher covers is in the simulation cover.
func TestDualSimCompleteOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	labels := []string{"x", "y"}
	elabels := []string{"e", "f"}
	for trial := 0; trial < 60; trial++ {
		g := randomDenseGraph(rng, 8, labels, elabels)
		m := NewMatcher(g, 0)
		p := randomPattern(rng, labels, elabels, 4)
		sim := m.SimCover(p)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if m.MatchAt(p, v) {
				if sim == nil || !sim.Has(v) {
					t.Fatalf("trial %d: iso-covered node %d missing from dual simulation (pattern %s)", trial, v, p)
				}
			}
		}
	}
}

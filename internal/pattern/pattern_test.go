package pattern

import (
	"strings"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

// fixture builds the running example of the paper (Fig. 2, simplified): a
// talent network with recommend edges and exp/industry attributes.
//
//	v0(user,exp=5,industry=Internet) <- v1(user) <- v3(user)
//	v0                               <- v2(user) <- v4(user)
//	v5(user,exp=4,industry=Internet) <- v6(user), v7(user)
//	v8(user,exp=4,industry=Internet) <- v9(user)
//	v8                               <- v7
func fixture(t *testing.T) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g := graph.New()
	ids := make([]graph.NodeID, 0, 10)
	add := func(label string, attrs map[string]string) graph.NodeID {
		id := g.AddNode(label, attrs)
		ids = append(ids, id)
		return id
	}
	v0 := add("user", map[string]string{"exp": "5", "industry": "Internet"})
	v1 := add("user", nil)
	v2 := add("user", nil)
	v3 := add("user", nil)
	v4 := add("user", nil)
	v5 := add("user", map[string]string{"exp": "4", "industry": "Internet"})
	v6 := add("user", nil)
	v7 := add("user", nil)
	v8 := add("user", map[string]string{"exp": "4", "industry": "Internet"})
	v9 := add("user", nil)
	edge := func(a, b graph.NodeID) {
		if err := g.AddEdge(a, b, "recommend"); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	edge(v1, v0)
	edge(v2, v0)
	edge(v3, v1)
	edge(v4, v2)
	edge(v6, v5)
	edge(v7, v5)
	edge(v9, v8)
	edge(v7, v8)
	return g, ids
}

// star returns the pattern: focus user recommended by two distinct users.
func star(lits ...Literal) *Pattern {
	return &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "user", Literals: lits}, {Label: "user"}, {Label: "user"}},
		Edges: []Edge{{From: 1, To: 0, Label: "recommend"}, {From: 2, To: 0, Label: "recommend"}},
	}
}

func TestValidate(t *testing.T) {
	ok := star()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
	cases := []struct {
		name string
		p    *Pattern
	}{
		{"empty", &Pattern{}},
		{"bad focus", &Pattern{Focus: 5, Nodes: []Node{{Label: "x"}}}},
		{"edge out of range", &Pattern{Nodes: []Node{{Label: "x"}}, Edges: []Edge{{From: 0, To: 3}}}},
		{"self loop", &Pattern{Nodes: []Node{{Label: "x"}}, Edges: []Edge{{From: 0, To: 0}}}},
		{"disconnected", &Pattern{Nodes: []Node{{Label: "x"}, {Label: "y"}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); err == nil {
				t.Fatal("invalid pattern accepted")
			}
		})
	}
}

func TestRadiusAndSize(t *testing.T) {
	p := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "a"}, {Label: "b"}, {Label: "c"}},
		Edges: []Edge{{From: 0, To: 1, Label: "e"}, {From: 1, To: 2, Label: "e"}},
	}
	if p.Radius() != 2 {
		t.Fatalf("Radius = %d, want 2", p.Radius())
	}
	if p.Size() != 5 {
		t.Fatalf("Size = %d, want 5", p.Size())
	}
	if NewNodePattern("x").Radius() != 0 {
		t.Fatal("single node radius should be 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := star(Literal{Key: "exp", Val: "5"})
	c := p.Clone()
	c.Nodes[0].Literals[0].Val = "9"
	c.Edges[0].Label = "other"
	if p.Nodes[0].Literals[0].Val != "5" || p.Edges[0].Label != "recommend" {
		t.Fatal("Clone shares state with original")
	}
}

func TestAddLeafAndClosingEdge(t *testing.T) {
	p := NewNodePattern("user")
	p2 := p.AddLeaf(0, Node{Label: "user"}, "recommend", false) // new -> focus
	if len(p2.Nodes) != 2 || len(p2.Edges) != 1 {
		t.Fatalf("AddLeaf result wrong: %v", p2)
	}
	if p2.Edges[0].From != 1 || p2.Edges[0].To != 0 {
		t.Fatalf("AddLeaf direction wrong: %+v", p2.Edges[0])
	}
	if len(p.Nodes) != 1 {
		t.Fatal("AddLeaf mutated receiver")
	}
	p3 := p2.AddClosingEdge(0, 1, "recommend")
	if p3 == nil || len(p3.Edges) != 2 {
		t.Fatal("AddClosingEdge failed")
	}
	if p3.AddClosingEdge(0, 1, "recommend") != nil {
		t.Fatal("duplicate closing edge accepted")
	}
}

func TestMatchAtBasic(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p := star()
	// v0, v5, v8 each have two distinct recommenders.
	for _, v := range []graph.NodeID{ids[0], ids[5], ids[8]} {
		if !m.MatchAt(p, v) {
			t.Errorf("star should cover v%d", v)
		}
	}
	// v1 has only one recommender (v3): injectivity forbids reusing it.
	if m.MatchAt(p, ids[1]) {
		t.Error("star should not cover v1 (single recommender)")
	}
}

func TestMatchAtLiterals(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p5 := star(Literal{Key: "exp", Val: "5"})
	if !m.MatchAt(p5, ids[0]) {
		t.Error("exp=5 star should cover v0")
	}
	if m.MatchAt(p5, ids[5]) {
		t.Error("exp=5 star should not cover v5 (exp=4)")
	}
	p4 := star(Literal{Key: "exp", Val: "4"}, Literal{Key: "industry", Val: "Internet"})
	if !m.MatchAt(p4, ids[5]) || !m.MatchAt(p4, ids[8]) {
		t.Error("exp=4 Internet star should cover v5 and v8")
	}
	if m.MatchAt(p4, ids[0]) {
		t.Error("exp=4 star should not cover v0")
	}
}

func TestMatchAtUnknownStrings(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	if m.MatchAt(NewNodePattern("alien"), ids[0]) {
		t.Error("unknown label matched")
	}
	if m.MatchAt(NewNodePattern("user", Literal{Key: "nokey", Val: "x"}), ids[0]) {
		t.Error("unknown attr key matched")
	}
	if m.MatchAt(NewNodePattern("user", Literal{Key: "exp", Val: "999"}), ids[0]) {
		t.Error("unknown attr value matched")
	}
	p := NewNodePattern("user").AddLeaf(0, Node{Label: "user"}, "alienedge", false)
	if m.MatchAt(p, ids[0]) {
		t.Error("unknown edge label matched")
	}
}

func TestMatchAtEdgeDirection(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	// focus -> other (outgoing recommend). v0 has none; v1 has one (v1->v0).
	out := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "user"}, {Label: "user"}},
		Edges: []Edge{{From: 0, To: 1, Label: "recommend"}},
	}
	if m.MatchAt(out, ids[0]) {
		t.Error("v0 has no outgoing recommend")
	}
	if !m.MatchAt(out, ids[1]) {
		t.Error("v1 has outgoing recommend to v0")
	}
}

// Chain pattern exercises matching beyond one hop: focus <- a <- b.
func TestMatchAtChain(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	chain := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "user"}, {Label: "user"}, {Label: "user"}},
		Edges: []Edge{{From: 1, To: 0, Label: "recommend"}, {From: 2, To: 1, Label: "recommend"}},
	}
	if !m.MatchAt(chain, ids[0]) {
		t.Error("v0 has 2-chain v3->v1->v0")
	}
	if m.MatchAt(chain, ids[5]) {
		t.Error("v5 recommenders have no recommenders")
	}
}

func TestMatchInjectivity(t *testing.T) {
	// Triangle test: pattern wants two distinct recommenders; graph node with
	// a single recommender that has a self-reinforcing structure must fail.
	g := graph.New()
	a := g.AddNode("user", nil)
	b := g.AddNode("user", nil)
	if err := g.AddEdge(b, a, "recommend"); err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g, 0)
	if m.MatchAt(star(), a) {
		t.Error("injectivity violated: one recommender matched twice")
	}
}

func TestCoveredEdgesAt(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p := star()
	edges, ok := m.CoveredEdgesAt(p, ids[0])
	if !ok {
		t.Fatal("star should cover v0")
	}
	rec, _ := g.EdgeLabelID("recommend")
	want := []graph.EdgeRef{
		{From: ids[1], To: ids[0], Label: rec},
		{From: ids[2], To: ids[0], Label: rec},
	}
	if edges.Len() != 2 {
		t.Fatalf("covered edges = %d, want 2", edges.Len())
	}
	for _, e := range want {
		if !edges.Has(e) {
			t.Errorf("missing covered edge %v", e)
		}
	}
	if _, ok := m.CoveredEdgesAt(p, ids[1]); ok {
		t.Error("CoveredEdgesAt should fail where MatchAt fails")
	}
}

// With multiple embeddings the covered edge set is their union.
func TestCoveredEdgesUnionAcrossEmbeddings(t *testing.T) {
	g := graph.New()
	f := g.AddNode("user", nil)
	r1 := g.AddNode("user", nil)
	r2 := g.AddNode("user", nil)
	r3 := g.AddNode("user", nil)
	for _, r := range []graph.NodeID{r1, r2, r3} {
		if err := g.AddEdge(r, f, "recommend"); err != nil {
			t.Fatal(err)
		}
	}
	m := NewMatcher(g, 0)
	edges, ok := m.CoveredEdgesAt(star(), f)
	if !ok {
		t.Fatal("should match")
	}
	// Three recommenders, pattern needs two: 3 choose 2 embeddings (ordered:
	// 6) cover all three edges.
	if edges.Len() != 3 {
		t.Fatalf("covered edges = %d, want union of all 3", edges.Len())
	}
	// With a cap of 1, only one embedding's two edges are collected.
	m.EmbedCap = 1
	edges, _ = m.CoveredEdgesAt(star(), f)
	if edges.Len() != 2 {
		t.Fatalf("capped covered edges = %d, want 2", edges.Len())
	}
}

func TestCoverAmongAndFocusCandidates(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p := star()
	cands := m.FocusCandidates(p)
	if len(cands) != 10 { // all users satisfy label with no literals
		t.Fatalf("FocusCandidates = %d, want 10", len(cands))
	}
	covered := m.CoverAmong(p, cands)
	want := graph.NodeSetOf([]graph.NodeID{ids[0], ids[5], ids[8]})
	if len(covered) != 3 {
		t.Fatalf("CoverAmong = %v, want 3 nodes", covered)
	}
	for _, v := range covered {
		if !want.Has(v) {
			t.Errorf("unexpected covered node %d", v)
		}
	}
}

func TestMatchesWholeGraph(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	got := m.Matches(star())
	if len(got) != 3 || got[0] != ids[0] || got[1] != ids[5] || got[2] != ids[8] {
		t.Fatalf("Matches = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	p := star(Literal{Key: "exp", Val: "5"})
	s := p.String()
	for _, want := range []string{"0*user", "exp=5", "1-recommend->0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// MVCC serving (DESIGN.md §11): the writer owns the live graph and the
// Inc-FGS maintainer; readers never touch them. Instead, each graph-changing
// write batch publishes a new epochView — an immutable bundle of (epoch,
// graph replica, maintained summary) — and readers pin whichever view is
// current when they arrive, holding it for the request lifetime. A pinned
// view cannot change underneath its readers, so a summarize that takes
// seconds observes one frozen epoch while updates keep landing.
//
// Publication must be cheap enough to run per batch, so views are built by
// delta replay over a fixed replica pool, not by snapshotting: a replica
// is a Graph.Clone() of the live graph (byte-identical structure, paid once
// at boot), and bringing a replica from epoch e to epoch e' replays the
// logged write batches (e, e'] with exactly the semantics the maintainer
// used on the live graph — apply inserts skipping failures, then deletes
// skipping failures. Clone determinism (see graph.Clone) guarantees the
// replica converges to the writer's state, so publication costs O(delta),
// not O(V+E).
//
// All maxViews replicas are cloned up front in newViewSet, before the
// engine serves traffic: cloning a multi-million-node graph takes seconds
// (and far longer once concurrent readers drive the allocator), so growing
// the pool lazily on the write path would hand some unlucky early update a
// multi-second latency. Paying the whole pool at boot keeps the publish
// path free of O(V+E) work forever.
//
// Replica lifecycle: a retired view's graph returns to the free pool when
// its last reader unpins. When the writer needs a replica and none is free
// (every one is current or still pinned), it blocks on a condition variable
// until a reader releases one. Readers therefore bound the writer's memory
// to maxViews graph copies, and the writer's wait shows up in the
// writer_waits counter rather than as silent growth.
type viewSet struct {
	mu   sync.Mutex
	cond *sync.Cond

	cur      *epochView
	free     []replica    // replicas ready for catch-up replay
	retired  []*epochView // retired views still pinned by readers
	replicas int          // replicas in circulation (cur + retired + free)
	maxViews int

	// log holds the applied write batches for epochs (logBase, logBase+len],
	// so a replica at epoch e ≥ logBase catches up by replaying entries
	// (e-logBase)…end. Only the writer reads or mutates it (publication is
	// serialized by the server's write lock), so it is not guarded by mu.
	log     []core.Delta
	logBase uint64

	// logLenA/logBaseA mirror len(log)/logBase for the debug endpoint: the
	// log itself is writer-owned and unguarded, so introspection reads these
	// atomics (refreshed at the end of each publish) instead of the slice.
	logLenA  atomic.Int64
	logBaseA atomic.Uint64

	clock obs.Clock

	// Instruments: replica gauge, publish latency (µs), and the clone /
	// writer-wait counters that reveal pool pressure. (The epoch gauge is
	// exported by the Server, which owns the authoritative counter in both
	// read modes.)
	publishUs   obs.Histogram
	publishes   obs.Counter
	clones      obs.Counter
	writerWaits obs.Counter
}

// epochView is one published (epoch, graph, summary) triple. The graph is a
// replica owned by this view until every pin is released; the summary is the
// maintainer's materialized copy for this epoch. refs and done are guarded
// by the owning viewSet's mu.
type epochView struct {
	epoch   uint64
	g       *graph.Graph
	summary *core.Summary
	refs    int
	done    bool // retired: no longer the current view

	// part caches this epoch's focus-region partition (partition.go); it
	// shares the view's lifetime, so readers pin (view, partition) together.
	part partitionSlot
}

// replica is a pooled graph clone positioned at a known epoch.
type replica struct {
	g     *graph.Graph
	epoch uint64
}

// newViewSet clones the full replica pool and publishes the boot view at
// bootEpoch — 0 on a cold start, the recovered epoch when the engine booted
// from an fgstore snapshot + WAL replay. All O(V+E) copying happens here,
// before the engine serves traffic; the publish path only ever replays
// deltas.
func newViewSet(live *graph.Graph, summary *core.Summary, maxViews int, clock obs.Clock, bootEpoch uint64) *viewSet {
	vs := &viewSet{
		cur:      &epochView{epoch: bootEpoch, g: live.Clone(), summary: summary},
		replicas: maxViews,
		maxViews: maxViews,
		logBase:  bootEpoch,
		clock:    clock,
	}
	vs.clones.Inc()
	for i := 1; i < maxViews; i++ {
		vs.free = append(vs.free, replica{g: live.Clone(), epoch: bootEpoch})
		vs.clones.Inc()
	}
	vs.logBaseA.Store(bootEpoch)
	vs.cond = sync.NewCond(&vs.mu)
	return vs
}

// pin returns the current view with a reference held. The critical section
// is a handful of instructions — readers contend on this mutex only for the
// pointer swap, never for the duration of a computation.
func (vs *viewSet) pin() *epochView {
	vs.mu.Lock()
	v := vs.cur
	v.refs++
	vs.mu.Unlock()
	return v
}

// pinIf pins v only if it is still alive — current, or retired with readers
// holding it. It refuses (returning false) once the view has been fully
// released and its replica recycled, so callers arriving late (the async
// partition builder racing a burst of publishes) never resurrect a dead
// view.
func (vs *viewSet) pinIf(v *epochView) bool {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if v.done && v.refs == 0 {
		return false
	}
	v.refs++
	return true
}

// unpin releases a reference. When the last reader of a retired view
// releases, its replica rejoins the free pool and a waiting writer is woken.
func (vs *viewSet) unpin(v *epochView) {
	vs.mu.Lock()
	v.refs--
	if v.done && v.refs == 0 {
		vs.recycleLocked(v)
		vs.cond.Signal()
	}
	vs.mu.Unlock()
}

// recycleLocked moves a fully released retired view's replica to the free
// pool. Caller holds vs.mu.
func (vs *viewSet) recycleLocked(v *epochView) {
	for i, rv := range vs.retired {
		if rv == v {
			vs.retired = append(vs.retired[:i], vs.retired[i+1:]...)
			break
		}
	}
	vs.free = append(vs.free, replica{g: v.g, epoch: v.epoch})
	v.g = nil
	v.summary = nil
	// Drop the epoch's partition with its view: the compacted shard slices
	// alias the replica's interners and are sized like a focus neighborhood,
	// so releasing them eagerly matters at large graph scale.
	v.part.built.Store(nil)
}

// publish installs the view for epoch after the writer applied delta to the
// live graph. Called only from the write path, under the server's write
// lock, with epoch == previous epoch + 1 and delta the batch exactly as the
// maintainer applied it. It returns the freshly published view so the
// caller can hand it to the async partition builder (via pinIf — the
// returned pointer alone carries no reference).
func (vs *viewSet) publish(delta core.Delta, epoch uint64, summary *core.Summary) *epochView {
	start := vs.clock.Now()
	vs.log = append(vs.log, delta)

	// Acquire a replica from the free pool, waiting for a reader to release
	// one if every replica is current or still pinned. The pool was fully
	// cloned at boot, so there is never O(V+E) work here.
	vs.mu.Lock()
	var rep replica
	for {
		if n := len(vs.free); n > 0 {
			rep = vs.free[n-1]
			vs.free = vs.free[:n-1]
			break
		}
		vs.writerWaits.Inc()
		vs.cond.Wait()
	}
	vs.mu.Unlock()

	vs.catchUp(&rep, epoch)

	v := &epochView{epoch: epoch, g: rep.g, summary: summary}
	vs.mu.Lock()
	old := vs.cur
	vs.cur = v
	old.done = true
	if old.refs == 0 {
		vs.recycleLocked(old)
		vs.cond.Signal()
	} else {
		vs.retired = append(vs.retired, old)
	}
	minEpoch := epoch
	for _, r := range vs.free {
		if r.epoch < minEpoch {
			minEpoch = r.epoch
		}
	}
	for _, rv := range vs.retired {
		if rv.epoch < minEpoch {
			minEpoch = rv.epoch
		}
	}
	vs.mu.Unlock()

	vs.pruneLog(minEpoch)
	vs.logLenA.Store(int64(len(vs.log)))
	vs.logBaseA.Store(vs.logBase)
	vs.publishes.Inc()
	vs.publishUs.Observe(vs.clock.Now().Sub(start).Microseconds())
	return v
}

// catchUp replays the logged batches (rep.epoch, target] onto the replica,
// mirroring core.Maintainer.Apply's graph mutations: every insert attempted
// in order ignoring failures, then every delete. The replica started as a
// byte-identical clone and has replayed the identical sequence since, so
// each operation succeeds or fails exactly as it did on the live graph.
func (vs *viewSet) catchUp(rep *replica, target uint64) {
	for e := rep.epoch + 1; e <= target; e++ {
		d := vs.log[e-vs.logBase-1]
		for _, ins := range d.Insert {
			_ = rep.g.AddEdge(ins.From, ins.To, ins.Label) //lint:allow errdrop replay of the logged batch: each op succeeds or fails exactly as it did on the live graph
		}
		for _, del := range d.Delete {
			_ = rep.g.RemoveEdge(del.From, del.To, del.Label) //lint:allow errdrop replay of the logged batch: each op succeeds or fails exactly as it did on the live graph
		}
	}
	rep.epoch = target
}

// pruneLog drops batches no replica can still need: every replica in
// circulation is at an epoch ≥ minEpoch, so entries for epochs ≤ minEpoch
// (which only serve replicas older than that) are dead. With default pool
// sizes the log holds a handful of batches.
func (vs *viewSet) pruneLog(minEpoch uint64) {
	if minEpoch <= vs.logBase {
		return
	}
	drop := minEpoch - vs.logBase
	if drop > uint64(len(vs.log)) {
		drop = uint64(len(vs.log))
	}
	vs.log = append([]core.Delta(nil), vs.log[drop:]...)
	vs.logBase += drop
}

// stats snapshots the deterministic MVCC counters for /v1/stats.
func (vs *viewSet) stats() MvccStats {
	vs.mu.Lock()
	st := MvccStats{
		Mode:        "mvcc",
		MaxViews:    vs.maxViews,
		Replicas:    vs.replicas,
		Publishes:   vs.publishes.Load(),
		Clones:      vs.clones.Load(),
		WriterWaits: vs.writerWaits.Load(),
	}
	vs.mu.Unlock()
	return st
}

// debug snapshots the full publication state for /debug/fgs/views: the
// current view, every retired view still pinned, and the free replica pool.
// Everything except the log mirrors is read under mu, so the pin counts are
// a consistent cut of the refcount graph.
func (vs *viewSet) debug() ViewsDebug {
	vs.mu.Lock()
	d := ViewsDebug{
		Mode:        ReadModeMVCC,
		Epoch:       vs.cur.epoch,
		MaxViews:    vs.maxViews,
		Replicas:    vs.replicas,
		Current:     ViewDebug{Epoch: vs.cur.epoch, Pins: vs.cur.refs},
		Retired:     make([]ViewDebug, 0, len(vs.retired)),
		FreeEpochs:  make([]uint64, 0, len(vs.free)),
		Publishes:   vs.publishes.Load(),
		WriterWaits: vs.writerWaits.Load(),
	}
	for _, rv := range vs.retired {
		d.Retired = append(d.Retired, ViewDebug{Epoch: rv.epoch, Pins: rv.refs})
	}
	for _, r := range vs.free {
		d.FreeEpochs = append(d.FreeEpochs, r.epoch)
	}
	vs.mu.Unlock()
	sort.Slice(d.Retired, func(i, j int) bool { return d.Retired[i].Epoch < d.Retired[j].Epoch })
	sort.Slice(d.FreeEpochs, func(i, j int) bool { return d.FreeEpochs[i] < d.FreeEpochs[j] })
	d.LogLen = int(vs.logLenA.Load())
	d.LogBase = vs.logBaseA.Load()
	return d
}

// ObsMetrics exports the MVCC instruments (obs.Source): replica pool size,
// publish latency histogram, and the pressure counters.
func (vs *viewSet) ObsMetrics() []obs.Metric {
	st := vs.stats()
	hist := vs.publishUs.Snapshot()
	return []obs.Metric{
		{Name: "fgs_server_mvcc_replicas", Help: "Graph replicas in circulation (current + pinned + free)", Kind: obs.KindGauge, Value: float64(st.Replicas)},
		{Name: "fgs_server_mvcc_publishes_total", Help: "Epoch views published", Kind: obs.KindCounter, Value: float64(st.Publishes)},
		{Name: "fgs_server_mvcc_clones_total", Help: "Full graph clones taken at boot to build the replica pool", Kind: obs.KindCounter, Value: float64(st.Clones)},
		{Name: "fgs_server_mvcc_writer_waits_total", Help: "Publications that blocked waiting for a reader to release a replica", Kind: obs.KindCounter, Value: float64(st.WriterWaits)},
		{Name: "fgs_server_mvcc_publish_us", Help: "Snapshot publication latency in microseconds", Kind: obs.KindHistogram, Hist: &hist},
	}
}

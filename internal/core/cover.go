package core

import (
	"container/heap"
	"slices"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
)

// greedyCover runs the summarization phase of APXFGS (Fig. 3 lines 6-12):
// repeatedly pick the extendable candidate with the best gain
// |covered ∩ remaining| / C_P (a zero-loss pattern dominates any lossy one;
// ties break toward more new anchors, then earlier generation) until every
// anchor in vp is covered or no extendable candidate remains. If maxPatterns
// > 0, at most that many patterns are chosen.
//
// This is the incremental implementation: instead of rescanning every
// candidate's overlap with the remaining set each round
// (O(rounds × candidates × |Covered|), see greedyCoverScan), it maintains
// per-candidate counts — remainingCount = |Covered ∩ remaining| and
// newCount = |Covered \ chosen-cover| — updated through an inverted
// node→candidates index only for candidates intersecting the just-chosen
// pattern, plus a lazy max-heap on the cross-multiplied gain. Both counts are
// monotone non-increasing as the cover grows, which makes the lazy heap exact
// and lets two of the scan's per-round skips become permanent drops:
// remainingCount = 0 can never recover, and the feasibility bound
// |cover ∪ Covered| = cover + newCount only grows. Output (chosen order and
// uncovered set) is identical to greedyCoverScan on every input.
//
// Iteration counters (rounds, heap pops, stale re-scans, permanent drops)
// accumulate in locals and are reported to reg once at the end — zero cost
// in the loop, nothing at all when reg is nil.
func greedyCover(g *graph.Graph, cands []*mining.Candidate, vp []graph.NodeID, n, maxPatterns int, reg *obs.Registry) (chosen []PatternInfo, uncovered []graph.NodeID) {
	var rounds, pops, rescans, drops int64
	defer func() {
		reg.Add("fgs_cover_rounds_total", "Greedy cover rounds (patterns chosen).", nil, rounds)
		reg.Add("fgs_cover_heap_pops_total", "Lazy-heap pops in greedyCover.", nil, pops)
		reg.Add("fgs_cover_heap_rescans_total", "Stale-entry refresh+re-sift operations in greedyCover.", nil, rescans)
		reg.Add("fgs_cover_drops_total", "Candidates permanently dropped from the greedyCover heap.", nil, drops)
	}()

	// Node IDs are dense, so the remaining/covered sets are bitsets and the
	// inverted index is a flat slice-of-slices indexed by NodeID — no hashing
	// anywhere in the commit loop. The bound covers every node mentioned by
	// vp or any candidate (g may be nil in synthetic tests/benches).
	bound := 0
	if g != nil {
		bound = g.NumNodes()
	}
	for _, v := range vp {
		bound = max(bound, int(v)+1)
	}
	for _, cand := range cands {
		for _, v := range cand.Covered {
			bound = max(bound, int(v)+1)
		}
	}
	remaining := graph.NewNodeBits(bound)
	for _, v := range vp {
		remaining.Add(v)
	}
	covered := graph.NewNodeBits(bound)

	// Inverted index over every node any candidate covers, plus the two
	// per-candidate counts.
	byNode := make([][]int32, bound)
	remainingCount := make([]int, len(cands))
	newCount := make([]int, len(cands))
	for i, cand := range cands {
		newCount[i] = len(cand.Covered)
		for _, v := range cand.Covered {
			byNode[v] = append(byNode[v], int32(i))
			if remaining.Has(v) {
				remainingCount[i]++
			}
		}
	}

	// The heap orders candidates by betterGain on their count *at push time*;
	// stale entries (count since decreased) rank no lower than their true
	// position, so the classic lazy-greedy pop/refresh/re-sift loop finds the
	// exact argmax. The comparator's final index-ascending tie-break mirrors
	// the scan's first-strictly-better selection.
	h := &coverHeap{cands: cands}
	for i := range cands {
		if remainingCount[i] > 0 {
			h.entries = append(h.entries, coverEntry{idx: int32(i), gain: int32(remainingCount[i])})
		}
	}
	heap.Init(h)

	dropped := make([]bool, len(cands))
	for remaining.Count() > 0 {
		if maxPatterns > 0 && len(chosen) >= maxPatterns {
			break
		}
		best := -1
		for h.Len() > 0 {
			top := h.entries[0]
			i := int(top.idx)
			cur := remainingCount[i]
			if dropped[i] || cur == 0 {
				// Covers nothing still remaining; counts never increase, so
				// the candidate is permanently out (the scan's newAnchors == 0
				// skip, made permanent).
				dropped[i] = true
				drops++
				pops++
				heap.Pop(h)
				continue
			}
			if int(top.gain) != cur {
				// Stale: refresh the key in place and re-sift.
				rescans++
				h.entries[0].gain = int32(cur)
				heap.Fix(h, 0)
				continue
			}
			if covered.Count()+newCount[i] > n {
				// |cover ∪ Covered| only grows as the cover does, so a
				// candidate that breaks the n cap now always will (the scan's
				// extendable check, made permanent).
				dropped[i] = true
				drops++
				pops++
				heap.Pop(h)
				continue
			}
			best = i
			pops++
			heap.Pop(h)
			break
		}
		if best < 0 {
			break
		}
		dropped[best] = true
		rounds++
		cand := cands[best]
		// Commit the choice, updating counts only for candidates sharing a
		// newly covered or newly removed node.
		for _, v := range cand.Covered {
			if !covered.Has(v) {
				covered.Add(v)
				for _, j := range byNode[v] {
					newCount[j]--
				}
			}
			if remaining.Has(v) {
				remaining.Remove(v)
				for _, j := range byNode[v] {
					remainingCount[j]--
				}
			}
		}
		chosen = append(chosen, infoOf(g, cand))
	}
	// Bitset iteration is ascending-NodeID, so the uncovered list comes out
	// sorted with no normalizing step.
	remaining.Iterate(func(v graph.NodeID) {
		uncovered = append(uncovered, v)
	})
	return chosen, uncovered
}

// coverEntry is one heap entry: a candidate index and its remaining-cover
// count at push/refresh time.
type coverEntry struct {
	idx  int32
	gain int32
}

// coverHeap is a max-heap over candidates ordered by betterGain(gain, CP),
// ties broken toward earlier generation (lower index).
type coverHeap struct {
	cands   []*mining.Candidate
	entries []coverEntry
}

func (h *coverHeap) Len() int { return len(h.entries) }

func (h *coverHeap) Less(a, b int) bool {
	ea, eb := h.entries[a], h.entries[b]
	ga, gb := int(ea.gain), int(eb.gain)
	cpa, cpb := h.cands[ea.idx].CP, h.cands[eb.idx].CP
	if betterGain(ga, cpa, gb, cpb) {
		return true
	}
	if betterGain(gb, cpb, ga, cpa) {
		return false
	}
	return ea.idx < eb.idx
}

func (h *coverHeap) Swap(a, b int) { h.entries[a], h.entries[b] = h.entries[b], h.entries[a] }

func (h *coverHeap) Push(x any) { h.entries = append(h.entries, x.(coverEntry)) }

func (h *coverHeap) Pop() any {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}

// greedyCoverScan is the straightforward O(rounds × candidates × |Covered|)
// implementation greedyCover replaced. It is retained as the behavioral
// reference: the equivalence property test and the benchmarks compare the
// incremental implementation against it.
func greedyCoverScan(g *graph.Graph, cands []*mining.Candidate, vp []graph.NodeID, n, maxPatterns int) (chosen []PatternInfo, uncovered []graph.NodeID) {
	cs := newCoverState(n)
	remaining := graph.NodeSetOf(vp)
	used := make([]bool, len(cands))

	for remaining.Len() > 0 {
		if maxPatterns > 0 && len(chosen) >= maxPatterns {
			break
		}
		best := -1
		bestNew := 0
		bestCP := 0
		for i, cand := range cands {
			if used[i] {
				continue
			}
			newAnchors := 0
			for _, v := range cand.Covered {
				if remaining.Has(v) {
					newAnchors++
				}
			}
			if newAnchors == 0 || !cs.extendable(cand) {
				continue
			}
			if best < 0 || betterGain(newAnchors, cand.CP, bestNew, bestCP) {
				best = i
				bestNew = newAnchors
				bestCP = cand.CP
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		cand := cands[best]
		cs.add(cand)
		for _, v := range cand.Covered {
			remaining.Remove(v)
		}
		chosen = append(chosen, infoOf(g, cand))
	}
	for v := range remaining {
		uncovered = append(uncovered, v)
	}
	// The remaining set is a map; sort so the uncovered list is identical on
	// every run regardless of iteration order (fgslint maporder).
	slices.Sort(uncovered)
	return chosen, uncovered
}

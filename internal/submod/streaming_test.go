package submod

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestStreamerAcceptsWhileExtendable(t *testing.T) {
	g := ratingsGraph(t, []float64{5, 4, 3, 2, 1, 1})
	groups, _ := NewGroups(
		Group{Name: "a", Members: []graph.NodeID{0, 1, 2}, Lower: 1, Upper: 2},
		Group{Name: "b", Members: []graph.NodeID{3, 4, 5}, Lower: 1, Upper: 2},
	)
	s := NewStreamer(groups, NewRatingSum(g, "rating"), 3)
	if r := s.Process(0); r.Decision != Accepted {
		t.Fatalf("first node decision = %v", r.Decision)
	}
	if r := s.Process(3); r.Decision != Accepted {
		t.Fatalf("cross-group accept failed: %v", r.Decision)
	}
	if r := s.Process(1); r.Decision != Accepted {
		t.Fatalf("third accept failed: %v", r.Decision)
	}
	if got := len(s.Selected()); got != 3 {
		t.Fatalf("selected %d, want 3", got)
	}
}

func TestStreamerRejectsNonGroupAndDuplicate(t *testing.T) {
	g := ratingsGraph(t, []float64{5, 4})
	groups, _ := NewGroups(Group{Name: "a", Members: []graph.NodeID{0}, Lower: 0, Upper: 1})
	s := NewStreamer(groups, NewRatingSum(g, "rating"), 1)
	if r := s.Process(1); r.Decision != Rejected {
		t.Fatal("non-group node accepted")
	}
	s.Process(0)
	if r := s.Process(0); r.Decision != Rejected {
		t.Fatal("duplicate accepted")
	}
}

func TestStreamerSwapRule(t *testing.T) {
	// Budget 1, single group. First node has weight 1; a node with marginal
	// >= 2 must swap in; a node with marginal < 2x must not.
	g := ratingsGraph(t, []float64{1, 1.5, 3})
	groups, _ := NewGroups(Group{Name: "a", Members: []graph.NodeID{0, 1, 2}, Lower: 0, Upper: 1})
	s := NewStreamer(groups, NewRatingSum(g, "rating"), 1)
	if r := s.Process(0); r.Decision != Accepted {
		t.Fatal("seed accept failed")
	}
	if r := s.Process(1); r.Decision != Rejected {
		t.Fatal("1.5 < 2*1 should be rejected")
	}
	r := s.Process(2)
	if r.Decision != Swapped || r.Evicted != 0 {
		t.Fatalf("3 >= 2*1 should swap out node 0: %+v", r)
	}
	sel := s.Selected()
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("selection after swap = %v", sel)
	}
	if s.Value() != 3 {
		t.Fatalf("value after swap = %v", s.Value())
	}
}

func TestStreamerSwapRespectsGroupFeasibility(t *testing.T) {
	// Group a at upper bound 1; a huge-gain node from a cannot swap out the
	// b node (b would drop below its reachable lower bound handling), but can
	// swap out the a node.
	g := ratingsGraph(t, []float64{1, 1, 100})
	groups, _ := NewGroups(
		Group{Name: "a", Members: []graph.NodeID{0, 2}, Lower: 1, Upper: 1},
		Group{Name: "b", Members: []graph.NodeID{1}, Lower: 1, Upper: 1},
	)
	s := NewStreamer(groups, NewRatingSum(g, "rating"), 2)
	s.Process(0)
	s.Process(1)
	r := s.Process(2)
	if r.Decision != Swapped || r.Evicted != 0 {
		t.Fatalf("expected swap evicting the group-a node, got %+v (evicted %d)", r.Decision, r.Evicted)
	}
	counts := s.Counts()
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts after swap = %v", counts)
	}
}

func TestStreamerBucketsAndPostSelect(t *testing.T) {
	// Stream order starves group b: budget fills with a-nodes first (b's
	// lower bound is 0 here so they are accepted), then PostSelect must pull
	// the best rejected b node... Construct: lower bound of b is 1 but all b
	// nodes arrive after budget is full with high-weight a nodes that cannot
	// be swapped (weights too high).
	g := ratingsGraph(t, []float64{10, 9, 1, 1.2})
	groups, _ := NewGroups(
		Group{Name: "a", Members: []graph.NodeID{0, 1}, Lower: 0, Upper: 2},
		Group{Name: "b", Members: []graph.NodeID{2, 3}, Lower: 1, Upper: 1},
	)
	n := 3
	s := NewStreamer(groups, NewRatingSum(g, "rating"), n)
	s.Process(0)
	s.Process(1)
	// b nodes: extendable (budget has room), accepted directly. To force the
	// bucket path, fill the budget with a reserve-aware state: after 0,1 the
	// reserve is 2 + max(0,1)=3 <= 3, so a b node is accepted. Process b
	// first to occupy, then the second b is rejected by upper bound.
	if r := s.Process(2); r.Decision != Accepted {
		t.Fatalf("b node should be accepted: %v", r.Decision)
	}
	if r := s.Process(3); r.Decision != Rejected {
		t.Fatalf("second b node should be rejected (upper=1): %v", r.Decision)
	}
	if len(s.Bucket(1)) != 1 {
		t.Fatalf("bucket(1) = %v", s.Bucket(1))
	}
	if len(s.DeficientGroups()) != 0 {
		t.Fatalf("no group should be deficient: %v", s.DeficientGroups())
	}
}

func TestStreamerPostSelectRepairsLowerBound(t *testing.T) {
	// b nodes have tiny weights and arrive early; a nodes swap them out...
	// Simpler: budget 2, groups a[0,2] b[1,1]; stream only a nodes first
	// until full, with b nodes arriving later unable to swap (low gain) —
	// they land in the bucket, leaving b deficient; PostSelect must repair.
	g := ratingsGraph(t, []float64{10, 9, 0.5, 0.1})
	groups, _ := NewGroups(
		Group{Name: "a", Members: []graph.NodeID{0, 1}, Lower: 0, Upper: 2},
		Group{Name: "b", Members: []graph.NodeID{2, 3}, Lower: 1, Upper: 1},
	)
	s := NewStreamer(groups, NewRatingSum(g, "rating"), 2)
	s.Process(0) // accepted
	s.Process(1) // reserve: adding a second a gives max(2,0)+max(0,1)=3 > 2: rejected!
	// So node 1 is actually bucketed; stream b next.
	if got := s.Counts()[0]; got != 1 {
		t.Fatalf("counts[a] = %d, want 1 (reserve should hold a slot for b)", got)
	}
	s.Process(2) // b accepted
	if len(s.DeficientGroups()) != 0 {
		t.Fatal("b should be satisfied now")
	}
	// Now force deficiency in a fresh streamer by never streaming b.
	s2 := NewStreamer(groups, NewRatingSum(g, "rating"), 2)
	s2.Process(0)
	s2.Process(1)
	if got := s2.DeficientGroups(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeficientGroups = %v, want [1]", got)
	}
	// Bucket b nodes manually via Process (rejected: not extendable? b IS
	// extendable... Process(2) would accept). Deficiency repair applies when
	// the caller streams rejected nodes: simulate by bucketing then repair.
	s2.Process(2) // accepted, repairs deficiency inline
	if len(s2.DeficientGroups()) != 0 {
		t.Fatal("deficiency should be repaired")
	}
	added := s2.PostSelect()
	if len(added) != 0 {
		t.Fatalf("PostSelect should add nothing when feasible: %v", added)
	}
}

func TestStreamerPostSelectFromBucket(t *testing.T) {
	// Construct genuine deficiency: group b upper=1 lower=1; stream two b
	// nodes while budget still open — first accepted, second bucketed. Then
	// swap the accepted one out... instead simplest: b node arrives when the
	// selection cannot take it (upper bound of... ). Use a swap that evicts
	// the only b node? SwapFeasible forbids dropping b below reserve when
	// in-group differs... in-group swap within b is allowed. A b node with
	// huge gain swaps out the weak b node - still 1 b node. Deficiency can
	// only arise when b nodes were all rejected while extendable=false due to
	// budget-n pressure: groups a[0,1] b[1,2], n=1. Stream a first: reserve
	// max(1,0)+max(0,1)=2>1 -> a rejected. So a cannot block b here...
	//
	// Deficiency genuinely requires rejecting a b node, which only happens
	// when the swap rule declines (gain too small) after budget is full of
	// reserved slots — but reserve always protects lower bounds, so a
	// rejected b node means b was already at its lower bound *or* budget
	// math allowed it. The remaining real case: b nodes that arrive, get
	// accepted, then... are never evicted. Hence in this design deficiency
	// after a full stream implies the group had fewer arrivals than l_i.
	// PostSelect then has nothing to add — verify it degrades gracefully.
	g := ratingsGraph(t, []float64{5, 4, 3})
	groups, _ := NewGroups(
		Group{Name: "a", Members: []graph.NodeID{0, 1}, Lower: 0, Upper: 2},
		Group{Name: "b", Members: []graph.NodeID{2}, Lower: 1, Upper: 1},
	)
	s := NewStreamer(groups, NewRatingSum(g, "rating"), 2)
	s.Process(0)
	s.Process(1)
	if got := s.PostSelect(); len(got) != 0 {
		t.Fatalf("PostSelect with empty bucket added %v", got)
	}
	if len(s.DeficientGroups()) != 1 {
		t.Fatal("b never arrived: should be deficient")
	}
	// Late arrival repairs it through the normal path.
	if r := s.Process(2); r.Decision != Accepted {
		t.Fatalf("late b arrival should be accepted, got %v", r.Decision)
	}
}

// Streaming achieves at least 1/4 of the offline greedy value on random
// instances (the Theorem 6 selection bound is vs optimum; offline greedy is
// a harsher yardstick at 1/2 OPT, so we check 1/4 * greedy/2 conservatively
// via greedy/4).
func TestStreamerQuarterOfGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := randomSocialGraph(rng, 40, 120)
		var m1, m2 []graph.NodeID
		for i := 0; i < 40; i++ {
			if i%2 == 0 {
				m1 = append(m1, graph.NodeID(i))
			} else {
				m2 = append(m2, graph.NodeID(i))
			}
		}
		groups, err := NewGroups(
			Group{Name: "a", Members: m1, Lower: 1, Upper: 4},
			Group{Name: "b", Members: m2, Lower: 1, Upper: 4},
		)
		if err != nil {
			t.Fatal(err)
		}
		n := 6
		greedySel, err := FairSelect(groups, NewNeighborCoverage(g, NeighborsIn, ""), n)
		if err != nil {
			t.Fatal(err)
		}
		u := NewNeighborCoverage(g, NeighborsIn, "")
		greedyVal := Eval(u, greedySel)

		s := NewStreamer(groups, NewNeighborCoverage(g, NeighborsIn, ""), n)
		order := rng.Perm(40)
		for _, i := range order {
			s.Process(graph.NodeID(i))
		}
		s.PostSelect()
		streamVal := s.Value()
		if streamVal < greedyVal/4-1e-9 {
			t.Fatalf("trial %d: stream value %v < 1/4 of greedy %v", trial, streamVal, greedyVal)
		}
		// Feasibility of the final selection.
		counts := groups.Counts(s.Selected())
		for i := 0; i < groups.Len(); i++ {
			if counts[i] > groups.At(i).Upper {
				t.Fatalf("trial %d: upper bound violated: %v", trial, counts)
			}
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/pattern"
)

// randCoverInstance builds a random greedy-cover input: candidate sets with
// overlapping coverage, varied C_P (including zero-loss patterns, whose gain
// is infinite), and a vp drawn from the same universe so some nodes may be
// uncoverable.
func randCoverInstance(rng *rand.Rand) (cands []*mining.Candidate, vp []graph.NodeID) {
	universe := 10 + rng.Intn(40)
	nCands := rng.Intn(30)
	cands = make([]*mining.Candidate, 0, nCands)
	for i := 0; i < nCands; i++ {
		size := 1 + rng.Intn(7)
		set := graph.NewNodeSet(size)
		for len(set) < size {
			set.Add(graph.NodeID(rng.Intn(universe)))
		}
		covered := make([]graph.NodeID, 0, size)
		for v := range set {
			covered = append(covered, v)
		}
		sortNodes(covered)
		// Small CP range on purpose: collisions force the ratio and
		// newAnchors tie-breaks, and CP=0 exercises the infinite-gain rule.
		// The distinct P pointer is an identity marker: it lets the test
		// distinguish candidates with identical coverage, so the
		// earliest-index tie-break is verified exactly.
		cands = append(cands, &mining.Candidate{
			P:            new(pattern.Pattern),
			Covered:      covered,
			CoveredEdges: graph.NewEdgeBits(0),
			CP:           rng.Intn(4),
		})
	}
	nVP := 1 + rng.Intn(universe)
	vpSet := graph.NewNodeSet(nVP)
	for len(vpSet) < nVP {
		vpSet.Add(graph.NodeID(rng.Intn(universe)))
	}
	for v := range vpSet {
		vp = append(vp, v)
	}
	sortNodes(vp)
	return cands, vp
}

// TestGreedyCoverMatchesScan is the equivalence property test: on random
// instances the incremental lazy-heap implementation must choose the same
// patterns in the same order and leave the same uncovered set as the
// reference rescan implementation, across n caps and pattern budgets.
func TestGreedyCoverMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		cands, vp := randCoverInstance(rng)
		// n tight enough to trigger infeasibility drops about half the time;
		// maxPatterns 0 (unbounded) or small.
		n := 1 + rng.Intn(2*len(vp))
		maxPatterns := 0
		if rng.Intn(2) == 0 {
			maxPatterns = 1 + rng.Intn(5)
		}
		// A live registry here doubles as a check that counter reporting
		// cannot perturb the algorithm's output.
		gotChosen, gotUnc := greedyCover(nil, cands, vp, n, maxPatterns, obs.NewRegistry())
		wantChosen, wantUnc := greedyCoverScan(nil, cands, vp, n, maxPatterns)
		if len(gotChosen) != len(wantChosen) {
			t.Fatalf("trial %d (n=%d, max=%d): chose %d patterns, scan chose %d",
				trial, n, maxPatterns, len(gotChosen), len(wantChosen))
		}
		for i := range wantChosen {
			if gotChosen[i].P != wantChosen[i].P {
				t.Fatalf("trial %d (n=%d, max=%d): choice %d is a different candidate",
					trial, n, maxPatterns, i)
			}
		}
		sortNodes(gotUnc)
		sortNodes(wantUnc)
		if len(gotUnc) != len(wantUnc) {
			t.Fatalf("trial %d: uncovered %d vs scan %d", trial, len(gotUnc), len(wantUnc))
		}
		for i := range wantUnc {
			if gotUnc[i] != wantUnc[i] {
				t.Fatalf("trial %d: uncovered sets differ at %d: %d vs %d",
					trial, i, gotUnc[i], wantUnc[i])
			}
		}
	}
}

// TestGreedyCoverEdgeCases pins the degenerate inputs the property test can
// miss by chance.
func TestGreedyCoverEdgeCases(t *testing.T) {
	mk := func(cp int, nodes ...graph.NodeID) *mining.Candidate {
		// Distinct P pointers distinguish otherwise-identical candidates.
		return &mining.Candidate{P: new(pattern.Pattern), Covered: nodes, CoveredEdges: graph.NewEdgeBits(0), CP: cp}
	}
	cases := []struct {
		name        string
		cands       []*mining.Candidate
		vp          []graph.NodeID
		n           int
		maxPatterns int
	}{
		{name: "no-candidates", vp: []graph.NodeID{1, 2}, n: 5},
		{name: "empty-vp", cands: []*mining.Candidate{mk(1, 3, 4)}, n: 5},
		{name: "n-too-small", cands: []*mining.Candidate{mk(0, 1, 2, 3)}, vp: []graph.NodeID{1}, n: 2},
		{name: "budget-one", cands: []*mining.Candidate{mk(1, 1), mk(1, 2)}, vp: []graph.NodeID{1, 2}, n: 5, maxPatterns: 1},
		{
			name:  "exact-ties",
			cands: []*mining.Candidate{mk(2, 1, 2), mk(2, 1, 2), mk(2, 3, 4)},
			vp:    []graph.NodeID{1, 2, 3, 4}, n: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotC, gotU := greedyCover(nil, tc.cands, tc.vp, tc.n, tc.maxPatterns, nil)
			wantC, wantU := greedyCoverScan(nil, tc.cands, tc.vp, tc.n, tc.maxPatterns)
			if len(gotC) != len(wantC) || len(sortNodes(gotU)) != len(sortNodes(wantU)) {
				t.Fatalf("chose %d/%d patterns, uncovered %d/%d", len(gotC), len(wantC), len(gotU), len(wantU))
			}
			for i := range wantC {
				if gotC[i].P != wantC[i].P || gotC[i].CP != wantC[i].CP {
					t.Fatalf("choice %d differs", i)
				}
			}
			for i := range wantU {
				if gotU[i] != wantU[i] {
					t.Fatalf("uncovered differs at %d", i)
				}
			}
		})
	}
}

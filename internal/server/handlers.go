package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/cwru-db/fgs/internal/obs"
)

// retryAfterSeconds is the backpressure hint on 503 responses: the queue
// drains at compute speed, so "soon" is the honest answer; clients with
// jittered retries spread the next wave.
const retryAfterSeconds = "1"

// routes mounts the HTTP surface. Method-qualified patterns (Go 1.22
// ServeMux) give non-matching methods 405 for free.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/summarize", s.instrument("summarize", s.handleSummarize(false)))
	mux.HandleFunc("POST /v1/summarize-k", s.instrument("summarize-k", s.handleSummarize(true)))
	mux.HandleFunc("POST /v1/view", s.instrument("view", s.handleView))
	mux.HandleFunc("POST /v1/workload", s.instrument("workload", s.handleWorkload))
	mux.HandleFunc("POST /v1/update", s.instrument("update", s.handleUpdate))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux = mux
}

// statusWriter records the status code for the latency/error series.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the observability shell: a request span
// (only when the observer carries a trace — an always-on trace would grow
// without bound over a server's lifetime), the per-endpoint latency
// histogram, and a recover barrier that turns an escaped panic into a 500
// so one poisoned request cannot take the process down.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := s.tr.Start("http." + endpoint)
		start := s.clock.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				sw.status = http.StatusInternalServerError
				writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
			s.http.Observe(endpoint, s.clock.Now().Sub(start), sw.status >= 500)
			sp.SetArg("status", int64(sw.status))
			sp.End()
		}()
		h(sw, r)
	}
}

// serveCompute is the shared request pipeline for the compute endpoints:
// drain check → cache probe → admission (with deadline) → compute → cache
// fill → respond. cacheReq, when non-nil, is the normalized request whose
// canonical encoding keys the cache; pass nil for uncacheable endpoints
// (writes).
func (s *Server) serveCompute(w http.ResponseWriter, r *http.Request, endpoint string, cacheReq any, fn func() (resp any, epoch uint64, err error)) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	var key string
	if cacheReq != nil && s.cache != nil {
		k, err := canonicalKey(endpoint, cacheReq)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		key = k
		if body, ok := s.cache.get(epochKey(key, s.epoch.Load())); ok {
			w.Header().Set("X-Fgs-Cache", "hit")
			writeRaw(w, http.StatusOK, body)
			return
		}
	}

	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	release, err := s.adm.acquire(ctx)
	switch {
	case errors.Is(err, errSaturated):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, errors.New("server: deadline expired while queued"))
		return
	case err != nil: // client disconnected while queued
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer release()
	if s.testHook != nil {
		s.testHook(endpoint)
	}

	resp, epoch, err := fn()
	if err != nil {
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	body, err := marshalBody(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if key != "" {
		// Stored under the epoch captured inside the compute's lock scope, so
		// a write racing this response can only leave the entry under an old
		// epoch — unreachable, never wrong.
		s.cache.put(epochKey(key, epoch), body)
	}
	writeRaw(w, http.StatusOK, body)
}

func (s *Server) handleSummarize(k bool) http.HandlerFunc {
	endpoint := "summarize"
	if k {
		endpoint = "summarize-k"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		req := &SummarizeRequest{}
		if !s.decodeRequest(w, r, req) {
			return
		}
		if err := s.normalizeSummarize(req, k); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.serveCompute(w, r, endpoint, req, func() (any, uint64, error) {
			return s.computeSummarize(req, k)
		})
	}
}

// normalizeSummarize applies server defaults and validates, so the
// canonical cache key collapses equivalent requests.
func (s *Server) normalizeSummarize(req *SummarizeRequest, k bool) error {
	if req.R < 0 || req.N < 0 || req.K < 0 {
		return errors.New("r, k, and n must be non-negative")
	}
	if req.R == 0 {
		req.R = s.cfg.R
	}
	if req.N == 0 {
		req.N = s.cfg.N
	}
	if k {
		if req.K == 0 {
			req.K = s.cfg.K
		}
		if req.K <= 0 {
			return errors.New("summarize-k needs k > 0 (in the request or the server config)")
		}
	} else {
		req.K = 0
	}
	if req.Utility == "" {
		req.Utility = s.cfg.Utility
	}
	return nil
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	req := &ViewRequest{}
	if !s.decodeRequest(w, r, req) {
		return
	}
	if req.Pattern == "" {
		writeError(w, http.StatusBadRequest, errors.New("view needs a pattern"))
		return
	}
	if req.EmbedCap == 0 {
		req.EmbedCap = s.cfg.EmbedCap
	}
	s.serveCompute(w, r, "view", req, func() (any, uint64, error) {
		return s.computeView(req)
	})
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	req := &WorkloadRequest{}
	if !s.decodeRequest(w, r, req) {
		return
	}
	if req.EmbedCap == 0 {
		req.EmbedCap = s.cfg.EmbedCap
	}
	s.serveCompute(w, r, "workload", req, func() (any, uint64, error) {
		return s.computeWorkload(req)
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	req := &UpdateRequest{}
	if !s.decodeRequest(w, r, req) {
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("update needs at least one insert or delete"))
		return
	}
	s.serveCompute(w, r, "update", nil, func() (any, uint64, error) {
		resp, err := s.computeUpdate(req)
		return resp, 0, err
	})
}

// handleStats serves the engine snapshot. It bypasses admission — it only
// reads counters and sizes, and must stay responsive when the slots are
// saturated (that is when operators look at it).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp, _, err := s.computeStats()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok"})
}

type healthResponse struct {
	Status string `json:"status"`
}

// handleMetrics renders the Prometheus exposition: the engine counters
// (cache, admission, per-endpoint latency) plus phase metrics from the
// trace when one is attached.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := s.reg.Gather()
	if s.tr != nil {
		ms = obs.MergeMetrics(append(ms, obs.PhaseMetrics(s.tr)...))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WritePrometheus(w, ms); err != nil {
		// Headers are gone; all we can do is log-level reporting via the
		// error counter (instrument sees 200 — the body is already partial).
		_ = err
	}
}

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if err := decodeStrict(body, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body) //lint:allow errdrop a failed response write means the client is gone; there is no recovery and the status is already committed
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalBody(v)
	if err != nil {
		body = []byte(`{"error":"encoding failure"}` + "\n")
		status = http.StatusInternalServerError
	}
	writeRaw(w, status, body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

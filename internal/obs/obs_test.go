package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFrozenClockSpanTree(t *testing.T) {
	clk := NewFrozen(time.Unix(1000, 0))
	tr := NewTrace(clk)

	root := tr.Start("run")
	clk.Advance(10 * time.Millisecond)
	sel := root.Child("select")
	clk.Advance(5 * time.Millisecond)
	sel.SetArg("groups", 3)
	sel.End()
	mine := root.Child("mine")
	clk.Advance(20 * time.Millisecond)
	mine.End()
	clk.Advance(time.Millisecond)
	root.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Name != "run" || recs[0].Parent != -1 || recs[0].Start != 0 || recs[0].Dur != 36*time.Millisecond {
		t.Errorf("root record wrong: %+v", recs[0])
	}
	if recs[1].Name != "select" || recs[1].Parent != 0 || recs[1].Start != 10*time.Millisecond || recs[1].Dur != 5*time.Millisecond {
		t.Errorf("select record wrong: %+v", recs[1])
	}
	if len(recs[1].Args) != 1 || recs[1].Args[0] != (SpanArg{Key: "groups", Val: 3}) {
		t.Errorf("select args wrong: %+v", recs[1].Args)
	}
	if recs[2].Name != "mine" || recs[2].Parent != 0 || recs[2].Start != 15*time.Millisecond || recs[2].Dur != 20*time.Millisecond {
		t.Errorf("mine record wrong: %+v", recs[2])
	}
}

func TestInertSpanZeroAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start("x")
		c := s.Child("y")
		c.SetArg("k", 1)
		c.End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("inert span path allocates: %v allocs/op", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.GetTrace() != nil || o.GetReg() != nil {
		t.Error("nil observer should expose nil trace/registry")
	}
	if o.GetClock() == nil {
		t.Error("nil observer clock should default to System")
	}
	o.Register(nil) // must not panic

	var r *Registry
	r.Register(nil)
	r.Add("x", "", nil, 1)
	if got := r.Gather(); got != nil {
		t.Errorf("nil registry Gather = %v, want nil", got)
	}

	var tr *Trace
	if tr.Len() != 0 || tr.Records() != nil {
		t.Error("nil trace should be empty")
	}
	if tr.Clock() == nil {
		t.Error("nil trace clock should default to System")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace output wrong: %s", buf.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1 << 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+2+3+4+100+(1<<20) {
		t.Fatalf("sum = %d", s.Sum)
	}
	// bucket 0 holds v <= 1 (0 and 1), bucket 1 adds v=2, bucket 2 adds 3,4.
	if s.Buckets[0] != 2 || s.Buckets[1] != 3 || s.Buckets[2] != 5 {
		t.Errorf("low buckets wrong: %v", s.Buckets)
	}
	// 100 <= 128 = 2^7.
	if s.Buckets[7] != 6 || s.Buckets[6] != 5 {
		t.Errorf("bucket for 100 wrong: %v", s.Buckets)
	}
	// overflow bucket is cumulative total.
	if s.Buckets[HistNumBuckets] != 7 {
		t.Errorf("overflow bucket = %d, want 7", s.Buckets[HistNumBuckets])
	}
}

type staticSource []Metric

func (s staticSource) ObsMetrics() []Metric { return s }

func TestRegistryMergeAndSort(t *testing.T) {
	r := NewRegistry()
	// Two sources emitting the same counter series, as two successive runs
	// registering fresh caches would.
	r.Register(staticSource{
		{Name: "fgs_ercache_hits_total", Kind: KindCounter, Labels: []Label{{Key: "shard", Val: "0"}}, Value: 3},
		{Name: "fgs_b_gauge", Kind: KindGauge, Value: 1},
	})
	r.Register(staticSource{
		{Name: "fgs_ercache_hits_total", Kind: KindCounter, Labels: []Label{{Key: "shard", Val: "0"}}, Value: 4},
		{Name: "fgs_b_gauge", Kind: KindGauge, Value: 9},
	})
	r.Add("fgs_a_total", "help", nil, 5)
	r.Add("fgs_a_total", "help", nil, 2)

	got := r.Gather()
	if len(got) != 3 {
		t.Fatalf("got %d series, want 3: %+v", len(got), got)
	}
	// sorted: fgs_a_total, fgs_b_gauge, fgs_ercache_hits_total{shard=0}
	if got[0].Name != "fgs_a_total" || got[0].Value != 7 {
		t.Errorf("adhoc merge wrong: %+v", got[0])
	}
	if got[1].Name != "fgs_b_gauge" || got[1].Value != 9 {
		t.Errorf("gauge last-wins wrong: %+v", got[1])
	}
	if got[2].Name != "fgs_ercache_hits_total" || got[2].Value != 7 {
		t.Errorf("counter sum wrong: %+v", got[2])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clk := NewFrozen(time.Unix(0, 0))
	tr := NewTrace(clk)
	root := tr.Start("run")
	clk.Advance(2 * time.Millisecond)
	child := root.Child("mine")
	child.SetArg("patterns", 7)
	clk.Advance(3 * time.Millisecond)
	child.End()
	open := root.Child("never-ends")
	_ = open
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("got %d events (open span must be skipped), want 2", len(f.TraceEvents))
	}
	ev := f.TraceEvents[1]
	if ev["name"] != "mine" || ev["ph"] != "X" || ev["ts"] != 2000.0 || ev["dur"] != 3000.0 {
		t.Errorf("mine event wrong: %v", ev)
	}
	args, _ := ev["args"].(map[string]any)
	if args["patterns"] != 7.0 {
		t.Errorf("args wrong: %v", ev["args"])
	}
}

func TestWritePrometheus(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(40)
	hv := h.Snapshot()
	metrics := []Metric{
		{Name: "fgs_x_total", Help: "x ops", Kind: KindCounter, Labels: []Label{{Key: "shard", Val: "1"}}, Value: 12},
		{Name: "fgs_x_total", Kind: KindCounter, Labels: []Label{{Key: "shard", Val: "2"}}, Value: 3},
		{Name: "fgs_depth", Help: "queue depth", Kind: KindHistogram, Hist: &hv},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, metrics); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP fgs_x_total x ops\n",
		"# TYPE fgs_x_total counter\n",
		"fgs_x_total{shard=\"1\"} 12\n",
		"fgs_x_total{shard=\"2\"} 3\n",
		"# TYPE fgs_depth histogram\n",
		"fgs_depth_bucket{le=\"2\"} 0\n",
		"fgs_depth_bucket{le=\"4\"} 1\n",
		"fgs_depth_bucket{le=\"64\"} 2\n",
		"fgs_depth_bucket{le=\"+Inf\"} 2\n",
		"fgs_depth_sum 43\n",
		"fgs_depth_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE for fgs_x_total must appear exactly once.
	if strings.Count(out, "# TYPE fgs_x_total") != 1 {
		t.Errorf("duplicate TYPE header:\n%s", out)
	}
}

func TestPhaseMetrics(t *testing.T) {
	clk := NewFrozen(time.Unix(0, 0))
	tr := NewTrace(clk)
	for i := 0; i < 2; i++ {
		s := tr.Start("mine")
		clk.Advance(time.Second)
		s.End()
	}
	s := tr.Start("select")
	clk.Advance(500 * time.Millisecond)
	s.End()

	got := PhaseMetrics(tr)
	if len(got) != 4 {
		t.Fatalf("got %d metrics, want 4: %+v", len(got), got)
	}
	if got[0].Labels[0].Val != "mine" || got[0].Value != 2.0 {
		t.Errorf("mine seconds wrong: %+v", got[0])
	}
	if got[1].Labels[0].Val != "mine" || got[1].Value != 2 {
		t.Errorf("mine count wrong: %+v", got[1])
	}
	if got[2].Labels[0].Val != "select" || got[2].Value != 0.5 {
		t.Errorf("select seconds wrong: %+v", got[2])
	}
}

func TestFormatTable(t *testing.T) {
	var h Histogram
	h.Observe(4)
	hv := h.Snapshot()
	out := FormatTable([]Metric{
		{Name: "fgs_hits_total", Kind: KindCounter, Labels: []Label{{Key: "shard", Val: "0"}}, Value: 9},
		{Name: "fgs_depth", Kind: KindHistogram, Hist: &hv},
	})
	if !strings.Contains(out, `fgs_hits_total{shard="0"}`) || !strings.Contains(out, "9") {
		t.Errorf("counter row missing:\n%s", out)
	}
	if !strings.Contains(out, "count=1 sum=4 mean=4.00") {
		t.Errorf("histogram row missing:\n%s", out)
	}
}

package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cwru-db/fgs/internal/baseline"
	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/metrics"
	"github.com/cwru-db/fgs/internal/submod"
)

// Exp-3 (Figs. 10(a)/10(b)): a stream of LKI edges is revealed in batches;
// Inc-FGS maintains its summary incrementally, APXFGS recomputes from
// scratch at every checkpoint, and MoSSo consumes the same stream. Fig10a
// reports the anytime compression ratio; Fig10b the per-batch time.

// exp3 runs the shared stream once and returns both figures' rows.
func (s *Suite) exp3(checkpoints int) (ratioRows, timeRows []Row, err error) {
	if checkpoints < 2 {
		checkpoints = 2
	}
	lki := s.Dataset("LKI")
	r, n := 2, 60
	lower, upper := 20, 40

	// The stream: every LKI edge in a seeded shuffled order.
	type edge struct {
		from, to graph.NodeID
		label    string
	}
	var stream []edge
	for from := graph.NodeID(0); int(from) < lki.NumNodes(); from++ {
		for _, e := range lki.Out(from) {
			stream = append(stream, edge{from: from, to: e.To, label: lki.EdgeLabelName(e.Label)})
		}
	}
	rng := rand.New(rand.NewSource(s.Seed + 99))
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	// The "seen" graph starts with all nodes and no edges.
	gSeen := cloneNodes(lki)
	groups, err := gen.GroupsByAttr(gSeen, "user", "gender", []string{"male", "female"}, lower, upper)
	if err != nil {
		return nil, nil, fmt.Errorf("exp3: %w", err)
	}
	cfg := core.Config{R: r, N: n, Mining: miningCfg(s.Workers), Obs: s.Obs}
	incUtil := submod.NewNeighborCoverage(gSeen, submod.NeighborsIn, "corev")
	maintainer, _ := core.NewMaintainer(gSeen, groups, incUtil, cfg)
	mosso := baseline.NewMosso(s.Seed)
	clock := s.clock()

	batchSize := (len(stream) + checkpoints - 1) / checkpoints
	for cp := 1; cp <= checkpoints; cp++ {
		lo, hi := (cp-1)*batchSize, cp*batchSize
		if hi > len(stream) {
			hi = len(stream)
		}
		batch := make([]core.EdgeUpdate, 0, hi-lo)
		for _, e := range stream[lo:hi] {
			batch = append(batch, core.EdgeUpdate{From: e.from, To: e.to, Label: e.label})
		}
		incSum, incDur, err := maintainer.TimeBatch(batch)
		if err != nil {
			return nil, nil, fmt.Errorf("exp3 checkpoint %d: %w", cp, err)
		}
		mossoStart := clock.Now()
		for _, e := range stream[lo:hi] {
			mosso.AddEdge(e.from, e.to)
		}
		mossoDur := clock.Now().Sub(mossoStart)

		// APXFGS recomputes from scratch on the seen graph.
		apxStart := clock.Now()
		apxSum, err := core.APXFGS(gSeen, groups, submod.NewNeighborCoverage(gSeen, submod.NeighborsIn, "corev"), cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("exp3 checkpoint %d: APXFGS: %w", cp, err)
		}
		apxDur := clock.Now().Sub(apxStart)

		frac := float64(hi) / float64(len(stream))
		incStructure := 0
		for _, pi := range incSum.Patterns {
			incStructure += pi.P.Size()
		}
		apxStructure := 0
		for _, pi := range apxSum.Patterns {
			apxStructure += pi.P.Size()
		}
		mossoRes := mosso.Result(groups, n, mossoDur)

		ratioRows = append(ratioRows,
			Row{Exp: "fig10a", Dataset: "LKI", Algo: "Inc-FGS", XLabel: "frac", X: frac, Metric: "compression_ratio",
				Value: metrics.CompressionRatio(gSeen, r, incSum.Covered, incStructure, incSum.Corrections.Len())},
			Row{Exp: "fig10a", Dataset: "LKI", Algo: "APXFGS", XLabel: "frac", X: frac, Metric: "compression_ratio",
				Value: metrics.CompressionRatio(gSeen, r, apxSum.Covered, apxStructure, apxSum.Corrections.Len())},
			Row{Exp: "fig10a", Dataset: "LKI", Algo: "Mosso", XLabel: "frac", X: frac, Metric: "compression_ratio",
				Value: mossoRes.GlobalRatio},
		)
		timeRows = append(timeRows,
			Row{Exp: "fig10b", Dataset: "LKI", Algo: "Inc-FGS", XLabel: "frac", X: frac, Metric: "time_ms", Value: float64(incDur.Milliseconds())},
			Row{Exp: "fig10b", Dataset: "LKI", Algo: "APXFGS", XLabel: "frac", X: frac, Metric: "time_ms", Value: float64(apxDur.Milliseconds())},
		)
	}
	return ratioRows, timeRows, nil
}

// Fig10a reproduces Fig. 10(a): anytime compression ratio over the stream.
func (s *Suite) Fig10a() ([]Row, error) {
	rows, _, err := s.exp3(5)
	return rows, err
}

// Fig10b reproduces Fig. 10(b): per-batch maintenance time, Inc-FGS vs
// recomputation with APXFGS.
func (s *Suite) Fig10b() ([]Row, error) {
	_, rows, err := s.exp3(5)
	return rows, err
}

// cloneNodes copies every node (label and attributes) of g into a fresh
// graph with no edges — the time-zero state of the edge stream.
func cloneNodes(g *graph.Graph) *graph.Graph {
	out := graph.New()
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		attrs := make(map[string]string)
		for _, a := range g.Attrs(v) {
			attrs[g.AttrKeyName(a.Key)] = g.AttrValName(a.Val)
		}
		out.AddNode(g.LabelOf(v), attrs)
	}
	return out
}

package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text exchange format is line-oriented:
//
//	n <id> <label> [key=val ...]    one node; ids must be dense and ascending
//	e <from> <to> <label>           one directed edge
//	# ...                           comment
//
// It exists so the CLIs can round-trip generated datasets and users can feed
// their own graphs to cmd/fgs.

// Write serializes the graph in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		fmt.Fprintf(bw, "n %d %s", id, escapeToken(g.LabelOf(id)))
		attrs := g.Attrs(id)
		// Sort by key name so output is stable across interner orders.
		type kv struct{ k, v string }
		pairs := make([]kv, 0, len(attrs))
		for _, a := range attrs {
			pairs = append(pairs, kv{g.AttrKeyName(a.Key), g.AttrValName(a.Val)})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
		for _, p := range pairs {
			fmt.Fprintf(bw, " %s=%s", escapeToken(p.k), escapeToken(p.v))
		}
		fmt.Fprintln(bw)
	}
	for from := NodeID(0); int(from) < g.NumNodes(); from++ {
		for _, e := range g.Out(from) {
			fmt.Fprintf(bw, "e %d %d %s\n", from, e.To, escapeToken(g.EdgeLabelName(e.Label)))
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: node needs id and label", lineno)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id: %v", lineno, err)
			}
			if id != g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: node ids must be dense and ascending (got %d, want %d)", lineno, id, g.NumNodes())
			}
			var attrs map[string]string
			if len(fields) > 3 {
				attrs = make(map[string]string, len(fields)-3)
				for _, f := range fields[3:] {
					k, v, ok := strings.Cut(f, "=")
					if !ok {
						return nil, fmt.Errorf("graph: line %d: bad attribute %q", lineno, f)
					}
					attrs[unescapeToken(k)] = unescapeToken(v)
				}
			}
			g.AddNode(unescapeToken(fields[2]), attrs)
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge needs from, to, label", lineno)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", lineno)
			}
			if err := g.AddEdge(NodeID(from), NodeID(to), unescapeToken(fields[3])); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// escapeToken protects whitespace and '=' inside labels/keys/values so the
// format stays whitespace-delimited.
func escapeToken(s string) string {
	if !strings.ContainsAny(s, " \t=%") {
		if s == "" {
			return "%e"
		}
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case ' ':
			b.WriteString("%s")
		case '\t':
			b.WriteString("%t")
		case '=':
			b.WriteString("%q")
		case '%':
			b.WriteString("%%")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func unescapeToken(s string) string {
	if !strings.Contains(s, "%") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 's':
			b.WriteByte(' ')
		case 't':
			b.WriteByte('\t')
		case 'q':
			b.WriteByte('=')
		case '%':
			b.WriteByte('%')
		case 'e':
			// empty token marker: writes nothing
		default:
			b.WriteByte('%')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cwru-db/fgs/internal/pattern"
)

func TestWorkload(t *testing.T) {
	g, groups, util := talentFixture(t)
	s, err := APXFGS(g, groups, util, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	entries := Workload(g, s, 0)
	if len(entries) != len(s.Patterns) {
		t.Fatalf("entries = %d, want one per pattern", len(entries))
	}
	m := pattern.NewMatcher(g, 0)
	for i, e := range entries {
		if e.Cardinality != len(m.Matches(e.P)) {
			t.Fatalf("entry %d cardinality mismatch", i)
		}
		if e.CoveredMatches > e.Cardinality {
			t.Fatalf("entry %d: covered matches exceed total", i)
		}
		if e.CoveredMatches == 0 {
			t.Fatalf("entry %d: summary pattern matches none of its own covered nodes", i)
		}
		if e.Selectivity <= 0 || e.Selectivity > 1 {
			t.Fatalf("entry %d selectivity %v out of (0,1]", i, e.Selectivity)
		}
	}
}

func TestWriteWorkloadRoundTrips(t *testing.T) {
	g, groups, util := talentFixture(t)
	s, err := APXFGS(g, groups, util, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, Workload(g, s, 0)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cardinality=") || !strings.Contains(out, "selectivity=") {
		t.Fatalf("annotations missing:\n%s", out)
	}
	// Every block must parse back into the original pattern.
	blocks := strings.Split(strings.TrimSpace(out), "\n\n")
	if len(blocks) != len(s.Patterns) {
		t.Fatalf("blocks = %d, want %d", len(blocks), len(s.Patterns))
	}
	for i, b := range blocks {
		p, err := pattern.ParseString(b)
		if err != nil {
			t.Fatalf("block %d does not parse: %v\n%s", i, err, b)
		}
		if pattern.CanonicalCode(p) != pattern.CanonicalCode(s.Patterns[i].P) {
			t.Fatalf("block %d round trip changed the pattern", i)
		}
	}
}

package baseline

import (
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// GramiConfig configures the GraMi adaptation.
type GramiConfig struct {
	// R is the reconstruction horizon used when charging corrections.
	R int
	// K is the number of top frequent patterns kept as the summary.
	K int
	// N truncates the covered node set for comparability with FGS.
	N int
	// MinSup prunes patterns below this focus-match support. Default 2.
	MinSup int
	// Mining bounds the pattern search (Radius forced to R).
	Mining mining.Config
}

// Grami summarizes the groups with the top-k most frequent subgraph
// patterns, mined over all group nodes with no fairness constraint — the
// paper's adaptation of GraMi [11]. Covered nodes follow pattern rank order:
// the most frequent pattern contributes its matches first, so the result
// mirrors the majority skew frequent mining exhibits in Example 2.
//
// Grami is lossless in this adaptation: corrections are charged for every
// r-hop edge of the covered nodes that no selected pattern describes.
func Grami(g *graph.Graph, groups *submod.Groups, cfg GramiConfig) Result {
	clock := cfg.Mining.Obs.GetClock()
	start := clock.Now()
	if cfg.MinSup <= 0 {
		cfg.MinSup = 2
	}
	cfg.Mining.Radius = cfg.R
	freq := mining.Frequent(g, groups.All(), cfg.Mining, cfg.K, cfg.MinSup)

	var covered []graph.NodeID
	seen := graph.NewNodeSet(cfg.N)
	structure := 0
	patterns := make([]*pattern.Pattern, 0, len(freq))
	for _, f := range freq {
		patterns = append(patterns, f.P)
		structure += f.P.Size()
		covered = dedupAppend(covered, f.Covered, seen)
	}
	covered = truncate(covered, cfg.N)

	corrections := countCorrections(g, patterns, covered, cfg.R, cfg.Mining.EmbedCap)
	return Result{
		Patterns:      patterns,
		Covered:       covered,
		StructureSize: structure,
		Corrections:   corrections,
		Elapsed:       clock.Now().Sub(start),
	}
}

// countCorrections charges |E^r_covered \ P_E| for a pattern-based summary:
// the edges of the covered nodes' r-hop neighborhoods that no pattern
// embedding (anchored at a covered node) describes.
func countCorrections(g *graph.Graph, patterns []*pattern.Pattern, covered []graph.NodeID, r, embedCap int) int {
	if len(covered) == 0 {
		return 0
	}
	m := pattern.NewMatcher(g, embedCap)
	described := graph.NewEdgeBits(g.EdgeIDBound())
	for _, p := range patterns {
		for _, v := range covered {
			if es, ok := m.CoveredEdgeBitsAt(p, v); ok {
				described.Union(es)
			}
		}
	}
	return g.RHopEdgeBitsOf(covered, r).AndNotCount(described)
}

package experiments

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/submod"
)

// Shared Exp-1 configuration (Figs. 8(a)/8(b)): card(V)=2, r=2, k=20, n=100,
// bounds [40,60] for both groups. At scale 1 the bounds are shrunk
// proportionally so the groups stay coverable.
func (s *Suite) exp1Params() (r, k, n, lower, upper int) {
	r, k = 2, 20
	n = 100
	lower, upper = 40, 60
	return
}

// Fig8a reproduces Fig. 8(a): coverage error per algorithm per dataset.
func (s *Suite) Fig8a() ([]Row, error) {
	return s.exp1("fig8a", "coverage_error")
}

// Fig8b reproduces Fig. 8(b): compression ratio per algorithm per dataset.
func (s *Suite) Fig8b() ([]Row, error) {
	return s.exp1("fig8b", "compression_ratio")
}

func (s *Suite) exp1(exp, metric string) ([]Row, error) {
	r, k, n, lower, upper := s.exp1Params()
	settings, err := s.standardSettings(lower, upper)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", exp, err)
	}
	var rows []Row
	for _, st := range settings {
		outcomes, err := s.runAll(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exp, err)
		}
		for _, algo := range orderedAlgos(outcomes) {
			o := outcomes[algo]
			covErr, compRatio := score(st.g, st.groups, r, o)
			v := covErr
			if metric == "compression_ratio" {
				v = compRatio
			}
			rows = append(rows, Row{Exp: exp, Dataset: st.name, Algo: algo, Metric: metric, Value: v})
		}
	}
	return rows, nil
}

// Fig8c reproduces Fig. 8(c): compression ratio on DBP as k varies 10..50.
func (s *Suite) Fig8c() ([]Row, error) {
	r, _, n, lower, upper := s.exp1Params()
	settings, err := s.standardSettings(lower, upper)
	if err != nil {
		return nil, fmt.Errorf("fig8c: %w", err)
	}
	st := settings[0] // DBP
	var rows []Row
	for _, k := range []int{10, 20, 30, 40, 50} {
		outcomes, err := s.runAll(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig8c k=%d: %w", k, err)
		}
		for _, algo := range orderedAlgos(outcomes) {
			o := outcomes[algo]
			_, compRatio := score(st.g, st.groups, r, o)
			rows = append(rows, Row{Exp: "fig8c", Dataset: st.name, Algo: algo, XLabel: "k", X: float64(k), Metric: "compression_ratio", Value: compRatio})
		}
	}
	return rows, nil
}

// Fig8d reproduces Fig. 8(d): coverage error on LKI as card(V) varies 2..6.
// Groups are induced from gender alone (2), gender x {BS,MS} (4), and
// gender x {BS,MS,PhD} (6), following the paper's LKI grouping.
func (s *Suite) Fig8d() ([]Row, error) {
	lki := s.Dataset("LKI")
	r, k := 2, 20
	n := 240
	util := func() submod.Utility { return submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev") }
	build := func(card int) (*submod.Groups, error) {
		switch card {
		case 2:
			return gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 20, 60)
		case 4:
			return gen.GroupsByAttrPairs(lki, "user", "gender", []string{"male", "female"}, "degree", []string{"BS", "MS"}, 20, 60)
		case 6:
			return gen.GroupsByAttrPairs(lki, "user", "gender", []string{"male", "female"}, "degree", []string{"BS", "MS", "PhD"}, 20, 60)
		default:
			return nil, fmt.Errorf("fig8d: unsupported card %d", card)
		}
	}
	var rows []Row
	for _, card := range []int{2, 4, 6} {
		groups, err := build(card)
		if err != nil {
			return nil, err
		}
		st := setting{name: "LKI", g: lki, groups: groups, util: util}
		outcomes, err := s.runAll(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig8d card=%d: %w", card, err)
		}
		for _, algo := range orderedAlgos(outcomes) {
			o := outcomes[algo]
			covErr, _ := score(st.g, st.groups, r, o)
			rows = append(rows, Row{Exp: "fig8d", Dataset: "LKI", Algo: algo, XLabel: "card", X: float64(card), Metric: "coverage_error", Value: covErr})
		}
	}
	return rows, nil
}

// Fig8e reproduces Fig. 8(e): compression ratio on LKI as n varies 50..250,
// with the [40%, 60%] bounds scaled to n.
func (s *Suite) Fig8e() ([]Row, error) {
	lki := s.Dataset("LKI")
	r, k := 2, 20
	util := func() submod.Utility { return submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev") }
	var rows []Row
	for _, n := range []int{50, 100, 150, 200, 250} {
		lower, upper := n*4/10, n*6/10
		groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, lower, upper)
		if err != nil {
			return nil, fmt.Errorf("fig8e n=%d: %w", n, err)
		}
		st := setting{name: "LKI", g: lki, groups: groups, util: util}
		outcomes, err := s.runAll(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig8e n=%d: %w", n, err)
		}
		for _, algo := range orderedAlgos(outcomes) {
			o := outcomes[algo]
			_, compRatio := score(st.g, st.groups, r, o)
			rows = append(rows, Row{Exp: "fig8e", Dataset: "LKI", Algo: algo, XLabel: "n", X: float64(n), Metric: "compression_ratio", Value: compRatio})
		}
	}
	return rows, nil
}

// Fig8f reproduces Fig. 8(f): compression ratio on LKI as the lower bound l
// varies 50..250 with u=260 and n=500.
func (s *Suite) Fig8f() ([]Row, error) {
	lki := s.Dataset("LKI")
	r, k, n := 2, 20, 500
	upper := 260
	util := func() submod.Utility { return submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev") }
	var rows []Row
	for _, l := range []int{50, 100, 150, 200, 250} {
		groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, l, upper)
		if err != nil {
			return nil, fmt.Errorf("fig8f l=%d: %w", l, err)
		}
		st := setting{name: "LKI", g: lki, groups: groups, util: util}
		outcomes, err := s.runAll(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig8f l=%d: %w", l, err)
		}
		for _, algo := range orderedAlgos(outcomes) {
			o := outcomes[algo]
			_, compRatio := score(st.g, st.groups, r, o)
			rows = append(rows, Row{Exp: "fig8f", Dataset: "LKI", Algo: algo, XLabel: "l", X: float64(l), Metric: "compression_ratio", Value: compRatio})
		}
	}
	return rows, nil
}

package pattern

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

// Tests for the compile cache: hits must reuse the compiled form, and — the
// regression this file exists for — a pattern compiled unmatchable only
// because a label or attribute was not yet interned must be recompiled once
// the graph's interner universes grow, not stay cached as a permanent miss.

// TestCompileCacheHit checks repeated matching of the same *Pattern populates
// the cache once and serves subsequent calls from it.
func TestCompileCacheHit(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p := star()
	if !m.MatchAt(p, ids[0]) {
		t.Fatal("star should match v0")
	}
	m.cacheMu.RLock()
	c1, ok := m.cache[p]
	m.cacheMu.RUnlock()
	if !ok {
		t.Fatal("MatchAt did not populate the compile cache")
	}
	if !m.MatchAt(p, ids[5]) {
		t.Fatal("star should match v5")
	}
	m.cacheMu.RLock()
	c2 := m.cache[p]
	size := len(m.cache)
	m.cacheMu.RUnlock()
	if c1 != c2 {
		t.Fatal("second MatchAt recompiled a cached ok pattern")
	}
	if size != 1 {
		t.Fatalf("cache holds %d entries for one pattern, want 1", size)
	}
}

// TestCompileCacheRecompilesOnUniverseGrowth is the regression test for the
// interner-growth bug: a matcher consulted before a label exists caches the
// pattern as unmatchable; adding nodes/edges that intern the label must make
// the same *Pattern match without constructing a new Matcher.
func TestCompileCacheRecompilesOnUniverseGrowth(t *testing.T) {
	g := graph.New()
	seed := g.AddNode("user", nil)
	m := NewMatcher(g, 0)

	// "movie" and "rates" are unknown to the graph: the pattern cannot match
	// and its compiled form is cached with ok=false.
	p := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "movie"}, {Label: "user"}},
		Edges: []Edge{{From: 1, To: 0, Label: "rates"}},
	}
	if m.MatchAt(p, seed) {
		t.Fatal("pattern with unknown labels matched")
	}
	if got := m.FocusCandidates(p); len(got) != 0 {
		t.Fatalf("FocusCandidates on unmatchable pattern = %v", got)
	}

	// Grow the graph so the labels exist and an embedding appears.
	movie := g.AddNode("movie", nil)
	if err := g.AddEdge(seed, movie, "rates"); err != nil {
		t.Fatal(err)
	}
	if !m.MatchAt(p, movie) {
		t.Fatal("cached ok=false compile not invalidated after interner growth")
	}
	es, ok := m.CoveredEdgesAt(p, movie)
	if !ok || es.Len() != 1 {
		t.Fatalf("CoveredEdgesAt after recompile = %v,%v, want the one rates edge", es, ok)
	}

	// Literal-value growth takes the same path: an attribute value interned
	// only later must also flip a cached miss into a match.
	q := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "user", Literals: []Literal{{Key: "tier", Val: "gold"}}}},
	}
	if m.MatchAt(q, seed) {
		t.Fatal("literal with unknown value matched")
	}
	vip := g.AddNode("user", map[string]string{"tier": "gold"})
	if !m.MatchAt(q, vip) {
		t.Fatal("cached miss not recompiled after attribute value interned")
	}

	// And a recompiled ok pattern stays cached: no further growth, repeated
	// calls serve the same compiled form.
	m.cacheMu.RLock()
	c1 := m.cache[p]
	m.cacheMu.RUnlock()
	if !m.MatchAt(p, movie) {
		t.Fatal("match lost on repeat")
	}
	m.cacheMu.RLock()
	c2 := m.cache[p]
	m.cacheMu.RUnlock()
	if c1 != c2 || !c1.ok {
		t.Fatal("ok compile was not reused after universe-growth recompile")
	}
}

// TestCompileCacheNodeBitsHonorLateNodes checks the nodeOK prefilter: label
// bitsets are sized at compile time, so nodes added afterwards must still be
// matchable through the direct label-compare fallback.
func TestCompileCacheNodeBitsHonorLateNodes(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p := star()
	if !m.MatchAt(p, ids[0]) {
		t.Fatal("star should match v0")
	}
	// New focus with two new recommenders, all beyond the compiled nbound.
	f := g.AddNode("user", nil)
	r1 := g.AddNode("user", nil)
	r2 := g.AddNode("user", nil)
	for _, r := range []graph.NodeID{r1, r2} {
		if err := g.AddEdge(r, f, "recommend"); err != nil {
			t.Fatal(err)
		}
	}
	if !m.MatchAt(p, f) {
		t.Fatal("pattern must match an embedding made entirely of post-compile nodes")
	}
}

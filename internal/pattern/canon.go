package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalCode returns a string that is identical for isomorphic patterns
// (same focus role, labels, literals, and directed labeled edges) and
// distinct otherwise, for patterns up to canonExactLimit nodes. The miner
// uses it to deduplicate grown patterns.
//
// The code is the lexicographically minimal serialization over all
// connectivity-respecting orderings that place the focus first. Beyond
// canonExactLimit nodes an order-insensitive signature is returned instead;
// it never merges non-isomorphic patterns' behaviour incorrectly — at worst
// two isomorphic large patterns both survive dedup, which only costs time.
const canonExactLimit = 9

// CanonicalCode computes the canonical code of p.
func CanonicalCode(p *Pattern) string {
	if len(p.Nodes) > canonExactLimit {
		return looseSignature(p)
	}
	e := canonEnum{p: p, adj: p.undirectedAdj()}
	e.run()
	return e.best
}

// canonEnum performs branch-and-bound enumeration of orderings.
type canonEnum struct {
	p    *Pattern
	adj  [][]int
	best string
}

func (e *canonEnum) run() {
	n := len(e.p.Nodes)
	order := make([]int, 0, n)
	placed := make([]bool, n)
	order = append(order, e.p.Focus)
	placed[e.p.Focus] = true
	e.rec(order, placed)
}

func (e *canonEnum) rec(order []int, placed []bool) {
	n := len(e.p.Nodes)
	if len(order) == n {
		code := serialize(e.p, order)
		if e.best == "" || code < e.best {
			e.best = code
		}
		return
	}
	// Extend with any unplaced node adjacent to a placed one (keeps prefixes
	// connected, bounding the orderings to consider).
	tried := make(map[int]bool)
	for _, u := range order {
		for _, v := range e.adj[u] {
			if placed[v] || tried[v] {
				continue
			}
			tried[v] = true
			placed[v] = true
			e.rec(append(order, v), placed)
			placed[v] = false
		}
	}
}

// serialize renders the pattern under a fixed node ordering: node signatures
// in order, then edges rewritten to positions, sorted.
func serialize(p *Pattern, order []int) string {
	pos := make([]int, len(p.Nodes))
	for i, u := range order {
		pos[u] = i
	}
	var b strings.Builder
	for _, u := range order {
		b.WriteString(nodeSig(p.Nodes[u]))
		b.WriteString(";")
	}
	edges := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		edges[i] = fmt.Sprintf("%d>%d:%s", pos[e.From], pos[e.To], e.Label)
	}
	sort.Strings(edges)
	b.WriteString(strings.Join(edges, "|"))
	return b.String()
}

// nodeSig renders one node's label and sorted literals.
func nodeSig(n Node) string {
	if len(n.Literals) == 0 {
		return n.Label
	}
	lits := append([]Literal(nil), n.Literals...)
	sortLiterals(lits)
	parts := make([]string, len(lits))
	for i, l := range lits {
		parts[i] = l.Key + "=" + l.Val
	}
	return n.Label + "{" + strings.Join(parts, ",") + "}"
}

// looseSignature is an order-insensitive fallback for large patterns: sorted
// node signatures with degrees, plus sorted edge label/endpoint-signature
// triples. Isomorphic patterns always get equal signatures; unequal patterns
// may collide only in ways the miner tolerates (it re-checks coverage).
func looseSignature(p *Pattern) string {
	nodeSigs := make([]string, len(p.Nodes))
	inDeg := make([]int, len(p.Nodes))
	outDeg := make([]int, len(p.Nodes))
	for _, e := range p.Edges {
		outDeg[e.From]++
		inDeg[e.To]++
	}
	for i, n := range p.Nodes {
		focus := 0
		if i == p.Focus {
			focus = 1
		}
		nodeSigs[i] = fmt.Sprintf("%s/%d/%d/%d", nodeSig(n), inDeg[i], outDeg[i], focus)
	}
	edgeSigs := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		edgeSigs[i] = nodeSigs[e.From] + ">" + e.Label + ">" + nodeSigs[e.To]
	}
	sorted := append([]string(nil), nodeSigs...)
	sort.Strings(sorted)
	sort.Strings(edgeSigs)
	return "L:" + strings.Join(sorted, ";") + "#" + strings.Join(edgeSigs, "|")
}

package lint

// dataflow.go is the generic forward dataflow core over funcCFG
// (DESIGN.md §12). The state domain is a bitset of client-defined facts —
// for the must-pair analysis, fact i means "resource i is currently open".
// The solver runs a standard worklist to fixpoint with union at joins, i.e.
// a MAY analysis: a fact holds at a point if it holds on at least one path
// reaching it, which is exactly the leak question ("is there a path to this
// return on which the resource is still open?").
//
// Clients supply:
//   - a per-statement transfer function (gen/kill of facts), and
//   - an optional per-edge refinement, so a conditional like `err != nil`
//     or `errors.Is(err, ...)` can kill facts on the branch it proves dead
//     (an acquire that failed never produced a live resource).
//
// witnessPath reconstructs one concrete leaking path for diagnostics: the
// blocks, in order, along which the fact stays open from its gen site to an
// exit, reported as source lines.

import (
	"go/ast"
	"go/token"
)

// factSet is a small bitset over fact indices.
type factSet []uint64

func newFactSet(n int) factSet { return make(factSet, (n+63)/64) }

func (s factSet) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }
func (s factSet) add(i int)      { s[i/64] |= 1 << (i % 64) }
func (s factSet) del(i int)      { s[i/64] &^= 1 << (i % 64) }

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	copy(out, s)
	return out
}

// unionInto ors other into s, reporting whether s changed.
func (s factSet) unionInto(other factSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | other[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s factSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// flowProblem describes one forward may-analysis instance.
type flowProblem struct {
	numFacts int

	// transferStmt applies one statement's effect to state in place.
	transferStmt func(n ast.Node, state factSet)

	// refineEdge, if non-nil, adjusts state for the edge from→from.succs[succIdx]
	// in place (called on a private copy).
	refineEdge func(from *cfgBlock, succIdx int, state factSet)
}

// flowResult holds the fixpoint: the state at entry to each block.
type flowResult struct {
	problem *flowProblem
	cfg     *funcCFG
	in      []factSet // indexed by block index
}

// solveForward runs the worklist algorithm to fixpoint.
func solveForward(cfg *funcCFG, p *flowProblem) *flowResult {
	res := &flowResult{problem: p, cfg: cfg, in: make([]factSet, len(cfg.blocks))}
	for i := range res.in {
		res.in[i] = newFactSet(p.numFacts)
	}
	// Worklist seeded with every block (entry first, then index order), so
	// each is processed at least once even when its in-state never changes
	// from the initial empty set; deterministic order via FIFO queue.
	queue := make([]*cfgBlock, 0, len(cfg.blocks))
	queued := make([]bool, len(cfg.blocks))
	queue = append(queue, cfg.entry)
	queued[cfg.entry.index] = true
	for _, blk := range cfg.blocks {
		if !queued[blk.index] {
			queue = append(queue, blk)
			queued[blk.index] = true
		}
	}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		queued[blk.index] = false

		out := res.in[blk.index].clone()
		for _, n := range blk.stmts {
			p.transferStmt(n, out)
		}
		for si, succ := range blk.succs {
			edgeState := out
			if p.refineEdge != nil {
				edgeState = out.clone()
				p.refineEdge(blk, si, edgeState)
			}
			if res.in[succ.index].unionInto(edgeState) && !queued[succ.index] {
				queued[succ.index] = true
				queue = append(queue, succ)
			}
		}
	}
	return res
}

// outOf recomputes the state leaving blk (entry state pushed through its
// statements).
func (r *flowResult) outOf(blk *cfgBlock) factSet {
	out := r.in[blk.index].clone()
	for _, n := range blk.stmts {
		r.problem.transferStmt(n, out)
	}
	return out
}

// leaksAtExit reports the facts open on entry to the normal exit block —
// i.e. resources some path returns without releasing. Panic exits are
// deliberately excluded: a panicking path is already an error diagnostic of
// its own (nopanic) and unwinds the whole goroutine.
func (r *flowResult) leaksAtExit() []int {
	state := r.in[r.cfg.exit.index]
	var out []int
	for i := 0; i < r.problem.numFacts; i++ {
		if state.has(i) {
			out = append(out, i)
		}
	}
	return out
}

// witnessPath reconstructs one path along which fact stays open from genBlock
// to the exit, as a deterministic DFS (successors in construction order). It
// returns the line numbers of the blocks traversed (deduplicated, in path
// order) and the position of the exiting statement (the return), or ok=false
// if no such path exists.
func (r *flowResult) witnessPath(fset *token.FileSet, fact int, genBlock *cfgBlock) (lines []int, exitPos token.Pos, ok bool) {
	visited := make([]bool, len(r.cfg.blocks))
	var path []*cfgBlock

	var dfs func(blk *cfgBlock) bool
	dfs = func(blk *cfgBlock) bool {
		if blk == r.cfg.exit {
			return true
		}
		if visited[blk.index] {
			return false
		}
		visited[blk.index] = true
		// The fact must survive this block for the path to be a leak path.
		state := r.in[blk.index].clone()
		if blk != genBlock && !state.has(fact) {
			return false
		}
		out := state
		for _, n := range blk.stmts {
			r.problem.transferStmt(n, out)
		}
		if !out.has(fact) {
			return false
		}
		path = append(path, blk)
		for si, succ := range blk.succs {
			if r.problem.refineEdge != nil {
				edge := out.clone()
				r.problem.refineEdge(blk, si, edge)
				if !edge.has(fact) {
					continue
				}
			}
			if dfs(succ) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}

	if !dfs(genBlock) {
		return nil, token.NoPos, false
	}
	seenLine := make(map[int]bool)
	for _, blk := range path {
		if blk.pos == token.NoPos {
			continue
		}
		line := fset.Position(blk.pos).Line
		if !seenLine[line] {
			seenLine[line] = true
			lines = append(lines, line)
		}
	}
	// The exiting statement is the last statement of the final block on the
	// path (a return) when there is one; otherwise the function end.
	if last := path[len(path)-1]; len(last.stmts) > 0 {
		exitPos = last.stmts[len(last.stmts)-1].Pos()
	}
	return lines, exitPos, true
}

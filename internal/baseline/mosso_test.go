package baseline

import (
	"math/rand"
	"testing"
	"time"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

func TestMossoSingleEdge(t *testing.T) {
	m := NewMosso(1)
	m.AddEdge(0, 1)
	if m.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", m.NumEdges())
	}
	if m.Cost() != 1 {
		t.Fatalf("Cost = %d, want 1 (single sparse edge)", m.Cost())
	}
	// Duplicate (either direction) is ignored.
	m.AddEdge(1, 0)
	m.AddEdge(0, 1)
	if m.NumEdges() != 1 || m.Cost() != 1 {
		t.Fatal("duplicate edge changed state")
	}
	// Self loops ignored.
	m.AddEdge(2, 2)
	if m.NumEdges() != 1 {
		t.Fatal("self loop accepted")
	}
}

// A clique compresses far below its edge count: MoSSo should merge the
// members into few supernodes whose dense encoding costs ~1 + corrections.
func TestMossoCompressesClique(t *testing.T) {
	m := NewMosso(7)
	const n = 12
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	edges := n * (n - 1) / 2
	if m.NumEdges() != edges {
		t.Fatalf("NumEdges = %d, want %d", m.NumEdges(), edges)
	}
	if m.Cost() >= edges/2 {
		t.Fatalf("clique cost %d barely compresses %d edges", m.Cost(), edges)
	}
	if m.NumSupernodes() >= n {
		t.Fatalf("no merging happened: %d supernodes", m.NumSupernodes())
	}
}

// A random sparse graph should not cost more than listing its edges: the
// sparse encoding is always available.
func TestMossoCostNeverExceedsEdgeList(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMosso(3)
	for i := 0; i < 300; i++ {
		m.AddEdge(graph.NodeID(rng.Intn(60)), graph.NodeID(rng.Intn(60)))
	}
	if m.Cost() > m.NumEdges() {
		t.Fatalf("cost %d exceeds plain edge list %d", m.Cost(), m.NumEdges())
	}
}

// The internal pair counts must stay consistent with the adjacency under
// heavy move churn: rebuild the counts from scratch and compare costs.
func TestMossoPairCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMosso(11)
	for i := 0; i < 500; i++ {
		m.AddEdge(graph.NodeID(rng.Intn(40)), graph.NodeID(rng.Intn(40)))
	}
	want := make(map[[2]int]int)
	for x, ns := range m.adj {
		for y := range ns {
			if x < y {
				want[pairKey(m.sn[x], m.sn[y])]++
			}
		}
	}
	if len(want) != len(m.cnt) {
		t.Fatalf("pair maps differ in size: %d vs %d", len(want), len(m.cnt))
	}
	for k, v := range want {
		if m.cnt[k] != v {
			t.Fatalf("pair %v count %d, want %d", k, m.cnt[k], v)
		}
	}
	// Membership is a partition.
	total := 0
	for id, mem := range m.members {
		for _, v := range mem {
			if m.sn[v] != id {
				t.Fatalf("node %d assigned to %d but listed in %d", v, m.sn[v], id)
			}
		}
		total += len(mem)
	}
	if total != len(m.sn) {
		t.Fatalf("membership lists cover %d nodes, want %d", total, len(m.sn))
	}
}

func TestMossoResultCoversLargestSupernodesFirst(t *testing.T) {
	g := graph.New()
	var members []graph.NodeID
	for i := 0; i < 10; i++ {
		members = append(members, g.AddNode("user", nil))
	}
	groups, err := submod.NewGroups(submod.Group{Name: "g", Members: members, Lower: 0, Upper: 10})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMosso(5)
	// Dense cluster over 0..5, single stray edge 6-7.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			m.AddEdge(members[i], members[j])
		}
	}
	m.AddEdge(members[6], members[7])
	res := m.Result(groups, 4, time.Millisecond)
	if len(res.Covered) != 4 {
		t.Fatalf("covered = %v", res.Covered)
	}
	// All four must come from the dense cluster (largest supernodes).
	for _, v := range res.Covered {
		if v > members[5] {
			t.Fatalf("covered node %d outside dense cluster", v)
		}
	}
	if res.StructureSize != m.Cost() {
		t.Fatal("structure size should equal encoding cost")
	}
}

func TestSummarizeStatic(t *testing.T) {
	g := graph.New()
	var members []graph.NodeID
	for i := 0; i < 8; i++ {
		members = append(members, g.AddNode("user", nil))
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (i+j)%2 == 0 {
				if err := g.AddEdge(members[i], members[j], "e"); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	groups, err := submod.NewGroups(submod.Group{Name: "g", Members: members, Lower: 0, Upper: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := SummarizeStatic(g, groups, 5, 42)
	if len(res.Covered) == 0 || len(res.Covered) > 5 {
		t.Fatalf("covered = %v", res.Covered)
	}
	if res.StructureSize <= 0 {
		t.Fatal("no structure recorded")
	}
}

// Determinism: the same seed and edge order give identical summaries.
func TestMossoDeterministic(t *testing.T) {
	build := func() *Mosso {
		rng := rand.New(rand.NewSource(9))
		m := NewMosso(9)
		for i := 0; i < 400; i++ {
			m.AddEdge(graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50)))
		}
		return m
	}
	a, b := build(), build()
	if a.Cost() != b.Cost() || a.NumSupernodes() != b.NumSupernodes() {
		t.Fatalf("nondeterministic: cost %d/%d supernodes %d/%d", a.Cost(), b.Cost(), a.NumSupernodes(), b.NumSupernodes())
	}
}

func TestMossoRemoveEdge(t *testing.T) {
	m := NewMosso(2)
	m.AddEdge(0, 1)
	m.AddEdge(1, 2)
	if m.NumEdges() != 2 {
		t.Fatal("setup failed")
	}
	m.RemoveEdge(0, 1)
	if m.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after removal", m.NumEdges())
	}
	if m.Cost() != 1 {
		t.Fatalf("Cost = %d, want 1 (single remaining edge)", m.Cost())
	}
	// Unknown edges and self loops are no-ops.
	m.RemoveEdge(0, 1)
	m.RemoveEdge(5, 6)
	m.RemoveEdge(2, 2)
	if m.NumEdges() != 1 {
		t.Fatal("no-op removal changed state")
	}
	// Removing in the reverse direction works (undirected).
	m.RemoveEdge(2, 1)
	if m.NumEdges() != 0 || m.Cost() != 0 {
		t.Fatalf("final state: edges=%d cost=%d", m.NumEdges(), m.Cost())
	}
}

// Pair-count invariant holds through interleaved insertions and deletions.
func TestMossoAddRemoveInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewMosso(23)
	type key struct{ a, b graph.NodeID }
	present := map[key]bool{}
	norm := func(a, b graph.NodeID) key {
		if a > b {
			a, b = b, a
		}
		return key{a, b}
	}
	for step := 0; step < 1500; step++ {
		a := graph.NodeID(rng.Intn(25))
		b := graph.NodeID(rng.Intn(25))
		if a == b {
			continue
		}
		k := norm(a, b)
		if present[k] && rng.Intn(2) == 0 {
			m.RemoveEdge(a, b)
			present[k] = false
		} else if !present[k] {
			m.AddEdge(a, b)
			present[k] = true
		}
	}
	want := make(map[[2]int]int)
	total := 0
	for x, ns := range m.adj {
		for y := range ns {
			if x < y {
				want[pairKey(m.sn[x], m.sn[y])]++
				total++
			}
		}
	}
	if m.NumEdges() != total {
		t.Fatalf("edge count %d, adjacency says %d", m.NumEdges(), total)
	}
	for k, v := range want {
		if m.cnt[k] != v {
			t.Fatalf("pair %v count %d, want %d", k, m.cnt[k], v)
		}
	}
	if len(m.cnt) != len(want) {
		t.Fatalf("stale pair entries: %d vs %d", len(m.cnt), len(want))
	}
}

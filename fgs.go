// Package fgs is a Go implementation of Fair Group Summarization with Graph
// Patterns (Ma, Guan, Wang, Song, Wu — ICDE 2023).
//
// Given an attributed directed graph and a set of disjoint node groups
// (e.g. gender, age, or topic groups), each with a coverage constraint
// [l_i, u_i], the library computes r-summaries: a set of focused graph
// patterns that selects high-utility representative nodes from every group
// within its constraint, plus an edge-correction set that makes the
// reconstruction of the selected nodes' r-hop neighborhoods lossless.
//
// Four algorithms are provided:
//
//   - Summarize (APXFGS): the (½, ln n)-approximation — greedy fair
//     selection followed by greedy pattern covering with minimal
//     accumulated correction loss.
//   - SummarizeK (k-APXFGS): at most k patterns, minimizing the correction
//     set size via maximum edge coverage — the (½, 1+1/(e·γ)) variant.
//   - NewOnline: streaming summarization — nodes arrive one at a time, the
//     selection uses a ¼-competitive swap rule, and patterns are maintained
//     with localized mining.
//   - NewMaintainer (Inc-FGS): incremental maintenance under batches of
//     edge insertions.
//
// Quickstart:
//
//	g := fgs.NewGraph()
//	alice := g.AddNode("user", map[string]string{"gender": "f"})
//	bob := g.AddNode("user", map[string]string{"gender": "m"})
//	// ... add more nodes and g.AddEdge calls ...
//	groups, _ := fgs.NewGroups(
//		fgs.Group{Name: "f", Members: []fgs.NodeID{alice}, Lower: 1, Upper: 1},
//		fgs.Group{Name: "m", Members: []fgs.NodeID{bob}, Lower: 1, Upper: 1},
//	)
//	util := fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "")
//	summary, err := fgs.Summarize(g, groups, util, fgs.Config{R: 2, N: 2})
//
// See the examples directory for complete applications and DESIGN.md for
// the system layout.
package fgs

import (
	"io"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/metrics"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// Graph model (Section II of the paper).
type (
	// Graph is an attributed, directed, labeled multigraph.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// EdgeRef identifies a directed labeled edge.
	EdgeRef = graph.EdgeRef
	// EdgeSet is a set of edges (correction sets are EdgeSets).
	EdgeSet = graph.EdgeSet
	// NodeSet is a set of nodes.
	NodeSet = graph.NodeSet
)

// Patterns and matching.
type (
	// Pattern is a connected graph pattern with a designated focus node.
	Pattern = pattern.Pattern
	// PatternNode is one pattern node: label plus equality literals.
	PatternNode = pattern.Node
	// PatternEdge is one directed labeled pattern edge.
	PatternEdge = pattern.Edge
	// Literal is an equality constraint u.Key = Val on a pattern node.
	Literal = pattern.Literal
	// Matcher evaluates patterns against one graph (anchored subgraph
	// isomorphism and dual simulation).
	Matcher = pattern.Matcher
)

// Groups, utilities, and selection.
type (
	// Group is one node group with its coverage constraint [Lower, Upper].
	Group = submod.Group
	// Groups is a validated group set.
	Groups = submod.Groups
	// Utility is a monotone submodular set function over nodes.
	Utility = submod.Utility
	// NeighborMode selects the direction NeighborCoverage counts.
	NeighborMode = submod.NeighborMode
)

// Neighbor directions for NewNeighborCoverage.
const (
	NeighborsIn   = submod.NeighborsIn
	NeighborsOut  = submod.NeighborsOut
	NeighborsBoth = submod.NeighborsBoth
)

// Summaries and algorithms.
type (
	// Config is the user configuration C = {r, k, n} plus mining bounds.
	Config = core.Config
	// MiningConfig bounds the SumGen pattern search.
	MiningConfig = mining.Config
	// Summary is an r-summary S = (P, C).
	Summary = core.Summary
	// PatternInfo is one selected pattern with its coverage artifacts.
	PatternInfo = core.PatternInfo
	// Report is the outcome of Verify (procedure rverify).
	Report = core.Report
	// Online is the streaming summarizer (Online-APXFGS).
	Online = core.Online
	// Maintainer is the incremental summarizer (Inc-FGS).
	Maintainer = core.Maintainer
	// EdgeUpdate is one edge insertion of a maintenance batch.
	EdgeUpdate = core.EdgeUpdate
	// Delta is a maintenance batch of insertions and deletions.
	Delta = core.Delta
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// ReadGraph parses a graph in the line-oriented text format (see WriteGraph).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes a graph in the text format:
//
//	n <id> <label> [key=val ...]
//	e <from> <to> <label>
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// ReadGraphAuto sniffs the input and parses either format: files starting
// with the binary magic load through the binary codec, everything else
// through the text reader.
func ReadGraphAuto(r io.Reader) (*Graph, error) { return graph.ReadAuto(r) }

// WriteGraphBinary serializes a graph in the compact binary format — the
// scale-tier interchange encoding, loading order-of-magnitude faster than
// the text format on multi-million-edge graphs (see internal/graph/iobin.go).
func WriteGraphBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// NewGroups validates and indexes a group set: bounds must satisfy
// 0 <= l <= u <= |members| and member sets must be disjoint.
func NewGroups(gs ...Group) (*Groups, error) { return submod.NewGroups(gs...) }

// NewRatingSum builds the modular utility F(S) = Σ rating(v), with ratings
// parsed from the given node attribute.
func NewRatingSum(g *Graph, attrKey string) Utility { return submod.NewRatingSum(g, attrKey) }

// NewNeighborCoverage builds the influence-style submodular utility
// F(S) = |∪_{v∈S} N(v)|, counting neighbors in the given direction over
// edges with the given label ("" = any label).
func NewNeighborCoverage(g *Graph, mode NeighborMode, edgeLabel string) Utility {
	return submod.NewNeighborCoverage(g, mode, edgeLabel)
}

// NewCardinality builds the trivial utility F(S) = |S|.
func NewCardinality() Utility { return submod.NewCardinality() }

// NewAttributeDiversity builds a monotone submodular utility counting the
// distinct values of an attribute among the selected nodes.
func NewAttributeDiversity(g *Graph, attrKey string) Utility {
	return submod.NewAttributeDiversity(g, attrKey)
}

// EqualOpportunity rewrites the groups' bounds to give every group a
// (near-)equal share of the budget n, within the given slack — the
// equal-opportunity fairness policy of the paper's experiments.
func EqualOpportunity(groups []Group, n, slack int) ([]Group, error) {
	return submod.EqualOpportunity(groups, n, slack)
}

// Proportional rewrites the groups' bounds proportionally to their
// population shares within tolerance alpha (alpha = 0.2 gives the classic
// 80%-rule / disparate-impact flavor).
func Proportional(groups []Group, n int, alpha float64) ([]Group, error) {
	return submod.Proportional(groups, n, alpha)
}

// NewMatcher returns a pattern matcher over g. embedCap bounds embedding
// enumeration per (pattern, anchor); 0 means unlimited.
func NewMatcher(g *Graph, embedCap int) *Matcher { return pattern.NewMatcher(g, embedCap) }

// ParsePattern reads a pattern in the text format:
//
//	n 0 user industry=Internet
//	n 1 user
//	e 1 0 corev
//	f 0
func ParsePattern(r io.Reader) (*Pattern, error) { return pattern.Parse(r) }

// ParsePatternString parses a pattern from a string.
func ParsePatternString(s string) (*Pattern, error) { return pattern.ParseString(s) }

// FormatPattern writes a pattern in the parseable text format.
func FormatPattern(w io.Writer, p *Pattern) error { return pattern.Format(w, p) }

// Summarize computes an r-summary with APXFGS — the select-and-summarize
// (½, ln n)-approximation of the paper's Theorem 3. The utility's state is
// consumed.
func Summarize(g *Graph, groups *Groups, util Utility, cfg Config) (*Summary, error) {
	return core.APXFGS(g, groups, util, cfg)
}

// SummarizeK computes an r-summary with at most cfg.K patterns, minimizing
// the correction size |C| — the Section V variant (Theorem 5).
func SummarizeK(g *Graph, groups *Groups, util Utility, cfg Config) (*Summary, error) {
	return core.KAPXFGS(g, groups, util, cfg)
}

// NewOnline prepares the streaming summarizer of Section VI. Feed nodes with
// Process/ProcessAll and call Finish for the final summary.
func NewOnline(g *Graph, groups *Groups, util Utility, cfg Config) *Online {
	return core.NewOnline(g, groups, util, cfg)
}

// NewMaintainer prepares the incremental summarizer of Section VII and
// returns the initial summary. Apply edge batches with ApplyBatch.
func NewMaintainer(g *Graph, groups *Groups, util Utility, cfg Config) (*Maintainer, *Summary) {
	return core.NewMaintainer(g, groups, util, cfg)
}

// Verify checks a summary against the graph, groups, and configuration
// (procedure rverify): feasibility, recorded-coverage consistency,
// losslessness, utility >= bf, and accumulated loss <= bc.
func Verify(g *Graph, groups *Groups, util Utility, cfg Config, s *Summary, bc int, bf float64) Report {
	return core.Verify(g, groups, util, cfg, s, bc, bf)
}

// WorkloadEntry is one summary pattern annotated as a benchmark query.
type WorkloadEntry = core.WorkloadEntry

// Workload evaluates every summary pattern as a standalone graph query with
// cardinality and selectivity annotations — the paper's "patterns as
// benchmark queries" application.
func Workload(g *Graph, s *Summary, embedCap int) []WorkloadEntry {
	return core.Workload(g, s, embedCap)
}

// WriteWorkload emits a workload as parseable annotated pattern blocks.
func WriteWorkload(w io.Writer, entries []WorkloadEntry) error {
	return core.WriteWorkload(w, entries)
}

// QueryView answers a pattern query over the summary treated as a
// materialized view: only covered nodes are tested as focus anchors. This
// is the fast-path querying of the paper's talent-search case study.
func QueryView(g *Graph, s *Summary, p *Pattern, embedCap int) []NodeID {
	return core.QueryView(g, s, p, embedCap)
}

// WriteSummaryJSON serializes a summary in a self-contained JSON form.
func WriteSummaryJSON(w io.Writer, s *Summary, g *Graph) error { return s.WriteJSON(w, g) }

// ReadSummaryJSON parses a summary written by WriteSummaryJSON, re-binding
// it against g.
func ReadSummaryJSON(r io.Reader, g *Graph, embedCap int) (*Summary, error) {
	return core.ReadSummaryJSON(r, g, embedCap)
}

// Observability (see DESIGN.md §8). An Observer collects phase spans and
// runtime counters from every algorithm it is attached to via Config.Obs;
// the exporters render what it gathered. Collection is off (and near-free)
// when Config.Obs is nil, and never affects summary content either way.
type (
	// Observer bundles a span trace, a metric registry, and a clock.
	Observer = obs.Observer
	// Trace is a hierarchical span collector (exportable as a Chrome trace).
	Trace = obs.Trace
	// MetricRegistry aggregates counters, gauges, and histograms.
	MetricRegistry = obs.Registry
	// Metric is one gathered metric sample.
	Metric = obs.Metric
	// Clock is the time source observers and algorithms read.
	Clock = obs.Clock
)

// NewObserver returns an observer with a fresh trace and registry on the
// given clock (nil = system clock). Attach it via Config.Obs.
func NewObserver(clock Clock) *Observer { return obs.NewObserver(clock) }

// WriteChromeTrace exports a trace in the Chrome tracing JSON format
// (load it at chrome://tracing or https://ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, t *Trace) error { return obs.WriteChromeTrace(w, t) }

// WritePrometheus renders metrics in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, ms []Metric) error { return obs.WritePrometheus(w, ms) }

// PhaseMetrics converts a trace's completed spans into per-phase duration
// and count metrics, for export alongside the component counters.
func PhaseMetrics(t *Trace) []Metric { return obs.PhaseMetrics(t) }

// FormatMetricTable renders metrics as a compact aligned text table — the
// CLIs' end-of-run summary.
func FormatMetricTable(ms []Metric) string { return obs.FormatTable(ms) }

// CoverageError is the normalized group-constraint violation C_eps of the
// paper's evaluation; 0 when every group's coverage lands in [l_i, u_i].
func CoverageError(groups *Groups, covered []NodeID) float64 {
	return metrics.CoverageError(groups, covered)
}

// CompressionRatio is the evaluation's C_r: summary description length over
// the size of the r-hop neighborhoods it describes.
func CompressionRatio(g *Graph, r int, covered []NodeID, structureSize, corrections int) float64 {
	return metrics.CompressionRatio(g, r, covered, structureSize, corrections)
}

package leakcheck

import (
	"testing"
	"time"
)

// recordingTB captures Errorf/Cleanup so a deliberately-leaky check can run
// without failing the real test.
type recordingTB struct {
	testing.TB
	failures int
	cleanups []func()
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Errorf(format string, args ...any) {
	r.failures++
}
func (r *recordingTB) Cleanup(f func()) {
	r.cleanups = append(r.cleanups, f)
}

func (r *recordingTB) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func withGrace(t *testing.T, d time.Duration) {
	old := grace
	grace = d
	t.Cleanup(func() { grace = old })
}

func TestDetectsLeak(t *testing.T) {
	withGrace(t, 200*time.Millisecond)
	rtb := &recordingTB{TB: t}
	Check(rtb)

	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-block
		close(done)
	}()

	rtb.runCleanups()
	if rtb.failures == 0 {
		t.Error("blocked goroutine not reported as a leak")
	}
	close(block)
	<-done
}

func TestCleanExitPasses(t *testing.T) {
	rtb := &recordingTB{TB: t}
	Check(rtb)

	done := make(chan struct{})
	go func() { close(done) }()
	<-done

	rtb.runCleanups()
	if rtb.failures != 0 {
		t.Errorf("clean test reported %d failure(s)", rtb.failures)
	}
}

// TestGraceAbsorbsStragglers: a goroutine still winding down when cleanup
// starts must be absorbed by the retry loop, not reported.
func TestGraceAbsorbsStragglers(t *testing.T) {
	rtb := &recordingTB{TB: t}
	Check(rtb)

	go func() {
		time.Sleep(50 * time.Millisecond)
	}()

	rtb.runCleanups()
	if rtb.failures != 0 {
		t.Errorf("straggler within grace reported %d failure(s)", rtb.failures)
	}
}

func TestBaselineIgnoresPreexisting(t *testing.T) {
	withGrace(t, 200*time.Millisecond)
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-block
		close(done)
	}()

	rtb := &recordingTB{TB: t}
	Check(rtb) // baseline taken with the goroutine already running
	rtb.runCleanups()
	if rtb.failures != 0 {
		t.Errorf("pre-existing goroutine reported as leak (%d failure(s))", rtb.failures)
	}
	close(block)
	<-done
}

package pattern

import (
	"sort"
	"sync"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// Matcher evaluates patterns against one graph using anchored subgraph
// isomorphism: a matching h is injective, preserves node labels and literals,
// and maps every pattern edge to a graph edge with the same label
// (Section II). "P covers v" means an embedding with h(u_o) = v exists.
//
// EmbedCap bounds how many embeddings per (pattern, anchor) are enumerated
// when collecting covered edges; 0 means unlimited. The cap trades exactness
// of P_E (and hence of correction sets) for time on pathological anchors.
type Matcher struct {
	g        *graph.Graph
	EmbedCap int
	workers  int // see SetWorkers

	// Compile cache, keyed by pattern identity. Patterns are immutable
	// (AddLeaf/AddLiteral/AddClosingEdge return copies), so the pointer is a
	// sound canonical key. Guarded by cacheMu because the mining fan-out and
	// coverAmongParallel call the matcher from worker goroutines. Entries
	// with ok=false are stamped with the graph's interner universe sizes and
	// recompiled once the universes grow (see compiledFor).
	cacheMu sync.RWMutex
	cache   map[*Pattern]*compiled

	// searchPool recycles per-search assignment/visited scratch across calls
	// (one scratch per concurrent search; see searchScratch).
	searchPool sync.Pool

	// Backtracking-search counters, accumulated in locals during each search
	// call and flushed with a handful of atomic adds at the end — safe under
	// the parallel CoverAmong fan-out, invisible in profiles.
	searches   obs.Counter
	embeddings obs.Counter
	expansions obs.Counter
	prunes     obs.Counter
}

// ObsMetrics snapshots the matcher's search counters, implementing
// obs.Source.
func (m *Matcher) ObsMetrics() []obs.Metric {
	return []obs.Metric{
		{Name: "fgs_match_searches_total", Help: "Anchored backtracking searches started.", Kind: obs.KindCounter, Value: float64(m.searches.Load())},
		{Name: "fgs_match_embeddings_total", Help: "Embeddings enumerated across all searches.", Kind: obs.KindCounter, Value: float64(m.embeddings.Load())},
		{Name: "fgs_match_expansions_total", Help: "Partial-assignment extensions (backtrack nodes visited).", Kind: obs.KindCounter, Value: float64(m.expansions.Load())},
		{Name: "fgs_match_prunes_total", Help: "Candidate nodes rejected during backtracking.", Kind: obs.KindCounter, Value: float64(m.prunes.Load())},
	}
}

// NewMatcher returns a matcher over g with the given embedding cap.
func NewMatcher(g *graph.Graph, embedCap int) *Matcher {
	return &Matcher{g: g, EmbedCap: embedCap}
}

// Graph returns the graph the matcher evaluates against.
func (m *Matcher) Graph() *graph.Graph { return m.g }

// compiled is a pattern with all strings resolved against one graph's
// interners plus a precomputed matching order.
type compiled struct {
	ok     bool // false when some label/key/value does not occur in the graph
	focus  int
	labels []graph.LabelID
	lits   [][]graph.Attr // per node, resolved literals
	// adj lists every edge from each node's perspective.
	adj [][]cEdge
	// order is a BFS matching order starting at the focus; anchorOf[i] gives,
	// for order[i] (i>0), the incident edge to an earlier-mapped node used to
	// generate candidates.
	order    []int
	anchorOf []cEdge // indexed by position in order; anchorOf[0] unused
	pos      []int   // node -> position in order
	// back[i] lists, for order[i], the pattern edges to earlier-mapped nodes
	// other than the anchor edge — the non-tree edges the search must verify
	// when placing position i. Precomputed here so the inner loop skips tree
	// positions (the common case) without scanning adj and re-filtering.
	// backOff[i] is the start of position i's entries in a flat array of
	// nback total back edges; the search scratch uses it to give each
	// (position, back edge) pair a stable slot across recursion levels.
	back    [][]cEdge
	backOff []int
	nback   int

	// nodeBits[u] is the graph's per-label node bitset for labels[u], taken
	// at compile time; nbound is the node count then. nodeOK consults the
	// bitset for nodes below nbound (one shared word per 64 nodes instead of
	// a labelOf load per candidate) and falls back to a direct label compare
	// for nodes interned after compilation.
	nodeBits []*graph.NodeBits
	nbound   int

	// universes stamps ok=false results with Graph.UniverseSizes() at compile
	// time: "unmatchable" only holds while no new label/key/value has been
	// interned, so compiledFor recompiles when the universes grow.
	universes [4]int32
}

// cEdge is one pattern edge viewed from a node: the other endpoint, the edge
// label, and whether the edge leaves this node.
type cEdge struct {
	other int
	label graph.LabelID
	out   bool
}

// Compile resolves a pattern against the matcher's graph. Returns a compiled
// form; c.ok is false when the pattern trivially has no matches because some
// label, key, or value never occurs in the graph.
func (m *Matcher) compile(p *Pattern) compiled {
	n := len(p.Nodes)
	c := compiled{focus: p.Focus, labels: make([]graph.LabelID, n), lits: make([][]graph.Attr, n), adj: make([][]cEdge, n), ok: true}
	for i, node := range p.Nodes {
		lid, ok := m.g.NodeLabelID(node.Label)
		if !ok {
			c.ok = false
			return c
		}
		c.labels[i] = lid
		for _, lit := range node.Literals {
			kid, ok := m.g.AttrKeyID(lit.Key)
			if !ok {
				c.ok = false
				return c
			}
			vid, ok := m.g.AttrValID(lit.Val)
			if !ok {
				c.ok = false
				return c
			}
			c.lits[i] = append(c.lits[i], graph.Attr{Key: kid, Val: vid})
		}
	}
	for _, e := range p.Edges {
		lid, ok := m.g.EdgeLabelID(e.Label)
		if !ok {
			c.ok = false
			return c
		}
		c.adj[e.From] = append(c.adj[e.From], cEdge{other: e.To, label: lid, out: true})
		c.adj[e.To] = append(c.adj[e.To], cEdge{other: e.From, label: lid, out: false})
	}

	// BFS order from the focus. Prefer expanding nodes with more literals and
	// higher pattern degree first: they prune candidates earlier.
	c.order = make([]int, 0, n)
	c.anchorOf = make([]cEdge, n)
	c.pos = make([]int, n)
	placed := make([]bool, n)
	c.order = append(c.order, p.Focus)
	placed[p.Focus] = true
	for len(c.order) < n {
		best := -1
		var bestEdge cEdge
		bestScore := -1
		for _, u := range c.order {
			for _, e := range c.adj[u] {
				if placed[e.other] {
					continue
				}
				score := len(c.lits[e.other])*10 + len(c.adj[e.other])
				if score > bestScore {
					bestScore = score
					best = e.other
					// The anchor edge is stored from the new node's
					// perspective so candidate generation starts at the
					// already-mapped endpoint.
					bestEdge = cEdge{other: u, label: e.label, out: !e.out}
				}
			}
		}
		if best < 0 {
			// Disconnected pattern: callers should have validated; treat as
			// unmatchable rather than panicking deep in a search.
			c.ok = false
			return c
		}
		c.anchorOf[len(c.order)] = bestEdge
		placed[best] = true
		c.order = append(c.order, best)
	}
	for i, u := range c.order {
		c.pos[u] = i
	}
	c.back = make([][]cEdge, n)
	c.backOff = make([]int, n)
	for i := 1; i < n; i++ {
		a := c.anchorOf[i]
		c.backOff[i] = c.nback
		for _, e := range c.adj[c.order[i]] {
			if c.pos[e.other] >= i || (e.other == a.other && e.label == a.label && e.out == a.out) {
				continue
			}
			c.back[i] = append(c.back[i], e)
			c.nback++
		}
	}

	c.nodeBits = make([]*graph.NodeBits, n)
	for u, lid := range c.labels {
		c.nodeBits[u] = m.g.LabelBits(lid)
	}
	c.nbound = m.g.NumNodes()
	return c
}

// compileCacheCap bounds the compile cache; mining sessions churn through
// thousands of transient candidate patterns, so on overflow the cache is
// simply reset (recompiling is cheap, unbounded growth is not).
const compileCacheCap = 4096

// compiledFor returns the cached compilation of p, compiling on first use.
// A cached ok=false entry is only trusted while the graph's interner
// universes match its stamp: a pattern deemed unmatchable because a label
// was unknown must be recompiled after AddNode/AddEdge interns it (the
// dynamic setting of Section VII). ok=true entries stay valid forever —
// interned IDs are stable — with nodeOK handling nodes added later via the
// nbound fallback.
func (m *Matcher) compiledFor(p *Pattern) *compiled {
	m.cacheMu.RLock()
	c, hit := m.cache[p]
	m.cacheMu.RUnlock()
	if hit && (c.ok || c.universes == m.g.UniverseSizes()) {
		return c
	}
	fresh := m.compile(p)
	if !fresh.ok {
		fresh.universes = m.g.UniverseSizes()
	}
	m.cacheMu.Lock()
	if m.cache == nil {
		m.cache = make(map[*Pattern]*compiled)
	} else if len(m.cache) >= compileCacheCap {
		clear(m.cache)
	}
	m.cache[p] = &fresh
	m.cacheMu.Unlock()
	return &fresh
}

// nodeOK reports whether graph node v can be the image of pattern node u.
func (c *compiled) nodeOK(g *graph.Graph, u int, v graph.NodeID) bool {
	if int(v) < c.nbound {
		if !c.nodeBits[u].Has(v) {
			return false
		}
	} else if g.LabelIDOf(v) != c.labels[u] {
		return false
	}
	for _, lit := range c.lits[u] {
		if !g.HasLiteral(v, lit.Key, lit.Val) {
			return false
		}
	}
	return true
}

// MatchAt reports whether p covers graph node v at the focus.
func (m *Matcher) MatchAt(p *Pattern, v graph.NodeID) bool {
	c := m.compiledFor(p)
	if !c.ok || !c.nodeOK(m.g, c.focus, v) {
		return false
	}
	found := false
	m.search(c, v, func(*searchScratch) bool {
		found = true
		return false // stop at first embedding
	})
	return found
}

// CoveredEdgeBitsAt returns the set of graph edges matched by any pattern
// edge in any embedding of p anchored at v (up to EmbedCap embeddings),
// together with whether at least one embedding exists. This is the hot-path
// form; CoveredEdgesAt adapts it to the map representation.
func (m *Matcher) CoveredEdgeBitsAt(p *Pattern, v graph.NodeID) (*graph.EdgeBits, bool) {
	c := m.compiledFor(p)
	if !c.ok || !c.nodeOK(m.g, c.focus, v) {
		return nil, false
	}
	edges := graph.NewEdgeBits(0)
	count := 0
	m.search(c, v, func(s *searchScratch) bool {
		// Every pattern edge is either some position's anchor (tree) edge or
		// was verified when its later endpoint was placed; search recorded
		// the matched graph edge for both, so the union needs no edge-index
		// probes.
		for pos := 1; pos < len(s.treeID); pos++ {
			edges.Add(s.treeID[pos])
			for _, id := range s.extraID[pos] {
				edges.Add(id)
			}
		}
		count++
		return m.EmbedCap == 0 || count < m.EmbedCap
	})
	if count == 0 {
		return nil, false
	}
	return edges, true
}

// CoveredEdgesAt is CoveredEdgeBitsAt in the map representation, kept for
// the cold paths (verification, baselines, public API).
func (m *Matcher) CoveredEdgesAt(p *Pattern, v graph.NodeID) (graph.EdgeSet, bool) {
	bits, ok := m.CoveredEdgeBitsAt(p, v)
	if !ok {
		return nil, false
	}
	return m.g.EdgeSetOf(bits), true
}

// CoverAmong returns the subset of candidates covered by p at the focus, in
// input order. With SetWorkers(>1), large candidate lists are evaluated in
// parallel; the result is identical either way.
func (m *Matcher) CoverAmong(p *Pattern, candidates []graph.NodeID) []graph.NodeID {
	c := m.compiledFor(p)
	if !c.ok {
		return nil
	}
	if m.workers > 1 && len(candidates) >= parallelThreshold {
		return m.coverAmongParallel(c, candidates)
	}
	var covered []graph.NodeID
	for _, v := range candidates {
		if !c.nodeOK(m.g, c.focus, v) {
			continue
		}
		found := false
		m.search(c, v, func(*searchScratch) bool { found = true; return false })
		if found {
			covered = append(covered, v)
		}
	}
	return covered
}

// FocusCandidates returns all graph nodes that satisfy the focus node's label
// and literals — the superset of nodes p can cover.
func (m *Matcher) FocusCandidates(p *Pattern) []graph.NodeID {
	c := m.compiledFor(p)
	if !c.ok {
		return nil
	}
	var out []graph.NodeID
	for _, v := range m.g.NodesWithLabelID(c.labels[c.focus]) {
		if c.nodeOK(m.g, c.focus, v) {
			out = append(out, v)
		}
	}
	return out
}

// Matches returns every node p covers in the whole graph, sorted. This is the
// P(u_o, G) evaluation used by the case studies (pattern queries); the FGS
// algorithms themselves only ever evaluate coverage over group nodes.
func (m *Matcher) Matches(p *Pattern) []graph.NodeID {
	covered := m.CoverAmong(p, m.FocusCandidates(p))
	sort.Slice(covered, func(i, j int) bool { return covered[i] < covered[j] })
	return covered
}

// searchScratch is the per-search working state: the partial assignment plus
// epoch-stamped used-marks over the graph's node space (stamp[v] == epoch
// means v is an image of an already-placed pattern node). Unmarking during
// backtracking writes stamp[v] = 0, which can never equal the epoch (epoch
// >= 1), so a search leaves no state the next epoch could misread. Pooled
// per matcher: each concurrent search (coverAmongParallel, the mining score
// workers) acquires its own scratch.
type searchScratch struct {
	assign []graph.NodeID
	stamp  []uint32
	epoch  uint32
	// Matched graph-edge IDs, maintained by search so emit callbacks can
	// union covered edges without re-resolving (pattern edge -> graph edge)
	// through the edge index per embedding. treeID[i] is the edge matched by
	// order[i]'s anchor edge (treeID[0] unused); extraID[i] holds the edges
	// matched by the non-tree pattern edges verified when placing order[i].
	treeID  []graph.EdgeID
	extraID [][]graph.EdgeID
	// backSrc[c.backOff[pos]+i] caches, per recursion level, the fixed-side
	// adjacency list for back edge i of position pos: that endpoint is
	// already mapped and stays put for the whole candidate loop, so its
	// (usually short) list is loaded once and scanned in-cache per candidate.
	backSrc [][]graph.Edge
}

// acquireSearch returns a scratch with assign sized for n pattern nodes,
// backSrc sized for the pattern's nback back edges, and stamps covering the
// graph's node space, at a fresh epoch.
func (m *Matcher) acquireSearch(n, nback int) *searchScratch {
	s, _ := m.searchPool.Get().(*searchScratch)
	if s == nil {
		s = &searchScratch{}
	}
	if cap(s.assign) < n {
		s.assign = make([]graph.NodeID, n)
	} else {
		s.assign = s.assign[:n]
	}
	if cap(s.treeID) < n {
		s.treeID = make([]graph.EdgeID, n)
	} else {
		s.treeID = s.treeID[:n]
	}
	if cap(s.extraID) < n {
		grown := make([][]graph.EdgeID, n)
		copy(grown, s.extraID[:cap(s.extraID)])
		s.extraID = grown
	} else {
		s.extraID = s.extraID[:n]
	}
	if cap(s.backSrc) < nback {
		s.backSrc = make([][]graph.Edge, nback)
	} else {
		s.backSrc = s.backSrc[:nback]
	}
	if nn := m.g.NumNodes(); len(s.stamp) < nn {
		grown := make([]uint32, nn)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	return s
}

// search runs anchored backtracking. emit is called for each embedding found
// with the live scratch (s.assign maps pattern node -> graph node, s.treeID
// and s.extraID carry the matched graph-edge IDs); returning false stops the
// search.
func (m *Matcher) search(c *compiled, anchor graph.NodeID, emit func(*searchScratch) bool) {
	n := len(c.labels)
	s := m.acquireSearch(n, c.nback)
	defer m.searchPool.Put(s)
	assign, stamp, epoch := s.assign, s.stamp, s.epoch
	assign[c.order[0]] = anchor
	stamp[anchor] = epoch
	var embeddings, expansions, prunes int64
	defer func() {
		m.searches.Inc()
		m.embeddings.Add(embeddings)
		m.expansions.Add(expansions)
		m.prunes.Add(prunes)
	}()
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == n {
			embeddings++
			return emit(s)
		}
		u := c.order[pos]
		a := c.anchorOf[pos]
		backEdges := c.back[pos]
		// nodeOK's checks, hoisted and unrolled: this loop runs once per
		// adjacency entry of every expanded node, and the call overhead is
		// measurable at the million-node tier.
		uBits := c.nodeBits[u]
		uLits := c.lits[u]
		uLabel := c.labels[u]
		nbound := c.nbound
		from := assign[a.other]
		// Hoist each back edge's fixed-side adjacency: the earlier-mapped
		// endpoint w doesn't move during the candidate loop, and in both
		// orientations the list entry's To field carries the candidate
		// endpoint, so verification below is one in-cache scan per candidate
		// instead of an edge-index probe.
		boff := c.backOff[pos]
		for i, e := range backEdges {
			w := assign[e.other]
			if e.out {
				s.backSrc[boff+i] = m.g.In(w)
			} else {
				s.backSrc[boff+i] = m.g.Out(w)
			}
		}
		// Candidates come from the anchor edge: if the edge leaves u, u's
		// image must have an edge to from's image, i.e. scan In(from);
		// otherwise scan Out(from).
		var cands []graph.Edge
		if a.out {
			cands = m.g.In(from)
		} else {
			cands = m.g.Out(from)
		}
		for _, ge := range cands {
			if ge.Label != a.label {
				continue
			}
			v := ge.To
			if stamp[v] == epoch {
				prunes++
				continue
			}
			if int(v) < nbound {
				if !uBits.Has(v) {
					prunes++
					continue
				}
			} else if m.g.LabelIDOf(v) != uLabel {
				prunes++
				continue
			}
			litOK := true
			for _, lit := range uLits {
				if !m.g.HasLiteral(v, lit.Key, lit.Val) {
					litOK = false
					break
				}
			}
			if !litOK {
				prunes++
				continue
			}
			// Verify every other pattern edge between u and mapped nodes,
			// recording the matched graph edges so emit needs no lookups.
			ok := true
			extra := s.extraID[pos][:0]
			for i, e := range backEdges {
				var id graph.EdgeID
				found := false
				if l := s.backSrc[boff+i]; len(l) <= 32 {
					for _, e2 := range l {
						if e2.To == v && e2.Label == e.label {
							id, found = e2.ID, true
							break
						}
					}
				} else if e.out {
					id, found = m.g.EdgeIDBetween(v, assign[e.other], e.label)
				} else {
					id, found = m.g.EdgeIDBetween(assign[e.other], v, e.label)
				}
				if !found {
					ok = false
					break
				}
				extra = append(extra, id)
			}
			s.extraID[pos] = extra
			if !ok {
				prunes++
				continue
			}
			expansions++
			assign[u] = v
			s.treeID[pos] = ge.ID
			stamp[v] = epoch
			cont := rec(pos + 1)
			stamp[v] = 0
			if !cont {
				return false
			}
		}
		return true
	}
	rec(1)
}

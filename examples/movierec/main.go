// Fair movie recommendation over the DBP knowledge graph.
//
// Genre groups are covered within configurable bounds while maximizing the
// total rating of the recommended movies (the paper's DBP setting). The
// k-bounded variant keeps the summary to a fixed number of patterns, and
// the incremental maintainer absorbs newly released movies without
// recomputing from scratch.
package main

import (
	"fmt"
	"log"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	g := datasets.DBP(3, 1)
	fmt.Printf("DBP: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	groups, err := datasets.GroupsByAttr(g, "movie", "genre", []string{"Action", "Romance"}, 10, 20)
	if err != nil {
		log.Fatal(err)
	}

	// k-bounded summary: at most 8 patterns, minimizing corrections.
	cfg := fgs.Config{R: 2, K: 8, N: 30}
	summary, err := fgs.SummarizeK(g, groups, fgs.NewRatingSum(g, "rating"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended %d movies (total rating %.1f) with %d patterns, |C|=%d\n",
		len(summary.Covered), summary.Utility, summary.NumPatterns(), summary.Corrections.Len())
	counts := map[string]int{}
	for _, v := range summary.Covered {
		genre, _ := g.AttrString(v, "genre")
		counts[genre]++
	}
	fmt.Printf("genre balance: %v\n", counts)
	for i, pi := range summary.Patterns {
		if i == 3 {
			fmt.Printf("  ... and %d more patterns\n", len(summary.Patterns)-3)
			break
		}
		fmt.Printf("  %s\n", pi.P)
	}

	// Incremental maintenance: new releases connect into the graph.
	maintainer, _ := fgs.NewMaintainer(g, groups, fgs.NewRatingSum(g, "rating"), fgs.Config{R: 2, N: 30})
	director := g.NodesWithLabel("director")[0]
	var batch []fgs.EdgeUpdate
	for i := 0; i < 3; i++ {
		movie := g.AddNode("movie", map[string]string{
			"genre": "Action", "year": "2026", "country": "US", "rating": "9.8",
		})
		batch = append(batch, fgs.EdgeUpdate{From: director, To: movie, Label: "directed"})
	}
	updated, err := maintainer.ApplyBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 3 new releases: %d covered movies, utility %.1f, still lossless: %v\n",
		len(updated.Covered), updated.Utility, lossless(updated, g))
}

func lossless(s *fgs.Summary, g *fgs.Graph) bool {
	missing, spurious := s.Reconstruct(g)
	return missing.Len() == 0 && spurious.Len() == 0
}

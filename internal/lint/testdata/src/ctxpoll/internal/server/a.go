// Fixture for ctxpoll: unbounded loops in server request paths must check
// the request context.
package server

import "context"

func unpolledLoop(ctx context.Context, ch chan int) int {
	total := 0
	for { // want `unbounded for-loop in request path never checks ctx\.Done`
		v, ok := <-ch
		if !ok {
			break
		}
		total += v
	}
	return total
}

func okSelectPolled(ctx context.Context, ch chan int) int {
	total := 0
	for { // ok: selects on ctx.Done()
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

func unpolledRangeChan(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch { // want `range over channel in request path never checks ctx\.Done`
		total += v
	}
	return total
}

func okErrPolledRange(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch { // ok: polls ctx.Err each element
		if ctx.Err() != nil {
			return total
		}
		total += v
	}
	return total
}

func okBoundedLoops(ctx context.Context, xs []int, m map[int]int) int {
	total := 0
	for _, v := range xs { // ok: bounded by the slice
		total += v
	}
	for k := range m { // ok: bounded by the map
		total += k
	}
	for i := 0; i < 10; i++ { // ok: has a terminating condition
		total += i
	}
	return total
}

func okNoContext(ch chan int) { // ok: background machinery, no ctx to poll
	for range ch {
	}
}

func closureInheritsCtx(ctx context.Context, ch chan int) func() {
	return func() {
		for { // want `unbounded for-loop in request path never checks ctx\.Done`
			select {
			case <-ch:
			}
		}
	}
}

func allowedPump(ctx context.Context, ch chan int) {
	//lint:allow ctxpoll pump drains a closed channel; bounded by sender shutdown
	for range ch {
	}
}

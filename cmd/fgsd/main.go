// Command fgsd is the fair-group-summarization daemon: it loads a graph and
// serves summarization traffic over HTTP/JSON (DESIGN.md §10).
//
// Usage:
//
//	fgsd -addr :8471 -graph lki.graph -groups user:gender:male,female:40:60
//	fgsd                                  # no -graph: serve the demo LKI graph
//
// Endpoints:
//
//	POST /v1/summarize    {"r":2,"n":20,"utility":"coverage"}   fresh APXFGS summary
//	POST /v1/summarize-k  {"k":5,"n":20}                        k-APXFGS summary
//	POST /v1/view         {"pattern":"n 0 user\nf 0"}           query the maintained summary as a view
//	POST /v1/workload     {}                                    summary patterns as benchmark queries
//	POST /v1/update       {"insert":[{"from":1,"to":2,"label":"corev"}]}
//	GET  /v1/stats        engine snapshot (epoch, sizes, cache/admission counters)
//	GET  /healthz         liveness; 503 while draining
//	GET  /metrics         Prometheus text exposition
//
// Writes are serialized through the Inc-FGS maintainer and bump the graph
// epoch; reads run concurrently and are served from the epoch-keyed result
// cache when possible. SIGINT/SIGTERM triggers a graceful drain: stop
// accepting, finish in-flight requests, then flush the final Chrome trace /
// Prometheus dump if -fgs.trace / -fgs.metrics-out are set.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	var (
		addr      = flag.String("addr", ":8471", "listen address")
		graphPath = flag.String("graph", "", "input graph, text or binary format — sniffed (empty = demo LKI graph)")
		groupSpec = flag.String("groups", "user:gender:male,female:1:10", "group spec: label:attr:val1,val2:lower:upper")
		r         = flag.Int("r", 2, "default reconstruction hops")
		n         = flag.Int("n", 20, "default max covered nodes")
		k         = flag.Int("k", 0, "default max patterns for /v1/summarize-k (0 = require per-request k)")
		utility   = flag.String("utility", "coverage", "maintained summary's utility: coverage[:edgelabel], rating[:attr], diversity:attr, cardinality")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent compute requests (admission slots); also the mining worker count")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 4x workers, negative = no queue)")
		cacheEnt  = flag.Int("cache-entries", 256, "epoch-keyed result cache capacity (negative = disabled)")
		deadline  = flag.Duration("deadline", 30*time.Second, "per-request deadline (queue wait included)")
		embedCap  = flag.Int("embed-cap", 0, "embedding enumeration cap for view/workload queries (0 = default)")
		readMode  = flag.String("read-mode", "mvcc", "read path: mvcc (epoch-snapshot views) or locked (RWMutex baseline)")
		maxViews  = flag.Int("max-views", 0, "MVCC replica pool cap; bounds graph memory to max-views copies (0 = default 3, min 2)")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")

		demoSeed  = flag.Int64("demo-seed", 42, "demo graph generator seed")
		demoScale = flag.Int("demo-scale", 1, "demo graph scale")

		traceOut   = flag.String("fgs.trace", "", "write a Chrome trace of request and maintainer spans to this file on shutdown")
		metricsOut = flag.String("fgs.metrics-out", "", "write final runtime counters in Prometheus text format to this file on shutdown")
		obsSummary = flag.Bool("fgs.obs-summary", false, "print the runtime-counter summary table to stderr on shutdown")
	)
	flag.Parse()

	var observer *fgs.Observer
	if *traceOut != "" || *metricsOut != "" || *obsSummary {
		observer = fgs.NewObserver(nil)
	}

	var g *fgs.Graph
	loadStart := time.Now()
	if *graphPath == "" {
		fmt.Fprintf(os.Stderr, "fgsd: no -graph given; serving the demo LKI graph (seed %d, scale %d)\n", *demoSeed, *demoScale)
		g = datasets.LKI(*demoSeed, *demoScale)
	} else {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		var rerr error
		g, rerr = fgs.ReadGraphAuto(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
	}
	loadTime := time.Since(loadStart)
	sizes := g.UniverseSizes()
	fmt.Fprintf(os.Stderr, "fgsd: graph loaded in %v: %d nodes, %d edges, %d node labels, %d edge labels, %d attr keys\n",
		loadTime, g.NumNodes(), g.NumEdges(), sizes[0], sizes[1], sizes[2])
	if observer != nil {
		reg := observer.Reg
		reg.Add("fgsd_boot_graph_load_ms", "Graph load wall time at boot (ms)", nil, loadTime.Milliseconds())
		reg.Add("fgsd_boot_graph_nodes", "Nodes in the boot graph", nil, int64(g.NumNodes()))
		reg.Add("fgsd_boot_graph_edges", "Edges in the boot graph", nil, int64(g.NumEdges()))
	}

	label, attr, values, lower, upper, err := parseGroupSpec(*groupSpec)
	if err != nil {
		fatal(err)
	}
	groups, err := datasets.GroupsByAttr(g, label, attr, values, lower, upper)
	if err != nil {
		fatal(err)
	}

	srv, err := fgs.NewServer(g, groups, fgs.ServerConfig{
		R:            *r,
		K:            *k,
		N:            *n,
		Utility:      *utility,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEnt,
		Deadline:     *deadline,
		EmbedCap:     *embedCap,
		ReadMode:     *readMode,
		MaxViews:     *maxViews,
		Obs:          observer,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fgsd: engine ready: %d nodes, %d edges, %d groups, initial summary built\n",
		g.NumNodes(), g.NumEdges(), groups.Len())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fgsd: serving on %s (workers %d, cache %d, deadline %v, read-mode %s)\n", *addr, *workers, *cacheEnt, *deadline, *readMode)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	// Drain sequence (DESIGN.md §10): flip health to 503 so load balancers
	// stop routing, refuse new compute, wait for in-flight requests, then
	// flush the final observability exports.
	fmt.Fprintln(os.Stderr, "fgsd: drain: refusing new work, finishing in-flight requests")
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "fgsd: shutdown: %v\n", err)
	}
	if observer != nil {
		if err := exportObs(observer, *traceOut, *metricsOut, *obsSummary); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "fgsd: drained")
}

// parseGroupSpec splits "label:attr:val1,val2:lower:upper".
func parseGroupSpec(spec string) (label, attr string, values []string, lower, upper int, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 5 {
		return "", "", nil, 0, 0, fmt.Errorf("bad -groups %q: want label:attr:val1,val2:lower:upper", spec)
	}
	lower, err1 := strconv.Atoi(parts[3])
	upper, err2 := strconv.Atoi(parts[4])
	if err1 != nil || err2 != nil {
		return "", "", nil, 0, 0, fmt.Errorf("bad -groups bounds in %q", spec)
	}
	return parts[0], parts[1], strings.Split(parts[2], ","), lower, upper, nil
}

// exportObs writes whatever the observer collected: the Chrome trace, the
// Prometheus text file, and/or a summary table on stderr.
func exportObs(o *fgs.Observer, tracePath, metricsPath string, table bool) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := fgs.WriteChromeTrace(f, o.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fgsd: trace written to %s\n", tracePath)
	}
	ms := append(o.Reg.Gather(), fgs.PhaseMetrics(o.Trace)...)
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := fgs.WritePrometheus(f, ms); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fgsd: metrics written to %s\n", metricsPath)
	}
	if table {
		fmt.Fprint(os.Stderr, fgs.FormatMetricTable(ms))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgsd:", err)
	os.Exit(1)
}

// Stub of internal/store for the pairdiscipline fixtures: the tree loader
// resolves the real module import path to this directory, so the fixture
// package can exercise the acquirePkg-matched store Open/Close and
// Store.BeginSnapshot/Commit|Abort rows against the genuine import path.
package store

import "errors"

type Options struct {
	Dir   string
	Fsync string
}

type Recovered struct {
	Fresh bool
	Epoch uint64
}

type Store struct{ dir string }

func Open(opts Options) (*Store, *Recovered, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("store: no data directory")
	}
	return &Store{dir: opts.Dir}, &Recovered{Fresh: true}, nil
}

func (s *Store) Close() error { return nil }

func (s *Store) BeginSnapshot(epoch uint64) (*Snapshot, error) {
	return &Snapshot{}, nil
}

type Snapshot struct{ done bool }

func (sn *Snapshot) WriteGraph(g any)  {}
func (sn *Snapshot) WriteState(ms any) {}
func (sn *Snapshot) Commit() error     { sn.done = true; return nil }
func (sn *Snapshot) Abort()            { sn.done = true }

package submod

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func memberRange(lo, hi int) []graph.NodeID {
	out := make([]graph.NodeID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, graph.NodeID(i))
	}
	return out
}

func TestEqualOpportunity(t *testing.T) {
	gs := []Group{
		{Name: "a", Members: memberRange(0, 100)},
		{Name: "b", Members: memberRange(100, 200)},
	}
	out, err := EqualOpportunity(gs, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range out {
		if g.Lower != 40 || g.Upper != 60 {
			t.Fatalf("group %s bounds [%d,%d], want [40,60]", g.Name, g.Lower, g.Upper)
		}
	}
	// The result must be accepted by NewGroups and sum of lowers <= n.
	groups, err := NewGroups(out...)
	if err != nil {
		t.Fatal(err)
	}
	if groups.SumLower() > 100 {
		t.Fatal("equal-opportunity bounds infeasible")
	}
}

func TestEqualOpportunityClampsToGroupSize(t *testing.T) {
	gs := []Group{
		{Name: "big", Members: memberRange(0, 100)},
		{Name: "tiny", Members: memberRange(100, 130)},
	}
	out, err := EqualOpportunity(gs, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Upper > 30 {
		t.Fatalf("tiny group upper %d exceeds its size", out[1].Upper)
	}
	// A group smaller than the required lower share is an error.
	gs[1].Members = memberRange(100, 105)
	if _, err := EqualOpportunity(gs, 60, 0); err == nil {
		t.Fatal("impossible equal share accepted")
	}
}

func TestEqualOpportunityEmpty(t *testing.T) {
	if _, err := EqualOpportunity(nil, 10, 0); err == nil {
		t.Fatal("empty groups accepted")
	}
}

func TestProportional(t *testing.T) {
	gs := []Group{
		{Name: "majority", Members: memberRange(0, 300)},   // 75%
		{Name: "minority", Members: memberRange(300, 400)}, // 25%
	}
	out, err := Proportional(gs, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Majority: [floor(0.8*75), ceil(1.2*75)] = [60, 90].
	if out[0].Lower != 60 || out[0].Upper != 90 {
		t.Fatalf("majority bounds [%d,%d], want [60,90]", out[0].Lower, out[0].Upper)
	}
	// Minority: [floor(0.8*25), ceil(1.2*25)] = [20, 30].
	if out[1].Lower != 20 || out[1].Upper != 30 {
		t.Fatalf("minority bounds [%d,%d], want [20,30]", out[1].Lower, out[1].Upper)
	}
	if _, err := NewGroups(out...); err != nil {
		t.Fatalf("proportional bounds rejected by NewGroups: %v", err)
	}
}

func TestProportionalValidation(t *testing.T) {
	gs := []Group{{Name: "a", Members: memberRange(0, 10)}}
	if _, err := Proportional(gs, 10, -0.1); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := Proportional(gs, 10, 1.0); err == nil {
		t.Fatal("alpha = 1 accepted")
	}
	if _, err := Proportional([]Group{{Name: "e"}}, 10, 0.1); err == nil {
		t.Fatal("empty membership accepted")
	}
}

func TestProportionalZeroAlphaFeasible(t *testing.T) {
	gs := []Group{
		{Name: "a", Members: memberRange(0, 70)},
		{Name: "b", Members: memberRange(70, 100)},
	}
	out, err := Proportional(gs, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, g := range out {
		sum += g.Lower
	}
	if sum > 50 {
		t.Fatalf("lower bounds sum %d exceeds n", sum)
	}
}

func TestAttributeDiversity(t *testing.T) {
	g := graph.New()
	a := g.AddNode("user", map[string]string{"city": "NY"})
	b := g.AddNode("user", map[string]string{"city": "NY"})
	c := g.AddNode("user", map[string]string{"city": "SF"})
	d := g.AddNode("user", nil) // no city

	u := NewAttributeDiversity(g, "city")
	if u.Marginal(a) != 1 {
		t.Fatal("first NY should gain 1")
	}
	u.Add(a)
	if u.Marginal(b) != 0 {
		t.Fatal("second NY should gain 0")
	}
	if u.Marginal(c) != 1 {
		t.Fatal("SF should gain 1")
	}
	if u.Marginal(d) != 0 {
		t.Fatal("attribute-less node should gain 0")
	}
	u.Add(b)
	u.Add(c)
	if u.Value() != 2 {
		t.Fatalf("Value = %v, want 2", u.Value())
	}
	u.Remove(a)
	if u.Value() != 2 { // b still holds NY
		t.Fatalf("Value after removing one NY = %v, want 2", u.Value())
	}
	u.Remove(b)
	if u.Value() != 1 {
		t.Fatalf("Value after removing both NY = %v, want 1", u.Value())
	}
	cl := u.Clone()
	if cl.Value() != 0 {
		t.Fatal("Clone should start empty")
	}
}

func TestAttributeDiversityUnknownKey(t *testing.T) {
	g := graph.New()
	v := g.AddNode("user", map[string]string{"city": "NY"})
	u := NewAttributeDiversity(g, "nokey")
	if u.Marginal(v) != 0 {
		t.Fatal("unknown key should yield zero gains")
	}
	u.Add(v)
	if u.Value() != 0 {
		t.Fatal("unknown key should keep value 0")
	}
}

// AttributeDiversity must satisfy the submodularity axioms like the other
// utilities; reuse the axiom harness.
func TestAttributeDiversityAxioms(t *testing.T) {
	g := graph.New()
	cities := []string{"NY", "SF", "LA", "CHI"}
	for i := 0; i < 30; i++ {
		var attrs map[string]string
		if i%3 != 0 {
			attrs = map[string]string{"city": cities[i%len(cities)]}
		}
		g.AddNode("user", attrs)
	}
	u := NewAttributeDiversity(g, "city")
	for trial := 0; trial < 20; trial++ {
		u.Reset()
		// A = {0..trial%5}, B = A ∪ {10..12}, v = 20 + trial%5.
		for i := 0; i <= trial%5; i++ {
			u.Add(graph.NodeID(i))
		}
		v := graph.NodeID(20 + trial%5)
		gainA := u.Marginal(v)
		for i := 10; i <= 12; i++ {
			u.Add(graph.NodeID(i))
		}
		gainB := u.Marginal(v)
		if gainB > gainA {
			t.Fatalf("trial %d: submodularity violated: %v > %v", trial, gainB, gainA)
		}
	}
}

// Package lint is fgslint's analysis framework: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface that the
// repository's determinism & safety analyzers run on. The toolchain ships
// everything needed (go/ast, go/types, go/importer), so the linter builds
// and runs offline with no module downloads.
//
// The contract it enforces is documented in DESIGN.md §7 ("Determinism
// contract & lint") and §12 ("Control-flow lint architecture"). The
// syntactic analyzers: summary content must be byte-identical across runs
// and worker counts, so map-iteration order must never reach an ordered
// sink (maporder), the deterministic packages must not consult global
// randomness or the wall clock (detrand), library code must return errors
// instead of panicking (nopanic), and lock-bearing structs are never copied
// (lockdiscipline). The control-flow analyzers run on the in-package
// CFG/dataflow core (cfg.go, dataflow.go, taint.go): every acquire pairs
// with a release on every path (pairdiscipline), published MVCC read views
// are never mutated (frozenview), library packages never discard errors
// (errdrop), and unbounded server loops poll their context (ctxpoll).
//
// A finding can be suppressed with an escape-hatch comment on the flagged
// line or the line directly above it:
//
//	//lint:allow <analyzer> <why this is safe>
//
// The why-comment is mandatory by convention (and checked in code review,
// not by the tool): an allow without a reason is a future bug report.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// via its Pass and reports findings through Pass.Report.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:allow
	Doc  string // one-paragraph description of what it flags and why
	Run  func(*Pass) error
}

// Pass carries one package's worth of type-checked syntax to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string // import path as the loader resolved it
	TypesInfo *types.Info

	diags  *[]Diagnostic
	allows map[string]map[int][]string // filename -> line -> allowed analyzer names
}

// Diagnostic is one finding, positioned for editor navigation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Report records a finding unless an escape-hatch comment suppresses it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// allowedAt reports whether a //lint:allow comment for this pass's analyzer
// sits on the finding's line or the line immediately above it.
func (p *Pass) allowedAt(pos token.Position) bool {
	lines := p.allows[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == p.Analyzer.Name || name == "all" {
				return true
			}
		}
	}
	return false
}

// allowDirective parses a comment's text as an escape hatch, returning the
// analyzer names it allows (nil if the comment is not a directive). Accepted
// forms: "//lint:allow name why..." and "// lint:allow name,other why...".
func allowDirective(text string) []string {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "lint:allow") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, "lint:allow"))
	if rest == "" {
		return nil
	}
	// First whitespace-delimited field is the name list; everything after is
	// the why-comment.
	fields := strings.Fields(rest)
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// buildAllows indexes every escape-hatch comment in the files by line.
func buildAllows(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	allows := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := allowDirective(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if allows[pos.Filename] == nil {
					allows[pos.Filename] = make(map[int][]string)
				}
				allows[pos.Filename][pos.Line] = append(allows[pos.Filename][pos.Line], names...)
			}
		}
	}
	return allows
}

// RunAnalyzers runs every analyzer over every package and returns the
// combined findings sorted by position. Analyzer errors (not findings) abort.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := buildAllows(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
				allows:    allows,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full fgslint analyzer suite in stable order. The first
// four are the original syntactic checks; the last four are the
// control-flow-aware suite built on the CFG/dataflow core (DESIGN.md §12).
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder, DetRand, NoPanic, LockDiscipline,
		PairDiscipline, FrozenView, ErrDrop, CtxPoll,
	}
}

// ByName resolves a comma-separated -checks list against All.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" || list == "all" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have maporder, detrand, nopanic, lockdiscipline, pairdiscipline, frozenview, errdrop, ctxpoll)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

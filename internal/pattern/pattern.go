// Package pattern implements the graph patterns P(u_o) of Section II and the
// matching machinery the FGS algorithms are built on:
//
//   - focused, connected patterns whose nodes carry labels and equality
//     literals (u.A = a) and whose edges carry labels;
//   - an anchored subgraph-isomorphism matcher ("P covers node v at the
//     focus"), including embedding enumeration to collect the covered edge
//     sets P_E that determine correction costs;
//   - a dual-simulation matcher, the lossy matching semantics used by the
//     d-sum baseline [42];
//   - canonical codes, used by the miner to deduplicate grown patterns.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is an equality constraint u.Key = Val on a pattern node.
type Literal struct {
	Key string
	Val string
}

// Node is one pattern node: a required label plus zero or more literals.
type Node struct {
	Label    string
	Literals []Literal
}

// Edge is one directed pattern edge between node indices.
type Edge struct {
	From  int
	To    int
	Label string
}

// Pattern is a connected graph pattern with a designated focus node
// (Section II). Nodes are referenced by index.
type Pattern struct {
	Focus int
	Nodes []Node
	Edges []Edge
}

// NewNodePattern returns a single-node pattern: a focus with the given label
// and literals and no edges.
func NewNodePattern(label string, lits ...Literal) *Pattern {
	return &Pattern{Nodes: []Node{{Label: label, Literals: lits}}}
}

// Validate reports whether the pattern is well formed: at least one node, a
// valid focus index, edge endpoints in range, no self loops, and connected.
func (p *Pattern) Validate() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("pattern: no nodes")
	}
	if p.Focus < 0 || p.Focus >= len(p.Nodes) {
		return fmt.Errorf("pattern: focus %d out of range [0,%d)", p.Focus, len(p.Nodes))
	}
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= len(p.Nodes) || e.To < 0 || e.To >= len(p.Nodes) {
			return fmt.Errorf("pattern: edge (%d,%d) out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("pattern: self loop on node %d", e.From)
		}
	}
	if !p.connected() {
		return fmt.Errorf("pattern: not connected")
	}
	return nil
}

func (p *Pattern) connected() bool {
	if len(p.Nodes) <= 1 {
		return true
	}
	adj := p.undirectedAdj()
	seen := make([]bool, len(p.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(p.Nodes)
}

func (p *Pattern) undirectedAdj() [][]int {
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	return adj
}

// Radius returns the maximum undirected hop distance from the focus to any
// pattern node, i.e. the r-bound SumGen enforces during mining.
func (p *Pattern) Radius() int {
	dist := make([]int, len(p.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	adj := p.undirectedAdj()
	dist[p.Focus] = 0
	queue := []int{p.Focus}
	max := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > max {
					max = dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return max
}

// Size returns |V_P| + |E_P|, the pattern's contribution to summary size.
func (p *Pattern) Size() int { return len(p.Nodes) + len(p.Edges) }

// Clone returns a deep copy.
func (p *Pattern) Clone() *Pattern {
	c := &Pattern{Focus: p.Focus}
	c.Nodes = make([]Node, len(p.Nodes))
	for i, n := range p.Nodes {
		c.Nodes[i] = Node{Label: n.Label, Literals: append([]Literal(nil), n.Literals...)}
	}
	c.Edges = append([]Edge(nil), p.Edges...)
	return c
}

// AddLiteral returns a copy of p with an extra literal on node idx.
func (p *Pattern) AddLiteral(idx int, lit Literal) *Pattern {
	c := p.Clone()
	c.Nodes[idx].Literals = append(c.Nodes[idx].Literals, lit)
	sortLiterals(c.Nodes[idx].Literals)
	return c
}

// AddLeaf returns a copy of p with a new node attached to node at by a
// directed edge. If out is true the edge runs at -> new, else new -> at.
// The new node's index is len(p.Nodes) in the copy.
func (p *Pattern) AddLeaf(at int, n Node, edgeLabel string, out bool) *Pattern {
	c := p.Clone()
	idx := len(c.Nodes)
	c.Nodes = append(c.Nodes, n)
	if out {
		c.Edges = append(c.Edges, Edge{From: at, To: idx, Label: edgeLabel})
	} else {
		c.Edges = append(c.Edges, Edge{From: idx, To: at, Label: edgeLabel})
	}
	return c
}

// AddClosingEdge returns a copy of p with an edge between two existing nodes,
// or nil if that edge already exists.
func (p *Pattern) AddClosingEdge(from, to int, label string) *Pattern {
	for _, e := range p.Edges {
		if e.From == from && e.To == to && e.Label == label {
			return nil
		}
	}
	c := p.Clone()
	c.Edges = append(c.Edges, Edge{From: from, To: to, Label: label})
	return c
}

// HasLiteral reports whether node idx already carries the literal.
func (p *Pattern) HasLiteral(idx int, lit Literal) bool {
	for _, l := range p.Nodes[idx].Literals {
		if l == lit {
			return true
		}
	}
	return false
}

func sortLiterals(lits []Literal) {
	sort.Slice(lits, func(i, j int) bool {
		if lits[i].Key != lits[j].Key {
			return lits[i].Key < lits[j].Key
		}
		return lits[i].Val < lits[j].Val
	})
}

// String renders the pattern in a compact human-readable form, e.g.
//
//	[0*user{exp=5} 1 user] 0-recommend->1
//
// where * marks the focus.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(" ")
		}
		if i == p.Focus {
			fmt.Fprintf(&b, "%d*%s", i, n.Label)
		} else {
			fmt.Fprintf(&b, "%d %s", i, n.Label)
		}
		if len(n.Literals) > 0 {
			b.WriteString("{")
			for j, l := range n.Literals {
				if j > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%s=%s", l.Key, l.Val)
			}
			b.WriteString("}")
		}
	}
	b.WriteString("]")
	for _, e := range p.Edges {
		fmt.Fprintf(&b, " %d-%s->%d", e.From, e.Label, e.To)
	}
	return b.String()
}

// Package baseline reimplements the four summarization baselines the paper
// compares against (Section VIII, "Algorithms"), each adapted to the FGS
// setting exactly as the paper describes its adaptation:
//
//   - Grami [11]: mines the top-k most frequent subgraph patterns over the
//     group nodes and uses them as summary patterns. Frequency-driven, so it
//     skews toward majority groups.
//   - DSum [42]: lossy d-summaries — k patterns matched by dual simulation
//     instead of subgraph isomorphism, scored to favor larger (more
//     informative) patterns. Fast, no corrections, no losslessness.
//   - MMPG [34]: diversified pattern reformulation — starting from a seed
//     pattern, generates reformulations (added edges/literals) and greedily
//     picks k that maximize coverage plus pairwise diversity of the covered
//     nodes. Favors larger patterns.
//   - Mosso [21]: incremental lossless graph summarization with supernodes,
//     superedges and edge corrections; compares against Inc-FGS on streams.
//
// Every baseline reports its output in the common Result form so the
// experiment harness can score coverage error and compression ratio
// uniformly.
package baseline

import (
	"time"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
)

// Result is the common evaluation view of a baseline summary.
type Result struct {
	// Patterns are the summary patterns (nil for Mosso, which summarizes
	// with supernodes instead).
	Patterns []*pattern.Pattern
	// Covered is the set of group nodes the summary selects/represents,
	// truncated to the experiment's budget n for comparability.
	Covered []graph.NodeID
	// StructureSize is the description length of the summary structures
	// (pattern sizes, or supernode/superedge encoding for Mosso).
	StructureSize int
	// Corrections is the number of correction edges a lossless method pays
	// for; 0 for lossy methods.
	Corrections int
	// GlobalRatio, when positive, is the method's native compression ratio
	// over everything it consumed (Mosso summarizes the whole input graph,
	// so scoring its encoding against one region's neighborhoods would be
	// meaningless). 0 for pattern-based methods, which are scored against
	// the covered nodes' r-hop neighborhoods.
	GlobalRatio float64
	// Elapsed is the end-to-end summarization time.
	Elapsed time.Duration
}

// truncate keeps at most n nodes, preserving order.
func truncate(nodes []graph.NodeID, n int) []graph.NodeID {
	if len(nodes) <= n {
		return nodes
	}
	return nodes[:n]
}

// dedupAppend appends the nodes of src not yet in seen, updating seen.
func dedupAppend(dst []graph.NodeID, src []graph.NodeID, seen graph.NodeSet) []graph.NodeID {
	for _, v := range src {
		if !seen.Has(v) {
			seen.Add(v)
			dst = append(dst, v)
		}
	}
	return dst
}

package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestScratchPoolConcurrent hammers the shared epoch-stamped BFS scratch pool
// from many goroutines at once. Run under -race (make race) this is the
// regression test for the pool's safety claim: each r-hop call must hold a
// private scratch, and results must be independent of interleaving. Every
// goroutine compares its answers against a sequentially precomputed truth.
func TestScratchPoolConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New()
	const n = 400
	for i := 0; i < n; i++ {
		g.AddNode("user", nil)
	}
	for i := 0; i < 1600; i++ {
		_ = g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), "e")
	}

	// Sequential ground truth for a sample of (start, radius) queries.
	type query struct {
		v NodeID
		r int
	}
	queries := make([]query, 64)
	wantNodes := make([][]NodeID, len(queries))
	wantEdges := make([]int, len(queries))
	for i := range queries {
		queries[i] = query{v: NodeID(rng.Intn(n)), r: 1 + rng.Intn(3)}
		wantNodes[i] = g.RHopNodes(queries[i].v, queries[i].r)
		wantEdges[i] = g.RHopEdgeBits(queries[i].v, queries[i].r).Count()
	}

	const workers = 16
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(seed))
			for round := 0; round < rounds; round++ {
				qi := lrng.Intn(len(queries))
				q := queries[qi]
				nodes := g.RHopNodes(q.v, q.r)
				if len(nodes) != len(wantNodes[qi]) {
					errs <- "RHopNodes length diverged under concurrency"
					return
				}
				for k := range nodes {
					if nodes[k] != wantNodes[qi][k] {
						errs <- "RHopNodes order diverged under concurrency"
						return
					}
				}
				if got := g.RHopEdgeBits(q.v, q.r).Count(); got != wantEdges[qi] {
					errs <- "RHopEdgeBits count diverged under concurrency"
					return
				}
				// Interleave Dist calls so scratches of different shapes churn
				// through the pool together.
				g.Dist(q.v, NodeID(lrng.Intn(n)), q.r)
			}
		}(int64(w) + 100)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

package graph

// The r-hop neighborhood operators of Section II. Per the paper, "the r-hop
// neighbors (resp. edges) of v refer to the nodes (resp. edges) that can be
// reached from or reach v in r hops", i.e. traversal ignores edge direction
// while the collected edges keep theirs.

// RHopNodes returns N_v^r: every node within undirected distance r of v,
// including v itself.
func (g *Graph) RHopNodes(v NodeID, r int) []NodeID {
	return g.RHopNodesOf([]NodeID{v}, r)
}

// RHopNodesOf returns N_X^r for a node set X: the union of r-hop
// neighborhoods, including the members of X themselves.
func (g *Graph) RHopNodesOf(roots []NodeID, r int) []NodeID {
	seen := make(NodeSet, len(roots)*4)
	frontier := make([]NodeID, 0, len(roots))
	for _, v := range roots {
		if g.HasNode(v) && !seen.Has(v) {
			seen.Add(v)
			frontier = append(frontier, v)
		}
	}
	result := append([]NodeID(nil), frontier...)
	for hop := 0; hop < r && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, v := range frontier {
			for _, e := range g.out[v] {
				if !seen.Has(e.To) {
					seen.Add(e.To)
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[v] {
				if !seen.Has(e.To) {
					seen.Add(e.To)
					next = append(next, e.To)
				}
			}
		}
		result = append(result, next...)
		frontier = next
	}
	return result
}

// RHopEdges returns E_v^r: every directed edge on a path of at most r
// undirected hops from v. Concretely, it is the set of edges induced between
// consecutive BFS layers: an edge (a,b) is included when it is traversed
// while expanding up to depth r, i.e. min(depth(a), depth(b)) < r.
func (g *Graph) RHopEdges(v NodeID, r int) EdgeSet {
	return g.RHopEdgesOf([]NodeID{v}, r)
}

// RHopEdgesOf returns E_X^r: the union of r-hop edge sets of the roots.
func (g *Graph) RHopEdgesOf(roots []NodeID, r int) EdgeSet {
	edges := NewEdgeSet(0)
	depth := make(map[NodeID]int, len(roots)*4)
	var frontier []NodeID
	for _, v := range roots {
		if !g.HasNode(v) {
			continue
		}
		if _, ok := depth[v]; !ok {
			depth[v] = 0
			frontier = append(frontier, v)
		}
	}
	for hop := 0; hop < r && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, v := range frontier {
			for _, e := range g.out[v] {
				edges.Add(EdgeRef{From: v, To: e.To, Label: e.Label})
				if _, ok := depth[e.To]; !ok {
					depth[e.To] = hop + 1
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[v] {
				edges.Add(EdgeRef{From: e.To, To: v, Label: e.Label})
				if _, ok := depth[e.To]; !ok {
					depth[e.To] = hop + 1
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return edges
}

// Dist returns the undirected hop distance from src to dst, or -1 if dst is
// unreachable within limit hops. A limit < 0 means unbounded.
func (g *Graph) Dist(src, dst NodeID, limit int) int {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return -1
	}
	if src == dst {
		return 0
	}
	seen := NodeSet{src: {}}
	frontier := []NodeID{src}
	for d := 1; limit < 0 || d <= limit; d++ {
		var next []NodeID
		for _, v := range frontier {
			for _, e := range g.out[v] {
				if e.To == dst {
					return d
				}
				if !seen.Has(e.To) {
					seen.Add(e.To)
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[v] {
				if e.To == dst {
					return d
				}
				if !seen.Has(e.To) {
					seen.Add(e.To)
					next = append(next, e.To)
				}
			}
		}
		if len(next) == 0 {
			return -1
		}
		frontier = next
	}
	return -1
}

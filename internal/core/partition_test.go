package core

import (
	"bytes"
	"testing"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/submod"
)

// TestAPXFGSPartitionedDeterminism crosses shard counts {1, 2, 8} with
// worker counts {0, 8} and requires the full pipeline's output — down to
// the canonical JSON encoding served to clients — to be byte-identical to
// the unpartitioned sequential run.
func TestAPXFGSPartitionedDeterminism(t *testing.T) {
	g := gen.LKI(11, 1)
	groups, err := gen.GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		R: 2, N: 40,
		Mining: mining.Config{MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 80},
	}
	seq, err := APXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), base)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON bytes.Buffer
	if err := seq.WriteJSON(&wantJSON, g); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8} {
		regions := mining.BuildRegions(g, groups.All(), mining.RegionConfig{Shards: shards, R: 2, Seed: 42})
		for _, w := range []int{0, 8} {
			cfg := base
			cfg.Workers = w
			cfg.Mining.Regions = regions
			got, err := APXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSummary(t, seq, got)
			var gotJSON bytes.Buffer
			if err := got.WriteJSON(&gotJSON, g); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
				t.Fatalf("shards=%d workers=%d: JSON encoding differs from unpartitioned run", shards, w)
			}
		}
	}
}

// TestKAPXFGSPartitionedDeterminism covers the k-bounded variant, whose
// max-coverage loop consumes lazily materialized global P_E bitsets from
// partition-scored candidates.
func TestKAPXFGSPartitionedDeterminism(t *testing.T) {
	g := gen.LKI(11, 1)
	groups, err := gen.GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		R: 2, K: 6, N: 40,
		Mining: mining.Config{MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 80},
	}
	seq, err := KAPXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8} {
		regions := mining.BuildRegions(g, groups.All(), mining.RegionConfig{Shards: shards, R: 2, Seed: 42})
		for _, w := range []int{0, 8} {
			cfg := base
			cfg.Workers = w
			cfg.Mining.Regions = regions
			got, err := KAPXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSummary(t, seq, got)
		}
	}
}

// TestPartitionedRadiusMismatchFallsBack: regions built at a different
// radius must never serve the run — the fallback produces the identical
// summary through the flat cache.
func TestPartitionedRadiusMismatchFallsBack(t *testing.T) {
	g := gen.LKI(19, 1)
	groups, err := gen.GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{R: 2, N: 30, Mining: mining.Config{MaxNodes: 3, MaxPatterns: 50}}
	seq, err := APXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Mining.Regions = mining.BuildRegions(g, groups.All(), mining.RegionConfig{Shards: 4, R: 1, Seed: 3})
	got, err := APXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSummary(t, seq, got)
}

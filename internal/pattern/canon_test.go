package pattern

import (
	"math/rand"
	"testing"
)

// permute relabels the non-focus nodes of a pattern under a random
// permutation, yielding an isomorphic pattern with the focus role preserved.
func permute(p *Pattern, rng *rand.Rand) *Pattern {
	n := len(p.Nodes)
	perm := rng.Perm(n)
	// Build mapping old->new.
	mapping := make([]int, n)
	copy(mapping, perm)
	c := &Pattern{Focus: mapping[p.Focus], Nodes: make([]Node, n), Edges: make([]Edge, len(p.Edges))}
	for old, nw := range mapping {
		c.Nodes[nw] = Node{Label: p.Nodes[old].Label, Literals: append([]Literal(nil), p.Nodes[old].Literals...)}
	}
	for i, e := range p.Edges {
		c.Edges[i] = Edge{From: mapping[e.From], To: mapping[e.To], Label: e.Label}
	}
	// Shuffle edge order too.
	rng.Shuffle(len(c.Edges), func(i, j int) { c.Edges[i], c.Edges[j] = c.Edges[j], c.Edges[i] })
	return c
}

func TestCanonicalCodeInvariantUnderIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	patterns := []*Pattern{
		star(),
		star(Literal{Key: "exp", Val: "5"}),
		{
			Focus: 0,
			Nodes: []Node{{Label: "a"}, {Label: "b"}, {Label: "c"}, {Label: "b"}},
			Edges: []Edge{{0, 1, "e"}, {1, 2, "e"}, {0, 3, "f"}, {3, 2, "e"}},
		},
		{
			Focus: 1,
			Nodes: []Node{{Label: "x"}, {Label: "y"}, {Label: "x"}},
			Edges: []Edge{{0, 1, "e"}, {2, 1, "e"}, {0, 2, "g"}},
		},
	}
	for pi, p := range patterns {
		want := CanonicalCode(p)
		for trial := 0; trial < 20; trial++ {
			q := permute(p, rng)
			if got := CanonicalCode(q); got != want {
				t.Fatalf("pattern %d trial %d: canonical code changed under relabeling\n p=%s -> %q\n q=%s -> %q", pi, trial, p, want, q, got)
			}
		}
	}
}

func TestCanonicalCodeDistinguishes(t *testing.T) {
	base := star()
	cases := []struct {
		name string
		q    *Pattern
	}{
		{"different focus role", &Pattern{
			Focus: 1,
			Nodes: []Node{{Label: "user"}, {Label: "user"}, {Label: "user"}},
			Edges: []Edge{{1, 0, "recommend"}, {2, 0, "recommend"}},
		}},
		{"different direction", &Pattern{
			Focus: 0,
			Nodes: []Node{{Label: "user"}, {Label: "user"}, {Label: "user"}},
			Edges: []Edge{{0, 1, "recommend"}, {0, 2, "recommend"}},
		}},
		{"different edge label", &Pattern{
			Focus: 0,
			Nodes: []Node{{Label: "user"}, {Label: "user"}, {Label: "user"}},
			Edges: []Edge{{1, 0, "recommend"}, {2, 0, "endorse"}},
		}},
		{"extra literal", base.AddLiteral(0, Literal{Key: "exp", Val: "5"})},
		{"extra node", base.AddLeaf(1, Node{Label: "user"}, "recommend", false)},
	}
	baseCode := CanonicalCode(base)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if CanonicalCode(c.q) == baseCode {
				t.Fatalf("non-isomorphic pattern has same code: %s vs %s", base, c.q)
			}
		})
	}
}

func TestCanonicalCodeLargePatternFallback(t *testing.T) {
	// Build a 12-node chain (beyond the exact limit) and check that the loose
	// signature is still invariant under node relabeling.
	p := &Pattern{Focus: 0, Nodes: []Node{{Label: "n0"}}}
	for i := 1; i < 12; i++ {
		p.Nodes = append(p.Nodes, Node{Label: "n"})
		p.Edges = append(p.Edges, Edge{From: i - 1, To: i, Label: "e"})
	}
	rng := rand.New(rand.NewSource(9))
	want := CanonicalCode(p)
	for trial := 0; trial < 10; trial++ {
		if got := CanonicalCode(permute(p, rng)); got != want {
			t.Fatalf("loose signature changed under relabeling (trial %d)", trial)
		}
	}
}

func TestCanonicalCodeDedupsGrowthOrders(t *testing.T) {
	// Growing leaf A then leaf B must equal growing B then A.
	base := NewNodePattern("user")
	ab := base.AddLeaf(0, Node{Label: "a"}, "e", true).AddLeaf(0, Node{Label: "b"}, "e", true)
	ba := base.AddLeaf(0, Node{Label: "b"}, "e", true).AddLeaf(0, Node{Label: "a"}, "e", true)
	if CanonicalCode(ab) != CanonicalCode(ba) {
		t.Fatal("growth order changed canonical code")
	}
}

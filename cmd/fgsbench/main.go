// Command fgsbench regenerates the figures of the paper's evaluation
// section on the synthetic datasets and prints them as tables.
//
// Usage:
//
//	fgsbench -exp fig8a,fig8b          # specific figures
//	fgsbench -exp all -scale 1         # the full evaluation
//
// Experiments: fig8a fig8b fig8c fig8d fig8e fig8f fig9a fig9b fig9c fig9d
// fig10a fig10b case-talent case-pandemic. See DESIGN.md for the mapping
// to the paper's figures and EXPERIMENTS.md for expected shapes.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/cwru-db/fgs/internal/experiments"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Int("scale", 1, "dataset scale (1 = test-sized)")
		seed    = flag.Int64("seed", 42, "generator seed")
		format  = flag.String("format", "table", "output format: table or csv")
		workers = flag.Int("workers", 0, "mining/scoring worker goroutines (0 = sequential, the paper-comparable default; metric values are identical at any setting)")
	)
	flag.Parse()

	suite := experiments.New(*scale, *seed)
	suite.Workers = *workers
	runners := map[string]func() ([]experiments.Row, error){
		"fig8a":         suite.Fig8a,
		"fig8b":         suite.Fig8b,
		"fig8c":         suite.Fig8c,
		"fig8d":         suite.Fig8d,
		"fig8e":         suite.Fig8e,
		"fig8f":         suite.Fig8f,
		"fig9a":         suite.Fig9a,
		"fig9b":         suite.Fig9b,
		"fig9c":         suite.Fig9c,
		"fig9d":         suite.Fig9d,
		"fig10a":        suite.Fig10a,
		"fig10b":        suite.Fig10b,
		"case-talent":   suite.CaseTalent,
		"case-pandemic": suite.CasePandemic,
	}
	order := []string{
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig10a", "fig10b",
		"case-talent", "case-pandemic",
	}

	var selected []string
	if *exps == "all" {
		selected = order
	} else {
		for _, e := range strings.Split(*exps, ",") {
			e = strings.TrimSpace(e)
			if _, ok := runners[e]; !ok {
				fmt.Fprintf(os.Stderr, "fgsbench: unknown experiment %q\n", e)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var all []experiments.Row
	for _, e := range selected {
		start := time.Now()
		rows, err := runners[e]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fgsbench: %s: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fgsbench: %s done in %v (%d rows)\n", e, time.Since(start).Round(time.Millisecond), len(rows))
		all = append(all, rows...)
	}
	switch *format {
	case "table":
		fmt.Print(experiments.FormatRows(all))
	case "csv":
		if err := writeCSV(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "fgsbench:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "fgsbench: unknown format %q\n", *format)
		os.Exit(2)
	}
}

// writeCSV emits one row per data point for plotting tools.
func writeCSV(w *os.File, rows []experiments.Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exp", "dataset", "algo", "x_label", "x", "metric", "value"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Exp, r.Dataset, r.Algo, r.XLabel,
			strconv.FormatFloat(r.X, 'g', -1, 64),
			r.Metric,
			strconv.FormatFloat(r.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

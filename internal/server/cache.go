package server

import (
	"container/list"
	"sync"

	"github.com/cwru-db/fgs/internal/obs"
)

// resultCache is the epoch-keyed LRU over encoded response bodies. Keys are
// epochKey(canonicalKey(...), epoch), so entries from before a write can
// never be returned: the epoch in the probe key no longer matches. Stale
// entries are not swept eagerly — they simply stop being touched and fall
// off the LRU tail as fresh results push in.
//
// A nil *resultCache is the disabled cache: get misses (uncounted) and put
// is a no-op, so call sites never branch on configuration.
type resultCache struct {
	mu        sync.Mutex
	capacity  int
	lru       *list.List // front = most recently used; values are *cacheEntry
	byKey     map[string]*list.Element
	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache holding up to capacity entries, or nil
// (disabled) when capacity <= 0.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached body for key and marks it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting from the LRU tail beyond capacity.
// The body must not be mutated after put (handlers hand over freshly
// marshaled buffers).
func (c *resultCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Same request raced to compute twice; results are deterministic, so
		// either body is fine — keep the entry fresh.
		el.Value.(*cacheEntry).body = body
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// stats snapshots the cache for /v1/stats. Nil-safe: the disabled cache
// reports zero capacity.
func (c *resultCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.lru.Len(),
		Capacity:  c.capacity,
	}
}

// debug lists up to max entries in LRU order (most recently used first) for
// /debug/fgs/cache. Keys are "epoch|sha256", so the listing shows at a glance
// which epochs still occupy the cache and how many bytes each entry pins.
// Nil-safe: the disabled cache reports zero capacity and no entries.
func (c *resultCache) debug(max int) CacheDebug {
	if c == nil {
		return CacheDebug{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d := CacheDebug{
		Stats: CacheStats{
			Hits:      c.hits.Load(),
			Misses:    c.misses.Load(),
			Evictions: c.evictions.Load(),
			Entries:   c.lru.Len(),
			Capacity:  c.capacity,
		},
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if len(d.Entries) >= max {
			d.Truncated = true
			break
		}
		e := el.Value.(*cacheEntry)
		d.Entries = append(d.Entries, CacheEntryDebug{Key: e.key, Bytes: len(e.body)})
	}
	return d
}

// ObsMetrics exports the cache counters (obs.Source).
func (c *resultCache) ObsMetrics() []obs.Metric {
	st := c.stats()
	return []obs.Metric{
		{Name: "fgs_server_cache_hits_total", Help: "Result cache hits", Kind: obs.KindCounter, Value: float64(st.Hits)},
		{Name: "fgs_server_cache_misses_total", Help: "Result cache misses", Kind: obs.KindCounter, Value: float64(st.Misses)},
		{Name: "fgs_server_cache_evictions_total", Help: "Result cache LRU evictions", Kind: obs.KindCounter, Value: float64(st.Evictions)},
		{Name: "fgs_server_cache_entries", Help: "Result cache current entries", Kind: obs.KindGauge, Value: float64(st.Entries)},
	}
}

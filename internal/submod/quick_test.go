package submod

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/cwru-db/fgs/internal/graph"
)

// testing/quick property tests on the group-constraint machinery.

// groupInstance is a random two-group instance with valid bounds, plus a
// random partial selection (counts) within group sizes.
type groupInstance struct {
	groups *Groups
	counts []int
	n      int
}

// Generate implements quick.Generator.
func (groupInstance) Generate(r *rand.Rand, _ int) reflect.Value {
	sizeA := 1 + r.Intn(8)
	sizeB := 1 + r.Intn(8)
	mk := func(base, size int) []graph.NodeID {
		out := make([]graph.NodeID, size)
		for i := range out {
			out[i] = graph.NodeID(base + i)
		}
		return out
	}
	upA := 1 + r.Intn(sizeA)
	upB := 1 + r.Intn(sizeB)
	gs, err := NewGroups(
		Group{Name: "a", Members: mk(0, sizeA), Lower: r.Intn(upA + 1), Upper: upA},
		Group{Name: "b", Members: mk(100, sizeB), Lower: r.Intn(upB + 1), Upper: upB},
	)
	if err != nil {
		panic(err)
	}
	counts := []int{r.Intn(upA + 1), r.Intn(upB + 1)}
	n := counts[0] + counts[1] + r.Intn(6)
	return reflect.ValueOf(groupInstance{groups: gs, counts: counts, n: n})
}

// ExtendableM soundness: whenever it accepts a group, actually adding a node
// of that group keeps a feasible completion possible — i.e. the reserve
// Σ max(counts, l) still fits in n and no upper bound is broken.
func TestQuickExtendableMSound(t *testing.T) {
	f := func(gi groupInstance) bool {
		for g := 0; g < gi.groups.Len(); g++ {
			if !gi.groups.ExtendableM(gi.counts, g, gi.n) {
				continue
			}
			after := append([]int(nil), gi.counts...)
			after[g]++
			if after[g] > gi.groups.At(g).Upper {
				return false
			}
			reserve := 0
			for j := 0; j < gi.groups.Len(); j++ {
				c := after[j]
				if l := gi.groups.At(j).Lower; c < l {
					c = l
				}
				reserve += c
			}
			if reserve > gi.n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ExtendableM monotonicity: once a group is inextendable it stays so as
// counts grow — the property the lazy greedy's candidate discarding relies
// on.
func TestQuickExtendableMMonotone(t *testing.T) {
	f := func(gi groupInstance, grow uint8) bool {
		for g := 0; g < gi.groups.Len(); g++ {
			if gi.groups.ExtendableM(gi.counts, g, gi.n) {
				continue // only inextendable states matter
			}
			bigger := append([]int(nil), gi.counts...)
			bigger[int(grow)%len(bigger)]++
			if gi.groups.ExtendableM(bigger, g, gi.n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// SwapFeasible consistency: a feasible swap keeps every upper bound and the
// reserve, checked directly on the adjusted counts.
func TestQuickSwapFeasibleSound(t *testing.T) {
	f := func(gi groupInstance) bool {
		for out := 0; out < gi.groups.Len(); out++ {
			for in := 0; in < gi.groups.Len(); in++ {
				if !gi.groups.SwapFeasible(gi.counts, out, in, gi.n) {
					continue
				}
				if gi.counts[out] == 0 {
					return false // cannot swap out of an empty group
				}
				adj := append([]int(nil), gi.counts...)
				adj[out]--
				adj[in]++
				if adj[in] > gi.groups.At(in).Upper {
					return false
				}
				reserve := 0
				for j := range adj {
					c := adj[j]
					if l := gi.groups.At(j).Lower; c < l {
						c = l
					}
					reserve += c
				}
				if reserve > gi.n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// CoverageError of any count vector inside the bounds is exactly 0, and any
// vector outside is strictly positive — cross-checked against
// SatisfiesBounds. (Uses the metrics-level definition indirectly through
// Counts/SatisfiesBounds to keep the package dependency direction.)
func TestQuickSatisfiesBoundsMatchesRanges(t *testing.T) {
	f := func(gi groupInstance) bool {
		ok := gi.groups.SatisfiesBounds(gi.counts)
		manual := true
		for j, c := range gi.counts {
			if c < gi.groups.At(j).Lower || c > gi.groups.At(j).Upper {
				manual = false
			}
		}
		return ok == manual
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic flags panic, log.Fatal*, and os.Exit in library packages: library
// code must return errors and let the CLIs decide exit codes, so that a
// malformed dataset or a failed figure run surfaces as a message and a
// nonzero fgsbench exit instead of a stack trace mid-experiment.
//
// main packages (cmd/*, examples/*) are exempt — exiting is their job.
// Vetted invariant checks that guard data-structure corruption (not user
// error), like the adjacency-sync assertion in internal/graph/delete.go,
// take //lint:allow nopanic with a why-comment and a regression test that
// exercises the panic branch.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "flag panic/log.Fatal/os.Exit in library packages",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						pass.Report(call.Pos(), "panic in library package %s: return an error instead (//lint:allow nopanic only for vetted invariant checks)", pass.PkgPath)
					}
				}
			case *ast.SelectorExpr:
				pkgID, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
				if !ok {
					return true
				}
				name := fun.Sel.Name
				switch pkgName.Imported().Path() {
				case "log":
					if name == "Fatal" || name == "Fatalf" || name == "Fatalln" || name == "Panic" || name == "Panicf" || name == "Panicln" {
						pass.Report(call.Pos(), "log.%s in library package %s: return an error and let the caller decide the exit code", name, pass.PkgPath)
					}
				case "os":
					if name == "Exit" {
						pass.Report(call.Pos(), "os.Exit in library package %s: return an error and let the caller decide the exit code", pass.PkgPath)
					}
				}
			}
			return true
		})
	}
	return nil
}

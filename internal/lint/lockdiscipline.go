package lint

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces the two locking rules of the concurrent subsystem
// (the sharded E_v^r cache and the matcher/miner fan-out):
//
//  1. Lock-bearing structs (anything containing a sync.Mutex, RWMutex,
//     WaitGroup, Once, Cond, Map, or Pool by value) must never be copied:
//     no by-value receivers or parameters, no by-value range over shard
//     arrays, no plain assignment from an existing value. A copied mutex is
//     a distinct mutex — the original's lock protects nothing.
//  2. Lock/Unlock pairing — formerly a same-function textual heuristic here
//     (checkLockPairing, retained below for the differential test) — is now
//     owned by the control-flow-aware pairdiscipline analyzer, which proves
//     release on every path instead of release somewhere in the function.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag copies of mutex-bearing structs (pairing moved to pairdiscipline)",
	Run:  runLockDiscipline,
}

// syncNoCopy are the sync types that must not be copied after first use.
var syncNoCopy = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

// lockBearing reports whether values of t embed a sync lock by value
// (directly, through struct fields, or through arrays).
func lockBearing(t types.Type) bool {
	return lockBearingRec(t, make(map[types.Type]bool))
}

func lockBearingRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncNoCopy[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockBearingRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockBearingRec(u.Elem(), seen)
	}
	return false
}

func runLockDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, nil, n.Type)
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// `_ = s` evaluates but does not copy into a usable place.
					if i < len(n.Lhs) && !isBlank(n.Lhs[i]) {
						checkValueCopy(pass, rhs)
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkValueCopy(pass, v)
				}
			}
			return true
		})
	}
	return nil
}

// checkSignature flags by-value receivers and parameters of lock-bearing
// struct types.
func checkSignature(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lockBearing(tv.Type) {
				pass.Report(field.Pos(), "%s passes lock-bearing %s by value: use a pointer so the lock is shared, not copied", what, tv.Type)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
}

// checkRangeCopy flags `for _, v := range xs` where the element carries a
// lock — the shard-array shape: iterate by index instead.
func checkRangeCopy(pass *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil || isBlank(rs.Value) {
		return
	}
	id, ok := rs.Value.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		if obj = pass.TypesInfo.Uses[id]; obj == nil {
			return
		}
	}
	if lockBearing(obj.Type()) {
		pass.Report(rs.Value.Pos(), "range copies lock-bearing %s per element: iterate by index (for i := range ...) and take &xs[i]", obj.Type())
	}
}

// checkValueCopy flags assignments whose right-hand side copies an existing
// lock-bearing value (an identifier, field, element, or dereference).
// Composite literals and function-call results are fresh values with zeroed
// or intentionally-returned locks and are not flagged.
func checkValueCopy(pass *Pass, rhs ast.Expr) {
	switch unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[rhs]
	if !ok {
		return
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lockBearing(tv.Type) {
		pass.Report(rhs.Pos(), "assignment copies lock-bearing %s: take a pointer instead", tv.Type)
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// lockMethods maps a sync lock-acquisition method to its required release.
var lockMethods = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairing is the legacy same-function pairing heuristic: every
// Lock/RLock on a sync type inside body (including nested closures) must
// have a matching Unlock/RUnlock on the textually same receiver expression
// somewhere in the same top-level function. It no longer runs in the suite
// — pairdiscipline's path-sensitive analysis subsumes it — but is kept as
// the oracle for the differential test (pairdiff_test.go), which asserts
// the CFG-based analyzer agrees with it on the historical fixtures.
func checkLockPairing(pass *Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	type lockSite struct {
		key  string
		need string
		call *ast.CallExpr
	}
	var locks []lockSite
	released := make(map[string]bool) // "expr.Unlock" seen

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, ok := syncMethod(pass, sel)
		if !ok {
			return true
		}
		key := types.ExprString(sel.X)
		if need, isAcquire := lockMethods[name]; isAcquire {
			locks = append(locks, lockSite{key: key, need: need, call: call})
		} else if name == "Unlock" || name == "RUnlock" {
			released[key+"."+name] = true
		}
		return true
	})
	for _, l := range locks {
		if !released[l.key+"."+l.need] {
			pass.Report(l.call.Pos(), "%s.%s() without a matching %s.%s() in this function: release on every path (prefer defer)",
				l.key, lockAcquireName(l.need), l.key, l.need)
		}
	}
}

func lockAcquireName(release string) string {
	if release == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

// syncMethod resolves sel to a method of a sync package type and returns its
// name; ok is false for anything else (including same-named methods on
// non-sync types).
func syncMethod(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	var obj types.Object
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		obj = s.Obj()
	} else {
		obj = pass.TypesInfo.Uses[sel.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	return fn.Name(), true
}

package fgs_test

import (
	"fmt"
	"log"

	fgs "github.com/cwru-db/fgs"
)

// ExampleSummarize computes a fair 2-summary of a small talent network: one
// candidate per gender group, losslessly describing their 2-hop
// neighborhoods.
func ExampleSummarize() {
	g := fgs.NewGraph()
	ada := g.AddNode("user", map[string]string{"gender": "f", "exp": "5"})
	bob := g.AddNode("user", map[string]string{"gender": "m", "exp": "4"})
	for i := 0; i < 2; i++ {
		r := g.AddNode("user", nil)
		if err := g.AddEdge(r, ada, "recommend"); err != nil {
			log.Fatal(err)
		}
		r = g.AddNode("user", nil)
		if err := g.AddEdge(r, bob, "recommend"); err != nil {
			log.Fatal(err)
		}
	}

	groups, err := fgs.NewGroups(
		fgs.Group{Name: "f", Members: []fgs.NodeID{ada}, Lower: 1, Upper: 1},
		fgs.Group{Name: "m", Members: []fgs.NodeID{bob}, Lower: 1, Upper: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	util := fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "recommend")

	summary, err := fgs.Summarize(g, groups, util, fgs.Config{R: 2, N: 2})
	if err != nil {
		log.Fatal(err)
	}
	missing, spurious := summary.Reconstruct(g)
	fmt.Printf("covered %d candidates with %d patterns; lossless: %v\n",
		len(summary.Covered), summary.NumPatterns(), missing.Len() == 0 && spurious.Len() == 0)
	// Output: covered 2 candidates with 1 patterns; lossless: true
}

// ExampleVerify checks a summary with the rverify procedure.
func ExampleVerify() {
	g := fgs.NewGraph()
	a := g.AddNode("user", map[string]string{"gender": "f"})
	b := g.AddNode("user", map[string]string{"gender": "m"})
	if err := g.AddEdge(a, b, "corev"); err != nil {
		log.Fatal(err)
	}
	groups, _ := fgs.NewGroups(
		fgs.Group{Name: "f", Members: []fgs.NodeID{a}, Lower: 1, Upper: 1},
		fgs.Group{Name: "m", Members: []fgs.NodeID{b}, Lower: 1, Upper: 1},
	)
	cfg := fgs.Config{R: 1, N: 2}
	summary, err := fgs.Summarize(g, groups, fgs.NewCardinality(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := fgs.Verify(g, groups, fgs.NewCardinality(), cfg, summary, summary.CL, 0)
	fmt.Println("feasible:", report.Feasible())
	// Output: feasible: true
}

// ExampleNewGroups shows group construction with coverage constraints.
func ExampleNewGroups() {
	_, err := fgs.NewGroups(
		fgs.Group{Name: "young", Members: []fgs.NodeID{0, 1, 2}, Lower: 1, Upper: 2},
		fgs.Group{Name: "senior", Members: []fgs.NodeID{3, 4}, Lower: 1, Upper: 2},
	)
	fmt.Println("ok:", err == nil)

	// Overlapping members are rejected.
	_, err = fgs.NewGroups(
		fgs.Group{Name: "a", Members: []fgs.NodeID{0}, Upper: 1},
		fgs.Group{Name: "b", Members: []fgs.NodeID{0}, Upper: 1},
	)
	fmt.Println("overlap rejected:", err != nil)
	// Output:
	// ok: true
	// overlap rejected: true
}

package lint

// taint.go is the small reachability helper of the control-flow core
// (DESIGN.md §12): given seed expressions inside one function, it computes
// the set of local variables that may alias a seeded value, by iterating the
// function's assignments to a fixpoint. It is deliberately flow-insensitive
// (an object is tainted for the whole function once any assignment taints
// it) and intraprocedural — both conservative in the safe direction for the
// frozenview analyzer, which wants "could this variable refer to a frozen
// structure at all?".

import (
	"go/ast"
	"go/types"
)

// taintSet tracks tainted local objects within one function.
type taintSet struct {
	pass *Pass
	objs map[types.Object]bool

	// seedExpr reports whether an expression is a taint source by itself
	// (independent of variable propagation).
	seedExpr func(e ast.Expr) bool
}

// newTaintSet builds the taint set for fn's body: every variable assigned
// (directly or transitively) from an expression matching seedExpr is
// tainted.
// Clients that need the seed predicate to consult the taint set itself
// (e.g. "a selector off a tainted base is tainted") construct the taintSet
// directly, install seedExpr, and call solve.
func newTaintSet(pass *Pass, body *ast.BlockStmt, seedExpr func(ast.Expr) bool) *taintSet {
	ts := &taintSet{pass: pass, objs: make(map[types.Object]bool), seedExpr: seedExpr}
	ts.solve(body)
	return ts
}

// solve iterates body's assignments to a fixpoint.
func (ts *taintSet) solve(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if ts.tainted(n.Rhs[i]) && ts.taintLHS(n.Lhs[i]) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						if ts.tainted(n.Values[i]) && ts.taintIdent(n.Names[i]) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging over a tainted collection taints the element.
				if ts.tainted(n.X) {
					if id, ok := n.Value.(*ast.Ident); ok && ts.taintIdent(id) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

func (ts *taintSet) taintLHS(e ast.Expr) bool {
	if id, ok := unparen(e).(*ast.Ident); ok {
		return ts.taintIdent(id)
	}
	return false
}

func (ts *taintSet) taintIdent(id *ast.Ident) bool {
	if id.Name == "_" {
		return false
	}
	obj := ts.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = ts.pass.TypesInfo.Uses[id]
	}
	if obj == nil || ts.objs[obj] {
		return false
	}
	ts.objs[obj] = true
	return true
}

// tainted reports whether e may evaluate to a tainted value: a seed
// expression, a tainted identifier, or a parenthesization of either.
func (ts *taintSet) tainted(e ast.Expr) bool {
	e = unparen(e)
	if ts.seedExpr != nil && ts.seedExpr(e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := ts.pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = ts.pass.TypesInfo.Defs[id]
		}
		return obj != nil && ts.objs[obj]
	}
	return false
}

// Command fgs computes a fair r-summary of a graph in the text format.
//
// Groups are induced from an attribute of the nodes with a given label; each
// listed attribute value becomes one group under the same [lower, upper]
// coverage constraint.
//
// Usage:
//
//	fgs -graph lki.graph -label user -attr gender -values male,female \
//	    -lower 40 -upper 60 -n 100 -r 2 -algo apxfgs
//
// Algorithms: apxfgs (unbounded patterns, minimizes accumulated loss C_l),
// kapxfgs (at most -k patterns, minimizes |C|), online (streaming).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph in text format (required)")
		label     = flag.String("label", "user", "node label the groups are drawn from")
		attr      = flag.String("attr", "gender", "attribute key that defines the groups")
		values    = flag.String("values", "male,female", "comma-separated attribute values, one group each")
		lower     = flag.Int("lower", 1, "group coverage lower bound l")
		upper     = flag.Int("upper", 10, "group coverage upper bound u")
		n         = flag.Int("n", 20, "max covered nodes")
		k         = flag.Int("k", 20, "max patterns (kapxfgs/online)")
		r         = flag.Int("r", 2, "reconstruction hops")
		algo      = flag.String("algo", "apxfgs", "apxfgs, kapxfgs, or online")
		utilFlag  = flag.String("utility", "coverage", "coverage:<edgelabel>, rating:<attr>, or cardinality")
		verify    = flag.Bool("verify", true, "run rverify on the result")
		export    = flag.String("export", "", "write the summary as JSON to this file")
		workers   = flag.Int("workers", 0, "mining/scoring worker goroutines (0 = sequential; results identical)")
		query     = flag.String("query", "", "pattern file to answer over the summary as a view")

		traceOut   = flag.String("fgs.trace", "", "write a Chrome trace of the run's phase spans to this file")
		metricsOut = flag.String("fgs.metrics-out", "", "write runtime counters in Prometheus text format to this file")
		obsSummary = flag.Bool("fgs.obs-summary", false, "print the runtime-counter summary table to stderr")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := fgs.ReadGraph(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	groups, err := datasets.GroupsByAttr(g, *label, *attr, strings.Split(*values, ","), *lower, *upper)
	if err != nil {
		fatal(err)
	}

	makeUtil := func() fgs.Utility { return buildUtility(g, *utilFlag) }
	cfg := fgs.Config{R: *r, N: *n, Workers: *workers}

	// Observability is opt-in: any obs flag installs a collector. It changes
	// nothing about the summary (see DESIGN.md §8).
	var observer *fgs.Observer
	if *traceOut != "" || *metricsOut != "" || *obsSummary {
		observer = fgs.NewObserver(nil)
		cfg.Obs = observer
	}

	var summary *fgs.Summary
	switch *algo {
	case "apxfgs":
		summary, err = fgs.Summarize(g, groups, makeUtil(), cfg)
	case "kapxfgs":
		cfg.K = *k
		summary, err = fgs.SummarizeK(g, groups, makeUtil(), cfg)
	case "online":
		cfg.K = *k
		o := fgs.NewOnline(g, groups, makeUtil(), cfg)
		o.ProcessAll(groupNodes(groups))
		summary, err = o.Finish()
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Print(summary)
	if *verify {
		rep := fgs.Verify(g, groups, makeUtil(), cfg, summary, summary.CL, 0)
		fmt.Println("verification:", rep)
	}
	fmt.Printf("coverage error: %.4f\n", fgs.CoverageError(groups, summary.Covered))
	structure := 0
	for _, pi := range summary.Patterns {
		structure += pi.P.Size()
	}
	fmt.Printf("compression ratio: %.4f\n",
		fgs.CompressionRatio(g, *r, summary.Covered, structure, summary.Corrections.Len()))

	if *query != "" {
		qf, err := os.Open(*query)
		if err != nil {
			fatal(err)
		}
		p, err := fgs.ParsePattern(qf)
		qf.Close()
		if err != nil {
			fatal(err)
		}
		answers := fgs.QueryView(g, summary, p, 0)
		fmt.Printf("view query answers (%d):", len(answers))
		for _, v := range answers {
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal(err)
		}
		if err := fgs.WriteSummaryJSON(f, summary, g); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "summary exported to %s\n", *export)
	}

	if observer != nil {
		if err := exportObs(observer, *traceOut, *metricsOut, *obsSummary); err != nil {
			fatal(err)
		}
	}
}

// exportObs writes whatever the observer collected: the Chrome trace, the
// Prometheus text file, and/or a summary table on stderr.
func exportObs(o *fgs.Observer, tracePath, metricsPath string, table bool) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := fgs.WriteChromeTrace(f, o.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", tracePath)
	}
	ms := append(o.Reg.Gather(), fgs.PhaseMetrics(o.Trace)...)
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := fgs.WritePrometheus(f, ms); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", metricsPath)
	}
	if table {
		fmt.Fprint(os.Stderr, fgs.FormatMetricTable(ms))
	}
	return nil
}

func buildUtility(g *fgs.Graph, spec string) fgs.Utility {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "coverage":
		return fgs.NewNeighborCoverage(g, fgs.NeighborsIn, arg)
	case "rating":
		if arg == "" {
			arg = "rating"
		}
		return fgs.NewRatingSum(g, arg)
	case "cardinality":
		return fgs.NewCardinality()
	default:
		fatal(fmt.Errorf("unknown utility %q", spec))
		return nil
	}
}

func groupNodes(groups *fgs.Groups) []fgs.NodeID {
	var out []fgs.NodeID
	for i := 0; i < groups.Len(); i++ {
		out = append(out, groups.At(i).Members...)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgs:", err)
	os.Exit(1)
}

// Fixture for pairdiscipline's result-mode resources: MVCC view pins, read
// contexts, admission slots, and pooled scratch — the shapes from
// internal/server and internal/graph.
package pairdiscipline

import (
	"context"
	"errors"
	"sync"
)

type Graph struct {
	n    int
	pool sync.Pool
}

type epochView struct{ refs int }

type viewSet struct{ cur *epochView }

func (vs *viewSet) pin() *epochView    { return vs.cur }
func (vs *viewSet) unpin(v *epochView) {}

func okPinUnpin(vs *viewSet) {
	v := vs.pin()
	defer vs.unpin(v)
	_ = v.refs
}

func leakPin(vs *viewSet, cond bool) {
	v := vs.pin() // want `vs\.pin\(\): pin/unpin acquired here is not released`
	if cond {
		return
	}
	vs.unpin(v)
}

func okPinHandoffReturn(vs *viewSet) *epochView {
	return vs.pin() // ok: caller owns the pin now
}

func okPinClosureCapture(vs *viewSet) func() {
	v := vs.pin()
	return func() { vs.unpin(v) } // ok: release handed to the closure
}

type readCtx struct {
	g       *Graph
	release func()
}

type server struct {
	mu    sync.RWMutex
	g     *Graph
	views *viewSet
}

func (s *server) acquireRead() readCtx {
	s.mu.RLock() // ok: RUnlock handed off inside the returned readCtx
	return readCtx{g: s.g, release: s.mu.RUnlock}
}

func okRead(s *server) int {
	rc := s.acquireRead()
	defer rc.release()
	return rc.g.n
}

func leakRead(s *server, cond bool) int {
	rc := s.acquireRead() // want `s\.acquireRead\(\): acquireRead/release acquired here is not released`
	if cond {
		return 0
	}
	rc.release()
	return rc.g.n
}

type admission struct{ slots chan struct{} }

var errSaturated = errors.New("saturated")

func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func okAdmission(a *admission, ctx context.Context) error {
	release, err := a.acquire(ctx)
	switch {
	case errors.Is(err, errSaturated):
		return err
	case err != nil:
		return err
	}
	defer release()
	return nil
}

func leakAdmission(a *admission, ctx context.Context, cond bool) error {
	release, err := a.acquire(ctx) // want `a\.acquire\(\): admission acquire/release acquired here is not released`
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	release()
	return nil
}

type scratchT struct{ stamp []uint32 }

func (g *Graph) acquireScratch() *scratchT {
	s, _ := g.pool.Get().(*scratchT) // ok: reassigned or returned on every path
	if s == nil {
		s = &scratchT{}
	}
	return s
}

func (g *Graph) releaseScratch(s *scratchT) { g.pool.Put(s) }

func okBFS(g *Graph) {
	s := g.acquireScratch()
	defer g.releaseScratch(s)
	_ = s.stamp
}

func leakBFS(g *Graph, cond bool) {
	s := g.acquireScratch() // want `g\.acquireScratch\(\): acquireScratch/releaseScratch acquired here is not released`
	if cond {
		return
	}
	g.releaseScratch(s)
}

func leakPoolGet(g *Graph, cond bool) {
	s, _ := g.pool.Get().(*scratchT) // want `g\.pool\.Get\(\): Pool Get/Put acquired here is not released`
	if cond {
		return
	}
	g.pool.Put(s)
}

// Fixture for pairdiscipline's obs-span shapes: Trace.Start/Span.End,
// Span.Child, and the core runner's startRun/finish pairing, including the
// leak-on-error-path shape the analyzer exists to catch.
package pairdiscipline

type Span struct{ name string }

func (s *Span) End()                    {}
func (s *Span) SetArg(k, v string)      {}
func (s *Span) Child(name string) *Span { return &Span{name: name} }

type Trace struct{}

func (t *Trace) Start(name string) *Span { return &Span{name: name} }

type runObs struct{ root *Span }

func startRun(tr *Trace, name string) *runObs { return &runObs{root: tr.Start(name)} }

func (r *runObs) phase(name string) *Span { return r.root.Child(name) }
func (r *runObs) finish()                 { r.root.End() }
func (r *runObs) abort()                  { r.root.End() }

func okSpanDefer(tr *Trace) {
	sp := tr.Start("compute")
	defer sp.End()
	sp.SetArg("k", "v") // ok: selector reads/calls on the span are not escapes
}

func okSpanChained(tr *Trace) {
	tr.Start("blip").End() // ok: acquired and released in one expression
}

func discardedSpan(tr *Trace) {
	tr.Start("lost") // want `tr\.Start\(\): result of span Start/End is discarded`
}

func leakSpanOnError(tr *Trace, fail bool) error {
	sp := tr.Start("work") // want `tr\.Start\(\): span Start/End acquired here is not released`
	if fail {
		return errSaturated
	}
	sp.End()
	return nil
}

func okDeferredClosureEnd(tr *Trace, code *int) {
	sp := tr.Start("handler")
	defer func() {
		sp.SetArg("code", "200")
		sp.End() // ok: runs at every exit of the enclosing function
	}()
	*code = 200
}

func okChildSpan(tr *Trace) {
	sp := tr.Start("parent")
	defer sp.End()
	child := sp.Child("step")
	child.End()
}

func leakChildSpan(tr *Trace, cond bool) {
	sp := tr.Start("parent")
	defer sp.End()
	child := sp.Child("step") // want `sp\.Child\(\): span Child/End acquired here is not released`
	if cond {
		return
	}
	child.End()
}

func okRunFinish(tr *Trace) {
	run := startRun(tr, "apxfgs")
	defer run.finish()
	sp := run.phase("select")
	sp.End()
}

func leakRunOnErrorPath(tr *Trace, fail bool) error {
	run := startRun(tr, "apxfgs") // want `startRun\(\): startRun/finish acquired here is not released`
	sp := run.phase("select")
	if fail {
		sp.End()
		return errSaturated
	}
	sp.End()
	run.finish()
	return nil
}

func okRunAbortOnError(tr *Trace, fail bool) error {
	run := startRun(tr, "apxfgs")
	sp := run.phase("select")
	sp.End()
	if fail {
		run.abort()
		return errSaturated
	}
	run.finish()
	return nil
}

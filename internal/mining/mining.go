// Package mining implements procedure SumGen of Section IV: constrained,
// focus-rooted graph-pattern discovery over the r-hop neighborhoods of a set
// of anchor nodes. It grows patterns breadth-first from single-node seeds by
// (a) adding equality literals to the focus and (b) attaching edges observed
// in the anchors' neighborhoods, early-terminating at radius r from the
// focus exactly as the paper prescribes. Grown patterns are deduplicated by
// canonical code and scored with the quantities the FGS algorithms consume:
// covered group nodes, covered edge sets P_E, and the per-pattern correction
// cost C_P = |E^r_{P_V} \ P_E|.
//
// The same growth engine, run without group-bound feasibility filtering and
// ranked by support, doubles as the frequent-subgraph miner behind the GraMi
// baseline (see Frequent).
package mining

import (
	"slices"
	"sort"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/pattern"
)

// Config bounds the pattern search space.
type Config struct {
	// Radius is r: the maximum hop distance from the focus to any pattern
	// node, matching the summary's reconstruction horizon.
	Radius int
	// MaxNodes caps pattern size in nodes. Default 5.
	MaxNodes int
	// MaxLiterals caps equality literals on the focus. Default 2.
	MaxLiterals int
	// MaxPatterns caps the number of emitted candidates (N in the paper's
	// cost analysis). Default 200.
	MaxPatterns int
	// MinCover prunes patterns covering fewer than this many anchors.
	// Default 1.
	MinCover int
	// EmbedCap bounds embedding enumeration per (pattern, anchor) when
	// collecting covered edges. 0 picks the default (512); negative means
	// unlimited. Capping trades P_E completeness (uncollected edges land in
	// the corrections, never breaking losslessness) for bounded work at
	// hub anchors, whose embedding counts grow combinatorially.
	EmbedCap int
	// ScoreAnchorsOnly restricts covered-edge sets and C_P to the anchors'
	// neighborhoods instead of every covered universe node. Online-APXFGS
	// sets it: the paper's UpdateP works at node level (cost O(|E_v^r| +
	// N_v·T_I)), and the final summary re-scores patterns globally anyway.
	ScoreAnchorsOnly bool
	// Workers parallelizes the mine→score pipeline: candidate scoring
	// (coverage evaluation, covered-edge collection, C_P) runs on a pool of
	// this many goroutines with results committed in generation order, the
	// matcher splits large coverage evaluations across the same count
	// (pattern.Matcher.SetWorkers), and the E_v^r cache is pre-warmed in
	// parallel. 0/1 = fully sequential. Output is byte-identical either way;
	// see runParallel for the determinism argument.
	Workers int
	// Obs receives the engine's runtime counters (queue depth, speculation
	// discards, prunes) and the matcher's search counters. Nil disables
	// collection; mining never reads the clock.
	Obs *obs.Observer
	// Regions, when non-nil, routes coverage evaluation, covered-edge
	// collection, and C_P onto the focus-region shard slices (DESIGN.md
	// §14). The run silently falls back to the global path unless the
	// regions cover both the anchors and the universe at exactly Radius;
	// output is byte-identical either way.
	Regions *Regions
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Radius <= 0 {
		c.Radius = 2
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 5
	}
	if c.MaxLiterals <= 0 {
		c.MaxLiterals = 2
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 200
	}
	if c.MinCover <= 0 {
		c.MinCover = 1
	}
	switch {
	case c.EmbedCap == 0:
		c.EmbedCap = 512
	case c.EmbedCap < 0:
		c.EmbedCap = 0 // matcher convention: 0 = unlimited
	}
	return c
}

// Candidate is a mined pattern scored against the evaluation universe.
type Candidate struct {
	P *pattern.Pattern
	// Covered is the set of universe nodes covered by P at the focus,
	// sorted — P_V relative to the fixed selection of Eq. (1).
	Covered []graph.NodeID
	// CoveredEdges is P_E restricted to embeddings anchored at covered group
	// nodes — the edges the pattern describes — as a dense-EdgeID bitset
	// (convert with Graph.EdgeSetOf at the public-API boundary). Candidates
	// scored on a partition carry the compact edgeIDs form instead and
	// materialize this bitset lazily; read through HasEdges/EdgeBits.
	CoveredEdges *graph.EdgeBits
	// edgeIDs is P_E as sorted, deduplicated global EdgeIDs — the
	// scatter-gather merge's compact form. Small because P_E only spans the
	// covered nodes' embeddings, where a full bitset would span the graph.
	edgeIDs []graph.EdgeID
	// CP is the pattern's edge-coverage loss C_P = |E^r_{P_V} \ P_E|.
	CP int
	// Fallback marks the full-literal singleton seeds that guarantee every
	// anchor stays coverable; they carry maximal C_P by construction.
	Fallback bool
}

// HasEdges reports whether the candidate carries a covered-edge payload in
// either representation (false for skip-score and frequent-mining runs).
func (c *Candidate) HasEdges() bool { return c.CoveredEdges != nil || c.edgeIDs != nil }

// EdgeBits returns P_E as a bitset sized for a graph with EdgeID bound
// `bound`, materializing (and caching) it from the compact partitioned form
// when needed. Not safe for concurrent callers on the same candidate; the
// selection loops that consume it are single-goroutine.
func (c *Candidate) EdgeBits(bound int) *graph.EdgeBits {
	if c.CoveredEdges == nil && c.edgeIDs != nil {
		b := graph.NewEdgeBits(bound)
		for _, id := range c.edgeIDs {
			b.Add(id)
		}
		c.CoveredEdges = b
	}
	return c.CoveredEdges
}

// CoversAnyOf reports whether the candidate covers at least one node of set.
func (c *Candidate) CoversAnyOf(set graph.NodeSet) bool {
	for _, v := range c.Covered {
		if set.Has(v) {
			return true
		}
	}
	return false
}

// SumGen mines candidate patterns from the r-hop neighborhoods of anchors
// (the selected nodes V_p) and evaluates their coverage over universe — the
// node set the summary describes. In the select-and-summarize pipeline the
// universe is the selection itself: the bilevel formulation of Section IV
// (Eq. 1-4) fixes V_p and asks the patterns to cover and describe exactly
// those nodes, so coverage, covered edges and C_P are all anchored there.
// (Baselines that have no selection pass the whole group universe instead.)
//
// The result always contains, for every anchor, a full-literal fallback
// singleton covering it, so the greedy of APXFGS can always complete the
// cover. Candidates are emitted in generation order (breadth-first by
// pattern size), deterministic for a fixed input.
func SumGen(g *graph.Graph, anchors []graph.NodeID, universe []graph.NodeID, cfg Config, er *ErCache) []*Candidate {
	cfg = cfg.withDefaults()
	regions := cfg.Regions
	if regions != nil && (!regions.Covers(g, anchors, cfg.Radius) || !regions.Covers(g, universe, cfg.Radius)) {
		regions = nil // fall back: some node escapes the partition's focus set
	}
	if regions == nil && (er == nil || er.Radius() != cfg.Radius) {
		er = NewErCache(g, cfg.Radius)
	}
	m := pattern.NewMatcher(g, cfg.EmbedCap)
	m.SetWorkers(cfg.Workers)
	eng := &engine{
		g:        g,
		m:        m,
		cfg:      cfg,
		er:       er,
		regions:  regions,
		universe: universe,
		anchors:  anchors,
		anchSet:  graph.NodeSetOf(anchors),
		seen:     make(map[string]bool),
	}
	if regions != nil {
		eng.initRegions()
	}
	if reg := cfg.Obs.GetReg(); reg != nil {
		// Allocated only when a collector is installed: the hot loops guard
		// on e.mm == nil and pay nothing otherwise.
		eng.mm = &miningMetrics{}
		reg.Register(eng.mm)
		if regions != nil {
			for _, sm := range eng.shardM {
				reg.Register(sm)
			}
		} else {
			reg.Register(m)
		}
	}
	eng.buildTemplates()
	if cfg.Workers > 1 {
		// Pre-warm E_v^r for every node score() can touch, so workers read
		// the cache instead of serializing BFS work behind shard locks.
		eng.warm()
		eng.runParallel()
	} else {
		eng.run()
	}
	return eng.out
}

// warm precomputes E_v^r for every node score() can touch. On the
// partitioned path each shard cache warms its local score nodes; shard
// graphs are smaller, so each BFS is cheaper than the global equivalent.
func (e *engine) warm() {
	if e.regions == nil {
		if e.cfg.ScoreAnchorsOnly {
			e.er.Warm(e.anchors, e.cfg.Workers)
		} else {
			e.er.Warm(e.universe, e.cfg.Workers)
		}
		return
	}
	for s := range e.shardUniverse {
		nodes := e.shardUniverse[s]
		if e.cfg.ScoreAnchorsOnly {
			nodes = e.shardAnchors[s]
		}
		e.regions.Er(s).Warm(nodes, e.cfg.Workers)
	}
}

// initRegions distributes anchors and universe onto their owning shards as
// ascending local IDs and builds one matcher per slice. Shard matchers stay
// at worker count 0: the scoring pipeline already parallelizes across
// patterns, and per-shard node sets are too small to split further.
func (e *engine) initRegions() {
	n := e.regions.NumShards()
	e.shardM = make([]*pattern.Matcher, n)
	e.shardAnchors = make([][]graph.NodeID, n)
	e.shardUniverse = make([][]graph.NodeID, n)
	for s := 0; s < n; s++ {
		e.shardM[s] = pattern.NewMatcher(e.regions.Shard(s).Graph(), e.cfg.EmbedCap)
	}
	part := e.regions.Partition()
	for _, v := range e.anchors {
		s, lv, _ := part.Owner(v) // Covers validated ownership
		e.shardAnchors[s] = append(e.shardAnchors[s], lv)
	}
	for _, v := range e.universe {
		s, lv, _ := part.Owner(v)
		e.shardUniverse[s] = append(e.shardUniverse[s], lv)
	}
	for s := 0; s < n; s++ {
		slices.Sort(e.shardAnchors[s])
		slices.Sort(e.shardUniverse[s])
	}
}

// engine holds the state of one mining run.
type engine struct {
	g        *graph.Graph
	m        *pattern.Matcher
	cfg      Config
	er       *ErCache
	universe []graph.NodeID
	anchors  []graph.NodeID
	anchSet  graph.NodeSet

	// Partitioned-path state (nil/empty on the global path): the validated
	// regions, one matcher per shard slice, and the anchors/universe grouped
	// by owning shard as ascending local IDs.
	regions       *Regions
	shardM        []*pattern.Matcher
	shardAnchors  [][]graph.NodeID
	shardUniverse [][]graph.NodeID

	// templates lists, per node label, the (edgeLabel, otherLabel, outgoing)
	// triples observed in the anchors' r-hop neighborhoods — the only edge
	// extensions worth trying.
	templates map[string][]edgeTemplate

	// queue holds structural (edge) extensions; queueLit holds literal
	// refinements, consumed only when queue is empty so attribute slices of
	// one shape cannot crowd structural variety out of the emission budget.
	queue    []*pattern.Pattern
	queueLit []*pattern.Pattern
	seen     map[string]bool
	out      []*Candidate

	// skipScore skips covered-edge/C_P computation (frequent mining only
	// needs coverage counts); noFallback suppresses the full-literal seeds.
	skipScore  bool
	noFallback bool

	// mm is non-nil only when a metrics collector is installed.
	mm *miningMetrics
}

// edgeTemplate is one observed adjacency shape.
type edgeTemplate struct {
	edgeLabel  string
	otherLabel string
	out        bool
}

func (e *engine) buildTemplates() {
	e.templates = make(map[string][]edgeTemplate)
	type key struct {
		from string
		t    edgeTemplate
	}
	seen := make(map[key]bool)
	collect := func(g *graph.Graph, edges *graph.EdgeBits) {
		edges.Iterate(func(id graph.EdgeID) {
			ref := g.EdgeRefOf(id)
			fromL := g.LabelOf(ref.From)
			toL := g.LabelOf(ref.To)
			el := g.EdgeLabelName(ref.Label)
			k1 := key{from: fromL, t: edgeTemplate{edgeLabel: el, otherLabel: toL, out: true}}
			if !seen[k1] {
				seen[k1] = true
				e.templates[fromL] = append(e.templates[fromL], k1.t)
			}
			k2 := key{from: toL, t: edgeTemplate{edgeLabel: el, otherLabel: fromL, out: false}}
			if !seen[k2] {
				seen[k2] = true
				e.templates[toL] = append(e.templates[toL], k2.t)
			}
		})
	}
	if e.regions != nil {
		// Shard-local sweeps see exactly the global anchor neighborhoods
		// (ball slices preserve E_v^r), and the label-triple key space is
		// shared via the parent's interners, so the deduped template set is
		// identical — shards merely contribute it in shard order, which the
		// canonical bucket sort below normalizes away.
		for s := range e.shardAnchors {
			if len(e.shardAnchors[s]) == 0 {
				continue
			}
			sg := e.regions.Shard(s).Graph()
			collect(sg, sg.RHopEdgeBitsOf(e.shardAnchors[s], e.cfg.Radius))
		}
	} else {
		collect(e.g, e.g.RHopEdgeBitsOf(e.anchors, e.cfg.Radius))
	}
	// Sort each bucket into the canonical extension order. Bitset iteration
	// is already ascending-EdgeID (deterministic without this sort); sorting
	// normalizes the order across graph loads that interleave insertions
	// differently.
	for l := range e.templates {
		sort.Slice(e.templates[l], func(i, j int) bool {
			a, b := e.templates[l][i], e.templates[l][j]
			if a.edgeLabel != b.edgeLabel {
				return a.edgeLabel < b.edgeLabel
			}
			if a.otherLabel != b.otherLabel {
				return a.otherLabel < b.otherLabel
			}
			return !a.out && b.out
		})
	}
}

// fallbackSeeds returns the deduped full-literal fallback singletons in
// anchor order, marking their codes as seen.
func (e *engine) fallbackSeeds() []*pattern.Pattern {
	if e.noFallback {
		return nil
	}
	var seeds []*pattern.Pattern
	for _, v := range e.anchors {
		p := e.fullLiteralPattern(v)
		code := pattern.CanonicalCode(p)
		if e.seen[code] {
			continue
		}
		e.seen[code] = true
		seeds = append(seeds, p)
	}
	return seeds
}

// pushLabelSeeds enqueues a label-only seed for every label occurring among
// the anchors, in sorted label order.
func (e *engine) pushLabelSeeds() {
	labels := map[string]bool{}
	var labelList []string
	for _, v := range e.anchors {
		l := e.g.LabelOf(v)
		if !labels[l] {
			labels[l] = true
			labelList = append(labelList, l)
		}
	}
	sort.Strings(labelList)
	for _, l := range labelList {
		e.push(pattern.NewNodePattern(l))
	}
}

func (e *engine) run() {
	// Fallback seeds first: full-literal singletons per anchor, deduped.
	for _, p := range e.fallbackSeeds() {
		if cand := e.score(p, true); cand != nil {
			e.out = append(e.out, cand)
			if e.mm != nil {
				e.mm.emitted.Inc()
			}
		}
	}

	e.pushLabelSeeds()

	// MaxPatterns budgets grown patterns; fallbacks are always kept so the
	// greedy cover can complete.
	grown := 0
	for (len(e.queue) > 0 || len(e.queueLit) > 0) && grown < e.cfg.MaxPatterns {
		var p *pattern.Pattern
		if len(e.queue) > 0 {
			p = e.queue[0]
			e.queue = e.queue[1:]
		} else {
			p = e.queueLit[0]
			e.queueLit = e.queueLit[1:]
		}
		coveredAnchors := e.coverAnchors(p)
		if len(coveredAnchors) < e.cfg.MinCover {
			// Anti-monotone: extensions only shrink coverage; prune subtree.
			if e.mm != nil {
				e.mm.pruned.Inc()
			}
			continue
		}
		if cand := e.score(p, false); cand != nil {
			e.out = append(e.out, cand)
			if e.mm != nil {
				e.mm.emitted.Inc()
			}
			grown++
			if grown >= e.cfg.MaxPatterns {
				break
			}
		}
		e.extend(p, coveredAnchors)
	}
}

// push enqueues a structural extension if unseen.
func (e *engine) push(p *pattern.Pattern) {
	code := pattern.CanonicalCode(p)
	if e.seen[code] {
		return
	}
	e.seen[code] = true
	e.queue = append(e.queue, p)
}

// pushLit enqueues a literal refinement if unseen (secondary priority).
func (e *engine) pushLit(p *pattern.Pattern) {
	code := pattern.CanonicalCode(p)
	if e.seen[code] {
		return
	}
	e.seen[code] = true
	e.queueLit = append(e.queueLit, p)
}

// fullLiteralPattern builds the coverage-fallback singleton for a node:
// label plus one literal per attribute.
func (e *engine) fullLiteralPattern(v graph.NodeID) *pattern.Pattern {
	lits := make([]pattern.Literal, 0, len(e.g.Attrs(v)))
	for _, a := range e.g.Attrs(v) {
		lits = append(lits, pattern.Literal{Key: e.g.AttrKeyName(a.Key), Val: e.g.AttrValName(a.Val)})
	}
	return pattern.NewNodePattern(e.g.LabelOf(v), lits...)
}

// coverAmongAnchors evaluates pattern coverage over the anchors for the
// generation loop's anti-monotone prune and literal counting. Downstream
// consumers are order-independent, so the partitioned path may return the
// covered anchors globally sorted instead of in anchor order.
func (e *engine) coverAnchors(p *pattern.Pattern) []graph.NodeID {
	if e.regions == nil {
		return e.m.CoverAmong(p, e.anchors)
	}
	var out []graph.NodeID
	for s := range e.shardAnchors {
		if len(e.shardAnchors[s]) == 0 {
			continue
		}
		sh := e.regions.Shard(s)
		for _, lv := range e.shardM[s].CoverAmong(p, e.shardAnchors[s]) {
			out = append(out, sh.GlobalNode(lv))
		}
	}
	slices.Sort(out)
	return out
}

// score builds the emitted candidate: covered universe nodes, covered
// edges, C_P. Dispatches to the scatter-gather path when regions are
// active; both paths return value-identical candidates.
func (e *engine) score(p *pattern.Pattern, fallback bool) *Candidate {
	if e.regions != nil {
		return e.scoreSharded(p, fallback)
	}
	covered := e.m.CoverAmong(p, e.universe)
	slices.Sort(covered)
	if len(covered) == 0 {
		return nil
	}
	if e.skipScore {
		return &Candidate{P: p, Covered: covered, Fallback: fallback}
	}
	scoreNodes := covered
	if e.cfg.ScoreAnchorsOnly {
		scoreNodes = nil
		for _, v := range covered {
			if e.anchSet.Has(v) {
				scoreNodes = append(scoreNodes, v)
			}
		}
	}
	// Both C_P operands are dense bitsets, so the loss computation collapses
	// to word-OR unions plus one popcount sweep — no dedup map.
	bound := e.g.EdgeIDBound()
	union := graph.NewEdgeBits(bound)
	coveredEdges := graph.NewEdgeBits(bound)
	for _, v := range scoreNodes {
		union.Union(e.er.Get(v))
		if es, ok := e.m.CoveredEdgeBitsAt(p, v); ok {
			coveredEdges.Union(es)
		}
	}
	cp := union.AndNotCount(coveredEdges)
	return &Candidate{P: p, Covered: covered, CoveredEdges: coveredEdges, CP: cp, Fallback: fallback}
}

// scoreSharded is score() on the focus-region shards: every per-node
// quantity (coverage, P_E embeddings, E_v^r) is computed on the owning
// shard's compacted slice with local IDs, then translated to global IDs and
// merged. Shard-local answers equal the global ones node-for-node (the
// slice is an induced distance-preserving superset of ball(v, r), and its
// adjacency preserves the parent's per-node order, so even EmbedCap-capped
// enumeration visits the same embeddings) — making the merged candidate
// value-identical to the unpartitioned one.
//
// The merge is sparse on purpose: P_E and the C_P operands live as sorted
// global EdgeID lists sized by the covered nodes' neighborhoods, not as
// graph-wide bitsets. At a million nodes that replaces two multi-hundred-KB
// allocations per pattern with a few KB — the core of the perf win.
func (e *engine) scoreSharded(p *pattern.Pattern, fallback bool) *Candidate {
	var covered []graph.NodeID
	var unionIDs, edgeIDs []graph.EdgeID
	for s := range e.shardUniverse {
		locals := e.shardUniverse[s]
		if len(locals) == 0 {
			continue
		}
		sh := e.regions.Shard(s)
		m := e.shardM[s]
		coveredLoc := m.CoverAmong(p, locals)
		if len(coveredLoc) == 0 {
			continue
		}
		for _, lv := range coveredLoc {
			covered = append(covered, sh.GlobalNode(lv))
		}
		if e.skipScore {
			continue
		}
		scoreLoc := coveredLoc
		if e.cfg.ScoreAnchorsOnly {
			scoreLoc = nil
			for _, lv := range coveredLoc {
				if e.anchSet.Has(sh.GlobalNode(lv)) {
					scoreLoc = append(scoreLoc, lv)
				}
			}
		}
		bound := sh.Graph().EdgeIDBound()
		union := graph.NewEdgeBits(bound)
		covBits := graph.NewEdgeBits(bound)
		for _, lv := range scoreLoc {
			union.Union(e.regions.Er(s).Get(lv))
			if es, ok := m.CoveredEdgeBitsAt(p, lv); ok {
				covBits.Union(es)
			}
		}
		union.Iterate(func(id graph.EdgeID) { unionIDs = append(unionIDs, sh.GlobalEdge(id)) })
		covBits.Iterate(func(id graph.EdgeID) { edgeIDs = append(edgeIDs, sh.GlobalEdge(id)) })
	}
	slices.Sort(covered)
	if len(covered) == 0 {
		return nil
	}
	if e.skipScore {
		return &Candidate{P: p, Covered: covered, Fallback: fallback}
	}
	unionIDs = sortDedupEdgeIDs(unionIDs)
	edgeIDs = sortDedupEdgeIDs(edgeIDs)
	if edgeIDs == nil {
		// Keep representation parity with the global path, which carries an
		// empty (never nil) bitset for scored candidates with no P_E edges.
		edgeIDs = []graph.EdgeID{}
	}
	return &Candidate{P: p, Covered: covered, edgeIDs: edgeIDs, CP: countNotIn(unionIDs, edgeIDs), Fallback: fallback}
}

// sortDedupEdgeIDs sorts ids ascending and removes duplicates in place
// (overlapping shard balls report boundary edges more than once).
func sortDedupEdgeIDs(ids []graph.EdgeID) []graph.EdgeID {
	if len(ids) == 0 {
		return ids
	}
	slices.Sort(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// countNotIn reports |a \ b| for two ascending EdgeID lists — the merged
// C_P = |E^r_{P_V} \ P_E| without materializing either set as a bitset.
func countNotIn(a, b []graph.EdgeID) int {
	n, j := 0, 0
	for _, id := range a {
		for j < len(b) && b[j] < id {
			j++
		}
		if j >= len(b) || b[j] != id {
			n++
		}
	}
	return n
}

// extend generates edge and literal extensions of p. Edge extensions are
// enqueued first: structural variety matters more to edge coverage than
// literal refinements, and the BFS emission budget (MaxPatterns) should not
// be exhausted by attribute slices of the same shape.
func (e *engine) extend(p *pattern.Pattern, coveredAnchors []graph.NodeID) {
	e.extendEdges(p)
	e.extendLiterals(p, coveredAnchors)
}

func (e *engine) extendLiterals(p *pattern.Pattern, coveredAnchors []graph.NodeID) {
	// Literal refinement on the focus, from attribute values frequent among
	// the covered anchors. Rare values (below ~20% support) are skipped:
	// they would slice the shape into near-singleton variants, which the
	// full-literal fallbacks already provide far more cheaply.
	if len(p.Nodes[p.Focus].Literals) < e.cfg.MaxLiterals {
		minSupport := len(coveredAnchors) / 5
		if minSupport < 2 {
			minSupport = 2
		}
		type kv struct{ k, v string }
		counts := map[kv]int{}
		for _, v := range coveredAnchors {
			for _, a := range e.g.Attrs(v) {
				counts[kv{e.g.AttrKeyName(a.Key), e.g.AttrValName(a.Val)}]++
			}
		}
		var lits []kv
		for l, c := range counts {
			if c >= minSupport {
				lits = append(lits, l)
			}
		}
		sort.Slice(lits, func(i, j int) bool {
			if lits[i].k != lits[j].k {
				return lits[i].k < lits[j].k
			}
			return lits[i].v < lits[j].v
		})
		for _, l := range lits {
			lit := pattern.Literal{Key: l.k, Val: l.v}
			if p.HasLiteral(p.Focus, lit) {
				continue
			}
			// Skip a second literal on the same key: equality literals on
			// one key are mutually exclusive.
			dup := false
			for _, existing := range p.Nodes[p.Focus].Literals {
				if existing.Key == lit.Key {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			e.pushLit(p.AddLiteral(p.Focus, lit))
		}
	}
}

func (e *engine) extendEdges(p *pattern.Pattern) {
	// Leaf extensions, bounded by radius and size.
	if len(p.Nodes) < e.cfg.MaxNodes {
		depths := focusDepths(p)
		for u := range p.Nodes {
			if depths[u] >= e.cfg.Radius {
				continue // a new leaf here would exceed radius r
			}
			for _, t := range e.templates[p.Nodes[u].Label] {
				e.push(p.AddLeaf(u, pattern.Node{Label: t.otherLabel}, t.edgeLabel, t.out))
			}
		}
	}
	// Closing edges between existing nodes (no new node, allowed even at
	// the size cap).
	for u := range p.Nodes {
		for w := range p.Nodes {
			if u == w {
				continue
			}
			for _, t := range e.templates[p.Nodes[u].Label] {
				if !t.out || t.otherLabel != p.Nodes[w].Label {
					continue
				}
				if q := p.AddClosingEdge(u, w, t.edgeLabel); q != nil {
					e.push(q)
				}
			}
		}
	}
}

// focusDepths returns each pattern node's undirected hop distance from the
// focus.
func focusDepths(p *pattern.Pattern) []int {
	depth := make([]int, len(p.Nodes))
	for i := range depth {
		depth[i] = -1
	}
	adj := make([][]int, len(p.Nodes))
	for _, ed := range p.Edges {
		adj[ed.From] = append(adj[ed.From], ed.To)
		adj[ed.To] = append(adj[ed.To], ed.From)
	}
	depth[p.Focus] = 0
	queue := []int{p.Focus}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

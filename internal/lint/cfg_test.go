package lint

// Golden CFG-shape tests for the tricky constructs the builder must get
// right: labeled break, defer inside loops, select, early return under
// range, goto, and the tagless-switch cascade. The golden form is
// funcCFG.dump(): one line per reachable block, "index kind [stmtCount] ->
// succIndices", densely renumbered — stable across runs by construction.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFromSrc parses a single function body and builds its CFG with no
// terminal-call matcher (golden tests are types-free).
func buildFromSrc(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body, nil)
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straight line",
			body: `x := 1
y := x
_ = y`,
			want: `0 entry [3] -> 1
1 exit [0] ->`,
		},
		{
			name: "if else",
			body: `if cond() {
	a()
} else {
	b()
}
c()`,
			want: `0 entry [1] -> 2 4
1 exit [0] ->
2 if.then [1] -> 3
3 if.done [1] -> 1
4 if.else [1] -> 3`,
		},
		{
			name: "labeled break",
			body: `outer:
for {
	for {
		if done() {
			break outer
		}
		step()
	}
}
after()`,
			want: `0 entry [0] -> 2
1 exit [0] ->
2 label.outer [0] -> 3
3 for.head [0] -> 4
4 for.body [0] -> 6
5 for.done [1] -> 1
6 for.head [0] -> 7
7 for.body [1] -> 8 9
8 if.then [0] -> 5
9 if.done [1] -> 6`,
		},
		{
			name: "defer in loop",
			body: `for i := 0; i < n; i++ {
	mu.Lock()
	defer mu.Unlock()
	work(i)
}
rest()`,
			want: `0 entry [1] -> 2
1 exit [0] ->
2 for.head [1] -> 3 4
3 for.body [3] -> 5
4 for.done [1] -> 1
5 for.post [1] -> 2`,
		},
		{
			name: "select without default blocks",
			body: `select {
case <-a:
	one()
case v := <-b:
	use(v)
}
after()`,
			want: `0 entry [0] -> 3 4
1 exit [0] ->
2 select.done [1] -> 1
3 select.body [2] -> 2
4 select.body [2] -> 2`,
		},
		{
			name: "early return under range",
			body: `for _, v := range xs {
	if bad(v) {
		return
	}
	use(v)
}
tail()`,
			want: `0 entry [0] -> 2
1 exit [0] ->
2 range.head [1] -> 3 4
3 range.body [1] -> 5 6
4 range.done [1] -> 1
5 if.then [1] -> 1
6 if.done [1] -> 2`,
		},
		{
			name: "forward goto",
			body: `if fast() {
	goto done
}
slow()
done:
cleanup()`,
			want: `0 entry [1] -> 2 3
1 exit [0] ->
2 if.then [0] -> 4
3 if.done [1] -> 4
4 label.done [1] -> 1`,
		},
		{
			name: "tagless switch cascade",
			body: `switch {
case e != nil:
	a()
case n == 0:
	b()
default:
	c()
}
after()`,
			want: `0 entry [1] -> 3 6
1 exit [0] ->
2 switch.done [1] -> 1
3 case.body [1] -> 2
4 case.body [1] -> 2
5 case.body [1] -> 2
6 case.next [1] -> 4 7
7 case.next [0] -> 5`,
		},
		{
			name: "tagged switch with fallthrough",
			body: `switch k {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}`,
			want: `0 entry [1] -> 3 4 5
1 exit [0] ->
2 switch.done [0] -> 1
3 case.body [1] -> 4
4 case.body [1] -> 2
5 case.body [1] -> 2`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := buildFromSrc(t, c.body).dump()
			if got != c.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, c.want)
			}
		})
	}
}

// TestCFGBranchCond pins the truth-edge convention the dataflow refinement
// relies on: succs[0] is the true edge, succs[1] the false edge, and the
// tagless-switch cascade exposes each case expression as a branchCond.
func TestCFGBranchCond(t *testing.T) {
	cfg := buildFromSrc(t, `if x > 0 {
	a()
} else {
	b()
}`)
	var cond *cfgBlock
	for _, blk := range cfg.reachable() {
		if blk.branchCond != nil {
			cond = blk
			break
		}
	}
	if cond == nil {
		t.Fatal("no block with a branchCond")
	}
	if len(cond.succs) < 2 {
		t.Fatalf("conditional block has %d successors, want 2", len(cond.succs))
	}
	if cond.succs[0].kind != "if.then" {
		t.Errorf("succs[0] = %q, want the true edge (if.then)", cond.succs[0].kind)
	}
	if cond.succs[1].kind != "if.else" {
		t.Errorf("succs[1] = %q, want the false edge (if.else)", cond.succs[1].kind)
	}
}

// TestCFGTerminalCall: a call matched by the terminal matcher ends its
// block with an edge to panicExit, not to exit.
func TestCFGTerminalCall(t *testing.T) {
	src := "package p\nfunc f() {\n" + `if bad() {
	die()
}
ok()` + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	cfg := buildCFG(fd.Body, func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "die"
	})
	foundPanicEdge := false
	for _, blk := range cfg.reachable() {
		for _, s := range blk.succs {
			if s == cfg.panicExit {
				foundPanicEdge = true
			}
		}
	}
	if !foundPanicEdge {
		t.Error("no edge to panicExit for a terminal call")
	}
	if len(cfg.panicExit.succs) != 0 {
		t.Errorf("panicExit has successors: %v", cfg.panicExit.succs)
	}
}

package store

import (
	"bytes"
	"errors"
	"testing"

	"github.com/cwru-db/fgs/internal/core"
)

// testRecords is a small mixed batch stream for codec tests: inserts,
// deletes, empty sides, unicode labels, and large IDs.
func testRecords() []Record {
	return []Record{
		{Epoch: 1, Delta: core.Delta{Insert: []core.EdgeUpdate{{From: 0, To: 1, Label: "recommend"}}}},
		{Epoch: 2, Delta: core.Delta{
			Insert: []core.EdgeUpdate{{From: 3, To: 4, Label: "corev"}, {From: 4, To: 3, Label: "corev"}},
			Delete: []core.EdgeUpdate{{From: 0, To: 1, Label: "recommend"}},
		}},
		{Epoch: 3, Delta: core.Delta{Delete: []core.EdgeUpdate{{From: 7, To: 2, Label: "звязок"}}}},
		{Epoch: 1 << 40, Delta: core.Delta{Insert: []core.EdgeUpdate{{From: 1<<31 - 1, To: 0, Label: ""}}}},
	}
}

// encodeStream frames recs back to back, as they would land in a segment
// after the magic.
func encodeStream(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

// TestRecordRoundTrip decodes what appendRecord framed and requires the
// re-encoding to reproduce the original bytes — a stricter check than field
// equality, since it also pins the canonical encoding.
func TestRecordRoundTrip(t *testing.T) {
	for i, rec := range testRecords() {
		enc := appendRecord(nil, rec)
		got, n, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("record %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if got.Epoch != rec.Epoch {
			t.Fatalf("record %d: epoch %d, want %d", i, got.Epoch, rec.Epoch)
		}
		if reenc := appendRecord(nil, got); !bytes.Equal(reenc, enc) {
			t.Fatalf("record %d: re-encoding differs from original", i)
		}
	}
}

// TestDecodeRecordsStream walks a multi-record stream and checks order,
// offsets, and a clean end-of-stream.
func TestDecodeRecordsStream(t *testing.T) {
	recs := testRecords()
	data := encodeStream(recs)
	var got []Record
	good, err := decodeRecords(data, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(data)) {
		t.Fatalf("good offset %d, want %d", good, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Epoch != recs[i].Epoch {
			t.Fatalf("record %d: epoch %d, want %d", i, got[i].Epoch, recs[i].Epoch)
		}
	}
}

// TestDecodeRecordsTornTail cuts the stream mid-record: the walk must report
// errTornRecord and a good offset exactly at the last intact boundary.
func TestDecodeRecordsTornTail(t *testing.T) {
	recs := testRecords()
	intact := encodeStream(recs[:2])
	full := encodeStream(recs)
	for cut := len(intact) + 1; cut < len(intact)+4 && cut < len(full); cut++ {
		torn := full[:cut]
		var n int
		good, err := decodeRecords(torn, func(Record) error { n++; return nil })
		if !errors.Is(err, errTornRecord) {
			t.Fatalf("cut %d: err = %v, want errTornRecord", cut, err)
		}
		if good != int64(len(intact)) || n != 2 {
			t.Fatalf("cut %d: good=%d records=%d, want good=%d records=2", cut, good, n, len(intact))
		}
	}
}

// TestDecodeRecordsCorrupt flips one payload byte: the CRC must reject the
// record as torn without surfacing a partially decoded batch.
func TestDecodeRecordsCorrupt(t *testing.T) {
	data := encodeStream(testRecords())
	data[len(data)/2] ^= 0x40
	var seen []Record
	_, err := decodeRecords(data, func(r Record) error { seen = append(seen, r); return nil })
	if !errors.Is(err, errTornRecord) {
		t.Fatalf("err = %v, want errTornRecord", err)
	}
	for _, r := range seen {
		if reenc := appendRecord(nil, r); len(reenc) == 0 {
			t.Fatal("decoded record does not re-encode")
		}
	}
}

// TestDecodeRecordsFnErr: a reader error must halt the walk and pass
// through unwrapped (it is not corruption).
func TestDecodeRecordsFnErr(t *testing.T) {
	data := encodeStream(testRecords())
	boom := errors.New("boom")
	_, err := decodeRecords(data, func(Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if errors.Is(err, errTornRecord) {
		t.Fatal("callback error misreported as torn record")
	}
}

// FuzzWALDecode feeds arbitrary bytes to the record decoder. The decoder
// must never panic, never report a good offset outside the input, and
// accept a clean stream end if and only if it consumed everything.
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeStream(testRecords()))
	f.Add(encodeStream(testRecords())[:10]) // torn mid-record
	corrupt := encodeStream(testRecords())
	corrupt[3] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // huge length prefix
	f.Add([]byte{0x00})                                                       // empty payload, missing CRC
	f.Fuzz(func(t *testing.T, data []byte) {
		good, err := decodeRecords(data, func(r Record) error {
			// Decoded records must survive re-encoding (bounds were checked).
			appendRecord(nil, r)
			return nil
		})
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0, %d]", good, len(data))
		}
		if err == nil && good != int64(len(data)) {
			t.Fatalf("clean end at %d with %d bytes unconsumed", good, int64(len(data))-good)
		}
	})
}

// TestSegmentNames pins the name codec both ways.
func TestSegmentNames(t *testing.T) {
	for _, e := range []uint64{0, 1, 255, 1 << 40} {
		name := segmentName(e)
		got, ok := parseSegmentName(name)
		if !ok || got != e {
			t.Fatalf("segment name %q round-trips to (%d, %v)", name, got, ok)
		}
		sname := snapshotName(e)
		sgot, ok := parseSnapshotName(sname)
		if !ok || sgot != e {
			t.Fatalf("snapshot name %q round-trips to (%d, %v)", sname, sgot, ok)
		}
	}
	for _, bad := range []string{"wal-xyz.seg", "wal-.seg", "snap-12.seg", "MANIFEST", "wal-0000000000000001.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName accepted %q", bad)
		}
	}
}

// TestEdgeLabelCap: a record whose label length exceeds maxWALLabel must be
// rejected even when the CRC is honest (defense against misuse, not just
// corruption).
func TestEdgeLabelCap(t *testing.T) {
	rec := Record{Epoch: 1, Delta: core.Delta{Insert: []core.EdgeUpdate{{
		From: 0, To: 1, Label: string(make([]byte, maxWALLabel+1)),
	}}}}
	enc := appendRecord(nil, rec)
	if _, _, err := decodeRecord(enc); err == nil {
		t.Fatal("oversized label decoded")
	}
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// labelEscaper escapes a label value per the exposition format: backslash,
// double quote, and line feed — and nothing else (Go's %q would escape
// tabs and non-ASCII into sequences a Prometheus parser reads literally).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text: backslash and line feed only (quotes are
// legal in help text).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// promLabels renders a label set as {k="v",...}, or "" when empty.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, 0, len(all))
	for _, l := range all {
		parts = append(parts, l.Key+`="`+labelEscaper.Replace(l.Val)+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the metric snapshot in the Prometheus text
// exposition format (v0.0.4). HELP/TYPE headers are emitted once per metric
// name; histograms expand into _bucket/_sum/_count series.
func WritePrometheus(w io.Writer, metrics []Metric) error {
	seenHeader := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if !seenHeader[m.Name] {
			seenHeader[m.Name] = true
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, helpEscaper.Replace(m.Help)); err != nil {
					return err
				}
			}
			typ := "counter"
			switch m.Kind {
			case KindGauge:
				typ = "gauge"
			case KindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ); err != nil {
				return err
			}
		}
		switch m.Kind {
		case KindHistogram:
			h := m.Hist
			if h == nil {
				h = &HistValue{}
			}
			for i, c := range h.Buckets {
				le := "+Inf"
				if i < HistNumBuckets {
					le = fmt.Sprintf("%d", HistBound(i))
				}
				// OpenMetrics exemplar: "value # {labels} exemplar-value".
				// Plain 0.0.4 scrapes of our own exporters tolerate it; the
				// trace ID it carries is the whole point of the series.
				exemplar := ""
				if i < len(m.Exemplars) && m.Exemplars[i] != nil {
					exemplar = fmt.Sprintf(" # %s %g", promLabels(m.Exemplars[i].Labels), m.Exemplars[i].Value)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", m.Name, promLabels(m.Labels, Label{Key: "le", Val: le}), c, exemplar); err != nil {
					return err
				}
			}
			if len(h.Buckets) == 0 {
				if _, err := fmt.Fprintf(w, "%s_bucket%s 0\n", m.Name, promLabels(m.Labels, Label{Key: "le", Val: "+Inf"})); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, promLabels(m.Labels), h.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels), h.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %g\n", m.Name, promLabels(m.Labels), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// PhaseMetrics aggregates the trace's completed spans by name into
// fgs_phase_seconds_total / fgs_phase_spans_total series, so phase timings
// land in the same exposition as the runtime counters. Nil-safe.
func PhaseMetrics(t *Trace) []Metric {
	recs := t.Records()
	type agg struct {
		secs  float64
		count int64
	}
	byName := make(map[string]*agg)
	var names []string
	for _, r := range recs {
		if !r.Done {
			continue
		}
		a, ok := byName[r.Name]
		if !ok {
			a = &agg{}
			byName[r.Name] = a
			names = append(names, r.Name)
		}
		a.secs += r.Dur.Seconds()
		a.count++
	}
	sort.Strings(names)
	out := make([]Metric, 0, 2*len(names))
	for _, n := range names {
		a := byName[n]
		out = append(out, Metric{
			Name:   "fgs_phase_seconds_total",
			Help:   "Cumulative wall time per span name.",
			Kind:   KindCounter,
			Labels: []Label{{Key: "phase", Val: n}},
			Value:  a.secs,
		})
		out = append(out, Metric{
			Name:   "fgs_phase_spans_total",
			Help:   "Number of completed spans per span name.",
			Kind:   KindCounter,
			Labels: []Label{{Key: "phase", Val: n}},
			Value:  float64(a.count),
		})
	}
	return out
}

// FormatTable renders a compact fixed-width table of the metric snapshot for
// the CLIs' end-of-run summary. Histograms show count/sum/mean.
func FormatTable(metrics []Metric) string {
	if len(metrics) == 0 {
		return ""
	}
	var b strings.Builder
	width := 0
	keys := make([]string, len(metrics))
	for i, m := range metrics {
		keys[i] = m.Name + promLabels(m.Labels)
		if len(keys[i]) > width {
			width = len(keys[i])
		}
	}
	for i, m := range metrics {
		switch m.Kind {
		case KindHistogram:
			h := m.Hist
			if h == nil {
				h = &HistValue{}
			}
			mean := 0.0
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-*s  count=%d sum=%d mean=%.2f\n", width, keys[i], h.Count, h.Sum, mean)
		default:
			fmt.Fprintf(&b, "  %-*s  %g\n", width, keys[i], m.Value)
		}
	}
	return b.String()
}

package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // touch a: b becomes the LRU tail
		t.Fatal("a missing")
	}
	c.put("c", []byte("C")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if body, ok := c.get("a"); !ok || !bytes.Equal(body, []byte("A")) {
		t.Fatal("a lost or corrupted")
	}
	if body, ok := c.get("c"); !ok || !bytes.Equal(body, []byte("C")) {
		t.Fatal("c lost or corrupted")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hit/miss %+v", st)
	}
}

func TestCachePutExistingRefreshes(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A1"))
	c.put("b", []byte("B"))
	c.put("a", []byte("A2")) // racing identical compute: refresh, not duplicate
	c.put("c", []byte("C"))  // evicts b, not a
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived; refresh did not move a to the front")
	}
	if body, ok := c.get("a"); !ok || !bytes.Equal(body, []byte("A2")) {
		t.Fatalf("a = %q", body)
	}
}

func TestCacheNilDisabled(t *testing.T) {
	var c *resultCache // what newResultCache returns for capacity <= 0
	if newResultCache(0) != nil || newResultCache(-5) != nil {
		t.Fatal("capacity <= 0 must disable the cache")
	}
	c.put("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.stats(); st != (CacheStats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if ms := c.ObsMetrics(); len(ms) != 4 {
		t.Fatalf("nil ObsMetrics len %d", len(ms))
	}
}

func TestCacheEpochKeysDisjoint(t *testing.T) {
	c := newResultCache(8)
	c.put(epochKey("k", 0), []byte("old"))
	c.put(epochKey("k", 1), []byte("new"))
	if body, _ := c.get(epochKey("k", 0)); !bytes.Equal(body, []byte("old")) {
		t.Fatalf("epoch 0 entry = %q", body)
	}
	if body, _ := c.get(epochKey("k", 1)); !bytes.Equal(body, []byte("new")) {
		t.Fatalf("epoch 1 entry = %q", body)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(16)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.put(key, []byte(key))
				if body, ok := c.get(key); ok && string(body) != key {
					panic("cache returned wrong body")
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if st := c.stats(); st.Entries > 16 {
		t.Fatalf("entries %d exceed capacity", st.Entries)
	}
}

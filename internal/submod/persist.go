package submod

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/cwru-db/fgs/internal/graph"
)

// Durability support (DESIGN.md §15): fgstore snapshots checkpoint the
// streaming selector so crash recovery reproduces the maintainer's future
// decisions exactly, not just its current outputs.
//
// Most utilities need no state of their own in the checkpoint: RatingSum,
// Cardinality, and AttributeDiversity are pure functions of the selected set
// (their auxiliary tables — ratings, attribute values — are fixed at
// construction and untouched by edge updates), so Reset + Add over the
// restored selection rebuilds them exactly. NeighborCoverage is the
// exception: its reference counts record each member's neighbors *as of the
// moment it was added*, and edges inserted later do not retroactively update
// them — the state depends on the interleaving of Add calls and graph
// mutations, which replay from the final graph cannot reproduce. Such
// utilities implement StateCodec and are checkpointed verbatim.

// StateCodec is the optional interface a Utility implements when its
// internal state is not a pure function of (current graph, selected set).
// SaveState must be deterministic (no map-iteration-ordered output) and
// LoadState must restore exactly what SaveState wrote, including the current
// set, so the restorer skips the Reset+Add rebuild entirely.
type StateCodec interface {
	SaveState(w io.Writer) error
	LoadState(r io.Reader) error
}

// StreamerState is a Streamer checkpoint: everything future Process and
// PostSelect calls depend on. Weights is parallel to Selected (the weight
// w(v) recorded when v was accepted — the swap rule compares against the
// recorded weight, not a recomputed marginal); Buckets holds the rejected
// nodes per group in arrival order (PostSelect's candidate pool). Utility
// carries the opaque StateCodec bytes, nil when the utility rebuilds from
// the selection.
type StreamerState struct {
	Selected []graph.NodeID
	Weights  []float64
	Buckets  [][]graph.NodeID
	Utility  []byte
}

// Checkpoint captures the streamer's state. The returned slices are copies;
// the streamer remains live and unchanged.
func (s *Streamer) Checkpoint() (*StreamerState, error) {
	st := &StreamerState{
		Selected: append([]graph.NodeID(nil), s.order...),
		Weights:  make([]float64, len(s.order)),
		Buckets:  make([][]graph.NodeID, len(s.buckets)),
	}
	for i, v := range s.order {
		st.Weights[i] = s.weights[v]
	}
	for gi, b := range s.buckets {
		st.Buckets[gi] = append([]graph.NodeID(nil), b...)
	}
	if sc, ok := s.util.(StateCodec); ok {
		var buf bytes.Buffer
		if err := sc.SaveState(&buf); err != nil {
			return nil, fmt.Errorf("submod: checkpoint utility: %w", err)
		}
		st.Utility = buf.Bytes()
	}
	return st, nil
}

// ResumeStreamer rebuilds a streamer from a checkpoint. The utility's state
// is restored through its StateCodec when the checkpoint carries bytes,
// otherwise by re-adding the selection in order; either way the utility's
// current set ends up equal to st.Selected.
func ResumeStreamer(groups *Groups, util Utility, n int, st *StreamerState) (*Streamer, error) {
	if len(st.Weights) != len(st.Selected) {
		return nil, fmt.Errorf("submod: resume: %d weights for %d selected nodes", len(st.Weights), len(st.Selected))
	}
	if len(st.Buckets) != 0 && len(st.Buckets) != groups.Len() {
		return nil, fmt.Errorf("submod: resume: %d buckets for %d groups", len(st.Buckets), groups.Len())
	}
	s := NewStreamer(groups, util, n) // calls util.Reset()
	if st.Utility != nil {
		sc, ok := util.(StateCodec)
		if !ok {
			return nil, fmt.Errorf("submod: resume: checkpoint has utility state but %T implements no StateCodec", util)
		}
		if err := sc.LoadState(bytes.NewReader(st.Utility)); err != nil {
			return nil, fmt.Errorf("submod: resume utility: %w", err)
		}
	}
	for i, v := range st.Selected {
		gi, ok := groups.IndexOf(v)
		if !ok {
			return nil, fmt.Errorf("submod: resume: selected node %d is in no group", v)
		}
		if s.selected.Has(v) {
			return nil, fmt.Errorf("submod: resume: node %d selected twice", v)
		}
		if st.Utility == nil {
			s.util.Add(v)
		}
		s.selected.Add(v)
		s.order = append(s.order, v)
		s.counts[gi]++
		s.weights[v] = st.Weights[i]
	}
	for gi, b := range st.Buckets {
		s.buckets[gi] = append([]graph.NodeID(nil), b...)
	}
	return s, nil
}

// --- NeighborCoverage state codec ---------------------------------------

// SaveState implements StateCodec: reference counts (sparse, in node-ID
// order — a slice scan, so the output is deterministic), the covered-node
// count, and the current set.
func (nc *NeighborCoverage) SaveState(w io.Writer) error {
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	nonzero := 0
	for _, r := range nc.refs {
		if r != 0 {
			nonzero++
		}
	}
	if err := put(uint64(nonzero)); err != nil {
		return err
	}
	for v, r := range nc.refs {
		if r == 0 {
			continue
		}
		if err := put(uint64(v)); err != nil {
			return err
		}
		if err := put(uint64(r)); err != nil {
			return err
		}
	}
	if err := put(uint64(nc.value)); err != nil {
		return err
	}
	if err := put(uint64(nc.cur.Count())); err != nil {
		return err
	}
	var ierr error
	nc.cur.Iterate(func(v graph.NodeID) {
		if ierr == nil {
			ierr = put(uint64(v))
		}
	})
	return ierr
}

// LoadState implements StateCodec.
func (nc *NeighborCoverage) LoadState(r io.Reader) error {
	br, ok := r.(io.ByteReader)
	if !ok {
		return fmt.Errorf("submod: NeighborCoverage.LoadState needs an io.ByteReader")
	}
	get := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("submod: load coverage state %s: %w", what, err)
		}
		return v, nil
	}
	nc.Reset()
	n := nc.g.NumNodes()
	if len(nc.refs) < n {
		nc.refs = make([]int32, n)
		nc.stamp = make([]uint32, n)
		nc.epoch = 0
	}
	nonzero, err := get("ref count")
	if err != nil {
		return err
	}
	for i := uint64(0); i < nonzero; i++ {
		v, err := get("ref node")
		if err != nil {
			return err
		}
		c, err := get("ref value")
		if err != nil {
			return err
		}
		if v >= uint64(len(nc.refs)) {
			return fmt.Errorf("submod: load coverage state: ref node %d out of range", v)
		}
		nc.refs[v] = int32(c)
	}
	value, err := get("value")
	if err != nil {
		return err
	}
	nc.value = int(value)
	curLen, err := get("current-set size")
	if err != nil {
		return err
	}
	for i := uint64(0); i < curLen; i++ {
		v, err := get("current-set node")
		if err != nil {
			return err
		}
		if v >= uint64(n) {
			return fmt.Errorf("submod: load coverage state: selected node %d out of range", v)
		}
		nc.cur.Add(graph.NodeID(v))
	}
	return nil
}

package experiments

import (
	"strings"
	"testing"
)

// The full sweeps (Fig. 8(c)-8(f), 9(b)-9(d)) run in the benchmark harness;
// the tests here verify the harness wiring and the headline shape claims of
// Exp-1 and the case studies on the scale-1 datasets.

func TestDatasetCaching(t *testing.T) {
	s := New(1, 42)
	a := s.Dataset("DBP")
	b := s.Dataset("DBP")
	if a != b {
		t.Fatal("dataset not cached")
	}
	if s.Dataset("LKI") == nil || s.Dataset("Cite") == nil {
		t.Fatal("datasets missing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset should panic")
		}
	}()
	s.Dataset("nope")
}

func TestScaleClamped(t *testing.T) {
	if s := New(0, 1); s.Scale != 1 {
		t.Fatalf("scale = %d, want clamp to 1", s.Scale)
	}
}

// The headline claim of Fig. 8(a): the fair algorithms meet every group
// constraint (C_eps = 0) while no baseline does on any dataset.
func TestFig8aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Exp-1 run in -short mode")
	}
	s := New(1, 42)
	rows, err := s.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 3 datasets x 6 algorithms
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	for _, r := range rows {
		fair := r.Algo == "APXFGS" || r.Algo == "Online-APXFGS"
		if fair && r.Value != 0 {
			t.Errorf("%s on %s has coverage error %.3f, want 0", r.Algo, r.Dataset, r.Value)
		}
		if !fair && r.Value <= 0 {
			t.Errorf("baseline %s on %s has coverage error %.3f, want > 0", r.Algo, r.Dataset, r.Value)
		}
	}
}

// Fig. 8(b) shape: APXFGS compresses better than MMPG (which inflates
// patterns) on every dataset, and everything lands in (0, 1].
func TestFig8bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Exp-1 run in -short mode")
	}
	s := New(1, 42)
	rows, err := s.Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		if r.Value <= 0 || r.Value > 1 {
			t.Errorf("%s/%s ratio %.3f out of (0,1]", r.Dataset, r.Algo, r.Value)
		}
		byKey[r.Dataset+"/"+r.Algo] = r.Value
	}
	for _, ds := range []string{"DBP", "LKI", "Cite"} {
		if byKey[ds+"/APXFGS"] >= byKey[ds+"/MMPG"] {
			t.Errorf("%s: APXFGS ratio %.3f not below MMPG %.3f", ds, byKey[ds+"/APXFGS"], byKey[ds+"/MMPG"])
		}
	}
}

// Exp-3 wiring: ratios are sane at every checkpoint and Inc-FGS is faster
// than recomputation on the later (larger) checkpoints.
func TestExp3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("stream run in -short mode")
	}
	s := New(1, 42)
	ratios, times, err := s.exp3(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != 9 || len(times) != 6 { // 3 checkpoints x {3 ratio, 2 time} algos
		t.Fatalf("rows: %d ratios, %d times", len(ratios), len(times))
	}
	for _, r := range ratios {
		if r.Value <= 0 || r.Value > 1 {
			t.Errorf("checkpoint %.2f %s ratio %.3f out of range", r.X, r.Algo, r.Value)
		}
	}
	var incLast, apxLast float64
	for _, r := range times {
		if r.X == 1.0 {
			switch r.Algo {
			case "Inc-FGS":
				incLast = r.Value
			case "APXFGS":
				apxLast = r.Value
			}
		}
	}
	if incLast > apxLast*2 {
		t.Errorf("Inc-FGS final batch (%vms) much slower than recompute (%vms)", incLast, apxLast)
	}
}

func TestCaseTalentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("case study in -short mode")
	}
	s := New(1, 42)
	rows, err := s.CaseTalent()
	if err != nil {
		t.Fatal(err)
	}
	get := func(algo, metric string) float64 {
		for _, r := range rows {
			if r.Algo == algo && r.Metric == metric {
				return r.Value
			}
		}
		t.Fatalf("missing row %s/%s", algo, metric)
		return 0
	}
	fullMale := get("P8-full", "male_pct")
	sumMale := get("summary", "male_pct")
	if fullMale < 65 {
		t.Errorf("full query male%% = %.1f, expected skew toward ~77", fullMale)
	}
	if sumMale < 40 || sumMale > 60 {
		t.Errorf("summary male%% = %.1f, expected balanced", sumMale)
	}
	if get("summary", "candidates") > get("P8-full", "candidates") {
		t.Error("summary should be smaller than the full answer")
	}
	if get("view-query", "speedup_x") <= 1 {
		t.Error("view-based query should be faster than the full query")
	}
}

func TestCasePandemicShape(t *testing.T) {
	if testing.Short() {
		t.Skip("case study in -short mode")
	}
	s := New(1, 42)
	rows, err := s.CasePandemic()
	if err != nil {
		t.Fatal(err)
	}
	get := func(algo string) float64 {
		for _, r := range rows {
			if r.Algo == algo && r.Metric == "infected" {
				return r.Value
			}
		}
		t.Fatalf("missing %s", algo)
		return 0
	}
	none := get("no-vaccine")
	a := get("alloc-80-20")
	b := get("alloc-20-80")
	if a >= none || b >= none {
		t.Errorf("vaccination did not reduce infections: none=%.0f 80/20=%.0f 20/80=%.0f", none, a, b)
	}
}

func TestPandemicPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("pattern mining in -short mode")
	}
	s := New(1, 42)
	sum, err := s.PandemicPatterns()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Patterns) == 0 {
		t.Fatal("no contact patterns mined")
	}
}

func TestFormatRows(t *testing.T) {
	rows := []Row{
		{Exp: "figX", Dataset: "LKI", Algo: "APXFGS", Metric: "m", Value: 0.5},
		{Exp: "figX", Dataset: "DBP", Algo: "Grami", XLabel: "k", X: 10, Metric: "m", Value: 0.25},
	}
	out := FormatRows(rows)
	if !strings.Contains(out, "== figX ==") || !strings.Contains(out, "k=10") || !strings.Contains(out, "0.5000") {
		t.Fatalf("FormatRows = %q", out)
	}
	// DBP sorts before LKI.
	if strings.Index(out, "DBP") > strings.Index(out, "LKI") {
		t.Fatal("rows not sorted by dataset")
	}
}

package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/cwru-db/fgs/internal/obs"
)

// retryAfterSeconds is the backpressure hint on 503 responses: the queue
// drains at compute speed, so "soon" is the honest answer; clients with
// jittered retries spread the next wave.
const retryAfterSeconds = "1"

// routes mounts the HTTP surface. Method-qualified patterns (Go 1.22
// ServeMux) give non-matching methods 405 for free. The /debug/fgs tree is
// the live introspection surface (DESIGN.md §13): read-only views of the
// MVCC/cache/fairness/flight-recorder state for operators.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/summarize", s.instrument("summarize", s.handleSummarize(false)))
	mux.HandleFunc("POST /v1/summarize-k", s.instrument("summarize-k", s.handleSummarize(true)))
	mux.HandleFunc("POST /v1/view", s.instrument("view", s.handleView))
	mux.HandleFunc("POST /v1/workload", s.instrument("workload", s.handleWorkload))
	mux.HandleFunc("POST /v1/update", s.instrument("update", s.handleUpdate))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/fgs/views", s.instrument("debug-views", s.handleDebugViews))
	mux.HandleFunc("GET /debug/fgs/cache", s.instrument("debug-cache", s.handleDebugCache))
	mux.HandleFunc("GET /debug/fgs/fairness", s.instrument("debug-fairness", s.handleDebugFairness))
	mux.HandleFunc("GET /debug/fgs/flightrecorder", s.instrument("debug-flightrecorder", s.handleDebugFlight))
	s.mux = mux
}

// setEpochHeader exposes the epoch a response was computed at as a header,
// so cache/epoch behavior is debuggable from access logs alone (the epoch
// is also in the body, but bodies do not reach logs).
func setEpochHeader(w http.ResponseWriter, epoch uint64) {
	w.Header().Set("X-Fgs-Epoch", strconv.FormatUint(epoch, 10))
}

// serveCompute is the shared request pipeline for the compute endpoints:
// drain check → cache probe → admission (with deadline) → compute → cache
// fill → respond, each stage timed against the request trace. cacheReq,
// when non-nil, is the normalized request whose canonical encoding keys the
// cache; pass nil for uncacheable endpoints (writes).
func (s *Server) serveCompute(w http.ResponseWriter, r *http.Request, endpoint string, cacheReq any, fn func(rt *obs.ReqTrace) (resp any, epoch uint64, err error)) {
	rt := obs.ReqTraceFrom(r.Context())
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	var key string
	if cacheReq != nil && s.cache != nil {
		csp := rt.Start(obs.StageCache)
		k, err := canonicalKey(endpoint, cacheReq)
		if err != nil {
			csp.End()
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		key = k
		probeEpoch := s.epoch.Load()
		body, ok := s.cache.get(epochKey(key, probeEpoch))
		csp.End()
		if ok {
			rt.SetCacheHit(true)
			rt.SetEpoch(probeEpoch)
			w.Header().Set("X-Fgs-Cache", "hit")
			setEpochHeader(w, probeEpoch)
			writeRaw(w, http.StatusOK, body)
			return
		}
	}

	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	asp := rt.Start(obs.StageAdmission)
	release, err := s.adm.acquire(ctx)
	asp.End()
	switch {
	case errors.Is(err, errSaturated):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, errors.New("server: deadline expired while queued"))
		return
	case err != nil: // client disconnected while queued
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer release()
	if s.testHook != nil {
		s.testHook(endpoint)
	}

	csp := rt.Start(obs.StageCompute)
	resp, epoch, err := fn(rt)
	csp.End()
	if err != nil {
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	rt.SetEpoch(epoch)
	esp := rt.Start(obs.StageEncode)
	body, err := marshalBody(resp)
	esp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if key != "" {
		// Stored under the epoch captured inside the compute's lock scope, so
		// a write racing this response can only leave the entry under an old
		// epoch — unreachable, never wrong.
		s.cache.put(epochKey(key, epoch), body)
	}
	setEpochHeader(w, epoch)
	writeRaw(w, http.StatusOK, body)
}

func (s *Server) handleSummarize(k bool) http.HandlerFunc {
	endpoint := "summarize"
	if k {
		endpoint = "summarize-k"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		req := &SummarizeRequest{}
		if !s.decodeRequest(w, r, req) {
			return
		}
		if err := s.normalizeSummarize(req, k); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.serveCompute(w, r, endpoint, req, func(rt *obs.ReqTrace) (any, uint64, error) {
			return s.computeSummarize(rt, req, k)
		})
	}
}

// normalizeSummarize applies server defaults and validates, so the
// canonical cache key collapses equivalent requests.
func (s *Server) normalizeSummarize(req *SummarizeRequest, k bool) error {
	if req.R < 0 || req.N < 0 || req.K < 0 {
		return errors.New("r, k, and n must be non-negative")
	}
	if req.R == 0 {
		req.R = s.cfg.R
	}
	if req.N == 0 {
		req.N = s.cfg.N
	}
	if k {
		if req.K == 0 {
			req.K = s.cfg.K
		}
		if req.K <= 0 {
			return errors.New("summarize-k needs k > 0 (in the request or the server config)")
		}
	} else {
		req.K = 0
	}
	if req.Utility == "" {
		req.Utility = s.cfg.Utility
	}
	return nil
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	req := &ViewRequest{}
	if !s.decodeRequest(w, r, req) {
		return
	}
	if req.Pattern == "" {
		writeError(w, http.StatusBadRequest, errors.New("view needs a pattern"))
		return
	}
	if req.EmbedCap == 0 {
		req.EmbedCap = s.cfg.EmbedCap
	}
	s.serveCompute(w, r, "view", req, func(rt *obs.ReqTrace) (any, uint64, error) {
		return s.computeView(rt, req)
	})
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	req := &WorkloadRequest{}
	if !s.decodeRequest(w, r, req) {
		return
	}
	if req.EmbedCap == 0 {
		req.EmbedCap = s.cfg.EmbedCap
	}
	s.serveCompute(w, r, "workload", req, func(rt *obs.ReqTrace) (any, uint64, error) {
		return s.computeWorkload(rt, req)
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	req := &UpdateRequest{}
	if !s.decodeRequest(w, r, req) {
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("update needs at least one insert or delete"))
		return
	}
	s.serveCompute(w, r, "update", nil, func(rt *obs.ReqTrace) (any, uint64, error) {
		resp, err := s.computeUpdate(rt, req)
		if err != nil {
			return nil, 0, err
		}
		return resp, resp.Epoch, nil
	})
}

// handleStats serves the engine snapshot. It bypasses admission — it only
// reads counters and sizes, and must stay responsive when the slots are
// saturated (that is when operators look at it).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rt := obs.ReqTraceFrom(r.Context())
	resp, epoch, err := s.computeStats(rt)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	rt.SetEpoch(epoch)
	setEpochHeader(w, epoch)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok"})
}

type healthResponse struct {
	Status string `json:"status"`
}

// handleMetrics renders the Prometheus exposition: the engine counters
// (cache, admission, per-endpoint latency) plus phase metrics from the
// trace when one is attached.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := s.reg.Gather()
	if s.tr != nil {
		ms = obs.MergeMetrics(append(ms, obs.PhaseMetrics(s.tr)...))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WritePrometheus(w, ms); err != nil {
		// Headers are gone; all we can do is log-level reporting via the
		// error counter (instrument sees 200 — the body is already partial).
		_ = err
	}
}

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if err := decodeStrict(body, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body) //lint:allow errdrop a failed response write means the client is gone; there is no recovery and the status is already committed
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalBody(v)
	if err != nil {
		body = []byte(`{"error":"encoding failure"}` + "\n")
		status = http.StatusInternalServerError
	}
	writeRaw(w, status, body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// The write-ahead log: segmented files of length-prefixed records, one per
// applied graph-changing update batch. Framing follows the FGSB conventions
// (uvarints, length-prefixed strings) with a CRC32C trailer per record:
//
//	segment  = magic "FGSW\x01" record*
//	record   = uvarint(len(payload)) payload crc32c(payload)·4 LE
//	payload  = uvarint(epoch)
//	           uvarint(nInsert) edge*   uvarint(nDelete) edge*
//	edge     = uvarint(from) uvarint(to) uvarint(len(label)) label
//
// Segments are named wal-%016x.seg by the epoch of their first record, so a
// lexicographic directory listing is also the epoch order and recovery can
// bound each segment's contents by its successor's name.

// walMagic heads every WAL segment file.
var walMagic = []byte{'F', 'G', 'S', 'W', 0x01}

// castagnoli is the CRC32C table used for record and snapshot checksums
// (same polynomial as iSCSI/ext4; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one durable unit: the delta of an applied /v1/update batch and
// the epoch the batch advanced the graph to. Batches that change nothing
// (applied == 0) are never logged — they do not advance the epoch and
// replaying them is a no-op by construction.
type Record struct {
	Epoch uint64
	Delta core.Delta
}

// maxWALLabel bounds one edge label's length, mirroring the FGSB codec's
// string cap, so a corrupt length cannot drive a huge allocation before the
// CRC gets a chance to reject the record.
const maxWALLabel = 1 << 20

// appendRecord appends the framed record to buf and returns it.
func appendRecord(buf []byte, rec Record) []byte {
	payload := appendPayload(nil, rec)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
}

func appendPayload(buf []byte, rec Record) []byte {
	buf = binary.AppendUvarint(buf, rec.Epoch)
	buf = appendEdges(buf, rec.Delta.Insert)
	return appendEdges(buf, rec.Delta.Delete)
}

func appendEdges(buf []byte, edges []core.EdgeUpdate) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
		buf = binary.AppendUvarint(buf, uint64(len(e.Label)))
		buf = append(buf, e.Label...)
	}
	return buf
}

// errTornRecord reports a record that cannot be decoded: short length
// prefix, payload shorter than declared, checksum mismatch, or malformed
// payload. In the final segment this is the expected signature of a crash
// mid-append and recovery truncates it away; anywhere else it is corruption.
var errTornRecord = errors.New("store: torn or corrupt WAL record")

// decodeRecords walks the record stream in data (magic already stripped),
// invoking fn for each intact record. It returns the offset just past the
// last intact record; err is nil when the stream ends cleanly at a record
// boundary, errTornRecord-wrapped when trailing bytes do not form one, and
// fn's error (halting the walk) otherwise.
func decodeRecords(data []byte, fn func(Record) error) (int64, error) {
	off := int64(0)
	for int64(len(data)) > off {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return off, fmt.Errorf("%w at offset %d: %v", errTornRecord, off, err)
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += int64(n)
	}
	return off, nil
}

// decodeRecord decodes one framed record from the front of data, returning
// the bytes consumed. Every length is bounds-checked against the remaining
// input before use; the function never panics on arbitrary data (fuzzed by
// FuzzWALDecode).
func decodeRecord(data []byte) (Record, int, error) {
	plen, n := binary.Uvarint(data)
	if n <= 0 {
		return Record{}, 0, errors.New("short length prefix")
	}
	if plen > uint64(len(data)-n) || uint64(len(data)-n)-plen < 4 {
		return Record{}, 0, errors.New("payload extends past end of data")
	}
	payload := data[n : n+int(plen)]
	want := binary.LittleEndian.Uint32(data[n+int(plen):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("checksum mismatch (got %08x want %08x)", got, want)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, n + int(plen) + 4, nil
}

func decodePayload(payload []byte) (Record, error) {
	var rec Record
	var err error
	rec.Epoch, payload, err = getUv(payload, "epoch")
	if err != nil {
		return rec, err
	}
	rec.Delta.Insert, payload, err = getEdges(payload, "insert")
	if err != nil {
		return rec, err
	}
	rec.Delta.Delete, payload, err = getEdges(payload, "delete")
	if err != nil {
		return rec, err
	}
	if len(payload) != 0 {
		return rec, fmt.Errorf("%d trailing payload bytes", len(payload))
	}
	return rec, nil
}

func getUv(data []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("short %s", what)
	}
	return v, data[n:], nil
}

func getEdges(data []byte, what string) ([]core.EdgeUpdate, []byte, error) {
	count, data, err := getUv(data, what+" count")
	if err != nil {
		return nil, nil, err
	}
	// Each edge takes at least 3 bytes, so an honest count is bounded by the
	// remaining payload; reject before allocating.
	if count > uint64(len(data))/3 {
		return nil, nil, fmt.Errorf("%s count %d exceeds payload", what, count)
	}
	edges := make([]core.EdgeUpdate, 0, count)
	for i := uint64(0); i < count; i++ {
		var from, to, llen uint64
		if from, data, err = getUv(data, what+" from"); err != nil {
			return nil, nil, err
		}
		if to, data, err = getUv(data, what+" to"); err != nil {
			return nil, nil, err
		}
		if llen, data, err = getUv(data, what+" label length"); err != nil {
			return nil, nil, err
		}
		if llen > maxWALLabel || llen > uint64(len(data)) {
			return nil, nil, fmt.Errorf("%s label length %d out of range", what, llen)
		}
		edges = append(edges, core.EdgeUpdate{
			From:  graph.NodeID(from),
			To:    graph.NodeID(to),
			Label: string(data[:llen]),
		})
		data = data[llen:]
	}
	return edges, data, nil
}

// --- segment files -------------------------------------------------------

// segmentName renders the file name of the segment whose first record is at
// epoch e.
func segmentName(e uint64) string { return fmt.Sprintf("wal-%016x.seg", e) }

// parseSegmentName extracts the first-record epoch from a segment name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	e, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// listSegments returns the WAL segment file names in dir in epoch order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, ent := range ents {
		if _, ok := parseSegmentName(ent.Name()); ok && !ent.IsDir() {
			out = append(out, ent.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// --- the appender --------------------------------------------------------

// wal is the append side of the log: one active segment file, a sticky
// error, and the fsync machinery for the three durability policies. All
// fields behind mu; the group-commit flusher is the only other goroutine.
type wal struct {
	dir      string
	policy   string
	window   time.Duration
	segBytes int64
	clock    obs.Clock

	mu   sync.Mutex
	cond *sync.Cond // group mode: appenders wait for syncedSeq to cover them
	f    *os.File   // active segment; nil until the first append
	size int64      // bytes written to the active segment
	err  error      // sticky: first write/sync failure; the log is dead after
	// rollNext forces the next append into a fresh segment regardless of
	// size — set after a snapshot commit so the pre-snapshot segment becomes
	// collectable at the next commit.
	rollNext  bool
	appendSeq int64 // appends issued
	syncedSeq int64 // appends covered by a completed fsync
	closed    bool

	stop chan struct{} // closes the flusher
	done chan struct{} // flusher exited

	// Instruments (read by Store.ObsMetrics).
	appends  obs.Counter
	bytes    obs.Counter
	fsyncs   obs.Counter
	fsyncUs  obs.Histogram
	segments obs.Gauge
}

func newWAL(dir, policy string, window time.Duration, segBytes int64, clock obs.Clock) *wal {
	w := &wal{dir: dir, policy: policy, window: window, segBytes: segBytes, clock: clock}
	w.cond = sync.NewCond(&w.mu)
	if policy == FsyncGroup {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	}
	return w
}

// reopen resumes appending to an existing segment (recovery found it intact
// or truncated it back to a record boundary).
func (w *wal) reopen(name string, size int64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.f, w.size = f, size
	w.mu.Unlock()
	return nil
}

// append writes one encoded record, honoring the fsync policy before
// returning: per-batch sync, group-commit wait, or fire-and-forget. firstE
// names the segment if this append opens one.
func (w *wal) append(encoded []byte, firstE uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("store: WAL is closed")
	}
	if w.f == nil || w.rollNext || (w.size+int64(len(encoded)) > w.segBytes && w.size > int64(len(walMagic))) {
		if err := w.rollLocked(firstE); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(encoded); err != nil {
		w.fail(err)
		return w.err
	}
	w.size += int64(len(encoded))
	w.appendSeq++
	w.appends.Inc()
	w.bytes.Add(int64(len(encoded)))
	switch w.policy {
	case FsyncBatch:
		w.syncLocked()
		return w.err
	case FsyncGroup:
		seq := w.appendSeq
		for w.syncedSeq < seq && w.err == nil {
			w.cond.Wait()
		}
		return w.err
	default: // FsyncOff
		return nil
	}
}

// rollLocked closes the active segment (after syncing it — records must not
// lose durability by being last in a rolled file) and opens a fresh one
// whose first record will be at epoch firstE.
func (w *wal) rollLocked(firstE uint64) error {
	if w.f != nil {
		if w.policy != FsyncOff {
			w.syncLocked()
		}
		if err := w.f.Close(); err != nil && w.err == nil {
			w.fail(err)
		}
		w.f = nil
		if w.err != nil {
			return w.err
		}
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(firstE)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		w.fail(err)
		return w.err
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close() //lint:allow errdrop (the write error is the one that matters)
		w.fail(err)
		return w.err
	}
	w.f, w.size, w.rollNext = f, int64(len(walMagic)), false
	w.segments.Set(w.segments.Load() + 1)
	return nil
}

// syncLocked fsyncs the active segment under mu, marking every append so
// far durable. Batch mode calls it inline; roll and close call it to seal a
// segment. Group mode's steady-state syncs happen in flushLoop instead,
// off-lock, so appends queue behind a memcpy rather than an fsync.
func (w *wal) syncLocked() {
	if w.f == nil || w.err != nil {
		return
	}
	start := w.clock.Now()
	err := w.f.Sync()
	w.fsyncs.Inc()
	w.fsyncUs.Observe(w.clock.Now().Sub(start).Microseconds())
	if err != nil {
		w.fail(err)
		return
	}
	if w.syncedSeq < w.appendSeq {
		w.syncedSeq = w.appendSeq
		w.cond.Broadcast()
	}
}

// flushLoop is the group-commit flusher: every window it syncs the active
// segment once, covering every append issued before the sync started, and
// wakes the appenders waiting on it. The fsync itself runs off-lock.
func (w *wal) flushLoop() {
	defer close(w.done)
	tick := time.NewTicker(w.window)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
		w.mu.Lock()
		target, f := w.appendSeq, w.f
		if target == w.syncedSeq || f == nil || w.err != nil {
			w.mu.Unlock()
			continue
		}
		w.mu.Unlock()
		start := w.clock.Now()
		err := f.Sync()
		elapsed := w.clock.Now().Sub(start)
		w.mu.Lock()
		w.fsyncs.Inc()
		w.fsyncUs.Observe(elapsed.Microseconds())
		if err != nil {
			// A roll can close f between the snapshot above and the Sync; the
			// roll synced it first, so the records are durable and the error
			// is benign. Anything else kills the log.
			if !errors.Is(err, os.ErrClosed) {
				w.fail(err)
			}
		} else if w.syncedSeq < target {
			w.syncedSeq = target
			w.cond.Broadcast()
		}
		w.mu.Unlock()
	}
}

// fail records the sticky error and frees any waiting appenders. Callers
// hold mu.
func (w *wal) fail(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("store: WAL failed: %w", err)
	}
	w.cond.Broadcast()
}

// close seals the log: stops the flusher, syncs (unless already failed),
// and closes the segment.
func (w *wal) close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.f != nil {
		w.syncLocked()
		if err := w.f.Close(); err != nil && w.err == nil {
			w.fail(err)
		}
		w.f = nil
	}
	return w.err
}

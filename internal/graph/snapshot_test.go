package graph

import (
	"math/rand"
	"testing"
)

// TestSnapshotMatchesGraph builds a random graph and checks the CSR view
// agrees with the Graph on every accessor, edge for edge and in order.
func TestSnapshotMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := New()
	const n = 120
	labels := []string{"user", "movie", "tag"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))], nil)
	}
	elabels := []string{"rates", "follows"}
	for i := 0; i < 600; i++ {
		_ = g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), elabels[rng.Intn(len(elabels))])
	}
	// Remove a few so the snapshot also reflects deletions.
	for i := 0; i < 40; i++ {
		v := NodeID(rng.Intn(n))
		if out := g.Out(v); len(out) > 0 {
			e := out[rng.Intn(len(out))]
			_ = g.RemoveEdge(v, e.To, g.EdgeLabelName(e.Label))
		}
	}

	s := g.Snapshot()
	if s.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", s.NumNodes(), g.NumNodes())
	}
	if s.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", s.NumEdges(), g.NumEdges())
	}
	for v := NodeID(0); int(v) < n; v++ {
		if s.LabelIDOf(v) != g.LabelIDOf(v) {
			t.Fatalf("LabelIDOf(%d) mismatch", v)
		}
		if s.Degree(v) != g.Degree(v) {
			t.Fatalf("Degree(%d) = %d, want %d", v, s.Degree(v), g.Degree(v))
		}
		gout, sout := g.Out(v), s.Out(v)
		if len(gout) != len(sout) {
			t.Fatalf("Out(%d) length mismatch", v)
		}
		for k := range gout {
			if gout[k] != sout[k] {
				t.Fatalf("Out(%d)[%d] = %v, want %v (insertion order must survive)", v, k, sout[k], gout[k])
			}
		}
		gin, sin := g.In(v), s.In(v)
		if len(gin) != len(sin) {
			t.Fatalf("In(%d) length mismatch", v)
		}
		for k := range gin {
			if gin[k] != sin[k] {
				t.Fatalf("In(%d)[%d] = %v, want %v", v, k, sin[k], gin[k])
			}
		}
	}
	// Out-of-range accessors are nil/zero, not panics.
	if s.Out(-1) != nil || s.In(NodeID(n)) != nil || s.Degree(NodeID(n+5)) != 0 || s.LabelIDOf(-1) != NoLabel {
		t.Fatal("out-of-range snapshot accessors must return zero values")
	}
}

// TestSnapshotFrozen checks the view is immune to later graph mutation.
func TestSnapshotFrozen(t *testing.T) {
	g := New()
	a := g.AddNode("user", nil)
	b := g.AddNode("user", nil)
	if err := g.AddEdge(a, b, "e"); err != nil {
		t.Fatal(err)
	}
	s := g.Snapshot()
	wantOut := len(s.Out(a))

	// Mutate after the freeze: add a node and an edge, remove the original.
	c := g.AddNode("movie", nil)
	if err := g.AddEdge(a, c, "e"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(a, b, "e"); err != nil {
		t.Fatal(err)
	}

	if s.NumNodes() != 2 {
		t.Fatalf("snapshot NumNodes = %d after mutation, want 2", s.NumNodes())
	}
	if s.NumEdges() != 1 {
		t.Fatalf("snapshot NumEdges = %d after mutation, want 1", s.NumEdges())
	}
	if got := s.Out(a); len(got) != wantOut || got[0].To != b {
		t.Fatalf("snapshot Out(%d) = %v changed after mutation", a, got)
	}
	if s.LabelIDOf(c) != NoLabel {
		t.Fatal("snapshot sees a node added after the freeze")
	}
}

package submod

import (
	"strconv"

	"github.com/cwru-db/fgs/internal/graph"
)

// Utility is a stateful monotone submodular set function F over nodes. The
// interface is marginal-gain oriented: implementations track the current set
// and answer "what would adding v gain" in O(small).
//
// Monotonicity and submodularity are contracts on implementations; the
// property tests in utility_test.go check them for the built-ins.
type Utility interface {
	// Marginal returns F(S ∪ {v}) − F(S) for the current set S. Calling it
	// for a v already in S must return 0.
	Marginal(v graph.NodeID) float64
	// Add commits v to the current set.
	Add(v graph.NodeID)
	// Remove evicts v from the current set (used by swap-based streaming).
	Remove(v graph.NodeID)
	// Value returns F(S).
	Value() float64
	// Reset empties the current set.
	Reset()
	// Clone returns an independent utility with an empty current set, for
	// side-effect-free evaluations while this one holds live state.
	Clone() Utility
}

// Eval computes F over an explicit node set using a fresh pass; it resets the
// utility's state. Useful in tests and verification (rverify).
func Eval(u Utility, nodes []graph.NodeID) float64 {
	u.Reset()
	for _, v := range nodes {
		u.Add(v)
	}
	val := u.Value()
	u.Reset()
	return val
}

// RatingSum is the modular utility of the paper's movie-recommendation
// setting: F(S) = Σ_{v∈S} rating(v), with ratings read from a node attribute.
type RatingSum struct {
	rating map[graph.NodeID]float64
	cur    graph.NodeSet
	val    float64
}

// NewRatingSum builds a RatingSum over nodes' attrKey values parsed as
// floats. Nodes without the attribute (or with unparsable values) rate 0.
func NewRatingSum(g *graph.Graph, attrKey string) *RatingSum {
	r := &RatingSum{rating: make(map[graph.NodeID]float64), cur: graph.NewNodeSet(0)}
	kid, ok := g.AttrKeyID(attrKey)
	if !ok {
		return r
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if vid, ok := g.AttrValue(v, kid); ok {
			if f, err := strconv.ParseFloat(g.AttrValName(vid), 64); err == nil {
				r.rating[v] = f
			}
		}
	}
	return r
}

// Marginal implements Utility.
func (r *RatingSum) Marginal(v graph.NodeID) float64 {
	if r.cur.Has(v) {
		return 0
	}
	return r.rating[v]
}

// Add implements Utility.
func (r *RatingSum) Add(v graph.NodeID) {
	if r.cur.Has(v) {
		return
	}
	r.cur.Add(v)
	r.val += r.rating[v]
}

// Remove implements Utility.
func (r *RatingSum) Remove(v graph.NodeID) {
	if !r.cur.Has(v) {
		return
	}
	r.cur.Remove(v)
	r.val -= r.rating[v]
}

// Value implements Utility.
func (r *RatingSum) Value() float64 { return r.val }

// Reset implements Utility.
func (r *RatingSum) Reset() {
	r.cur = graph.NewNodeSet(0)
	r.val = 0
}

// Clone implements Utility; the rating table is shared (read-only).
func (r *RatingSum) Clone() Utility {
	return &RatingSum{rating: r.rating, cur: graph.NewNodeSet(0)}
}

// NeighborMode selects which neighbors NeighborCoverage counts.
type NeighborMode int

// Neighbor directions. The paper's talent-search utility uses in-neighbors:
// N(v) = {u : (u,v) ∈ E}.
const (
	NeighborsIn NeighborMode = iota
	NeighborsOut
	NeighborsBoth
)

// NeighborCoverage is the influence-style submodular utility of the paper's
// talent-search and citation settings: F(S) = |∪_{v∈S} N(v)|. Coverage is
// reference counted so Remove is O(deg). Node IDs are dense, so the current
// set is a bitset, the reference counts live in a flat slice indexed by
// NodeID, and per-call neighbor dedup uses an epoch-stamped scratch — the
// selection loop's inner operations never touch a hash map.
type NeighborCoverage struct {
	g         *graph.Graph
	mode      NeighborMode
	edgeLabel graph.LabelID // restrict to this edge label; -1 = any
	cur       *graph.NodeBits
	refs      []int32 // node -> covering members of cur; grown on demand
	value     int     // count of nodes with refs > 0 (= F(S))
	stamp     []uint32
	epoch     uint32
}

// NewNeighborCoverage builds the utility over g. If edgeLabel is non-empty,
// only edges with that label contribute neighbors (e.g. "co-review" in LKI,
// "cite" in Cite); an unknown label yields a constant-zero utility.
func NewNeighborCoverage(g *graph.Graph, mode NeighborMode, edgeLabel string) *NeighborCoverage {
	nc := &NeighborCoverage{g: g, mode: mode, edgeLabel: -1, cur: graph.NewNodeBits(g.NumNodes())}
	if edgeLabel != "" {
		if lid, ok := g.EdgeLabelID(edgeLabel); ok {
			nc.edgeLabel = lid
		} else {
			nc.edgeLabel = -2 // sentinel: label never occurs, coverage always empty
		}
	}
	return nc
}

// neighbors iterates N(v) under the configured mode and label filter.
func (nc *NeighborCoverage) neighbors(v graph.NodeID, fn func(graph.NodeID)) {
	if nc.edgeLabel == -2 {
		return
	}
	if nc.mode == NeighborsIn || nc.mode == NeighborsBoth {
		for _, e := range nc.g.In(v) {
			if nc.edgeLabel < 0 || e.Label == nc.edgeLabel {
				fn(e.To)
			}
		}
	}
	if nc.mode == NeighborsOut || nc.mode == NeighborsBoth {
		for _, e := range nc.g.Out(v) {
			if nc.edgeLabel < 0 || e.Label == nc.edgeLabel {
				fn(e.To)
			}
		}
	}
}

// fresh sizes refs and stamp to the graph's node space and starts a new
// dedup epoch (stamp[u] == epoch marks u as seen in the current call).
func (nc *NeighborCoverage) fresh() {
	if n := nc.g.NumNodes(); len(nc.refs) < n {
		refs := make([]int32, n)
		copy(refs, nc.refs)
		nc.refs = refs
		stamp := make([]uint32, n)
		copy(stamp, nc.stamp)
		nc.stamp = stamp
	}
	nc.epoch++
	if nc.epoch == 0 {
		clear(nc.stamp)
		nc.epoch = 1
	}
}

// Marginal implements Utility.
func (nc *NeighborCoverage) Marginal(v graph.NodeID) float64 {
	if nc.cur.Has(v) {
		return 0
	}
	nc.fresh()
	gain := 0
	nc.neighbors(v, func(u graph.NodeID) {
		if nc.stamp[u] != nc.epoch && nc.refs[u] == 0 {
			gain++
		}
		nc.stamp[u] = nc.epoch
	})
	return float64(gain)
}

// Add implements Utility.
func (nc *NeighborCoverage) Add(v graph.NodeID) {
	if nc.cur.Has(v) {
		return
	}
	nc.cur.Add(v)
	nc.fresh()
	nc.neighbors(v, func(u graph.NodeID) {
		if nc.stamp[u] != nc.epoch {
			if nc.refs[u]++; nc.refs[u] == 1 {
				nc.value++
			}
		}
		nc.stamp[u] = nc.epoch
	})
}

// Remove implements Utility.
func (nc *NeighborCoverage) Remove(v graph.NodeID) {
	if !nc.cur.Has(v) {
		return
	}
	nc.cur.Remove(v)
	nc.fresh()
	nc.neighbors(v, func(u graph.NodeID) {
		if nc.stamp[u] != nc.epoch {
			if nc.refs[u]--; nc.refs[u] == 0 {
				nc.value--
			}
		}
		nc.stamp[u] = nc.epoch
	})
}

// Value implements Utility.
func (nc *NeighborCoverage) Value() float64 { return float64(nc.value) }

// Reset implements Utility.
func (nc *NeighborCoverage) Reset() {
	nc.cur = graph.NewNodeBits(nc.g.NumNodes())
	clear(nc.refs)
	nc.value = 0
}

// Clone implements Utility; the graph is shared (read-only access).
func (nc *NeighborCoverage) Clone() Utility {
	return &NeighborCoverage{g: nc.g, mode: nc.mode, edgeLabel: nc.edgeLabel, cur: graph.NewNodeBits(nc.g.NumNodes())}
}

// Cardinality is the trivial modular utility F(S) = |S|, used by the
// hardness reduction of Theorem 2 and convenient in tests.
type Cardinality struct {
	cur graph.NodeSet
}

// NewCardinality returns a cardinality utility.
func NewCardinality() *Cardinality { return &Cardinality{cur: graph.NewNodeSet(0)} }

// Marginal implements Utility.
func (c *Cardinality) Marginal(v graph.NodeID) float64 {
	if c.cur.Has(v) {
		return 0
	}
	return 1
}

// Add implements Utility.
func (c *Cardinality) Add(v graph.NodeID) { c.cur.Add(v) }

// Remove implements Utility.
func (c *Cardinality) Remove(v graph.NodeID) { c.cur.Remove(v) }

// Value implements Utility.
func (c *Cardinality) Value() float64 { return float64(c.cur.Len()) }

// Reset implements Utility.
func (c *Cardinality) Reset() { c.cur = graph.NewNodeSet(0) }

// Clone implements Utility.
func (c *Cardinality) Clone() Utility { return NewCardinality() }

package core

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

func TestKAPXFGSRequiresK(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg() // K = 0
	if _, err := KAPXFGS(g, groups, util, cfg); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestKAPXFGSFeasibleAndBudgeted(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.K = 3
	s, err := KAPXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatalf("KAPXFGS: %v", err)
	}
	if len(s.Patterns) > cfg.K {
		t.Fatalf("|P| = %d > k = %d", len(s.Patterns), cfg.K)
	}
	assertFeasibleLossless(t, g, groups, util, cfg, s)
}

func TestKAPXFGSCoversSelection(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.K = 4
	s, err := KAPXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Uncovered) != 0 {
		t.Fatalf("uncovered: %v", s.Uncovered)
	}
	counts := groups.Counts(s.Covered)
	if !groups.SatisfiesBounds(counts) {
		t.Fatalf("bounds violated: %v", counts)
	}
}

// With a larger pattern budget the correction size must not grow: more
// patterns can only cover more edges of E^r_{V_p}.
func TestKAPXFGSCorrectionShrinksWithK(t *testing.T) {
	g, groups, _ := talentFixture(t)
	prev := -1
	for _, k := range []int{2, 4, 8} {
		cfg := defaultCfg()
		cfg.K = k
		util := submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
		s, err := KAPXFGS(g, groups, util, cfg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if prev >= 0 && s.Corrections.Len() > prev {
			t.Fatalf("|C| grew from %d to %d as k rose to %d", prev, s.Corrections.Len(), k)
		}
		prev = s.Corrections.Len()
	}
}

func TestKAPXFGSRandomGraphs(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		g, groups, util := randomFixture(t, seed, 50, 120, 6)
		cfg := defaultCfg()
		cfg.N = 6
		cfg.K = 6
		s, err := KAPXFGS(g, groups, util, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s.Patterns) > cfg.K {
			t.Fatalf("seed %d: budget violated", seed)
		}
		// Lossless reconstruction must hold regardless of repair outcomes.
		missing, spurious := s.Reconstruct(g)
		if missing.Len() != 0 || spurious.Len() != 0 {
			t.Fatalf("seed %d: not lossless (missing %d, spurious %d)", seed, missing.Len(), spurious.Len())
		}
		counts := groups.Counts(s.Covered)
		for gi := 0; gi < groups.Len(); gi++ {
			if counts[gi] > groups.At(gi).Upper {
				t.Fatalf("seed %d: upper bound violated: %v", seed, counts)
			}
		}
	}
}

// TestKAPXFGSSwapRepair forces the k=1 swap path: the edge-coverage greedy
// first picks the pattern describing the structure-rich candidate, and the
// repair must then swap in a pattern that covers both selected nodes.
func TestKAPXFGSSwapRepair(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.K = 1
	cfg.N = 4
	s, err := KAPXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Patterns) > 1 {
		t.Fatalf("|P| = %d > k = 1", len(s.Patterns))
	}
	// With a single pattern the whole selection must still be covered (the
	// label-only seed covers every user), or explicitly reported.
	if len(s.Uncovered) != 0 {
		t.Fatalf("k=1 left %v uncovered despite a universal seed pattern", s.Uncovered)
	}
	missing, spurious := s.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatal("not lossless")
	}
}

// TestMaxCoverSelectSwapPath drives maxCoverSelect directly with a crafted
// candidate pool: the edge greedy's best pick misses one selected node, the
// budget is full (k=1), and the repair must swap in the candidate that
// covers both.
func TestMaxCoverSelectSwapPath(t *testing.T) {
	g := graph.New()
	a := g.AddNode("user", nil)
	b := g.AddNode("user", nil)
	var aEdges []graph.EdgeRef
	for i := 0; i < 3; i++ {
		r := g.AddNode("user", nil)
		if err := g.AddEdge(r, a, "rec"); err != nil {
			t.Fatal(err)
		}
		lid, _ := g.EdgeLabelID("rec")
		aEdges = append(aEdges, graph.EdgeRef{From: r, To: a, Label: lid})
	}
	rb := g.AddNode("user", nil)
	if err := g.AddEdge(rb, b, "rec"); err != nil {
		t.Fatal(err)
	}
	lid, _ := g.EdgeLabelID("rec")
	bEdge := graph.EdgeRef{From: rb, To: b, Label: lid}

	rich := &mining.Candidate{
		P:            pattern.NewNodePattern("user"),
		Covered:      []graph.NodeID{a},
		CoveredEdges: g.EdgeBitsOf(graph.EdgeSet{aEdges[0]: {}, aEdges[1]: {}, aEdges[2]: {}}),
		CP:           0,
	}
	broad := &mining.Candidate{
		P:            pattern.NewNodePattern("user"),
		Covered:      []graph.NodeID{a, b},
		CoveredEdges: g.EdgeBitsOf(graph.EdgeSet{bEdge: {}}),
		CP:           3,
	}
	vp := []graph.NodeID{a, b}
	cfg := Config{R: 1, K: 1, N: 2}.withDefaults()
	er := mining.NewErCache(g, 1)
	chosen, uncovered := maxCoverSelect([]*mining.Candidate{rich, broad}, vp, cfg, er, nil)
	if len(uncovered) != 0 {
		t.Fatalf("swap repair failed: uncovered %v", uncovered)
	}
	if len(chosen) != 1 || len(chosen[0].Covered) != 2 {
		t.Fatalf("expected the broad candidate after the swap, got %+v", chosen)
	}
}

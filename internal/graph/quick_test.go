package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// testing/quick property tests on the core data structures. Custom
// generators build small random sets so the properties stay cheap to check.

// smallEdgeSet is an EdgeSet with a quick.Generator producing sets over a
// small id space (collisions between generated sets are likely, which is
// what set-algebra properties need).
type smallEdgeSet struct{ s EdgeSet }

// Generate implements quick.Generator.
func (smallEdgeSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size%20 + 1)
	s := NewEdgeSet(n)
	for i := 0; i < n; i++ {
		s.Add(EdgeRef{From: NodeID(r.Intn(6)), To: NodeID(r.Intn(6)), Label: LabelID(r.Intn(2))})
	}
	return reflect.ValueOf(smallEdgeSet{s: s})
}

func TestQuickEdgeSetMinusDisjointFromSubtrahend(t *testing.T) {
	f := func(a, b smallEdgeSet) bool {
		d := a.s.Minus(b.s)
		for e := range d {
			if b.s.Has(e) || !a.s.Has(e) {
				return false
			}
		}
		// Minus plus intersection partitions a.
		inter := 0
		for e := range a.s {
			if b.s.Has(e) {
				inter++
			}
		}
		return d.Len()+inter == a.s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeSetCountMissingAgreesWithMinus(t *testing.T) {
	f := func(a, b smallEdgeSet) bool {
		return a.s.CountMissing(b.s) == a.s.Minus(b.s).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeSetUnionCommutative(t *testing.T) {
	f := func(a, b smallEdgeSet) bool {
		ab := a.s.Clone()
		ab.AddAll(b.s)
		ba := b.s.Clone()
		ba.AddAll(a.s)
		if ab.Len() != ba.Len() {
			return false
		}
		for e := range ab {
			if !ba.Has(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeSetCloneIndependent(t *testing.T) {
	f := func(a smallEdgeSet, from, to uint8) bool {
		c := a.s.Clone()
		extra := EdgeRef{From: NodeID(from), To: NodeID(to), Label: 99}
		c.Add(extra)
		return !a.s.Has(extra) || a.s.Len() == c.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// smallNodeList generates node slices with duplicates.
type smallNodeList struct{ ids []NodeID }

// Generate implements quick.Generator.
func (smallNodeList) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size%25 + 1)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(r.Intn(10))
	}
	return reflect.ValueOf(smallNodeList{ids: ids})
}

func TestQuickNodeSetOfDedups(t *testing.T) {
	f := func(l smallNodeList) bool {
		s := NodeSetOf(l.ids)
		distinct := map[NodeID]bool{}
		for _, id := range l.ids {
			distinct[id] = true
			if !s.Has(id) {
				return false
			}
		}
		return s.Len() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Interning is idempotent and order-insensitive for lookups.
func TestQuickInternerIdempotent(t *testing.T) {
	f := func(words []string) bool {
		in := NewInterner()
		first := map[string]int32{}
		for _, w := range words {
			id := in.Intern(w)
			if prev, ok := first[w]; ok && prev != id {
				return false
			}
			first[w] = id
			if in.Name(id) != w {
				return false
			}
		}
		return in.Len() == len(first)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

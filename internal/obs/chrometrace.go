package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Trace Event Format entry. We emit only complete ("X")
// events: chrome://tracing and Perfetto render nesting from time containment
// on the same pid/tid.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`  // microseconds from trace epoch
	Dur  float64          `json:"dur"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the trace's completed spans in the Chrome Trace
// Event Format (loadable in chrome://tracing or https://ui.perfetto.dev).
// Spans still open at export time are skipped. Nil-safe: a nil trace writes
// an empty (but valid) trace file.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	recs := t.Records()
	f := chromeFile{TraceEvents: make([]chromeEvent, 0, len(recs)), DisplayTimeUnit: "ms"}
	for _, r := range recs {
		if !r.Done {
			continue
		}
		ev := chromeEvent{
			Name: r.Name,
			Cat:  "fgs",
			Ph:   "X",
			Ts:   float64(r.Start.Microseconds()),
			Dur:  float64(r.Dur.Microseconds()),
			Pid:  1,
			Tid:  1,
		}
		if len(r.Args) > 0 {
			ev.Args = make(map[string]int64, len(r.Args))
			for _, a := range r.Args {
				ev.Args[a.Key] = a.Val
			}
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEndpointStatsObserve(t *testing.T) {
	s := NewEndpointStats()
	s.Observe("summarize", 3*time.Millisecond, false)
	s.Observe("summarize", 5*time.Millisecond, true)
	s.Observe("view", 500*time.Microsecond, false)

	ms := s.ObsMetrics()
	if len(ms) != 6 {
		t.Fatalf("ObsMetrics returned %d series, want 6 (3 per endpoint)", len(ms))
	}
	// Registration order: summarize first, then view.
	if ms[0].Name != "fgs_http_requests_total" || ms[0].Labels[0].Val != "summarize" || ms[0].Value != 2 {
		t.Errorf("summarize requests series = %+v, want value 2", ms[0])
	}
	if ms[1].Name != "fgs_http_errors_total" || ms[1].Value != 1 {
		t.Errorf("summarize errors series = %+v, want value 1", ms[1])
	}
	if ms[2].Kind != KindHistogram || ms[2].Hist.Count != 2 || ms[2].Hist.Sum != 3+5 {
		t.Errorf("summarize latency histogram = %+v, want count 2 sum 8", ms[2].Hist)
	}
	if ms[5].Hist.Count != 1 || ms[5].Hist.Sum != 0 {
		t.Errorf("view latency histogram = %+v, want count 1 sum 0 (sub-ms)", ms[5].Hist)
	}
}

func TestEndpointStatsNilSafe(t *testing.T) {
	var s *EndpointStats
	s.Observe("x", time.Second, false) // must not panic
	if got := s.ObsMetrics(); got != nil {
		t.Fatalf("nil EndpointStats.ObsMetrics() = %v, want nil", got)
	}
}

func TestEndpointStatsRegistryExport(t *testing.T) {
	s := NewEndpointStats()
	s.Observe("stats", 2*time.Millisecond, false)
	reg := NewRegistry()
	reg.Register(s)
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`fgs_http_requests_total{endpoint="stats"} 1`,
		`fgs_http_latency_ms_count{endpoint="stats"} 1`,
		`fgs_http_latency_ms_bucket{endpoint="stats",le="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q in:\n%s", want, out)
		}
	}
}

func TestEndpointStatsConcurrent(t *testing.T) {
	s := NewEndpointStats()
	var wg sync.WaitGroup
	endpoints := []string{"a", "b", "c", "d"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Observe(endpoints[(w+i)%len(endpoints)], time.Millisecond, i%7 == 0)
				if i%32 == 0 {
					// Export racing registration and observation: the snapshot
					// must stay internally consistent under -race.
					for _, m := range s.ObsMetrics() {
						if m.Kind == KindHistogram && m.Hist.Buckets[HistNumBuckets] != m.Hist.Count {
							t.Errorf("histogram +Inf bucket %d != count %d", m.Hist.Buckets[HistNumBuckets], m.Hist.Count)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, m := range s.ObsMetrics() {
		if m.Name == "fgs_http_requests_total" {
			total += int64(m.Value)
		}
	}
	if total != 8*200 {
		t.Fatalf("total requests = %d, want %d", total, 8*200)
	}
}

package lint

// ErrDrop flags discarded error returns in library packages. The service's
// failure handling depends on errors propagating: a swallowed Close or
// encoder error turns a detectable fault into silent corruption. Two forms
// are flagged:
//
//	f.Close()          // expression statement discarding an error result
//	_ = f.Close()      // explicit blank assignment of an error result
//	_, _ = w.Write(b)  // blank assignment discarding an error among others
//
// Command packages (package main) are exempt — top-level binaries routinely
// best-effort-close on exit paths and are audited by hand — as are writes
// to inherently infallible or error-latching writers (bytes.Buffer,
// strings.Builder, bufio.Writer short of Flush; see errDropExempt).
// Deliberate discards in library code take a justified
// `//lint:allow errdrop <why>` annotation.

import (
	"go/ast"
	"go/types"
)

var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error returns in library packages",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if errIdx := droppedErrIndex(pass, call); errIdx >= 0 {
					pass.Report(call.Pos(), "result %d (error) of %s is discarded: handle it, return it, or annotate //lint:allow errdrop",
						errIdx, calleeText(call))
				}
			case *ast.AssignStmt:
				if !allBlankLHS(n) || len(n.Rhs) != 1 {
					return true
				}
				call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				if errIdx := droppedErrIndex(pass, call); errIdx >= 0 {
					pass.Report(n.Pos(), "result %d (error) of %s is assigned to _: handle it, return it, or annotate //lint:allow errdrop",
						errIdx, calleeText(call))
				}
			}
			return true
		})
	}
	return nil
}

// allBlankLHS reports whether every left-hand side of an assignment is the
// blank identifier. A partial assignment (v, _ = f()) keeps some result and
// is a deliberate selection, not a drop.
func allBlankLHS(as *ast.AssignStmt) bool {
	for _, l := range as.Lhs {
		id, ok := unparen(l).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// droppedErrIndex returns the index of an error result the call discards,
// or -1 if the call has no error result or is exempt.
func droppedErrIndex(pass *Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return -1
	}
	if errDropExempt(pass, call) {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if tv.Type != nil && isErrorType(tv.Type) {
			return 0
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errDropExempt reports calls whose error results are structurally inert:
//
//   - methods on bytes.Buffer and strings.Builder never fail (their errors
//     exist to satisfy io.Writer and friends);
//   - bufio.Writer latches the first write error and re-reports it from
//     Flush, so intermediate writes are safely droppable as long as the
//     Flush itself is checked — which errdrop still enforces;
//   - fmt.Fprint/Fprintf/Fprintln routed to one of those writers can only
//     fail with the writer's own error, covered by the cases above.
func errDropExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if recv := recvTypeName(fn); recv != "" {
		switch fn.Pkg().Path() {
		case "bytes":
			return recv == "Buffer"
		case "strings":
			return recv == "Builder"
		case "bufio":
			return recv == "Writer" && fn.Name() != "Flush"
		}
		return false
	}
	if fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return latchingWriter(pass.TypesInfo.Types[call.Args[0]].Type)
		}
	}
	return false
}

// latchingWriter reports whether t is a pointer to a writer whose Write
// either cannot fail or latches its error for a later checked call.
func latchingWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder", "bufio.Writer":
		return true
	}
	return false
}

// calleeText renders the callee for a diagnostic.
func calleeText(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	case *ast.Ident:
		return fun.Name
	default:
		return "call"
	}
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderDisabled(t *testing.T) {
	for _, size := range []int{0, -1} {
		if fr := NewFlightRecorder(size); fr != nil {
			t.Fatalf("NewFlightRecorder(%d) != nil", size)
		}
	}
	var fr *FlightRecorder
	fr.Record(FlightEvent{Status: 200}) // must not panic
	if fr.Snapshot() != nil || fr.Cap() != 0 || fr.Recorded() != 0 || fr.Dropped() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if fr.ObsMetrics() != nil {
		t.Fatal("nil recorder exported metrics")
	}
}

func TestFlightRecorderRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 16}, {16, 16}, {17, 32}, {100, 128}, {1024, 1024},
	} {
		if got := NewFlightRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("Cap(NewFlightRecorder(%d)) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFlightRecorderWrapKeepsNewest(t *testing.T) {
	fr := NewFlightRecorder(16)
	for i := 1; i <= 40; i++ {
		fr.Record(FlightEvent{Status: int32(i)})
	}
	evs := fr.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(evs))
	}
	// Oldest first, and only the newest 16 (25..40) survive the wrap.
	for i, ev := range evs {
		wantSeq := uint64(25 + i)
		if ev.Seq != wantSeq || ev.Status != int32(wantSeq) {
			t.Fatalf("evs[%d] = seq %d status %d, want seq %d", i, ev.Seq, ev.Status, wantSeq)
		}
	}
	if fr.Recorded() != 40 || fr.Dropped() != 0 {
		t.Fatalf("recorded %d dropped %d", fr.Recorded(), fr.Dropped())
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	// Concurrent snapshots while writers hammer the ring: the race detector
	// plus the torn-read checks exercise the seqlock.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range fr.Snapshot() {
					if ev.Seq == 0 {
						t.Error("snapshot returned an unpublished event")
						return
					}
				}
			}
		}
	}()
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fr.Record(FlightEvent{Endpoint: "summarize", Status: 200, Total: int64(w*per + i)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := fr.Recorded(); got != workers*per {
		t.Fatalf("Recorded = %d, want %d", got, workers*per)
	}
	evs := fr.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not ordered by seq: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestFlightRecordZeroAlloc pins the hot-path contract: recording an event
// into the ring allocates nothing (the event is a fixed-size struct copy and
// endpoint names are static route strings).
func TestFlightRecordZeroAlloc(t *testing.T) {
	fr := NewFlightRecorder(1024)
	ev := FlightEvent{
		Trace:    TraceID{1, 2, 3},
		Unix:     12345,
		Endpoint: "summarize",
		Status:   200,
		Epoch:    3,
		CacheHit: true,
		Total:    int64(5 * time.Millisecond),
	}
	if allocs := testing.AllocsPerRun(1000, func() { fr.Record(ev) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	fr := NewFlightRecorder(1024)
	ev := FlightEvent{Endpoint: "summarize", Status: 200, Total: int64(time.Millisecond)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.Record(ev)
	}
}

func TestWriteFlightText(t *testing.T) {
	var b strings.Builder
	evs := []FlightEvent{{
		Seq:      3,
		Trace:    TraceID{0xab},
		Unix:     time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixNano(),
		Endpoint: "summarize",
		Status:   200,
		Epoch:    2,
		CacheHit: true,
		Total:    int64(3 * time.Millisecond),
	}}
	evs[0].Stages[StageCompute] = int64(2 * time.Millisecond)
	if err := WriteFlightText(&b, evs); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"seq", "2026-08-08T12:00:00.000000Z", evs[0].Trace.String(),
		"summarize", "200", "hit", "compute=2ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

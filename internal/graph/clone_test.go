package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// textOf canonicalizes a graph through the text codec for byte comparison.
func textOf(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestCloneEqualsOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 200)
	// Churn so the free list and edgeDefs sentinels are exercised.
	for i := 0; i < 40; i++ {
		from := NodeID(rng.Intn(60))
		for _, e := range g.Out(from) {
			_ = g.RemoveEdge(from, e.To, g.EdgeLabelName(e.Label))
			break
		}
	}
	c := g.Clone()
	assertGraphsEqual(t, g, c)
	if !bytes.Equal(textOf(t, g), textOf(t, c)) {
		t.Fatal("clone text serialization differs from original")
	}
	if g.EdgeIDBound() != c.EdgeIDBound() {
		t.Fatalf("EdgeIDBound differs: %d vs %d", g.EdgeIDBound(), c.EdgeIDBound())
	}
	for id := EdgeID(0); int(id) < g.EdgeIDBound(); id++ {
		if g.EdgeRefOf(id) != c.EdgeRefOf(id) {
			t.Fatalf("EdgeRefOf(%d) differs: %v vs %v", id, g.EdgeRefOf(id), c.EdgeRefOf(id))
		}
	}
}

// TestCloneReplayDeterminism is the property the MVCC replica replay relies
// on: applying one operation sequence to a graph and to its clone produces
// byte-identical stores, including EdgeID reuse order.
func TestCloneReplayDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 40, 120)
	c := g.Clone()

	type op struct {
		del      bool
		from, to NodeID
		label    string
	}
	labels := []string{"recommend", "cite", "fresh"}
	var ops []op
	for i := 0; i < 300; i++ {
		ops = append(ops, op{
			del:   rng.Intn(3) == 0,
			from:  NodeID(rng.Intn(40)),
			to:    NodeID(rng.Intn(40)),
			label: labels[rng.Intn(len(labels))],
		})
	}
	apply := func(g *Graph) {
		for _, o := range ops {
			if o.del {
				_ = g.RemoveEdge(o.from, o.to, o.label)
			} else {
				_ = g.AddEdge(o.from, o.to, o.label)
			}
		}
	}
	apply(g)
	apply(c)
	assertGraphsEqual(t, g, c)
	if !bytes.Equal(textOf(t, g), textOf(t, c)) {
		t.Fatal("replayed clone diverged from original")
	}
	if g.EdgeIDBound() != c.EdgeIDBound() {
		t.Fatalf("EdgeIDBound differs after replay: %d vs %d", g.EdgeIDBound(), c.EdgeIDBound())
	}
	for id := EdgeID(0); int(id) < g.EdgeIDBound(); id++ {
		if g.EdgeRefOf(id) != c.EdgeRefOf(id) {
			t.Fatalf("EdgeRefOf(%d) differs after replay", id)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g, ids := buildDiamond(t)
	c := g.Clone()
	before := textOf(t, g)

	// Mutate the clone every way the API allows; the original must not move.
	if err := c.AddEdge(ids[3], ids[0], "back"); err != nil {
		t.Fatalf("AddEdge on clone: %v", err)
	}
	if err := c.RemoveEdge(ids[0], ids[1], "recommend"); err != nil {
		t.Fatalf("RemoveEdge on clone: %v", err)
	}
	c.AddNode("user", map[string]string{"exp": "9"})
	if !bytes.Equal(before, textOf(t, g)) {
		t.Fatal("mutating the clone changed the original")
	}

	// And the other direction.
	cBefore := textOf(t, c)
	if err := g.AddEdge(ids[3], ids[1], "back"); err != nil {
		t.Fatalf("AddEdge on original: %v", err)
	}
	if !bytes.Equal(cBefore, textOf(t, c)) {
		t.Fatal("mutating the original changed the clone")
	}
}

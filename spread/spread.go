// Package spread exposes the independent-cascade substrate of the paper's
// pandemic case study (Example 3 / Fig. 12): simulate infection spread over
// contact edges and evaluate group-immunization vaccine allocations under
// per-group coverage constraints.
package spread

import (
	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/internal/cascade"
)

// Model configures the independent cascade: transmission probability P,
// number of Trials averaged, RNG Seed, and an optional EdgeLabel filter.
type Model = cascade.Model

// Result reports one immunization configuration's outcome.
type Result = cascade.ImmunizationResult

// Spread runs the cascade from seeds with the vaccinated set immune and
// returns the mean infection count.
func Spread(g *fgs.Graph, seeds []fgs.NodeID, vaccinated fgs.NodeSet, m Model) float64 {
	return cascade.Spread(g, seeds, vaccinated, m)
}

// TopDegreeSeeds returns the k highest-degree nodes — the seed spreaders.
func TopDegreeSeeds(g *fgs.Graph, k int) []fgs.NodeID {
	return cascade.TopDegreeSeeds(g, k)
}

// AllocateVaccines vaccinates, per group, the alloc[i] highest-degree
// members outside the excluded set (typically the seeds).
func AllocateVaccines(g *fgs.Graph, groups *fgs.Groups, alloc []int, exclude fgs.NodeSet) fgs.NodeSet {
	return cascade.AllocateVaccines(g, groups, alloc, exclude)
}

// SimulateImmunization allocates vaccines per group and runs the cascade.
func SimulateImmunization(g *fgs.Graph, groups *fgs.Groups, seeds []fgs.NodeID, alloc []int, m Model) Result {
	return cascade.SimulateImmunization(g, groups, seeds, alloc, m)
}

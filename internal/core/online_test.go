package core

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

func TestOnlineOnTalentFixture(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.K = 6
	o := NewOnline(g, groups, util, cfg)
	o.ProcessAll(groups.All())
	s, err := o.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	assertFeasibleLossless(t, g, groups, util, cfg, s)
	if len(s.Patterns) > cfg.K {
		t.Fatalf("|P| = %d > k", len(s.Patterns))
	}
}

func TestOnlineUnboundedK(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg() // K = 0: unbounded
	o := NewOnline(g, groups, util, cfg)
	o.ProcessAll(groups.All())
	s, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertFeasibleLossless(t, g, groups, util, cfg, s)
}

func TestOnlineSelectionMatchesStreamOrderInvariance(t *testing.T) {
	// Different arrival orders may select different nodes, but feasibility
	// and losslessness must hold for all of them.
	g, groups, _ := talentFixture(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		util := submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
		cfg := defaultCfg()
		cfg.K = 8
		o := NewOnline(g, groups, util, cfg)
		order := append([]graph.NodeID(nil), groups.All()...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		o.ProcessAll(order)
		s, err := o.Finish()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertFeasibleLossless(t, g, groups, util, cfg, s)
	}
}

func TestOnlineQuarterApproximation(t *testing.T) {
	// Online utility must reach at least 1/4 of the offline greedy's.
	for seed := int64(41); seed < 45; seed++ {
		g, groups, _ := randomFixture(t, seed, 60, 160, 8)
		cfg := defaultCfg()
		cfg.N = 6
		cfg.K = 12

		offUtil := submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
		off, err := APXFGS(g, groups, offUtil, cfg)
		if err != nil {
			t.Fatal(err)
		}

		onUtil := submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
		o := NewOnline(g, groups, onUtil, cfg)
		o.ProcessAll(groups.All())
		s, err := o.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if s.Utility < off.Utility/4-1e-9 {
			t.Fatalf("seed %d: online utility %.1f < 1/4 offline %.1f", seed, s.Utility, off.Utility)
		}
	}
}

func TestOnlineStatsAccumulate(t *testing.T) {
	g, groups, util := talentFixture(t)
	o := NewOnline(g, groups, util, defaultCfg())
	o.ProcessAll(groups.All())
	if o.Stats().Candidates == 0 {
		t.Error("no candidates recorded")
	}
	if len(o.Selected()) == 0 {
		t.Error("no nodes selected")
	}
}

func TestOnlineSwapPathKeepsBudget(t *testing.T) {
	// Tiny pattern budget forces the UpdateP swap path.
	for seed := int64(61); seed < 64; seed++ {
		g, groups, util := randomFixture(t, seed, 50, 130, 6)
		cfg := defaultCfg()
		cfg.N = 4
		cfg.K = 2
		o := NewOnline(g, groups, util, cfg)
		o.ProcessAll(groups.All())
		s, err := o.Finish()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s.Patterns) > cfg.K {
			t.Fatalf("seed %d: budget violated: %d patterns", seed, len(s.Patterns))
		}
		// Structure may leave nodes uncovered at K=2; reconstruction of what
		// is covered must still be lossless.
		missing, spurious := s.Reconstruct(g)
		if missing.Len() != 0 || spurious.Len() != 0 {
			t.Fatalf("seed %d: not lossless", seed)
		}
	}
}

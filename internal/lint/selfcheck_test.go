package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full fgslint suite over the whole module and
// requires zero findings — the same gate CI applies via `go run
// ./cmd/fgslint ./...`. Having it as a plain test means a plain `go test
// ./...` also enforces the determinism contract, and a newly introduced
// violation fails with the analyzer's message and position.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; loader is missing the module", len(pkgs), root)
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or add a //lint:allow <analyzer> <why> escape hatch", len(diags))
	}
}

// TestAllowBudget is the in-process version of `fgslint -budget`: the
// number of //lint:allow escape hatches per analyzer must not exceed the
// checked-in inventory in lint-budget.json. Adding a suppression therefore
// requires a conscious budget edit in the same change; removing one earns a
// reminder to ratchet the budget down.
func TestAllowBudget(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "lint-budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	budget := make(map[string]int)
	if err := json.Unmarshal(data, &budget); err != nil {
		t.Fatalf("lint-budget.json: %v", err)
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for name, n := range CountAllows(pkgs) {
		if !known[name] && name != "all" {
			t.Errorf("//lint:allow names unknown analyzer %q (typo?)", name)
			continue
		}
		if b := budget[name]; n > b {
			t.Errorf("allow budget exceeded for %s: %d //lint:allow directive(s), budget %d — remove the new allow or consciously raise lint-budget.json", name, n, b)
		} else if n < b {
			t.Logf("note: %s allow count (%d) is under budget (%d); ratchet lint-budget.json down", name, n, b)
		}
	}
}

package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// The wire protocol: JSON over HTTP, canonically encoded. Requests are
// decoded strictly (unknown fields rejected), normalized (defaults applied),
// and re-marshaled into a canonical byte string whose hash keys the result
// cache — so {"n":6,"r":2}, {"r":2,"n":6}, and {"n":6} under default r all
// share one cache entry. Responses are structs with fixed field order, so
// encoding/json emits byte-identical bodies for identical states.

// maxBodyBytes bounds request bodies; a pattern or edge batch has no
// business being larger.
const maxBodyBytes = 1 << 20

// SummarizeRequest asks for a fresh summary of the current graph.
type SummarizeRequest struct {
	// R, K, N override the server defaults when > 0 (K only on the
	// summarize-k endpoint, where it must end up > 0).
	R int `json:"r,omitempty"`
	K int `json:"k,omitempty"`
	N int `json:"n,omitempty"`
	// Utility overrides the server's utility spec for this request.
	Utility string `json:"utility,omitempty"`
}

// ViewRequest answers a pattern query over the maintained summary as a
// materialized view.
type ViewRequest struct {
	// Pattern is the query in the pattern text format.
	Pattern string `json:"pattern"`
	// EmbedCap bounds embedding enumeration (0 = server default).
	EmbedCap int `json:"embed_cap,omitempty"`
}

// WorkloadRequest exports the maintained summary's patterns as annotated
// benchmark queries.
type WorkloadRequest struct {
	EmbedCap int `json:"embed_cap,omitempty"`
}

// EdgeChange is one edge of a write batch.
type EdgeChange struct {
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	Label string `json:"label"`
}

// UpdateRequest is one write batch: edge insertions and deletions applied
// atomically under the write lock through the Inc-FGS maintainer.
type UpdateRequest struct {
	Insert []EdgeChange `json:"insert,omitempty"`
	Delete []EdgeChange `json:"delete,omitempty"`
}

// SummarizeResponse carries a freshly computed summary and the epoch it was
// computed at.
type SummarizeResponse struct {
	Epoch   uint64          `json:"epoch"`
	Summary json.RawMessage `json:"summary"`
}

// ViewResponse lists the covered nodes matching the query pattern.
type ViewResponse struct {
	Epoch uint64  `json:"epoch"`
	Count int     `json:"count"`
	Nodes []int64 `json:"nodes"`
}

// WorkloadQuery is one summary pattern annotated as a benchmark query.
type WorkloadQuery struct {
	Pattern        string  `json:"pattern"`
	Cardinality    int     `json:"cardinality"`
	CoveredMatches int     `json:"covered_matches"`
	Selectivity    float64 `json:"selectivity"`
}

// WorkloadResponse lists the maintained summary's patterns as queries.
type WorkloadResponse struct {
	Epoch   uint64          `json:"epoch"`
	Queries []WorkloadQuery `json:"queries"`
}

// SummaryStats is the compact view of a summary used in stats and update
// responses.
type SummaryStats struct {
	Patterns    int     `json:"patterns"`
	Covered     int     `json:"covered"`
	Corrections int     `json:"corrections"`
	CL          int     `json:"accumulated_loss"`
	Utility     float64 `json:"utility"`
}

// UpdateResponse reports a write batch's outcome. Applied counts the updates
// that changed the graph; the epoch advances iff Applied > 0. Error carries
// the first per-edge failure while the rest of the batch still applies.
type UpdateResponse struct {
	Epoch   uint64       `json:"epoch"`
	Applied int          `json:"applied"`
	Error   string       `json:"error,omitempty"`
	Summary SummaryStats `json:"summary"`
}

// CacheStats snapshots the result cache for /v1/stats.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// AdmissionStats snapshots admission control for /v1/stats.
type AdmissionStats struct {
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Expired  int64 `json:"expired"`
	Slots    int   `json:"slots"`
	Queue    int   `json:"queue"`
}

// MvccStats snapshots the MVCC serving state for /v1/stats. In locked mode
// only Mode is set. Replicas counts graph copies in circulation (current
// view + reader-pinned + free pool); Clones counts full-graph copies taken
// to grow the pool; WriterWaits counts publications that had to wait for a
// reader to release a replica. Publish latency is wall-clock and therefore
// lives on /metrics only.
type MvccStats struct {
	Mode        string `json:"mode"`
	MaxViews    int    `json:"max_views,omitempty"`
	Replicas    int    `json:"replicas,omitempty"`
	Publishes   int64  `json:"publishes,omitempty"`
	Clones      int64  `json:"clones,omitempty"`
	WriterWaits int64  `json:"writer_waits,omitempty"`
}

// StatsResponse is the engine snapshot served on /v1/stats. Every field is
// deterministic for a fixed request sequence; wall-clock derived series live
// on /metrics only.
type StatsResponse struct {
	Epoch     uint64         `json:"epoch"`
	Nodes     int            `json:"nodes"`
	Edges     int            `json:"edges"`
	Groups    int            `json:"groups"`
	Summary   SummaryStats   `json:"summary"`
	Cache     CacheStats     `json:"cache"`
	Admission AdmissionStats `json:"admission"`
	Mvcc      *MvccStats     `json:"mvcc,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// requestError marks an error as the client's fault (HTTP 400).
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

// decodeStrict parses one JSON value from data into v, rejecting unknown
// fields and trailing content. Empty bodies decode as the zero request, so
// parameterless endpoints accept POSTs with no body.
func decodeStrict(data []byte, v any) error {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// readBody drains a bounded request body.
func readBody(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxBodyBytes {
		return nil, fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)
	}
	return data, nil
}

// canonicalKey hashes the normalized request for the result cache. The
// input must already have defaults applied, so equivalent requests collapse
// to one key; json.Marshal on a struct emits fields in declaration order,
// making the encoding canonical.
func canonicalKey(endpoint string, req any) (string, error) {
	canon, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return endpoint + ":" + hex.EncodeToString(sum[:16]), nil
}

// epochKey scopes a canonical key to one graph epoch — the invalidation-by-
// construction trick: a write bumps the epoch, so every previously cached
// key stops matching and ages out of the LRU.
func epochKey(key string, epoch uint64) string {
	return strconv.FormatUint(epoch, 10) + "|" + key
}

// marshalBody renders a response canonically: compact JSON plus a trailing
// newline.
func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

package lint

// CountAllows tallies //lint:allow escape hatches per analyzer name across
// the packages' files. This is the inventory behind the allow-budget
// ratchet (lint-budget.json at the module root): every allow is a debt the
// budget must cover, so a new suppression fails CI until someone consciously
// raises the budget in the same change — and when allows are removed, the
// budget can ratchet down. A directive naming several analyzers
// ("//lint:allow a,b why") counts once against each.
func CountAllows(pkgs []*Package) map[string]int {
	counts := make(map[string]int)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, name := range allowDirective(c.Text) {
						counts[name]++
					}
				}
			}
		}
	}
	return counts
}

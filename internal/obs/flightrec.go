package obs

// The flight recorder (DESIGN.md §13): an always-on, fixed-size,
// never-blocking ring of recent request events. It answers "what was the
// server doing just before this 5xx / slow request / SIGQUIT?" without
// logging every request: the ring holds the last N completed requests with
// their stage timings, the write path is a claim-index-and-copy with zero
// allocations, and a dump is a best-effort snapshot that skips slots caught
// mid-write.
//
// Concurrency: writers claim a slot by atomically incrementing the global
// sequence, then copy the event under the slot's TryLock — one uncontended
// CAS, never a wait. A writer that fails the TryLock has been lapped by a
// slower writer still copying the same slot — with a ring far larger than
// the worker count this cannot happen in practice — and drops the event
// (counted) rather than blocking or tearing. Readers (Snapshot) likewise
// TryLock each slot and skip ones mid-write. No operation ever blocks a
// request. (A classic seqlock would avoid even the reader's CAS, but its
// unsynchronized data copy is a data race under the Go memory model; the
// per-slot try-lock buys the same non-blocking behavior race-free.)

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEvent is one completed request: fixed-size, so recording is a
// struct copy. Endpoint is one of the server's static route names — copying
// the string header allocates nothing.
type FlightEvent struct {
	// Seq is the global claim sequence (1-based); newer events have larger
	// sequence numbers.
	Seq uint64
	// Trace is the request's trace ID.
	Trace TraceID
	// Unix is the request start time, nanoseconds since the epoch.
	Unix int64
	// Endpoint is the route name ("summarize", "update", ...).
	Endpoint string
	// Status is the HTTP status the request completed with.
	Status int32
	// Epoch is the graph epoch the response was computed at (0 for
	// endpoints that do not touch the engine).
	Epoch uint64
	// CacheHit marks responses served from the result cache.
	CacheHit bool
	// Stages holds per-stage durations in nanoseconds (0 = stage not run).
	Stages [NumStages]int64
	// Total is the full request duration in nanoseconds.
	Total int64
}

// FlightRecorder is the fixed-size never-blocking ring. A nil recorder is
// the disabled recorder: Record and Snapshot are no-ops.
type FlightRecorder struct {
	mask  uint64
	next  atomic.Uint64
	drops atomic.Uint64
	slots []flightSlot
}

type flightSlot struct {
	// mu guards ev. It is only ever TryLocked — contention means skip (reader)
	// or drop (writer), never wait.
	mu sync.Mutex
	ev FlightEvent
}

// NewFlightRecorder returns a ring holding the most recent `size` events
// (rounded up to a power of two, minimum 16). size <= 0 returns nil — the
// disabled recorder.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		return nil
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]flightSlot, n)}
}

// Cap returns the ring capacity (0 for the disabled recorder).
func (fr *FlightRecorder) Cap() int {
	if fr == nil {
		return 0
	}
	return len(fr.slots)
}

// Recorded returns the total number of events ever recorded.
func (fr *FlightRecorder) Recorded() uint64 {
	if fr == nil {
		return 0
	}
	return fr.next.Load()
}

// Dropped returns events dropped because a lapped writer still held the
// slot (practically zero outside adversarial tests).
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	return fr.drops.Load()
}

// Record stores one event. Non-blocking, allocation-free, nil-safe; safe
// for any number of concurrent writers.
func (fr *FlightRecorder) Record(ev FlightEvent) {
	if fr == nil {
		return
	}
	seq := fr.next.Add(1)
	s := &fr.slots[(seq-1)&fr.mask]
	if !s.mu.TryLock() {
		// A writer lapped the whole ring while another was mid-copy on this
		// slot (or a snapshot is copying it). Dropping keeps the path
		// non-blocking and tear-free.
		fr.drops.Add(1)
		return
	}
	ev.Seq = seq
	s.ev = ev
	s.mu.Unlock()
}

// Snapshot copies the ring's current contents, oldest first. Slots caught
// mid-write are skipped; the result is a consistent set of fully published
// events (at most Cap of them).
func (fr *FlightRecorder) Snapshot() []FlightEvent {
	if fr == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(fr.slots))
	for i := range fr.slots {
		s := &fr.slots[i]
		if !s.mu.TryLock() {
			continue // mid-write; the writer will publish a newer event anyway
		}
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq == 0 {
			continue // never written
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// ObsMetrics exports the recorder's counters (obs.Source).
func (fr *FlightRecorder) ObsMetrics() []Metric {
	if fr == nil {
		return nil
	}
	return []Metric{
		{Name: "fgs_flight_recorded_total", Help: "Requests recorded into the flight recorder", Kind: KindCounter, Value: float64(fr.Recorded())},
		{Name: "fgs_flight_dropped_total", Help: "Flight recorder events dropped (writer lapped mid-copy)", Kind: KindCounter, Value: float64(fr.Dropped())},
	}
}

// WriteFlightText renders events as a fixed-width table, one line per
// event, oldest first — the dump format for 5xx/slow/SIGQUIT/drain dumps.
func WriteFlightText(w io.Writer, evs []FlightEvent) error {
	if _, err := fmt.Fprintf(w, "%-8s %-26s %-32s %-14s %4s %6s %5s %10s  %s\n",
		"seq", "start", "trace", "endpoint", "st", "epoch", "cache", "total", "stages"); err != nil {
		return err
	}
	for _, ev := range evs {
		cache := "-"
		if ev.CacheHit {
			cache = "hit"
		}
		stages := ""
		for st := Stage(0); st < NumStages; st++ {
			if ev.Stages[st] == 0 {
				continue
			}
			if stages != "" {
				stages += " "
			}
			stages += fmt.Sprintf("%s=%v", st, time.Duration(ev.Stages[st]).Round(time.Microsecond))
		}
		if _, err := fmt.Fprintf(w, "%-8d %-26s %-32s %-14s %4d %6d %5s %10v  %s\n",
			ev.Seq,
			time.Unix(0, ev.Unix).UTC().Format("2006-01-02T15:04:05.000000Z"),
			ev.Trace.String(), ev.Endpoint, ev.Status, ev.Epoch, cache,
			time.Duration(ev.Total).Round(time.Microsecond), stages); err != nil {
			return err
		}
	}
	return nil
}

// Package obs is the pipeline's zero-dependency observability layer:
// hierarchical spans over a deterministic-safe clock, atomic runtime
// counters and histograms, and exporters for the Chrome trace-event format
// and the Prometheus text format.
//
// Design constraints, in order:
//
//   - Provably inert for summary content. Nothing in this package feeds
//     algorithm decisions; spans and counters are reporting-only. The
//     determinism contract (DESIGN.md §7) is enforced by fgslint: obs is the
//     single package blessed to read the wall clock, and the deterministic
//     packages reach time only through the Clock interface.
//   - Near-zero cost when disabled. A nil *Trace yields inert spans (no
//     allocation, no clock reads); a nil *Registry ignores Register/Add; the
//     hot-path counters in mining/pattern are plain or atomic integer
//     increments on structs that exist anyway.
//   - Deterministic output. Exporters sort every series; with a Frozen
//     clock, the span tree itself is reproducible byte for byte.
//
// The pieces compose through Observer, the bundle the CLIs build from
// -fgs.trace / -fgs.metrics-out and hand to core.Config.Obs.
package obs

import (
	"sync"
	"time"
)

// Clock abstracts the wall clock so packages under the determinism contract
// never call time.Now directly. Real runs use System; tests that need
// reproducible span trees use Frozen.
type Clock interface {
	Now() time.Time
}

// System returns the process wall clock — the one sanctioned time.Now call
// site in the deterministic half of the module (fgslint's detrand analyzer
// exempts this package and flags time.Now everywhere else under contract).
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// Frozen is a manually advanced clock for tests: Now returns the same
// instant until Advance moves it. Safe for concurrent use.
type Frozen struct {
	mu sync.Mutex
	t  time.Time
}

// NewFrozen returns a frozen clock starting at the given instant.
func NewFrozen(start time.Time) *Frozen { return &Frozen{t: start} }

// Now returns the clock's current instant.
func (f *Frozen) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Advance moves the clock forward by d.
func (f *Frozen) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// Observer bundles the optional observability handles threaded through the
// pipeline. A nil *Observer — or a nil field — disables that signal; every
// accessor is nil-safe so call sites never branch.
type Observer struct {
	// Trace receives the pipeline's phase spans.
	Trace *Trace
	// Reg receives runtime counters from the instrumented components.
	Reg *Registry
	// Clock overrides the clock used when the pipeline has to build its own
	// trace (nil = System). When Trace is set, its clock wins.
	Clock Clock
}

// NewObserver returns an observer with a fresh trace and registry on the
// given clock (nil = the system clock).
func NewObserver(clock Clock) *Observer {
	if clock == nil {
		clock = System()
	}
	return &Observer{Trace: NewTrace(clock), Reg: NewRegistry(), Clock: clock}
}

// GetTrace returns the observer's trace, or nil when disabled.
func (o *Observer) GetTrace() *Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

// GetReg returns the observer's registry, or nil when disabled.
func (o *Observer) GetReg() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// GetClock returns the observer's clock, defaulting to the system clock.
func (o *Observer) GetClock() Clock {
	if o == nil || o.Clock == nil {
		return System()
	}
	return o.Clock
}

// Register adds a metrics source to the observer's registry, if any.
func (o *Observer) Register(s Source) {
	if o != nil {
		o.Reg.Register(s)
	}
}

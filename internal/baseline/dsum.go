package baseline

import (
	"sort"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// DSumConfig configures the d-summary adaptation.
type DSumConfig struct {
	// D is the pattern diameter bound (the paper sets d = r).
	D int
	// K is the number of summary patterns.
	K int
	// N truncates the covered node set.
	N int
	// Mining bounds the candidate pool (Radius forced to D).
	Mining mining.Config
}

// DSum computes lossy d-summaries following [42]: it generates candidate
// patterns, evaluates their coverage with dual simulation (polynomial,
// injectivity-free — the source of the lossiness), and keeps the k patterns
// with the best informativeness score, which favors "larger" patterns
// weighted by their simulated support:
//
//	score(P) = |sim cover ∩ groups| · |P|
//
// d-sum pays no corrections: what its patterns do not describe is simply
// lost, which is why it is fastest and has the highest coverage error in the
// paper's Figs. 8(a)/9.
func DSum(g *graph.Graph, groups *submod.Groups, cfg DSumConfig) Result {
	clock := cfg.Mining.Obs.GetClock()
	start := clock.Now()
	cfg.Mining.Radius = cfg.D
	// Candidate pool: frequent patterns over the group nodes (the paper's
	// d-sum mines reduced summaries from frequent neighborhood structures).
	freq := mining.Frequent(g, groups.All(), cfg.Mining, cfg.Mining.MaxPatterns, 1)

	m := pattern.NewMatcher(g, cfg.Mining.EmbedCap)
	groupSet := graph.NodeSetOf(groups.All())
	type scored struct {
		p     *pattern.Pattern
		cover []graph.NodeID
		score int
	}
	var pool []scored
	for _, f := range freq {
		sim := m.SimCover(f.P)
		if sim == nil {
			continue
		}
		var cover []graph.NodeID
		for v := range sim {
			if groupSet.Has(v) {
				cover = append(cover, v)
			}
		}
		if len(cover) == 0 {
			continue
		}
		sort.Slice(cover, func(i, j int) bool { return cover[i] < cover[j] })
		pool = append(pool, scored{p: f.P, cover: cover, score: len(cover) * f.P.Size()})
	}
	sort.SliceStable(pool, func(i, j int) bool {
		if pool[i].score != pool[j].score {
			return pool[i].score > pool[j].score
		}
		return pool[i].p.Size() > pool[j].p.Size()
	})
	if len(pool) > cfg.K {
		pool = pool[:cfg.K]
	}

	var covered []graph.NodeID
	seen := graph.NewNodeSet(cfg.N)
	structure := 0
	patterns := make([]*pattern.Pattern, 0, len(pool))
	for _, s := range pool {
		patterns = append(patterns, s.p)
		structure += s.p.Size()
		covered = dedupAppend(covered, s.cover, seen)
	}
	covered = truncate(covered, cfg.N)

	return Result{
		Patterns:      patterns,
		Covered:       covered,
		StructureSize: structure,
		Corrections:   0, // lossy: no corrections maintained
		Elapsed:       clock.Now().Sub(start),
	}
}

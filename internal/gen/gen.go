// Package gen builds the seeded synthetic datasets that stand in for the
// paper's evaluation graphs (Section VIII). The originals — DBpedia movies
// (DBP), a LinkedIn-style social network (LKI), the Microsoft Academic
// citation graph (Cite), and a COVID contact network — are either
// proprietary or too large for a test substrate, so each generator
// reproduces the properties the experiments actually exercise:
//
//   - label/attribute schemas matching the paper's descriptions,
//   - heavy-tailed degree distributions (preferential attachment),
//   - the reported demographic skews (77/23 gender in LKI query results,
//     58/42 age split in the pandemic network),
//   - group sizes large enough for the paper's coverage constraints.
//
// All generators are deterministic for a fixed seed. `scale` multiplies the
// base sizes; scale 1 is laptop-test sized, larger scales approach the
// paper's settings.
package gen

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

// prefAttach wires count edges from each new node to earlier targets with
// probability proportional to (in-degree + 1), producing a heavy-tailed
// in-degree distribution. targets must be non-empty.
type prefAttach struct {
	rng  *rand.Rand
	pool []graph.NodeID // repeated entries implement the degree bias
}

func newPrefAttach(rng *rand.Rand) *prefAttach { return &prefAttach{rng: rng} }

func (pa *prefAttach) seed(v graph.NodeID) { pa.pool = append(pa.pool, v) }

// pick returns a degree-biased target and reinforces it.
func (pa *prefAttach) pick() graph.NodeID {
	v := pa.pool[pa.rng.Intn(len(pa.pool))]
	pa.pool = append(pa.pool, v)
	return v
}

// DBP generates the movie knowledge graph: movies with genre, year, country
// and rating attributes; directors and actors attached by labeled edges;
// degree-skewed "similar" movie links. Base size ≈ 1.4k nodes at scale 1.
func DBP(seed int64, scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	// Genre frequencies are skewed (as in DBpedia): majority genres dominate,
	// which is what makes frequency-driven summarization over-represent them
	// (Example 2 of the paper).
	genres := []string{"Action", "Romance", "Drama", "Comedy", "Thriller"}
	genreWeights := []float64{0.35, 0.15, 0.25, 0.15, 0.10}
	countries := []string{"US", "UK", "FR", "IN", "KR"}
	pickGenre := func() string {
		x := rng.Float64()
		for i, w := range genreWeights {
			if x < w {
				return genres[i]
			}
			x -= w
		}
		return genres[len(genres)-1]
	}

	nMovies := 600 * scale
	nDirectors := 120 * scale
	nActors := 600 * scale

	directors := make([]graph.NodeID, nDirectors)
	for i := range directors {
		directors[i] = g.AddNode("director", map[string]string{
			"country": countries[rng.Intn(len(countries))],
		})
	}
	actors := make([]graph.NodeID, nActors)
	for i := range actors {
		actors[i] = g.AddNode("actor", map[string]string{
			"country": countries[rng.Intn(len(countries))],
		})
	}
	pa := newPrefAttach(rng)
	movies := make([]graph.NodeID, nMovies)
	for i := range movies {
		genre := pickGenre()
		m := g.AddNode("movie", map[string]string{
			"genre":   genre,
			"year":    strconv.Itoa(1980 + rng.Intn(45)),
			"country": countries[rng.Intn(len(countries))],
			"rating":  strconv.FormatFloat(1+9*rng.Float64(), 'f', 1, 64),
		})
		movies[i] = m
		mustEdge(g, directors[rng.Intn(nDirectors)], m, "directed")
		cast := 2 + rng.Intn(4)
		for c := 0; c < cast; c++ {
			mustEdge(g, actors[rng.Intn(nActors)], m, "acted_in")
		}
		// Similar-movie links, degree biased toward popular movies.
		if i > 0 {
			for s := 0; s < 1+rng.Intn(2); s++ {
				mustEdge(g, m, pa.pick(), "similar")
			}
		}
		pa.seed(m)
	}
	return g
}

// LKI generates the social network: users with gender (77/23 skew), degree
// (BS/MS/PhD), industry, experience and city attributes; organizations;
// co-review (user–user, preferential attachment) and employment edges.
// Base size ≈ 2k users at scale 1.
func LKI(seed int64, scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	industries := []string{"Internet", "Finance", "Health", "Education", "Retail"}
	degrees := []string{"BS", "MS", "PhD"}

	nUsers := 2000 * scale
	nOrgs := 80 * scale

	orgs := make([]graph.NodeID, nOrgs)
	for i := range orgs {
		orgs[i] = g.AddNode("org", map[string]string{
			"industry": industries[rng.Intn(len(industries))],
		})
	}
	pa := newPrefAttach(rng)
	users := make([]graph.NodeID, nUsers)
	for i := range users {
		gender := "male"
		if rng.Float64() < 0.23 {
			gender = "female"
		}
		u := g.AddNode("user", map[string]string{
			"gender":   gender,
			"degree":   degrees[rng.Intn(len(degrees))],
			"industry": industries[rng.Intn(len(industries))],
			"exp":      strconv.Itoa(1 + rng.Intn(20)),
			"city":     "c" + strconv.Itoa(rng.Intn(60)),
		})
		users[i] = u
		mustEdge(g, u, orgs[rng.Intn(nOrgs)], "employed")
		if i > 0 {
			// Co-review edges, degree biased: active reviewers attract more.
			for c := 0; c < 1+rng.Intn(3); c++ {
				t := pa.pick()
				if t != u {
					mustEdge(g, u, t, "corev")
				}
			}
		}
		pa.seed(u)
	}
	return g
}

// Cite generates the citation graph: papers with topic, year and venue;
// authors attached by authorship; citations wired preferentially toward
// highly cited papers. Base size ≈ 2.1k nodes at scale 1.
func Cite(seed int64, scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	// Topic frequencies are skewed: ML dominates, Networking is the
	// under-represented group of the paper's collaboration setting.
	topics := []string{"ML", "Networking", "Databases", "Security"}
	topicWeights := []float64{0.45, 0.15, 0.25, 0.15}
	venues := []string{"ICDE", "VLDB", "SIGMOD", "KDD", "NeurIPS"}
	pickTopic := func() string {
		x := rng.Float64()
		for i, w := range topicWeights {
			if x < w {
				return topics[i]
			}
			x -= w
		}
		return topics[len(topics)-1]
	}

	nPapers := 1500 * scale
	nAuthors := 600 * scale

	authors := make([]graph.NodeID, nAuthors)
	for i := range authors {
		authors[i] = g.AddNode("author", map[string]string{
			"affil": "a" + strconv.Itoa(rng.Intn(100)),
		})
	}
	pa := newPrefAttach(rng)
	for i := 0; i < nPapers; i++ {
		p := g.AddNode("paper", map[string]string{
			"topic": pickTopic(),
			"year":  strconv.Itoa(2000 + rng.Intn(24)),
			"venue": venues[rng.Intn(len(venues))],
		})
		for a := 0; a < 1+rng.Intn(3); a++ {
			mustEdge(g, authors[rng.Intn(nAuthors)], p, "authored")
		}
		if i > 0 {
			for c := 0; c < 1+rng.Intn(4); c++ {
				t := pa.pick()
				if t != p {
					mustEdge(g, p, t, "cite")
				}
			}
		}
		pa.seed(p)
	}
	return g
}

// Pandemic generates the contact network of the Fig. 12 case study: n
// citizens (58% age < 50), clustered into households/communities with a few
// long-range contacts — a small-world contact topology.
func Pandemic(seed int64, n int) *graph.Graph {
	if n < 10 {
		n = 10
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	citizens := make([]graph.NodeID, n)
	for i := range citizens {
		age := 50 + rng.Intn(45)
		if rng.Float64() < 0.58 {
			age = 5 + rng.Intn(45)
		}
		gender := "m"
		if rng.Intn(2) == 0 {
			gender = "f"
		}
		group := "young"
		if age >= 50 {
			group = "senior"
		}
		citizens[i] = g.AddNode("citizen", map[string]string{
			"age":      strconv.Itoa(age),
			"agegroup": group,
			"gender":   gender,
			"history":  []string{"none", "recovered"}[rng.Intn(2)],
		})
	}
	// Community structure: ring of overlapping neighborhoods, plus denser
	// contact among seniors — the age-dependent spreading structure the
	// Bucharest study [18] reports, which is what makes the [20,80]
	// senior-heavy vaccine allocation outperform [80,20] in Fig. 12.
	var seniors []graph.NodeID
	for i, c := range citizens {
		if v, _ := g.AttrString(c, "agegroup"); v == "senior" {
			seniors = append(seniors, citizens[i])
		}
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ {
			j := (i + d) % n
			mustEdge(g, citizens[i], citizens[j], "contact")
		}
		// Long-range contacts.
		if rng.Float64() < 0.15 {
			j := rng.Intn(n)
			if j != i {
				mustEdge(g, citizens[i], citizens[j], "contact")
			}
		}
	}
	// Senior-to-senior long-range contacts (community centers, care homes).
	for _, s := range seniors {
		for k := 0; k < 4; k++ {
			t := seniors[rng.Intn(len(seniors))]
			if t != s {
				mustEdge(g, s, t, "contact")
			}
		}
	}
	return g
}

// mustEdge inserts an edge, ignoring duplicates (the generators may re-pick
// the same degree-biased target).
func mustEdge(g *graph.Graph, from, to graph.NodeID, label string) {
	_ = g.AddEdge(from, to, label) //lint:allow errdrop AddEdge only fails on duplicates, which the degree-biased generators produce by design
}

// GroupsByAttr induces groups over nodes with the given label, splitting by
// the values of an attribute key. Every listed value becomes one group with
// the coverage constraint [lower, upper]; nodes with other values are left
// ungrouped. It fails if a requested value has fewer than upper members.
func GroupsByAttr(g *graph.Graph, label, key string, values []string, lower, upper int) (*submod.Groups, error) {
	kid, ok := g.AttrKeyID(key)
	if !ok {
		return nil, fmt.Errorf("gen: attribute %q does not occur", key)
	}
	byVal := make(map[string][]graph.NodeID, len(values))
	want := make(map[string]bool, len(values))
	for _, v := range values {
		want[v] = true
	}
	for _, v := range g.NodesWithLabel(label) {
		vid, ok := g.AttrValue(v, kid)
		if !ok {
			continue
		}
		val := g.AttrValName(vid)
		if want[val] {
			byVal[val] = append(byVal[val], v)
		}
	}
	groups := make([]submod.Group, 0, len(values))
	for _, val := range values {
		members := byVal[val]
		if len(members) < upper {
			return nil, fmt.Errorf("gen: group %s=%s has %d members, below upper bound %d", key, val, len(members), upper)
		}
		groups = append(groups, submod.Group{Name: key + "=" + val, Members: members, Lower: lower, Upper: upper})
	}
	return submod.NewGroups(groups...)
}

// GroupsByAttrPairs induces groups over combinations of two attributes
// (e.g. gender × degree in the paper's LKI setting). Each pair of values
// becomes one group named "k1=v1,k2=v2".
func GroupsByAttrPairs(g *graph.Graph, label, key1 string, vals1 []string, key2 string, vals2 []string, lower, upper int) (*submod.Groups, error) {
	k1, ok1 := g.AttrKeyID(key1)
	k2, ok2 := g.AttrKeyID(key2)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("gen: attributes %q/%q do not occur", key1, key2)
	}
	type pair struct{ a, b string }
	byPair := make(map[pair][]graph.NodeID)
	for _, v := range g.NodesWithLabel(label) {
		v1, ok := g.AttrValue(v, k1)
		if !ok {
			continue
		}
		v2, ok := g.AttrValue(v, k2)
		if !ok {
			continue
		}
		byPair[pair{g.AttrValName(v1), g.AttrValName(v2)}] = append(byPair[pair{g.AttrValName(v1), g.AttrValName(v2)}], v)
	}
	var groups []submod.Group
	for _, a := range vals1 {
		for _, b := range vals2 {
			members := byPair[pair{a, b}]
			if len(members) < upper {
				return nil, fmt.Errorf("gen: group %s=%s,%s=%s has %d members, below upper bound %d", key1, a, key2, b, len(members), upper)
			}
			groups = append(groups, submod.Group{
				Name:    key1 + "=" + a + "," + key2 + "=" + b,
				Members: members,
				Lower:   lower,
				Upper:   upper,
			})
		}
	}
	return submod.NewGroups(groups...)
}

package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

// testImage builds a small deterministic graph plus a synthetic maintainer
// checkpoint — enough structure to make snapshot round-trips meaningful
// without dragging the whole engine into the store's unit tests (the server
// e2e covers the real thing).
func testImage(t testing.TB) (*graph.Graph, *core.MaintainerState) {
	t.Helper()
	g := graph.New()
	for i := 0; i < 8; i++ {
		attrs := map[string]string{"exp": "3"}
		if i%2 == 0 {
			attrs["gender"] = "m"
		}
		g.AddNode("user", attrs)
	}
	for i := 0; i < 8; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%8), "recommend"); err != nil {
			t.Fatal(err)
		}
	}
	ms := &core.MaintainerState{
		Selector: &submod.StreamerState{
			Selected: []graph.NodeID{2, 4},
			Weights:  []float64{3.5, 1.25},
			Buckets:  [][]graph.NodeID{{2}, {4}},
		},
		Patterns: []core.PatternState{{
			Pattern:      "n 0 user\nf 0\n",
			Covered:      []graph.NodeID{2, 4},
			CoveredEdges: []graph.EdgeRef{{From: 2, To: 3, Label: 0}},
			CP:           1,
		}},
		Candidates: 7,
		Windows:    3,
	}
	return g, ms
}

// graphBytes renders a graph in FGSB form for byte-level comparison.
func graphBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openStore opens a store in dir, failing the test on error.
func openStore(t testing.TB, opts Options) (*Store, *Recovered) {
	t.Helper()
	st, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, rec
}

// seedStore opens a fresh store in a temp dir, seals the test image as
// snapshot 0, and appends records 1..n. Returns the dir and the closed
// store's inputs for later comparison.
func seedStore(t testing.TB, opts Options, n int) (string, *graph.Graph, *core.MaintainerState, []Record) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	g, ms := testImage(t)
	st, rec := openStore(t, opts)
	if !rec.Fresh {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if err := st.WriteSnapshot(0, g, ms); err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 0, n)
	for i := 1; i <= n; i++ {
		r := Record{Epoch: uint64(i), Delta: core.Delta{Insert: []core.EdgeUpdate{{
			From: graph.NodeID(i % 8), To: graph.NodeID((i + 3) % 8), Label: "corev",
		}}}}
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return opts.Dir, g, ms, recs
}

// sameTail compares recovered records to the appended ones by re-encoding,
// which sidesteps nil-vs-empty slice noise.
func sameTail(t testing.TB, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("tail has %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(appendRecord(nil, got[i]), appendRecord(nil, want[i])) {
			t.Fatalf("tail record %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestRecoverSnapshotAndTail is the core recovery contract: open, snapshot,
// append, close, reopen — the second open must return the identical graph
// bytes, the identical checkpoint, and the full tail in epoch order.
func TestRecoverSnapshotAndTail(t *testing.T) {
	for _, policy := range []string{FsyncBatch, FsyncGroup, FsyncOff} {
		t.Run(policy, func(t *testing.T) {
			dir, g, ms, recs := seedStore(t, Options{Fsync: policy}, 5)
			st, rec := openStore(t, Options{Dir: dir, Fsync: policy})
			defer st.Close() //lint:allow errdrop (test teardown)
			if rec.Fresh || rec.Truncated {
				t.Fatalf("recovered fresh=%v truncated=%v", rec.Fresh, rec.Truncated)
			}
			if rec.SnapshotEpoch != 0 || rec.Epoch != 5 {
				t.Fatalf("recovered epochs snapshot=%d final=%d", rec.SnapshotEpoch, rec.Epoch)
			}
			if !bytes.Equal(graphBytes(t, rec.Graph), graphBytes(t, g)) {
				t.Fatal("recovered graph differs from the snapshotted one")
			}
			if !reflect.DeepEqual(rec.State, ms) {
				t.Fatalf("recovered checkpoint differs:\n got %+v\nwant %+v", rec.State, ms)
			}
			sameTail(t, rec.Tail, recs)
		})
	}
}

// TestReopenedSegmentAccepts: after recovery the last segment keeps
// accepting appends, and a third open sees the extended tail.
func TestReopenedSegmentAccepts(t *testing.T) {
	dir, _, _, recs := seedStore(t, Options{Fsync: FsyncOff}, 3)
	st, rec := openStore(t, Options{Dir: dir, Fsync: FsyncOff})
	if rec.Epoch != 3 {
		t.Fatalf("recovered epoch %d", rec.Epoch)
	}
	next := Record{Epoch: 4, Delta: core.Delta{Insert: []core.EdgeUpdate{{From: 0, To: 5, Label: "corev"}}}}
	if err := st.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec2 := openStore(t, Options{Dir: dir})
	defer st2.Close() //lint:allow errdrop (test teardown)
	sameTail(t, rec2.Tail, append(recs, next))
	if rec2.Segments != 1 {
		t.Fatalf("reopened append split into %d segments", rec2.Segments)
	}
}

// TestTornFinalRecordTruncated simulates a crash mid-append by stapling a
// partial record to the last segment: recovery must keep every intact
// record, cut the file back to the boundary, and report the truncation.
func TestTornFinalRecordTruncated(t *testing.T) {
	dir, _, _, recs := seedStore(t, Options{Fsync: FsyncOff}, 4)
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecord(nil, Record{Epoch: 5, Delta: core.Delta{Insert: []core.EdgeUpdate{{From: 1, To: 2, Label: "corev"}}}})
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, rec := openStore(t, Options{Dir: dir})
	defer st.Close() //lint:allow errdrop (test teardown)
	if !rec.Truncated {
		t.Fatal("torn record not reported")
	}
	if rec.Epoch != 4 {
		t.Fatalf("recovered epoch %d, want 4 (torn record must not replay)", rec.Epoch)
	}
	sameTail(t, rec.Tail, recs)
	if fi2, err := os.Stat(last); err != nil || fi2.Size() != fi.Size() {
		t.Fatalf("segment not cut back: %d bytes, want %d (%v)", fi2.Size(), fi.Size(), err)
	}
}

// TestCorruptNonFinalSegmentFails: a torn record is only a crash signature
// in the final segment — anywhere earlier it is corruption, and recovery
// must refuse rather than truncate data away.
func TestCorruptNonFinalSegmentFails(t *testing.T) {
	// A tiny segment cap puts each record in its own segment.
	dir, _, _, _ := seedStore(t, Options{Fsync: FsyncOff, SegmentBytes: 32}, 4)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, have %d", len(segs))
	}
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+2] ^= 0xff // inside the first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open accepted a mid-stream corrupt WAL")
	}
}

// TestSnapshotCorruptionRejected flips a byte of the live snapshot: the
// checksum must fail the open before any parsing happens.
func TestSnapshotCorruptionRejected(t *testing.T) {
	dir, _, _, _ := seedStore(t, Options{Fsync: FsyncOff}, 2)
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots: %v %v", snaps, err)
	}
	path := filepath.Join(dir, snaps[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open accepted a corrupt snapshot")
	}
}

// TestLostManifestRefusesFreshStart: WAL segments without a manifest mean a
// damaged directory, not an empty one; silently starting fresh would drop
// the data.
func TestLostManifestRefusesFreshStart(t *testing.T) {
	dir, _, _, _ := seedStore(t, Options{Fsync: FsyncOff}, 2)
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open treated a manifest-less directory with state as fresh")
	}
}

// TestSnapshotAdvanceGC: committing a snapshot at a later epoch must retire
// the older snapshot, start a fresh segment on the next append, and collect
// fully covered segments at the following commit — leaving a directory a
// new open can recover with an empty tail.
func TestSnapshotAdvanceGC(t *testing.T) {
	dir, g, ms, _ := seedStore(t, Options{Fsync: FsyncOff}, 4)
	st, rec := openStore(t, Options{Dir: dir, Fsync: FsyncOff})
	if err := st.WriteSnapshot(rec.Epoch, g, ms); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotEpoch() != 4 {
		t.Fatalf("snapshot epoch %d after commit", st.SnapshotEpoch())
	}
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("old snapshot not collected: %v (%v)", snaps, err)
	}
	// The next append rolls into a segment named for epoch 5; the commit
	// after it can then prove the old segment covered and delete it.
	if err := st.Append(Record{Epoch: 5, Delta: core.Delta{Insert: []core.EdgeUpdate{{From: 2, To: 6, Label: "corev"}}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(5, g, ms); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("covered segments not collected: %v (%v)", segs, err)
	}
	if e, _ := parseSegmentName(segs[0]); e != 5 {
		t.Fatalf("surviving segment %q, want the epoch-5 one", segs[0])
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2 := openStore(t, Options{Dir: dir})
	defer st2.Close() //lint:allow errdrop (test teardown)
	if rec2.SnapshotEpoch != 5 || rec2.Epoch != 5 || len(rec2.Tail) != 0 {
		t.Fatalf("post-gc recovery: snapshot=%d epoch=%d tail=%d", rec2.SnapshotEpoch, rec2.Epoch, len(rec2.Tail))
	}
}

// TestSegmentRoll: a tiny segment cap forces a roll per append; recovery
// must stitch the multi-segment tail back together in order.
func TestSegmentRoll(t *testing.T) {
	dir, _, _, recs := seedStore(t, Options{Fsync: FsyncOff, SegmentBytes: 32}, 6)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("tiny cap produced only %d segments", len(segs))
	}
	st, rec := openStore(t, Options{Dir: dir, SegmentBytes: 32})
	defer st.Close() //lint:allow errdrop (test teardown)
	sameTail(t, rec.Tail, recs)
	if rec.Segments != len(segs) {
		t.Fatalf("recovered segment count %d, want %d", rec.Segments, len(segs))
	}
}

// TestOneSnapshotInFlight: a second BeginSnapshot while one is open must be
// refused; Abort releases the slot and leaves no tmp litter.
func TestOneSnapshotInFlight(t *testing.T) {
	dir := t.TempDir()
	g, ms := testImage(t)
	st, _ := openStore(t, Options{Dir: dir, Fsync: FsyncOff})
	defer st.Close() //lint:allow errdrop (test teardown)
	sn, err := st.BeginSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.BeginSnapshot(0); err == nil {
		t.Fatal("second in-flight snapshot accepted")
	}
	sn.Abort()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".tmp" {
			t.Fatalf("aborted snapshot left %s", ent.Name())
		}
	}
	if err := st.WriteSnapshot(0, g, ms); err != nil {
		t.Fatalf("snapshot after abort: %v", err)
	}
}

// TestSweepTmp: leftover tmp files from a crash mid-snapshot are removed at
// open and do not confuse recovery.
func TestSweepTmp(t *testing.T) {
	dir, _, _, _ := seedStore(t, Options{Fsync: FsyncOff}, 2)
	junk := filepath.Join(dir, snapshotName(9)+".tmp")
	if err := os.WriteFile(junk, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, rec := openStore(t, Options{Dir: dir})
	defer st.Close() //lint:allow errdrop (test teardown)
	if rec.Epoch != 2 {
		t.Fatalf("recovered epoch %d", rec.Epoch)
	}
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatalf("tmp file survived open: %v", err)
	}
}

// TestEpochGapFails: a hole in the record stream (lost segment, reordered
// restore) must fail recovery loudly instead of replaying around it.
func TestEpochGapFails(t *testing.T) {
	dir := t.TempDir()
	g, ms := testImage(t)
	st, _ := openStore(t, Options{Dir: dir, Fsync: FsyncOff})
	if err := st.WriteSnapshot(0, g, ms); err != nil {
		t.Fatal(err)
	}
	for _, e := range []uint64{1, 3} { // skip 2
		if err := st.Append(Record{Epoch: e, Delta: core.Delta{Insert: []core.EdgeUpdate{{From: 0, To: 1, Label: "x"}}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open replayed across an epoch gap")
	}
}

// TestBadFsyncPolicy pins the options validation.
func TestBadFsyncPolicy(t *testing.T) {
	if _, _, err := Open(Options{Dir: t.TempDir(), Fsync: "yolo"}); err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("empty data dir accepted")
	}
}

// TestObsMetrics: the exported instruments reflect activity — appends,
// snapshot count, and the live epoch gauge.
func TestObsMetrics(t *testing.T) {
	dir, g, ms, _ := seedStore(t, Options{Fsync: FsyncOff}, 3)
	st, _ := openStore(t, Options{Dir: dir, Fsync: FsyncOff})
	defer st.Close() //lint:allow errdrop (test teardown)
	if err := st.WriteSnapshot(3, g, ms); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, m := range st.ObsMetrics() {
		vals[m.Name] = m.Value
	}
	if vals["fgs_store_snapshot_epoch"] != 3 {
		t.Fatalf("snapshot epoch gauge %v", vals["fgs_store_snapshot_epoch"])
	}
	if vals["fgs_store_snapshots_total"] != 1 {
		t.Fatalf("snapshot counter %v", vals["fgs_store_snapshots_total"])
	}
	if vals["fgs_store_recovery_replayed_records"] != 3 {
		t.Fatalf("replay gauge %v", vals["fgs_store_recovery_replayed_records"])
	}
}

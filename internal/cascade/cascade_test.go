package cascade

import (
	"testing"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("citizen", nil)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), "contact"); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSpreadDeterministicEndpoints(t *testing.T) {
	g := chainGraph(t, 10)
	// P=1: everything reachable gets infected.
	got := Spread(g, []graph.NodeID{0}, graph.NewNodeSet(0), Model{P: 1, Trials: 3, Seed: 1})
	if got != 10 {
		t.Fatalf("full-probability spread = %v, want 10", got)
	}
	// P→0: only the seeds.
	got = Spread(g, []graph.NodeID{0, 5}, graph.NewNodeSet(0), Model{P: 1e-12, Trials: 3, Seed: 1})
	if got != 2 {
		t.Fatalf("zero-probability spread = %v, want 2 seeds", got)
	}
}

func TestSpreadRespectsVaccination(t *testing.T) {
	g := chainGraph(t, 10)
	// Vaccinating node 5 cuts the chain: infection from 0 stops at 4.
	vax := graph.NodeSetOf([]graph.NodeID{5})
	got := Spread(g, []graph.NodeID{0}, vax, Model{P: 1, Trials: 3, Seed: 1})
	if got != 5 {
		t.Fatalf("cut-chain spread = %v, want 5 (nodes 0..4)", got)
	}
	// A vaccinated seed never ignites.
	got = Spread(g, []graph.NodeID{5}, vax, Model{P: 1, Trials: 3, Seed: 1})
	if got != 0 {
		t.Fatalf("vaccinated seed spread = %v, want 0", got)
	}
}

func TestSpreadEdgeLabelFilter(t *testing.T) {
	g := chainGraph(t, 5)
	if err := g.AddEdge(0, 4, "flight"); err != nil {
		t.Fatal(err)
	}
	got := Spread(g, []graph.NodeID{0}, graph.NewNodeSet(0), Model{P: 1, Trials: 1, Seed: 1, EdgeLabel: "contact"})
	if got != 5 {
		t.Fatalf("labeled spread = %v, want 5", got)
	}
	if got := Spread(g, []graph.NodeID{0}, graph.NewNodeSet(0), Model{P: 1, Trials: 1, Seed: 1, EdgeLabel: "nosuch"}); got != 0 {
		t.Fatalf("unknown label spread = %v, want 0", got)
	}
}

func TestSpreadMonotoneInP(t *testing.T) {
	g := gen.Pandemic(3, 2000)
	seeds := TopDegreeSeeds(g, 10)
	lo := Spread(g, seeds, graph.NewNodeSet(0), Model{P: 0.05, Trials: 10, Seed: 7})
	hi := Spread(g, seeds, graph.NodeSet{}, Model{P: 0.3, Trials: 10, Seed: 7})
	if hi <= lo {
		t.Fatalf("spread not monotone in P: %.1f vs %.1f", lo, hi)
	}
}

func TestTopDegreeSeeds(t *testing.T) {
	g := graph.New()
	hub := g.AddNode("citizen", nil)
	for i := 0; i < 5; i++ {
		leaf := g.AddNode("citizen", nil)
		if err := g.AddEdge(hub, leaf, "contact"); err != nil {
			t.Fatal(err)
		}
	}
	seeds := TopDegreeSeeds(g, 2)
	if len(seeds) != 2 || seeds[0] != hub {
		t.Fatalf("seeds = %v, hub must rank first", seeds)
	}
	if got := TopDegreeSeeds(g, 100); len(got) != g.NumNodes() {
		t.Fatalf("k beyond size should clamp: %d", len(got))
	}
}

func TestAllocateVaccinesPicksHubs(t *testing.T) {
	g := gen.Pandemic(11, 500)
	groups, err := gen.GroupsByAttr(g, "citizen", "agegroup", []string{"young", "senior"}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	vax := AllocateVaccines(g, groups, []int{10, 5}, graph.NewNodeSet(0))
	if vax.Len() != 15 {
		t.Fatalf("vaccinated %d, want 15", vax.Len())
	}
	// Every vaccinated young node must have degree >= any unvaccinated one.
	minVax := 1 << 30
	maxUnvax := 0
	for _, v := range groups.At(0).Members {
		d := g.Degree(v)
		if vax.Has(v) {
			if d < minVax {
				minVax = d
			}
		} else if d > maxUnvax {
			maxUnvax = d
		}
	}
	if minVax < maxUnvax {
		t.Fatalf("vaccination skipped a hub: min vaccinated degree %d < max unvaccinated %d", minVax, maxUnvax)
	}
}

func TestAllocateVaccinesClamps(t *testing.T) {
	g := chainGraph(t, 6)
	groups, err := submod.NewGroups(submod.Group{Name: "all", Members: []graph.NodeID{0, 1, 2}, Lower: 0, Upper: 3})
	if err != nil {
		t.Fatal(err)
	}
	vax := AllocateVaccines(g, groups, []int{99}, graph.NewNodeSet(0))
	if vax.Len() != 3 {
		t.Fatalf("allocation should clamp to group size: %d", vax.Len())
	}
}

// The Fig. 12 shape: vaccinating the senior group more heavily (the seniors
// are... in the paper [20,80] beats [80,20]). With top-degree seeds the
// better allocation protects the hubs regardless of group, so we assert the
// weaker, always-true property: more total vaccines never increase
// infections under the same seed.
func TestSimulateImmunization(t *testing.T) {
	g := gen.Pandemic(13, 3000)
	groups, err := gen.GroupsByAttr(g, "citizen", "agegroup", []string{"young", "senior"}, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	seeds := TopDegreeSeeds(g, 10)
	m := Model{P: 0.15, Trials: 15, Seed: 21}
	none := SimulateImmunization(g, groups, seeds, []int{0, 0}, m)
	some := SimulateImmunization(g, groups, seeds, []int{50, 50}, m)
	if some.Vaccinated != 100 {
		t.Fatalf("vaccinated = %d", some.Vaccinated)
	}
	if some.Infected >= none.Infected {
		t.Fatalf("vaccination did not reduce infections: %.1f vs %.1f", some.Infected, none.Infected)
	}
	if len(some.Alloc) != 2 || some.Alloc[0] != 50 {
		t.Fatalf("alloc not recorded: %v", some.Alloc)
	}
}

package server

import (
	"context"
	"errors"

	"github.com/cwru-db/fgs/internal/obs"
)

// errSaturated reports that both the worker slots and the wait queue are
// full; the handler turns it into 503 + Retry-After.
var errSaturated = errors.New("server: all worker slots busy and admission queue full")

// admission is the bounded worker semaphore gating every compute request.
// slots caps concurrently running requests; queue caps requests waiting for
// a slot. An arrival finding both full is rejected immediately — the
// backpressure signal — rather than queued without bound, so a traffic
// spike degrades into fast 503s instead of a latency collapse.
type admission struct {
	slots chan struct{}
	queue chan struct{}

	accepted obs.Counter
	rejected obs.Counter
	expired  obs.Counter // deadline/cancellation while queued
}

// newAdmission sizes the semaphore: slots concurrent requests, queueDepth
// waiters (0 = reject as soon as all slots are busy).
func newAdmission(slots, queueDepth int) *admission {
	return &admission{
		slots: make(chan struct{}, slots),
		queue: make(chan struct{}, queueDepth),
	}
}

// acquire claims a worker slot, waiting in the bounded queue if necessary.
// It returns the release function on success; errSaturated when slots and
// queue are both full; or ctx.Err() when the caller's deadline expires (or
// the client disconnects) while queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		a.accepted.Inc()
		return a.release, nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejected.Inc()
		return nil, errSaturated
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		a.accepted.Inc()
		return a.release, nil
	case <-ctx.Done():
		a.expired.Inc()
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// stats snapshots admission control for /v1/stats.
func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Accepted: a.accepted.Load(),
		Rejected: a.rejected.Load(),
		Expired:  a.expired.Load(),
		Slots:    cap(a.slots),
		Queue:    cap(a.queue),
	}
}

// ObsMetrics exports the admission counters (obs.Source).
func (a *admission) ObsMetrics() []obs.Metric {
	st := a.stats()
	return []obs.Metric{
		{Name: "fgs_server_admitted_total", Help: "Requests admitted to a worker slot", Kind: obs.KindCounter, Value: float64(st.Accepted)},
		{Name: "fgs_server_rejected_total", Help: "Requests rejected with 503 (slots and queue full)", Kind: obs.KindCounter, Value: float64(st.Rejected)},
		{Name: "fgs_server_expired_total", Help: "Requests whose deadline expired while queued", Kind: obs.KindCounter, Value: float64(st.Expired)},
	}
}

// Command fgslint is the repository's determinism & safety linter: a go
// vet-style multichecker that enforces the contract behind the promise that
// summaries and figures are byte-identical across runs and worker counts,
// and — since the control-flow suite — that the MVCC service tier's
// resources pair up and its published epochs stay frozen.
//
// Usage:
//
//	fgslint ./...                    # whole module (what CI runs)
//	fgslint ./internal/experiments   # one package
//	fgslint -checks maporder,detrand ./internal/...
//	fgslint -json ./...              # machine-readable findings + allow inventory
//	fgslint -budget lint-budget.json ./...        # enforce the allow ratchet
//	fgslint -write-budget lint-budget.json ./...  # rewrite the budget to current counts
//
// Analyzers (see DESIGN.md "Determinism contract & lint" and "Control-flow
// lint architecture"):
//
//	maporder        map iteration order reaching an append/write path unsorted
//	detrand         global math/rand, unseeded rand.New, time.Now in deterministic packages
//	nopanic         panic/log.Fatal/os.Exit in library packages
//	lockdiscipline  copied mutex-bearing structs; locks passed by value
//	pairdiscipline  acquire without release on some path (locks, pins, slots, spans, pools)
//	frozenview      mutation of a frozen MVCC read view
//	errdrop         discarded error returns in library packages
//	ctxpoll         unbounded server loops that never poll ctx.Done()
//
// A finding is suppressed by "//lint:allow <analyzer> <why>" on the flagged
// line or the line above it. Every allow counts against lint-budget.json:
// with -budget, fgslint exits 1 if any analyzer's allow count exceeds its
// budgeted count, so suppressions only grow with a conscious budget edit in
// the same change. fgslint exits 1 on findings or budget overruns, 2 on
// usage or load errors. It is built entirely on the standard library's
// go/ast and go/types, so it runs offline with no module downloads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/cwru-db/fgs/internal/lint"
)

// jsonFinding mirrors lint.Diagnostic with a stable, documented field order
// (encoding/json emits struct fields in declaration order).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output: findings first, then the allow inventory
// the budget ratchet compares against (map keys are sorted by encoding/json).
type jsonReport struct {
	Findings []jsonFinding  `json:"findings"`
	Allows   map[string]int `json:"allows"`
}

func main() {
	checks := flag.String("checks", "all", "comma-separated analyzer names, or 'all'")
	asJSON := flag.Bool("json", false, "emit findings and the allow inventory as JSON on stdout")
	budgetPath := flag.String("budget", "", "enforce the //lint:allow budget in this JSON file")
	writeBudget := flag.String("write-budget", "", "rewrite this JSON file to the current allow counts and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fgslint [-checks list] [-json] [-budget file | -write-budget file] [./... | ./pkg/... | ./pkg]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}

	allows := lint.CountAllows(pkgs)
	if *writeBudget != "" {
		if err := writeBudgetFile(*writeBudget, allows); err != nil {
			fmt.Fprintln(os.Stderr, "fgslint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "fgslint: allow budget written to %s\n", *writeBudget)
		return
	}

	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgslint:", err)
		os.Exit(2)
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	if *asJSON {
		report := jsonReport{Findings: []jsonFinding{}, Allows: allows}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "fgslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	failed := false
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fgslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		failed = true
	}
	if *budgetPath != "" {
		overruns, err := checkBudget(*budgetPath, allows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgslint:", err)
			os.Exit(2)
		}
		for _, line := range overruns {
			fmt.Fprintln(os.Stderr, "fgslint:", line)
		}
		if len(overruns) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeBudgetFile persists the allow counts, keys sorted, one per line.
func writeBudgetFile(path string, allows map[string]int) error {
	data, err := json.MarshalIndent(allows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkBudget compares the tree's allow counts against the budget file and
// returns one message per overrun. Counts under budget are reported on
// stderr as a hint to ratchet the budget down, but do not fail.
func checkBudget(path string, allows map[string]int) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("allow budget: %w", err)
	}
	budget := make(map[string]int)
	if err := json.Unmarshal(data, &budget); err != nil {
		return nil, fmt.Errorf("allow budget %s: %w", path, err)
	}
	names := make([]string, 0, len(allows))
	for name := range allows {
		names = append(names, name)
	}
	sort.Strings(names)
	var overruns []string
	for _, name := range names {
		if n, b := allows[name], budget[name]; n > b {
			overruns = append(overruns, fmt.Sprintf(
				"allow budget exceeded for %s: %d //lint:allow directive(s), budget %d — remove the new allow or consciously raise %s in the same change",
				name, n, b, path))
		}
	}
	budgetNames := make([]string, 0, len(budget))
	for name := range budget {
		budgetNames = append(budgetNames, name)
	}
	sort.Strings(budgetNames)
	for _, name := range budgetNames {
		if n, b := allows[name], budget[name]; n < b {
			fmt.Fprintf(os.Stderr, "fgslint: note: %s allow count (%d) is under budget (%d); ratchet %s down\n", name, n, b, path)
		}
	}
	return overruns, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

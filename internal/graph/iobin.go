package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary exchange format exists for the million-node scale tier: the
// line-oriented text format tokenizes, escapes, and re-interns every record,
// which is far too slow to load a graph with 10M+ edges. The binary codec
// streams length-prefixed sections and rebuilds the graph's internal arrays
// directly, skipping the per-edge AddEdge path entirely.
//
// Layout (all integers are unsigned varints):
//
//	magic "FGSB" + version byte 0x01
//	numNodes, numEdges
//	4 interner tables (node labels, edge labels, attr keys, attr values),
//	  each: count, then count length-prefixed strings in ID order
//	per node: label ID
//	per node: attr count, then (key ID, value ID) pairs
//	per node: in-degree            (lets the loader pre-size the in arena)
//	per node: out-degree, then (to, edge label ID) per out-edge
//
// Edges are serialized source-major in adjacency order and assigned fresh
// dense IDs on load, exactly like the text codec: round-tripping a graph
// through either codec yields the same canonical store (same adjacency
// order, same EdgeID assignment, empty free list). Interner tables are
// dumped in ID order so interned identifiers survive the trip verbatim.

// binMagic identifies the binary format; the trailing byte is the version.
var binMagic = []byte{'F', 'G', 'S', 'B', 0x01}

// maxBinString bounds one label/key/value string; anything larger indicates
// a corrupt or hostile file, not a real graph.
const maxBinString = 1 << 20

// WriteBinary serializes the graph in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var scratch [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		_, _ = bw.Write(scratch[:n])
	}
	putStr := func(s string) {
		putUv(uint64(len(s)))
		_, _ = bw.WriteString(s)
	}
	putTable := func(in *Interner) {
		putUv(uint64(in.Len()))
		for id := int32(0); id < int32(in.Len()); id++ {
			putStr(in.Name(id))
		}
	}

	_, _ = bw.Write(binMagic)
	n := g.NumNodes()
	putUv(uint64(n))
	putUv(uint64(g.numEdges))
	putTable(g.nodeLabels)
	putTable(g.edgeLabels)
	putTable(g.attrKeys)
	putTable(g.attrVals)
	for v := 0; v < n; v++ {
		putUv(uint64(g.labelOf[v]))
	}
	for v := 0; v < n; v++ {
		tuple := g.attrsOf[v]
		putUv(uint64(len(tuple)))
		for _, a := range tuple {
			putUv(uint64(a.Key))
			putUv(uint64(a.Val))
		}
	}
	for v := 0; v < n; v++ {
		putUv(uint64(len(g.in[v])))
	}
	for v := 0; v < n; v++ {
		out := g.out[v]
		putUv(uint64(len(out)))
		for _, e := range out {
			putUv(uint64(e.To))
			putUv(uint64(e.Label))
		}
	}
	// bufio's error is sticky, so one check at the end covers every write.
	return bw.Flush()
}

// ReadBinary parses a graph in the binary format. The loader is streaming:
// it never buffers the file, pre-sizes every internal array from the
// section headers, and builds adjacency in two contiguous arenas.
func ReadBinary(r io.Reader) (*Graph, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	for i := range magic {
		if magic[i] != binMagic[i] {
			return nil, fmt.Errorf("graph: not a binary graph file (bad magic)")
		}
	}
	return readBinaryBody(br)
}

func readBinaryBody(br *bufio.Reader) (*Graph, error) {
	uv := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("graph: binary %s: %w", what, err)
		}
		return v, nil
	}
	uvInt := func(what string, bound int) (int, error) {
		v, err := uv(what)
		if err != nil {
			return 0, err
		}
		if bound >= 0 && v > uint64(bound) {
			return 0, fmt.Errorf("graph: binary %s %d out of range (max %d)", what, v, bound)
		}
		return int(v), nil
	}
	readTable := func(what string) (*Interner, error) {
		count, err := uvInt(what+" table size", 1<<31-1)
		if err != nil {
			return nil, err
		}
		in := NewInterner()
		buf := make([]byte, 0, 64)
		for i := 0; i < count; i++ {
			l, err := uvInt(what+" string length", maxBinString)
			if err != nil {
				return nil, err
			}
			if cap(buf) < l {
				buf = make([]byte, l)
			}
			buf = buf[:l]
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("graph: binary %s string: %w", what, err)
			}
			if id := in.Intern(string(buf)); int(id) != i {
				return nil, fmt.Errorf("graph: binary %s table has duplicate string %q", what, buf)
			}
		}
		return in, nil
	}

	n, err := uvInt("node count", 1<<31-1)
	if err != nil {
		return nil, err
	}
	numEdges, err := uvInt("edge count", 1<<31-1)
	if err != nil {
		return nil, err
	}
	nodeLabels, err := readTable("node label")
	if err != nil {
		return nil, err
	}
	edgeLabels, err := readTable("edge label")
	if err != nil {
		return nil, err
	}
	attrKeys, err := readTable("attr key")
	if err != nil {
		return nil, err
	}
	attrVals, err := readTable("attr value")
	if err != nil {
		return nil, err
	}

	g := &Graph{
		nodeLabels: nodeLabels,
		edgeLabels: edgeLabels,
		attrKeys:   attrKeys,
		attrVals:   attrVals,
		labelOf:    make([]LabelID, n),
		attrsOf:    make([][]Attr, n),
		out:        make([][]Edge, n),
		in:         make([][]Edge, n),
		byLabel:    make(map[LabelID][]NodeID, nodeLabels.Len()),
		edgeDefs:   make([]EdgeRef, 0, numEdges),
		edgeIndex:  make(map[EdgeRef]EdgeID, numEdges),
		numEdges:   numEdges,
	}
	for v := 0; v < n; v++ {
		lid, err := uvInt("node label ID", nodeLabels.Len()-1)
		if err != nil {
			return nil, err
		}
		g.labelOf[v] = LabelID(lid)
		g.byLabel[LabelID(lid)] = append(g.byLabel[LabelID(lid)], NodeID(v))
	}
	// Attribute tuples share one arena; each node's tuple is full-sliced so
	// the arena can never be grown through a node's slice.
	var attrArena []Attr
	for v := 0; v < n; v++ {
		count, err := uvInt("attr count", 1<<20)
		if err != nil {
			return nil, err
		}
		if count == 0 {
			continue
		}
		start := len(attrArena)
		lastKey := int32(-1)
		for i := 0; i < count; i++ {
			key, err := uvInt("attr key ID", attrKeys.Len()-1)
			if err != nil {
				return nil, err
			}
			val, err := uvInt("attr value ID", attrVals.Len()-1)
			if err != nil {
				return nil, err
			}
			// Tuples are stored sorted by key ID (the AddNode invariant);
			// enforce it so AttrValue's binary search stays correct.
			if int32(key) <= lastKey {
				return nil, fmt.Errorf("graph: binary attr tuple of node %d not sorted by key", v)
			}
			lastKey = int32(key)
			attrArena = append(attrArena, Attr{Key: int32(key), Val: int32(val)})
		}
		g.attrsOf[v] = attrArena[start:len(attrArena):len(attrArena)]
	}

	// In-degrees size the in arena and give each target its write cursor.
	inOff := make([]int, n+1)
	for v := 0; v < n; v++ {
		d, err := uvInt("in-degree", numEdges)
		if err != nil {
			return nil, err
		}
		inOff[v+1] = inOff[v] + d
	}
	if inOff[n] != numEdges {
		return nil, fmt.Errorf("graph: binary in-degrees sum to %d, want %d edges", inOff[n], numEdges)
	}
	inArena := make([]Edge, numEdges)
	inCur := make([]int, n)
	copy(inCur, inOff[:n])
	outArena := make([]Edge, 0, numEdges)

	for v := 0; v < n; v++ {
		deg, err := uvInt("out-degree", numEdges)
		if err != nil {
			return nil, err
		}
		start := len(outArena)
		for i := 0; i < deg; i++ {
			to, err := uvInt("edge target", n-1)
			if err != nil {
				return nil, err
			}
			lid, err := uvInt("edge label ID", edgeLabels.Len()-1)
			if err != nil {
				return nil, err
			}
			ref := EdgeRef{From: NodeID(v), To: NodeID(to), Label: LabelID(lid)}
			if _, dup := g.edgeIndex[ref]; dup {
				return nil, fmt.Errorf("graph: binary duplicate edge (%d,%d,%d)", v, to, lid)
			}
			id := EdgeID(len(g.edgeDefs))
			g.edgeDefs = append(g.edgeDefs, ref)
			g.edgeIndex[ref] = id
			outArena = append(outArena, Edge{To: NodeID(to), Label: LabelID(lid), ID: id})
			if inCur[to] >= inOff[to+1] {
				return nil, fmt.Errorf("graph: binary in-degree of node %d exceeded", to)
			}
			inArena[inCur[to]] = Edge{To: NodeID(v), Label: LabelID(lid), ID: id}
			inCur[to]++
		}
		g.out[v] = outArena[start:len(outArena):len(outArena)]
	}
	if len(outArena) != numEdges {
		return nil, fmt.Errorf("graph: binary out-degrees sum to %d, want %d edges", len(outArena), numEdges)
	}
	for v := 0; v < n; v++ {
		g.in[v] = inArena[inOff[v]:inOff[v+1]:inOff[v+1]]
	}
	return g, nil
}

// ReadAuto sniffs the input and dispatches to the binary or the text codec:
// files starting with the binary magic load through ReadBinary, everything
// else through the text Read. The CLIs use it so one -graph flag accepts
// both formats.
func ReadAuto(r io.Reader) (*Graph, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	head, err := br.Peek(len(binMagic))
	if err == nil && string(head) == string(binMagic) {
		if _, err := br.Discard(len(binMagic)); err != nil {
			return nil, err
		}
		return readBinaryBody(br)
	}
	return Read(br)
}

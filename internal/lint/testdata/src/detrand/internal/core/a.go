// Fixture for the detrand analyzer inside a deterministic package (the
// fixture path ends in internal/core, so the contract applies).
package core

import (
	"math/rand"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn draws from the process-seeded source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

func unseededNew(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand\.New without an inline seeded source`
}

func seededNew(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: visibly seeded
}

func methodOnSeeded(rng *rand.Rand) int {
	return rng.Intn(10) // ok: method on a seeded generator
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func allowedTiming() time.Duration {
	start := time.Now() //lint:allow detrand timing feeds reported stats only
	return time.Since(start)
}

// Command fgsd is the fair-group-summarization daemon: it loads a graph and
// serves summarization traffic over HTTP/JSON (DESIGN.md §10).
//
// Usage:
//
//	fgsd -addr :8471 -graph lki.graph -groups user:gender:male,female:40:60
//	fgsd                                  # no -graph: serve the demo LKI graph
//
// Endpoints:
//
//	POST /v1/summarize    {"r":2,"n":20,"utility":"coverage"}   fresh APXFGS summary
//	POST /v1/summarize-k  {"k":5,"n":20}                        k-APXFGS summary
//	POST /v1/view         {"pattern":"n 0 user\nf 0"}           query the maintained summary as a view
//	POST /v1/workload     {}                                    summary patterns as benchmark queries
//	POST /v1/update       {"insert":[{"from":1,"to":2,"label":"corev"}]}
//	GET  /v1/stats        engine snapshot (epoch, sizes, cache/admission counters)
//	GET  /healthz         liveness; 503 while draining
//	GET  /metrics         Prometheus text exposition (with trace-ID exemplars)
//
//	GET  /debug/fgs/views           MVCC publication state: epochs, pins, replica pool
//	GET  /debug/fgs/cache           result-cache occupancy by epoch-prefixed key
//	GET  /debug/fgs/fairness        per-group coverage of the published summary
//	GET  /debug/fgs/flightrecorder  recent-request ring, newest last
//
// Every request gets a trace ID — propagated from an incoming W3C
// `traceparent` header or minted — echoed as X-Fgs-Trace, with the
// per-stage breakdown in Server-Timing. Boot, publish, drain, and
// slow-request events are structured logs (-log-format text|json) keyed by
// trace ID. SIGQUIT dumps the flight recorder without stopping the server;
// SIGINT/SIGTERM triggers a graceful drain: stop accepting, finish in-flight
// requests, dump the flight recorder, then flush the final Chrome trace /
// Prometheus dump if -fgs.trace / -fgs.metrics-out are set.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	var (
		addr      = flag.String("addr", ":8471", "listen address")
		graphPath = flag.String("graph", "", "input graph, text or binary format — sniffed (empty = demo LKI graph)")
		groupSpec = flag.String("groups", "user:gender:male,female:1:10", "group spec: label:attr:val1,val2:lower:upper")
		r         = flag.Int("r", 2, "default reconstruction hops")
		n         = flag.Int("n", 20, "default max covered nodes")
		k         = flag.Int("k", 0, "default max patterns for /v1/summarize-k (0 = require per-request k)")
		utility   = flag.String("utility", "coverage", "maintained summary's utility: coverage[:edgelabel], rating[:attr], diversity:attr, cardinality")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent compute requests (admission slots); also the mining worker count")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 4x workers, negative = no queue)")
		cacheEnt  = flag.Int("cache-entries", 256, "epoch-keyed result cache capacity (negative = disabled)")
		deadline  = flag.Duration("deadline", 30*time.Second, "per-request deadline (queue wait included)")
		embedCap  = flag.Int("embed-cap", 0, "embedding enumeration cap for view/workload queries (0 = default)")
		readMode  = flag.String("read-mode", "mvcc", "read path: mvcc (epoch-snapshot views) or locked (RWMutex baseline)")
		maxViews  = flag.Int("max-views", 0, "MVCC replica pool cap; bounds graph memory to max-views copies (0 = default 3, min 2)")
		shards    = flag.Int("shards", 0, "focus-region shards per epoch view for partition-parallel summarization (0 or 1 = off; mvcc mode only)")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")

		dataDir   = flag.String("data-dir", "", "fgstore data directory for WAL + snapshots (empty = in-memory only, state lost on exit)")
		fsyncPol  = flag.String("fsync", "group", "WAL durability: batch (sync per update), group (group-commit window), off")
		snapEvery = flag.Int("snapshot-every", 256, "snapshot after this many graph-changing batches (0 = only on drain)")
		walSegMB  = flag.Int("wal-segment-mb", 64, "WAL segment size before rolling, in MiB")

		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		noTrace     = flag.Bool("no-trace", false, "disable request tracing (no trace IDs, stage histograms, or flight recorder)")
		slowReq     = flag.Duration("slow-request", 10*time.Second, "log requests slower than this with their stage breakdown and dump the flight recorder (0 = off)")
		flightEvts  = flag.Int("flight-events", 1024, "flight recorder ring size, rounded up to a power of two (negative = disabled)")
		flightDumpF = flag.String("flight-dump", "", "file receiving flight-recorder dumps on 5xx/slow/SIGQUIT/drain (empty = stderr)")

		demoSeed  = flag.Int64("demo-seed", 42, "demo graph generator seed")
		demoScale = flag.Int("demo-scale", 1, "demo graph scale")

		traceOut   = flag.String("fgs.trace", "", "write a Chrome trace of request and maintainer spans to this file on shutdown")
		metricsOut = flag.String("fgs.metrics-out", "", "write final runtime counters in Prometheus text format to this file on shutdown")
		obsSummary = flag.Bool("fgs.obs-summary", false, "print the runtime-counter summary table to stderr on shutdown")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fatal(fmt.Errorf("bad -log-format %q: want text or json", *logFormat))
	}
	log := slog.New(handler)

	var dumpW io.Writer = os.Stderr
	if *flightDumpF != "" {
		f, err := os.Create(*flightDumpF)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dumpW = f
	}

	var observer *fgs.Observer
	if *traceOut != "" || *metricsOut != "" || *obsSummary {
		observer = fgs.NewObserver(nil)
	}

	// Open the store first: a data directory with recovered state overrides
	// -graph (the durable graph is the truth; the flag described the seed).
	var st *fgs.Store
	var recovered *fgs.StoreRecovered
	if *dataDir != "" {
		openStart := time.Now()
		var err error
		st, recovered, err = fgs.OpenStore(fgs.StoreOptions{
			Dir:          *dataDir,
			Fsync:        *fsyncPol,
			SegmentBytes: int64(*walSegMB) << 20,
			Log:          log,
		})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		log.Info("store open",
			"dir", *dataDir, "fsync", *fsyncPol, "duration", time.Since(openStart),
			"fresh", recovered.Fresh, "snapshot_epoch", recovered.SnapshotEpoch,
			"epoch", recovered.Epoch, "wal_tail", len(recovered.Tail),
			"wal_tail_bytes", recovered.TailBytes, "torn_truncated", recovered.Truncated)
	}

	var g *fgs.Graph
	loadStart := time.Now()
	switch {
	case recovered != nil && !recovered.Fresh:
		if *graphPath != "" {
			log.Warn("ignoring -graph: data directory has recovered state", "graph", *graphPath, "data_dir", *dataDir)
		}
		g = recovered.Graph
	case *graphPath == "":
		log.Info("no -graph given; serving the demo LKI graph", "seed", *demoSeed, "scale", *demoScale)
		g = datasets.LKI(*demoSeed, *demoScale)
	default:
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		var rerr error
		g, rerr = fgs.ReadGraphAuto(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
	}
	loadTime := time.Since(loadStart)
	sizes := g.UniverseSizes()
	log.Info("graph loaded",
		"duration", loadTime, "nodes", g.NumNodes(), "edges", g.NumEdges(),
		"node_labels", sizes[0], "edge_labels", sizes[1], "attr_keys", sizes[2])
	if observer != nil {
		reg := observer.Reg
		reg.Add("fgsd_boot_graph_load_ms", "Graph load wall time at boot (ms)", nil, loadTime.Milliseconds())
		reg.Add("fgsd_boot_graph_nodes", "Nodes in the boot graph", nil, int64(g.NumNodes()))
		reg.Add("fgsd_boot_graph_edges", "Edges in the boot graph", nil, int64(g.NumEdges()))
	}

	label, attr, values, lower, upper, err := parseGroupSpec(*groupSpec)
	if err != nil {
		fatal(err)
	}
	groups, err := datasets.GroupsByAttr(g, label, attr, values, lower, upper)
	if err != nil {
		fatal(err)
	}

	srv, err := fgs.NewServer(g, groups, fgs.ServerConfig{
		R:              *r,
		K:              *k,
		N:              *n,
		Utility:        *utility,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEnt,
		Deadline:       *deadline,
		EmbedCap:       *embedCap,
		ReadMode:       *readMode,
		MaxViews:       *maxViews,
		Shards:         *shards,
		Obs:            observer,
		DisableTracing: *noTrace,
		FlightEvents:   *flightEvts,
		SlowRequest:    *slowReq,
		Log:            log,
		FlightDump:     dumpW,
		Store:          st,
		Resume:         recovered,
		SnapshotEvery:  *snapEvery,
	})
	if err != nil {
		fatal(err)
	}
	log.Info("engine ready", "nodes", g.NumNodes(), "edges", g.NumEdges(), "groups", groups.Len())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the flight recorder without stopping the server — the
	// "what just happened" lever when the process is misbehaving but alive.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			if err := srv.DumpFlightRecorder(dumpW, "sigquit"); err != nil {
				log.Error("flight dump failed", "reason", "sigquit", "error", err)
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("serving",
		"addr", *addr, "workers", *workers, "cache", *cacheEnt,
		"deadline", *deadline, "read_mode", *readMode, "shards", *shards,
		"tracing", !*noTrace, "slow_request", *slowReq, "log_format", *logFormat)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	// Drain sequence (DESIGN.md §10): flip health to 503 so load balancers
	// stop routing, refuse new compute, wait for in-flight requests, dump the
	// flight recorder (the last window of traffic is exactly what a postmortem
	// wants), then flush the final observability exports.
	log.Info("drain: refusing new work, finishing in-flight requests")
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Error("shutdown", "error", err)
	}
	if !*noTrace && *flightEvts >= 0 {
		if err := srv.DumpFlightRecorder(dumpW, "drain"); err != nil {
			log.Error("flight dump failed", "reason", "drain", "error", err)
		}
	}
	if st != nil {
		// Snapshot-on-drain: with no in-flight writes left, seal the final
		// state so the next boot recovers from the snapshot alone. Close
		// (the deferred st.Close) then seals the WAL behind it.
		if err := srv.FinalSnapshot(); err != nil {
			log.Error("final snapshot", "error", err)
		}
	}
	if observer != nil {
		if err := exportObs(log, observer, *traceOut, *metricsOut, *obsSummary); err != nil {
			fatal(err)
		}
	}
	log.Info("drained")
}

// parseGroupSpec splits "label:attr:val1,val2:lower:upper".
func parseGroupSpec(spec string) (label, attr string, values []string, lower, upper int, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 5 {
		return "", "", nil, 0, 0, fmt.Errorf("bad -groups %q: want label:attr:val1,val2:lower:upper", spec)
	}
	lower, err1 := strconv.Atoi(parts[3])
	upper, err2 := strconv.Atoi(parts[4])
	if err1 != nil || err2 != nil {
		return "", "", nil, 0, 0, fmt.Errorf("bad -groups bounds in %q", spec)
	}
	return parts[0], parts[1], strings.Split(parts[2], ","), lower, upper, nil
}

// exportObs writes whatever the observer collected: the Chrome trace, the
// Prometheus text file, and/or a summary table on stderr.
func exportObs(log *slog.Logger, o *fgs.Observer, tracePath, metricsPath string, table bool) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := fgs.WriteChromeTrace(f, o.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Info("trace written", "path", tracePath)
	}
	ms := append(o.Reg.Gather(), fgs.PhaseMetrics(o.Trace)...)
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := fgs.WritePrometheus(f, ms); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Info("metrics written", "path", metricsPath)
	}
	if table {
		fmt.Fprint(os.Stderr, fgs.FormatMetricTable(ms))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgsd:", err)
	os.Exit(1)
}

// Package cascade implements the spread substrate of the pandemic case
// study (Example 3 and Fig. 12): an independent-cascade model over contact
// edges and the group-immunization experiment [49] — select seed spreaders,
// allocate a vaccine budget across age groups under coverage constraints,
// and measure the resulting infections.
package cascade

import (
	"math/rand"
	"sort"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

// Model configures the independent cascade.
type Model struct {
	// P is the per-edge transmission probability.
	P float64
	// Trials averages the simulation over this many runs. Default 20.
	Trials int
	// Seed drives the simulation RNG.
	Seed int64
	// EdgeLabel restricts transmission to edges with this label ("" = any).
	EdgeLabel string
}

func (m Model) withDefaults() Model {
	if m.P <= 0 {
		m.P = 0.1
	}
	if m.Trials <= 0 {
		m.Trials = 20
	}
	return m
}

// Spread runs the independent cascade from the seeds, treating contact edges
// as undirected, with the vaccinated set immune. It returns the mean number
// of infected nodes (seeds included unless vaccinated).
func Spread(g *graph.Graph, seeds []graph.NodeID, vaccinated graph.NodeSet, m Model) float64 {
	m = m.withDefaults()
	rng := rand.New(rand.NewSource(m.Seed))
	var label graph.LabelID = -1
	if m.EdgeLabel != "" {
		if lid, ok := g.EdgeLabelID(m.EdgeLabel); ok {
			label = lid
		} else {
			return 0
		}
	}
	total := 0
	for trial := 0; trial < m.Trials; trial++ {
		infected := graph.NewNodeSet(len(seeds) * 4)
		var frontier []graph.NodeID
		for _, s := range seeds {
			if !vaccinated.Has(s) && !infected.Has(s) {
				infected.Add(s)
				frontier = append(frontier, s)
			}
		}
		for len(frontier) > 0 {
			var next []graph.NodeID
			for _, v := range frontier {
				try := func(u graph.NodeID, l graph.LabelID) {
					if label >= 0 && l != label {
						return
					}
					if infected.Has(u) || vaccinated.Has(u) {
						return
					}
					if rng.Float64() < m.P {
						infected.Add(u)
						next = append(next, u)
					}
				}
				for _, e := range g.Out(v) {
					try(e.To, e.Label)
				}
				for _, e := range g.In(v) {
					try(e.To, e.Label)
				}
			}
			frontier = next
		}
		total += infected.Len()
	}
	return float64(total) / float64(m.Trials)
}

// TopDegreeSeeds returns the k highest-degree nodes — the standard
// influence-maximization proxy used to pick seed spreaders.
func TopDegreeSeeds(g *graph.Graph, k int) []graph.NodeID {
	type nd struct {
		v graph.NodeID
		d int
	}
	all := make([]nd, 0, g.NumNodes())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		all = append(all, nd{v: v, d: g.Degree(v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

// AllocateVaccines picks, for each group, alloc[i] members by descending
// degree (vaccinating hubs first), skipping excluded nodes — typically the
// seed spreaders, who are already infectious. It is the group-immunization
// allocation of [49] with the per-group budgets expressed as coverage
// bounds.
func AllocateVaccines(g *graph.Graph, groups *submod.Groups, alloc []int, exclude graph.NodeSet) graph.NodeSet {
	vaccinated := graph.NewNodeSet(0)
	for gi := 0; gi < groups.Len() && gi < len(alloc); gi++ {
		members := append([]graph.NodeID(nil), groups.At(gi).Members...)
		sort.Slice(members, func(i, j int) bool {
			di, dj := g.Degree(members[i]), g.Degree(members[j])
			if di != dj {
				return di > dj
			}
			return members[i] < members[j]
		})
		need := alloc[gi]
		for _, v := range members {
			if need == 0 {
				break
			}
			if exclude.Has(v) {
				continue
			}
			vaccinated.Add(v)
			need--
		}
	}
	return vaccinated
}

// ImmunizationResult reports one group-immunization configuration.
type ImmunizationResult struct {
	// Alloc is the per-group vaccine allocation simulated.
	Alloc []int
	// Infected is the mean infection count under the cascade.
	Infected float64
	// Vaccinated is the number of vaccines actually placed.
	Vaccinated int
}

// SimulateImmunization runs the Fig. 12 experiment: seeds spread the
// infection; a vaccine budget distributed as alloc over the groups is placed
// on the highest-degree members other than the seeds; the cascade then runs
// with the vaccinated immune.
func SimulateImmunization(g *graph.Graph, groups *submod.Groups, seeds []graph.NodeID, alloc []int, m Model) ImmunizationResult {
	vaccinated := AllocateVaccines(g, groups, alloc, graph.NodeSetOf(seeds))
	infected := Spread(g, seeds, vaccinated, m)
	return ImmunizationResult{
		Alloc:      append([]int(nil), alloc...),
		Infected:   infected,
		Vaccinated: vaccinated.Len(),
	}
}

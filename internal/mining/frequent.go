package mining

import (
	"sort"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
)

// FreqPattern is one frequent pattern: support counts distinct focus matches
// among the universe (the MNI-style, anti-monotone support of GraMi [11]
// restricted to the focus image).
type FreqPattern struct {
	P       *pattern.Pattern
	Support int
	Covered []graph.NodeID
}

// Frequent mines the top-k most frequent focus-rooted patterns over the
// given universe of nodes, pruning below minSup. It is the discovery engine
// behind the GraMi baseline: unconstrained by group bounds, ranked purely by
// support. Ties break toward larger patterns (GraMi's adaptation in the
// paper "encourages" informative patterns) and then generation order.
//
// The search explores at most cfg.MaxPatterns patterns; cfg.MinCover is
// overridden by minSup.
func Frequent(g *graph.Graph, universe []graph.NodeID, cfg Config, topK, minSup int) []*FreqPattern {
	cfg = cfg.withDefaults()
	if minSup < 1 {
		minSup = 1
	}
	cfg.MinCover = minSup
	m := pattern.NewMatcher(g, cfg.EmbedCap)
	m.SetWorkers(cfg.Workers)
	eng := &engine{
		g:          g,
		m:          m,
		cfg:        cfg,
		er:         NewErCache(g, cfg.Radius),
		universe:   universe,
		anchors:    universe,
		anchSet:    graph.NodeSetOf(universe),
		seen:       make(map[string]bool),
		skipScore:  true,
		noFallback: true,
	}
	eng.buildTemplates()
	if cfg.Workers > 1 {
		eng.runParallel()
	} else {
		eng.run()
	}

	out := make([]*FreqPattern, 0, len(eng.out))
	for _, c := range eng.out {
		out = append(out, &FreqPattern{P: c.P, Support: len(c.Covered), Covered: c.Covered})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].P.Size() > out[j].P.Size()
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

package mining

import (
	"strconv"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// Regions bundles a focus-region graph partition with one persistent E_v^r
// cache per shard. It is the unit the server caches per epoch view: the
// partition's slice graphs are immutable for the view's lifetime, so cached
// shard-local neighborhoods stay valid across every request served at that
// epoch.
//
// Regions also plays the erSource role for summary assembly: UnionOf
// returns E_X^r in the parent's global EdgeID space by translating each
// member's shard-local bitset, which equals the unpartitioned cache's
// answer because induced ball slices preserve all distances ≤ r from owned
// nodes (see graph.BuildPartition).
type Regions struct {
	part *graph.Partition
	ers  []*ErCache
}

// RegionConfig parameterizes BuildRegions.
type RegionConfig struct {
	// Shards is the requested shard count (effective count capped by the
	// focus population).
	Shards int
	// R is the ball radius; only requests mining at exactly this radius can
	// use the partitioned path.
	R int
	// Seed drives the partitioner's center selection.
	Seed uint64
}

// BuildRegions partitions the focus set over g and allocates the per-shard
// caches. The result is immutable and safe for concurrent use.
func BuildRegions(g *graph.Graph, focus []graph.NodeID, cfg RegionConfig) *Regions {
	part := graph.BuildPartition(g, focus, graph.PartitionConfig{Shards: cfg.Shards, R: cfg.R, Seed: cfg.Seed})
	r := &Regions{part: part, ers: make([]*ErCache, part.NumShards())}
	for i := range r.ers {
		r.ers[i] = NewErCache(part.Shard(i).Graph(), cfg.R)
	}
	return r
}

// Partition returns the underlying focus-region partition.
func (r *Regions) Partition() *graph.Partition { return r.part }

// NumShards reports the effective shard count.
func (r *Regions) NumShards() int { return r.part.NumShards() }

// Shard returns shard i of the partition.
func (r *Regions) Shard(i int) *graph.Shard { return r.part.Shard(i) }

// Er returns shard i's persistent E_v^r cache (local IDs, local radius R).
func (r *Regions) Er(i int) *ErCache { return r.ers[i] }

// Radius returns the ball radius the regions were built for.
func (r *Regions) Radius() int { return r.part.Config().R }

// Graph returns the parent graph (erSource role).
func (r *Regions) Graph() *graph.Graph { return r.part.Parent() }

// Covers reports whether the partitioned path may serve a mining run over
// the given node set: same parent graph, same radius, and every node owned
// by some shard. Callers fall back to the unpartitioned path otherwise.
func (r *Regions) Covers(g *graph.Graph, nodes []graph.NodeID, radius int) bool {
	if r == nil || r.part.Parent() != g || r.Radius() != radius || r.part.NumShards() == 0 {
		return false
	}
	for _, v := range nodes {
		if _, _, ok := r.part.Owner(v); !ok {
			return false
		}
	}
	return true
}

// UnionOf returns E_X^r in the parent's EdgeID space. Nodes outside the
// focus set (which Covers-gated callers never pass) fall back to a direct
// parent BFS so the answer stays correct regardless.
func (r *Regions) UnionOf(nodes []graph.NodeID) *graph.EdgeBits {
	u := graph.NewEdgeBits(r.part.Parent().EdgeIDBound())
	for _, v := range nodes {
		s, lv, ok := r.part.Owner(v)
		if !ok {
			u.Union(r.part.Parent().RHopEdgeBits(v, r.Radius()))
			continue
		}
		sh := r.part.Shard(s)
		r.ers[s].Get(lv).Iterate(func(id graph.EdgeID) { u.Add(sh.GlobalEdge(id)) })
	}
	return u
}

// ObsMetrics exports partition shape gauges plus the aggregated per-shard
// cache counters (obs.Source).
func (r *Regions) ObsMetrics() []obs.Metric {
	out := []obs.Metric{
		{Name: "fgs_regions_shards", Help: "Effective focus-region shard count.", Kind: obs.KindGauge, Value: float64(r.NumShards())},
		{Name: "fgs_regions_focus_nodes", Help: "Focus nodes owned across all shards.", Kind: obs.KindGauge, Value: float64(r.part.NumFocus())},
	}
	for i := range r.ers {
		labels := []obs.Label{{Key: "region", Val: strconv.Itoa(i)}}
		sh := r.part.Shard(i)
		out = append(out,
			obs.Metric{Name: "fgs_regions_slice_nodes", Help: "Nodes in the shard's compacted slice.", Kind: obs.KindGauge, Labels: labels, Value: float64(sh.NumNodes())},
			obs.Metric{Name: "fgs_regions_slice_edges", Help: "Edges in the shard's compacted slice.", Kind: obs.KindGauge, Labels: labels, Value: float64(sh.NumEdges())},
		)
	}
	return out
}

// Package graph implements the attributed, directed, labeled graph model of
// Section II of the paper: G = (V, E, L, T), where every node and edge
// carries a label and every node carries a tuple of attribute/value pairs.
//
// The store is optimized for the access paths the FGS algorithms need:
//
//   - label-indexed node scans (candidate generation for pattern focus nodes),
//   - in/out adjacency scans (backtracking subgraph isomorphism),
//   - undirected r-hop neighborhood expansion (N_v^r and E_v^r of Section II),
//   - incremental edge insertion (the dynamic setting of Section VII).
//
// Strings (labels, attribute keys, attribute values) are interned once so the
// hot paths compare int32 identifiers only.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node. IDs are dense, assigned in insertion order
// starting at 0.
type NodeID int32

// EdgeID identifies one directed labeled edge. IDs are dense, assigned at
// insertion starting at 0, and stable for the lifetime of the edge; the ID of
// a removed edge may be reused by a later insertion (free-list remap, see
// RemoveEdge). EdgeIDs index the EdgeBits bitsets of the hot paths.
type EdgeID int32

// NoEdge is returned for edges that do not exist.
const NoEdge EdgeID = -1

// LabelID is an interned node or edge label.
type LabelID int32

// NoLabel is returned for labels of nodes that do not exist.
const NoLabel LabelID = -1

// Attr is one attribute/value pair of a node tuple, with both the key and the
// value interned. Attribute slices are kept sorted by Key.
type Attr struct {
	Key int32
	Val int32
}

// Edge is one directed adjacency entry: an edge to (or from) a neighbor with
// an interned edge label and the edge's dense ID, so traversals can mark
// EdgeBits without a lookup.
type Edge struct {
	To    NodeID
	Label LabelID
	ID    EdgeID
}

// Graph is an in-memory attributed directed multigraph. The zero value is not
// usable; construct with New.
type Graph struct {
	nodeLabels *Interner // node label universe
	edgeLabels *Interner // edge label universe
	attrKeys   *Interner // attribute key universe
	attrVals   *Interner // attribute value universe

	labelOf []LabelID // node -> label
	attrsOf [][]Attr  // node -> sorted attribute tuple

	out [][]Edge // node -> outgoing edges
	in  [][]Edge // node -> incoming edges (Edge.To holds the source)

	byLabel map[LabelID][]NodeID // label -> nodes carrying it

	// Dense edge identity. edgeDefs maps EdgeID -> EdgeRef (freed slots hold
	// a sentinel), edgeIndex is the O(1) duplicate/HasEdge probe, freeIDs is
	// the LIFO free list RemoveEdge feeds and AddEdge drains so the ID space
	// stays dense under churn.
	edgeDefs  []EdgeRef
	edgeIndex map[EdgeRef]EdgeID
	freeIDs   []EdgeID

	numEdges int

	// labelBitsMu guards labelBits, the lazily built per-label NodeBits the
	// matcher uses to prefilter candidates. Entries are immutable once built
	// (a rebuild after AddNode installs a fresh bitset), so readers may hold
	// them outside the lock.
	labelBitsMu sync.Mutex
	labelBits   map[LabelID]*labelBitsEntry

	// scratch pools epoch-stamped BFS visit marks (see bfs.go). Pooling is
	// per graph so the marks are sized to this graph's node space; sync.Pool
	// makes the r-hop operators safe under the -fgs.workers parallelism.
	scratch sync.Pool
}

type labelBitsEntry struct {
	bits *NodeBits
	n    int // NumNodes when built; stale when the graph has grown
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodeLabels: NewInterner(),
		edgeLabels: NewInterner(),
		attrKeys:   NewInterner(),
		attrVals:   NewInterner(),
		byLabel:    make(map[LabelID][]NodeID),
		edgeIndex:  make(map[EdgeRef]EdgeID),
	}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.labelOf) }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// AddNode inserts a node with the given label and attribute tuple and returns
// its ID. The attrs map may be nil.
func (g *Graph) AddNode(label string, attrs map[string]string) NodeID {
	id := NodeID(len(g.labelOf))
	lid := LabelID(g.nodeLabels.Intern(label))
	g.labelOf = append(g.labelOf, lid)

	var tuple []Attr
	if len(attrs) > 0 {
		tuple = make([]Attr, 0, len(attrs))
		for k, v := range attrs {
			tuple = append(tuple, Attr{Key: g.attrKeys.Intern(k), Val: g.attrVals.Intern(v)})
		}
		sort.Slice(tuple, func(i, j int) bool { return tuple[i].Key < tuple[j].Key })
	}
	g.attrsOf = append(g.attrsOf, tuple)

	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[lid] = append(g.byLabel[lid], id)
	return id
}

// AddEdge inserts a directed labeled edge from -> to. Parallel edges with the
// same label are rejected; parallel edges with distinct labels are allowed.
// Duplicate detection is an O(1) probe on the edge index (not an adjacency
// scan), so bulk loads stay linear even on high-degree nodes.
func (g *Graph) AddEdge(from, to NodeID, label string) error {
	if !g.HasNode(from) || !g.HasNode(to) {
		return fmt.Errorf("graph: edge (%d,%d) references missing node", from, to)
	}
	lid := LabelID(g.edgeLabels.Intern(label))
	ref := EdgeRef{From: from, To: to, Label: lid}
	if _, dup := g.edgeIndex[ref]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d,%q)", from, to, label)
	}
	var id EdgeID
	if n := len(g.freeIDs); n > 0 {
		id = g.freeIDs[n-1]
		g.freeIDs = g.freeIDs[:n-1]
		g.edgeDefs[id] = ref
	} else {
		id = EdgeID(len(g.edgeDefs))
		g.edgeDefs = append(g.edgeDefs, ref)
	}
	g.edgeIndex[ref] = id
	g.out[from] = append(g.out[from], Edge{To: to, Label: lid, ID: id})
	g.in[to] = append(g.in[to], Edge{To: from, Label: lid, ID: id})
	g.numEdges++
	return nil
}

// HasNode reports whether id is a valid node.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.labelOf) }

// HasEdge reports whether a directed edge from -> to with the given
// interned edge label exists. Short adjacency lists are scanned directly
// (cheaper than hashing the 12-byte key on sparse graphs); high-degree
// sources fall through to the O(1) edge-index probe, so the worst case
// stays constant.
func (g *Graph) HasEdge(from, to NodeID, label LabelID) bool {
	if from < 0 || int(from) >= len(g.out) {
		return false
	}
	if out := g.out[from]; len(out) <= 8 {
		for _, e := range out {
			if e.To == to && e.Label == label {
				return true
			}
		}
		return false
	}
	_, ok := g.edgeIndex[EdgeRef{From: from, To: to, Label: label}]
	return ok
}

// EdgeIDBetween resolves the directed edge from -> to with the given
// interned label to its dense ID — HasEdge's probe (short adjacency lists
// scanned directly, high-degree nodes through the edge index) with the ID
// handed back instead of a bare bool. Both endpoints' lists are tried: a
// hub's fan-out is often reached from a low-degree node whose in-list is
// scannable even when the hub's out-list is not.
func (g *Graph) EdgeIDBetween(from, to NodeID, label LabelID) (EdgeID, bool) {
	if from < 0 || int(from) >= len(g.out) {
		return NoEdge, false
	}
	if out := g.out[from]; len(out) <= 8 {
		for _, e := range out {
			if e.To == to && e.Label == label {
				return e.ID, true
			}
		}
		return NoEdge, false
	}
	if to >= 0 && int(to) < len(g.in) {
		if in := g.in[to]; len(in) <= 8 {
			for _, e := range in {
				if e.To == from && e.Label == label {
					return e.ID, true
				}
			}
			return NoEdge, false
		}
	}
	id, ok := g.edgeIndex[EdgeRef{From: from, To: to, Label: label}]
	if !ok {
		return NoEdge, false
	}
	return id, true
}

// EdgeIDOf resolves an edge to its dense ID, or (NoEdge, false) when the edge
// does not exist.
func (g *Graph) EdgeIDOf(ref EdgeRef) (EdgeID, bool) {
	id, ok := g.edgeIndex[ref]
	if !ok {
		return NoEdge, false
	}
	return id, true
}

// EdgeRefOf returns the (From, To, Label) triple of a live edge ID. The
// result for a freed (removed and not yet reused) ID is the sentinel
// EdgeRef{-1, -1, -1}.
func (g *Graph) EdgeRefOf(id EdgeID) EdgeRef {
	if id < 0 || int(id) >= len(g.edgeDefs) {
		return EdgeRef{From: -1, To: -1, Label: -1}
	}
	return g.edgeDefs[id]
}

// EdgeIDBound reports the exclusive upper bound of the live EdgeID space —
// the capacity to size EdgeBits with.
func (g *Graph) EdgeIDBound() int { return len(g.edgeDefs) }

// EdgeSetOf materializes an EdgeBits as the equivalent EdgeSet — the adapter
// the summary boundary uses so the public API keeps its map-based types.
func (g *Graph) EdgeSetOf(bits *EdgeBits) EdgeSet {
	out := NewEdgeSet(bits.Count())
	bits.Iterate(func(id EdgeID) { out.Add(g.edgeDefs[id]) })
	return out
}

// EdgeBitsOf converts an EdgeSet to the bitset representation. Edges absent
// from the graph (stale refs) are dropped.
func (g *Graph) EdgeBitsOf(es EdgeSet) *EdgeBits {
	out := NewEdgeBits(len(g.edgeDefs))
	for ref := range es {
		if id, ok := g.edgeIndex[ref]; ok {
			out.Add(id)
		}
	}
	return out
}

// LabelBits returns the set of nodes carrying the given label as a bitset,
// built lazily and cached. The returned bitset is immutable and reflects the
// graph at call time: after AddNode the next call rebuilds. Safe for
// concurrent use (the matcher fan-out calls it from worker goroutines).
func (g *Graph) LabelBits(lid LabelID) *NodeBits {
	n := g.NumNodes()
	g.labelBitsMu.Lock()
	defer g.labelBitsMu.Unlock()
	if e, ok := g.labelBits[lid]; ok && e.n == n {
		return e.bits
	}
	bits := NodeBitsOf(g.byLabel[lid])
	if g.labelBits == nil {
		g.labelBits = make(map[LabelID]*labelBitsEntry)
	}
	g.labelBits[lid] = &labelBitsEntry{bits: bits, n: n}
	return bits
}

// LabelIDOf returns the interned label of a node, or NoLabel if the node does
// not exist.
func (g *Graph) LabelIDOf(id NodeID) LabelID {
	if !g.HasNode(id) {
		return NoLabel
	}
	return g.labelOf[id]
}

// LabelOf returns the string label of a node.
func (g *Graph) LabelOf(id NodeID) string {
	lid := g.LabelIDOf(id)
	if lid == NoLabel {
		return ""
	}
	return g.nodeLabels.Name(int32(lid))
}

// NodeLabelID resolves a node label string to its interned ID without
// creating it; ok is false if the label has never been seen.
func (g *Graph) NodeLabelID(label string) (LabelID, bool) {
	id, ok := g.nodeLabels.Lookup(label)
	return LabelID(id), ok
}

// EdgeLabelID resolves an edge label string to its interned ID without
// creating it.
func (g *Graph) EdgeLabelID(label string) (LabelID, bool) {
	id, ok := g.edgeLabels.Lookup(label)
	return LabelID(id), ok
}

// EdgeLabelName returns the string form of an interned edge label.
func (g *Graph) EdgeLabelName(id LabelID) string { return g.edgeLabels.Name(int32(id)) }

// AttrKeyID resolves an attribute key without creating it.
func (g *Graph) AttrKeyID(key string) (int32, bool) { return g.attrKeys.Lookup(key) }

// AttrValID resolves an attribute value without creating it.
func (g *Graph) AttrValID(val string) (int32, bool) { return g.attrVals.Lookup(val) }

// AttrKeyName returns the string form of an interned attribute key.
func (g *Graph) AttrKeyName(id int32) string { return g.attrKeys.Name(id) }

// AttrValName returns the string form of an interned attribute value.
func (g *Graph) AttrValName(id int32) string { return g.attrVals.Name(id) }

// Attrs returns the node's attribute tuple, sorted by key ID. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Attrs(id NodeID) []Attr {
	if !g.HasNode(id) {
		return nil
	}
	return g.attrsOf[id]
}

// AttrValue returns the value a node carries for an interned attribute key.
func (g *Graph) AttrValue(id NodeID, key int32) (int32, bool) {
	if !g.HasNode(id) {
		return 0, false
	}
	tuple := g.attrsOf[id]
	i := sort.Search(len(tuple), func(i int) bool { return tuple[i].Key >= key })
	if i < len(tuple) && tuple[i].Key == key {
		return tuple[i].Val, true
	}
	return 0, false
}

// AttrString returns the string value a node carries for an attribute key.
func (g *Graph) AttrString(id NodeID, key string) (string, bool) {
	kid, ok := g.attrKeys.Lookup(key)
	if !ok {
		return "", false
	}
	vid, ok := g.AttrValue(id, kid)
	if !ok {
		return "", false
	}
	return g.attrVals.Name(vid), true
}

// HasLiteral reports whether node id satisfies the equality literal
// key = val (both interned).
func (g *Graph) HasLiteral(id NodeID, key, val int32) bool {
	v, ok := g.AttrValue(id, key)
	return ok && v == val
}

// Out returns the outgoing edges of a node. The slice is owned by the graph.
func (g *Graph) Out(id NodeID) []Edge {
	if !g.HasNode(id) {
		return nil
	}
	return g.out[id]
}

// In returns the incoming edges of a node; Edge.To holds the source node.
// The slice is owned by the graph.
func (g *Graph) In(id NodeID) []Edge {
	if !g.HasNode(id) {
		return nil
	}
	return g.in[id]
}

// Degree reports the total (in + out) degree of a node.
func (g *Graph) Degree(id NodeID) int {
	if !g.HasNode(id) {
		return 0
	}
	return len(g.out[id]) + len(g.in[id])
}

// NodesWithLabel returns the nodes carrying the given label string. The slice
// is owned by the graph.
func (g *Graph) NodesWithLabel(label string) []NodeID {
	lid, ok := g.nodeLabels.Lookup(label)
	if !ok {
		return nil
	}
	return g.byLabel[LabelID(lid)]
}

// NodesWithLabelID returns the nodes carrying the given interned label.
func (g *Graph) NodesWithLabelID(lid LabelID) []NodeID { return g.byLabel[lid] }

// UniverseSizes reports the sizes of the four interner universes (node
// labels, edge labels, attribute keys, attribute values). The matcher stamps
// compiled patterns with this value: a pattern compiled as unmatchable
// because some string was unknown must be recompiled once the universes grow
// (AddNode/AddEdge interning new strings in the dynamic setting).
func (g *Graph) UniverseSizes() [4]int32 {
	return [4]int32{
		int32(g.nodeLabels.Len()),
		int32(g.edgeLabels.Len()),
		int32(g.attrKeys.Len()),
		int32(g.attrVals.Len()),
	}
}

// NumNodeLabels reports how many distinct node labels exist.
func (g *Graph) NumNodeLabels() int { return g.nodeLabels.Len() }

// NumEdgeLabels reports how many distinct edge labels exist.
func (g *Graph) NumEdgeLabels() int { return g.edgeLabels.Len() }

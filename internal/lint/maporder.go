package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose iteration order can
// reach an ordered sink — an append to a slice that outlives the loop, or a
// Write/Print/Encode-style call — without an intervening sort. Go randomizes
// map iteration per process, so any such path makes output differ from run
// to run: exactly the bug class that broke the experiments harness's CSV row
// order in PR 1.
//
// The canonical fixes are (a) collect the keys, sort them, and range over
// the sorted slice, or (b) append inside the loop and sort the result before
// it is consumed — the analyzer recognizes (b) when the appended-to slice is
// passed to a sort.* or slices.Sort* call after the loop in the same
// function. Genuinely order-independent iterations (e.g. feeding a
// commutative reduction into another map) take //lint:allow maporder with a
// why-comment.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order reaches an append/write path without a sort",
	Run:  runMapOrder,
}

// emitMethods are call names treated as ordered sinks when invoked inside a
// map-range body: io/fmt/csv/json writers and string builders.
var emitMethods = map[string]bool{
	"Write": true, "WriteAll": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			// A loop binding neither key nor value cannot leak element order
			// through its body.
			if isBlank(rs.Key) && isBlank(rs.Value) {
				return true
			}
			checkMapRange(pass, rs, enclosingFunc(stack))
			return true
		})
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// enclosingFunc returns the body of the innermost enclosing function
// declaration or literal — the scope searched for a post-loop sort.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, fn ast.Node) {
	type appendSink struct {
		obj  types.Object
		name string
	}
	var appends []appendSink
	reported := false
	report := func(format string, args ...any) {
		if !reported {
			pass.Report(rs.For, format, args...)
			reported = true
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && emitMethods[sel.Sel.Name] {
				report("map iteration order reaches %s.%s; iterate over sorted keys instead", types.ExprString(sel.X), sel.Sel.Name)
				return false
			}
		case *ast.AssignStmt:
			// x = append(x, ...) / x := append(x, ...) with x declared
			// outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				obj := rootObject(pass, n.Lhs[i])
				if obj == nil || within(obj.Pos(), rs) {
					continue // loop-local accumulator; order cannot escape
				}
				appends = append(appends, appendSink{obj, types.ExprString(n.Lhs[i])})
			}
		}
		return true
	})
	if reported {
		return
	}
	for _, a := range appends {
		if !sortedAfter(pass, fn, a.obj, rs.End()) {
			report("map iteration order reaches append to %s, which is never sorted afterwards; sort it or iterate over sorted keys", a.name)
			return
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootObject resolves the base identifier of x / x.f / x[i] to its object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortFuncs lists package-level sorting entry points whose first argument is
// the slice being ordered.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether fn contains, after pos, a recognized sort call
// whose argument resolves to obj.
func sortedAfter(pass *Pass, fn ast.Node, obj types.Object, pos token.Pos) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok || !sortFuncs[pkgName.Imported().Path()][sel.Sel.Name] {
			return true
		}
		arg := call.Args[0]
		// Unwrap sort.Sort(byX(keys))-style conversions and interface wraps.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = conv.Args[0]
		}
		if rootObject(pass, arg) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

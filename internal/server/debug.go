package server

// Live introspection endpoints (DESIGN.md §13). Everything under /debug/fgs
// is read-only and answers from the engine's current state: the MVCC
// publication graph, the result cache, the fairness position of the
// published summary, and the flight recorder. These views are for operators,
// not clients — their shapes may change between releases and they are
// deliberately excluded from the determinism contract (pin counts and cache
// occupancy depend on concurrent traffic).

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"github.com/cwru-db/fgs/internal/obs"
)

// debugCacheMaxEntries caps the /debug/fgs/cache listing so a large cache
// cannot turn the endpoint into a multi-megabyte response.
const debugCacheMaxEntries = 128

// ViewsDebug is the /debug/fgs/views response: the MVCC publication state —
// which epochs are alive, who pins them, and how much replay log is retained.
// In locked mode only Mode and Epoch are meaningful.
type ViewsDebug struct {
	Mode        string      `json:"mode"`
	Epoch       uint64      `json:"epoch"`
	MaxViews    int         `json:"max_views"`
	Replicas    int         `json:"replicas"`
	Current     ViewDebug   `json:"current"`
	Retired     []ViewDebug `json:"retired"`
	FreeEpochs  []uint64    `json:"free_epochs"`
	LogLen      int         `json:"log_len"`
	LogBase     uint64      `json:"log_base"`
	Publishes   int64       `json:"publishes"`
	WriterWaits int64       `json:"writer_waits"`
}

// ViewDebug is one epoch view with its live reader count.
type ViewDebug struct {
	Epoch uint64 `json:"epoch"`
	Pins  int    `json:"pins"`
}

// CacheDebug is the /debug/fgs/cache response.
type CacheDebug struct {
	Stats     CacheStats        `json:"stats"`
	Entries   []CacheEntryDebug `json:"entries,omitempty"`
	Truncated bool              `json:"truncated,omitempty"`
}

// CacheEntryDebug is one cache entry: its epoch-prefixed key and body size.
type CacheEntryDebug struct {
	Key   string `json:"key"`
	Bytes int    `json:"bytes"`
}

// FairnessResponse is the /debug/fgs/fairness response: per-group coverage
// of the currently published summary against the configured bounds — the
// live answer to "is the summary fair right now, and for whom is it not".
type FairnessResponse struct {
	Epoch        uint64          `json:"epoch"`
	CoveredTotal int             `json:"covered_total"`
	Satisfied    bool            `json:"satisfied"`
	Groups       []FairnessGroup `json:"groups"`
}

// FairnessGroup is one group's coverage position: covered ∈ [lower, upper]
// means satisfied; coverage is covered/size for dashboards.
type FairnessGroup struct {
	Name      string  `json:"name"`
	Size      int     `json:"size"`
	Lower     int     `json:"lower"`
	Upper     int     `json:"upper"`
	Covered   int     `json:"covered"`
	Satisfied bool    `json:"satisfied"`
	Coverage  float64 `json:"coverage"`
}

func (s *Server) handleDebugViews(w http.ResponseWriter, r *http.Request) {
	if s.views == nil {
		writeJSON(w, http.StatusOK, ViewsDebug{Mode: ReadModeLocked, Epoch: s.epoch.Load()})
		return
	}
	writeJSON(w, http.StatusOK, s.views.debug())
}

func (s *Server) handleDebugCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.debug(debugCacheMaxEntries))
}

// handleDebugFairness reports the published summary's per-group coverage.
// It pins a read context like any compute — an O(1) refcount bump — so the
// (epoch, summary) pair is consistent, but bypasses admission: fairness
// introspection must answer while the compute slots are saturated.
func (s *Server) handleDebugFairness(w http.ResponseWriter, r *http.Request) {
	rt := obs.ReqTraceFrom(r.Context())
	rc := s.acquireRead(rt)
	counts := s.groups.Counts(rc.summary.Covered)
	resp := FairnessResponse{
		Epoch:        rc.epoch,
		CoveredTotal: len(rc.summary.Covered),
		Satisfied:    s.groups.SatisfiesBounds(counts),
		Groups:       make([]FairnessGroup, 0, s.groups.Len()),
	}
	rc.release()
	for i := 0; i < s.groups.Len(); i++ {
		grp := s.groups.At(i)
		size := len(grp.Members)
		cov := 0.0
		if size > 0 {
			cov = float64(counts[i]) / float64(size)
		}
		resp.Groups = append(resp.Groups, FairnessGroup{
			Name:      grp.Name,
			Size:      size,
			Lower:     grp.Lower,
			Upper:     grp.Upper,
			Covered:   counts[i],
			Satisfied: counts[i] >= grp.Lower && counts[i] <= grp.Upper,
			Coverage:  cov,
		})
	}
	rt.SetEpoch(resp.Epoch)
	setEpochHeader(w, resp.Epoch)
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugFlight renders the flight recorder as a text table, newest
// last. Browsing it does not record into it (see finishTrace), so the
// history under inspection is not overwritten by the inspection itself.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("flight recorder disabled (tracing off or flight-events < 0)"))
		return
	}
	evs := s.flight.Snapshot()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "fgs flight recorder: events=%d recorded=%d dropped=%d cap=%d\n",
		len(evs), s.flight.Recorded(), s.flight.Dropped(), s.flight.Cap())
	if err := obs.WriteFlightText(&buf, evs); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes()) //lint:allow errdrop a failed response write means the client is gone; there is no recovery and the status is already committed
}

// Fixture for pairdiscipline's recv-mode lock pairing: unlike the legacy
// lockdiscipline heuristic, release must happen on every path, not merely
// somewhere in the function.
package pairdiscipline

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func okDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func okBothBranches(c *counter, cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

func leakOneBranch(c *counter, cond bool) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) without a matching c\.mu\.Unlock\(\)`
	if cond {
		return
	}
	c.mu.Unlock()
}

func leakNoUnlock(c *counter) int {
	c.mu.Lock() // want `c\.mu\.Lock\(\) without a matching`
	return c.n
}

func okPanicPath(c *counter, bad bool) {
	c.mu.Lock()
	if bad {
		panic("invariant") // ok: panic unwinds; nopanic owns this diagnostic
	}
	c.mu.Unlock()
}

func lockPerIteration(mus []*sync.Mutex, skip bool) {
	for _, mu := range mus {
		mu.Lock() // want `mu\.Lock\(\) without a matching mu\.Unlock\(\)`
		if skip {
			continue
		}
		mu.Unlock()
	}
}

func okLockWithGoto(mu *sync.Mutex, n int) {
	mu.Lock()
retry:
	if n > 0 {
		n--
		goto retry
	}
	mu.Unlock()
}

type rw struct {
	mu sync.RWMutex
	v  int
}

func leakReadInSwitch(r *rw, mode int) int {
	r.mu.RLock() // want `r\.mu\.RLock\(\) without a matching r\.mu\.RUnlock\(\)`
	switch {
	case mode == 0:
		return 0
	case mode > 0:
		r.mu.RUnlock()
		return r.v
	}
	r.mu.RUnlock()
	return -r.v
}

func okHandoffMethodValue(r *rw) func() {
	r.mu.RLock() // ok: RUnlock handed off to the caller as a method value
	return r.mu.RUnlock
}

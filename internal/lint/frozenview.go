package lint

// FrozenView enforces the MVCC immutability contract (DESIGN.md §12): a
// graph obtained through a read path — `acquireRead`, an `epochView`, a
// `viewSet.pin`, `Graph.Snapshot`, or a focus-region shard
// (`Partition.Shard` / `Shard.Graph`) — is a published, shared structure
// that concurrent readers are traversing. Calling any mutating method on
// it (the curated mutator set: AddNode/AddEdge/RemoveEdge on Graph, Intern
// on Interner) corrupts readers at other epochs and breaks the
// byte-identical-summary determinism claim.
//
// Detection is the taint helper (taint.go) per function: frozen sources
// seed the set, assignments propagate it, and a mutator call whose
// receiver is frozen is reported. `Clone()` (and any other non-source
// call) is a barrier — a deep copy of a frozen graph is the writer's own.
//
// The writer's delta replay is the one sanctioned mutation site: the
// functions in frozenReplayAllowed apply the log to a pinned replica that
// is provably unpublished while they run.

import (
	"go/ast"
	"go/types"
)

var FrozenView = &Analyzer{
	Name: "frozenview",
	Doc:  "flag mutating Graph/Interner methods on values reached from a frozen read view",
	Run:  runFrozenView,
}

// frozenMutators is the curated mutator set: method name → receiver type
// name it mutates.
var frozenMutators = map[string]string{
	"AddNode":    "Graph",
	"AddEdge":    "Graph",
	"RemoveEdge": "Graph",
	"Intern":     "Interner",
}

// frozenSources are the read-path entry points whose results are frozen:
// method name → required receiver type name ("" = any receiver or plain
// function). Shard/Graph cover the focus-region partition (DESIGN.md §14):
// a shard handed out by Partition.Shard or Regions.Shard — and the
// compacted CSR slice behind Shard.Graph — is built once per epoch and
// shared by every request served at it, so it is frozen the same way a
// pinned view is.
var frozenSources = map[string]string{
	"acquireRead": "",
	"Snapshot":    "Graph",
	"pin":         "viewSet",
	"Shard":       "",
	"Graph":       "Shard",
}

// frozenContainers are named types whose fields are frozen views: reading
// any field off them (rc.g, rep.summary) yields frozen data.
var frozenContainers = map[string]bool{
	"readCtx":   true,
	"epochView": true,
}

// frozenReplayAllowed lists the writer-side replay functions ("Recv.name"
// or "name") where mutating a pinned, unpublished replica is the whole
// point.
var frozenReplayAllowed = map[string]bool{
	"viewSet.catchUp": true,
	"newViewSet":      true,
}

func runFrozenView(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if frozenReplayAllowed[funcKey(fd)] {
				continue
			}
			checkFrozenBody(pass, fd.Body)
		}
	}
	return nil
}

// funcKey renders a FuncDecl as "Recv.name" for methods, "name" otherwise.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func checkFrozenBody(pass *Pass, body *ast.BlockStmt) {
	ts := &taintSet{pass: pass, objs: make(map[types.Object]bool)}
	ts.seedExpr = func(e ast.Expr) bool { return isFrozenSource(pass, ts, e) }
	ts.solve(body)

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		wantRecv, isMutator := frozenMutators[sel.Sel.Name]
		if !isMutator {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || recvTypeName(fn) != wantRecv {
			return true
		}
		if ts.tainted(sel.X) {
			pass.Report(call.Pos(), "%s.%s mutates a frozen read view: published epochs are immutable — mutate only the writer's pinned replica (Clone first, or do it in the replay path)",
				types.ExprString(sel.X), sel.Sel.Name)
		}
		return true
	})
}

// isFrozenSource reports whether e directly denotes frozen data: a call to
// a read-path entry point, or a field read off a frozen container or an
// already-tainted base.
func isFrozenSource(pass *Pass, ts *taintSet, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass, e)
		if fn == nil {
			return false
		}
		wantRecv, isSource := frozenSources[fn.Name()]
		if !isSource {
			return false
		}
		return wantRecv == "" || recvTypeName(fn) == wantRecv
	case *ast.SelectorExpr:
		// A selection is frozen when it reads *data* out of a frozen
		// container — not when it is a method reference (rc.release is a
		// func value, not a view).
		if _, isMethod := pass.TypesInfo.Selections[e]; isMethod {
			if sel := pass.TypesInfo.Selections[e]; sel.Kind() != types.FieldVal {
				return false
			}
		}
		base := unparen(e.X)
		if frozenContainers[typeNameOf(pass, base)] {
			return true
		}
		return ts.tainted(base)
	}
	return false
}

// typeNameOf returns the named-type name of e's type (through pointers),
// or "".
func typeNameOf(pass *Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

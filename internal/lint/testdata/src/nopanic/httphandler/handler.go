// Fixture for the nopanic analyzer over HTTP-handler code, mirroring
// internal/server: handlers are library code — a bad request or a failed
// compute must become an error response, never a process exit, and panics
// belong to the recover barrier, not the handler body.
package httphandler

import (
	"errors"
	"log"
	"net/http"
	"os"
)

func handleBadPanic(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength == 0 {
		panic("empty body") // want `panic in library package`
	}
}

func handleBadFatal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		log.Fatalf("method %s", r.Method) // want `log\.Fatalf in library package`
	}
}

func handleBadExit(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/shutdown" {
		os.Exit(0) // want `os\.Exit in library package`
	}
}

// handleGood is the sanctioned shape: validation failures become 4xx
// responses, compute failures become 5xx, and the error travels as a value.
func handleGood(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength == 0 {
		http.Error(w, "empty body", http.StatusBadRequest)
		return
	}
	if err := compute(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func compute() error {
	return errors.New("not implemented") // ok: errors are the contract
}

// recoverBarrier is the one place an escaped panic is handled: it converts
// it to a 500 rather than re-raising, so it is not flagged — there is no
// panic call here, only recover.
func recoverBarrier(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		h(w, r)
	}
}

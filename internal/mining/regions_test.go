package mining

import (
	"testing"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
)

// materializeEdges forces the compact partitioned P_E form into bitsets so
// requireSameCandidates can compare both runs representation-agnostically.
func materializeEdges(g *graph.Graph, cands []*Candidate) {
	for _, c := range cands {
		c.EdgeBits(g.EdgeIDBound())
	}
}

// TestSumGenPartitionedMatchesGlobal is the scatter-gather half of the
// determinism contract: SumGen routed through focus-region shards must
// produce candidates byte-identical to the global path, at every shard
// count crossed with every worker count.
func TestSumGenPartitionedMatchesGlobal(t *testing.T) {
	datasets := []struct {
		name  string
		g     *graph.Graph
		label string
	}{
		{"LKI", gen.LKI(7, 1), "user"},
		{"DBP", gen.DBP(8, 1), "movie"},
	}
	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			focus := ds.g.NodesWithLabel(ds.label)
			anchors := labelNodes(ds.g, ds.label, 40)
			cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 120}
			want := SumGen(ds.g, anchors, anchors, cfg, nil)
			materializeEdges(ds.g, want)
			for _, shards := range []int{1, 2, 8} {
				regions := BuildRegions(ds.g, focus, RegionConfig{Shards: shards, R: 2, Seed: 42})
				for _, w := range []int{0, 8} {
					pcfg := cfg
					pcfg.Workers = w
					pcfg.Regions = regions
					got := SumGen(ds.g, anchors, anchors, pcfg, nil)
					materializeEdges(ds.g, got)
					requireSameCandidates(t, want, got)
				}
			}
		})
	}
}

// TestSumGenPartitionFallback: a universe node outside the partition's
// focus set must disable the partitioned path (Covers false) while leaving
// the output identical — the silent-fallback contract.
func TestSumGenPartitionFallback(t *testing.T) {
	g := gen.LKI(9, 1)
	focus := g.NodesWithLabel("user")
	// Partition over only the first half of the users, then mine with
	// anchors from the excluded half: every anchor escapes ownership.
	anchors := append([]graph.NodeID(nil), focus[len(focus)-20:]...)
	regions := BuildRegions(g, focus[:len(focus)/2], RegionConfig{Shards: 4, R: 2, Seed: 1})
	if regions.Covers(g, anchors, 2) {
		t.Fatal("Covers accepted anchors outside the focus set")
	}
	if regions.Covers(g, anchors[:1], 3) {
		t.Fatal("Covers accepted a mismatched radius")
	}
	cfg := Config{Radius: 2, MaxNodes: 3, MaxPatterns: 60}
	want := SumGen(g, anchors, anchors, cfg, nil)
	pcfg := cfg
	pcfg.Regions = regions
	got := SumGen(g, anchors, anchors, pcfg, nil)
	materializeEdges(g, want)
	materializeEdges(g, got)
	requireSameCandidates(t, want, got)
}

// TestRegionsUnionOfMatchesErCache: the Regions erSource role — E_X^r
// assembled from translated shard-local bitsets equals the flat cache's
// answer, for owned nodes and (via the fallback branch) unowned ones.
func TestRegionsUnionOfMatchesErCache(t *testing.T) {
	g := gen.LKI(13, 1)
	users := g.NodesWithLabel("user")
	regions := BuildRegions(g, users, RegionConfig{Shards: 4, R: 2, Seed: 11})
	flat := NewErCache(g, 2)
	nodes := append(append([]graph.NodeID(nil), users[:25]...), graph.NodeID(0)) // node 0 may be unowned
	want := flat.UnionOf(nodes)
	got := regions.UnionOf(nodes)
	if want.Count() != got.Count() {
		t.Fatalf("|E_X^r| differs: flat %d, regions %d", want.Count(), got.Count())
	}
	want.Iterate(func(id graph.EdgeID) {
		if !got.Has(id) {
			t.Fatalf("regions union missing edge %d", id)
		}
	})
}

// TestBoundaryStraddlingPatterns forces the overlap case on a handcrafted
// graph: two focus nodes in different shards whose r=2 balls share a
// middle node, with a chain pattern whose embeddings straddle the boundary.
// Shard-local scoring must still see the full neighborhood of each owned
// node through its ball overlap.
func TestBoundaryStraddlingPatterns(t *testing.T) {
	g := graph.New()
	// a - x - m - y - b : a chain of 5; focus nodes a and b sit 4 hops
	// apart, so their r=2 balls both contain m but neither contains the
	// other's far side.
	a := g.AddNode("user", map[string]string{"side": "left"})
	x := g.AddNode("item", nil)
	m := g.AddNode("hub", nil)
	y := g.AddNode("item", nil)
	b := g.AddNode("user", map[string]string{"side": "right"})
	for _, e := range [][2]graph.NodeID{{a, x}, {x, m}, {m, y}, {y, b}} {
		if err := g.AddEdge(e[0], e[1], "link"); err != nil {
			t.Fatal(err)
		}
	}
	focus := []graph.NodeID{a, b}
	regions := BuildRegions(g, focus, RegionConfig{Shards: 2, R: 2, Seed: 0})
	if regions.NumShards() != 2 {
		t.Fatalf("expected 2 shards, got %d", regions.NumShards())
	}
	// Each shard's slice must include the shared middle node m.
	for s := 0; s < 2; s++ {
		sh := regions.Shard(s)
		found := false
		for lv := 0; lv < sh.NumNodes(); lv++ {
			if sh.GlobalNode(graph.NodeID(lv)) == m {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %d slice misses boundary node %d", s, m)
		}
	}
	cfg := Config{Radius: 2, MaxNodes: 3, MaxPatterns: 50}
	want := SumGen(g, focus, focus, cfg, nil)
	pcfg := cfg
	pcfg.Regions = regions
	got := SumGen(g, focus, focus, pcfg, nil)
	materializeEdges(g, want)
	materializeEdges(g, got)
	requireSameCandidates(t, want, got)
	// The chain pattern user-link-item-link-hub reaches depth 2: its P_E
	// must include the boundary edges, proving the straddle is visible.
	foundChain := false
	for _, c := range got {
		if !c.Fallback && len(c.P.Nodes) == 3 && c.CoveredEdges != nil && c.CoveredEdges.Count() >= 2 {
			foundChain = true
		}
	}
	if !foundChain {
		t.Fatal("no depth-2 chain candidate crossed the shard boundary")
	}
}

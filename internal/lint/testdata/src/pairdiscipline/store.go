// Fixture for the fgstore rows: store.Open must reach Close on every path,
// and an in-flight snapshot must end in exactly one of Commit or Abort.
package pairdiscipline

import (
	"github.com/cwru-db/fgs/internal/store"
)

func okOpenDeferClose() error {
	st, _, err := store.Open(store.Options{Dir: "/tmp/x"})
	if err != nil {
		return err
	}
	defer st.Close()
	return nil
}

func leakOpen(cond bool) error {
	st, _, err := store.Open(store.Options{Dir: "/tmp/x"}) // want `store\.Open\(\): store Open/Close acquired here is not released`
	if err != nil {
		return err
	}
	if cond {
		return nil // leaks the store: the WAL never seals
	}
	return st.Close()
}

func okOpenHandoffReturn() (*store.Store, error) {
	st, _, err := store.Open(store.Options{Dir: "/tmp/x"})
	if err != nil {
		return nil, err
	}
	return st, nil // ok: caller owns the store now
}

func okSnapshotCommit(st *store.Store, g any) error {
	sn, err := st.BeginSnapshot(7)
	if err != nil {
		return err
	}
	sn.WriteGraph(g)
	return sn.Commit()
}

func okSnapshotAbortOnError(st *store.Store, g any, bad bool) error {
	sn, err := st.BeginSnapshot(7)
	if err != nil {
		return err
	}
	if bad {
		sn.Abort()
		return nil
	}
	return sn.Commit()
}

func leakSnapshot(st *store.Store, g any, bad bool) error {
	sn, err := st.BeginSnapshot(7) // want `st\.BeginSnapshot\(\): snapshot BeginSnapshot/Commit\|Abort acquired here is not released`
	if err != nil {
		return err
	}
	if bad {
		return nil // leaks the in-flight snapshot: no further snapshot can start
	}
	return sn.Commit()
}

func okSnapshotClosureHandoff(st *store.Store, g any) error {
	sn, err := st.BeginSnapshot(9)
	if err != nil {
		return err
	}
	go func() {
		sn.WriteGraph(g)
		sn.Commit()
	}()
	return nil // ok: the goroutine owns the snapshot now
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path
	Dir       string // absolute directory
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader type-checks packages of a single module from source. Imports inside
// the module resolve recursively through the loader itself; everything else
// (the standard library) resolves through the toolchain's source importer,
// so no compiled export data or module downloads are needed. One Loader
// shares a FileSet and a package cache across all Load calls.
type Loader struct {
	ModPath string // module path from go.mod ("" for bare GOPATH-style trees)
	ModDir  string // absolute module root

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader returns a loader rooted at modDir, reading the module path from
// modDir/go.mod. Pass modPath "" via NewTreeLoader for fixture trees.
func NewLoader(modDir string) (*Loader, error) {
	modDir, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", modDir)
	}
	return newLoader(modPath, modDir), nil
}

// NewTreeLoader returns a loader for a GOPATH-style source tree (used by the
// analysistest fixtures): the import path of a package is its path relative
// to root.
func NewTreeLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	return newLoader("", root), nil
}

func newLoader(modPath, modDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   make(map[string]*Package),
	}
}

// dirFor maps an import path handled by this loader to a directory, or ""
// if the path belongs to the standard library.
func (l *Loader) dirFor(path string) string {
	switch {
	case l.ModPath == "":
		dir := filepath.Join(l.ModDir, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
		return ""
	case path == l.ModPath:
		return l.ModDir
	default:
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			return filepath.Join(l.ModDir, filepath.FromSlash(rest))
		}
		return ""
	}
}

// pathFor maps a directory under the loader's root to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside %s", dir, l.ModDir)
	}
	rel = filepath.ToSlash(rel)
	if l.ModPath == "" {
		return rel, nil
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + rel, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom, routing module-local paths to
// recursive source loading and everything else to the stdlib importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if d := l.dirFor(path); d != "" {
		pkg, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadDir loads and type-checks the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	abs, _ := filepath.Abs(dir)
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.cache[path] = nil // cycle marker

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Syntax: files, Types: tpkg, TypesInfo: info}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every buildable non-test .go file in dir, in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// PackageDirs returns every directory under root containing at least one
// non-test .go file, sorted, skipping testdata, hidden, and VCS directories.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadPatterns resolves fgslint's command-line patterns against the loader's
// module: "./..." (everything), "./dir/..." (a subtree), or "./dir".
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var pkgs []*Package
	addDir := func(dir string) error {
		if seen[dir] {
			return nil
		}
		seen[dir] = true
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := PackageDirs(l.ModDir)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				if err := addDir(d); err != nil {
					return nil, err
				}
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			dirs, err := PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				if err := addDir(d); err != nil {
					return nil, err
				}
			}
		default:
			if err := addDir(filepath.Join(l.ModDir, filepath.FromSlash(pat))); err != nil {
				return nil, err
			}
		}
	}
	return pkgs, nil
}

// Command fgsgen generates the synthetic evaluation datasets in the text or
// binary graph format, for use with cmd/fgs, cmd/fgsd, or external tooling.
//
// Usage:
//
//	fgsgen -dataset lki -scale 1 -seed 42 -o lki.graph
//	fgsgen -dataset pandemic -n 10000 -o contacts.graph
//	fgsgen -dataset lki -nodes 1000000 -format binary -o lki-1m.fgsb
//
// -nodes selects the sized scale-tier generators (lki, dbp): the graph
// targets that node count directly and keeps attribute cohorts bounded so
// induced groups stay constant-sized as the graph grows. -format binary
// writes the compact binary codec, which loads far faster at scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	var (
		dataset = flag.String("dataset", "lki", "dataset to generate: dbp, lki, cite, pandemic")
		scale   = flag.Int("scale", 1, "size multiplier for dbp/lki/cite")
		n       = flag.Int("n", 10000, "citizen count for pandemic")
		nodes   = flag.Int("nodes", 0, "target node count; selects the sized scale-tier generators (dbp, lki only)")
		format  = flag.String("format", "text", "output format: text or binary")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *fgs.Graph
	switch {
	case *nodes > 0:
		switch *dataset {
		case "dbp":
			g = datasets.DBPSized(*seed, *nodes)
		case "lki":
			g = datasets.LKISized(*seed, *nodes)
		default:
			fmt.Fprintf(os.Stderr, "fgsgen: -nodes needs a sized dataset (dbp or lki), got %q\n", *dataset)
			os.Exit(2)
		}
	default:
		switch *dataset {
		case "dbp":
			g = datasets.DBP(*seed, *scale)
		case "lki":
			g = datasets.LKI(*seed, *scale)
		case "cite":
			g = datasets.Cite(*seed, *scale)
		case "pandemic":
			g = datasets.Pandemic(*seed, *n)
		default:
			fmt.Fprintf(os.Stderr, "fgsgen: unknown dataset %q (want dbp, lki, cite, or pandemic)\n", *dataset)
			os.Exit(2)
		}
	}

	var write func(io.Writer, *fgs.Graph) error
	switch *format {
	case "text":
		write = fgs.WriteGraph
	case "binary":
		write = fgs.WriteGraphBinary
	default:
		fmt.Fprintf(os.Stderr, "fgsgen: unknown format %q (want text or binary)\n", *format)
		os.Exit(2)
	}

	// Both codecs buffer internally and surface their flush error, so the
	// file handle needs no extra wrapping.
	w := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgsgen:", err)
			os.Exit(1)
		}
		w = f
	}
	if err := write(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "fgsgen:", err)
		os.Exit(1)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fgsgen:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "fgsgen: %s: %d nodes, %d edges (%s)\n", *dataset, g.NumNodes(), g.NumEdges(), *format)
}

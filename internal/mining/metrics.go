package mining

import "github.com/cwru-db/fgs/internal/obs"

// miningMetrics holds the engine's runtime counters. It exists only when a
// collector is installed (engine.mm is nil otherwise), so the sequential and
// uninstrumented paths pay a single nil check.
type miningMetrics struct {
	// emitted counts candidates appended to the output.
	emitted obs.Counter
	// pruned counts patterns cut by the anti-monotone anchor-coverage check.
	pruned obs.Counter
	// specDiscards counts speculatively scored patterns discarded past the
	// MaxPatterns budget by the in-order committer.
	specDiscards obs.Counter
	// queueDepth samples the worker pool's in-flight job count (submitted −
	// received) at each submission.
	queueDepth obs.Histogram
}

// ObsMetrics implements obs.Source.
func (m *miningMetrics) ObsMetrics() []obs.Metric {
	depth := m.queueDepth.Snapshot()
	return []obs.Metric{
		{Name: "fgs_mining_candidates_total", Help: "Candidates emitted by SumGen.", Kind: obs.KindCounter, Value: float64(m.emitted.Load())},
		{Name: "fgs_mining_pruned_total", Help: "Patterns pruned by the anti-monotone anchor-coverage check.", Kind: obs.KindCounter, Value: float64(m.pruned.Load())},
		{Name: "fgs_mining_spec_discards_total", Help: "Speculatively scored patterns discarded past the MaxPatterns budget.", Kind: obs.KindCounter, Value: float64(m.specDiscards.Load())},
		{Name: "fgs_mining_queue_depth", Help: "Worker-pool in-flight jobs sampled at each submission.", Kind: obs.KindHistogram, Hist: &depth},
	}
}

package core

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestMaintainerDeletionKeepsLosslessness(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	m, before := NewMaintainer(g, groups, util, cfg)
	if len(before.Covered) == 0 {
		t.Fatal("nothing covered initially")
	}
	// Delete an edge inside a covered node's 2-hop neighborhood: one of the
	// fixture's recommend edges into covered[0].
	target := before.Covered[0]
	ins := g.In(target)
	if len(ins) == 0 {
		t.Skip("covered node has no in-edges to delete")
	}
	del := EdgeUpdate{From: ins[0].To, To: target, Label: g.EdgeLabelName(ins[0].Label)}
	after, err := m.ApplyDelta(Delta{Delete: []EdgeUpdate{del}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	missing, spurious := after.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatalf("post-deletion summary not lossless: missing=%d spurious=%d", missing.Len(), spurious.Len())
	}
	// The deleted edge must not be described anymore (it no longer exists).
	lid, _ := g.EdgeLabelID(del.Label)
	if after.DescribedEdges().Has(graph.EdgeRef{From: del.From, To: del.To, Label: lid}) {
		t.Fatal("summary still describes the deleted edge")
	}
}

func TestMaintainerMixedDelta(t *testing.T) {
	g, groups, util := talentFixture(t)
	m, before := NewMaintainer(g, groups, util, defaultCfg())
	target := before.Covered[0]
	ins := g.In(target)
	fresh := g.AddNode("user", nil)
	delta := Delta{
		Insert: []EdgeUpdate{{From: fresh, To: target, Label: "recommend"}},
		Delete: []EdgeUpdate{{From: ins[0].To, To: target, Label: g.EdgeLabelName(ins[0].Label)}},
	}
	after, err := m.ApplyDelta(delta)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	missing, spurious := after.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatal("mixed delta broke losslessness")
	}
	lid, _ := g.EdgeLabelID("recommend")
	if !after.DescribedEdges().Has(graph.EdgeRef{From: fresh, To: target, Label: lid}) {
		t.Fatal("inserted edge not described")
	}
}

func TestMaintainerDeltaErrors(t *testing.T) {
	g, groups, util := talentFixture(t)
	m, _ := NewMaintainer(g, groups, util, defaultCfg())
	// Deleting a nonexistent edge reports an error without changing state.
	before := m.Summary()
	after, err := m.ApplyDelta(Delta{Delete: []EdgeUpdate{{From: 0, To: 1, Label: "nosuch"}}})
	if err == nil {
		t.Fatal("bad deletion not reported")
	}
	if len(after.Covered) != len(before.Covered) {
		t.Fatal("failed delta changed the summary")
	}
}

func TestMaintainerDeletionSweep(t *testing.T) {
	// Delete every in-edge of a covered node across batches: patterns
	// covering it via structure must degrade to attribute fallbacks, and
	// every intermediate summary stays lossless.
	g, groups, util := randomFixture(t, 31, 50, 120, 6)
	cfg := defaultCfg()
	cfg.N = 6
	m, s := NewMaintainer(g, groups, util, cfg)
	if len(s.Covered) == 0 {
		t.Fatal("nothing covered")
	}
	target := s.Covered[0]
	for len(g.In(target)) > 0 {
		e := g.In(target)[0]
		var err error
		s, err = m.ApplyDelta(Delta{Delete: []EdgeUpdate{{From: e.To, To: target, Label: g.EdgeLabelName(e.Label)}}})
		if err != nil {
			t.Fatalf("delete sweep: %v", err)
		}
		missing, spurious := s.Reconstruct(g)
		if missing.Len() != 0 || spurious.Len() != 0 {
			t.Fatalf("sweep broke losslessness (in-degree now %d)", len(g.In(target)))
		}
	}
}

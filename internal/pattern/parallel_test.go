package pattern

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestCoverAmongParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := graph.New()
	n := 600 // above parallelThreshold
	for i := 0; i < n; i++ {
		var attrs map[string]string
		if rng.Intn(3) == 0 {
			attrs = map[string]string{"exp": "5"}
		}
		g.AddNode("user", attrs)
	}
	for i := 0; i < n*2; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "recommend")
	}
	candidates := g.NodesWithLabel("user")

	patterns := []*Pattern{
		star(),
		star(Literal{Key: "exp", Val: "5"}),
		NewNodePattern("user").AddLeaf(0, Node{Label: "user"}, "recommend", true),
	}
	seq := NewMatcher(g, 0)
	par := NewMatcher(g, 0)
	par.SetWorkers(4)
	for _, p := range patterns {
		want := seq.CoverAmong(p, candidates)
		got := par.CoverAmong(p, candidates)
		if len(want) != len(got) {
			t.Fatalf("pattern %s: sequential %d vs parallel %d", p, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("pattern %s: order differs at %d: %d vs %d", p, i, want[i], got[i])
			}
		}
	}
}

func TestSetWorkersClamps(t *testing.T) {
	m := NewMatcher(graph.New(), 0)
	m.SetWorkers(-5)
	if m.workers != 0 {
		t.Fatal("negative workers not clamped")
	}
	m.SetWorkers(1 << 20)
	if m.workers < 1 {
		t.Fatal("huge worker count not clamped to GOMAXPROCS")
	}
}

func BenchmarkCoverAmongSequential(b *testing.B) {
	g := benchSocialGraph(b, 4000)
	m := NewMatcher(g, 0)
	p := star()
	cands := g.NodesWithLabel("user")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CoverAmong(p, cands)
	}
}

func BenchmarkCoverAmongParallel4(b *testing.B) {
	g := benchSocialGraph(b, 4000)
	m := NewMatcher(g, 0)
	m.SetWorkers(4)
	p := star()
	cands := g.NodesWithLabel("user")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CoverAmong(p, cands)
	}
}

package graph

import (
	"math/rand"
	"testing"
)

// Property tests of the r-hop operators against naive reference
// implementations on seeded random graphs.

func TestRHopNodesMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 25, 50)
		for r := 0; r <= 3; r++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			got := NodeSetOf(g.RHopNodes(src, r))
			for v := NodeID(0); int(v) < g.NumNodes(); v++ {
				d := g.Dist(src, v, r)
				inHop := d >= 0 && d <= r
				if inHop != got.Has(v) {
					t.Fatalf("trial %d r=%d: node %d dist=%d, RHopNodes membership=%v", trial, r, v, d, got.Has(v))
				}
			}
		}
	}
}

func TestRHopNodesMonotoneInR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 25, 60)
		src := NodeID(rng.Intn(g.NumNodes()))
		prev := NodeSet{}
		for r := 0; r <= 4; r++ {
			cur := NodeSetOf(g.RHopNodes(src, r))
			for v := range prev {
				if !cur.Has(v) {
					t.Fatalf("r-hop set not monotone: node %d in r=%d but not r=%d", v, r-1, r)
				}
			}
			prev = cur
		}
	}
}

func TestRHopEdgesEndpointsWithinRHopNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 25, 60)
		src := NodeID(rng.Intn(g.NumNodes()))
		for r := 1; r <= 3; r++ {
			nodes := NodeSetOf(g.RHopNodes(src, r))
			for e := range g.RHopEdges(src, r) {
				if !nodes.Has(e.From) || !nodes.Has(e.To) {
					t.Fatalf("edge %v outside %d-hop node set", e, r)
				}
				if !g.HasEdge(e.From, e.To, e.Label) {
					t.Fatalf("edge %v not present in graph", e)
				}
			}
		}
	}
}

// Every edge incident to a node at distance < r from the source must be in
// E_v^r: it lies on a path of at most r hops from v.
func TestRHopEdgesCoverNearEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 20, 50)
		src := NodeID(rng.Intn(g.NumNodes()))
		for r := 1; r <= 3; r++ {
			edges := g.RHopEdges(src, r)
			for from := NodeID(0); int(from) < g.NumNodes(); from++ {
				for _, e := range g.Out(from) {
					dFrom := g.Dist(src, from, r)
					dTo := g.Dist(src, e.To, r)
					near := (dFrom >= 0 && dFrom < r) || (dTo >= 0 && dTo < r)
					ref := EdgeRef{From: from, To: e.To, Label: e.Label}
					if near && !edges.Has(ref) {
						t.Fatalf("edge %v has endpoint at dist<%d but not in E^r", ref, r)
					}
					if !near && edges.Has(ref) {
						t.Fatalf("edge %v in E^r but both endpoints at dist>=%d", ref, r)
					}
				}
			}
		}
	}
}

func TestRHopEdgesOfIsUnionOfSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 20, 40)
		roots := []NodeID{NodeID(rng.Intn(g.NumNodes())), NodeID(rng.Intn(g.NumNodes())), NodeID(rng.Intn(g.NumNodes()))}
		for r := 1; r <= 2; r++ {
			union := NewEdgeSet(0)
			for _, v := range roots {
				union.AddAll(g.RHopEdges(v, r))
			}
			got := g.RHopEdgesOf(roots, r)
			if got.Len() != union.Len() {
				t.Fatalf("RHopEdgesOf len %d, union of singles %d", got.Len(), union.Len())
			}
			for e := range union {
				if !got.Has(e) {
					t.Fatalf("edge %v in union but not RHopEdgesOf", e)
				}
			}
		}
	}
}

// Package metrics implements the two normalized quality measures of the
// paper's evaluation (Section VIII, Exp-1):
//
//   - CoverageError C_eps: how far a summary's per-group coverage falls
//     outside the coverage constraints [l_i, u_i], adapted from set selection
//     with fairness [17]. 0 means every group constraint is met.
//   - CompressionRatio C_r: the description length of the summary divided by
//     the size of the subgraph it describes (the r-hop neighborhoods of the
//     covered nodes). Smaller is better; a lossless method additionally pays
//     for its corrections.
package metrics

import (
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

// CoverageError returns C_eps for a set of covered group nodes: the mean,
// over groups, of the normalized distance of the group's coverage count to
// its constraint interval:
//
//	C_eps = (1/|V|) Σ_i max( (l_i - n_i)+ / max(l_i,1), (n_i - u_i)+ / max(u_i,1) )
//
// Each term is 0 when n_i ∈ [l_i, u_i]; under-coverage is charged relative
// to the lower bound and over-coverage relative to the upper bound, so the
// error is scale free across groups.
func CoverageError(groups *submod.Groups, covered []graph.NodeID) float64 {
	counts := groups.Counts(covered)
	total := 0.0
	for i := 0; i < groups.Len(); i++ {
		g := groups.At(i)
		n := counts[i]
		switch {
		case n < g.Lower:
			den := g.Lower
			if den < 1 {
				den = 1
			}
			total += float64(g.Lower-n) / float64(den)
		case n > g.Upper:
			den := g.Upper
			if den < 1 {
				den = 1
			}
			total += float64(n-g.Upper) / float64(den)
		}
	}
	return total / float64(groups.Len())
}

// CompressionRatio returns C_r for a summary described by its structure size
// (patterns or supernodes/superedges), its correction count, and the covered
// nodes whose r-hop neighborhoods it describes:
//
//	C_r = (structureSize + corrections + |covered|) / (|N^r| + |E^r|)
//
// The |covered| term charges the anchor list every summary must carry. The
// ratio is clamped to 1 when the "summary" is larger than what it describes.
func CompressionRatio(g *graph.Graph, r int, covered []graph.NodeID, structureSize, corrections int) float64 {
	if len(covered) == 0 {
		return 1
	}
	nodes := len(g.RHopNodesOf(covered, r))
	edges := g.RHopEdgeBitsOf(covered, r).Count()
	denom := nodes + edges
	if denom == 0 {
		return 1
	}
	ratio := float64(structureSize+corrections+len(covered)) / float64(denom)
	if ratio > 1 {
		return 1
	}
	return ratio
}
